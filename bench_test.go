package voltron

// One benchmark per table/figure of the paper's evaluation (§5), plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// regenerates its figure's data and reports the headline number as a
// custom metric, so `go test -bench=. -benchmem` reproduces the entire
// evaluation. b.N loops re-run the full harness (simulations are
// deterministic; the Suite cache is rebuilt per iteration to measure real
// work).

import (
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/exp"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/workload"
)

// benchFigure runs one figure harness per iteration and reports the
// averages of its columns as custom metrics.
func benchFigure(b *testing.B, fig int) {
	b.Helper()
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite()
		t, err := s.Figure(fig)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	avg := last.Average()
	for i, c := range last.Columns {
		b.ReportMetric(avg.Values[i], "avg_"+sanitize(c))
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// BenchmarkFig3 regenerates the parallelism breakdown (Figure 3).
func BenchmarkFig3(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFig7to9 regenerates the worked kernel speedups (Figures 7-9).
func BenchmarkFig7to9(b *testing.B) {
	var res []exp.KernelResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = exp.Fig7to9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		b.ReportMetric(r.Measured2Core, sanitize(r.Name)+"_x")
	}
}

// BenchmarkFig10 regenerates the 2-core per-technique speedups.
func BenchmarkFig10(b *testing.B) { benchFigure(b, 10) }

// BenchmarkFig11 regenerates the 4-core per-technique speedups.
func BenchmarkFig11(b *testing.B) { benchFigure(b, 11) }

// BenchmarkFig12 regenerates the coupled-vs-decoupled stall breakdown.
func BenchmarkFig12(b *testing.B) { benchFigure(b, 12) }

// BenchmarkFig13 regenerates the hybrid speedups (the headline result).
func BenchmarkFig13(b *testing.B) { benchFigure(b, 13) }

// BenchmarkFig14 regenerates the execution-mode occupancy breakdown.
func BenchmarkFig14(b *testing.B) { benchFigure(b, 14) }

// ---- ablations ----

// speedupWith measures a benchmark's 4-core speedup under custom options.
func speedupWith(b *testing.B, bench string, opts compiler.Options) float64 {
	b.Helper()
	p, err := workload.Build(bench)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		b.Fatal(err)
	}
	opts.Profile = pr
	run := func(o compiler.Options, cores int) int64 {
		o.Cores = cores
		cp, err := compiler.Compile(p, o)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			b.Fatal(err)
		}
		return res.TotalCycles
	}
	serial := opts
	serial.Strategy = compiler.Serial
	base := run(serial, 1)
	par := run(opts, 4)
	return float64(base) / float64(par)
}

// BenchmarkAblationEBUGWeights compares eBUG with and without its
// profile-driven weights (likely-miss latencies, memory-dependence,
// memory-balance) on 164.gzip, whose strand split depends on them.
func BenchmarkAblationEBUGWeights(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = speedupWith(b, "164.gzip", compiler.Options{Strategy: compiler.ForceFTLP})
		without = speedupWith(b, "164.gzip", compiler.Options{Strategy: compiler.ForceFTLP, DisableEBUGWeights: true})
	}
	b.ReportMetric(with, "eBUG_x")
	b.ReportMetric(without, "plainBUG_x")
}

// BenchmarkAblationPredReplication compares decoupled branch handling:
// control-slice replication (default) vs always sending predicates.
func BenchmarkAblationPredReplication(b *testing.B) {
	var repl, send float64
	for i := 0; i < b.N; i++ {
		repl = speedupWith(b, "183.equake", compiler.Options{Strategy: compiler.ForceFTLP})
		send = speedupWith(b, "183.equake", compiler.Options{Strategy: compiler.ForceFTLP, ForcePredSend: true})
	}
	b.ReportMetric(repl, "replicate_x")
	b.ReportMetric(send, "send_x")
}

// BenchmarkAblationQueueLatency sweeps the queue-mode base latency (the
// paper assumes 2 + hops) and reports fine-grain TLP speedups on 179.art.
func BenchmarkAblationQueueLatency(b *testing.B) {
	p, err := workload.Build("179.art")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		b.Fatal(err)
	}
	base := runCycles(b, p, pr, compiler.Serial, 1, 0)
	for i := 0; i < b.N; i++ {
		for _, lat := range []int64{2, 4, 8} {
			cy := runCycles(b, p, pr, compiler.ForceFTLP, 4, lat)
			if i == b.N-1 {
				b.ReportMetric(float64(base)/float64(cy), speedLabel(lat))
			}
		}
	}
}

func speedLabel(lat int64) string {
	switch lat {
	case 2:
		return "base2_x"
	case 4:
		return "base4_x"
	default:
		return "base8_x"
	}
}

func runCycles(b *testing.B, p *ir.Program, pr *prof.Profile, s compiler.Strategy, cores int, qbase int64) int64 {
	b.Helper()
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s, Profile: pr})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(cores)
	if qbase > 0 {
		cfg.QueueBaseLat = qbase
	}
	res, err := core.New(cfg).Run(cp)
	if err != nil {
		b.Fatal(err)
	}
	return res.TotalCycles
}

// BenchmarkAblationDSWPThreshold sweeps the pipeline-extraction gate
// (paper: 1.25) on the DSWP-friendly epic.
func BenchmarkAblationDSWPThreshold(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo = speedupWith(b, "epic", compiler.Options{Strategy: compiler.ForceFTLP, DSWPThreshold: 1.01})
		hi = speedupWith(b, "epic", compiler.Options{Strategy: compiler.ForceFTLP, DSWPThreshold: 10})
	}
	b.ReportMetric(lo, "thresh1.01_x")
	b.ReportMetric(hi, "noDSWP_x")
}

// BenchmarkAblationDOALLTrip sweeps the speculative-parallelization trip
// threshold on gsmdecode.
func BenchmarkAblationDOALLTrip(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		lo = speedupWith(b, "gsmdecode", compiler.Options{Strategy: compiler.ForceLLP, DOALLTripThreshold: 4})
		hi = speedupWith(b, "gsmdecode", compiler.Options{Strategy: compiler.ForceLLP, DOALLTripThreshold: 1000})
	}
	b.ReportMetric(lo, "trip4_x")
	b.ReportMetric(hi, "trip1000_x")
}

// BenchmarkAblationStaticSelection compares measured hybrid selection with
// the static-estimator variant.
func BenchmarkAblationStaticSelection(b *testing.B) {
	var meas, stat float64
	for i := 0; i < b.N; i++ {
		meas = speedupWith(b, "cjpeg", compiler.Options{Strategy: compiler.Hybrid})
		stat = speedupWith(b, "cjpeg", compiler.Options{Strategy: compiler.Hybrid, StaticSelection: true})
	}
	b.ReportMetric(meas, "measured_x")
	b.ReportMetric(stat, "static_x")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles
// simulated per second) on the largest benchmark.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, err := workload.Build("171.swim")
	if err != nil {
		b.Fatal(err)
	}
	cp, err := compiler.Compile(p, compiler.Options{Cores: 4, Strategy: compiler.Hybrid})
	if err != nil {
		b.Fatal(err)
	}
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.New(core.DefaultConfig(4)).Run(cp)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.TotalCycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
	_ = stats.Busy
}
