package main

// The voltron-load smoke tests: a short fixed-seed run against an
// in-process 2-replica cluster must clear throughput and peer-hit floors
// and leave a parseable report; the compare mode must record both fleet
// sizes under the same trace.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadAgainstSpawnedCluster(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-spawn", "2", "-workers", "2",
		"-rate", "600", "-requests", "400", "-catalog", "32",
		"-zipf", "1.2", "-seed", "1", "-tracefrac", "0.05",
		"-minthroughput", "20", "-minpeerhit", "0.005",
		"-out", out,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstdout: %s\nstderr: %s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "load:") {
		t.Errorf("no load summary printed: %q", stdout.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report file: %v", err)
	}
	var doc struct {
		Runs map[string]*report `json:"runs"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, b)
	}
	rep := doc.Runs["load"]
	if rep == nil {
		t.Fatalf("report missing the load run: %s", b)
	}
	if rep.Targets != 2 || rep.Requests != 400 {
		t.Errorf("targets/requests = %d/%d, want 2/400", rep.Targets, rep.Requests)
	}
	if rep.OK == 0 || rep.Errors != 0 {
		t.Errorf("ok/errors = %d/%d; the spawned cluster should serve cleanly", rep.OK, rep.Errors)
	}
	if rep.PeerServed == 0 {
		t.Error("no request was peer-served: the Zipf head should cross replicas")
	}
	if rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Errorf("implausible latencies: p50 %.3fms p99 %.3fms", rep.P50MS, rep.P99MS)
	}
}

func TestCompareWritesBothFleetSizes(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	var stdout, stderr bytes.Buffer
	args := []string{
		"-compare", "-workers", "2",
		"-rate", "600", "-requests", "300", "-catalog", "24",
		"-zipf", "1.2", "-seed", "1",
		"-out", out,
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run -compare: %v\nstderr: %s", err, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report file: %v", err)
	}
	var doc struct {
		Runs map[string]*report `json:"runs"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, b)
	}
	one, three := doc.Runs["replicas_1"], doc.Runs["replicas_3"]
	if one == nil || three == nil {
		t.Fatalf("compare report missing a fleet size: %s", b)
	}
	if one.Targets != 1 || three.Targets != 3 {
		t.Errorf("targets = %d/%d, want 1/3", one.Targets, three.Targets)
	}
	if one.PeerServed != 0 {
		t.Errorf("single replica peer-served %d requests; there is no peer", one.PeerServed)
	}
	if three.PeerServed == 0 {
		t.Error("three replicas peer-served nothing under a shared Zipf trace")
	}
	if one.Requests != three.Requests {
		t.Errorf("runs differ in size: %d vs %d requests", one.Requests, three.Requests)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-zipf", "1.0", "-spawn", "1"}, &stdout, &stderr); err == nil {
		t.Error("zipf <= 1 accepted; rand.NewZipf requires s > 1")
	}
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("no targets, no spawn, no compare accepted")
	}
}
