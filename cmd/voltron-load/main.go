// voltron-load is an open-loop load generator for a voltron-serve fleet.
// It fires jobs at a configured arrival rate (exponential inter-arrivals,
// so bursts happen) drawn from a deterministic catalog with Zipf-distributed
// popularity — a few hot jobs, a long tail — across mixed strategies and a
// trace-enabled fraction, and reports client-observed latency percentiles,
// throughput, shed rate, and how much of the fleet's work was served by
// peers. Open-loop means arrivals do not wait for completions: when the
// fleet falls behind, latency and shed rate show it instead of the
// generator politely slowing down.
//
// Usage:
//
//	voltron-load -targets http://h1:8080,http://h2:8080 -rate 400 -requests 2000
//	voltron-load -spawn 3                  # boot an in-process 3-replica cluster
//	voltron-load -compare -out BENCH_load.json
//	                                       # 1-replica vs 3-replica runs, same trace
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"time"

	"voltron/internal/server"
	"voltron/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-load:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set for one invocation.
type options struct {
	targets       string
	spawn         int
	compare       bool
	rate          float64
	requests      int
	catalog       int
	zipfS         float64
	seed          int64
	traceFrac     float64
	cores         int
	workers       int
	out           string
	minThroughput float64
	minPeerHit    float64
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.targets, "targets", "", "comma-separated replica base URLs (round-robin); empty = -spawn")
	fs.IntVar(&o.spawn, "spawn", 0, "boot an in-process cluster with this many replicas instead of -targets")
	fs.BoolVar(&o.compare, "compare", false, "run the same trace against 1 and 3 spawned replicas, write both reports")
	fs.Float64Var(&o.rate, "rate", 400, "target arrival rate, requests/second (open loop)")
	fs.IntVar(&o.requests, "requests", 800, "total requests to fire")
	fs.IntVar(&o.catalog, "catalog", 48, "distinct jobs in the catalog")
	fs.Float64Var(&o.zipfS, "zipf", 1.2, "Zipf exponent for job popularity (>1; higher = hotter head)")
	fs.Int64Var(&o.seed, "seed", 1, "RNG seed (arrivals, popularity, trace sampling)")
	fs.Float64Var(&o.traceFrac, "tracefrac", 0.05, "fraction of requests that ask for an execution trace")
	fs.IntVar(&o.cores, "cores", 2, "cores per simulated machine (every sixth catalog entry overrides with a 16/32/64-core machine)")
	fs.IntVar(&o.workers, "workers", 0, "with -spawn/-compare: worker pool per replica (0 = host CPUs)")
	fs.StringVar(&o.out, "out", "", "write the JSON report here (BENCH_load.json)")
	fs.Float64Var(&o.minThroughput, "minthroughput", 0, "fail below this completed-requests/second")
	fs.Float64Var(&o.minPeerHit, "minpeerhit", 0, "with >=2 replicas: fail below this peer-served fraction of OK responses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (rand.Zipf requirement), got %v", o.zipfS)
	}

	if o.compare {
		return runCompare(o, stdout)
	}
	targets, cleanup, err := resolveTargets(o, o.spawn)
	if err != nil {
		return err
	}
	defer cleanup()
	rep, err := drive(o, targets)
	if err != nil {
		return err
	}
	printReport(stdout, "load", rep)
	if err := checkFloors(o, targets, rep); err != nil {
		return err
	}
	if o.out != "" {
		return writeJSON(o.out, map[string]any{"runs": map[string]*report{"load": rep}})
	}
	return nil
}

// resolveTargets returns the URLs to drive: the -targets list, or an
// in-process cluster of n replicas (cleanup shuts it down).
func resolveTargets(o options, n int) ([]string, func(), error) {
	if o.targets != "" {
		var urls []string
		for _, u := range strings.Split(o.targets, ",") {
			if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return nil, nil, fmt.Errorf("-targets is empty after parsing")
		}
		return urls, func() {}, nil
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("need -targets, -spawn N, or -compare")
	}
	c := server.NewCluster(n, server.Config{Workers: o.workers})
	return c.URLs(), c.Close, nil
}

// catalogJob builds the i-th catalog entry: a deterministic inline program
// cycling through kernel shapes and strategies, so a catalog mixes serial,
// ILP, LLP and hybrid work. Every sixth entry is a many-core job (16, 32
// or 64 cores, one with a non-default mesh shape): wide machines carry
// distinct machine keys, so a mixed catalog churns the warm machine pool
// through shape changes under concurrent load instead of settling on one
// machine configuration. The request is normalized so its bytes (and
// content address) are identical across runs.
func catalogJob(i, cores int, traced bool) (*spec.JobRequest, error) {
	strategies := []string{"llp", "ilp", "serial", "hybrid"}
	req := &spec.JobRequest{
		Program: &spec.ProgramSpec{
			Name: fmt.Sprintf("load%03d", i),
			Kernels: []spec.KernelSpec{
				{Kind: "doall-map", Name: "m", N: int64(64 + 32*(i%7)), Work: 2 + i%3},
				{Kind: "serial-chain", Name: "c", N: int64(16 + 8*(i%5))},
			},
		},
		Strategy: strategies[i%len(strategies)],
		Cores:    cores,
		Trace:    traced,
	}
	if i%6 == 5 {
		wide := []int{16, 32, 64}
		req.Cores = wide[(i/6)%len(wide)]
		if req.Cores == 64 {
			req.Machine.MeshCols = 16 // 16×4 mesh: a distinct pool shape at the same width
		}
	}
	if err := req.Normalize(func(string) bool { return false }); err != nil {
		return nil, err
	}
	return req, nil
}

// shot is one fired request's outcome.
type shot struct {
	status  int
	latency time.Duration
	cache   string // X-Voltron-Cache
	peer    bool   // served via a peer fill
	err     bool
}

// report is one run's client-side measurement, the BENCH_load.json shape.
type report struct {
	Targets       int     `json:"targets"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	DurationMS    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"` // completed OK per second
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	ShedRate      float64 `json:"shed_rate"`
	CacheHitRate  float64 `json:"cache_hit_rate"` // of OK responses
	PeerServed    int     `json:"peer_served"`
	PeerHitRate   float64 `json:"peer_hit_rate"` // of OK responses
}

// drive fires o.requests jobs at the targets open-loop: a pacing loop
// sleeps exponential gaps and launches each request in its own goroutine
// the moment its arrival time comes due.
func drive(o options, targets []string) (*report, error) {
	// Pre-marshal the catalog once; the hot loop only picks and posts.
	bodies := make([][][]byte, 2) // [traced][catalog index]
	for _, traced := range []bool{false, true} {
		idx := 0
		if traced {
			idx = 1
		}
		bodies[idx] = make([][]byte, o.catalog)
		for i := 0; i < o.catalog; i++ {
			req, err := catalogJob(i, o.cores, traced)
			if err != nil {
				return nil, err
			}
			b, err := json.Marshal(req)
			if err != nil {
				return nil, err
			}
			bodies[idx][i] = b
		}
	}
	rng := rand.New(rand.NewSource(o.seed))
	zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(o.catalog-1))
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	shots := make([]shot, o.requests)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < o.requests; i++ {
		// Open loop: the next arrival is scheduled regardless of how many
		// requests are still in flight.
		time.Sleep(time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second)))
		job := int(zipf.Uint64())
		traced := 0
		if rng.Float64() < o.traceFrac {
			traced = 1
		}
		url := targets[i%len(targets)]
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				shots[i] = shot{err: true}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			shots[i] = shot{
				status:  resp.StatusCode,
				latency: time.Since(t0),
				cache:   resp.Header.Get("X-Voltron-Cache"),
				peer:    resp.Header.Get("X-Voltron-Peer") != "",
			}
		}(i, bodies[traced][job])
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{Targets: len(targets), Requests: o.requests, DurationMS: float64(elapsed.Milliseconds())}
	var okLat []time.Duration
	for _, s := range shots {
		switch {
		case s.err:
			rep.Errors++
		case s.status == http.StatusOK:
			rep.OK++
			okLat = append(okLat, s.latency)
			if s.cache == "hit" {
				rep.CacheHitRate++ // count; normalized below
			}
			if s.peer {
				rep.PeerServed++
			}
		case s.status == http.StatusTooManyRequests:
			rep.Shed++
		default:
			rep.Errors++
		}
	}
	if rep.OK > 0 {
		slices.Sort(okLat)
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
		rep.P50MS = float64(okLat[len(okLat)/2].Microseconds()) / 1e3
		rep.P99MS = float64(okLat[min(len(okLat)-1, len(okLat)*99/100)].Microseconds()) / 1e3
		rep.CacheHitRate /= float64(rep.OK)
		rep.PeerHitRate = float64(rep.PeerServed) / float64(rep.OK)
	}
	rep.ShedRate = float64(rep.Shed) / float64(rep.Requests)
	return rep, nil
}

// runCompare replays the identical trace (same seed, rate, catalog) against
// a 1-replica and a 3-replica in-process cluster and writes both reports —
// the scale-out acceptance measurement.
func runCompare(o options, stdout io.Writer) error {
	runs := map[string]*report{}
	for _, n := range []int{1, 3} {
		c := server.NewCluster(n, server.Config{Workers: o.workers})
		targets := c.URLs()
		rep, err := drive(o, targets)
		c.Close()
		if err != nil {
			return err
		}
		name := fmt.Sprintf("replicas_%d", n)
		printReport(stdout, name, rep)
		if n > 1 {
			if err := checkFloors(o, targets, rep); err != nil {
				return err
			}
		} else if o.minThroughput > 0 && rep.ThroughputRPS < o.minThroughput {
			return fmt.Errorf("replicas_1 throughput %.1f rps below floor %.1f", rep.ThroughputRPS, o.minThroughput)
		}
		runs[name] = rep
	}
	if o.out != "" {
		return writeJSON(o.out, map[string]any{"runs": runs})
	}
	return nil
}

// checkFloors enforces the CI floors against one run's report.
func checkFloors(o options, targets []string, rep *report) error {
	if o.minThroughput > 0 && rep.ThroughputRPS < o.minThroughput {
		return fmt.Errorf("throughput %.1f rps below floor %.1f", rep.ThroughputRPS, o.minThroughput)
	}
	if o.minPeerHit > 0 && len(targets) >= 2 && rep.PeerHitRate < o.minPeerHit {
		return fmt.Errorf("peer hit rate %.4f below floor %.4f", rep.PeerHitRate, o.minPeerHit)
	}
	return nil
}

func printReport(w io.Writer, name string, r *report) {
	fmt.Fprintf(w, "%s: %d targets, %d requests in %.0fms: %d ok (%.1f rps), %d shed (%.1f%%), %d errors; p50 %.2fms p99 %.2fms; cache hit %.1f%%, peer-served %d (%.1f%%)\n",
		name, r.Targets, r.Requests, r.DurationMS, r.OK, r.ThroughputRPS,
		r.Shed, 100*r.ShedRate, r.Errors, r.P50MS, r.P99MS,
		100*r.CacheHitRate, r.PeerServed, 100*r.PeerHitRate)
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
