// voltron-bench regenerates the paper's evaluation figures on the
// simulated Voltron machine.
//
// Usage:
//
//	voltron-bench                 # all figures
//	voltron-bench -fig 13         # one figure (3, 10, 11, 12, 13, 14)
//	voltron-bench -fig 7          # the Figure 7-9 kernel speedups
//	voltron-bench -bench cjpeg    # restrict to one benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"voltron/internal/exp"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (0 = all)")
	bench := flag.String("bench", "", "restrict to one benchmark")
	scaling := flag.Bool("scaling", false, "run the 8-core scaling extension instead of the paper figures")
	jsonOut := flag.Bool("json", false, "emit JSON instead of text tables")
	flag.Parse()

	s := exp.NewSuite()
	if *bench != "" {
		s.Benchmarks = []string{*bench}
	}
	emit := func(t *exp.Table) {
		if *jsonOut {
			if err := t.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		t.Print(os.Stdout)
	}
	if *scaling {
		tab, err := s.Scaling()
		if err != nil {
			fatal(err)
		}
		emit(tab)
		return
	}
	figs := []int{3, 7, 10, 11, 12, 13, 14}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		if f >= 7 && f <= 9 {
			res, err := exp.Fig7to9()
			if err != nil {
				fatal(err)
			}
			fmt.Println("Figures 7-9: kernel speedups on 2 cores (paper vs measured)")
			for _, r := range res {
				fmt.Printf("  %-22s paper %.2fx   measured %.2fx\n", r.Name, r.PaperSpeedup, r.Measured2Core)
			}
			fmt.Println()
			continue
		}
		t, err := s.Figure(f)
		if err != nil {
			fatal(err)
		}
		emit(t)
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voltron-bench:", err)
	os.Exit(1)
}
