// voltron-bench regenerates the paper's evaluation figures on the
// simulated Voltron machine.
//
// Usage:
//
//	voltron-bench                 # all figures
//	voltron-bench -fig 13         # one figure (3, 10, 11, 12, 13, 14)
//	voltron-bench -fig 7          # the Figure 7-9 kernel speedups
//	voltron-bench -bench cjpeg    # restrict to one benchmark
//	voltron-bench -smoke          # fast subset (two benchmarks, three figures)
//	voltron-bench -j 1            # force sequential evaluation
//	voltron-bench -evalout BENCH_eval.json   # record wall-clock per figure
//	voltron-bench -cpuprofile cpu.pprof      # profile the run (go tool pprof)
//	voltron-bench -memprofile mem.pprof      # heap profile at exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"voltron/internal/exp"
)

// evalTiming is one figure's wall-clock measurement for -evalout.
type evalTiming struct {
	Figure  string  `json:"figure"`
	Seconds float64 `json:"seconds"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (0 = all)")
	bench := fs.String("bench", "", "restrict to one benchmark")
	smoke := fs.Bool("smoke", false, "fast subset: gsmdecode+rawcaudio, figures 3/12/13")
	scaling := fs.Bool("scaling", false, "run the 8-core scaling extension instead of the paper figures")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text tables")
	workers := fs.Int("j", 0, "evaluation workers (0 = all host CPUs, 1 = sequential)")
	evalOut := fs.String("evalout", "", "write per-figure wall-clock timings to this JSON file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Batch tool, short-lived, compile-heavy: trade peak heap for fewer GC
	// cycles (as gofmt does). GOGC in the environment still takes priority.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "voltron-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "voltron-bench:", err)
			}
		}()
	}

	s := exp.NewSuite()
	if *bench != "" {
		s.Benchmarks = []string{*bench}
	}
	if *smoke {
		s.Benchmarks = []string{"gsmdecode", "rawcaudio"}
	}
	if *workers > 0 {
		s.Workers = *workers
	}
	emit := func(t *exp.Table) error {
		if *jsonOut {
			return t.WriteJSON(stdout)
		}
		t.Print(stdout)
		return nil
	}
	var timings []evalTiming
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		timings = append(timings, evalTiming{Figure: name, Seconds: time.Since(start).Seconds()})
		return nil
	}
	if *scaling {
		if err := timed("scaling", func() error {
			tab, err := s.Scaling()
			if err != nil {
				return err
			}
			return emit(tab)
		}); err != nil {
			return err
		}
		return writeEval(*evalOut, s.Workers, timings)
	}
	figs := []int{3, 7, 10, 11, 12, 13, 14}
	if *smoke {
		figs = []int{3, 12, 13}
	}
	if *fig != 0 {
		figs = []int{*fig}
	}
	for _, f := range figs {
		if f >= 7 && f <= 9 {
			if err := timed("fig7-9", func() error {
				res, err := exp.Fig7to9()
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, "Figures 7-9: kernel speedups on 2 cores (paper vs measured)")
				for _, r := range res {
					fmt.Fprintf(stdout, "  %-22s paper %.2fx   measured %.2fx\n", r.Name, r.PaperSpeedup, r.Measured2Core)
				}
				fmt.Fprintln(stdout)
				return nil
			}); err != nil {
				return err
			}
			continue
		}
		f := f
		if err := timed(fmt.Sprintf("fig%d", f), func() error {
			t, err := s.Figure(f)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			return nil
		}); err != nil {
			return err
		}
	}
	return writeEval(*evalOut, s.Workers, timings)
}

// writeEval records the run's timings (plus the host parallelism they were
// measured under) so speedup claims are reproducible.
func writeEval(path string, workers int, timings []evalTiming) error {
	if path == "" {
		return nil
	}
	out := struct {
		HostCPUs int          `json:"host_cpus"`
		Workers  int          `json:"workers"`
		Figures  []evalTiming `json:"figures"`
	}{HostCPUs: runtime.NumCPU(), Workers: workers, Figures: timings}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
