// voltron-bench regenerates the paper's evaluation figures on the
// simulated Voltron machine.
//
// Usage:
//
//	voltron-bench                 # all figures
//	voltron-bench -fig 13         # one figure (3, 10, 11, 12, 13, 14)
//	voltron-bench -fig 7          # the Figure 7-9 kernel speedups
//	voltron-bench -bench cjpeg    # restrict to one benchmark
//	voltron-bench -smoke          # fast subset (two benchmarks, three figures)
//	voltron-bench -j 1            # force sequential evaluation
//	voltron-bench -select auto    # tiered strategy selection for every compile
//	voltron-bench -agreement      # classifier-vs-measured selection agreement
//	voltron-bench -compare-select # time figure regeneration, measured vs auto
//	voltron-bench -evalout BENCH_eval.json   # record wall-clock per figure
//	voltron-bench -cpuprofile cpu.pprof      # profile the run (go tool pprof)
//	voltron-bench -memprofile mem.pprof      # heap profile at exit
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"voltron/internal/compiler"
	"voltron/internal/exp"
	"voltron/internal/spec"
)

// evalTiming is one figure's wall-clock measurement for -evalout.
type evalTiming struct {
	Figure  string  `json:"figure"`
	Seconds float64 `json:"seconds"`
}

// selectCompare is the -compare-select measurement recorded to -evalout:
// the same full figure regeneration timed cold under measured and under
// auto selection, with the agreement evaluation alongside.
type selectCompare struct {
	MeasuredSeconds float64 `json:"measured_seconds"`
	AutoSeconds     float64 `json:"auto_seconds"`
	Speedup         float64 `json:"speedup"`
	AutoAgreement   float64 `json:"auto_agreement"`
	StaticAgreement float64 `json:"static_agreement"`
	Escalated       int     `json:"escalated"`
	Hurts           int     `json:"hurts"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure to regenerate (0 = all)")
	bench := fs.String("bench", "", "restrict to one benchmark")
	smoke := fs.Bool("smoke", false, "fast subset: gsmdecode+rawcaudio, figures 3/12/13")
	scaling := fs.Bool("scaling", false, "run the many-core scaling extension (speedup + stall attribution at 1..64 cores) instead of the paper figures")
	jsonOut := fs.Bool("json", false, "emit JSON instead of text tables")
	workers := fs.Int("j", 0, "evaluation workers (0 = all host CPUs, 1 = sequential)")
	selectMode := spec.SelectFlag(fs)
	selectTh := spec.SelectThresholdFlag(fs)
	agreement := fs.Bool("agreement", false, "evaluate classifier-vs-measured selection agreement and exit")
	agreeRand := fs.Int("agreerand", 8, "random programs added to the agreement evaluation")
	agreeMin := fs.Float64("agreemin", 0, "fail unless auto agreement reaches this fraction with zero never-hurts violations (0 = report only)")
	agreeOut := fs.String("agreeout", "", "write the agreement report JSON to this file")
	compareSelect := fs.Bool("compare-select", false, "time cold figure regeneration under measured vs auto selection")
	evalOut := fs.String("evalout", "", "write per-figure wall-clock timings to this JSON file")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Batch tool, short-lived, compile-heavy: trade peak heap for fewer GC
	// cycles (as gofmt does). GOGC in the environment still takes priority.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "voltron-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accumulated garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "voltron-bench:", err)
			}
		}()
	}

	sel, ok := spec.SelectionFor(*selectMode)
	if !ok {
		return fmt.Errorf("unknown selection mode %q", *selectMode)
	}
	s := exp.NewSuite()
	if *bench != "" {
		s.Benchmarks = []string{*bench}
	}
	if *smoke {
		s.Benchmarks = []string{"gsmdecode", "rawcaudio"}
	}
	if *workers > 0 {
		s.Workers = *workers
	}
	s.Select = sel
	s.SelectThreshold = *selectTh
	emit := func(t *exp.Table) error {
		if *jsonOut {
			return t.WriteJSON(stdout)
		}
		t.Print(stdout)
		return nil
	}
	var timings []evalTiming
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		timings = append(timings, evalTiming{Figure: name, Seconds: time.Since(start).Seconds()})
		return nil
	}
	if *agreement {
		rep, err := s.SelectionAgreement(*agreeRand)
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := rep.WriteJSON(stdout); err != nil {
				return err
			}
		} else {
			rep.Print(stdout)
		}
		if err := writeAgreement(*agreeOut, rep); err != nil {
			return err
		}
		return checkAgreement(rep, *agreeMin)
	}
	if *scaling {
		if err := timed("scaling", func() error {
			speedup, err := s.Scaling()
			if err != nil {
				return err
			}
			stalls, err := s.ScalingStalls()
			if err != nil {
				return err
			}
			if *jsonOut {
				// One combined document, so the CI artifact is a single
				// machine-readable figure.
				return writeScalingJSON(stdout, speedup, stalls)
			}
			speedup.Print(stdout)
			fmt.Fprintln(stdout)
			stalls.Print(stdout)
			return nil
		}); err != nil {
			return err
		}
		return writeEval(*evalOut, s.Workers, timings, nil)
	}
	figs := []int{3, 7, 10, 11, 12, 13, 14}
	if *smoke {
		figs = []int{3, 12, 13}
	}
	if *fig != 0 {
		figs = []int{*fig}
	}
	var cmp *selectCompare
	if *compareSelect {
		c, rep, err := compareSelection(s, figs, *workers, *agreeRand, *selectTh)
		if err != nil {
			return err
		}
		cmp = c
		fmt.Fprintf(stdout, "cold figure regeneration: measured %.1fs, auto %.1fs (%.2fx)\n",
			cmp.MeasuredSeconds, cmp.AutoSeconds, cmp.Speedup)
		fmt.Fprintf(stdout, "selection agreement: auto %.1f%% (static %.1f%%), escalated %d, hurts %d\n\n",
			100*cmp.AutoAgreement, 100*cmp.StaticAgreement, cmp.Escalated, cmp.Hurts)
		if err := writeAgreement(*agreeOut, rep); err != nil {
			return err
		}
		if err := checkAgreement(rep, *agreeMin); err != nil {
			return err
		}
	}
	for _, f := range figs {
		if f >= 7 && f <= 9 {
			if err := timed("fig7-9", func() error {
				res, err := exp.Fig7to9()
				if err != nil {
					return err
				}
				fmt.Fprintln(stdout, "Figures 7-9: kernel speedups on 2 cores (paper vs measured)")
				for _, r := range res {
					fmt.Fprintf(stdout, "  %-22s paper %.2fx   measured %.2fx\n", r.Name, r.PaperSpeedup, r.Measured2Core)
				}
				fmt.Fprintln(stdout)
				return nil
			}); err != nil {
				return err
			}
			continue
		}
		f := f
		if err := timed(fmt.Sprintf("fig%d", f), func() error {
			t, err := s.Figure(f)
			if err != nil {
				return err
			}
			if err := emit(t); err != nil {
				return err
			}
			fmt.Fprintln(stdout)
			return nil
		}); err != nil {
			return err
		}
	}
	return writeEval(*evalOut, s.Workers, timings, cmp)
}

// compareSelection times the same cold figure regeneration twice — once
// with measured selection, once with auto — on fresh Suites (fresh caches:
// both runs pay every compile), then runs the agreement evaluation so the
// speedup is reported next to the quality it costs.
func compareSelection(s *exp.Suite, figs []int, workers, agreeRand int, threshold float64) (*selectCompare, *exp.AgreementReport, error) {
	regen := func(mode compiler.SelectionMode) (float64, error) {
		cs := exp.NewSuite()
		cs.Benchmarks = s.Benchmarks
		if workers > 0 {
			cs.Workers = workers
		}
		cs.Select = mode
		cs.SelectThreshold = threshold
		start := time.Now()
		for _, f := range figs {
			if f >= 7 && f <= 9 {
				continue // kernel microbenchmarks bypass strategy selection
			}
			if _, err := cs.Figure(f); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds(), nil
	}
	ms, err := regen(compiler.SelectMeasured)
	if err != nil {
		return nil, nil, err
	}
	as, err := regen(compiler.SelectAuto)
	if err != nil {
		return nil, nil, err
	}
	rep, err := s.SelectionAgreement(agreeRand)
	if err != nil {
		return nil, nil, err
	}
	cmp := &selectCompare{
		MeasuredSeconds: ms, AutoSeconds: as,
		AutoAgreement: rep.AutoAgreement, StaticAgreement: rep.StaticAgreement,
		Escalated: rep.Escalated, Hurts: rep.Hurts,
	}
	if as > 0 {
		cmp.Speedup = ms / as
	}
	return cmp, rep, nil
}

// writeScalingJSON emits the scalability figure as one JSON document:
// the hybrid speedup sweep and the stall attribution side by side.
func writeScalingJSON(w io.Writer, speedup, stalls *exp.Table) error {
	var sp, st bytes.Buffer
	if err := speedup.WriteJSON(&sp); err != nil {
		return err
	}
	if err := stalls.WriteJSON(&st); err != nil {
		return err
	}
	out := struct {
		Speedup json.RawMessage `json:"speedup"`
		Stalls  json.RawMessage `json:"stalls"`
	}{Speedup: sp.Bytes(), Stalls: st.Bytes()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeAgreement records the agreement report (the CI artifact).
func writeAgreement(path string, rep *exp.AgreementReport) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rep.WriteJSON(f)
}

// checkAgreement enforces the -agreemin gate: a minimum auto-agreement
// fraction and the never-hurts invariant. min = 0 reports without failing.
func checkAgreement(rep *exp.AgreementReport, min float64) error {
	if min <= 0 {
		return nil
	}
	if rep.Hurts > 0 {
		return fmt.Errorf("never-hurts violated: %d region(s) slower than serial", rep.Hurts)
	}
	if rep.AutoAgreement < min {
		return fmt.Errorf("auto agreement %.1f%% below floor %.1f%%", 100*rep.AutoAgreement, 100*min)
	}
	return nil
}

// writeEval records the run's timings (plus the host parallelism they were
// measured under) so speedup claims are reproducible.
func writeEval(path string, workers int, timings []evalTiming, cmp *selectCompare) error {
	if path == "" {
		return nil
	}
	out := struct {
		HostCPUs int            `json:"host_cpus"`
		Workers  int            `json:"workers"`
		Figures  []evalTiming   `json:"figures"`
		Select   *selectCompare `json:"select_compare,omitempty"`
	}{HostCPUs: runtime.NumCPU(), Workers: workers, Figures: timings, Select: cmp}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
