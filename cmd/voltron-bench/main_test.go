package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestSmokeGolden pins the -smoke subset (two benchmarks, figures 3/12/13):
// the evaluation numbers are deterministic, so any drift is a real change
// in simulated behaviour.
func TestSmokeGolden(t *testing.T) {
	evalOut := filepath.Join(t.TempDir(), "eval.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke", "-j", "1", "-evalout", evalOut}, &stdout, &stderr); err != nil {
		t.Fatalf("run -smoke: %v", err)
	}
	golden(t, "smoke.golden", stdout.Bytes())

	b, err := os.ReadFile(evalOut)
	if err != nil {
		t.Fatalf("evalout not written: %v", err)
	}
	var eval struct {
		Workers int `json:"workers"`
		Figures []struct {
			Figure  string  `json:"figure"`
			Seconds float64 `json:"seconds"`
		} `json:"figures"`
	}
	if err := json.Unmarshal(b, &eval); err != nil {
		t.Fatalf("evalout does not parse: %v", err)
	}
	if eval.Workers != 1 || len(eval.Figures) != 3 {
		t.Errorf("evalout: workers=%d figures=%d, want 1/3", eval.Workers, len(eval.Figures))
	}
}

func TestFig7Golden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "7", "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -fig 7: %v", err)
	}
	golden(t, "fig7.golden", stdout.Bytes())
}

func TestSmokeJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke", "-j", "1", "-fig", "12", "-json"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Title string `json:"title"`
		Rows  []struct {
			Benchmark string `json:"benchmark"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout.Bytes())
	}
	if len(out.Rows) != 3 { // 2 benchmarks + average
		t.Errorf("rows = %d, want 3", len(out.Rows))
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestAgreementMode: -agreement produces the agreement report, honors the
// -agreemin gate, and writes the -agreeout artifact.
func TestAgreementMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "agreement.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-bench", "rawcaudio", "-agreement", "-agreerand", "1", "-agreeout", out, "-agreemin", "0.5", "-j", "1"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("agreement artifact not written: %v", err)
	}
	var rep struct {
		Regions int     `json:"regions"`
		Auto    float64 `json:"auto_agreement"`
		Hurts   int     `json:"hurts"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Regions == 0 {
		t.Error("agreement report compared zero regions")
	}
	if rep.Hurts != 0 {
		t.Errorf("never-hurts violated on the smoke subset: %d", rep.Hurts)
	}
	// An unreachable floor must fail the gate.
	stdout.Reset()
	if err := run([]string{"-bench", "rawcaudio", "-agreement", "-agreerand", "1", "-agreemin", "1.01", "-j", "1"}, &stdout, &stderr); err == nil {
		t.Error("agreement gate above 100% passed")
	}
}

// TestCompareSelectSmoke: -compare-select records both regeneration
// timings and the speedup into -evalout.
func TestCompareSelectSmoke(t *testing.T) {
	evalOut := filepath.Join(t.TempDir(), "eval.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-smoke", "-compare-select", "-agreerand", "0", "-evalout", evalOut, "-j", "1"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run %v: %v", args, err)
	}
	b, err := os.ReadFile(evalOut)
	if err != nil {
		t.Fatal(err)
	}
	var eval struct {
		Select *struct {
			MeasuredSeconds float64 `json:"measured_seconds"`
			AutoSeconds     float64 `json:"auto_seconds"`
			Speedup         float64 `json:"speedup"`
		} `json:"select_compare"`
	}
	if err := json.Unmarshal(b, &eval); err != nil {
		t.Fatal(err)
	}
	if eval.Select == nil {
		t.Fatal("evalout lacks select_compare")
	}
	if eval.Select.MeasuredSeconds <= 0 || eval.Select.AutoSeconds <= 0 || eval.Select.Speedup <= 0 {
		t.Errorf("degenerate comparison: %+v", *eval.Select)
	}
}
