package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeMode drives the -smoke self-test end to end: it exercises the
// whole serving path (listener, handlers, cache, pool) and must leave a
// parseable metrics snapshot behind.
func TestSmokeMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-smoke", "-workers", "2", "-metricsout", out}, &stdout, &stderr); err != nil {
		t.Fatalf("run -smoke: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "smoke:") {
		t.Errorf("no smoke summary printed: %q", stdout.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("metrics file does not parse: %v\n%s", err, b)
	}
	m := rep.Metrics
	if m.Jobs == 0 || m.Simulations == 0 {
		t.Errorf("metrics snapshot empty: %+v", m)
	}
	if m.CacheHits == 0 {
		t.Error("smoke run recorded no cache hits")
	}
	if m.CompileCacheHits == 0 {
		t.Error("smoke run shared no compiled artifacts")
	}
	if m.Latency["hybrid"].Count == 0 {
		t.Error("no hybrid latency observations recorded")
	}
	fresh, pooled := rep.PerJob["fresh"], rep.PerJob["pooled"]
	if fresh.Jobs == 0 || pooled.Jobs == 0 {
		t.Fatalf("per-job probe missing: %+v", rep.PerJob)
	}
	if pooled.AllocsPerJob >= fresh.AllocsPerJob {
		t.Errorf("pooled allocs/job %.0f not below fresh %.0f", pooled.AllocsPerJob, fresh.AllocsPerJob)
	}
	if fresh.P50Micros <= 0 || pooled.P50Micros <= 0 || fresh.P99Micros < fresh.P50Micros || pooled.P99Micros < pooled.P50Micros {
		t.Errorf("implausible percentiles: fresh %+v pooled %+v", fresh, pooled)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
}
