// voltron-serve exposes the compile-and-simulate pipeline as an HTTP JSON
// service: jobs (benchmark or inline program × strategy × machine) run on
// a bounded worker pool with content-addressed caching, per-request
// timeouts, and graceful shutdown.
//
// Usage:
//
//	voltron-serve                          # listen on :8080
//	voltron-serve -addr :9000 -workers 8   # custom listen address / pool
//	voltron-serve -smoke -metricsout BENCH_serve.json
//	                                       # self-drive a request mix, write
//	                                       # the metrics snapshot, exit
//	voltron-serve -self a -peers a=http://h1:8080,b=http://h2:8080
//	                                       # one replica of a two-node fleet
//
// API:
//
//	GET  /healthz
//	GET  /metrics
//	GET  /v1/benchmarks
//	POST /v1/jobs        {"bench": "gsmdecode", "strategy": "hybrid", "cores": 4, "baseline": true}
//	GET  /v1/figures/13
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"sync"
	"syscall"
	"time"

	"voltron/internal/lang"
	"voltron/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = all host CPUs)")
	cacheN := fs.Int("cache", 256, "content-addressed cache entries (LRU bound)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-request timeout")
	smoke := fs.Bool("smoke", false, "self-drive a request mix against an in-process server, then exit")
	metricsOut := fs.String("metricsout", "", "with -smoke: write the final metrics snapshot to this JSON file")
	self := fs.String("self", "", "this replica's name in the -peers list (cluster mode)")
	peersArg := fs.String("peers", "", "fleet membership: name=url,... or @file with one name=url per line")
	peerTimeout := fs.Duration("peer-timeout", 10*time.Second, "cap on one peer forward (further capped below the request budget)")
	admitSimulate := fs.Int("admit-simulate", 0, "max concurrently admitted simulate-class requests (0 = 32x workers)")
	admitCached := fs.Int("admit-cached", 0, "max concurrently admitted cached-read requests (0 = 8x simulate bound)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var peers []server.Replica
	if *peersArg != "" {
		if *self == "" {
			return fmt.Errorf("-peers requires -self (which entry is this replica?)")
		}
		var err error
		if peers, err = server.ParsePeers(*peersArg); err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		CacheEntries:    *cacheN,
		RequestTimeout:  *timeout,
		Self:            *self,
		Peers:           peers,
		PeerTimeout:     *peerTimeout,
		AdmitSimulate:   *admitSimulate,
		AdmitCachedRead: *admitCached,
	})
	if *smoke {
		return runSmoke(srv, *metricsOut, stdout)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "voltron-serve: listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		// Graceful shutdown: stop accepting, drain in-flight jobs (which
		// run synchronously inside handlers) up to the request timeout.
		fmt.Fprintf(stdout, "voltron-serve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		return hs.Shutdown(ctx)
	}
}

// runSmoke drives a representative request mix through a real listener —
// repeated jobs for cache hits, concurrent identical jobs for singleflight,
// an inline program, a figure — then writes the metrics snapshot. It is the
// CI benchmark probe (BENCH_serve.json) and doubles as an end-to-end
// exercise of the full serving path.
func runSmoke(srv *server.Server, metricsOut string, stdout io.Writer) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	get := func(path string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	post := func(body string) error {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/jobs %s: status %d: %s", body, resp.StatusCode, b)
		}
		return nil
	}

	if err := get("/healthz"); err != nil {
		return err
	}
	if err := get("/v1/benchmarks"); err != nil {
		return err
	}
	if err := get("/v1/strategies"); err != nil {
		return err
	}
	// Two rounds over a small bench × strategy grid: round one misses,
	// round two must hit the content cache.
	for round := 0; round < 2; round++ {
		for _, bench := range []string{"rawcaudio", "gsmdecode"} {
			for _, strat := range []string{"serial", "llp", "hybrid"} {
				body := fmt.Sprintf(`{"bench": %q, "strategy": %q, "cores": 4, "baseline": true}`, bench, strat)
				if err := post(body); err != nil {
					return err
				}
			}
		}
	}
	// A machine-latency ablation of a round-one job: a distinct run key that
	// must reuse the already-compiled artifact (the compile cache's reason
	// to exist; the traced job below shares one the same way).
	if err := post(`{"bench": "gsmdecode", "strategy": "hybrid", "cores": 4, "machine": {"queue_base_lat": 4}}`); err != nil {
		return err
	}
	// Concurrent identical jobs: singleflight under real HTTP.
	inline := `{"program": {"name": "smoke", "kernels": [
		{"kind": "pipeline", "name": "p", "table": 16384, "n": 16384, "work": 16},
		{"kind": "doall-map", "name": "m", "n": 4096, "work": 8}
	]}, "strategy": "llp", "cores": 4}`
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = post(inline)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := get("/v1/figures/12"); err != nil {
		return err
	}
	// Source-form jobs: a user program POSTed as language text runs through
	// the same pipeline. Round two must hit the content cache; the validate
	// endpoint checks the same body without simulating.
	srcJob := `{"program": {"kind": "source", "name": "smokesrc", "source": ` + smokeSourceJSON + `}, "strategy": "hybrid", "cores": 4}`
	for round := 0; round < 2; round++ {
		if err := post(srcJob); err != nil {
			return err
		}
	}
	vresp, err := http.Post(base+"/v1/validate", "application/json", bytes.NewReader([]byte(srcJob)))
	if err != nil {
		return err
	}
	vb, _ := io.ReadAll(vresp.Body)
	vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/validate: status %d: %s", vresp.StatusCode, vb)
	}
	// A traced job: the response must link a fetchable Chrome trace.
	tr, err := http.Post(base+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"bench": "rawcaudio", "strategy": "hybrid", "cores": 4, "trace": true}`)))
	if err != nil {
		return err
	}
	tb, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		return fmt.Errorf("traced job: status %d: %s", tr.StatusCode, tb)
	}
	var traced struct {
		TraceURL string `json:"trace_url"`
	}
	if err := json.Unmarshal(tb, &traced); err != nil {
		return err
	}
	if traced.TraceURL == "" {
		return fmt.Errorf("traced job response has no trace_url: %s", tb)
	}
	if err := get(traced.TraceURL); err != nil {
		return err
	}

	m := srv.Metrics()
	fmt.Fprintf(stdout, "smoke: %d jobs, %d simulations, cache %d hits / %d misses / %d deduped, compile cache %.0f%% hot, pool %d hits / %d news\n",
		m.Jobs, m.Simulations, m.CacheHits, m.CacheMisses, m.CacheDeduped,
		100*m.CompileCacheHitRatio, m.MachinePoolHits, m.MachinePoolNews)
	if m.CacheHits == 0 {
		return fmt.Errorf("smoke: repeated jobs produced no cache hits")
	}
	if m.CompileCacheHits == 0 {
		return fmt.Errorf("smoke: the request mix shared no compiled artifacts")
	}

	// Before/after per-job probe: the same alternating two-job stream against
	// a pooled server and one with pooling disabled. With one cache entry
	// every request simulates, so the delta isolates the warm-machine path.
	fresh, err := probePerJob(true, 200)
	if err != nil {
		return err
	}
	pooled, err := probePerJob(false, 200)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "smoke: per-job p50 %.0fus -> %.0fus, p99 %.0fus -> %.0fus, allocs/job %.0f -> %.0f (fresh -> pooled)\n",
		fresh.P50Micros, pooled.P50Micros, fresh.P99Micros, pooled.P99Micros,
		fresh.AllocsPerJob, pooled.AllocsPerJob)
	if pooled.AllocsPerJob >= fresh.AllocsPerJob {
		return fmt.Errorf("smoke: pooled path allocates %.0f objects/job, fresh path %.0f — pooling saves nothing",
			pooled.AllocsPerJob, fresh.AllocsPerJob)
	}

	// Frontend probe: parse + type-check + lower a user program, no
	// simulation. This is the extra per-request cost a source job pays over
	// an equivalent kernels job before the shared pipeline takes over.
	frontend, err := probeFrontend(200)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "smoke: frontend parse+lower p50 %.0fus, p99 %.0fus\n",
		frontend.P50Micros, frontend.P99Micros)

	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(benchReport{
			Metrics:  m,
			PerJob:   map[string]perJobStats{"fresh": fresh, "pooled": pooled},
			Frontend: frontend,
		}); err != nil {
			return err
		}
	}
	return nil
}

// benchReport is the BENCH_serve.json shape: the smoke run's service
// metrics plus the pooled-vs-fresh per-job probe.
type benchReport struct {
	Metrics server.MetricsSnapshot `json:"metrics"`
	// PerJob holds the hot-path measurement per serving mode: "fresh"
	// builds a machine per job (the before-state), "pooled" reuses warm
	// machines through the pool.
	PerJob map[string]perJobStats `json:"per_job"`
	// Frontend is the language-frontend probe: parse + type-check + lower
	// of a representative user program, measured in isolation.
	Frontend perJobStats `json:"frontend_parse_lower"`
}

// perJobStats is one serving mode's per-job cost in the smoke probe.
type perJobStats struct {
	Jobs         int     `json:"jobs"`
	P50Micros    float64 `json:"p50_us"`
	P99Micros    float64 `json:"p99_us"`
	AllocsPerJob float64 `json:"allocs_per_job"`
	BytesPerJob  float64 `json:"bytes_per_job"`
}

// smokeSource is the user program the smoke run POSTs as a source job and
// measures in the frontend probe: a DOALL map, a reduction, and a serial
// recurrence — enough shape diversity to exercise selection.
const smokeSource = `param n = 512;
array xs[n] int = {3, 1, 4, 1, 5, 9, 2, 6};
array ys[n] int;
var acc int = 0;
func main() {
	for i = 0; i < n; i = i + 1 {
		ys[i] = xs[i] * 3 + i;
	}
	for i = 0; i < n; i = i + 1 {
		acc = acc + ys[i];
	}
	for i = 1; i < n; i = i + 1 {
		ys[i] = ys[i-1] + ys[i];
	}
}
`

// smokeSourceJSON is smokeSource as a JSON string literal for request bodies.
var smokeSourceJSON = func() string {
	b, err := json.Marshal(smokeSource)
	if err != nil {
		panic(err)
	}
	return string(b)
}()

// probeFrontend runs the language frontend (parse, type-check, lower to IR)
// n times over the smoke program and reports latency percentiles and
// allocation rate — the source-job overhead measured without the simulator.
func probeFrontend(n int) (perJobStats, error) {
	if _, err := lang.Compile(smokeSource, "frontend-probe", nil); err != nil {
		return perJobStats{}, fmt.Errorf("frontend probe: %w", err)
	}
	durs := make([]time.Duration, n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if _, err := lang.Compile(smokeSource, "frontend-probe", nil); err != nil {
			return perJobStats{}, err
		}
		durs[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&after)
	slices.Sort(durs)
	return perJobStats{
		Jobs:         n,
		P50Micros:    float64(durs[n/2].Microseconds()),
		P99Micros:    float64(durs[min(n-1, n*99/100)].Microseconds()),
		AllocsPerJob: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerJob:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}

// probePerJob serves n alternating inline jobs straight through the handler
// (no listener: the probe measures the serving path, not the TCP stack) with
// a one-entry result cache, so every request compiles-or-hits the artifact
// cache and simulates. It reports client-observed latency percentiles and
// the process-wide allocation rate per job.
func probePerJob(disablePool bool, n int) (perJobStats, error) {
	srv := server.New(server.Config{Workers: 1, CacheEntries: 1, DisableMachinePool: disablePool})
	h := srv.Handler()
	jobs := [2]string{
		`{"program": {"name": "probeA", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 16}
		]}, "strategy": "llp", "cores": 2}`,
		`{"program": {"name": "probeB", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 96, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 24}
		]}, "strategy": "llp", "cores": 2}`,
	}
	post := func(i int) error {
		req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(jobs[i&1]))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			return fmt.Errorf("probe job: status %d: %s", w.Code, w.Body.String())
		}
		return nil
	}
	for i := 0; i < 2; i++ { // warm the compile cache and (if enabled) the pool
		if err := post(i); err != nil {
			return perJobStats{}, err
		}
	}
	durs := make([]time.Duration, n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := post(i); err != nil {
			return perJobStats{}, err
		}
		durs[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&after)
	slices.Sort(durs)
	return perJobStats{
		Jobs:         n,
		P50Micros:    float64(durs[n/2].Microseconds()),
		P99Micros:    float64(durs[min(n-1, n*99/100)].Microseconds()),
		AllocsPerJob: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerJob:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
	}, nil
}
