package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"kernel_gsmllp_llp_2.golden", []string{"-kernel", "gsm-llp", "-cores", "2", "-strategy", "llp"}},
		{"kernel_gsmilp_ilp_2.golden", []string{"-kernel", "gsm-ilp", "-cores", "2", "-strategy", "ilp"}},
		{"kernel_gzip_ftlp_2.golden", []string{"-kernel", "gzip-strands", "-cores", "2", "-strategy", "ftlp"}},
		{"bench_rawcaudio_hybrid_2.golden", []string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "hybrid"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			if err := run(c.args, &stdout, &stderr); err != nil {
				t.Fatalf("run %v: %v", c.args, err)
			}
			golden(t, c.name, stdout.Bytes())
		})
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Error("missing -bench/-kernel accepted")
	}
	if err := run([]string{"-kernel", "nonesuch"}, &stdout, &stderr); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := run([]string{"-bench", "rawcaudio", "-strategy", "magic"}, &stdout, &stderr); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// TestSelectFlag: the shared -select flag reaches the compiler (auto mode
// annotates every region header with its tier) and rejects unknown modes.
func TestSelectFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "hybrid", "-select", "auto"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "tier=") || !strings.Contains(out, "choice=") {
		t.Errorf("auto compile dump lacks tier/choice annotations:\n%s", out)
	}
	if err := run([]string{"-bench", "rawcaudio", "-select", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown selection mode accepted")
	}
}
