// voltron-compile compiles a benchmark (or built-in kernel) and dumps the
// per-core instruction streams for inspection.
//
// Usage:
//
//	voltron-compile -bench gsmdecode -cores 4 -strategy hybrid
//	voltron-compile -kernel gsm-ilp -cores 2 -strategy ilp
package main

import (
	"flag"
	"fmt"
	"os"

	"voltron/internal/compiler"
	"voltron/internal/exp"
	"voltron/internal/ir"
	"voltron/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see internal/workload)")
	kernel := flag.String("kernel", "", "built-in kernel: gsm-llp, gzip-strands, gsm-ilp")
	cores := flag.Int("cores", 2, "number of cores")
	strategy := flag.String("strategy", "hybrid", "serial|ilp|ftlp|llp|hybrid")
	flag.Parse()

	var p *ir.Program
	var err error
	switch {
	case *bench != "":
		p, err = workload.Build(*bench)
	case *kernel == "gsm-llp":
		p = exp.GsmLLPKernel(16)
	case *kernel == "gzip-strands":
		p = exp.GzipStrandKernel(1024)
	case *kernel == "gsm-ilp":
		p = exp.GsmILPKernel(64)
	default:
		err = fmt.Errorf("need -bench or -kernel")
	}
	if err != nil {
		fatal(err)
	}
	strat := map[string]compiler.Strategy{
		"serial": compiler.Serial, "ilp": compiler.ForceILP,
		"ftlp": compiler.ForceFTLP, "llp": compiler.ForceLLP,
		"hybrid": compiler.Hybrid,
	}[*strategy]
	cp, err := compiler.Compile(p, compiler.Options{Cores: *cores, Strategy: strat})
	if err != nil {
		fatal(err)
	}
	for _, r := range cp.Regions {
		fmt.Printf("=== region %q mode=%v ===\n", r.Name, r.Mode)
		for c := 0; c < cp.Cores; c++ {
			fmt.Printf("--- core %d (%d insts) ---\n", c, len(r.Code[c]))
			rev := map[int][]int64{}
			for lbl, idx := range r.Labels[c] {
				rev[idx] = append(rev[idx], lbl)
			}
			for i, in := range r.Code[c] {
				for _, lbl := range rev[i] {
					fmt.Printf("B%d:\n", lbl)
				}
				fmt.Printf("  %4d  %v\n", i, in)
			}
		}
		if len(r.Fallback) > 0 {
			fmt.Printf("--- fallback (%d insts) ---\n", len(r.Fallback))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voltron-compile:", err)
	os.Exit(1)
}
