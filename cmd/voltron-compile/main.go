// voltron-compile compiles a benchmark (or built-in kernel) and dumps the
// per-core instruction streams for inspection.
//
// Usage:
//
//	voltron-compile -bench gsmdecode -cores 4 -strategy hybrid
//	voltron-compile -kernel gsm-ilp -cores 2 -strategy ilp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"voltron/internal/compiler"
	"voltron/internal/exp"
	"voltron/internal/ir"
	"voltron/internal/spec"
	"voltron/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-compile:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-compile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark name (see internal/workload)")
	kernel := fs.String("kernel", "", "built-in kernel: gsm-llp, gzip-strands, gsm-ilp")
	cores := spec.CoresFlag(fs)
	strategy := spec.StrategyFlag(fs)
	selectMode := spec.SelectFlag(fs)
	selectTh := spec.SelectThresholdFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var p *ir.Program
	var err error
	switch {
	case *bench != "":
		p, err = workload.Build(*bench)
	case *kernel == "gsm-llp":
		p = exp.GsmLLPKernel(16)
	case *kernel == "gzip-strands":
		p = exp.GzipStrandKernel(1024)
	case *kernel == "gsm-ilp":
		p = exp.GsmILPKernel(64)
	default:
		err = fmt.Errorf("need -bench or -kernel")
	}
	if err != nil {
		return err
	}
	strat, ok := spec.StrategyFor(*strategy)
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	sel, ok := spec.SelectionFor(*selectMode)
	if !ok {
		return fmt.Errorf("unknown selection mode %q", *selectMode)
	}
	if err := spec.ValidateCores(*cores); err != nil {
		return err
	}
	cp, err := compiler.Compile(p, compiler.Options{
		Cores: *cores, Strategy: strat, Selection: sel, SelectThreshold: *selectTh,
	})
	if err != nil {
		return err
	}
	for ri, r := range cp.Regions {
		fmt.Fprintf(stdout, "=== region %q mode=%v", r.Name, r.Mode)
		if ri < len(cp.Selection.Regions) {
			rs := cp.Selection.Regions[ri]
			fmt.Fprintf(stdout, " tier=%s choice=%q", rs.Tier, rs.Choice)
		}
		fmt.Fprintf(stdout, " ===\n")
		for c := 0; c < cp.Cores; c++ {
			fmt.Fprintf(stdout, "--- core %d (%d insts) ---\n", c, len(r.Code[c]))
			rev := map[int][]int64{}
			for lbl, idx := range r.Labels[c] {
				rev[idx] = append(rev[idx], lbl)
			}
			// Deterministic dump: co-located labels print in ascending order.
			for _, lbls := range rev {
				sort.Slice(lbls, func(i, j int) bool { return lbls[i] < lbls[j] })
			}
			for i, in := range r.Code[c] {
				for _, lbl := range rev[i] {
					fmt.Fprintf(stdout, "B%d:\n", lbl)
				}
				fmt.Fprintf(stdout, "  %4d  %v\n", i, in)
			}
		}
		if len(r.Fallback) > 0 {
			fmt.Fprintf(stdout, "--- fallback (%d insts) ---\n", len(r.Fallback))
		}
	}
	return nil
}
