package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden diffs got against testdata/name, rewriting it under -update.
// Simulation and measured strategy selection are deterministic, so the
// binary's stdout is stable across hosts and worker counts.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (rerun with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"list.golden", []string{"-list"}},
		{"gsmdecode_hybrid_4.golden", []string{"-bench", "gsmdecode", "-cores", "4", "-strategy", "hybrid", "-j", "1"}},
		{"rawcaudio_llp_2.golden", []string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "llp", "-j", "1"}},
		{"art_ftlp_2_verbose.golden", []string{"-bench", "179.art", "-cores", "2", "-strategy", "ftlp", "-v", "-j", "1"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			if err := run(c.args, &stdout, &stderr); err != nil {
				t.Fatalf("run %v: %v", c.args, err)
			}
			golden(t, c.name, stdout.Bytes())
		})
	}
}

// TestTraceFile: -trace writes deterministic Chrome trace-event JSON (two
// runs produce byte-identical files), -trace-text writes the legacy
// per-instruction issue trace.
func TestTraceFile(t *testing.T) {
	traceOf := func(dir string) []byte {
		t.Helper()
		path := filepath.Join(dir, "trace.json")
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "llp", "-trace", path, "-j", "1"}, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("trace not written: %v", err)
		}
		return b
	}
	a := traceOf(t.TempDir())
	if !json.Valid(a) {
		t.Errorf("trace is not valid JSON:\n%.200s", a)
	}
	if !strings.Contains(string(a), "traceEvents") {
		t.Errorf("trace has no traceEvents array:\n%.200s", a)
	}
	if b := traceOf(t.TempDir()); !bytes.Equal(a, b) {
		t.Errorf("identical runs wrote different traces")
	}
}

func TestTraceTextFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "llp", "-trace-text", path, "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	if !strings.Contains(string(b), "=== region") {
		t.Errorf("trace has no region transitions:\n%.200s", b)
	}
}

// TestStallsReport: -stalls prints the attribution table; its rows must be
// consistent with the verbose per-core stall breakdown of the same run.
func TestStallsReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "llp", "-stalls", "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "stall attribution") {
		t.Errorf("-stalls printed no report:\n%.300s", out)
	}
	if !strings.Contains(out, "TOTAL") {
		t.Errorf("report has no TOTAL row:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-strategy", "magic"}, &stdout, &stderr); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run([]string{"-bench", "nonesuch"}, &stdout, &stderr); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-bench", "rawcaudio", "-src", "x.vs"}, &stdout, &stderr); err == nil {
		t.Error("-bench and -src accepted together")
	}
	if err := run([]string{"-src", "nonesuch.vs"}, &stdout, &stderr); err == nil {
		t.Error("missing source file accepted")
	}
}

// TestSourceFlag: -src compiles a language program through the same
// pipeline; -inputs overrides declared params; frontend failures surface
// positioned diagnostics.
func TestSourceFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sum.vs")
	src := "param n = 64;\nvar acc int = 0;\narray out[n] int;\nfunc main() {\n\tfor i = 0; i < n; i = i + 1 {\n\t\tout[i] = i * 2;\n\t\tacc = acc + out[i];\n\t}\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-src", path, "-cores", "2", "-strategy", "serial", "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if out := stdout.String(); !strings.Contains(out, "sum on 2 cores") {
		t.Errorf("missing summary line:\n%s", out)
	}
	// A larger n takes more cycles — the override reached the frontend.
	base := stdout.String()
	stdout.Reset()
	if err := run([]string{"-src", path, "-inputs", "n=4096", "-cores", "2", "-strategy", "serial", "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.String() == base {
		t.Error("-inputs n=4096 did not change the run")
	}
	if err := run([]string{"-src", path, "-inputs", "n=oops"}, &stdout, &stderr); err == nil {
		t.Error("bad -inputs value accepted")
	}
	bad := filepath.Join(dir, "bad.vs")
	if err := os.WriteFile(bad, []byte("func main() {\n\tmissing = 1;\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-src", bad}, &stdout, &stderr)
	if err == nil {
		t.Fatal("undeclared variable accepted")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("diagnostic lacks a position: %v", err)
	}
}

// TestSelectFlag: the shared -select flag reaches the compiler (non-default
// modes print the selection summary line) and rejects unknown modes.
func TestSelectFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-bench", "rawcaudio", "-cores", "2", "-strategy", "hybrid", "-select", "auto", "-j", "1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if out := stdout.String(); !strings.Contains(out, "selection: ") {
		t.Errorf("auto run lacks the selection summary line:\n%s", out)
	}
	if err := run([]string{"-bench", "rawcaudio", "-select", "bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown selection mode accepted")
	}
}
