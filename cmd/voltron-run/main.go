// voltron-run compiles one benchmark and simulates it, printing the cycle
// breakdown and speedup over the single-core baseline.
//
// Usage:
//
//	voltron-run -bench gsmdecode -cores 4 -strategy hybrid
//	voltron-run -bench 179.art -cores 2 -strategy ftlp -v
//	voltron-run -bench rawcaudio -j 1        # sequential measured selection
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-run:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "gsmdecode", "benchmark name (use -list)")
	cores := fs.Int("cores", 4, "number of cores")
	strategy := fs.String("strategy", "hybrid", "serial|ilp|ftlp|llp|hybrid")
	list := fs.Bool("list", false, "list benchmarks and exit")
	verbose := fs.Bool("v", false, "per-core stall breakdown")
	tracePath := fs.String("trace", "", "write a cycle-by-cycle issue trace to this file")
	workers := fs.Int("j", 0, "measured-selection workers (0 = all host CPUs, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	strat, ok := map[string]compiler.Strategy{
		"serial": compiler.Serial, "ilp": compiler.ForceILP,
		"ftlp": compiler.ForceFTLP, "llp": compiler.ForceLLP,
		"hybrid": compiler.Hybrid,
	}[*strategy]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	p, err := workload.Build(*bench)
	if err != nil {
		return err
	}
	pr, err := prof.Collect(p)
	if err != nil {
		return err
	}
	simulate := func(s compiler.Strategy, n int, traced bool) (*core.RunResult, error) {
		cp, err := compiler.Compile(p, compiler.Options{Cores: n, Strategy: s, Profile: pr, Workers: *workers})
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(n)
		if traced && *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			w := bufio.NewWriter(f)
			defer w.Flush()
			cfg.Trace = w
		}
		return core.New(cfg).Run(cp)
	}
	base, err := simulate(compiler.Serial, 1, false)
	if err != nil {
		return err
	}
	res, err := simulate(strat, *cores, true)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s on %d cores (%s): %d cycles, speedup %.2fx over 1-core (%d cycles)\n",
		*bench, *cores, strat, res.TotalCycles,
		float64(base.TotalCycles)/float64(res.TotalCycles), base.TotalCycles)
	fmt.Fprintf(stdout, "mode occupancy: %.0f%% coupled / %.0f%% decoupled; spawns=%d tm-conflicts=%d\n",
		100*res.ModeFraction(stats.ModeCoupled), 100*res.ModeFraction(stats.ModeDecoupled),
		res.Spawns, res.TMConflicts)
	if *verbose {
		for i := range res.Run.Cores {
			c := &res.Run.Cores[i]
			fmt.Fprintf(stdout, "  core %d:", i)
			for _, k := range stats.Kinds() {
				if c.Cycles[k] > 0 {
					fmt.Fprintf(stdout, " %s=%d", k, c.Cycles[k])
				}
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "  memory: L2 hits=%d misses=%d c2c=%d invalidations=%d writebacks=%d\n",
			res.MemStats.L2Hits, res.MemStats.L2Misses, res.MemStats.C2CTransfers,
			res.MemStats.Invalidations, res.MemStats.Writebacks)
	}
	return nil
}
