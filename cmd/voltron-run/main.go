// voltron-run compiles one benchmark and simulates it, printing the cycle
// breakdown and speedup over the single-core baseline.
//
// Usage:
//
//	voltron-run -bench gsmdecode -cores 4 -strategy hybrid
//	voltron-run -bench 179.art -cores 2 -strategy ftlp -v
//	voltron-run -bench rawcaudio -j 1        # sequential measured selection
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/workload"
)

func main() {
	bench := flag.String("bench", "gsmdecode", "benchmark name (use -list)")
	cores := flag.Int("cores", 4, "number of cores")
	strategy := flag.String("strategy", "hybrid", "serial|ilp|ftlp|llp|hybrid")
	list := flag.Bool("list", false, "list benchmarks and exit")
	verbose := flag.Bool("v", false, "per-core stall breakdown")
	tracePath := flag.String("trace", "", "write a cycle-by-cycle issue trace to this file")
	workers := flag.Int("j", 0, "measured-selection workers (0 = all host CPUs, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	strat, ok := map[string]compiler.Strategy{
		"serial": compiler.Serial, "ilp": compiler.ForceILP,
		"ftlp": compiler.ForceFTLP, "llp": compiler.ForceLLP,
		"hybrid": compiler.Hybrid,
	}[*strategy]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	p, err := workload.Build(*bench)
	if err != nil {
		fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		fatal(err)
	}
	run := func(s compiler.Strategy, n int, traced bool) *core.RunResult {
		cp, err := compiler.Compile(p, compiler.Options{Cores: n, Strategy: s, Profile: pr, Workers: *workers})
		if err != nil {
			fatal(err)
		}
		cfg := core.DefaultConfig(n)
		if traced && *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w := bufio.NewWriter(f)
			defer w.Flush()
			cfg.Trace = w
		}
		res, err := core.New(cfg).Run(cp)
		if err != nil {
			fatal(err)
		}
		return res
	}
	base := run(compiler.Serial, 1, false)
	res := run(strat, *cores, true)
	fmt.Printf("%s on %d cores (%s): %d cycles, speedup %.2fx over 1-core (%d cycles)\n",
		*bench, *cores, strat, res.TotalCycles,
		float64(base.TotalCycles)/float64(res.TotalCycles), base.TotalCycles)
	fmt.Printf("mode occupancy: %.0f%% coupled / %.0f%% decoupled; spawns=%d tm-conflicts=%d\n",
		100*res.ModeFraction(stats.ModeCoupled), 100*res.ModeFraction(stats.ModeDecoupled),
		res.Spawns, res.TMConflicts)
	if *verbose {
		for i := range res.Run.Cores {
			c := &res.Run.Cores[i]
			fmt.Printf("  core %d:", i)
			for _, k := range stats.Kinds() {
				if c.Cycles[k] > 0 {
					fmt.Printf(" %s=%d", k, c.Cycles[k])
				}
			}
			fmt.Println()
		}
		fmt.Printf("  memory: L2 hits=%d misses=%d c2c=%d invalidations=%d writebacks=%d\n",
			res.MemStats.L2Hits, res.MemStats.L2Misses, res.MemStats.C2CTransfers,
			res.MemStats.Invalidations, res.MemStats.Writebacks)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "voltron-run:", err)
	os.Exit(1)
}
