// voltron-run compiles one benchmark or user source program and simulates
// it, printing the cycle breakdown and speedup over the single-core
// baseline.
//
// Usage:
//
//	voltron-run -bench gsmdecode -cores 4 -strategy hybrid
//	voltron-run -bench 179.art -cores 2 -strategy ftlp -v
//	voltron-run -bench rawcaudio -j 1        # sequential measured selection
//	voltron-run -bench cjpeg -trace out.json # Chrome trace (open in Perfetto)
//	voltron-run -bench cjpeg -stalls         # stall-attribution report
//	voltron-run -src prog.vs                 # user program (see examples/lang)
//	voltron-run -src prog.vs -inputs n=4096  # override declared params
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/lang"
	"voltron/internal/prof"
	"voltron/internal/spec"
	"voltron/internal/stats"
	"voltron/internal/trace"
	"voltron/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "voltron-run:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("voltron-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "", "benchmark name (use -list)")
	srcPath := fs.String("src", "", "source program file (mutually exclusive with -bench)")
	inputs := fs.String("inputs", "", "param overrides for -src as k=v[,k=v...]")
	cores := spec.CoresFlag(fs)
	strategy := spec.StrategyFlag(fs)
	selectMode := spec.SelectFlag(fs)
	selectTh := spec.SelectThresholdFlag(fs)
	list := fs.Bool("list", false, "list benchmarks and exit")
	verbose := fs.Bool("v", false, "per-core stall breakdown")
	tracePath := fs.String("trace", "", "write a Chrome trace (Perfetto-loadable JSON) to this file")
	traceText := fs.String("trace-text", "", "write the cycle-by-cycle instruction issue trace to this file")
	stalls := fs.Bool("stalls", false, "print the per-region stall-attribution report")
	workers := fs.Int("j", 0, "measured-selection workers (0 = all host CPUs, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, n := range workload.Names() {
			fmt.Fprintln(stdout, n)
		}
		return nil
	}
	strat, ok := spec.StrategyFor(*strategy)
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	if err := spec.ValidateCores(*cores); err != nil {
		return err
	}
	sel, ok := spec.SelectionFor(*selectMode)
	if !ok {
		return fmt.Errorf("unknown selection mode %q", *selectMode)
	}
	if *bench != "" && *srcPath != "" {
		return fmt.Errorf("-bench and -src are mutually exclusive")
	}
	name := *bench
	var p *ir.Program
	if *srcPath != "" {
		b, err := os.ReadFile(*srcPath)
		if err != nil {
			return err
		}
		ins, err := parseInputs(*inputs)
		if err != nil {
			return err
		}
		name = strings.TrimSuffix(filepath.Base(*srcPath), filepath.Ext(*srcPath))
		if p, err = lang.Compile(string(b), name, ins); err != nil {
			return err
		}
	} else {
		if name == "" {
			name = "gsmdecode"
		}
		var err error
		if p, err = workload.Build(name); err != nil {
			return err
		}
	}
	pr, err := prof.Collect(p)
	if err != nil {
		return err
	}
	tracing := *tracePath != "" || *traceText != "" || *stalls
	var tr *trace.Tracer
	var mainCP *core.CompiledProgram
	simulate := func(s compiler.Strategy, n int, traced bool) (*core.RunResult, error) {
		cp, err := compiler.Compile(p, compiler.Options{
			Cores: n, Strategy: s, Profile: pr, Workers: *workers,
			Selection: sel, SelectThreshold: *selectTh,
		})
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(n)
		if traced && tracing {
			tr = trace.New()
			cfg.Tracer = tr
		}
		if traced {
			mainCP = cp
		}
		return core.New(cfg).Run(cp)
	}
	base, err := simulate(compiler.Serial, 1, false)
	if err != nil {
		return err
	}
	res, err := simulate(strat, *cores, true)
	if err != nil {
		// An aborted run (deadlock, schedule violation) still dumps the
		// requested traces — that is when they are most needed.
		if tr != nil && *traceText != "" {
			writeRendered(*traceText, tr.WriteText)
		}
		if tr != nil && *tracePath != "" {
			writeRendered(*tracePath, tr.WriteChrome)
		}
		return err
	}
	fmt.Fprintf(stdout, "%s on %d cores (%s): %d cycles, speedup %.2fx over 1-core (%d cycles)\n",
		name, *cores, strat, res.TotalCycles,
		float64(base.TotalCycles)/float64(res.TotalCycles), base.TotalCycles)
	fmt.Fprintf(stdout, "mode occupancy: %.0f%% coupled / %.0f%% decoupled; spawns=%d tm-conflicts=%d\n",
		100*res.ModeFraction(stats.ModeCoupled), 100*res.ModeFraction(stats.ModeDecoupled),
		res.Spawns, res.TMConflicts)
	if ssum := mainCP.Selection; ssum.Mode != "" && sel != compiler.SelectMeasured {
		fmt.Fprintf(stdout, "selection: %s (%d static, %d escalated, %d measured)\n",
			ssum.Mode, ssum.Static, ssum.Escalated, ssum.Measured)
	}
	if *verbose {
		for i := range res.Run.Cores {
			c := &res.Run.Cores[i]
			fmt.Fprintf(stdout, "  core %d:", i)
			for _, k := range stats.Kinds() {
				if c.Cycles[k] > 0 {
					fmt.Fprintf(stdout, " %s=%d", k, c.Cycles[k])
				}
			}
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "  memory: L2 hits=%d misses=%d c2c=%d invalidations=%d writebacks=%d\n",
			res.MemStats.L2Hits, res.MemStats.L2Misses, res.MemStats.C2CTransfers,
			res.MemStats.Invalidations, res.MemStats.Writebacks)
	}
	if *stalls {
		if err := tr.Report().WriteText(stdout); err != nil {
			return err
		}
	}
	if *tracePath != "" {
		if err := writeRendered(*tracePath, tr.WriteChrome); err != nil {
			return err
		}
	}
	if *traceText != "" {
		if err := writeRendered(*traceText, tr.WriteText); err != nil {
			return err
		}
	}
	return nil
}

// parseInputs parses the -inputs flag ("k=v,k=v") into param overrides.
func parseInputs(s string) (map[string]int64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int64{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -inputs entry %q (want k=v)", kv)
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -inputs value %q: %v", kv, err)
		}
		out[k] = n
	}
	return out, nil
}

// writeRendered renders one trace view into a freshly created file.
func writeRendered(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if err := render(w); err != nil {
		return err
	}
	return w.Flush()
}
