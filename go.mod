module voltron

go 1.22
