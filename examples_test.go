package voltron

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExamples builds and executes every example program with `go run`,
// asserting a zero exit status and the presence of a marker line that the
// example's commentary depends on. This keeps the examples compiling and
// truthful as the APIs they showcase evolve.
func TestExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples shell out to go run")
	}
	cases := []struct {
		dir     string
		markers []string
	}{
		{"quickstart", []string{"result        : sum =", "mode occupancy:"}},
		{"hybrid", []string{"hybrid beats every single technique"}},
		{"gsmdecode-ilp", []string{"speedup"}},
		{"gsmdecode-llp", []string{"speedup"}},
		{"gzip-strands", []string{"speedup"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", c.dir))
			var stdout, stderr bytes.Buffer
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("go run examples/%s: %v\nstderr:\n%s", c.dir, err, stderr.String())
			}
			for _, m := range c.markers {
				if !strings.Contains(stdout.String(), m) {
					t.Errorf("examples/%s output missing %q:\n%s", c.dir, m, stdout.String())
				}
			}
		})
	}
}
