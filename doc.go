// Package voltron is a full reproduction of "Extending Multicore
// Architectures to Exploit Hybrid Parallelism in Single-thread
// Applications" (Zhong, Lieberman, Mahlke — HPCA 2007): the Voltron
// dual-mode multicore architecture, its compiler, and the paper's entire
// evaluation.
//
// The implementation lives under internal/:
//
//	isa       — HPL-PD-style VLIW ISA with the Voltron extensions
//	ir        — compiler IR, CFG/dominator/loop/dependence analyses
//	interp    — reference interpreter (golden semantics + profiling hooks)
//	prof      — trip-count / carried-dependence / miss-rate profiles
//	mem       — L1/L2 caches, MOESI snooping bus, transactional memory
//	xnet      — dual-mode scalar operand network (direct + queue)
//	core      — the machine: lock-step and decoupled execution
//	compiler  — BUG, eBUG, DSWP, statistical DOALL, unrolling, selection
//	workload  — the 25-benchmark synthetic suite + random program generator
//	exp       — harnesses regenerating every figure of the evaluation
//	stats     — simulation counters plus host-side metrics (histograms)
//	server    — HTTP compile-and-simulate service with content-addressed
//	            caching (cmd/voltron-serve)
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each figure under `go test -bench`.
package voltron
