// Inclusive prefix sum: a loop-carried recurrence through memory that can
// never be DOALL.
param n = 512;

array v[n] int = {5, -2, 9, 4, 1, 7, -3, 8};

func main() {
	for i = 0; i < n; i = i + 1 {
		v[i] = v[i & 7] + i;
	}
	for i = 1; i < n; i = i + 1 {
		v[i] = v[i-1] + v[i];
	}
}
