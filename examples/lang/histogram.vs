// Histogram: a data-dependent scatter whose updates collide, so the loop
// carries dependences through memory.
param n = 1024;

array keys[n] int = {9, 2, 11, 2, 7, 15, 4, 2};
array hist[16] int;

func main() {
	for i = 0; i < n; i = i + 1 {
		keys[i] = (keys[i] + i * 5) & 15;
	}
	for i = 0; i < n; i = i + 1 {
		hist[keys[i] & 15] = hist[keys[i] & 15] + 1;
	}
}
