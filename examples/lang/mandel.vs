// Escape-time iteration over an 8x8 grid: every outer iteration runs an
// inner data-dependent while loop, so per-iteration work is irregular.
array out[256] int;

func main() {
	for p = 0; p < 256; p = p + 1 {
		var cr float = float(p % 16) * 0.1875 - 2.0;
		var ci float = float(p / 16) * 0.125 - 1.0;
		var zr float = 0.0;
		var zi float = 0.0;
		var iter int = 0;
		for iter < 24 && zr * zr + zi * zi <= 4.0 {
			var t float = zr * zr - zi * zi + cr;
			zi = zr * zi * 2.0 + ci;
			zr = t;
			iter = iter + 1;
		}
		out[p] = iter;
	}
}
