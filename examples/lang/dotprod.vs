// Dot product with a scaling map: a DOALL float map feeding a float
// reduction.
param n = 1024;

array xs[n] float = {1.5, 2.0, 0.25, 3.5, 0.75, 1.125};
array ys[n] float;
var dot float = 0.0;

func main() {
	for i = 0; i < n; i = i + 1 {
		ys[i] = xs[i] * 0.5 + float(i) * 0.125;
	}
	for i = 0; i < n; i = i + 1 {
		dot = dot + xs[i] * ys[i];
	}
}
