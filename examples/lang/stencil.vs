// 3-point stencil: affine reads at i-1, i, i+1, all provably in bounds,
// writing a disjoint array — the classic DOALL.
param n = 1024;

array src[n] int;
array dst[n] int;

func main() {
	for i = 0; i < n; i = i + 1 {
		src[i] = i * 3 + (i & 7);
	}
	for i = 1; i < n - 1; i = i + 1 {
		dst[i] = (src[i-1] + src[i] * 2 + src[i+1]) / 4;
	}
}
