// 8x8 integer matrix multiply: three nested affine loops with a scalar
// accumulator in the innermost.
array ma[64] int = {3, 1, 4, 1, 5, 9, 2, 6};
array mb[64] int = {2, 7, 1, 8, 2, 8, 1, 8};
array mc[64] int;

func main() {
	for i = 0; i < 8; i = i + 1 {
		ma[i*8+i] = ma[i*8+i] + i + 1;
	}
	for i = 0; i < 8; i = i + 1 {
		for j = 0; j < 8; j = j + 1 {
			var t int = 0;
			for k = 0; k < 8; k = k + 1 {
				t = t + ma[i*8+k] * mb[k*8+j];
			}
			mc[i*8+j] = t;
		}
	}
}
