// A long serial dependence chain through scalars and a helper function:
// plenty of instruction-level parallelism, no loop-level parallelism.
param n = 512;

array acc[n] int = {11, 23, 5, 17};
var h int = 7;

func step(v int, w int) int {
	return (v * 31 + w) ^ (v >> 3);
}

func main() {
	for i = 0; i < n; i = i + 1 {
		h = step(h, acc[i] + i);
		acc[i] = h & 1023;
	}
}
