// Branch-heavy classification plus a data-dependent (but bounded)
// settling loop over cross-region scalars.
param n = 512;

array v[n] int = {4, -7, 0, 12, -3, 9, 0, -1};
var pos int = 0;
var neg int = 0;

func main() {
	for i = 0; i < n; i = i + 1 {
		if v[i] > 0 {
			pos = pos + v[i];
		} else if v[i] < 0 {
			neg = neg - v[i];
		} else {
			v[i] = i;
		}
	}
	var steps int = 0;
	for pos > neg && steps < 4000 {
		pos = pos - 3;
		steps = steps + 1;
	}
}
