// The paper's Figure 8 worked example: the 164.gzip longest_match loop
//
//	do { ... } while (*(scan+=2) == *(match+=2) && ... && scan < strend);
//
// compiled as fine-grain strands: eBUG places the scan stream on core 0 and
// the match stream on core 1 so their cache misses overlap (memory-level
// parallelism); the loaded match values travel over the queue-mode operand
// network and the loop predicate is sent back each iteration — exactly the
// code shape of the paper's Figure 8(b)/(c). The paper reports 1.2x.
package main

import (
	"fmt"
	"log"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/exp"
	"voltron/internal/stats"
)

func main() {
	base := run(compiler.Serial, 1)
	par := run(compiler.ForceFTLP, 2)
	fmt.Printf("164.gzip longest_match loop (Figure 8)\n")
	fmt.Printf("  serial, 1 core    : %7d cycles (D-stalls %d)\n",
		base.TotalCycles, base.Run.Cores[0].Cycles[stats.DStall])
	fmt.Printf("  strands, 2 cores  : %7d cycles (per-core D-stalls %d / %d)\n",
		par.TotalCycles,
		par.Run.Cores[0].Cycles[stats.DStall], par.Run.Cores[1].Cycles[stats.DStall])
	fmt.Printf("  speedup           : %.2fx (paper: 1.20x)\n",
		float64(base.TotalCycles)/float64(par.TotalCycles))
	fmt.Printf("  the split streams overlap their misses: each core carries "+
		"half the serial run's %d stall cycles\n", base.Run.Cores[0].Cycles[stats.DStall])
}

func run(s compiler.Strategy, cores int) *core.RunResult {
	p := exp.GzipStrandKernel(2048)
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
