// The paper's Figure 9 worked example: the gsmdecode short-term filter, a
// loop with abundant ILP and predictable latencies — the case for coupled
// execution. The compiler unrolls the loop, BUG partitions the operations
// across the lock-step cores, values move as same-cycle PUT/GET pairs on
// the direct-mode network, and the replicated unbundled branches keep the
// cores synchronized. The paper reports 1.78x on 2 cores.
package main

import (
	"fmt"
	"log"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/exp"
	"voltron/internal/stats"
)

func main() {
	base := run(compiler.Serial, 1)
	par := run(compiler.ForceILP, 2)
	fmt.Printf("gsmdecode filter loop (Figure 9)\n")
	fmt.Printf("  serial,  1 core : %7d cycles\n", base.TotalCycles)
	fmt.Printf("  coupled, 2 cores: %7d cycles (lockstep stalls: %d)\n",
		par.TotalCycles, par.Run.Cores[1].Cycles[stats.Lockstep])
	fmt.Printf("  speedup         : %.2fx (paper: 1.78x)\n",
		float64(base.TotalCycles)/float64(par.TotalCycles))
}

func run(s compiler.Strategy, cores int) *core.RunResult {
	p := exp.GsmILPKernel(512)
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
