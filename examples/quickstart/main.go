// Quickstart: author a small program in the Voltron IR, compile it for a
// 4-core machine with hybrid region-by-region parallelization, simulate it,
// and inspect the speedup and where the cycles went.
package main

import (
	"fmt"
	"log"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/stats"
)

func main() {
	// Build:  for (i = 0; i < 512; i++) dst[i] = src[i]*3 + 7
	//         sum = Σ dst[i]
	p := ir.NewProgram("quickstart")
	src := p.Array("src", 512)
	dst := p.Array("dst", 512)
	out := p.Array("out", 1)
	for i := int64(0); i < 512; i++ {
		p.SetInit(src, i, i%97)
	}

	r1 := p.Region("map")
	pre := r1.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 512, Step: 1},
		func(b *ir.Block, i ir.Value) *ir.Block {
			off := b.ShlI(i, 3)
			v := b.Load(src, b.Add(sb, off), 0)
			b.Store(dst, b.Add(db, off), 0, b.AddI(b.MulI(v, 3), 7))
			return b
		})
	after.ExitRegion()
	r1.Seal()

	r2 := p.Region("reduce")
	pre2 := r2.NewBlock()
	db2 := pre2.AddrOf(dst)
	acc := pre2.MovI(0)
	after2 := ir.BuildCountedLoop(pre2, ir.LoopSpec{Start: 0, Limit: 512, Step: 1},
		func(b *ir.Block, i ir.Value) *ir.Block {
			off := b.ShlI(i, 3)
			b.Accum(isa.ADD, acc, b.Load(dst, b.Add(db2, off), 0))
			return b
		})
	ob := after2.AddrOf(out)
	after2.Store(out, ob, 0, acc)
	after2.ExitRegion()
	r2.Seal()

	// Baseline: one core.
	base := run(p, compiler.Serial, 1)
	// Hybrid on four cores: the compiler picks a strategy per region
	// (both loops here are statistical DOALL, so they chunk across cores
	// under transactional speculation).
	par := run(p, compiler.Hybrid, 4)

	fmt.Printf("result        : sum = %d\n", int64(par.Mem.LoadW(out.Base)))
	fmt.Printf("single core   : %d cycles\n", base.TotalCycles)
	fmt.Printf("4-core hybrid : %d cycles  (speedup %.2fx)\n",
		par.TotalCycles, float64(base.TotalCycles)/float64(par.TotalCycles))
	fmt.Printf("mode occupancy: %.0f%% coupled, %.0f%% decoupled\n",
		100*par.ModeFraction(stats.ModeCoupled), 100*par.ModeFraction(stats.ModeDecoupled))
	for i := range par.Run.Cores {
		c := &par.Run.Cores[i]
		fmt.Printf("  core %d: busy=%d D-stall=%d recv=%d sync=%d\n", i,
			c.Cycles[stats.Busy], c.Cycles[stats.DStall],
			c.Cycles[stats.RecvData], c.Cycles[stats.SyncCallRet])
	}
}

func run(p *ir.Program, s compiler.Strategy, cores int) *core.RunResult {
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
