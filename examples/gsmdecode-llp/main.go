// The paper's Figure 7 worked example: the gsmdecode DOALL loop
//
//	for (i = 0; i < 8; ++i) { uf[i] = u[i]; rpf[i] = rp[i] * scalef; }
//
// compiled as a statistical DOALL loop: the iterations are chunked across
// two cores and run speculatively under the transactional memory, with the
// induction variable replicated per chunk. The paper reports 1.9x.
package main

import (
	"fmt"
	"log"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/exp"
)

func main() {
	p := exp.GsmLLPKernel(64)
	base := run(p.Name, compiler.Serial, 1)
	par := run(p.Name, compiler.ForceLLP, 2)
	fmt.Printf("gsmdecode uf/rpf loop (Figure 7)\n")
	fmt.Printf("  serial, 1 core : %7d cycles\n", base)
	fmt.Printf("  LLP,    2 cores: %7d cycles\n", par)
	fmt.Printf("  speedup        : %.2fx (paper: 1.90x)\n", float64(base)/float64(par))
}

func run(_ string, s compiler.Strategy, cores int) int64 {
	p := exp.GsmLLPKernel(64)
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	if res.TMConflicts != 0 {
		log.Fatalf("unexpected transactional conflicts: %d", res.TMConflicts)
	}
	return res.TotalCycles
}
