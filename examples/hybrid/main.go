// Hybrid execution across a whole benchmark: cjpeg's regions have
// different characters (a DOALL color conversion, an ILP-rich DCT, a
// branchy encoder), so the compiler picks a different technique — and the
// machine a different execution mode — per region, switching between
// coupled and decoupled execution at region boundaries (the behaviour
// behind the paper's Figures 13 and 14).
package main

import (
	"fmt"
	"log"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/workload"
)

func main() {
	p, err := workload.Build("cjpeg")
	if err != nil {
		log.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		log.Fatal(err)
	}
	base := run(p, pr, compiler.Serial, 1)
	fmt.Println("cjpeg under each strategy (4 cores):")
	for _, s := range []compiler.Strategy{compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP, compiler.Hybrid} {
		res := run(p, pr, s, 4)
		fmt.Printf("  %-15s %7d cycles  speedup %.2fx", s, res.TotalCycles,
			float64(base.TotalCycles)/float64(res.TotalCycles))
		if s == compiler.Hybrid {
			fmt.Printf("  (%.0f%% coupled / %.0f%% decoupled)",
				100*res.ModeFraction(stats.ModeCoupled),
				100*res.ModeFraction(stats.ModeDecoupled))
		}
		fmt.Println()
	}
	fmt.Println("hybrid beats every single technique: different regions want different parallelism.")
}

func run(p *ir.Program, pr *prof.Profile, s compiler.Strategy, cores int) *core.RunResult {
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: s, Profile: pr})
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
