package lang

// Shared scalar semantics. The constant folder, the AST evaluator and the
// lowered IR must be observably identical, so the single source of truth
// for every integer operation lives here, mirroring interp.EvalOp:
// two's-complement wraparound, division and remainder by zero yield zero
// (the machine does not trap), and shift counts use only their low six
// bits.

// evalIntOp applies one integer binary operation with machine semantics.
func evalIntOp(op string, a, b int64) int64 {
	switch op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "/":
		if b == 0 {
			return 0
		}
		return a / b
	case "%":
		if b == 0 {
			return 0
		}
		return a % b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<<":
		return a << (uint64(b) & 63)
	case ">>":
		return a >> (uint64(b) & 63)
	}
	panic("lang: not an int operator: " + op)
}

// wrapIndex normalizes an array index to [0, words): ((i % n) + n) % n,
// the exact op sequence the lowerer emits when range analysis cannot
// prove the index in bounds. For a power-of-two length this equals
// i & (words-1), which the lowerer emits instead (one op, still exact).
func wrapIndex(i, words int64) int64 {
	m := i % words // words >= 1 always (checked at declaration)
	return (m + words) % words
}
