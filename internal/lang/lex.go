package lang

import (
	"fmt"
	"strconv"
)

// Pos is a 1-based source position (column counts bytes).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// tokKind enumerates the token vocabulary.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat

	// Keywords.
	tKwParam
	tKwArray
	tKwVar
	tKwFunc
	tKwIf
	tKwElse
	tKwFor
	tKwReturn
	tKwInt
	tKwFloat

	// Punctuation and operators.
	tLParen
	tRParen
	tLBrace
	tRBrace
	tLBrack
	tRBrack
	tComma
	tSemi
	tAssign // =
	tEq     // ==
	tNe     // !=
	tLt
	tLe
	tGt
	tGe
	tPlus
	tMinus
	tStar
	tSlash
	tPercent
	tAmp
	tPipe
	tCaret
	tShl
	tShr
	tAndAnd
	tOrOr
	tNot
)

var keywords = map[string]tokKind{
	"param":  tKwParam,
	"array":  tKwArray,
	"var":    tKwVar,
	"func":   tKwFunc,
	"if":     tKwIf,
	"else":   tKwElse,
	"for":    tKwFor,
	"return": tKwReturn,
	"int":    tKwInt,
	"float":  tKwFloat,
}

// tokName renders a token kind for error messages.
var tokName = map[tokKind]string{
	tEOF: "end of file", tIdent: "identifier", tInt: "integer literal",
	tFloat:   "float literal",
	tKwParam: "param", tKwArray: "array", tKwVar: "var", tKwFunc: "func",
	tKwIf: "if", tKwElse: "else", tKwFor: "for", tKwReturn: "return",
	tKwInt: "int", tKwFloat: "float",
	tLParen: "(", tRParen: ")", tLBrace: "{", tRBrace: "}",
	tLBrack: "[", tRBrack: "]", tComma: ",", tSemi: ";",
	tAssign: "=", tEq: "==", tNe: "!=", tLt: "<", tLe: "<=", tGt: ">",
	tGe: ">=", tPlus: "+", tMinus: "-", tStar: "*", tSlash: "/",
	tPercent: "%", tAmp: "&", tPipe: "|", tCaret: "^", tShl: "<<",
	tShr: ">>", tAndAnd: "&&", tOrOr: "||", tNot: "!",
}

// token is one lexeme with its source position.
type token struct {
	kind tokKind
	pos  Pos
	text string  // idents
	ival int64   // tInt
	fval float64 // tFloat
}

// lexer produces tokens from source bytes, tracking line/column.
type lexer struct {
	src  string
	off  int
	line int
	col  int
	err  *Error // first lexical error
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) pos() Pos { return Pos{lx.line, lx.col} }

// advance consumes n bytes (which must not contain a newline).
func (lx *lexer) advance(n int) {
	lx.off += n
	lx.col += n
}

func (lx *lexer) peekByte(i int) byte {
	if lx.off+i >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+i]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// next scans the next token. After an error it returns EOF; the error is
// in lx.err.
func (lx *lexer) next() token {
	for {
		c := lx.peekByte(0)
		switch {
		case c == 0:
			return token{kind: tEOF, pos: lx.pos()}
		case c == '\n':
			lx.off++
			lx.line++
			lx.col = 1
			continue
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance(1)
			continue
		case c == '/' && lx.peekByte(1) == '/':
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
			continue
		}
		break
	}
	pos := lx.pos()
	c := lx.peekByte(0)
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.src[lx.off]) {
			lx.advance(1)
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return token{kind: kw, pos: pos, text: text}
		}
		return token{kind: tIdent, pos: pos, text: text}
	case isDigit(c):
		return lx.number(pos)
	}
	// two-byte operators first
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	if k, ok := map[string]tokKind{
		"==": tEq, "!=": tNe, "<=": tLe, ">=": tGe,
		"<<": tShl, ">>": tShr, "&&": tAndAnd, "||": tOrOr,
	}[two]; ok {
		lx.advance(2)
		return token{kind: k, pos: pos, text: two}
	}
	if k, ok := map[byte]tokKind{
		'(': tLParen, ')': tRParen, '{': tLBrace, '}': tRBrace,
		'[': tLBrack, ']': tRBrack, ',': tComma, ';': tSemi,
		'=': tAssign, '<': tLt, '>': tGt, '+': tPlus, '-': tMinus,
		'*': tStar, '/': tSlash, '%': tPercent, '&': tAmp, '|': tPipe,
		'^': tCaret, '!': tNot,
	}[c]; ok {
		lx.advance(1)
		return token{kind: k, pos: pos, text: string(c)}
	}
	lx.fail(pos, "unexpected character %q", string(c))
	return token{kind: tEOF, pos: pos}
}

// number scans an integer or float literal.
func (lx *lexer) number(pos Pos) token {
	start := lx.off
	if lx.peekByte(0) == '0' && (lx.peekByte(1) == 'x' || lx.peekByte(1) == 'X') {
		lx.advance(2)
		for lx.off < len(lx.src) && isHexDigit(lx.src[lx.off]) {
			lx.advance(1)
		}
		v, err := strconv.ParseInt(lx.src[start:lx.off], 0, 64)
		if err != nil {
			lx.fail(pos, "bad integer literal %q", lx.src[start:lx.off])
			return token{kind: tEOF, pos: pos}
		}
		return token{kind: tInt, pos: pos, ival: v}
	}
	isFloat := false
	for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
		lx.advance(1)
	}
	if lx.peekByte(0) == '.' && isDigit(lx.peekByte(1)) {
		isFloat = true
		lx.advance(1)
		for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
			lx.advance(1)
		}
	}
	if e := lx.peekByte(0); e == 'e' || e == 'E' {
		i := 1
		if s := lx.peekByte(1); s == '+' || s == '-' {
			i = 2
		}
		if isDigit(lx.peekByte(i)) {
			isFloat = true
			lx.advance(i)
			for lx.off < len(lx.src) && isDigit(lx.src[lx.off]) {
				lx.advance(1)
			}
		}
	}
	text := lx.src[start:lx.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			lx.fail(pos, "bad float literal %q", text)
			return token{kind: tEOF, pos: pos}
		}
		return token{kind: tFloat, pos: pos, fval: v}
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		lx.fail(pos, "bad integer literal %q", text)
		return token{kind: tEOF, pos: pos}
	}
	return token{kind: tInt, pos: pos, ival: v}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (lx *lexer) fail(pos Pos, format string, args ...any) {
	if lx.err == nil {
		lx.err = errf(CodeSyntax, pos, format, args...)
	}
}
