package lang

import "math"

// Index range analysis. Array accesses wrap modulo the array length (the
// flat memory model traps on out-of-range addresses, so unchecked indices
// cannot be lowered raw), but the wrap normalization costs three ops and —
// worse — makes the address non-affine, hiding DOALL loops from the
// dependence analyzer. This small interval analysis proves the common
// cases (loop counters, masked and modulo-reduced indices) in bounds so
// the lowerer can elide the wrap and keep a[i] affine.

const (
	minI64 = math.MinInt64
	maxI64 = math.MaxInt64
)

// interval is an inclusive value range; known=false is "could be
// anything".
type interval struct {
	lo, hi int64
	known  bool
}

func point(v int64) interval { return interval{lo: v, hi: v, known: true} }

// addChecked returns a+b, reporting overflow.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulChecked returns a*b, reporting overflow.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == -1 && b == minI64) || (b == -1 && a == minI64) {
		return 0, false
	}
	return p, true
}

func ivAdd(a, b interval) interval {
	if !a.known || !b.known {
		return interval{}
	}
	lo, ok1 := addChecked(a.lo, b.lo)
	hi, ok2 := addChecked(a.hi, b.hi)
	if !ok1 || !ok2 {
		return interval{}
	}
	return interval{lo: lo, hi: hi, known: true}
}

func ivSub(a, b interval) interval {
	if !b.known || b.lo == minI64 || b.hi == minI64 {
		return interval{}
	}
	return ivAdd(a, interval{lo: -b.hi, hi: -b.lo, known: true})
}

func ivMul(a, b interval) interval {
	if !a.known || !b.known {
		return interval{}
	}
	lo, hi := int64(maxI64), int64(minI64)
	for _, x := range []int64{a.lo, a.hi} {
		for _, y := range []int64{b.lo, b.hi} {
			p, ok := mulChecked(x, y)
			if !ok {
				return interval{}
			}
			lo, hi = min(lo, p), max(hi, p)
		}
	}
	return interval{lo: lo, hi: hi, known: true}
}

func ivNeg(a interval) interval {
	return ivSub(point(0), a)
}

// intervalOf derives the possible values of an integer expression. Only
// canonical loop counters contribute variable facts (c.ivals); masks and
// modulo bound any operand, known or not.
func (c *checker) intervalOf(e Expr) interval {
	if b := e.base(); b.Const {
		return point(b.ConstVal)
	}
	switch e := e.(type) {
	case *Ident:
		if iv, ok := c.ivals[e.Sym]; ok {
			return iv
		}
	case *UnaryExpr:
		if e.Op == "-" {
			return ivNeg(c.intervalOf(e.X))
		}
	case *ConvExpr:
		if e.To == TInt && e.X.base().T == TInt {
			return c.intervalOf(e.X)
		}
	case *BinaryExpr:
		x := c.intervalOf(e.X)
		y := c.intervalOf(e.Y)
		switch e.Op {
		case "+":
			return ivAdd(x, y)
		case "-":
			return ivSub(x, y)
		case "*":
			return ivMul(x, y)
		case "&":
			// x & m with m >= 0 clears the sign bit: the result is in
			// [0, m] whatever x is (and symmetrically).
			if y.known && y.lo == y.hi && y.lo >= 0 {
				return interval{lo: 0, hi: y.lo, known: true}
			}
			if x.known && x.lo == x.hi && x.lo >= 0 {
				return interval{lo: 0, hi: x.lo, known: true}
			}
		case "%":
			// x % n with constant n > 0 lands in (-n, n); in [0, n) when
			// x is provably non-negative.
			if y.known && y.lo == y.hi && y.lo > 0 {
				n := y.lo
				if x.known && x.lo >= 0 {
					return interval{lo: 0, hi: min(x.hi, n-1), known: true}
				}
				return interval{lo: -(n - 1), hi: n - 1, known: true}
			}
		case "/":
			if y.known && y.lo == y.hi && y.lo > 0 && x.known && x.lo >= 0 {
				return interval{lo: x.lo / y.lo, hi: x.hi / y.lo, known: true}
			}
		case "<<":
			if y.known && y.lo == y.hi && y.lo >= 0 && y.lo <= 62 {
				return ivMul(x, point(int64(1)<<uint(y.lo)))
			}
		case ">>":
			if y.known && y.lo == y.hi && y.lo >= 0 && y.lo <= 63 && x.known && x.lo >= 0 {
				return interval{lo: x.lo >> uint(y.lo), hi: x.hi >> uint(y.lo), known: true}
			}
		}
	}
	return interval{}
}
