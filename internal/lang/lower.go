package lang

import (
	"fmt"

	"voltron/internal/ir"
	"voltron/internal/isa"
)

// Lowering: checked AST -> ir.Program, preserving loop and region
// structure so the existing dependence analysis, tier classifier and
// strategy selection see the same shapes the built-in benchmarks emit.
//
// The mapping:
//
//   - Every top-level `for` in main becomes its own region; runs of other
//     statements between loops coalesce into straight-line regions. This is
//     the schedulable-unit granularity the compiler expects.
//   - Scalar variables are one IR value per symbol, re-targeted on every
//     assignment (non-SSA, matching the machine's register semantics).
//     `i = i + 1` therefore lowers to the exact `ADD v, v, #imm` shape
//     induction detection requires, and `s = s + x` to the Accum shape
//     reduction detection requires.
//   - Globals live in a hidden ".globals" array: each region loads the
//     globals it references at entry and stores the ones it writes at exit
//     (cross-region scalars must travel through memory).
//   - Function calls are inlined (the checker rejects recursion and
//     confines `return` to the final statement, so inlining is argument
//     binding plus a body splice).
//   - Array indices not proven in bounds wrap modulo the array length
//     (AND-mask when the length is a power of two); proven-in-bounds
//     indices lower raw, keeping the address affine for DOALL detection.
//
// Expression evaluation order is part of the language semantics and must
// match eval.go exactly: binary operands left then right, call arguments
// left to right, store address before stored value.

// Lowering caps. Inlining duplicates callee bodies, so a small source file
// can expand combinatorially; both counters trip CodeLimit long before the
// simulator would struggle.
const (
	maxInlineExpansions = 256
	maxLoweredStmts     = 1 << 16
)

// Lower compiles a parsed and checked file into an IR program.
func Lower(f *File, name string) (prog *ir.Program, err error) {
	lw := &lowerer{
		f:        f,
		prog:     ir.NewProgram(name),
		arrays:   make(map[*Symbol]*ir.Array),
		memSlots: make(map[*Symbol]memSlot),
	}
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailout); ok {
				prog, err = nil, b.err
				return
			}
			panic(r)
		}
	}()
	lw.declare()
	lw.lowerMain()
	if verr := lw.prog.Verify(); verr != nil {
		return nil, fmt.Errorf("lang: internal error: lowered IR fails verification: %w", verr)
	}
	return lw.prog, nil
}

// bailout unwinds lowering on a resource-limit diagnostic.
type bailout struct{ err *Error }

type lowerer struct {
	f    *File
	prog *ir.Program

	arrays  map[*Symbol]*ir.Array
	globals *ir.Array // hidden ".globals" array; nil when the file has none
	// memSlots maps every memory-backed scalar (file globals and main's
	// top-level locals) to its slot in the hidden array.
	memSlots map[*Symbol]memSlot

	// Per-region state.
	region *ir.Region
	cur    *ir.Block
	regs   map[*Symbol]ir.Value
	bases  map[*Symbol]ir.Value
	gbase  ir.Value

	inlines int
	stmts   int
}

// declare creates the program's arrays (user arrays plus the hidden
// globals array) and their initial images.
func (lw *lowerer) declare() {
	for _, d := range lw.f.Arrays {
		var a *ir.Array
		if d.Elem == TFloat {
			a = lw.prog.FloatArray(d.Name, d.Sym.Words)
		} else {
			a = lw.prog.Array(d.Name, d.Sym.Words)
		}
		lw.arrays[d.Sym] = a
		for i, e := range d.Init {
			if d.Elem == TFloat {
				lw.prog.SetInitF(a, int64(i), constFloatOf(e))
			} else {
				lw.prog.SetInit(a, int64(i), e.base().ConstVal)
			}
		}
	}
	if n := lw.f.memWords(); n > 0 {
		lw.globals = lw.prog.Array(".globals", int64(n))
		for _, d := range lw.f.Globals {
			if d.T == TFloat {
				lw.prog.SetInitF(lw.globals, d.Sym.GlobalIdx, d.Sym.FVal)
			} else {
				lw.prog.SetInit(lw.globals, d.Sym.GlobalIdx, d.Sym.Val)
			}
			lw.memSlots[d.Sym] = memSlot{idx: d.Sym.GlobalIdx, t: d.T}
		}
		// Main's top-level locals occupy the remaining slots,
		// zero-initialized; their var statements assign in-region.
		for _, v := range lw.f.MainLocals {
			lw.memSlots[v.Name.Sym] = memSlot{idx: v.Name.Sym.GlobalIdx, t: v.T}
		}
	}
}

// memSlot is one memory-backed scalar's home in the hidden globals array.
type memSlot struct {
	idx int64
	t   Type
}

// constFloatOf reads a checker-validated constant float initializer.
func constFloatOf(e Expr) float64 {
	switch e := e.(type) {
	case *FloatLit:
		return e.V
	case *UnaryExpr:
		return -e.X.(*FloatLit).V
	}
	panic("lang: not a constant float initializer")
}

// lowerMain splits main's body into regions: each top-level for loop
// stands alone; consecutive non-loop statements share one region.
func (lw *lowerer) lowerMain() {
	var run []Stmt
	idx := 0
	flush := func() {
		if len(run) > 0 {
			lw.lowerRegion(fmt.Sprintf("main.%d", idx), run)
			idx++
			run = nil
		}
	}
	for _, s := range lw.f.Main.Body {
		if fs, ok := s.(*ForStmt); ok {
			flush()
			lw.lowerRegion(fmt.Sprintf("main.%d", idx), []Stmt{fs})
			idx++
			continue
		}
		run = append(run, s)
	}
	flush()
}

func (lw *lowerer) lowerRegion(name string, stmts []Stmt) {
	lw.region = lw.prog.Region(name)
	lw.cur = lw.region.NewBlock()
	lw.regs = make(map[*Symbol]ir.Value)
	lw.bases = make(map[*Symbol]ir.Value)
	lw.gbase = ir.NoValue

	// Materialize every referenced array base and load every referenced
	// memory-backed scalar in the entry block, where they dominate all
	// uses. Written scalars load too: a conditional write still stores
	// the register at exit, which must then hold the original value on
	// the untaken path.
	arrs, mems := lw.collectRefs(stmts)
	for _, d := range lw.f.Arrays {
		if arrs[d.Sym] {
			lw.bases[d.Sym] = lw.cur.AddrOf(lw.arrays[d.Sym])
		}
	}
	live := lw.liveScalars(mems)
	if len(live) > 0 {
		lw.gbase = lw.cur.AddrOf(lw.globals)
		for _, sym := range live {
			slot := lw.memSlots[sym]
			if slot.t == TFloat {
				lw.regs[sym] = lw.cur.FLoad(lw.globals, lw.gbase, slot.idx*8)
			} else {
				lw.regs[sym] = lw.cur.Load(lw.globals, lw.gbase, slot.idx*8)
			}
		}
	}

	for _, s := range stmts {
		lw.stmt(s)
	}

	for _, sym := range live {
		slot := lw.memSlots[sym]
		if slot.t == TFloat {
			lw.cur.FStore(lw.globals, lw.gbase, slot.idx*8, lw.regs[sym])
		} else {
			lw.cur.Store(lw.globals, lw.gbase, slot.idx*8, lw.regs[sym])
		}
	}
	lw.cur.ExitRegion()
	lw.region.Seal()
}

// liveScalars orders the referenced memory-backed scalars by slot, for
// deterministic entry/exit sequences.
func (lw *lowerer) liveScalars(mems map[*Symbol]bool) []*Symbol {
	var out []*Symbol
	for _, d := range lw.f.Globals {
		if mems[d.Sym] {
			out = append(out, d.Sym)
		}
	}
	for _, v := range lw.f.MainLocals {
		if mems[v.Name.Sym] {
			out = append(out, v.Name.Sym)
		}
	}
	return out
}

// collectRefs finds the arrays and memory-backed scalars a statement list
// touches, following calls transitively.
func (lw *lowerer) collectRefs(stmts []Stmt) (arrs, mems map[*Symbol]bool) {
	arrs = make(map[*Symbol]bool)
	mems = make(map[*Symbol]bool)
	seen := make(map[*FuncDecl]bool)
	var scan func(body []Stmt)
	scan = func(body []Stmt) {
		walkExprs(body, func(e Expr) {
			switch e := e.(type) {
			case *Ident:
				if _, ok := lw.memSlots[e.Sym]; ok {
					mems[e.Sym] = true
				}
			case *IndexExpr:
				arrs[e.Name.Sym] = true
			case *CallExpr:
				fn := e.Fn.Sym.Fn
				if !seen[fn] {
					seen[fn] = true
					scan(fn.Body)
				}
			}
		})
	}
	scan(stmts)
	return arrs, mems
}

// reg returns the IR value backing a scalar symbol, allocating on first
// touch. Memory-backed scalars must have been preloaded by lowerRegion.
func (lw *lowerer) reg(sym *Symbol) ir.Value {
	if v, ok := lw.regs[sym]; ok {
		return v
	}
	if _, mem := lw.memSlots[sym]; mem {
		panic("lang: internal error: scalar " + sym.Name + " not preloaded")
	}
	v := lw.region.NewValue(classOf(sym.Type))
	lw.regs[sym] = v
	return v
}

func classOf(t Type) isa.RegClass {
	if t == TFloat {
		return isa.RegFPR
	}
	return isa.RegGPR
}

// ---- statements ----

func (lw *lowerer) stmt(s Stmt) {
	lw.stmts++
	if lw.stmts > maxLoweredStmts {
		panic(bailout{errf(CodeLimit, s.Pos(), "program too large to lower (over %d statements after inlining)", maxLoweredStmts)})
	}
	switch s := s.(type) {
	case *VarStmt:
		v := lw.reg(s.Name.Sym)
		if s.Init != nil {
			lw.exprInto(v, s.Init)
		} else if s.T == TFloat {
			lw.cur.SetF(v, 0)
		} else {
			lw.cur.SetI(v, 0)
		}
	case *AssignStmt:
		lw.assign(s)
	case *StoreStmt:
		arr := lw.arrays[s.Target.Name.Sym]
		addr, off := lw.address(s.Target)
		val := lw.expr(s.Value)
		if s.Target.Name.Sym.Type == TFloat {
			lw.cur.FStore(arr, addr, off, val)
		} else {
			lw.cur.Store(arr, addr, off, val)
		}
	case *IfStmt:
		lw.lowerIf(s)
	case *ForStmt:
		lw.lowerFor(s)
	case *ExprStmt:
		lw.inlineCall(s.Call, ir.NoValue)
	case *ReturnStmt:
		// A bare return as main's final statement; nothing to emit.
		// (Returns inside functions are consumed by inlineCall.)
	default:
		panic(fmt.Sprintf("lang: unhandled statement %T", s))
	}
}

func (lw *lowerer) body(stmts []Stmt) {
	for _, s := range stmts {
		lw.stmt(s)
	}
}

func (lw *lowerer) assign(s *AssignStmt) {
	lw.exprInto(lw.reg(s.LHS.Sym), s.Value)
}

func (lw *lowerer) lowerIf(s *IfStmt) {
	p := lw.pred(s.Cond)
	branch := lw.cur
	thenB := lw.region.NewBlock()
	lw.cur = thenB
	lw.body(s.Then)
	thenEnd := lw.cur
	if len(s.Else) > 0 {
		elseB := lw.region.NewBlock()
		lw.cur = elseB
		lw.body(s.Else)
		elseEnd := lw.cur
		join := lw.region.NewBlock()
		branch.BranchIf(p, thenB, elseB)
		thenEnd.JumpTo(join)
		elseEnd.JumpTo(join)
		lw.cur = join
	} else {
		join := lw.region.NewBlock()
		branch.BranchIf(p, thenB, join)
		thenEnd.JumpTo(join)
		lw.cur = join
	}
}

// lowerFor emits the canonical counted-loop shape (init in the
// pre-header, compare in the header, back edge from the body end) that
// ir.DetectLoops' induction analysis recognizes. The while form shares
// the skeleton: the condition simply re-evaluates in the header.
func (lw *lowerer) lowerFor(s *ForStmt) {
	if s.Init != nil {
		lw.assign(s.Init)
	}
	header := lw.region.NewBlock()
	lw.cur.JumpTo(header)
	lw.cur = header
	p := lw.pred(s.Cond)
	// Condition lowering may open further blocks (a call in the
	// condition); the branch lives wherever the predicate ended up.
	condEnd := lw.cur
	body := lw.region.NewBlock()
	lw.cur = body
	lw.body(s.Body)
	if s.Post != nil {
		lw.assign(s.Post)
	}
	lw.cur.JumpTo(header)
	after := lw.region.NewBlock()
	condEnd.BranchIf(p, body, after)
	lw.cur = after
}

// inlineCall splices a callee body at the call site. dst receives the
// return value (NoValue for statement calls and void callees).
//
// Arguments that themselves contain calls are staged through fresh
// temporaries: a nested call to the same callee would otherwise clobber
// the parameter registers bound so far (the checker rejects recursion, so
// once the body starts no further inline of this callee can occur).
func (lw *lowerer) inlineCall(e *CallExpr, dst ir.Value) {
	lw.inlines++
	if lw.inlines > maxInlineExpansions {
		panic(bailout{errf(CodeLimit, e.P, "program too large to lower (over %d inlined calls)", maxInlineExpansions)})
	}
	fn := e.Fn.Sym.Fn
	staged := false
	for _, a := range e.Args {
		if hasCall(a) {
			staged = true
			break
		}
	}
	if staged {
		tmps := make([]ir.Value, len(e.Args))
		for i, a := range e.Args {
			tmps[i] = lw.region.NewValue(classOf(a.base().T))
			lw.exprInto(tmps[i], a)
		}
		for i := range e.Args {
			pv := lw.reg(fn.Params[i].Sym)
			lw.copyInto(pv, tmps[i], fn.Params[i].T)
		}
	} else {
		for i, a := range e.Args {
			lw.exprInto(lw.reg(fn.Params[i].Sym), a)
		}
	}
	for _, s := range fn.Body {
		if r, ok := s.(*ReturnStmt); ok {
			// Checker-enforced: only the final statement.
			if r.Value == nil {
				return
			}
			if dst == ir.NoValue {
				// Value discarded, but the expression may still have
				// side effects through nested calls.
				lw.expr(r.Value)
				return
			}
			lw.exprInto(dst, r.Value)
			return
		}
		lw.stmt(s)
	}
}

// copyInto emits dst = src as a register move.
func (lw *lowerer) copyInto(dst, src ir.Value, t Type) {
	if t == TFloat {
		lw.cur.Reassign(isa.FMOV, dst, src, ir.NoValue)
	} else {
		lw.cur.Reassign(isa.MOV, dst, src, ir.NoValue)
	}
}

// ---- expressions ----

// intOpcode maps arithmetic source operators to integer opcodes.
var intOpcode = map[string]isa.Opcode{
	"+": isa.ADD, "-": isa.SUB, "*": isa.MUL, "/": isa.DIV, "%": isa.REM,
	"&": isa.AND, "|": isa.OR, "^": isa.XOR, "<<": isa.SHL, ">>": isa.SHR,
}

// floatOpcode maps arithmetic source operators to float opcodes.
var floatOpcode = map[string]isa.Opcode{
	"+": isa.FADD, "-": isa.FSUB, "*": isa.FMUL, "/": isa.FDIV,
}

// cmpOpcode maps comparison operators to integer compare opcodes.
var cmpOpcode = map[string]isa.Opcode{
	"==": isa.CMPEQ, "!=": isa.CMPNE,
	"<": isa.CMPLT, "<=": isa.CMPLE, ">": isa.CMPGT, ">=": isa.CMPGE,
}

func commutative(op string) bool {
	switch op {
	case "+", "*", "&", "|", "^":
		return true
	}
	return false
}

// isRegOf reports whether e is an identifier currently backed by v.
func (lw *lowerer) isRegOf(e Expr, v ir.Value) bool {
	id, ok := e.(*Ident)
	return ok && lw.regs[id.Sym] == v
}

// operand lowers the left operand of a binary operation whose right
// operand is rhs. If rhs contains a call and the left operand reads a
// global register, the call could rewrite that register before the
// operation executes; the evaluator captures operand values left to
// right, so snapshot the register into a fresh value first.
func (lw *lowerer) operand(x, rhs Expr) ir.Value {
	v := lw.expr(x)
	if id, ok := x.(*Ident); ok && id.Sym.Kind == symGlobal && hasCall(rhs) {
		if id.Sym.Type == TFloat {
			return lw.cur.BinOpImm(isa.FMOV, isa.RegFPR, v, 0)
		}
		return lw.cur.BinOpImm(isa.MOV, isa.RegGPR, v, 0)
	}
	return v
}

// exprInto lowers e into the existing destination value dst. This is the
// assignment path: re-targeting the variable's register preserves the
// canonical induction (ADD v, v, #imm) and reduction (OP v, v, x) shapes.
func (lw *lowerer) exprInto(dst ir.Value, e Expr) {
	if b := e.base(); b.T == TInt && b.Const {
		lw.cur.SetI(dst, b.ConstVal)
		return
	}
	switch e := e.(type) {
	case *FloatLit:
		lw.cur.SetF(dst, e.V)
	case *Ident:
		lw.copyInto(dst, lw.reg(e.Sym), e.Sym.Type)
	case *IndexExpr:
		addr, off := lw.address(e)
		code := isa.LOAD
		if e.Name.Sym.Type == TFloat {
			code = isa.FLOAD
		}
		lw.cur.LoadInto(code, dst, lw.arrays[e.Name.Sym], addr, off)
	case *UnaryExpr:
		// Only numeric negation reaches here (! is bool-typed).
		x := lw.expr(e.X)
		if e.T == TFloat {
			lw.cur.Reassign(isa.FSUB, dst, lw.cur.MovF(0), x)
		} else {
			lw.cur.Reassign(isa.SUB, dst, lw.cur.MovI(0), x)
		}
	case *ConvExpr:
		if e.To == e.X.base().T {
			lw.exprInto(dst, e.X)
		} else if e.To == TFloat {
			lw.cur.ReassignImm(isa.ITOF, dst, lw.expr(e.X), 0)
		} else {
			lw.cur.ReassignImm(isa.FTOI, dst, lw.expr(e.X), 0)
		}
	case *CallExpr:
		lw.inlineCall(e, dst)
	case *BinaryExpr:
		lw.binaryInto(dst, e)
	default:
		panic(fmt.Sprintf("lang: unhandled expression %T", e))
	}
}

// binaryInto lowers dst = x OP y. When the destination variable is an
// operand, the op re-targets its own register (the Accum shape); a
// commutative op with the variable on the right is swapped onto the left
// so reductions like s = a[i] + s still canonicalize.
func (lw *lowerer) binaryInto(dst ir.Value, e *BinaryExpr) {
	x, y := e.X, e.Y
	if commutative(e.Op) && !lw.isRegOf(x, dst) && lw.isRegOf(y, dst) {
		// Swapping is safe: operand registers are read when the op
		// executes, after both sides' code has run, and the snapshot in
		// operand() already covers the one order-sensitive case.
		x, y = y, x
	}
	if e.T == TFloat {
		xv := lw.operand(x, y)
		lw.cur.Reassign(floatOpcode[e.Op], dst, xv, lw.expr(y))
		return
	}
	xv := lw.operand(x, y)
	if yb := y.base(); yb.Const {
		imm := yb.ConstVal
		code := intOpcode[e.Op]
		if e.Op == "-" {
			// i = i - c lowers as ADD #-c so decrementing counters keep
			// the canonical induction shape (identical mod 2^64).
			code, imm = isa.ADD, -imm
		}
		lw.cur.ReassignImm(code, dst, xv, imm)
		return
	}
	lw.cur.Reassign(intOpcode[e.Op], dst, xv, lw.expr(y))
}

// expr lowers e to a value (fresh unless e is a plain identifier, whose
// live register is returned directly).
func (lw *lowerer) expr(e Expr) ir.Value {
	if b := e.base(); b.T == TInt && b.Const {
		return lw.cur.MovI(b.ConstVal)
	}
	switch e := e.(type) {
	case *FloatLit:
		return lw.cur.MovF(e.V)
	case *Ident:
		return lw.reg(e.Sym)
	case *IndexExpr:
		addr, off := lw.address(e)
		if e.Name.Sym.Type == TFloat {
			return lw.cur.FLoad(lw.arrays[e.Name.Sym], addr, off)
		}
		return lw.cur.Load(lw.arrays[e.Name.Sym], addr, off)
	case *UnaryExpr:
		x := lw.expr(e.X)
		if e.T == TFloat {
			return lw.cur.FSub(lw.cur.MovF(0), x)
		}
		return lw.cur.Sub(lw.cur.MovI(0), x)
	case *ConvExpr:
		if e.To == e.X.base().T {
			return lw.expr(e.X)
		}
		if e.To == TFloat {
			return lw.cur.IToF(lw.expr(e.X))
		}
		return lw.cur.FToI(lw.expr(e.X))
	case *CallExpr:
		v := lw.region.NewValue(classOf(e.T))
		lw.inlineCall(e, v)
		return v
	case *BinaryExpr:
		if e.T == TFloat {
			xv := lw.operand(e.X, e.Y)
			return lw.cur.BinOp(floatOpcode[e.Op], isa.RegFPR, xv, lw.expr(e.Y))
		}
		xv := lw.operand(e.X, e.Y)
		if yb := e.Y.base(); yb.Const {
			return lw.cur.BinOpImm(intOpcode[e.Op], isa.RegGPR, xv, yb.ConstVal)
		}
		return lw.cur.BinOp(intOpcode[e.Op], isa.RegGPR, xv, lw.expr(e.Y))
	}
	panic(fmt.Sprintf("lang: unhandled expression %T", e))
}

// pred lowers a boolean condition to a predicate value. && and || are
// non-short-circuit (both operands always evaluate), matching eval.go;
// this is safe because no expression traps.
func (lw *lowerer) pred(e Expr) ir.Value {
	switch e := e.(type) {
	case *UnaryExpr: // !
		return lw.cur.PNot(lw.pred(e.X))
	case *BinaryExpr:
		switch e.Op {
		case "&&":
			x := lw.pred(e.X)
			return lw.cur.PAnd(x, lw.pred(e.Y))
		case "||":
			x := lw.pred(e.X)
			return lw.cur.POr(x, lw.pred(e.Y))
		}
		if e.X.base().T == TFloat {
			// No float equality (checker-rejected); the four orderings
			// build from FCMPLT. Operands still evaluate left to right.
			x := lw.operand(e.X, e.Y)
			y := lw.expr(e.Y)
			switch e.Op {
			case "<":
				return lw.cur.FCmpLT(x, y)
			case ">":
				return lw.cur.FCmpLT(y, x)
			case "<=":
				return lw.cur.PNot(lw.cur.FCmpLT(y, x))
			case ">=":
				return lw.cur.PNot(lw.cur.FCmpLT(x, y))
			}
			panic("lang: unhandled float comparison " + e.Op)
		}
		x := lw.operand(e.X, e.Y)
		if yb := e.Y.base(); yb.Const {
			return lw.cur.CmpI(cmpOpcode[e.Op], x, yb.ConstVal)
		}
		return lw.cur.BinOp(cmpOpcode[e.Op], isa.RegPR, x, lw.expr(e.Y))
	}
	panic(fmt.Sprintf("lang: unhandled condition %T", e))
}

// address lowers an array access to (address value, immediate offset).
// Constant indices fold entirely into the offset (the checker proved them
// in bounds). Non-constant indices proven in bounds stay raw — affine in
// the loop counter — while unproven ones wrap modulo the length, exactly
// as eval.go's wrapIndex does.
func (lw *lowerer) address(e *IndexExpr) (ir.Value, int64) {
	sym := e.Name.Sym
	base := lw.bases[sym]
	if b := e.Index.base(); b.Const {
		return base, b.ConstVal * 8
	}
	idx := lw.expr(e.Index)
	if !e.InBounds {
		words := sym.Words
		if words&(words-1) == 0 {
			idx = lw.cur.AndI(idx, words-1)
		} else {
			m := lw.cur.RemI(idx, words)
			idx = lw.cur.RemI(lw.cur.AddI(m, words), words)
		}
	}
	return lw.cur.Add(base, lw.cur.ShlI(idx, 3)), 0
}
