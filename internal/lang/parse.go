package lang

// Recursive-descent parser. Syntax errors fail fast (one diagnostic): the
// checker does the multi-error reporting, where recovery is cheap; after a
// grammatical error there is rarely a trustworthy resynchronization point
// in a language this small.

// maxSourceBytes caps accepted source size; the service compiles
// arbitrary user programs, so every stage is bounded.
const maxSourceBytes = 64 << 10

// Parse parses one source program. The returned *File is resolved and
// type-checked by Check before it can be lowered or evaluated.
func Parse(src string) (*File, error) {
	if len(src) > maxSourceBytes {
		return nil, errf(CodeLimit, Pos{1, 1}, "source is %d bytes (max %d)", len(src), maxSourceBytes)
	}
	p := &parser{lx: newLexer(src)}
	p.tok = p.scan()
	p.ahead = p.scan()
	f := &File{}
	for p.tok.kind != tEOF {
		switch p.tok.kind {
		case tKwParam:
			f.Params = append(f.Params, p.paramDecl())
		case tKwArray:
			f.Arrays = append(f.Arrays, p.arrayDecl())
		case tKwVar:
			f.Globals = append(f.Globals, p.varDecl())
		case tKwFunc:
			f.Funcs = append(f.Funcs, p.funcDecl())
		default:
			p.fail(p.tok.pos, "expected a declaration (param, array, var, or func), got %s", tokName[p.tok.kind])
		}
		if p.err != nil {
			return nil, p.err
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	return f, nil
}

type parser struct {
	lx    *lexer
	tok   token // current
	ahead token // one-token lookahead
	err   *Error
}

// scan pulls the next raw token, surfacing lexer errors.
func (p *parser) scan() token {
	t := p.lx.next()
	if p.lx.err != nil && p.err == nil {
		p.err = p.lx.err
	}
	return t
}

func (p *parser) next() {
	if p.err != nil {
		p.tok = token{kind: tEOF, pos: p.tok.pos}
		return
	}
	p.tok = p.ahead
	p.ahead = p.scan()
}

func (p *parser) fail(pos Pos, format string, args ...any) {
	if p.err == nil {
		p.err = errf(CodeSyntax, pos, format, args...)
	}
	p.tok = token{kind: tEOF, pos: pos}
}

// expect consumes a token of kind k or fails.
func (p *parser) expect(k tokKind) token {
	t := p.tok
	if t.kind != k {
		p.fail(t.pos, "expected %s, got %s", tokName[k], tokName[t.kind])
		return t
	}
	p.next()
	return t
}

func (p *parser) ident() *Ident {
	t := p.expect(tIdent)
	return &Ident{exprBase: exprBase{P: t.pos}, Name: t.text}
}

// typeName parses int|float.
func (p *parser) typeName() Type {
	switch p.tok.kind {
	case tKwInt:
		p.next()
		return TInt
	case tKwFloat:
		p.next()
		return TFloat
	}
	p.fail(p.tok.pos, "expected a type (int or float), got %s", tokName[p.tok.kind])
	return TInvalid
}

// paramDecl parses: param name = [-]int-literal ;
func (p *parser) paramDecl() *ParamDecl {
	pos := p.expect(tKwParam).pos
	name := p.expect(tIdent)
	p.expect(tAssign)
	neg := false
	if p.tok.kind == tMinus {
		neg = true
		p.next()
	}
	v := p.expect(tInt)
	p.expect(tSemi)
	val := v.ival
	if neg {
		val = -val
	}
	return &ParamDecl{P: pos, Name: name.text, Value: val}
}

// arrayDecl parses: array name [ expr ] type [= { expr, ... }] ;
func (p *parser) arrayDecl() *ArrayDecl {
	pos := p.expect(tKwArray).pos
	name := p.expect(tIdent)
	p.expect(tLBrack)
	size := p.expr()
	p.expect(tRBrack)
	elem := p.typeName()
	d := &ArrayDecl{P: pos, Name: name.text, Elem: elem, Size: size}
	if p.tok.kind == tAssign {
		p.next()
		p.expect(tLBrace)
		for p.tok.kind != tRBrace && p.err == nil {
			d.Init = append(d.Init, p.expr())
			if p.tok.kind != tComma {
				break
			}
			p.next()
		}
		p.expect(tRBrace)
	}
	p.expect(tSemi)
	return d
}

// varDecl parses a top-level global: var name type [= expr] ;
func (p *parser) varDecl() *VarDecl {
	pos := p.expect(tKwVar).pos
	name := p.expect(tIdent)
	t := p.typeName()
	d := &VarDecl{P: pos, Name: name.text, T: t}
	if p.tok.kind == tAssign {
		p.next()
		d.Init = p.expr()
	}
	p.expect(tSemi)
	return d
}

// funcDecl parses: func name ( [ident type, ...] ) [type] block
func (p *parser) funcDecl() *FuncDecl {
	pos := p.expect(tKwFunc).pos
	name := p.expect(tIdent)
	p.expect(tLParen)
	d := &FuncDecl{P: pos, Name: name.text, Ret: TVoid}
	for p.tok.kind != tRParen && p.err == nil {
		pn := p.expect(tIdent)
		pt := p.typeName()
		d.Params = append(d.Params, FuncParam{P: pn.pos, Name: pn.text, T: pt})
		if p.tok.kind != tComma {
			break
		}
		p.next()
	}
	p.expect(tRParen)
	if p.tok.kind == tKwInt || p.tok.kind == tKwFloat {
		d.Ret = p.typeName()
	}
	d.Body = p.block()
	return d
}

// block parses { stmt* }.
func (p *parser) block() []Stmt {
	p.expect(tLBrace)
	var stmts []Stmt
	for p.tok.kind != tRBrace && p.tok.kind != tEOF && p.err == nil {
		stmts = append(stmts, p.stmt())
	}
	p.expect(tRBrace)
	return stmts
}

func (p *parser) stmt() Stmt {
	switch p.tok.kind {
	case tKwVar:
		pos := p.tok.pos
		p.next()
		name := p.ident()
		t := p.typeName()
		s := &VarStmt{P: pos, Name: name, T: t}
		if p.tok.kind == tAssign {
			p.next()
			s.Init = p.expr()
		}
		p.expect(tSemi)
		return s
	case tKwIf:
		return p.ifStmt()
	case tKwFor:
		return p.forStmt()
	case tKwReturn:
		pos := p.tok.pos
		p.next()
		s := &ReturnStmt{P: pos}
		if p.tok.kind != tSemi {
			s.Value = p.expr()
		}
		p.expect(tSemi)
		return s
	case tIdent:
		switch p.ahead.kind {
		case tAssign:
			s := p.assign()
			p.expect(tSemi)
			return s
		case tLBrack:
			name := p.ident()
			p.expect(tLBrack)
			idx := p.expr()
			p.expect(tRBrack)
			target := &IndexExpr{exprBase: exprBase{P: name.P}, Name: name, Index: idx}
			p.expect(tAssign)
			val := p.expr()
			p.expect(tSemi)
			return &StoreStmt{P: name.P, Target: target, Value: val}
		case tLParen:
			call := p.primary()
			c, ok := call.(*CallExpr)
			if !ok {
				p.fail(call.Pos(), "expected a call statement")
				return &ExprStmt{P: call.Pos()}
			}
			p.expect(tSemi)
			return &ExprStmt{P: c.P, Call: c}
		}
		p.fail(p.ahead.pos, "expected =, [ or ( after identifier in statement position, got %s", tokName[p.ahead.kind])
		return &ExprStmt{P: p.tok.pos}
	}
	p.fail(p.tok.pos, "expected a statement, got %s", tokName[p.tok.kind])
	return &ExprStmt{P: p.tok.pos}
}

// assign parses ident = expr (no trailing semicolon).
func (p *parser) assign() *AssignStmt {
	name := p.ident()
	p.expect(tAssign)
	return &AssignStmt{P: name.P, LHS: name, Value: p.expr()}
}

func (p *parser) ifStmt() *IfStmt {
	pos := p.expect(tKwIf).pos
	s := &IfStmt{P: pos, Cond: p.expr()}
	s.Then = p.block()
	if p.tok.kind == tKwElse {
		p.next()
		if p.tok.kind == tKwIf {
			s.Else = []Stmt{p.ifStmt()}
		} else {
			s.Else = p.block()
		}
	}
	return s
}

// forStmt parses the counted form (for i = 0; i < n; i = i + 1 { })
// or the while form (for cond { }). The two are distinguished by one
// token of lookahead: a counted loop starts with `ident =`.
func (p *parser) forStmt() *ForStmt {
	pos := p.expect(tKwFor).pos
	s := &ForStmt{P: pos}
	if p.tok.kind == tIdent && p.ahead.kind == tAssign {
		s.Init = p.assign()
		p.expect(tSemi)
		s.Cond = p.expr()
		p.expect(tSemi)
		s.Post = p.assign()
	} else {
		s.Cond = p.expr()
	}
	s.Body = p.block()
	return s
}

// Binary operator precedence, loosest first:
//
//	1: ||
//	2: &&
//	3: == != < <= > >=
//	4: + - | ^
//	5: * / % << >> &
var precOf = map[tokKind]int{
	tOrOr: 1, tAndAnd: 2,
	tEq: 3, tNe: 3, tLt: 3, tLe: 3, tGt: 3, tGe: 3,
	tPlus: 4, tMinus: 4, tPipe: 4, tCaret: 4,
	tStar: 5, tSlash: 5, tPercent: 5, tShl: 5, tShr: 5, tAmp: 5,
}

func (p *parser) expr() Expr { return p.binary(1) }

func (p *parser) binary(minPrec int) Expr {
	x := p.unary()
	for {
		prec, ok := precOf[p.tok.kind]
		if !ok || prec < minPrec {
			return x
		}
		op := p.tok
		p.next()
		y := p.binary(prec + 1)
		x = &BinaryExpr{exprBase: exprBase{P: op.pos}, Op: op.text, X: x, Y: y}
	}
}

func (p *parser) unary() Expr {
	switch p.tok.kind {
	case tMinus:
		pos := p.tok.pos
		p.next()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: "-", X: p.unary()}
	case tNot:
		pos := p.tok.pos
		p.next()
		return &UnaryExpr{exprBase: exprBase{P: pos}, Op: "!", X: p.unary()}
	}
	return p.primary()
}

func (p *parser) primary() Expr {
	switch p.tok.kind {
	case tInt:
		t := p.tok
		p.next()
		return &IntLit{exprBase: exprBase{P: t.pos}, V: t.ival}
	case tFloat:
		t := p.tok
		p.next()
		return &FloatLit{exprBase: exprBase{P: t.pos}, V: t.fval}
	case tLParen:
		p.next()
		e := p.expr()
		p.expect(tRParen)
		return e
	case tKwInt, tKwFloat:
		// Conversion: int(expr) or float(expr).
		to := TInt
		if p.tok.kind == tKwFloat {
			to = TFloat
		}
		pos := p.tok.pos
		p.next()
		p.expect(tLParen)
		e := p.expr()
		p.expect(tRParen)
		return &ConvExpr{exprBase: exprBase{P: pos}, To: to, X: e}
	case tIdent:
		name := p.ident()
		switch p.tok.kind {
		case tLBrack:
			p.next()
			idx := p.expr()
			p.expect(tRBrack)
			return &IndexExpr{exprBase: exprBase{P: name.P}, Name: name, Index: idx}
		case tLParen:
			p.next()
			c := &CallExpr{exprBase: exprBase{P: name.P}, Fn: name}
			for p.tok.kind != tRParen && p.err == nil {
				c.Args = append(c.Args, p.expr())
				if p.tok.kind != tComma {
					break
				}
				p.next()
			}
			p.expect(tRParen)
			return c
		}
		return name
	}
	p.fail(p.tok.pos, "expected an expression, got %s", tokName[p.tok.kind])
	return &IntLit{exprBase: exprBase{P: p.tok.pos}}
}
