package lang

import (
	"fmt"
	"strings"
)

// RandomSource generates a deterministic random program from a seed. The
// output always parses, checks and terminates, so it can drive the
// source-vs-interpreter differential oracle directly; the statement menu
// is chosen to exercise every strategy tier (DOALL maps, reductions,
// serial recurrences, data-dependent while loops, branchy bodies, nested
// loops, and gather/scatter through masked and wrapped indices).
func RandomSource(seed int64) string {
	r := &srcRng{s: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	g := &srcGen{r: r}
	return g.program()
}

// srcRng is a small deterministic generator (splitmix64), independent of
// the standard library's stream so corpus seeds never shift meaning.
type srcRng struct{ s uint64 }

func (r *srcRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *srcRng) intn(n int) int { return int(r.next() % uint64(n)) }

// rng returns a value in [lo, hi].
func (r *srcRng) rng(lo, hi int) int { return lo + r.intn(hi-lo+1) }

type srcGen struct {
	r    *srcRng
	b    strings.Builder
	uniq int // suffix for generated variable names
}

func (g *srcGen) pf(format string, args ...any) {
	fmt.Fprintf(&g.b, format, args...)
}

func (g *srcGen) program() string {
	n := []int{16, 24, 32, 48, 64}[g.r.intn(5)]
	g.pf("// generated program (deterministic from seed)\n")
	g.pf("param n = %d;\n\n", n)

	// Fixed shape: two int arrays sized n, two float arrays sized 64,
	// one int and one float accumulator. Data varies by seed.
	g.pf("array a[n] int = {%s};\n", g.intList(8, 50))
	g.pf("array b[n] int = {%s};\n", g.intList(8, 30))
	g.pf("array x[64] float = {%s};\n", g.floatList(6))
	g.pf("array y[64] float;\n")
	g.pf("var s int = %d;\n", g.r.intn(10))
	g.pf("var acc float = 0.5;\n\n")

	useHelper := g.r.intn(2) == 0
	if useHelper {
		g.pf("func mix(v int, w int) int {\n\treturn v * %d + (w ^ %d);\n}\n\n", g.r.rng(2, 5), g.r.intn(16))
	}

	g.pf("func main() {\n")
	count := g.r.rng(2, 4)
	for i := 0; i < count; i++ {
		g.stmt(useHelper)
	}
	g.pf("}\n")
	return g.b.String()
}

func (g *srcGen) intList(k, lim int) string {
	parts := make([]string, k)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d", g.r.intn(2*lim)-lim)
	}
	return strings.Join(parts, ", ")
}

func (g *srcGen) floatList(k int) string {
	parts := make([]string, k)
	for i := range parts {
		parts[i] = fmt.Sprintf("%d.%d", g.r.intn(8), g.r.intn(100))
	}
	return strings.Join(parts, ", ")
}

// stmt emits one top-level statement (usually a loop, which lowers to its
// own region).
func (g *srcGen) stmt(useHelper bool) {
	c1 := g.r.rng(1, 9)
	c2 := g.r.rng(1, 7)
	menu := 9
	switch g.r.intn(menu) {
	case 0: // DOALL integer map (affine, in-bounds)
		rhs := fmt.Sprintf("b[i] * %d + i", c1)
		if useHelper && g.r.intn(2) == 0 {
			rhs = fmt.Sprintf("mix(b[i], i + %d)", c2)
		}
		g.pf("\tfor i = 0; i < n; i = i + 1 {\n\t\ta[i] = %s;\n\t}\n", rhs)
	case 1: // integer reduction into a global
		g.pf("\tfor i = 0; i < n; i = i + 1 {\n\t\ts = s + a[i];\n\t}\n")
	case 2: // DOALL float map with a conversion
		g.pf("\tfor i = 0; i < 64; i = i + 1 {\n\t\ty[i] = x[i & 63] * %d.5 + float(i) * 0.25;\n\t}\n", g.r.intn(3))
	case 3: // float dot-product reduction
		g.pf("\tfor i = 0; i < 64; i = i + 1 {\n\t\tacc = acc + x[i] * y[i];\n\t}\n")
	case 4: // branchy loop body
		g.pf("\tfor i = 0; i < n; i = i + 1 {\n")
		g.pf("\t\tif a[i] %% 2 == 0 {\n\t\t\ta[i] = a[i] + %d;\n\t\t} else {\n\t\t\ta[i] = a[i] - %d;\n\t\t}\n", c1, c2)
		g.pf("\t}\n")
	case 5: // serial recurrence (loop-carried through memory)
		g.pf("\tfor i = 1; i < n; i = i + 1 {\n\t\ta[i] = a[i-1] + b[i];\n\t}\n")
	case 6: // nested loops, affine 2-D indexing
		g.pf("\tfor i = 0; i < 8; i = i + 1 {\n")
		g.pf("\t\tfor j = 0; j < 8; j = j + 1 {\n\t\t\ty[i*8+j] = x[i*8+j] + float(i * j + %d);\n\t\t}\n", c2)
		g.pf("\t}\n")
	case 7: // data-dependent while loop with a bounded trip count
		g.uniq++
		u := g.uniq
		g.pf("\tvar t%d int = (b[0] & 15) + %d;\n", u, c1)
		g.pf("\tvar k%d int = 0;\n", u)
		g.pf("\tfor k%d < t%d {\n\t\ts = s + k%d * %d;\n\t\tk%d = k%d + 1;\n\t}\n", u, u, u, c1, u, u)
	case 8: // gather through a masked (data-dependent) index, plus wrap
		g.pf("\tfor i = 0; i < n; i = i + 1 {\n\t\ta[i] = b[a[i] & 15] + a[i*%d+1];\n\t}\n", g.r.rng(2, 5))
	}
}
