package lang

// Type is a language type. The language is deliberately small: scalars are
// int (64-bit two's-complement) or float (IEEE float64); bool exists only
// as the type of conditions (it cannot be stored); void is the "type" of a
// function without a result.
type Type int

const (
	TInvalid Type = iota
	TInt
	TFloat
	TBool
	TVoid
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TVoid:
		return "void"
	}
	return "invalid"
}

// symKind classifies a declared name.
type symKind int

const (
	symParam symKind = iota
	symArray
	symGlobal
	symLocal
	symFunc
)

func (k symKind) String() string {
	return [...]string{"param", "array", "global", "local", "func"}[k]
}

// Symbol is one declared name after resolution. A symbol is unique per
// declaration; the checker links every Ident to its symbol.
type Symbol struct {
	Kind symKind
	Name string
	// Type is the scalar type (params are always int; for arrays it is
	// the element type).
	Type Type
	// Words is the array size (symArray only), resolved from its
	// constant size expression with inputs applied.
	Words int64
	// Val is the effective compile-time value: for params the default
	// after input overrides, for globals the constant initializer.
	Val int64
	// FVal is the constant float initializer of a float global.
	FVal float64
	// Default is a param's declared default, before input overrides
	// (spec canonicalization drops inputs that equal it).
	Default int64
	// Fn is the declaration of a symFunc.
	Fn *FuncDecl
	// GlobalIdx is the word offset of a symGlobal in the hidden globals
	// array.
	GlobalIdx int64
}

// exprBase carries what every expression has: a position and, after
// checking, a type and an optional compile-time constant value.
type exprBase struct {
	P Pos
	T Type
	// Const/ConstVal: the expression folds to an int constant (over
	// literals and params). The lowerer uses it for immediate operands
	// and canonical loop bounds.
	Const    bool
	ConstVal int64
}

func (b *exprBase) Pos() Pos   { return b.P }
func (b *exprBase) Type() Type { return b.T }

// Expr is one expression node.
type Expr interface {
	Pos() Pos
	Type() Type
	base() *exprBase
}

func (b *exprBase) base() *exprBase { return b }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	V int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	V float64
}

// Ident is a reference to a declared scalar (param, global, or local).
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol // resolved by the checker
}

// IndexExpr is an array element read a[i].
type IndexExpr struct {
	exprBase
	Name  *Ident // the array
	Index Expr
	// InBounds records that range analysis proved 0 <= Index < words, so
	// the lowerer may elide the wrap-around index normalization and keep
	// the address affine.
	InBounds bool
}

// CallExpr is a function call.
type CallExpr struct {
	exprBase
	Fn   *Ident
	Args []Expr
}

// UnaryExpr is -x (numeric) or !b (bool).
type UnaryExpr struct {
	exprBase
	Op string
	X  Expr
}

// BinaryExpr is a binary operation. Op is the source spelling
// (+ - * / % & | ^ << >> == != < <= > >= && ||).
type BinaryExpr struct {
	exprBase
	Op   string
	X, Y Expr
}

// ConvExpr is an explicit conversion int(x) or float(x).
type ConvExpr struct {
	exprBase
	To Type
	X  Expr
}

// Stmt is one statement node.
type Stmt interface{ Pos() Pos }

// VarStmt declares a function-local scalar, zero-initialized unless Init
// is present.
type VarStmt struct {
	P    Pos
	Name *Ident
	T    Type
	Init Expr
}

func (s *VarStmt) Pos() Pos { return s.P }

// AssignStmt assigns a scalar: x = expr.
type AssignStmt struct {
	P     Pos
	LHS   *Ident
	Value Expr
}

func (s *AssignStmt) Pos() Pos { return s.P }

// StoreStmt assigns an array element: a[i] = expr.
type StoreStmt struct {
	P      Pos
	Target *IndexExpr
	Value  Expr
}

func (s *StoreStmt) Pos() Pos { return s.P }

// IfStmt is if cond { } else { }; an else-if chain parses as an IfStmt in
// a one-statement Else.
type IfStmt struct {
	P    Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (s *IfStmt) Pos() Pos { return s.P }

// ForStmt is either the counted form (Init and Post present) or the
// while form (condition only).
type ForStmt struct {
	P    Pos
	Init *AssignStmt // nil in the while form
	Cond Expr
	Post *AssignStmt // nil in the while form
	Body []Stmt
	// DeclaresVar: the init assignment implicitly declares its left-hand
	// side as a loop-scoped int (it named no existing variable).
	DeclaresVar bool
}

func (s *ForStmt) Pos() Pos { return s.P }

// ExprStmt is a call used as a statement.
type ExprStmt struct {
	P    Pos
	Call *CallExpr
}

func (s *ExprStmt) Pos() Pos { return s.P }

// ReturnStmt returns from a function; only valid as the final statement
// of a function body.
type ReturnStmt struct {
	P     Pos
	Value Expr // nil for a bare return
}

func (s *ReturnStmt) Pos() Pos { return s.P }

// ParamDecl is param name = int-literal;
type ParamDecl struct {
	P     Pos
	Name  string
	Value int64
	Sym   *Symbol
}

// ArrayDecl is array name[size] type [= {v, ...}];
type ArrayDecl struct {
	P    Pos
	Name string
	Elem Type
	Size Expr
	Init []Expr
	Sym  *Symbol
}

// VarDecl is a top-level var: a memory-backed global scalar.
type VarDecl struct {
	P    Pos
	Name string
	T    Type
	Init Expr // must be constant
	Sym  *Symbol
}

// FuncParam is one function parameter.
type FuncParam struct {
	P    Pos
	Name string
	T    Type
	Sym  *Symbol
}

// FuncDecl is func name(params) [type] { body }.
type FuncDecl struct {
	P      Pos
	Name   string
	Params []FuncParam
	Ret    Type // TVoid when absent
	Body   []Stmt
	Sym    *Symbol
}

// File is one parsed source program.
type File struct {
	Params  []*ParamDecl
	Arrays  []*ArrayDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl

	// Main is the entry function, located by the checker.
	Main *FuncDecl

	// MainLocals are main's top-level var statements. They may be live
	// across region boundaries (each top-level loop is its own region),
	// so they are memory-backed: each gets a slot in the hidden globals
	// array, after the file-level globals (see Symbol.GlobalIdx).
	MainLocals []*VarStmt
}

// memWords is the size of the hidden globals array: file-level globals
// plus main's top-level locals. Zero when the program needs none.
func (f *File) memWords() int {
	return len(f.Globals) + len(f.MainLocals)
}

// ParamDefaults returns the declared default of every param (before any
// input overrides). Available after Check.
func (f *File) ParamDefaults() map[string]int64 {
	out := make(map[string]int64, len(f.Params))
	for _, p := range f.Params {
		out[p.Name] = p.Value
	}
	return out
}

// walkExpr calls fn on e and every sub-expression.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *IndexExpr:
		walkExpr(e.Index, fn)
	case *CallExpr:
		for _, a := range e.Args {
			walkExpr(a, fn)
		}
	case *UnaryExpr:
		walkExpr(e.X, fn)
	case *BinaryExpr:
		walkExpr(e.X, fn)
		walkExpr(e.Y, fn)
	case *ConvExpr:
		walkExpr(e.X, fn)
	}
}

// walkExprs calls fn on every expression in the statement tree, including
// assignment left-hand sides and store targets.
func walkExprs(stmts []Stmt, fn func(Expr)) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *VarStmt:
			walkExpr(s.Name, fn)
			walkExpr(s.Init, fn)
		case *AssignStmt:
			walkExpr(s.LHS, fn)
			walkExpr(s.Value, fn)
		case *StoreStmt:
			walkExpr(s.Target, fn)
			walkExpr(s.Value, fn)
		case *IfStmt:
			walkExpr(s.Cond, fn)
			walkExprs(s.Then, fn)
			walkExprs(s.Else, fn)
		case *ForStmt:
			if s.Init != nil {
				walkExpr(s.Init.LHS, fn)
				walkExpr(s.Init.Value, fn)
			}
			walkExpr(s.Cond, fn)
			if s.Post != nil {
				walkExpr(s.Post.LHS, fn)
				walkExpr(s.Post.Value, fn)
			}
			walkExprs(s.Body, fn)
		case *ExprStmt:
			walkExpr(s.Call, fn)
		case *ReturnStmt:
			walkExpr(s.Value, fn)
		}
	}
}

// hasCall reports whether e contains a function call (calls are the only
// expressions with side effects, which the lowerer must order around).
func hasCall(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if _, ok := x.(*CallExpr); ok {
			found = true
		}
	})
	return found
}
