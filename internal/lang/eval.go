package lang

import (
	"fmt"
	"math"
)

// Direct AST evaluation: the reference semantics the lowered IR is tested
// against. Eval mirrors the machine, not Go, wherever the two differ:
//
//   - Integer ops wrap, division by zero yields zero, shifts mask to six
//     bits (evalIntOp in sem.go, shared with the constant folder).
//   - Unchecked array indices wrap modulo the array length (wrapIndex).
//   - Float negation is 0.0 - x (the lowered form), which maps -(+0.0) to
//     +0.0 where Go's negation would give -0.0.
//   - Float <= and >= build from < exactly as the lowerer does
//     (x <= y  ⇔  !(y < x)), which differs from Go when NaN is involved —
//     and NaN is reachable (inf - inf).
//   - && and || evaluate both operands (no short-circuit).
//
// Arrays are kept as raw memory words so the result compares bit-for-bit
// against the interpreter's memory image.

// maxEvalSteps bounds evaluation work; a while loop that fails to
// terminate surfaces as a CodeLimit error rather than a hang.
const maxEvalSteps = 1 << 22

// EvalResult is the final memory image of a program: one word slice per
// array, keyed by array name, plus ".globals" when the program has
// top-level vars (mirroring the hidden array the lowerer emits).
type EvalResult struct {
	Arrays map[string][]uint64
}

// Eval runs a checked program to completion under the reference
// semantics.
func Eval(f *File) (res *EvalResult, err error) {
	ev := &evaluator{
		f:      f,
		ints:   make(map[*Symbol]int64),
		floats: make(map[*Symbol]float64),
		arrays: make(map[*Symbol][]uint64),
	}
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(bailout); ok {
				res, err = nil, b.err
				return
			}
			panic(r)
		}
	}()
	for _, d := range f.Arrays {
		w := make([]uint64, d.Sym.Words)
		for i, e := range d.Init {
			if d.Elem == TFloat {
				w[i] = math.Float64bits(constFloatOf(e))
			} else {
				w[i] = uint64(e.base().ConstVal)
			}
		}
		ev.arrays[d.Sym] = w
	}
	for _, d := range f.Globals {
		if d.T == TFloat {
			ev.floats[d.Sym] = d.Sym.FVal
		} else {
			ev.ints[d.Sym] = d.Sym.Val
		}
	}

	ev.body(f.Main.Body)

	out := &EvalResult{Arrays: make(map[string][]uint64)}
	for _, d := range f.Arrays {
		out.Arrays[d.Name] = ev.arrays[d.Sym]
	}
	if n := f.memWords(); n > 0 {
		g := make([]uint64, n)
		for _, d := range f.Globals {
			if d.T == TFloat {
				g[d.Sym.GlobalIdx] = math.Float64bits(ev.floats[d.Sym])
			} else {
				g[d.Sym.GlobalIdx] = uint64(ev.ints[d.Sym])
			}
		}
		// Main's top-level locals are memory-backed (they cross region
		// boundaries in the lowered form) and land after the globals.
		for _, v := range f.MainLocals {
			sym := v.Name.Sym
			if v.T == TFloat {
				g[sym.GlobalIdx] = math.Float64bits(ev.floats[sym])
			} else {
				g[sym.GlobalIdx] = uint64(ev.ints[sym])
			}
		}
		out.Arrays[".globals"] = g
	}
	return out, nil
}

type evaluator struct {
	f      *File
	ints   map[*Symbol]int64
	floats map[*Symbol]float64
	arrays map[*Symbol][]uint64
	steps  int
}

// tick charges one unit of work.
func (ev *evaluator) tick(p Pos) {
	ev.steps++
	if ev.steps > maxEvalSteps {
		panic(bailout{errf(CodeLimit, p, "evaluation exceeded %d steps (non-terminating loop?)", maxEvalSteps)})
	}
}

// val is one scalar: exactly one of the fields is meaningful, per the
// expression's static type.
type val struct {
	i int64
	f float64
}

func (ev *evaluator) body(stmts []Stmt) {
	for _, s := range stmts {
		ev.stmt(s)
	}
}

func (ev *evaluator) stmt(s Stmt) {
	ev.tick(s.Pos())
	switch s := s.(type) {
	case *VarStmt:
		var v val
		if s.Init != nil {
			v = ev.expr(s.Init)
		}
		ev.set(s.Name.Sym, v)
	case *AssignStmt:
		ev.set(s.LHS.Sym, ev.expr(s.Value))
	case *StoreStmt:
		// Address before value, matching the lowerer.
		sym := s.Target.Name.Sym
		idx := ev.index(s.Target)
		v := ev.expr(s.Value)
		if sym.Type == TFloat {
			ev.arrays[sym][idx] = math.Float64bits(v.f)
		} else {
			ev.arrays[sym][idx] = uint64(v.i)
		}
	case *IfStmt:
		if ev.pred(s.Cond) {
			ev.body(s.Then)
		} else {
			ev.body(s.Else)
		}
	case *ForStmt:
		if s.Init != nil {
			ev.set(s.Init.LHS.Sym, ev.expr(s.Init.Value))
		}
		for {
			ev.tick(s.Pos())
			if !ev.pred(s.Cond) {
				break
			}
			ev.body(s.Body)
			if s.Post != nil {
				ev.set(s.Post.LHS.Sym, ev.expr(s.Post.Value))
			}
		}
	case *ExprStmt:
		ev.call(s.Call)
	case *ReturnStmt:
		// Only reachable as main's final statement (bare return).
	default:
		panic(fmt.Sprintf("lang: unhandled statement %T", s))
	}
}

func (ev *evaluator) set(sym *Symbol, v val) {
	if sym.Type == TFloat {
		ev.floats[sym] = v.f
	} else {
		ev.ints[sym] = v.i
	}
}

// index evaluates an array subscript to a word offset, wrapping unchecked
// indices modulo the length.
func (ev *evaluator) index(e *IndexExpr) int64 {
	if b := e.Index.base(); b.Const {
		return b.ConstVal // checker proved constant indices in bounds
	}
	return wrapIndex(ev.expr(e.Index).i, e.Name.Sym.Words)
}

// call evaluates every argument, then binds parameters and runs the body.
// Binding after full argument evaluation matches the lowerer's temporary
// staging (a nested call to the same function must not clobber arguments
// bound so far).
func (ev *evaluator) call(e *CallExpr) val {
	fn := e.Fn.Sym.Fn
	args := make([]val, len(e.Args))
	for i, a := range e.Args {
		args[i] = ev.expr(a)
	}
	for i, p := range fn.Params {
		ev.set(p.Sym, args[i])
	}
	for _, s := range fn.Body {
		if r, ok := s.(*ReturnStmt); ok {
			if r.Value == nil {
				return val{}
			}
			return ev.expr(r.Value)
		}
		ev.stmt(s)
	}
	return val{}
}

func (ev *evaluator) expr(e Expr) val {
	ev.tick(e.Pos())
	if b := e.base(); b.T == TInt && b.Const {
		return val{i: b.ConstVal}
	}
	switch e := e.(type) {
	case *FloatLit:
		return val{f: e.V}
	case *Ident:
		if e.Sym.Type == TFloat {
			return val{f: ev.floats[e.Sym]}
		}
		return val{i: ev.ints[e.Sym]}
	case *IndexExpr:
		w := ev.arrays[e.Name.Sym][ev.index(e)]
		if e.Name.Sym.Type == TFloat {
			return val{f: math.Float64frombits(w)}
		}
		return val{i: int64(w)}
	case *CallExpr:
		return ev.call(e)
	case *UnaryExpr:
		x := ev.expr(e.X)
		if e.T == TFloat {
			return val{f: 0.0 - x.f} // the lowered form; not Go negation
		}
		return val{i: 0 - x.i}
	case *ConvExpr:
		x := ev.expr(e.X)
		if e.To == e.X.base().T {
			return x
		}
		if e.To == TFloat {
			return val{f: float64(x.i)}
		}
		return val{i: int64(x.f)}
	case *BinaryExpr:
		x := ev.expr(e.X)
		y := ev.expr(e.Y)
		if e.T == TFloat {
			switch e.Op {
			case "+":
				return val{f: x.f + y.f}
			case "-":
				return val{f: x.f - y.f}
			case "*":
				return val{f: x.f * y.f}
			case "/":
				return val{f: x.f / y.f}
			}
			panic("lang: unhandled float operator " + e.Op)
		}
		return val{i: evalIntOp(e.Op, x.i, y.i)}
	}
	panic(fmt.Sprintf("lang: unhandled expression %T", e))
}

// pred evaluates a condition. Both operands of && and || always evaluate;
// float orderings build from < exactly as the lowered FCMPLT/PNOT
// sequences do.
func (ev *evaluator) pred(e Expr) bool {
	ev.tick(e.Pos())
	switch e := e.(type) {
	case *UnaryExpr: // !
		return !ev.pred(e.X)
	case *BinaryExpr:
		switch e.Op {
		case "&&":
			x := ev.pred(e.X)
			y := ev.pred(e.Y)
			return x && y
		case "||":
			x := ev.pred(e.X)
			y := ev.pred(e.Y)
			return x || y
		}
		x := ev.expr(e.X)
		y := ev.expr(e.Y)
		if e.X.base().T == TFloat {
			switch e.Op {
			case "<":
				return x.f < y.f
			case ">":
				return y.f < x.f
			case "<=":
				return !(y.f < x.f)
			case ">=":
				return !(x.f < y.f)
			}
			panic("lang: unhandled float comparison " + e.Op)
		}
		switch e.Op {
		case "==":
			return x.i == y.i
		case "!=":
			return x.i != y.i
		case "<":
			return x.i < y.i
		case "<=":
			return x.i <= y.i
		case ">":
			return x.i > y.i
		case ">=":
			return x.i >= y.i
		}
		panic("lang: unhandled comparison " + e.Op)
	}
	panic(fmt.Sprintf("lang: unhandled condition %T", e))
}
