package lang

import (
	"fmt"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/mem"
	"voltron/internal/prof"
)

// Differential oracle: for any accepted program, three independent
// executions must agree bit-for-bit on the final memory image —
//
//	reference evaluator (eval.go, straight off the AST)
//	IR interpreter      (interp, over the lowered program)
//	simulated machine   (every strategy, at 4 and 16 cores)
//
// The evaluator never saw the IR and the interpreter never saw the AST,
// so agreement pins the whole frontend: parser, checker, constant folder,
// wrap elision, inlining and lowering.

var diffStrategies = []compiler.Strategy{
	compiler.Serial, compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP, compiler.Hybrid,
}

var diffCores = []int{4, 16}

// matchEval compares the reference evaluator's per-array words against a
// flat memory image at the lowered program's layout.
func matchEval(t *testing.T, prog *ir.Program, er *EvalResult, m *mem.Flat, label string) {
	t.Helper()
	if len(er.Arrays) != len(prog.Arrays) {
		t.Fatalf("%s: evaluator has %d arrays, program %d", label, len(er.Arrays), len(prog.Arrays))
	}
	for _, arr := range prog.Arrays {
		words, ok := er.Arrays[arr.Name]
		if !ok || int64(len(words)) != arr.Words {
			t.Fatalf("%s: array %q: evaluator image missing or mis-sized (%d vs %d words)",
				label, arr.Name, len(words), arr.Words)
		}
		for i := int64(0); i < arr.Words; i++ {
			if got := m.LoadW(arr.Base + i*8); got != words[i] {
				t.Fatalf("%s: array %q word %d: eval=%#x machine=%#x",
					label, arr.Name, i, words[i], got)
			}
		}
	}
}

// runDifferential drives one source program through the full oracle.
func runDifferential(t *testing.T, src, name string) {
	t.Helper()
	p, err := Frontend(src, nil)
	if err != nil {
		t.Fatalf("frontend: %v\n%s", err, src)
	}
	golden, err := p.Eval()
	if err != nil {
		t.Fatalf("eval: %v\n%s", err, src)
	}
	prog, err := p.Lower(name)
	if err != nil {
		t.Fatalf("lower: %v\n%s", err, src)
	}
	ref, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, src)
	}
	matchEval(t, prog, golden, ref.Mem, "interp")
	pr, err := prof.Collect(prog)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	for _, s := range diffStrategies {
		for _, cores := range diffCores {
			cp, err := compiler.Compile(prog, compiler.Options{
				Cores: cores, Strategy: s, Profile: pr, Workers: 1,
			})
			if err != nil {
				t.Fatalf("%v/%d: compile: %v\n%s", s, cores, err, src)
			}
			res, err := core.New(core.DefaultConfig(cores)).Run(cp)
			if err != nil {
				t.Fatalf("%v/%d: run: %v\n%s", s, cores, err, src)
			}
			if !res.Mem.Equal(ref.Mem) {
				addr, a, b, _ := ref.Mem.FirstDiff(res.Mem)
				t.Fatalf("%v/%d: memory diverges at %#x: interp=%d machine=%d\n%s",
					s, cores, addr, int64(a), int64(b), src)
			}
		}
	}
}

// TestDifferentialRandomSources runs the oracle over generated programs.
func TestDifferentialRandomSources(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runDifferential(t, RandomSource(int64(seed)), fmt.Sprintf("lang-seed%d", seed))
		})
	}
}

// TestRandomSourceDeterministic: the same seed must name the same program
// forever (fuzz corpus entries and CI reproducers depend on it).
func TestRandomSourceDeterministic(t *testing.T) {
	if RandomSource(7) != RandomSource(7) {
		t.Fatal("same seed produced different source")
	}
	if RandomSource(7) == RandomSource(8) {
		t.Fatal("different seeds produced identical source")
	}
}

// FuzzLangMatchesInterpreter is the native fuzz entry point (run in CI as
// `go test -fuzz=FuzzLang -fuzztime=30s`): each (seed, strategy, cores)
// tuple deterministically names a generated source program, which must
// produce identical memory under the reference evaluator, the IR
// interpreter, and one compiled strategy.
func FuzzLangMatchesInterpreter(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%5), uint8(seed%2))
	}
	f.Fuzz(func(t *testing.T, seed int64, stratSel, coreSel uint8) {
		src := RandomSource(seed)
		p, err := Frontend(src, nil)
		if err != nil {
			t.Fatalf("generated source invalid: %v\n%s", err, src)
		}
		golden, err := p.Eval()
		if err != nil {
			t.Fatalf("eval: %v\n%s", err, src)
		}
		prog, err := p.Lower("fuzz")
		if err != nil {
			t.Fatalf("lower: %v\n%s", err, src)
		}
		ref, err := interp.Run(prog, interp.Options{})
		if err != nil {
			t.Fatalf("interp: %v\n%s", err, src)
		}
		matchEval(t, prog, golden, ref.Mem, "interp")
		s := diffStrategies[int(stratSel)%len(diffStrategies)]
		cores := diffCores[int(coreSel)%len(diffCores)]
		pr, err := prof.Collect(prog)
		if err != nil {
			t.Fatalf("profile: %v", err)
		}
		cp, err := compiler.Compile(prog, compiler.Options{Cores: cores, Strategy: s, Profile: pr, Workers: 1})
		if err != nil {
			t.Fatalf("%v/%d: compile: %v\n%s", s, cores, err, src)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatalf("%v/%d: run: %v\n%s", s, cores, err, src)
		}
		if !res.Mem.Equal(ref.Mem) {
			addr, a, b, _ := ref.Mem.FirstDiff(res.Mem)
			t.Fatalf("seed %d %v/%d: memory diverges at %#x: interp=%d machine=%d\n%s",
				seed, s, cores, addr, int64(a), int64(b), src)
		}
	})
}
