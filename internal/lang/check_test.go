package lang

import (
	"strings"
	"testing"
)

// Diagnostic goldens: every diagnostic must carry the right code AND the
// right position — these are API surface (the validate endpoint returns
// them verbatim), so they are pinned exactly.
func TestDiagnosticGoldens(t *testing.T) {
	cases := []struct {
		name string
		src  string
		code string
		line int
		col  int
		msg  string // substring
	}{
		{
			name: "syntax-missing-literal",
			src:  "param n = ;\n",
			code: CodeSyntax, line: 1, col: 11,
			msg: "expected integer literal",
		},
		{
			name: "syntax-bad-statement",
			src:  "func main() {\n\t1 = 2;\n}\n",
			code: CodeSyntax, line: 2, col: 2,
			msg: "expected a statement",
		},
		{
			name: "redeclared-param",
			src:  "param n = 4;\nparam n = 5;\nfunc main() {\n\tvar x int = n;\n}\n",
			code: CodeRedeclared, line: 2, col: 1,
			msg: "redeclares",
		},
		{
			name: "undefined-in-expr",
			src:  "func main() {\n\tvar x int = y + 1;\n}\n",
			code: CodeUndefined, line: 2, col: 14,
			msg: `"y" is not declared`,
		},
		{
			name: "undefined-assign",
			src:  "func main() {\n\tq = 1;\n}\n",
			code: CodeUndefined, line: 2, col: 2,
			msg: `"q" is not declared`,
		},
		{
			name: "type-assign-float-to-int",
			src:  "var g int = 0;\nfunc main() {\n\tg = 1.5;\n}\n",
			code: CodeType, line: 3, col: 6,
			msg: "cannot assign float to int",
		},
		{
			name: "type-condition-not-bool",
			src:  "func main() {\n\tvar x int = 0;\n\tif x + 1 {\n\t\tx = 2;\n\t}\n}\n",
			code: CodeType, line: 3, col: 7,
			msg: "condition must be a comparison",
		},
		{
			name: "float-equality",
			src:  "func main() {\n\tvar a float = 1.0;\n\tif a == 2.0 {\n\t\ta = 0.0;\n\t}\n}\n",
			code: CodeFloatEq, line: 3, col: 7,
			msg: "no float equality",
		},
		{
			name: "bounds-constant-index",
			src:  "array a[8] int;\nfunc main() {\n\ta[9] = 1;\n}\n",
			code: CodeBounds, line: 3, col: 4,
			msg: "out of range",
		},
		{
			name: "assign-to-param",
			src:  "param n = 4;\nfunc main() {\n\tn = 5;\n}\n",
			code: CodeAssign, line: 3, col: 2,
			msg: "params are immutable",
		},
		{
			name: "call-arity",
			src:  "func f(v int) int {\n\treturn v;\n}\nfunc main() {\n\tvar x int = f(1, 2);\n}\n",
			code: CodeCall, line: 5, col: 14,
			msg: "takes 1 arguments, got 2",
		},
		{
			name: "recursion",
			src: "func f(v int) int {\n\treturn g(v);\n}\nfunc g(v int) int {\n\treturn f(v);\n}\n" +
				"func main() {\n\tvar x int = f(1);\n}\n",
			code: CodeRecursion, line: 1, col: 1,
			msg: "recursive",
		},
		{
			name: "return-not-final",
			src:  "func f(v int) int {\n\treturn v;\n\treturn v;\n}\nfunc main() {\n\tvar x int = f(1);\n}\n",
			code: CodeReturn, line: 2, col: 2,
			msg: "final statement",
		},
		{
			name: "missing-main",
			src:  "param n = 4;\n",
			code: CodeMain, line: 1, col: 1,
			msg: "func main()",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Frontend(tc.src, nil)
			if err == nil {
				t.Fatalf("expected a %s diagnostic, got none", tc.code)
			}
			le, ok := err.(*Error)
			if !ok {
				t.Fatalf("expected *lang.Error, got %T: %v", err, err)
			}
			d := le.Diags[0]
			if d.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", d.Code, tc.code, d.Message)
			}
			if d.Line != tc.line || d.Col != tc.col {
				t.Errorf("position = %d:%d, want %d:%d (message %q)", d.Line, d.Col, tc.line, tc.col, d.Message)
			}
			if !strings.Contains(d.Message, tc.msg) {
				t.Errorf("message %q does not contain %q", d.Message, tc.msg)
			}
		})
	}
}

// TestUnknownInput: an input that names no param is a structured error.
func TestUnknownInput(t *testing.T) {
	src := "param n = 4;\nfunc main() {\n\tvar x int = n;\n}\n"
	_, err := Frontend(src, map[string]int64{"zzz": 1})
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *lang.Error, got %T: %v", err, err)
	}
	if le.Diags[0].Code != CodeInput {
		t.Fatalf("code = %q, want %q", le.Diags[0].Code, CodeInput)
	}
}

// TestInputOverride: inputs replace param defaults and flow into array
// sizing and constant folding.
func TestInputOverride(t *testing.T) {
	src := "param n = 4;\narray a[n] int;\nfunc main() {\n\tfor i = 0; i < n; i = i + 1 {\n\t\ta[i] = i;\n\t}\n}\n"
	p, err := Frontend(src, map[string]int64{"n": 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Params()["n"]; got != 9 {
		t.Fatalf("effective n = %d, want 9", got)
	}
	if got := p.Defaults()["n"]; got != 4 {
		t.Fatalf("default n = %d, want 4", got)
	}
	res, err := p.Eval()
	if err != nil {
		t.Fatal(err)
	}
	a := res.Arrays["a"]
	if len(a) != 9 {
		t.Fatalf("array a sized %d, want 9", len(a))
	}
	for i, w := range a {
		if w != uint64(i) {
			t.Fatalf("a[%d] = %d, want %d", i, w, i)
		}
	}
}

// TestMultipleDiagnostics: the checker reports every independent error,
// not just the first.
func TestMultipleDiagnostics(t *testing.T) {
	src := "func main() {\n\tq = 1;\n\tw = 2;\n}\n"
	_, err := Frontend(src, nil)
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("expected *lang.Error, got %T", err)
	}
	if len(le.Diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(le.Diags), le.Diags)
	}
}

// TestSourceSizeLimit: oversized sources are rejected up front.
func TestSourceSizeLimit(t *testing.T) {
	_, err := Parse(strings.Repeat("/", maxSourceBytes+1))
	le, ok := err.(*Error)
	if !ok || le.Diags[0].Code != CodeLimit {
		t.Fatalf("expected %s, got %v", CodeLimit, err)
	}
}
