package lang

import (
	"fmt"
	"sort"
)

// Declaration caps. The service compiles arbitrary user programs, so every
// dimension of a program is bounded; maxArrayWords matches the inline
// kernel spec's element cap.
const (
	maxParams     = 32
	maxArrayDecls = 64
	maxGlobals    = 64
	maxFuncs      = 64
	maxFuncParams = 8
	maxArrayWords = 1 << 16
)

// Check resolves names, type-checks, folds constants and runs the index
// range analysis over a parsed file, mutating the AST in place (symbol
// links, types, constants, in-bounds facts). inputs overrides declared
// param defaults; every key must name a param. Check must succeed before
// Lower or Eval.
func Check(f *File, inputs map[string]int64) error {
	c := &checker{f: f, globals: map[string]*Symbol{}, ivals: map[*Symbol]interval{}}
	c.declare(inputs)
	if len(c.diags) == 0 {
		for _, fn := range f.Funcs {
			c.checkFunc(fn)
		}
		c.checkMain()
		c.checkRecursion()
	}
	if len(c.diags) == 0 {
		c.collectMainLocals()
	}
	if len(c.diags) > 0 {
		return &Error{Diags: c.diags}
	}
	return nil
}

// collectMainLocals gathers main's top-level var declarations. Each
// top-level for loop lowers to its own region, and regions have disjoint
// register namespaces, so a scalar declared before a loop and used inside
// it must travel through memory; these locals get slots in the hidden
// globals array, after the file-level globals.
func (c *checker) collectMainLocals() {
	for _, s := range c.f.Main.Body {
		if v, ok := s.(*VarStmt); ok {
			v.Name.Sym.GlobalIdx = int64(len(c.f.Globals) + len(c.f.MainLocals))
			c.f.MainLocals = append(c.f.MainLocals, v)
		}
	}
	if len(c.f.MainLocals) > maxGlobals {
		c.errf(CodeLimit, c.f.Main.P, "main declares %d top-level variables (max %d)", len(c.f.MainLocals), maxGlobals)
	}
}

type checker struct {
	f       *File
	diags   []Diagnostic
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	// ivals holds the proven value range of canonical loop counters,
	// valid while checking the loop body.
	ivals map[*Symbol]interval
	curFn *FuncDecl
}

func (c *checker) errf(code string, pos Pos, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{Code: code, Message: fmt.Sprintf(format, args...), Line: pos.Line, Col: pos.Col})
}

// declareName installs a top-level symbol, rejecting duplicates (params,
// arrays, globals and functions share one namespace).
func (c *checker) declareName(name string, pos Pos, s *Symbol) {
	if _, dup := c.globals[name]; dup {
		c.errf(CodeRedeclared, pos, "%s redeclares %q", s.Kind, name)
		return
	}
	c.globals[name] = s
}

// declare installs every top-level declaration and applies input
// overrides (array sizes may reference params, so overrides come first).
func (c *checker) declare(inputs map[string]int64) {
	f := c.f
	if len(f.Params) > maxParams {
		c.errf(CodeLimit, f.Params[maxParams].P, "too many params (max %d)", maxParams)
		return
	}
	if len(f.Arrays) > maxArrayDecls {
		c.errf(CodeLimit, f.Arrays[maxArrayDecls].P, "too many arrays (max %d)", maxArrayDecls)
		return
	}
	if len(f.Globals) > maxGlobals {
		c.errf(CodeLimit, f.Globals[maxGlobals].P, "too many global vars (max %d)", maxGlobals)
		return
	}
	if len(f.Funcs) > maxFuncs {
		c.errf(CodeLimit, f.Funcs[maxFuncs].P, "too many functions (max %d)", maxFuncs)
		return
	}
	for _, d := range f.Params {
		d.Sym = &Symbol{Kind: symParam, Name: d.Name, Type: TInt, Val: d.Value, Default: d.Value}
		c.declareName(d.Name, d.P, d.Sym)
	}
	inputNames := make([]string, 0, len(inputs))
	for name := range inputs {
		inputNames = append(inputNames, name)
	}
	sort.Strings(inputNames)
	for _, name := range inputNames {
		s, ok := c.globals[name]
		if !ok || s.Kind != symParam {
			c.errf(CodeInput, Pos{}, "input %q does not name a declared param", name)
			continue
		}
		s.Val = inputs[name]
	}
	for _, d := range f.Arrays {
		d.Sym = &Symbol{Kind: symArray, Name: d.Name, Type: d.Elem}
		c.declareName(d.Name, d.P, d.Sym)
		words, ok := c.constInt(d.Size)
		if !ok {
			continue
		}
		if words < 1 || words > maxArrayWords {
			c.errf(CodeBounds, d.Size.Pos(), "array %q size %d out of range [1, %d]", d.Name, words, maxArrayWords)
			continue
		}
		d.Sym.Words = words
		if int64(len(d.Init)) > words {
			c.errf(CodeBounds, d.P, "array %q has %d initializers for %d elements", d.Name, len(d.Init), words)
		}
		for _, e := range d.Init {
			c.constScalar(e, d.Elem)
		}
	}
	for i, d := range f.Globals {
		d.Sym = &Symbol{Kind: symGlobal, Name: d.Name, Type: d.T, GlobalIdx: int64(i)}
		c.declareName(d.Name, d.P, d.Sym)
		if d.Init != nil {
			v, fv, ok := c.constScalar(d.Init, d.T)
			if ok {
				d.Sym.Val, d.Sym.FVal = v, fv
			}
		}
	}
	for _, d := range f.Funcs {
		d.Sym = &Symbol{Kind: symFunc, Name: d.Name, Type: d.Ret, Fn: d}
		c.declareName(d.Name, d.P, d.Sym)
		if len(d.Params) > maxFuncParams {
			c.errf(CodeLimit, d.P, "function %q has %d params (max %d)", d.Name, len(d.Params), maxFuncParams)
		}
	}
}

// constInt checks e and requires a compile-time integer constant (literals
// and params fold).
func (c *checker) constInt(e Expr) (int64, bool) {
	t := c.checkExpr(e)
	if t == TInvalid {
		return 0, false
	}
	if t != TInt {
		c.errf(CodeType, e.Pos(), "expected a constant int expression, got %s", t)
		return 0, false
	}
	if !e.base().Const {
		c.errf(CodeConst, e.Pos(), "expression is not a compile-time constant")
		return 0, false
	}
	return e.base().ConstVal, true
}

// constScalar requires a compile-time constant of type want (int exprs
// over params, or a float literal possibly negated).
func (c *checker) constScalar(e Expr, want Type) (int64, float64, bool) {
	if want == TFloat {
		switch v := e.(type) {
		case *FloatLit:
			v.T = TFloat
			return 0, v.V, true
		case *UnaryExpr:
			if lit, ok := v.X.(*FloatLit); ok && v.Op == "-" {
				v.T, lit.T = TFloat, TFloat
				return 0, -lit.V, true
			}
		}
		c.errf(CodeConst, e.Pos(), "expected a float literal initializer")
		return 0, 0, false
	}
	v, ok := c.constInt(e)
	return v, 0, ok
}

// ---- functions and statements ----

func (c *checker) checkFunc(fn *FuncDecl) {
	c.curFn = fn
	c.scopes = []map[string]*Symbol{{}}
	for i := range fn.Params {
		p := &fn.Params[i]
		p.Sym = &Symbol{Kind: symLocal, Name: p.Name, Type: p.T}
		if _, dup := c.scopes[0][p.Name]; dup {
			c.errf(CodeRedeclared, p.P, "duplicate parameter %q", p.Name)
		}
		c.scopes[0][p.Name] = p.Sym
	}
	c.checkBody(fn.Body, true)
	if fn.Ret != TVoid {
		last := len(fn.Body) - 1
		if last < 0 {
			c.errf(CodeReturn, fn.P, "function %q must end in a return statement", fn.Name)
		} else if _, ok := fn.Body[last].(*ReturnStmt); !ok {
			c.errf(CodeReturn, fn.Body[last].Pos(), "function %q must end in a return statement", fn.Name)
		}
	}
	c.scopes = nil
	c.curFn = nil
}

// checkBody checks a statement list. funcTop marks the top level of a
// function body, the only place a return statement may appear (and only
// as the final statement — functions are inlined, so early returns have
// no lowering).
func (c *checker) checkBody(stmts []Stmt, funcTop bool) {
	for i, s := range stmts {
		if r, ok := s.(*ReturnStmt); ok && (!funcTop || i != len(stmts)-1) {
			c.errf(CodeReturn, r.P, "return must be the final statement of a function body")
			continue
		}
		c.checkStmt(s)
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkStmt(s Stmt) {
	switch s := s.(type) {
	case *VarStmt:
		if s.Init != nil {
			if t := c.checkExpr(s.Init); t != TInvalid && t != s.T {
				c.errf(CodeType, s.Init.Pos(), "cannot initialize %s variable %q with %s", s.T, s.Name.Name, t)
			}
		}
		sc := c.scopes[len(c.scopes)-1]
		if _, dup := sc[s.Name.Name]; dup {
			c.errf(CodeRedeclared, s.P, "var redeclares %q in this scope", s.Name.Name)
			return
		}
		s.Name.Sym = &Symbol{Kind: symLocal, Name: s.Name.Name, Type: s.T}
		s.Name.T = s.T
		sc[s.Name.Name] = s.Name.Sym
	case *AssignStmt:
		c.checkAssign(s)
	case *StoreStmt:
		et := c.checkExpr(s.Target)
		vt := c.checkExpr(s.Value)
		if et != TInvalid && vt != TInvalid && et != vt {
			c.errf(CodeType, s.Value.Pos(), "cannot store %s into %s array %q", vt, et, s.Target.Name.Name)
		}
	case *IfStmt:
		c.checkCond(s.Cond)
		c.pushScope()
		c.checkBody(s.Then, false)
		c.popScope()
		if s.Else != nil {
			c.pushScope()
			c.checkBody(s.Else, false)
			c.popScope()
		}
	case *ForStmt:
		c.checkFor(s)
	case *ExprStmt:
		if s.Call != nil {
			c.checkExpr(s.Call)
		}
	case *ReturnStmt:
		fn := c.curFn
		if fn.Ret == TVoid {
			if s.Value != nil {
				c.errf(CodeReturn, s.Value.Pos(), "function %q returns nothing", fn.Name)
			}
			return
		}
		if s.Value == nil {
			c.errf(CodeReturn, s.P, "function %q must return a %s value", fn.Name, fn.Ret)
			return
		}
		if t := c.checkExpr(s.Value); t != TInvalid && t != fn.Ret {
			c.errf(CodeType, s.Value.Pos(), "function %q returns %s, not %s", fn.Name, fn.Ret, t)
		}
	}
}

func (c *checker) checkAssign(s *AssignStmt) {
	sym := c.lookup(s.LHS.Name)
	vt := c.checkExpr(s.Value)
	if sym == nil {
		c.errf(CodeUndefined, s.LHS.P, "%q is not declared", s.LHS.Name)
		return
	}
	s.LHS.Sym = sym
	switch sym.Kind {
	case symLocal, symGlobal:
		s.LHS.T = sym.Type
		if vt != TInvalid && vt != sym.Type {
			c.errf(CodeType, s.Value.Pos(), "cannot assign %s to %s variable %q", vt, sym.Type, sym.Name)
		}
	case symParam:
		c.errf(CodeAssign, s.LHS.P, "cannot assign to param %q (params are immutable; override them via inputs)", sym.Name)
	default:
		c.errf(CodeAssign, s.LHS.P, "cannot assign to %s %q", sym.Kind, sym.Name)
	}
}

func (c *checker) checkCond(e Expr) {
	if t := c.checkExpr(e); t != TInvalid && t != TBool {
		c.errf(CodeType, e.Pos(), "condition must be a comparison (bool), got %s", t)
	}
}

// checkFor checks both loop forms. The counted form may implicitly
// declare its counter; a canonical counted loop additionally yields a
// proven value range for the counter, which the index analysis uses to
// elide wrap-around normalization inside the body.
func (c *checker) checkFor(s *ForStmt) {
	c.pushScope()
	defer c.popScope()
	var counter *Symbol
	if s.Init != nil {
		if c.lookup(s.Init.LHS.Name) == nil {
			// Implicit loop-scoped int counter: for i = 0; ...
			sym := &Symbol{Kind: symLocal, Name: s.Init.LHS.Name, Type: TInt}
			c.scopes[len(c.scopes)-1][s.Init.LHS.Name] = sym
			s.DeclaresVar = true
		}
		c.checkAssign(s.Init)
		counter = s.Init.LHS.Sym
	}
	c.checkCond(s.Cond)
	if s.Post != nil {
		c.checkAssign(s.Post)
	}
	iv, ok := c.counterRange(s, counter)
	if ok {
		c.ivals[counter] = iv
		defer delete(c.ivals, counter)
	}
	c.pushScope()
	c.checkBody(s.Body, false)
	c.popScope()
}

// counterRange proves the value range of a canonical counted-loop
// counter inside the body: constant init, constant step, a constant
// bound, and no other assignment to the counter anywhere in the body.
func (c *checker) counterRange(s *ForStmt, counter *Symbol) (interval, bool) {
	if counter == nil || counter.Kind != symLocal || s.Post == nil || s.Post.LHS.Sym != counter {
		return interval{}, false
	}
	init := s.Init.Value.base()
	if !init.Const {
		return interval{}, false
	}
	step, ok := stepOf(s.Post, counter)
	if !ok || step == 0 {
		return interval{}, false
	}
	cmp, ok := s.Cond.(*BinaryExpr)
	if !ok {
		return interval{}, false
	}
	x, ok := cmp.X.(*Ident)
	if !ok || x.Sym != counter || !cmp.Y.base().Const {
		return interval{}, false
	}
	if assignsTo(s.Body, counter) {
		return interval{}, false
	}
	c0, k := init.ConstVal, cmp.Y.base().ConstVal
	switch {
	case step > 0 && cmp.Op == "<":
		return interval{lo: c0, hi: k - 1, known: k > minI64}, true
	case step > 0 && cmp.Op == "<=":
		return interval{lo: c0, hi: k, known: true}, true
	case step < 0 && cmp.Op == ">":
		return interval{lo: k + 1, hi: c0, known: k < maxI64}, true
	case step < 0 && cmp.Op == ">=":
		return interval{lo: k, hi: c0, known: true}, true
	}
	return interval{}, false
}

// stepOf recognizes i = i + c, i = c + i and i = i - c.
func stepOf(post *AssignStmt, counter *Symbol) (int64, bool) {
	b, ok := post.Value.(*BinaryExpr)
	if !ok {
		return 0, false
	}
	xi, xIsCounter := b.X.(*Ident)
	yi, yIsCounter := b.Y.(*Ident)
	xIsCounter = xIsCounter && xi.Sym == counter
	yIsCounter = yIsCounter && yi.Sym == counter
	switch {
	case b.Op == "+" && xIsCounter && b.Y.base().Const:
		return b.Y.base().ConstVal, true
	case b.Op == "+" && yIsCounter && b.X.base().Const:
		return b.X.base().ConstVal, true
	case b.Op == "-" && xIsCounter && b.Y.base().Const:
		return -b.Y.base().ConstVal, true
	}
	return 0, false
}

// assignsTo reports whether any statement in the tree assigns sym.
func assignsTo(stmts []Stmt, sym *Symbol) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *AssignStmt:
			if s.LHS.Sym == sym {
				return true
			}
		case *IfStmt:
			if assignsTo(s.Then, sym) || assignsTo(s.Else, sym) {
				return true
			}
		case *ForStmt:
			if s.Init != nil && s.Init.LHS.Sym == sym {
				return true
			}
			if s.Post != nil && s.Post.LHS.Sym == sym {
				return true
			}
			if assignsTo(s.Body, sym) {
				return true
			}
		}
	}
	return false
}

// ---- expressions ----

// checkExpr resolves and types e, folding integer constants. It returns
// the type (TInvalid after reporting, or silently when an operand already
// failed — one error per cause).
func (c *checker) checkExpr(e Expr) Type {
	t := c.exprType(e)
	e.base().T = t
	return t
}

func (c *checker) exprType(e Expr) Type {
	switch e := e.(type) {
	case *IntLit:
		e.Const, e.ConstVal = true, e.V
		return TInt
	case *FloatLit:
		return TFloat
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errf(CodeUndefined, e.P, "%q is not declared", e.Name)
			return TInvalid
		}
		e.Sym = sym
		switch sym.Kind {
		case symParam:
			e.Const, e.ConstVal = true, sym.Val
			return TInt
		case symLocal, symGlobal:
			return sym.Type
		case symArray:
			c.errf(CodeType, e.P, "array %q is not a scalar (index it)", e.Name)
		case symFunc:
			c.errf(CodeType, e.P, "function %q is not a value (call it)", e.Name)
		}
		return TInvalid
	case *IndexExpr:
		return c.checkIndex(e)
	case *CallExpr:
		return c.checkCall(e)
	case *UnaryExpr:
		t := c.checkExpr(e.X)
		switch e.Op {
		case "-":
			if t == TInt {
				if b := e.X.base(); b.Const {
					e.Const, e.ConstVal = true, -b.ConstVal
				}
				return TInt
			}
			if t == TFloat {
				return TFloat
			}
			if t != TInvalid {
				c.errf(CodeType, e.P, "operand of - must be int or float, got %s", t)
			}
		case "!":
			if t == TBool {
				return TBool
			}
			if t != TInvalid {
				c.errf(CodeType, e.P, "operand of ! must be a comparison (bool), got %s", t)
			}
		}
		return TInvalid
	case *BinaryExpr:
		return c.checkBinary(e)
	case *ConvExpr:
		t := c.checkExpr(e.X)
		if t == TInvalid {
			return TInvalid
		}
		if t != TInt && t != TFloat {
			c.errf(CodeType, e.P, "cannot convert %s to %s", t, e.To)
			return TInvalid
		}
		if e.To == TInt && t == TInt {
			b := e.X.base()
			e.Const, e.ConstVal = b.Const, b.ConstVal
		}
		return e.To
	}
	return TInvalid
}

func (c *checker) checkIndex(e *IndexExpr) Type {
	sym := c.lookup(e.Name.Name)
	if sym == nil {
		c.errf(CodeUndefined, e.Name.P, "%q is not declared", e.Name.Name)
		c.checkExpr(e.Index)
		return TInvalid
	}
	e.Name.Sym = sym
	if sym.Kind != symArray {
		c.errf(CodeType, e.Name.P, "%s %q is not an array", sym.Kind, sym.Name)
		c.checkExpr(e.Index)
		return TInvalid
	}
	it := c.checkExpr(e.Index)
	if it == TInvalid {
		return sym.Type
	}
	if it != TInt {
		c.errf(CodeType, e.Index.Pos(), "array index must be int, got %s", it)
		return sym.Type
	}
	if b := e.Index.base(); b.Const {
		// A constant index is checked outright: a provable out-of-range
		// access is a bug, not a wrap.
		if b.ConstVal < 0 || b.ConstVal >= sym.Words {
			c.errf(CodeBounds, e.Index.Pos(), "index %d out of range for array %q of %d elements", b.ConstVal, sym.Name, sym.Words)
			return sym.Type
		}
		e.InBounds = true
		return sym.Type
	}
	if iv := c.intervalOf(e.Index); iv.known && iv.lo >= 0 && iv.hi < sym.Words {
		e.InBounds = true
	}
	return sym.Type
}

func (c *checker) checkCall(e *CallExpr) Type {
	sym := c.lookup(e.Fn.Name)
	for _, a := range e.Args {
		c.checkExpr(a)
	}
	if sym == nil {
		c.errf(CodeUndefined, e.Fn.P, "%q is not declared", e.Fn.Name)
		return TInvalid
	}
	e.Fn.Sym = sym
	if sym.Kind != symFunc {
		c.errf(CodeCall, e.Fn.P, "%s %q is not a function", sym.Kind, sym.Name)
		return TInvalid
	}
	fn := sym.Fn
	if len(e.Args) != len(fn.Params) {
		c.errf(CodeCall, e.P, "function %q takes %d arguments, got %d", fn.Name, len(fn.Params), len(e.Args))
		return fn.Ret
	}
	for i, a := range e.Args {
		if t := a.base().T; t != TInvalid && t != fn.Params[i].T {
			c.errf(CodeCall, a.Pos(), "argument %d of %q must be %s, got %s", i+1, fn.Name, fn.Params[i].T, t)
		}
	}
	return fn.Ret
}

func (c *checker) checkBinary(e *BinaryExpr) Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	if xt == TInvalid || yt == TInvalid {
		return TInvalid
	}
	switch e.Op {
	case "&&", "||":
		if xt != TBool || yt != TBool {
			c.errf(CodeType, e.P, "operands of %s must be comparisons (bool), got %s and %s", e.Op, xt, yt)
			return TInvalid
		}
		return TBool
	case "==", "!=", "<", "<=", ">", ">=":
		if xt != yt {
			c.errf(CodeType, e.P, "mismatched comparison operands: %s %s %s", xt, e.Op, yt)
			return TInvalid
		}
		if xt == TBool {
			c.errf(CodeType, e.P, "cannot compare bool values (combine conditions with && and ||)")
			return TInvalid
		}
		if xt == TFloat && (e.Op == "==" || e.Op == "!=") {
			c.errf(CodeFloatEq, e.P, "floats cannot be compared with %s (the machine has no float equality; compare with < <= > >=)", e.Op)
			return TInvalid
		}
		return TBool
	case "+", "-", "*", "/":
		if xt != yt || xt == TBool {
			c.errf(CodeType, e.P, "mismatched operands: %s %s %s", xt, e.Op, yt)
			return TInvalid
		}
		if xt == TInt {
			c.foldInt(e)
		}
		return xt
	case "%", "&", "|", "^", "<<", ">>":
		if xt != TInt || yt != TInt {
			c.errf(CodeType, e.P, "operands of %s must be int, got %s and %s", e.Op, xt, yt)
			return TInvalid
		}
		c.foldInt(e)
		return TInt
	}
	return TInvalid
}

// foldInt folds a constant integer operation with the machine's exact
// semantics (wraparound, divide-by-zero yields zero, shift counts mask to
// six bits) — a folded constant must be indistinguishable from the op it
// replaces.
func (c *checker) foldInt(e *BinaryExpr) {
	xb, yb := e.X.base(), e.Y.base()
	if xb.Const && yb.Const {
		e.Const, e.ConstVal = true, evalIntOp(e.Op, xb.ConstVal, yb.ConstVal)
	}
}

// ---- main and the call graph ----

func (c *checker) checkMain() {
	for _, fn := range c.f.Funcs {
		if fn.Name == "main" {
			c.f.Main = fn
			if len(fn.Params) > 0 || fn.Ret != TVoid {
				c.errf(CodeMain, fn.P, "main must take no parameters and return nothing")
			}
			if len(fn.Body) == 0 {
				c.errf(CodeMain, fn.P, "main must contain at least one statement")
			}
			return
		}
	}
	c.errf(CodeMain, Pos{1, 1}, "program must declare func main()")
}

// checkRecursion rejects call-graph cycles: functions are inlined at
// their call sites, so recursion has no lowering.
func (c *checker) checkRecursion() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[*FuncDecl]int{}
	var visit func(fn *FuncDecl)
	visit = func(fn *FuncDecl) {
		if color[fn] != white {
			return
		}
		color[fn] = gray
		for _, callee := range calleesOf(fn.Body) {
			if color[callee] == gray {
				c.errf(CodeRecursion, callee.P, "function %q is recursive (functions are inlined, so recursion cannot be compiled)", callee.Name)
				continue
			}
			visit(callee)
		}
		color[fn] = black
	}
	for _, fn := range c.f.Funcs {
		visit(fn)
	}
}

// calleesOf collects the functions a statement list calls.
func calleesOf(stmts []Stmt) []*FuncDecl {
	var out []*FuncDecl
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch e := e.(type) {
		case *CallExpr:
			if e.Fn.Sym != nil && e.Fn.Sym.Fn != nil {
				out = append(out, e.Fn.Sym.Fn)
			}
			for _, a := range e.Args {
				walkExpr(a)
			}
		case *IndexExpr:
			walkExpr(e.Index)
		case *UnaryExpr:
			walkExpr(e.X)
		case *BinaryExpr:
			walkExpr(e.X)
			walkExpr(e.Y)
		case *ConvExpr:
			walkExpr(e.X)
		}
	}
	var walk func(stmts []Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *VarStmt:
				if s.Init != nil {
					walkExpr(s.Init)
				}
			case *AssignStmt:
				walkExpr(s.Value)
			case *StoreStmt:
				walkExpr(s.Target.Index)
				walkExpr(s.Value)
			case *IfStmt:
				walkExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *ForStmt:
				if s.Init != nil {
					walkExpr(s.Init.Value)
				}
				walkExpr(s.Cond)
				if s.Post != nil {
					walkExpr(s.Post.Value)
				}
				walk(s.Body)
			case *ExprStmt:
				if s.Call != nil {
					walkExpr(s.Call)
				}
			case *ReturnStmt:
				if s.Value != nil {
					walkExpr(s.Value)
				}
			}
		}
	}
	walk(stmts)
	return out
}
