// Package lang is the source-language frontend: a small structured
// language (typed int/float scalars and arrays, functions, counted and
// data-dependent loops, branches, reductions) that compiles to the
// simulator's region IR, so arbitrary user programs flow through the same
// dependence analysis, tier classification and strategy selection as the
// built-in benchmarks.
//
// The pipeline is Parse -> Check -> Lower. Parse builds a positioned AST
// and fails fast on the first syntax error; Check resolves names, types
// every expression, folds integer constants, proves index ranges, and
// accumulates structured diagnostics; Lower emits IR whose loops keep the
// canonical induction/reduction shapes the optimizer recognizes. Program
// semantics are defined by the machine (see sem.go and eval.go), and the
// lowered IR is differentially tested against the reference evaluator.
package lang

import "voltron/internal/ir"

// Program is a parsed, checked source program, ready to lower or
// interrogate (for validation endpoints).
type Program struct {
	File *File
}

// Frontend parses and checks src, applying inputs as param overrides.
// The returned error, when non-nil, is a *lang.Error carrying structured
// diagnostics with positions.
func Frontend(src string, inputs map[string]int64) (*Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(f, inputs); err != nil {
		return nil, err
	}
	return &Program{File: f}, nil
}

// Lower compiles the checked program to IR under the given name.
func (p *Program) Lower(name string) (*ir.Program, error) {
	return Lower(p.File, name)
}

// Eval runs the checked program under the reference semantics.
func (p *Program) Eval() (*EvalResult, error) {
	return Eval(p.File)
}

// Params returns the program's effective parameter values (defaults with
// inputs applied).
func (p *Program) Params() map[string]int64 {
	out := make(map[string]int64, len(p.File.Params))
	for _, d := range p.File.Params {
		out[d.Name] = d.Sym.Val
	}
	return out
}

// Defaults returns the declared parameter defaults, before overrides.
func (p *Program) Defaults() map[string]int64 {
	return p.File.ParamDefaults()
}

// Compile is the one-call form: parse, check and lower src as an IR
// program named name.
func Compile(src, name string, inputs map[string]int64) (*ir.Program, error) {
	p, err := Frontend(src, inputs)
	if err != nil {
		return nil, err
	}
	return p.Lower(name)
}
