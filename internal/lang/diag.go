package lang

import "fmt"

// Diagnostic codes. Every frontend failure carries exactly one of these;
// they are part of the API surface (clients and the diagnostic golden tests
// match on them), so existing codes never change meaning.
const (
	// CodeSyntax is any lexical or grammatical error.
	CodeSyntax = "syntax"
	// CodeRedeclared is a name declared twice in one scope.
	CodeRedeclared = "redeclared"
	// CodeUndefined is a reference to a name never declared.
	CodeUndefined = "undefined"
	// CodeType is an operand or assignment type mismatch.
	CodeType = "type"
	// CodeFloatEq is == or != on floats, which the target ISA cannot
	// express (it has no float equality compare) and the language
	// therefore rejects rather than approximates.
	CodeFloatEq = "float-eq"
	// CodeConst is a non-constant expression where a compile-time
	// constant is required (array sizes, initializers).
	CodeConst = "const"
	// CodeBounds is a provably out-of-range constant array index or an
	// array size outside the supported range.
	CodeBounds = "bounds"
	// CodeAssign is an assignment to something that is not a variable
	// (parameters are immutable, functions and arrays are not scalars).
	CodeAssign = "assign"
	// CodeCall is a call mismatch: unknown function, wrong arity or
	// argument types, or a value context for a void function.
	CodeCall = "call"
	// CodeRecursion is a cycle in the call graph; functions are inlined,
	// so recursion (direct or mutual) cannot be compiled.
	CodeRecursion = "recursion"
	// CodeReturn is a misplaced or missing return statement.
	CodeReturn = "return"
	// CodeMain is a missing or malformed main function.
	CodeMain = "main"
	// CodeInput is an invalid parameter override: an input naming no
	// declared param.
	CodeInput = "input"
	// CodeLimit is a program exceeding a size cap (source bytes,
	// declarations, lowered operations, or the evaluation budget).
	CodeLimit = "limit"
)

// Diagnostic is one frontend error with a stable machine-readable code and
// a 1-based source position. It is the wire shape /v1/validate and the job
// path return for source-program failures.
type Diagnostic struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
}

func (d Diagnostic) String() string {
	if d.Line == 0 {
		return fmt.Sprintf("%s: %s", d.Code, d.Message)
	}
	return fmt.Sprintf("%d:%d: %s: %s", d.Line, d.Col, d.Code, d.Message)
}

// Error is the failure type of every frontend entry point: one or more
// diagnostics in source order. Callers that care about structure use
// errors.As; everyone else gets a readable message.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	switch len(e.Diags) {
	case 0:
		return "invalid program"
	case 1:
		return e.Diags[0].String()
	default:
		return fmt.Sprintf("%s (and %d more errors)", e.Diags[0], len(e.Diags)-1)
	}
}

// errf builds a single-diagnostic Error.
func errf(code string, pos Pos, format string, args ...any) *Error {
	return &Error{Diags: []Diagnostic{{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Line:    pos.Line,
		Col:     pos.Col,
	}}}
}
