package lang

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"voltron/internal/compiler"
)

func readExamples(t *testing.T) map[string]string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "lang", "*.vs"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	out := map[string]string{}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = string(src)
	}
	return out
}

// TestExamplesDifferential runs every shipped example through the full
// oracle: evaluator vs interpreter vs every strategy at 4 and 16 cores.
func TestExamplesDifferential(t *testing.T) {
	for name, src := range readExamples(t) {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runDifferential(t, src, name)
		})
	}
}

// TestExamplesStrategyDiversity is the corpus-coverage gate: the shipped
// examples must continue to exercise at least three distinct selected
// strategies, or the corpus has stopped earning its keep as a selection
// test bed. Run in CI via the ordinary test suite.
func TestExamplesStrategyDiversity(t *testing.T) {
	distinct := map[compiler.Choice][]string{}
	for name, src := range readExamples(t) {
		p, err := Frontend(src, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		prog, err := p.Lower(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cls, err := compiler.ClassifyProgram(prog, compiler.Options{Cores: 4, Strategy: compiler.Hybrid})
		if err != nil {
			t.Fatalf("%s: classify: %v", name, err)
		}
		for _, c := range cls {
			distinct[c.Choice] = append(distinct[c.Choice], name)
		}
	}
	var lines []string
	for ch, names := range distinct {
		sort.Strings(names)
		lines = append(lines, fmt.Sprintf("  %-14s %v", ch, names))
	}
	sort.Strings(lines)
	for _, l := range lines {
		t.Log(l)
	}
	if len(distinct) < 3 {
		t.Fatalf("examples/lang covers only %d distinct selected strategies, need >= 3", len(distinct))
	}
}
