package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"voltron/internal/isa"
	"voltron/internal/stats"
	"voltron/internal/trace"
)

// traceRun runs cp with a fresh tracer attached.
func traceRun(t *testing.T, cp *CompiledProgram) (*RunResult, *trace.Tracer) {
	t.Helper()
	cfg := DefaultConfig(cp.Cores)
	cfg.Tracer = trace.New()
	return mustRun(t, cfg, cp), cfg.Tracer
}

// traceWorkloads are the fixed workloads the determinism and attribution
// guarantees are pinned on: one coupled region with memory stalls, one
// decoupled queue pipeline, and the transactional DOALL path both committing
// and falling back.
func traceWorkloads() map[string]*CompiledProgram {
	commit, _ := doallProgram(false)
	fallback, _ := doallProgram(true)
	return map[string]*CompiledProgram{
		"coupled":       coupledStallProgram(),
		"decoupled":     queuePipelineProgram(),
		"doall":         commit,
		"doallFallback": fallback,
	}
}

// TestTraceChromeDeterministic renders the Chrome trace of two independent
// runs of the same workload and requires byte-identical, JSON-valid output.
func TestTraceChromeDeterministic(t *testing.T) {
	for name, cp := range traceWorkloads() {
		t.Run(name, func(t *testing.T) {
			var a, b bytes.Buffer
			_, tr := traceRun(t, cp)
			if err := tr.WriteChrome(&a); err != nil {
				t.Fatal(err)
			}
			_, tr = traceRun(t, cp)
			if err := tr.WriteChrome(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("identical runs rendered different traces:\n--- run 1\n%s\n--- run 2\n%s", a.String(), b.String())
			}
			if !json.Valid(a.Bytes()) {
				t.Fatalf("trace is not valid JSON:\n%s", a.String())
			}
			if len(tr.Events) == 0 {
				t.Fatal("traced run collected no events")
			}
		})
	}
}

// TestTraceReportMatchesStats asserts the attribution invariant: for every
// cause, the cycles in the stall report (summed over regions and cores)
// equal exactly what the stats package counted for the same run, and each
// region's cycle bounds match the machine's RegionCycles. Both are charged
// at the same sites in the simulator, so any divergence is a bug.
func TestTraceReportMatchesStats(t *testing.T) {
	for name, cp := range traceWorkloads() {
		t.Run(name, func(t *testing.T) {
			res, tr := traceRun(t, cp)
			rep := tr.Report()
			for _, k := range stats.Kinds() {
				var want int64
				for _, c := range res.Run.Cores {
					want += c.Cycles[k]
				}
				if got := rep.Total(k); got != want {
					t.Errorf("%v: report has %d cycles, stats counted %d", k, got, want)
				}
			}
			if len(rep.Regions) != len(res.RegionCycles) {
				t.Fatalf("report has %d regions, run had %d", len(rep.Regions), len(res.RegionCycles))
			}
			for i, rr := range rep.Regions {
				if got := rr.End - rr.Start; got != res.RegionCycles[i] {
					t.Errorf("region %q: report spans %d cycles, machine counted %d", rr.Name, got, res.RegionCycles[i])
				}
			}
		})
	}
}

// TestTraceTextMatchesLegacyTrace runs the same workload once streaming the
// text trace through Config.Trace and once rendering it from an explicit
// Tracer; both paths must produce identical bytes (they are the same
// renderer over the same event stream).
func TestTraceTextMatchesLegacyTrace(t *testing.T) {
	cp := queuePipelineProgram()
	var viaConfig bytes.Buffer
	cfg := DefaultConfig(cp.Cores)
	cfg.Trace = &viaConfig
	mustRun(t, cfg, cp)
	_, tr := traceRun(t, cp)
	var viaTracer bytes.Buffer
	if err := tr.WriteText(&viaTracer); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaConfig.Bytes(), viaTracer.Bytes()) {
		t.Fatalf("text traces diverge:\n--- Config.Trace\n%s\n--- Tracer.WriteText\n%s", viaConfig.String(), viaTracer.String())
	}
	if !bytes.Contains(viaConfig.Bytes(), []byte("=== region")) {
		t.Fatalf("text trace lost its region header:\n%s", viaConfig.String())
	}
}

// tripCountProgram builds a single-core coupled loop with n iterations of
// store/load traffic through a masked stride (addresses stay inside the
// image no matter the trip count) — the allocation guard runs it at two
// widely different trip counts.
func tripCountProgram(n int64) *CompiledProgram {
	p, out := srcProg(256)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0})
	c0.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c0.nop()
	c0.label(1)
	c0.emit(isa.Inst{Op: isa.MUL, Dst: isa.GPR(2), Src1: isa.GPR(1), Imm: 64})
	c0.nop().nop()
	c0.emit(isa.Inst{Op: isa.AND, Dst: isa.GPR(2), Src1: isa.GPR(2), Imm: 1023})
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(2), Src1: isa.GPR(2), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(2), Src2: isa.GPR(1)})
	c0.emit(isa.Inst{Op: isa.LOAD, Dst: isa.GPR(3), Src1: isa.GPR(2)})
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 1})
	c0.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(1), Imm: n})
	c0.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.HALT})
	return &CompiledProgram{
		Name: "trip-count", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code},
			Labels: []map[int64]int{c0.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
}

// TestEventLoopZeroAllocs is the zero-allocation guard for untraced runs:
// with Config.Tracer nil, simulating 64× more loop iterations must allocate
// exactly as much as the short run — i.e. the event loop itself allocates
// nothing per cycle, and the tracer hooks cost only their nil checks.
func TestEventLoopZeroAllocs(t *testing.T) {
	measure := func(n int64) float64 {
		cp := tripCountProgram(n)
		m := New(DefaultConfig(cp.Cores))
		run := func() {
			if _, err := m.Run(cp); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the machine's reusable scratch state
		return testing.AllocsPerRun(20, run)
	}
	short, long := measure(8), measure(512)
	if long > short {
		t.Errorf("event loop allocates per iteration: %v allocs/run at 8 trips, %v at 512", short, long)
	}
}

// TestEventLoopZeroAllocsWide is the many-core twin of the guard above: a
// warm run carries a small constant allocation overhead (the result
// struct), but the decoupled event loop — wake scheduler, queue probes and
// lazy stall settlement included — must not allocate per cycle or per
// core, so a warm 64-core machine (idle mesh or fully active) allocates no
// more per run than a warm 8-core one.
func TestEventLoopZeroAllocsWide(t *testing.T) {
	measure := func(cp *CompiledProgram) float64 {
		m := New(DefaultConfig(cp.Cores))
		run := func() {
			if _, err := m.Run(cp); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the machine's reusable scratch state
		return testing.AllocsPerRun(20, run)
	}
	for _, prog := range []func(int) *CompiledProgram{wideIdlePipelineProgram, allActiveProgram} {
		narrow, wide := prog(8), prog(64)
		if n, w := measure(narrow), measure(wide); w > n {
			t.Errorf("%s: warm 64-core event loop allocates %v per run, 8-core %v — scheduler state scales with width", wide.Name, w, n)
		}
	}
}
