package core

import (
	"bytes"
	"strings"
	"testing"

	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/stats"
)

// TestQueueBackpressure: a producer that sends far more messages than the
// pair capacity before the consumer drains them must stall on SEND (and
// the program must still complete).
func TestQueueBackpressure(t *testing.T) {
	p, out := srcProg(4)
	const n = 40 // > pair capacity (16)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 7})
	for i := 0; i < n; i++ {
		c0.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(1), Core: 1})
	}
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	for i := 0; i < n; i++ {
		c1.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(2), Core: 0})
		// A slow consumer: the producer must outpace it and fill the
		// 16-entry pair queue.
		c1.nop().nop().nop()
	}
	c1.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(2)})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if got := int64(res.Mem.LoadW(out.Base)); got != 7 {
		t.Errorf("out = %d, want 7", got)
	}
	if res.Run.Cores[0].Cycles[stats.SendStall] == 0 {
		t.Error("producer never hit queue back-pressure")
	}
}

// TestEightCoreDecoupled: decoupled execution scales past the coupled
// 4-core group limit — the paper allows decoupled threads across groups.
func TestEightCoreDecoupled(t *testing.T) {
	p, out := srcProg(16)
	c0 := newAsm()
	for w := 1; w < 8; w++ {
		c0.emit(isa.Inst{Op: isa.SPAWN, Core: w, Imm: int64(10 + w)})
	}
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 100})
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(1)})
	// Collect one value from each worker.
	for w := 1; w < 8; w++ {
		c0.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(2), Core: w})
		c0.emit(isa.Inst{Op: isa.NOP})
		c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(2), Imm: int64(w) * 8})
	}
	c0.emit(isa.Inst{Op: isa.HALT})
	workers := make([]*asm, 8)
	workers[0] = c0
	for w := 1; w < 8; w++ {
		a := newAsm()
		a.label(int64(10 + w))
		a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: int64(w * 11)})
		a.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(1), Core: 0})
		a.emit(isa.Inst{Op: isa.SLEEP})
		workers[w] = a
	}
	cr := &CompiledRegion{Name: "r", Mode: Decoupled}
	for w := 0; w < 8; w++ {
		cr.Code = append(cr.Code, workers[w].code)
		cr.Labels = append(cr.Labels, workers[w].labels)
		cr.Entry = append(cr.Entry, 0)
		cr.StartAwake = append(cr.StartAwake, w == 0)
	}
	cp := &CompiledProgram{Name: "t", Cores: 8, Src: p, Regions: []*CompiledRegion{cr}}
	res := mustRun(t, DefaultConfig(8), cp)
	for w := 1; w < 8; w++ {
		if got := int64(res.Mem.LoadW(out.Base + int64(w)*8)); got != int64(w*11) {
			t.Errorf("worker %d result = %d, want %d", w, got, w*11)
		}
	}
	if res.Run.Spawns != 7 {
		t.Errorf("spawns = %d, want 7", res.Run.Spawns)
	}
}

// TestAccountingConservation: every core's accounted cycles equal the
// wall-clock total.
func TestAccountingConservation(t *testing.T) {
	cp, _ := doallProgram(false)
	res := mustRun(t, DefaultConfig(2), cp)
	for i := range res.Run.Cores {
		if got := res.Run.Cores[i].Total(); got != res.TotalCycles {
			t.Errorf("core %d accounted %d cycles of %d", i, got, res.TotalCycles)
		}
	}
}

// TestAccountingConservationCoupled: same invariant in coupled mode with
// stalls.
func TestAccountingConservationCoupled(t *testing.T) {
	p, out := srcProg(8)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: out.Base})
	a.emit(isa.Inst{Op: isa.LOAD, Dst: isa.GPR(2), Src1: isa.GPR(1)})
	a.nop()
	a.nop()
	a.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2), Imm: 8})
	a.emit(isa.Inst{Op: isa.HALT})
	b := newAsm()
	b.nop().nop().nop().nop().nop()
	b.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code, b.code},
			Labels: []map[int64]int{a.labels, b.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	for i := range res.Run.Cores {
		if got := res.Run.Cores[i].Total(); got != res.TotalCycles {
			t.Errorf("core %d accounted %d of %d cycles", i, got, res.TotalCycles)
		}
	}
}

// TestQueueLatencyOverride: the config knobs must change queue timing.
func TestQueueLatencyOverride(t *testing.T) {
	build := func() *CompiledProgram {
		p, out := srcProg(4)
		c0 := newAsm()
		c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
		c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
		c0.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(5), Core: 1})
		c0.nop()
		c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(5)})
		c0.emit(isa.Inst{Op: isa.HALT})
		c1 := newAsm()
		c1.label(10)
		c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 3})
		c1.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(1), Core: 0})
		c1.emit(isa.Inst{Op: isa.SLEEP})
		return &CompiledProgram{
			Name: "t", Cores: 2, Src: p,
			Regions: []*CompiledRegion{{
				Name: "r", Mode: Decoupled,
				Code:   [][]isa.Inst{c0.code, c1.code},
				Labels: []map[int64]int{c0.labels, c1.labels},
				Entry:  []int{0, 0}, StartAwake: []bool{true, false},
			}},
		}
	}
	fast := DefaultConfig(2)
	slow := DefaultConfig(2)
	slow.QueueBaseLat = 20
	rf := mustRun(t, fast, build())
	rs := mustRun(t, slow, build())
	if rs.TotalCycles <= rf.TotalCycles {
		t.Errorf("higher queue latency did not slow the run: %d vs %d", rs.TotalCycles, rf.TotalCycles)
	}
}

// TestRegionCyclesSumToTotal.
func TestRegionCyclesSumToTotal(t *testing.T) {
	p, _ := srcProg(4)
	mk := func() *CompiledRegion {
		a := newAsm()
		a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 1})
		a.emit(isa.Inst{Op: isa.HALT})
		return &CompiledRegion{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}
	}
	cp := &CompiledProgram{Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{mk(), mk(), mk(), mk()}}
	res := mustRun(t, DefaultConfig(1), cp)
	var sum int64
	for _, c := range res.RegionCycles {
		sum += c
	}
	if sum != res.TotalCycles {
		t.Errorf("region cycles sum %d != total %d", sum, res.TotalCycles)
	}
}

// TestCoreCountMismatchRejected.
func TestCoreCountMismatchRejected(t *testing.T) {
	p, _ := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code, a.code},
			Labels: []map[int64]int{a.labels, a.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}}}
	if _, err := New(DefaultConfig(4)).Run(cp); err == nil {
		t.Error("2-core program ran on a 4-core machine")
	}
}

// TestTraceFacility: the trace sink receives region markers and issue
// lines in both modes.
func TestTraceFacility(t *testing.T) {
	cp, _ := doallProgram(false)
	cfg := DefaultConfig(2)
	var buf bytes.Buffer
	cfg.Trace = &buf
	if _, err := New(cfg).Run(cp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== region", "txbegin", "txcommit", "spawn", "store"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// TestQueueCapOverride: an unbounded queue never send-stalls.
func TestQueueCapOverride(t *testing.T) {
	p, out := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 7})
	for i := 0; i < 40; i++ {
		c0.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(1), Core: 1})
	}
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	for i := 0; i < 40; i++ {
		c1.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(2), Core: 0})
		c1.nop().nop().nop()
	}
	c1.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(2)})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
	cfg := DefaultConfig(2)
	cfg.QueueCap = -1
	res := mustRun(t, cfg, cp)
	if res.Run.Cores[0].Cycles[stats.SendStall] != 0 {
		t.Error("unbounded queue still send-stalled")
	}
}

// TestCoupledFloatTransfer: FP values cross the direct-mode wires intact.
func TestCoupledFloatTransfer(t *testing.T) {
	p, out := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.FMOVI, Dst: isa.FPR(1), F: 2.5})
	c0.emit(isa.Inst{Op: isa.PUT, Src1: isa.FPR(1), Dir: isa.East})
	c0.nop().nop().nop().nop().nop()
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	c1.emit(isa.Inst{Op: isa.GETOP, Dst: isa.FPR(2), Dir: isa.West})
	c1.emit(isa.Inst{Op: isa.FADD, Dst: isa.FPR(3), Src1: isa.FPR(2), Src2: isa.FPR(2)})
	c1.nop().nop().nop() // FADD latency 4
	c1.emit(isa.Inst{Op: isa.FSTORE, Src1: isa.GPR(9), Src2: isa.FPR(3)})
	c1.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if got := ir.U2F(res.Mem.LoadW(out.Base)); got != 5.0 {
		t.Errorf("fp transfer result = %g, want 5.0", got)
	}
}

// TestFDivLatencyEnforced: consuming an FDIV result too early is flagged.
func TestFDivLatencyEnforced(t *testing.T) {
	p, _ := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.FMOVI, Dst: isa.FPR(1), F: 8})
	a.emit(isa.Inst{Op: isa.FMOVI, Dst: isa.FPR(2), F: 2})
	a.emit(isa.Inst{Op: isa.FDIV, Dst: isa.FPR(3), Src1: isa.FPR(1), Src2: isa.FPR(2)})
	a.emit(isa.Inst{Op: isa.FADD, Dst: isa.FPR(4), Src1: isa.FPR(3), Src2: isa.FPR(3)})
	a.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
	if _, err := New(DefaultConfig(1)).Run(cp); err == nil {
		t.Error("FDIV latency violation not detected")
	}
}
