package core

import (
	"strings"
	"testing"

	"voltron/internal/isa"
)

func validRegion(cores int) *CompiledRegion {
	cr := &CompiledRegion{Name: "r", Mode: Decoupled}
	for c := 0; c < cores; c++ {
		a := newAsm()
		if c == 0 {
			a.emit(isa.Inst{Op: isa.HALT})
		} else {
			a.label(int64(100 + c))
			a.emit(isa.Inst{Op: isa.SLEEP})
		}
		cr.Code = append(cr.Code, a.code)
		cr.Labels = append(cr.Labels, a.labels)
		cr.Entry = append(cr.Entry, 0)
		cr.StartAwake = append(cr.StartAwake, c == 0)
	}
	return cr
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := validRegion(2).Validate(2); err != nil {
		t.Errorf("valid region rejected: %v", err)
	}
}

func TestValidateTableSizes(t *testing.T) {
	cr := validRegion(2)
	cr.Entry = cr.Entry[:1]
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "per-core tables") {
		t.Errorf("mis-sized tables accepted: %v", err)
	}
}

func TestValidateEntryRange(t *testing.T) {
	cr := validRegion(2)
	cr.Entry[0] = 99
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("out-of-range entry accepted: %v", err)
	}
}

func TestValidateSpawnTargets(t *testing.T) {
	cr := validRegion(2)
	cr.Code[0] = append([]isa.Inst{{Op: isa.SPAWN, Core: 1, Imm: 42}}, cr.Code[0]...)
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "unresolved label") {
		t.Errorf("spawn to unknown label accepted: %v", err)
	}
	cr.Code[0][0].Core = 7
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "target core") {
		t.Errorf("spawn to nonexistent core accepted: %v", err)
	}
}

func TestValidateCoupledNeedsAllAwake(t *testing.T) {
	cr := validRegion(2)
	cr.Mode = Coupled
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "awake") {
		t.Errorf("coupled region with sleeping core accepted: %v", err)
	}
}

func TestValidateDOALLNeedsFallback(t *testing.T) {
	cr := validRegion(2)
	cr.Mode = DOALL
	cr.TxCores = 2
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "fallback") {
		t.Errorf("DOALL region without fallback accepted: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	if Coupled.String() != "coupled" || Decoupled.String() != "decoupled" || DOALL.String() != "doall" {
		t.Error("mode names wrong")
	}
	if Coupled.StatsMode() == Decoupled.StatsMode() {
		t.Error("stats modes collapsed")
	}
	if DOALL.StatsMode() != Decoupled.StatsMode() {
		t.Error("DOALL must account as decoupled execution")
	}
}

func TestAwakeEmptyCodeRejected(t *testing.T) {
	cr := validRegion(2)
	cr.Code[0] = nil
	if err := cr.Validate(2); err == nil || !strings.Contains(err.Error(), "empty code") {
		t.Errorf("awake core with empty code accepted: %v", err)
	}
}
