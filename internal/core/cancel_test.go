package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"voltron/internal/isa"
)

// loopProgram builds a single-core counted loop of the given trip count in
// the requested mode — the workhorse for cancellation tests (a huge trip
// count stands in for a long-running simulation).
func loopProgram(mode Mode, trips int64) *CompiledProgram {
	p, out := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0}) // i
	a.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	a.label(1)
	a.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 1})
	a.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(1), Imm: trips})
	a.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(3), Imm: out.Base})
	a.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(3), Src2: isa.GPR(1)})
	a.emit(isa.Inst{Op: isa.HALT})
	return &CompiledProgram{
		Name: "loop", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: mode,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	for _, mode := range []Mode{Coupled, Decoupled} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		// A trip count that would take far too long to simulate: only the
		// cancellation poll can end this run in test time.
		_, err := New(DefaultConfig(1)).RunContext(ctx, loopProgram(mode, 1<<40))
		if err == nil {
			t.Fatalf("%v: canceled run returned no error", mode)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error does not wrap context.Canceled: %v", mode, err)
		}
	}
}

func TestRunContextCanceledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := New(DefaultConfig(1)).RunContext(ctx, loopProgram(Decoupled, 1<<40))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error does not wrap context.Canceled: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not notice cancellation")
	}
}

func TestRunContextUncanceledMatchesRun(t *testing.T) {
	for _, mode := range []Mode{Coupled, Decoupled} {
		cp := loopProgram(mode, 10_000)
		plain, err := New(DefaultConfig(1)).Run(cp)
		if err != nil {
			t.Fatalf("%v: Run: %v", mode, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		withCtx, err := New(DefaultConfig(1)).RunContext(ctx, cp)
		if err != nil {
			t.Fatalf("%v: RunContext: %v", mode, err)
		}
		if plain.TotalCycles != withCtx.TotalCycles {
			t.Errorf("%v: cycles diverge: Run %d, RunContext %d",
				mode, plain.TotalCycles, withCtx.TotalCycles)
		}
	}
}
