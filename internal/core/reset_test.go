package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// compileFor compiles p for one strategy × core count, collecting a profile
// the way the server's suite does.
func compileFor(t *testing.T, p *ir.Program, strat compiler.Strategy, cores int) *core.CompiledProgram {
	t.Helper()
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: strat, Profile: pr})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// assertSameRun requires the pooled rerun to be indistinguishable from the
// fresh-machine run: cycle counts, per-region cycles, per-core stall
// breakdowns, memory-system stats and the final memory image.
func assertSameRun(t *testing.T, name string, fresh, pooled *core.RunResult) {
	t.Helper()
	if !reflect.DeepEqual(fresh, pooled) {
		t.Errorf("%s: pooled run diverges from fresh run\nfresh:  cycles=%d regions=%v mem=%+v\npooled: cycles=%d regions=%v mem=%+v",
			name, fresh.TotalCycles, fresh.RegionCycles, fresh.MemStats,
			pooled.TotalCycles, pooled.RegionCycles, pooled.MemStats)
	}
}

// TestMachineResetMatchesFreshWorkloads is the pooled-vs-fresh differential
// over every built-in workload: one warm machine is reused (Reset, then Run)
// across all of them, and each result must equal a fresh machine's. Running
// different programs back to back is the adversarial case for pooling — any
// cache tag, queue entry, TM set or stat leaking through Reset shows up as
// a diverging result.
func TestMachineResetMatchesFreshWorkloads(t *testing.T) {
	cfg := core.DefaultConfig(4)
	warm := core.New(cfg)
	for _, name := range workload.Names() {
		p, err := workload.Build(name)
		if err != nil {
			t.Fatal(err)
		}
		cp := compileFor(t, p, compiler.Hybrid, 4)
		fresh, err := core.New(cfg).Run(cp)
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		warm.Reset(cfg)
		pooled, err := warm.Run(cp)
		if err != nil {
			t.Fatalf("%s pooled: %v", name, err)
		}
		assertSameRun(t, name, fresh, pooled)
	}
}

// TestMachineResetMatchesFreshRandom fuzzes the differential: 100 random
// programs cycling through all five strategies and two machine widths, each
// run on a per-width warm machine and compared against a fresh one.
func TestMachineResetMatchesFreshRandom(t *testing.T) {
	strategies := []compiler.Strategy{
		compiler.Serial, compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP, compiler.Hybrid,
	}
	warm := map[int]*core.Machine{}
	for seed := 0; seed < 100; seed++ {
		p, err := workload.Random(int64(seed), 1+seed%3)
		if err != nil {
			t.Fatal(err)
		}
		strat := strategies[seed%len(strategies)]
		cores := 2 + 2*(seed/len(strategies)%2) // 2 or 4, interleaved per pool
		name := fmt.Sprintf("seed%d/%v/%dcores", seed, strat, cores)
		cp := compileFor(t, p, strat, cores)
		cfg := core.DefaultConfig(cores)
		fresh, err := core.New(cfg).Run(cp)
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		m := warm[cores]
		if m == nil {
			m = core.New(cfg)
			warm[cores] = m
		}
		m.Reset(cfg)
		pooled, err := m.Run(cp)
		if err != nil {
			t.Fatalf("%s pooled: %v", name, err)
		}
		assertSameRun(t, name, fresh, pooled)
	}
}

// TestMachineResetShapeChange: a Reset to a different machine shape must
// rebuild (a 4-core memory system cannot serve a 2-core program), behaving
// exactly like New.
func TestMachineResetShapeChange(t *testing.T) {
	p, err := workload.Build("gsmdecode")
	if err != nil {
		t.Fatal(err)
	}
	cp4 := compileFor(t, p, compiler.Hybrid, 4)
	cp2 := compileFor(t, p, compiler.Hybrid, 2)
	m := core.New(core.DefaultConfig(4))
	if _, err := m.Run(cp4); err != nil {
		t.Fatal(err)
	}
	m.Reset(core.DefaultConfig(2))
	pooled, err := m.Run(cp2)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.New(core.DefaultConfig(2)).Run(cp2)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, "4-to-2-cores", fresh, pooled)
}
