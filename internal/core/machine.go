package core

import (
	"context"
	"fmt"
	"io"
	"math"

	"voltron/internal/isa"
	"voltron/internal/mem"
	"voltron/internal/stats"
	"voltron/internal/trace"
	"voltron/internal/xnet"
)

// Config parameterizes a Voltron machine.
type Config struct {
	Cores int
	Mem   mem.Config
	// RegionSyncLat is the barrier overhead between regions (the paper's
	// call/return synchronization point).
	RegionSyncLat int64
	// ModeSwitchLat is the extra cost of MODE_SWITCH between regions of
	// different modes.
	ModeSwitchLat int64
	// Watchdog aborts a run when no core makes progress for this many
	// cycles (a deadlock means compiler-inserted communication is wrong).
	// It is only consulted by the reference stepper: the event-driven core
	// detects a deadlock exactly, as "no core issued and no wake event is
	// scheduled", independent of this bound.
	Watchdog int64
	// QueueBaseLat/QueueHopLat override the queue-mode network latency
	// when nonzero (used by the latency-sensitivity ablation).
	QueueBaseLat int64
	QueueHopLat  int64
	// QueueCap overrides the per-(sender,receiver) queue capacity when
	// nonzero (-1 = unbounded).
	QueueCap int
	// MeshCols overrides the mesh column count when nonzero (the mesh-shape
	// ablation knob): cores are arranged over MeshCols columns instead of
	// the near-square default, with ghost positions padding the last row.
	// Values below 4 break the coupled compiler's row-group adjacency, so
	// the request surface only admits 0 or [4, cores].
	MeshCols int
	// Trace, when non-nil, receives the legacy text trace — one line per
	// issued instruction and per region transition. It is rendered from the
	// structured event stream (trace.Tracer.WriteText) when the run
	// completes or fails; the simulator no longer formats text on its hot
	// path.
	Trace io.Writer
	// Tracer, when non-nil, collects the structured timeline of the run:
	// per-core stall spans, operand- and queue-network events, spawn/sleep
	// transitions, cache-miss fills, transactions and region boundaries.
	// Render with its WriteChrome/WriteText/Report methods. Nil tracing
	// costs a single nil check at each emit site; the event loop stays
	// allocation-free either way (enforced by TestEventLoopZeroAllocs).
	Tracer *trace.Tracer
	// Reference selects the retained naive stepper: the simulator advances
	// one cycle at a time instead of jumping to the next wake event. Cycle
	// counts and stats are identical either way (the cycle-exactness tests
	// assert it); the reference stepper exists as that test's oracle and
	// as a debugging fallback.
	Reference bool
	// NoStats skips the per-cycle stall/occupancy accounting. Used for
	// throwaway runs whose caller only reads cycle counts (measured
	// strategy selection); RunResult cycle fields stay exact.
	NoStats bool
}

// DefaultConfig returns the paper's machine parameters for n cores.
func DefaultConfig(n int) Config {
	return Config{
		Cores:         n,
		Mem:           mem.DefaultConfig(n),
		RegionSyncLat: 4,
		ModeSwitchLat: 2,
		Watchdog:      1_000_000,
	}
}

// RunResult is the outcome of simulating a compiled program.
type RunResult struct {
	*stats.Run
	Mem      *mem.Flat
	MemStats mem.Stats
	// RegionCycles is the wall-clock cycles spent in each region.
	RegionCycles []int64
}

// Machine simulates a Voltron system. A Machine may be reused for any
// number of Run calls (reuse amortizes per-core scratch state, the memory
// hierarchy's tag arrays, the network queues and the TM sets across runs),
// but it must not be shared by concurrent goroutines — create one Machine
// per goroutine, or hand machines out exclusively from a pool.
type Machine struct {
	cfg Config
	top xnet.Topology
	// scratch holds per-core runtime state reused across regions and runs
	// to cut allocation churn on the measured-selection hot path.
	scratch []*coreState
	// sys/direct/queue are the simulation components, allocated on the
	// first run and reset — not rebuilt — on every later one; rs is the
	// embedded run state reused the same way. Per-run outputs (RunResult,
	// stats.Run, the Flat image) are still allocated fresh each run: they
	// outlive the machine's next run by contract.
	sys    *mem.System
	direct *xnet.DirectNet
	queue  *xnet.QueueNet
	rs     runState
	// sched is the decoupled event loop's wake scheduler, reused across
	// regions and runs like the rest of the per-core scratch state.
	sched wakeSched
}

// New creates a machine.
func New(cfg Config) *Machine {
	return &Machine{cfg: cfg, top: topologyOf(cfg)}
}

// topologyOf resolves a config's mesh arrangement: the paper's near-square
// default, or a fixed column count when the mesh-shape knob is set.
func topologyOf(cfg Config) xnet.Topology {
	if cfg.MeshCols > 0 {
		return xnet.TopologyCols(cfg.Cores, cfg.MeshCols)
	}
	return xnet.TopologyFor(cfg.Cores)
}

// Reset reconfigures the machine to cfg, reinstating exactly New(cfg)'s
// invariants. When the machine shape is unchanged (same core count and
// memory geometry) the allocated per-core scratch, cache tag arrays,
// network queues and TM read/write sets are kept and re-zeroed at the next
// run; otherwise the machine is rebuilt as New would build it. Either way
// the next Run is byte-identical to a fresh machine's (the pooled-vs-fresh
// differential tests assert it).
func (m *Machine) Reset(cfg Config) {
	if cfg.Cores != m.cfg.Cores || cfg.Mem != m.cfg.Mem || cfg.MeshCols != m.cfg.MeshCols {
		*m = Machine{cfg: cfg, top: topologyOf(cfg)}
		return
	}
	m.cfg = cfg
}

// coreState is one core's runtime state.
type coreState struct {
	id         int
	pc         int
	awake      bool
	done       bool
	txwait     bool
	txactive   bool
	stallUntil int64
	stallKind  stats.Kind
	fetchUntil int64
	// chargedUntil is the first cycle this core has not yet been charged
	// for. The event-scheduled loop accounts blocked cores lazily: a core
	// skipped over [chargedUntil, now) settles the window in one catchUpTo
	// call when it is next evaluated.
	chargedUntil int64
	regs         [4][]uint64
	ready        [4][]int64
	issuedBranch bool // this cycle (coupled-mode consistency check)
	branchTaken  bool
	halted       bool // issued HALT this cycle (coupled)
}

func classIdx(c isa.RegClass) int { return int(c) - 1 }

func (cs *coreState) ensure(r isa.Reg) {
	ci := classIdx(r.Class)
	for len(cs.regs[ci]) <= r.Index {
		cs.regs[ci] = append(cs.regs[ci], 0)
		cs.ready[ci] = append(cs.ready[ci], 0)
	}
}

func (cs *coreState) get(r isa.Reg) uint64 {
	cs.ensure(r)
	return cs.regs[classIdx(r.Class)][r.Index]
}

func (cs *coreState) set(r isa.Reg, v uint64, readyAt int64) {
	cs.ensure(r)
	cs.regs[classIdx(r.Class)][r.Index] = v
	cs.ready[classIdx(r.Class)][r.Index] = readyAt
}

func (cs *coreState) setPred(r isa.Reg, v bool, readyAt int64) {
	var u uint64
	if v {
		u = 1
	}
	cs.set(r, u, readyAt)
}

func (cs *coreState) readyAt(r isa.Reg) int64 {
	cs.ensure(r)
	return cs.ready[classIdx(r.Class)][r.Index]
}

// reset reinitializes a recycled coreState for a new region, keeping the
// register-file backing arrays (truncated to zero length, so ensure()
// repopulates them with zeros exactly as a fresh coreState would).
func (cs *coreState) reset(id int, awake bool) {
	regs, ready := cs.regs, cs.ready
	for i := range regs {
		regs[i] = regs[i][:0]
		ready[i] = ready[i][:0]
	}
	*cs = coreState{id: id, awake: awake}
	cs.regs, cs.ready = regs, ready
}

// neverWakes marks a core with no scheduled wake event: only another core's
// progress can unblock it.
const neverWakes = int64(math.MaxInt64)

// runState holds the machinery of one simulation.
type runState struct {
	m      *Machine
	cp     *CompiledProgram
	sys    *mem.System
	direct *xnet.DirectNet
	queue  *xnet.QueueNet
	run    *stats.Run
	cores  []*coreState
	now    int64
	// statsOn gates the per-cycle stall accounting (cleared by
	// Config.NoStats); tr is the structured event collector (nil = tracing
	// off, one branch per emit site); ref selects the naive per-cycle
	// stepper.
	statsOn bool
	tr      *trace.Tracer
	ref     bool
	// sched points at the machine's wake scheduler while the event-driven
	// decoupled loop runs a region; nil otherwise. The notify hooks and
	// counter updates inside the shared step/exec code key off it with a
	// single pointer check, the same discipline as the nil tracer.
	sched *wakeSched
	// current region context
	cr       *CompiledRegion
	regionID int
	lastProg int64
	// ctx is the run's cancellation context (nil when the caller's context
	// can never be canceled, so the hot loops skip the poll entirely);
	// pollCtr rate-limits the ctx.Err() poll to one per 4096 loop passes.
	ctx     context.Context
	pollCtr uint32
}

// checkCancel polls the run's context at most once every 4096 calls, so the
// simulation loops stay cancelable without a per-cycle atomic load. A
// canceled run aborts with an error wrapping ctx.Err() (errors.Is with
// context.Canceled / DeadlineExceeded works on it).
func (rs *runState) checkCancel() error {
	if rs.ctx == nil {
		return nil
	}
	if rs.pollCtr++; rs.pollCtr&4095 != 0 {
		return nil
	}
	if err := rs.ctx.Err(); err != nil {
		return fmt.Errorf("simulation canceled at cycle %d: %w", rs.now, err)
	}
	return nil
}

// Run simulates the compiled program to completion.
func (m *Machine) Run(cp *CompiledProgram) (*RunResult, error) {
	return m.RunContext(context.Background(), cp)
}

// RunContext simulates the compiled program to completion, aborting early
// (with an error wrapping ctx.Err()) once ctx is canceled. Cancellation is
// polled from the simulation loops, so a long-running simulation notices a
// canceled context within a bounded number of loop passes.
func (m *Machine) RunContext(ctx context.Context, cp *CompiledProgram) (*RunResult, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if cp.Cores != m.cfg.Cores {
		return nil, fmt.Errorf("program compiled for %d cores, machine has %d", cp.Cores, m.cfg.Cores)
	}
	flat := cp.NewMemory()
	if m.sys == nil {
		m.sys = mem.NewSystem(m.cfg.Mem, flat)
		m.direct = xnet.NewDirectNet(m.top)
		m.queue = xnet.NewQueueNet(m.top)
	} else {
		// Warm machine: reinstate the components' initial state in place
		// instead of rebuilding them — the whole point of pooling.
		m.sys.Reset(flat)
		m.direct.Reset()
		m.queue.Reset()
	}
	rs := &m.rs
	cores := rs.cores[:0]
	*rs = runState{
		m:       m,
		cp:      cp,
		sys:     m.sys,
		direct:  m.direct,
		queue:   m.queue,
		run:     stats.NewRun(m.cfg.Cores),
		cores:   cores,
		statsOn: !m.cfg.NoStats,
		tr:      m.cfg.Tracer,
		ref:     m.cfg.Reference,
	}
	// Drop run-scoped references on the way out so an idle pooled machine
	// pins neither the compiled program nor the request's context/tracer.
	defer func() { rs.ctx, rs.cp, rs.cr, rs.tr = nil, nil, nil, nil }()
	if rs.tr == nil && m.cfg.Trace != nil {
		// A text-only trace still flows through the structured stream: the
		// machine collects events and renders them below.
		rs.tr = trace.New()
	}
	if m.cfg.Trace != nil {
		// Render on the way out so the text trace survives aborted runs
		// (deadlocks, schedule violations) exactly as the streamed legacy
		// trace did.
		defer rs.tr.WriteText(m.cfg.Trace)
	}
	rs.sys.Tracer = rs.tr
	if ctx.Done() != nil {
		rs.ctx = ctx
	}
	if m.cfg.QueueBaseLat > 0 {
		rs.queue.BaseLat = m.cfg.QueueBaseLat
	}
	if m.cfg.QueueHopLat > 0 {
		rs.queue.HopLat = m.cfg.QueueHopLat
	}
	if m.cfg.QueueCap != 0 {
		rs.queue.Cap = m.cfg.QueueCap
	}
	res := &RunResult{Run: rs.run, Mem: flat, RegionCycles: make([]int64, 0, len(cp.Regions))}
	prevMode := Mode(-1)
	for i, cr := range cp.Regions {
		if rs.tr != nil {
			rs.tr.RegionBegin(rs.now, cr.Name, cr.Mode.String(), m.cfg.Cores)
		}
		start := rs.now
		// Region barrier (+ mode switch when the mode changes).
		overhead := m.cfg.RegionSyncLat
		if prevMode >= 0 && prevMode.StatsMode() != cr.Mode.StatsMode() {
			overhead += m.cfg.ModeSwitchLat
		}
		rs.chargeAll(stats.SyncCallRet, overhead)
		rs.now += overhead
		if err := rs.runRegion(i, cr); err != nil {
			return nil, fmt.Errorf("region %q: %w", cr.Name, err)
		}
		if rs.tr != nil {
			rs.tr.RegionEnd(rs.now)
		}
		cycles := rs.now - start
		res.RegionCycles = append(res.RegionCycles, cycles)
		rs.run.ModeCycles[cr.Mode.StatsMode()] += cycles
		prevMode = cr.Mode
	}
	rs.run.TotalCycles = rs.now
	rs.run.TMConflicts = rs.sys.TM.Conflicts()
	res.MemStats = rs.sys.St
	return res, nil
}

func (rs *runState) chargeAll(k stats.Kind, n int64) {
	if rs.statsOn {
		for i := range rs.run.Cores {
			rs.run.Cores[i].Add(k, n)
		}
	}
	if rs.tr != nil {
		for i := range rs.run.Cores {
			rs.tr.Charge(rs.now, i, k, n)
		}
	}
}

func (rs *runState) charge(core int, k stats.Kind) {
	if rs.statsOn {
		rs.run.Cores[core].Add(k, 1)
	}
	if rs.tr != nil {
		rs.tr.Charge(rs.now, core, k, 1)
	}
}

// chargeSpan charges the half-open cycle window [from, to) of kind k — the
// event-driven loops use it to account a whole skipped stall window in one
// step. The tracer receives the same window, so stall attribution and the
// stats package always agree (they are charged at the same sites).
func (rs *runState) chargeSpan(core int, k stats.Kind, from, to int64) {
	if to <= from {
		return
	}
	if rs.statsOn {
		rs.run.Cores[core].Add(k, to-from)
	}
	if rs.tr != nil {
		rs.tr.Charge(from, core, k, to-from)
	}
}

// instAddr gives the I-cache address of an instruction: each core's stream
// for each region lives in its own memory space.
func (rs *runState) instAddr(core, idx int) int64 {
	return int64(rs.regionID)<<24 | int64(core)<<20 | int64(idx)*isa.InstBytes
}

// setPC moves a core to an instruction index and starts the fetch.
func (rs *runState) setPC(cs *coreState, idx int) {
	cs.pc = idx
	done := rs.sys.Fetch(cs.id, rs.instAddr(cs.id, idx), rs.now+1)
	// Overlap the hit latency with execution: only the miss portion stalls.
	cs.fetchUntil = done - rs.sys.Cfg.L1I.HitLat
}

func (rs *runState) runRegion(id int, cr *CompiledRegion) error {
	cr.resolve()
	rs.cr = cr
	rs.regionID = id
	rs.cores = rs.cores[:0]
	for c := 0; c < rs.m.cfg.Cores; c++ {
		if c == len(rs.m.scratch) {
			rs.m.scratch = append(rs.m.scratch, &coreState{})
		}
		cs := rs.m.scratch[c]
		cs.reset(c, cr.StartAwake[c])
		rs.cores = append(rs.cores, cs)
		if cs.awake {
			rs.setPC(cs, cr.Entry[c])
		}
	}
	rs.lastProg = rs.now
	if cr.Mode == Coupled {
		return rs.runCoupled()
	}
	return rs.runDecoupled()
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------- coupled (lock-step) execution ----------

func (rs *runState) runCoupled() error {
	cr := rs.cr
	for {
		if err := rs.checkCancel(); err != nil {
			return err
		}
		// Lock-step issue: every core must be able to issue this cycle;
		// otherwise the stall bus stalls them all. Blocked cores release
		// at fixed times (memory doneAt, fetch completion), so the next
		// issue cycle is the latest per-core release. The event-driven
		// core jumps the clock straight there; the reference stepper
		// advances a single cycle. Either way the skipped window is
		// charged exactly as the per-cycle loop would charge it: the
		// stall kind while the core's own stall lasts, I-stall while its
		// fetch lasts, lock-step stall once only peers keep it waiting.
		wake := rs.now
		for _, cs := range rs.cores {
			w := max(cs.stallUntil, cs.fetchUntil)
			if w > wake {
				wake = w
			}
		}
		if wake > rs.now {
			to := wake
			if rs.ref {
				to = rs.now + 1
			}
			for _, cs := range rs.cores {
				s := clamp(cs.stallUntil, rs.now, to)
				f := clamp(cs.fetchUntil, s, to)
				rs.chargeSpan(cs.id, cs.stallKind, rs.now, s)
				rs.chargeSpan(cs.id, stats.IStall, s, f)
				rs.chargeSpan(cs.id, stats.Lockstep, f, to)
			}
			if rs.tr != nil && to == wake {
				// The stall bus releases every core at wake. Under the
				// reference stepper the recorded window is the final
				// single-cycle step; the release cycle is identical.
				rs.tr.StallRelease(wake, wake-rs.now)
			}
			rs.now = to
			if rs.ref {
				if err := rs.watchdog(); err != nil {
					return err
				}
			}
			continue
		}
		// All issue together. Phase A: drive the direct-mode wires.
		rs.direct.BeginCycle(rs.now)
		for _, cs := range rs.cores {
			in := &cr.Code[cs.id][cs.pc]
			switch in.Op {
			case isa.PUT:
				if err := rs.checkOperands(cs, in); err != nil {
					return err
				}
				if err := rs.direct.Put(cs.id, in.Dir, cs.get(in.Src1)); err != nil {
					return err
				}
				if rs.tr != nil {
					rs.tr.Put(rs.now, cs.id, in.Dir)
				}
			case isa.BCAST:
				if err := rs.checkOperands(cs, in); err != nil {
					return err
				}
				if err := rs.direct.Broadcast(cs.id, cs.get(in.Src1)); err != nil {
					return err
				}
				if rs.tr != nil {
					rs.tr.Bcast(rs.now, cs.id)
				}
			}
		}
		// Phase B: everything else.
		halts, branches := 0, 0
		for _, cs := range rs.cores {
			in := &cr.Code[cs.id][cs.pc]
			cs.issuedBranch, cs.halted = false, false
			if in.Op == isa.PUT || in.Op == isa.BCAST {
				rs.charge(cs.id, stats.Busy)
				continue
			}
			if err := rs.execInst(cs, in, true); err != nil {
				return err
			}
			if rs.tr != nil {
				rs.tr.Issue(rs.now, cs.id, cs.pc, in)
			}
			rs.charge(cs.id, stats.Busy)
			if cs.issuedBranch {
				branches++
			}
			if cs.halted {
				halts++
			}
		}
		rs.lastProg = rs.now
		// Branch/halt consistency: the compiler schedules them in the same
		// cycle on every core.
		if halts > 0 && halts != len(rs.cores) {
			return fmt.Errorf("cycle %d: %d/%d cores halted (schedule skew)", rs.now, halts, len(rs.cores))
		}
		if branches > 0 && branches != len(rs.cores) {
			return fmt.Errorf("cycle %d: %d/%d cores branched (schedule skew)", rs.now, branches, len(rs.cores))
		}
		if branches > 0 {
			taken := rs.cores[0].branchTaken
			for _, cs := range rs.cores {
				if cs.branchTaken != taken {
					return fmt.Errorf("cycle %d: branch decision diverged between cores", rs.now)
				}
			}
		}
		// Advance PCs.
		for _, cs := range rs.cores {
			in := &cr.Code[cs.id][cs.pc]
			switch {
			case cs.halted:
				// region ends below
			case cs.issuedBranch && cs.branchTaken:
				idx, ok := cr.lookupLabel(cs.id, int64(cs.get(in.Src1)))
				if !ok {
					return fmt.Errorf("core %d: branch to unknown block %d", cs.id, cs.get(in.Src1))
				}
				rs.setPC(cs, idx)
			default:
				rs.setPC(cs, cs.pc+1)
			}
		}
		rs.now++
		if halts > 0 {
			return nil
		}
		if rs.ref {
			if err := rs.watchdog(); err != nil {
				return err
			}
		}
	}
}

// ---------- decoupled (fine-grain thread) execution ----------

func (rs *runState) runDecoupled() error {
	if rs.ref {
		return rs.runDecoupledRef()
	}
	return rs.runDecoupledEvent()
}

// runDecoupledRef is the naive per-cycle decoupled stepper: every core is
// evaluated on every cycle. It is the cycle-exactness oracle the
// event-scheduled loop is diffed against, and costs O(width) per cycle no
// matter how many cores are actually doing anything.
func (rs *runState) runDecoupledRef() error {
	cr := rs.cr
	for {
		if err := rs.checkCancel(); err != nil {
			return err
		}
		allQuiet := true
		for _, cs := range rs.cores {
			if _, _, err := rs.stepDecoupled(cs); err != nil {
				return err
			}
			if !cs.done && cs.awake {
				allQuiet = false
			}
		}
		// Transactional commit barrier.
		if cr.TxCores > 0 {
			if rs.sys.TM.AnyAborted() {
				return rs.runFallback()
			}
			waiting := 0
			for _, cs := range rs.cores {
				if cs.txwait {
					waiting++
				}
			}
			if waiting == cr.TxCores && waiting > 0 {
				for _, cs := range rs.cores {
					if cs.txwait {
						if !rs.sys.TM.Commit(cs.id) {
							return rs.runFallback()
						}
						if rs.tr != nil {
							rs.tr.TxCommit(rs.now, cs.id)
						}
						cs.txwait, cs.txactive = false, false
					}
				}
			}
		}
		rs.now++
		if allQuiet && !rs.queue.PendingAny() {
			return nil
		}
		if err := rs.watchdog(); err != nil {
			return err
		}
	}
}

// stepDecoupled advances one core by one cycle in decoupled mode. It
// reports whether the core changed machine state (issued, woke, received,
// committed a PC move) and, when it did not, the earliest future cycle at
// which it could — neverWakes when only another core's progress can
// unblock it (full send queue, transaction barrier, done).
func (rs *runState) stepDecoupled(cs *coreState) (acted bool, wake int64, err error) {
	cr := rs.cr
	switch {
	case cs.done:
		rs.charge(cs.id, stats.SyncCallRet)
		return false, neverWakes, nil
	case !cs.awake:
		if addr, from, seq, ok := rs.queue.RecvSpawn(cs.id, rs.now); ok {
			idx, lbl := cr.lookupLabel(cs.id, int64(addr))
			if !lbl {
				return false, 0, fmt.Errorf("core %d: spawned at unknown block %d", cs.id, addr)
			}
			cs.awake = true
			if rs.sched != nil {
				rs.sched.live++
				// The pop freed a slot in the (from, to) pair (spawn messages
				// count against pair capacity), so a back-pressured sender can
				// retry.
				rs.notifyPop(from, cs.id)
			}
			rs.setPC(cs, idx)
			rs.run.Spawns++
			rs.lastProg = rs.now
			if rs.tr != nil {
				rs.tr.Wake(rs.now, cs.id, seq)
			}
			rs.charge(cs.id, stats.SyncCallRet)
			return true, 0, nil
		}
		rs.charge(cs.id, stats.SyncCallRet)
		return false, rs.queue.NextSpawnAt(cs.id), nil
	case cs.txwait:
		rs.charge(cs.id, stats.SyncCallRet)
		return false, neverWakes, nil
	case rs.now < cs.stallUntil:
		rs.charge(cs.id, cs.stallKind)
		return false, max(cs.stallUntil, cs.fetchUntil), nil
	case rs.now < cs.fetchUntil:
		rs.charge(cs.id, stats.IStall)
		return false, cs.fetchUntil, nil
	}
	in := &cr.Code[cs.id][cs.pc]
	// Queue-mode back-pressure: a SEND (or SPAWN/broadcast) to a full
	// receive queue retries until the consumer drains it.
	switch in.Op {
	case isa.SEND, isa.SPAWN:
		if !rs.queue.CanSend(cs.id, in.Core) {
			rs.charge(cs.id, stats.SendStall)
			return false, neverWakes, nil
		}
	case isa.BCAST:
		for c := 0; c < rs.m.cfg.Cores; c++ {
			if c != cs.id && !rs.queue.CanSend(cs.id, c) {
				rs.charge(cs.id, stats.SendStall)
				return false, neverWakes, nil
			}
		}
	}
	// RECV retries until its message arrives: the receive-queue stall.
	if in.Op == isa.RECV {
		v, seq, ok := rs.queue.Recv(cs.id, in.Core, rs.now)
		if !ok {
			if in.Dst.Class == isa.RegPR {
				rs.charge(cs.id, stats.RecvPred)
			} else {
				rs.charge(cs.id, stats.RecvData)
			}
			return false, rs.queue.NextRecvAt(cs.id, in.Core), nil
		}
		cs.set(in.Dst, v, rs.now+1)
		if rs.tr != nil {
			rs.tr.Recv(rs.now, cs.id, in.Core, seq)
		}
		rs.notifyPop(int(in.Core), cs.id)
		rs.charge(cs.id, stats.Busy)
		rs.setPC(cs, cs.pc+1)
		rs.lastProg = rs.now
		return true, 0, nil
	}
	cs.issuedBranch, cs.halted = false, false
	if err := rs.execInst(cs, in, false); err != nil {
		return false, 0, err
	}
	if rs.tr != nil {
		rs.tr.Issue(rs.now, cs.id, cs.pc, in)
	}
	rs.charge(cs.id, stats.Busy)
	rs.lastProg = rs.now
	switch {
	case cs.halted:
		cs.done = true
		if rs.sched != nil {
			rs.sched.live--
		}
	case in.Op == isa.SLEEP:
		cs.awake = false
		if rs.sched != nil {
			rs.sched.live--
		}
		if rs.tr != nil {
			rs.tr.Sleep(rs.now, cs.id)
		}
	case cs.issuedBranch && cs.branchTaken:
		idx, ok := cr.lookupLabel(cs.id, int64(cs.get(in.Src1)))
		if !ok {
			return false, 0, fmt.Errorf("core %d: branch to unknown block %d", cs.id, cs.get(in.Src1))
		}
		rs.setPC(cs, idx)
	default:
		rs.setPC(cs, cs.pc+1)
	}
	return true, 0, nil
}

// skipDecoupled charges one core for the skipped cycles [from, to) exactly
// as the per-cycle loop would have: the core's state cannot change inside
// the window (no core acts before the earliest wake event), only its charge
// kind can switch from the stall source to the fetch source.
func (rs *runState) skipDecoupled(cs *coreState, from, to int64) {
	n := to - from
	if cs.done || !cs.awake || cs.txwait {
		rs.chargeSpan(cs.id, stats.SyncCallRet, from, to)
		return
	}
	if from < cs.stallUntil || from < cs.fetchUntil {
		s := clamp(cs.stallUntil, from, to)
		rs.chargeSpan(cs.id, cs.stallKind, from, s)
		rs.chargeSpan(cs.id, stats.IStall, s, clamp(cs.fetchUntil, s, to))
		return
	}
	in := &rs.cr.Code[cs.id][cs.pc]
	switch in.Op {
	case isa.SEND, isa.SPAWN, isa.BCAST:
		rs.chargeSpan(cs.id, stats.SendStall, from, to)
	case isa.RECV:
		if in.Dst.Class == isa.RegPR {
			rs.chargeSpan(cs.id, stats.RecvPred, from, to)
		} else {
			rs.chargeSpan(cs.id, stats.RecvData, from, to)
		}
		// The per-cycle loop would have polled the receive queue once per
		// skipped cycle; keep the poll counter identical.
		rs.queue.RecvWaits += n
	}
}

// runFallback handles a DOALL dependence violation: abort every transaction,
// roll memory back, and re-execute the loop serially on core 0 from the
// region's fallback stream. The compiler is responsible for register state
// (the fallback re-materializes everything), matching the paper's
// compiler-managed register rollback.
func (rs *runState) runFallback() error {
	if rs.tr != nil {
		for _, cs := range rs.cores {
			if cs.txactive {
				rs.tr.TxAbort(rs.now, cs.id)
			}
		}
	}
	rs.sys.TM.AbortAll(rs.sys.Flat)
	cr := rs.cr
	cs := &coreState{id: 0, awake: true}
	// Distinct address space for the fallback stream.
	saveRegion := rs.regionID
	rs.regionID = saveRegion | 1<<16
	defer func() { rs.regionID = saveRegion }()
	rs.setPC(cs, 0)
	for {
		if err := rs.checkCancel(); err != nil {
			return err
		}
		if rs.now < cs.stallUntil || rs.now < cs.fetchUntil {
			// Stalled: jump to the release point (one cycle at a time for
			// the reference stepper), charging the idled cores' rollback
			// cycles and core 0's stall breakdown for the whole window.
			to := max(cs.stallUntil, cs.fetchUntil)
			if rs.ref {
				to = rs.now + 1
			}
			for i := 1; i < len(rs.cores); i++ {
				rs.chargeSpan(i, stats.TMRollback, rs.now, to)
			}
			s := clamp(cs.stallUntil, rs.now, to)
			rs.chargeSpan(0, cs.stallKind, rs.now, s)
			rs.chargeSpan(0, stats.IStall, s, to)
			rs.now = to
			if rs.ref {
				if err := rs.watchdog(); err != nil {
					return err
				}
			}
			continue
		}
		for i := 1; i < len(rs.cores); i++ {
			rs.charge(i, stats.TMRollback)
		}
		in := &cr.Fallback[cs.pc]
		cs.issuedBranch, cs.halted = false, false
		if err := rs.execInst(cs, in, false); err != nil {
			return err
		}
		rs.charge(0, stats.Busy)
		rs.lastProg = rs.now
		switch {
		case cs.halted:
			rs.now++
			return nil
		case cs.issuedBranch && cs.branchTaken:
			idx, ok := cr.lookupFallbackLabel(int64(cs.get(in.Src1)))
			if !ok {
				return fmt.Errorf("fallback: branch to unknown block %d", cs.get(in.Src1))
			}
			rs.setPC(cs, idx)
		default:
			rs.setPC(cs, cs.pc+1)
		}
		rs.now++
		if rs.ref {
			if err := rs.watchdog(); err != nil {
				return err
			}
		}
	}
}

// ---------- shared instruction semantics ----------

// checkOperands enforces the static-schedule contract: every source
// register must be ready when an instruction issues. A violation is a
// compiler bug, reported as a simulation error. The checks are unrolled
// over Src1/Src2 so the hot path never materializes an operand slice.
func (rs *runState) checkOperands(cs *coreState, in *isa.Inst) error {
	if in.Src1.Valid() {
		if rdy := cs.readyAt(in.Src1); rdy > rs.now {
			return rs.scheduleViolation(cs, in, in.Src1, rdy)
		}
	}
	if in.Src2.Valid() {
		if rdy := cs.readyAt(in.Src2); rdy > rs.now {
			return rs.scheduleViolation(cs, in, in.Src2, rdy)
		}
	}
	return nil
}

func (rs *runState) scheduleViolation(cs *coreState, in *isa.Inst, r isa.Reg, rdy int64) error {
	return fmt.Errorf("cycle %d core %d: %v reads %v ready at %d (schedule violation)",
		rs.now, cs.id, in, r, rdy)
}

// execInst executes one instruction's semantics at the current cycle.
// Coupled-only operations (GET) and decoupled-only ones (SEND/RECV/SPAWN)
// are enforced by mode. The body is written without closures or slice
// construction: it runs once per issued instruction and must not allocate.
func (rs *runState) execInst(cs *coreState, in *isa.Inst, coupled bool) error {
	if err := rs.checkOperands(cs, in); err != nil {
		return err
	}
	switch in.Op {
	case isa.NOP, isa.MODESWITCH:
	case isa.MOVI:
		cs.set(in.Dst, uint64(in.Imm), rs.now+int64(in.Op.Latency()))
	case isa.MOV:
		cs.set(in.Dst, cs.get(in.Src1), rs.now+int64(in.Op.Latency()))
	case isa.FMOVI:
		cs.set(in.Dst, math.Float64bits(in.F), rs.now+int64(in.Op.Latency()))
	case isa.FMOV:
		cs.set(in.Dst, cs.get(in.Src1), rs.now+int64(in.Op.Latency()))
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR:
		a := int64(cs.get(in.Src1))
		b := in.Imm
		if in.Src2.Valid() {
			b = int64(cs.get(in.Src2))
		}
		var v int64
		switch in.Op {
		case isa.ADD:
			v = a + b
		case isa.SUB:
			v = a - b
		case isa.MUL:
			v = a * b
		case isa.DIV:
			if b != 0 {
				v = a / b
			}
		case isa.REM:
			if b != 0 {
				v = a % b
			}
		case isa.AND:
			v = a & b
		case isa.OR:
			v = a | b
		case isa.XOR:
			v = a ^ b
		case isa.SHL:
			v = a << (uint64(b) & 63)
		case isa.SHR:
			v = a >> (uint64(b) & 63)
		}
		cs.set(in.Dst, uint64(v), rs.now+int64(in.Op.Latency()))
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		a := math.Float64frombits(cs.get(in.Src1))
		b := math.Float64frombits(cs.get(in.Src2))
		var v float64
		switch in.Op {
		case isa.FADD:
			v = a + b
		case isa.FSUB:
			v = a - b
		case isa.FMUL:
			v = a * b
		case isa.FDIV:
			v = a / b
		}
		cs.set(in.Dst, math.Float64bits(v), rs.now+int64(in.Op.Latency()))
	case isa.ITOF:
		cs.set(in.Dst, math.Float64bits(float64(int64(cs.get(in.Src1)))), rs.now+int64(in.Op.Latency()))
	case isa.FTOI:
		cs.set(in.Dst, uint64(int64(math.Float64frombits(cs.get(in.Src1)))), rs.now+int64(in.Op.Latency()))
	case isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE:
		a := int64(cs.get(in.Src1))
		b := in.Imm
		if in.Src2.Valid() {
			b = int64(cs.get(in.Src2))
		}
		var v bool
		switch in.Op {
		case isa.CMPEQ:
			v = a == b
		case isa.CMPNE:
			v = a != b
		case isa.CMPLT:
			v = a < b
		case isa.CMPLE:
			v = a <= b
		case isa.CMPGT:
			v = a > b
		case isa.CMPGE:
			v = a >= b
		}
		cs.setPred(in.Dst, v, rs.now+1)
	case isa.FCMPLT:
		cs.setPred(in.Dst, math.Float64frombits(cs.get(in.Src1)) < math.Float64frombits(cs.get(in.Src2)), rs.now+1)
	case isa.PAND:
		cs.setPred(in.Dst, cs.get(in.Src1) != 0 && cs.get(in.Src2) != 0, rs.now+1)
	case isa.POR:
		cs.setPred(in.Dst, cs.get(in.Src1) != 0 || cs.get(in.Src2) != 0, rs.now+1)
	case isa.PNOT:
		cs.setPred(in.Dst, cs.get(in.Src1) == 0, rs.now+1)
	case isa.LOAD, isa.FLOAD:
		addr := int64(cs.get(in.Src1)) + in.Imm
		v, done := rs.sys.Read(cs.id, addr, rs.now)
		cs.set(in.Dst, v, done)
		// Blocking cache: the miss portion stalls the core; the hit
		// latency is covered by the schedule.
		hit := rs.sys.Cfg.L1D.HitLat
		if done > rs.now+hit {
			cs.stallUntil = done - hit + 1
			cs.stallKind = stats.DStall
		}
	case isa.STORE, isa.FSTORE:
		// Stores retire through a store buffer: the write updates cache
		// state and occupies the bus, but the core does not stall on the
		// miss/upgrade latency.
		addr := int64(cs.get(in.Src1)) + in.Imm
		rs.sys.Write(cs.id, addr, rs.now, cs.get(in.Src2))
	case isa.PBR:
		cs.set(in.Dst, uint64(in.Imm), rs.now+1)
	case isa.BR:
		cs.issuedBranch = true
		cs.branchTaken = true
		if in.Src2.Valid() {
			cs.branchTaken = cs.get(in.Src2) != 0
		}
	case isa.HALT:
		cs.halted = true
	case isa.GETOP:
		if !coupled {
			return fmt.Errorf("core %d: GET in decoupled mode", cs.id)
		}
		v, err := rs.direct.Get(cs.id, in.Dir)
		if err != nil {
			return err
		}
		if rs.tr != nil {
			rs.tr.Get(rs.now, cs.id, in.Dir)
		}
		cs.set(in.Dst, v, rs.now+1)
	case isa.PUT:
		// Handled in phase A of the coupled loop; reaching here means a
		// PUT leaked into decoupled code.
		return fmt.Errorf("core %d: PUT in decoupled mode", cs.id)
	case isa.SEND:
		if coupled {
			return fmt.Errorf("core %d: SEND in coupled mode", cs.id)
		}
		seq, arrive := rs.queue.Send(cs.id, in.Core, cs.get(in.Src1), rs.now)
		if rs.tr != nil {
			rs.tr.Send(rs.now, cs.id, int(in.Core), seq, arrive)
		}
		rs.notifyArrive(int(in.Core), arrive)
	case isa.BCAST:
		if coupled {
			return nil // phase A already drove the wires
		}
		// Decoupled broadcast is lowered to SENDs by the compiler; a BCAST
		// here sends to every other core.
		for c := 0; c < rs.m.cfg.Cores; c++ {
			if c != cs.id {
				seq, arrive := rs.queue.Send(cs.id, c, cs.get(in.Src1), rs.now)
				if rs.tr != nil {
					rs.tr.Send(rs.now, cs.id, c, seq, arrive)
				}
				rs.notifyArrive(c, arrive)
			}
		}
	case isa.SPAWN:
		if coupled {
			return fmt.Errorf("core %d: SPAWN in coupled mode", cs.id)
		}
		seq, arrive := rs.queue.SendSpawn(cs.id, in.Core, uint64(in.Imm), rs.now)
		if rs.tr != nil {
			rs.tr.Spawn(rs.now, cs.id, int(in.Core), seq, arrive)
		}
		rs.notifyArrive(int(in.Core), arrive)
	case isa.SLEEP:
		if coupled {
			return fmt.Errorf("core %d: SLEEP in coupled mode", cs.id)
		}
		// State change handled by the caller.
	case isa.TXBEGIN:
		rs.sys.TM.Begin(cs.id, int(in.Imm))
		cs.txactive = true
		if rs.tr != nil {
			rs.tr.TxBegin(rs.now, cs.id, int64(in.Imm))
		}
	case isa.TXCOMMIT:
		if !cs.txactive {
			return fmt.Errorf("core %d: TXCOMMIT without TXBEGIN", cs.id)
		}
		cs.txwait = true
		if rs.sched != nil {
			rs.sched.txWait++
		}
	case isa.TXABORT:
		return fmt.Errorf("core %d: explicit TXABORT is not emitted by the compiler", cs.id)
	default:
		return fmt.Errorf("core %d: cannot execute %v", cs.id, in)
	}
	return nil
}

// watchdog is the reference stepper's progress bound: abort when no core
// made progress for Config.Watchdog consecutive cycles.
func (rs *runState) watchdog() error {
	if rs.now-rs.lastProg > rs.m.cfg.Watchdog {
		return fmt.Errorf("deadlock: no progress since cycle %d (now %d):%s", rs.lastProg, rs.now, rs.coreDump())
	}
	return nil
}

// deadlock is the event-driven watchdog: the decoupled loop proved that no
// core issued this cycle and no wake event is scheduled, so the machine
// state can never change again. Unlike the cycle-counting watchdog this
// trips exactly at the freeze point and can neither be masked nor falsely
// triggered by cycle skipping.
func (rs *runState) deadlock() error {
	return fmt.Errorf("deadlock: no core can issue and no wake event is scheduled (frozen at cycle %d, last progress %d):%s",
		rs.now, rs.lastProg, rs.coreDump())
}

func (rs *runState) coreDump() string {
	var dump string
	for _, cs := range rs.cores {
		dump += fmt.Sprintf(" core%d{pc=%d awake=%v done=%v txwait=%v}",
			cs.id, cs.pc, cs.awake, cs.done, cs.txwait)
	}
	return dump
}
