// Package core implements the Voltron machine: single-issue VLIW cores on a
// mesh, executing compiled per-core instruction streams in coupled
// (lock-step, direct-mode network, stall bus) or decoupled (fine-grain
// threads, queue-mode network, SPAWN/SLEEP) mode, over the coherent memory
// hierarchy of package mem, with full cycle accounting (package stats).
package core

import (
	"fmt"
	"sync"

	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/mem"
	"voltron/internal/stats"
)

// Mode is a region's execution mode.
type Mode int

// Execution modes. DOALL is decoupled execution with transactional chunk
// framing and a serial fallback on violation.
const (
	Coupled Mode = iota
	Decoupled
	DOALL
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Coupled:
		return "coupled"
	case Decoupled:
		return "decoupled"
	case DOALL:
		return "doall"
	}
	return "mode?"
}

// StatsMode maps the execution mode to the two-way occupancy accounting of
// the paper's Figure 14 (DOALL runs decoupled).
func (m Mode) StatsMode() stats.Mode {
	if m == Coupled {
		return stats.ModeCoupled
	}
	return stats.ModeDecoupled
}

// CompiledRegion is the per-core machine code for one region.
type CompiledRegion struct {
	Name string
	Mode Mode
	// Code is each core's instruction stream.
	Code [][]isa.Inst
	// Labels maps logical block ids to instruction indices, per core. PBR
	// and SPAWN name logical blocks; cores resolve them in their own
	// stream ("same logical target, different physical block").
	Labels []map[int64]int
	// Entry is the start index per core (conventionally 0).
	Entry []int
	// StartAwake marks cores that begin executing at Entry. In coupled
	// mode all cores must start awake; in decoupled mode typically only
	// the master (core 0) does, and it SPAWNs the others.
	StartAwake []bool
	// TxCores is the number of cores that execute a transaction in a DOALL
	// region (the commit barrier width). Zero for non-DOALL regions.
	TxCores int
	// Fallback is the serial single-core code re-executed from rolled-back
	// memory state when a DOALL region detects a dependence violation.
	Fallback []isa.Inst
	// FallbackLabels resolves logical blocks in the fallback stream.
	FallbackLabels map[int64]int

	// Dense branch-target tables derived from Labels/FallbackLabels the
	// first time the region runs (branches resolve targets by indexing
	// instead of a map lookup on the simulator's hot path). Guarded by a
	// Once so concurrent Machines may share one region.
	resolveOnce sync.Once
	btabs       [][]int32
	fbtab       []int32
}

// maxDenseLabel bounds the dense table size; a region with out-of-range
// block ids keeps the map lookups (correct, just slower).
const maxDenseLabel = 1 << 16

// denseLabels flattens one label map into an id-indexed table (-1 = no such
// block). It returns nil when the ids do not fit a dense table.
func denseLabels(m map[int64]int) []int32 {
	maxID := int64(-1)
	for id := range m {
		if id < 0 || id >= maxDenseLabel {
			return nil
		}
		if id > maxID {
			maxID = id
		}
	}
	t := make([]int32, maxID+1)
	for i := range t {
		t[i] = -1
	}
	for id, idx := range m {
		t[id] = int32(idx)
	}
	return t
}

// resolve builds the dense branch tables once per region.
func (cr *CompiledRegion) resolve() {
	cr.resolveOnce.Do(func() {
		cr.btabs = make([][]int32, len(cr.Labels))
		for c, m := range cr.Labels {
			cr.btabs[c] = denseLabels(m)
		}
		cr.fbtab = denseLabels(cr.FallbackLabels)
	})
}

// lookupLabel resolves a logical block id in core c's stream.
func (cr *CompiledRegion) lookupLabel(c int, id int64) (int, bool) {
	if t := cr.btabs[c]; t != nil {
		if id < 0 || id >= int64(len(t)) || t[id] < 0 {
			return 0, false
		}
		return int(t[id]), true
	}
	idx, ok := cr.Labels[c][id]
	return idx, ok
}

// lookupFallbackLabel resolves a logical block id in the fallback stream.
func (cr *CompiledRegion) lookupFallbackLabel(id int64) (int, bool) {
	if t := cr.fbtab; t != nil {
		if id < 0 || id >= int64(len(t)) || t[id] < 0 {
			return 0, false
		}
		return int(t[id]), true
	}
	idx, ok := cr.FallbackLabels[id]
	return idx, ok
}

// Validate checks structural consistency of the compiled region against a
// machine width.
func (cr *CompiledRegion) Validate(cores int) error {
	if len(cr.Code) != cores || len(cr.Labels) != cores ||
		len(cr.Entry) != cores || len(cr.StartAwake) != cores {
		return fmt.Errorf("region %q: per-core tables sized %d/%d/%d/%d, want %d",
			cr.Name, len(cr.Code), len(cr.Labels), len(cr.Entry), len(cr.StartAwake), cores)
	}
	for c := 0; c < cores; c++ {
		if len(cr.Code[c]) == 0 && cr.StartAwake[c] {
			return fmt.Errorf("region %q: core %d awake with empty code", cr.Name, c)
		}
		if cr.StartAwake[c] && (cr.Entry[c] < 0 || cr.Entry[c] >= len(cr.Code[c])) {
			return fmt.Errorf("region %q: core %d entry %d out of range", cr.Name, c, cr.Entry[c])
		}
		for i, in := range cr.Code[c] {
			if in.Op == isa.PBR || in.Op == isa.SPAWN {
				target := c
				if in.Op == isa.SPAWN {
					target = in.Core
				}
				if target < 0 || target >= cores {
					return fmt.Errorf("region %q core %d inst %d: bad target core %d", cr.Name, c, i, target)
				}
				if _, ok := cr.Labels[target][in.Imm]; !ok {
					return fmt.Errorf("region %q core %d inst %d (%v): unresolved label B%d on core %d",
						cr.Name, c, i, in, in.Imm, target)
				}
			}
		}
	}
	if cr.Mode == Coupled {
		for c := 0; c < cores; c++ {
			if !cr.StartAwake[c] {
				return fmt.Errorf("region %q: coupled mode requires all cores awake", cr.Name)
			}
		}
	}
	if cr.Mode == DOALL && cr.TxCores > 0 && len(cr.Fallback) == 0 {
		return fmt.Errorf("region %q: DOALL region without serial fallback", cr.Name)
	}
	return nil
}

// CompiledProgram is a fully lowered workload: one compiled region per IR
// region, plus the source program for memory-image construction.
type CompiledProgram struct {
	Name    string
	Cores   int
	Regions []*CompiledRegion
	// Src provides the data layout and initial memory image.
	Src *ir.Program
	// Selection records how per-region strategy selection decided each
	// lowering. Execution never reads it; the serving layer exposes it
	// (selection metrics, the X-Voltron-Select header) and the
	// selection-agreement experiments consume it.
	Selection SelectionSummary
}

// SelectionSummary describes one compile's per-region selection outcomes.
type SelectionSummary struct {
	// Mode is "measured", "static" or "escalated" ("" when compilation ran
	// no per-region selection, e.g. serial or single-core compiles).
	Mode string
	// Static counts regions the classifier decided without simulation,
	// Escalated those it sent to measured selection on low confidence,
	// Measured those decided by simulation under measured mode.
	Static, Escalated, Measured int
	// Regions parallels CompiledProgram.Regions.
	Regions []RegionSelection
}

// RegionSelection is one region's selection outcome.
type RegionSelection struct {
	// Tier is the classifier tier ("small", "doall", "easy", "hard",
	// "measured", "rechecked" — compiler.Tier names).
	Tier string
	// Choice names the selected technique (compiler.Choice names).
	Choice string
	// Confidence is the classifier's relative-margin score in [0, 1]
	// (1 for outcomes that are safe by construction).
	Confidence float64
}

// Validate checks all regions.
func (cp *CompiledProgram) Validate() error {
	for _, r := range cp.Regions {
		if err := r.Validate(cp.Cores); err != nil {
			return err
		}
	}
	return nil
}

// NewMemory builds the initial memory image for a run.
func (cp *CompiledProgram) NewMemory() *mem.Flat { return mem.NewFlatFor(cp.Src) }
