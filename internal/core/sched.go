package core

import "math/bits"

// wakeSched is the decoupled event loop's activity-indexed scheduler. The
// reference stepper (and the pre-scheduler event loop) re-scanned every
// core on every cycle, so per-event cost grew with machine width even when
// two cores out of 64 were active. The scheduler replaces the scan with
// three indexed structures:
//
//   - runnable: a bitmask of cores that must be evaluated at the current
//     cycle, iterated in ascending core-id order (the same order the
//     reference stepper visits cores, which same-cycle send/receive
//     interactions observe);
//   - a binary min-heap of (wakeAt, core) pairs holding each blocked
//     core's next scheduled evaluation cycle;
//   - wakeAt: the per-core authoritative wake time. A heap entry is live
//     only while it matches wakeAt (lazy invalidation: rescheduling never
//     searches the heap, it pushes a new entry and lets the stale one be
//     discarded on pop).
//
// Cores with no scheduled wake (wakeAt == neverWakes) are woken by the
// notify hooks when another core's progress could unblock them: a message
// enqueue schedules the receiver at the arrival cycle, a queue pop
// schedules a back-pressured sender. Spurious wakes are harmless — an
// evaluation that cannot act charges the cycle with exactly the kind the
// lazy catch-up would have used and goes back to sleep — so the hooks
// over-approximate "could unblock" instead of decoding why a core is
// blocked.
//
// All slices live on the Machine and are resized only on width growth, so
// the event loop stays allocation-free after the first region (the
// TestEventLoopZeroAllocs discipline).
type wakeSched struct {
	// wakeAt[c] is core c's next evaluation cycle (neverWakes = none
	// scheduled; only a notify hook can revive it).
	wakeAt []int64
	// heapT/heapC are the parallel-array binary min-heap over (time, core).
	heapT []int64
	heapC []int32
	// runnable marks cores to evaluate at the current cycle, one bit per
	// core; next marks cores booked for exactly the following cycle — the
	// overwhelmingly common wake (every core that acts retries next cycle),
	// kept out of the heap so a fully-active machine pays two bitmask ops
	// per core per cycle instead of a heap round-trip.
	runnable []uint64
	next     []uint64
	// now mirrors the loop's current cycle so schedule can route next-cycle
	// bookings to the next mask.
	now int64
	// live counts cores that are awake and not done (the quiet-exit
	// condition is live == 0 with no pending messages); txWait counts cores
	// parked at the DOALL commit barrier.
	live   int
	txWait int
}

// begin sizes the scheduler for n cores and clears all state. Backing
// arrays are kept across regions and runs.
func (sc *wakeSched) begin(n int) {
	words := (n + 63) / 64
	if cap(sc.wakeAt) < n {
		sc.wakeAt = make([]int64, n)
		sc.heapT = make([]int64, 0, n)
		sc.heapC = make([]int32, 0, n)
		sc.runnable = make([]uint64, words)
		sc.next = make([]uint64, words)
	}
	sc.wakeAt = sc.wakeAt[:n]
	for i := range sc.wakeAt {
		sc.wakeAt[i] = neverWakes
	}
	sc.heapT = sc.heapT[:0]
	sc.heapC = sc.heapC[:0]
	sc.runnable = sc.runnable[:words]
	clear(sc.runnable)
	sc.next = sc.next[:words]
	clear(sc.next)
	sc.live = 0
	sc.txWait = 0
}

// markRunnable queues core c for evaluation at the current cycle.
func (sc *wakeSched) markRunnable(c int, now int64) {
	sc.wakeAt[c] = now
	sc.runnable[c>>6] |= 1 << uint(c&63)
}

// schedule offers cycle t as core c's next evaluation; offers at or after
// the current booking are discarded, earlier ones replace it (the stale
// heap or next-mask entry is lazily invalidated). Next-cycle bookings go
// to the next mask; later ones to the heap.
func (sc *wakeSched) schedule(c int, t int64) {
	if t >= sc.wakeAt[c] {
		return
	}
	sc.wakeAt[c] = t
	if t == sc.now+1 {
		sc.next[c>>6] |= 1 << uint(c&63)
		return
	}
	sc.push(t, int32(c))
}

// nextAny reports whether any core is booked for the following cycle.
func (sc *wakeSched) nextAny() bool {
	for _, w := range sc.next {
		if w != 0 {
			return true
		}
	}
	return false
}

// push adds a heap entry.
func (sc *wakeSched) push(t int64, c int32) {
	sc.heapT = append(sc.heapT, t)
	sc.heapC = append(sc.heapC, c)
	i := len(sc.heapT) - 1
	for i > 0 {
		p := (i - 1) / 2
		if sc.heapT[p] <= sc.heapT[i] {
			break
		}
		sc.heapT[p], sc.heapT[i] = sc.heapT[i], sc.heapT[p]
		sc.heapC[p], sc.heapC[i] = sc.heapC[i], sc.heapC[p]
		i = p
	}
}

// pop removes and returns the minimum heap entry.
func (sc *wakeSched) pop() (t int64, c int32) {
	t, c = sc.heapT[0], sc.heapC[0]
	last := len(sc.heapT) - 1
	sc.heapT[0], sc.heapC[0] = sc.heapT[last], sc.heapC[last]
	sc.heapT = sc.heapT[:last]
	sc.heapC = sc.heapC[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && sc.heapT[l] < sc.heapT[min] {
			min = l
		}
		if r < last && sc.heapT[r] < sc.heapT[min] {
			min = r
		}
		if min == i {
			break
		}
		sc.heapT[min], sc.heapT[i] = sc.heapT[i], sc.heapT[min]
		sc.heapC[min], sc.heapC[i] = sc.heapC[i], sc.heapC[min]
		i = min
	}
	return t, c
}

// ---------- notify hooks (no-ops outside the event-scheduled loop) ----------

// notifyArrive wakes core `to` at a message's arrival cycle: the message
// may be exactly what it is blocked on (a RECV on a previously-empty pair,
// a spawn for a sleeping core). The arrival must be offered even when a
// wake is already booked — two senders can dispatch to one receiver in the
// same cycle with the farther sender issuing first (lower id), and the
// nearer message's earlier arrival has to pull the booking forward;
// schedule discards the offer when the booked wake is already sooner. If
// the core turns out to be blocked on something else the extra evaluation
// is harmless.
func (rs *runState) notifyArrive(to int, at int64) {
	if sc := rs.sched; sc != nil {
		sc.schedule(to, at)
	}
}

// notifyPop wakes the popped message's sender: the pop freed a slot in the
// (sender, receiver) pair, so a sender blocked on that pair's back-pressure
// can retry. The reference stepper visits cores in id order within a cycle,
// so a sender AFTER the receiver observes the freed slot in the same cycle
// and one BEFORE it (already evaluated against the full queue this cycle)
// retries next cycle; the hook schedules exactly those cycles, pulling any
// later booking (e.g. a spurious arrival wake) forward.
func (rs *runState) notifyPop(sender, receiver int) {
	sc := rs.sched
	if sc == nil {
		return
	}
	if sender > receiver {
		if sc.wakeAt[sender] > rs.now {
			sc.markRunnable(sender, rs.now)
		}
	} else {
		sc.schedule(sender, rs.now+1)
	}
}

// ---------- the event-scheduled decoupled loop ----------

// catchUpTo charges core cs for the cycles [cs.chargedUntil, to) it sat
// unevaluated. The scheduler only leaves a core unevaluated while its
// blocked state cannot change (it is always evaluated at its wake cycle
// and whenever a notify hook fires), so the whole window carries one
// blocked-state classification and skipDecoupled's span decomposition
// charges it exactly as the reference stepper's per-cycle charges would.
func (rs *runState) catchUpTo(cs *coreState, to int64) {
	if cs.chargedUntil >= to {
		return
	}
	rs.skipDecoupled(cs, cs.chargedUntil, to)
	cs.chargedUntil = to
}

// catchUpAll charges every core through cycle to-1 (region exit, commit
// barriers and the fallback hand-off need all cores' accounting current).
func (rs *runState) catchUpAll(to int64) {
	for _, cs := range rs.cores {
		rs.catchUpTo(cs, to)
	}
}

// runDecoupledEvent is the activity-indexed decoupled loop: per processed
// cycle it evaluates only the cores in the runnable set — cores that acted
// last cycle, cores whose scheduled wake fired, cores woken by a notify
// hook — and jumps the clock to the next scheduled wake when the set
// drains. Idle cores cost nothing per event; their stall accounting is
// settled lazily by catchUpTo. Results are bit-identical to the reference
// stepper (the cycle-exactness tests diff every number at 4/16/32/64
// cores).
func (rs *runState) runDecoupledEvent() error {
	cr := rs.cr
	sc := &rs.m.sched
	sc.begin(len(rs.cores))
	sc.now = rs.now
	rs.sched = sc
	for _, cs := range rs.cores {
		cs.chargedUntil = rs.now
		if cs.awake {
			sc.markRunnable(cs.id, rs.now)
			sc.live++
		}
	}
	// rs.sched is cleared on every exit path (not via defer: the loop must
	// stay free of anything that could allocate, and a forgotten path is
	// still safe — RunContext rebuilds runState wholesale each run).
	for {
		if err := rs.checkCancel(); err != nil {
			rs.sched = nil
			return err
		}
		// Evaluate the runnable set in ascending core-id order. The mask
		// word is re-read every iteration: a notifyPop may insert a
		// higher-numbered sender mid-cycle (the same-cycle retry the
		// reference stepper's id-ordered scan performs).
		for w := 0; w < len(sc.runnable); w++ {
			for sc.runnable[w] != 0 {
				bit := bits.TrailingZeros64(sc.runnable[w])
				sc.runnable[w] &^= 1 << uint(bit)
				c := w<<6 | bit
				cs := rs.cores[c]
				sc.wakeAt[c] = neverWakes // consume the booking
				rs.catchUpTo(cs, rs.now)
				acted, wake, err := rs.stepDecoupled(cs)
				if err != nil {
					rs.sched = nil
					return err
				}
				cs.chargedUntil = rs.now + 1
				if acted {
					sc.schedule(c, rs.now+1)
				} else if wake != neverWakes {
					sc.schedule(c, wake)
				}
			}
		}
		// Transactional commit barrier (state only changes through steps,
		// and every processed cycle stepped at least one core).
		if cr.TxCores > 0 {
			if rs.sys.TM.AnyAborted() {
				// Settle every core's accounting through this cycle — the
				// reference stepper charged them all before detecting the
				// abort — then replay serially from the same cycle.
				rs.catchUpAll(rs.now + 1)
				rs.sched = nil
				return rs.runFallback()
			}
			if sc.txWait > 0 && sc.txWait == cr.TxCores {
				for _, cs := range rs.cores {
					if !cs.txwait {
						continue
					}
					rs.catchUpTo(cs, rs.now+1)
					if !rs.sys.TM.Commit(cs.id) {
						rs.catchUpAll(rs.now + 1)
						rs.sched = nil
						return rs.runFallback()
					}
					if rs.tr != nil {
						rs.tr.TxCommit(rs.now, cs.id)
					}
					cs.txwait, cs.txactive = false, false
					sc.txWait--
					sc.schedule(cs.id, rs.now+1)
				}
			}
		}
		// Quiet exit: every core done or asleep and no message in flight.
		// Settle the lazy accounting through this cycle first (the
		// reference stepper charged every core on its way to noticing).
		if sc.live == 0 && !rs.queue.PendingAny() {
			rs.catchUpAll(rs.now + 1)
			rs.now++
			rs.sched = nil
			return nil
		}
		// Jump to the next scheduled wake: the following cycle if any core
		// is booked for it, else the earliest heap entry — whichever is
		// sooner. No booking anywhere means no core can ever act again:
		// the event-driven deadlock proof.
		hasNext := sc.nextAny()
		if !hasNext && len(sc.heapT) == 0 {
			rs.now++
			rs.sched = nil
			return rs.deadlock()
		}
		nextCycle := rs.now + 1
		next := neverWakes
		if hasNext {
			next = nextCycle
		}
		if len(sc.heapT) > 0 && sc.heapT[0] < next {
			next = sc.heapT[0]
		}
		if hasNext && next == nextCycle {
			// Promote the next-cycle bookings wholesale: runnable is fully
			// consumed at this point, so the masks just swap roles.
			sc.runnable, sc.next = sc.next, sc.runnable
		}
		rs.now = next
		sc.now = next
		for len(sc.heapT) > 0 && sc.heapT[0] == next {
			t, c := sc.pop()
			if sc.wakeAt[c] == t {
				sc.runnable[c>>6] |= 1 << uint(c&63)
			}
			// A mismatched entry is stale (lazily invalidated): the core
			// was rebooked or evaluated since it was pushed.
		}
	}
}
