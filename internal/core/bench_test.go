package core

import "testing"

// The simulator's two hot loops, driven by the same hand-built programs
// the reference tests use. Run with -benchmem: the point of the
// event-driven rework is that neither loop allocates per simulated cycle.

func benchProgram(b *testing.B, cp *CompiledProgram) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(DefaultConfig(cp.Cores)).Run(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoupledLoop exercises the lock-step VLIW loop: dual-issue
// across cores, broadcast branches, memory stalls.
func BenchmarkCoupledLoop(b *testing.B) {
	benchProgram(b, coupledStallProgram())
}

// BenchmarkDecoupledQueueLoop exercises the decoupled loop: per-core
// stepping, queue sends/receives, spawn/sleep wake handling.
func BenchmarkDecoupledQueueLoop(b *testing.B) {
	benchProgram(b, queuePipelineProgram())
}

// BenchmarkDOALLFallback exercises the transactional path end to end:
// speculative iterations, conflict abort, serial fallback replay.
func BenchmarkDOALLFallback(b *testing.B) {
	cp, _ := doallProgram(true)
	benchProgram(b, cp)
}
