package core

import (
	"fmt"
	"testing"

	"voltron/internal/isa"
)

// The simulator's two hot loops, driven by the same hand-built programs
// the reference tests use. Run with -benchmem: the point of the
// event-driven rework is that neither loop allocates per simulated cycle.

func benchProgram(b *testing.B, cp *CompiledProgram) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(DefaultConfig(cp.Cores)).Run(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoupledLoop exercises the lock-step VLIW loop: dual-issue
// across cores, broadcast branches, memory stalls.
func BenchmarkCoupledLoop(b *testing.B) {
	benchProgram(b, coupledStallProgram())
}

// BenchmarkDecoupledQueueLoop exercises the decoupled loop: per-core
// stepping, queue sends/receives, spawn/sleep wake handling.
func BenchmarkDecoupledQueueLoop(b *testing.B) {
	benchProgram(b, queuePipelineProgram())
}

// BenchmarkDOALLFallback exercises the transactional path end to end:
// speculative iterations, conflict abort, serial fallback replay.
func BenchmarkDOALLFallback(b *testing.B) {
	cp, _ := doallProgram(true)
	benchProgram(b, cp)
}

// benchProgramWarm runs cp repeatedly on one warm machine (the pooled-serve
// usage pattern), so the measurement is the event loop itself rather than
// machine construction.
func benchProgramWarm(b *testing.B, cp *CompiledProgram) {
	b.Helper()
	b.ReportAllocs()
	m := New(DefaultConfig(cp.Cores))
	if _, err := m.Run(cp); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// wideIdlePipelineProgram is the 2-core producer/consumer queue pipeline
// embedded in an n-core machine whose remaining cores sleep for the whole
// region. Simulation work is constant in n; only the machine width grows —
// the activity-indexed scheduler's target case.
func wideIdlePipelineProgram(cores int) *CompiledProgram {
	base := queuePipelineProgram()
	r := base.Regions[0]
	wide := &CompiledRegion{
		Name: r.Name, Mode: r.Mode,
		Code:       make([][]isa.Inst, cores),
		Labels:     make([]map[int64]int, cores),
		Entry:      make([]int, cores),
		StartAwake: make([]bool, cores),
	}
	copy(wide.Code, r.Code)
	copy(wide.Labels, r.Labels)
	copy(wide.Entry, r.Entry)
	copy(wide.StartAwake, r.StartAwake)
	for c := 2; c < cores; c++ {
		wide.Labels[c] = map[int64]int{}
	}
	return &CompiledProgram{
		Name: fmt.Sprintf("wide-idle-%d", cores), Cores: cores, Src: base.Src,
		Regions: []*CompiledRegion{wide},
	}
}

// allActiveProgram keeps every one of n cores busy in an independent
// decoupled compute loop — the worst case for an activity-indexed
// scheduler (activity == width), guarding against regression when nothing
// is idle.
func allActiveProgram(cores int) *CompiledProgram {
	p, _ := srcProg(4)
	wide := &CompiledRegion{
		Name: "r", Mode: Decoupled,
		Code:       make([][]isa.Inst, cores),
		Labels:     make([]map[int64]int, cores),
		Entry:      make([]int, cores),
		StartAwake: make([]bool, cores),
	}
	for c := 0; c < cores; c++ {
		a := newAsm()
		a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0})
		a.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
		a.label(1)
		a.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 1})
		a.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(1), Imm: 64})
		a.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
		a.emit(isa.Inst{Op: isa.HALT})
		wide.Code[c] = a.code
		wide.Labels[c] = a.labels
		wide.StartAwake[c] = true
	}
	return &CompiledProgram{
		Name: fmt.Sprintf("all-active-%d", cores), Cores: cores, Src: p,
		Regions: []*CompiledRegion{wide},
	}
}

// BenchmarkEventLoopWideIdle measures per-event cost as machine width grows
// with activity held constant (2 busy cores, the rest asleep). Before the
// activity-indexed scheduler this scaled linearly with width; afterwards
// the 64-core row should sit near the 8-core row.
func BenchmarkEventLoopWideIdle(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		cp := wideIdlePipelineProgram(n)
		b.Run(fmt.Sprintf("cores-%d", n), func(b *testing.B) { benchProgramWarm(b, cp) })
	}
}

// BenchmarkEventLoopWideActive is the zero-idle control: every core busy,
// so cost must scale with width and the indexed scheduler may not add
// overhead over the plain scan.
func BenchmarkEventLoopWideActive(b *testing.B) {
	for _, n := range []int{8, 64} {
		cp := allActiveProgram(n)
		b.Run(fmt.Sprintf("cores-%d", n), func(b *testing.B) { benchProgramWarm(b, cp) })
	}
}
