package core_test

import (
	"reflect"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// TestMachineScratchReuseDeterministic runs the same compiled program
// repeatedly on one Machine. The per-core scratch states are recycled
// across regions and runs, so any stale register or queue state leaking
// through reset() would show up as differing results.
func TestMachineScratchReuseDeterministic(t *testing.T) {
	p, err := workload.Build("gsmdecode")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := compiler.Compile(p, compiler.Options{Cores: 4, Strategy: compiler.Hybrid, Profile: pr})
	if err != nil {
		t.Fatal(err)
	}
	m := core.New(core.DefaultConfig(4))
	first, err := m.Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := m.Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		if again.TotalCycles != first.TotalCycles {
			t.Fatalf("run %d: %d cycles, first run %d — scratch reuse leaked state",
				i+2, again.TotalCycles, first.TotalCycles)
		}
		if !reflect.DeepEqual(again.RegionCycles, first.RegionCycles) {
			t.Fatalf("run %d: region cycles diverge from first run", i+2)
		}
	}
}
