package core

import (
	"reflect"
	"testing"

	"voltron/internal/isa"
)

// runBoth simulates cp on the event-driven machine and on the retained
// naive reference stepper (Config.Reference) and asserts that every
// reported number — per-region cycles, the full stall breakdown, memory
// statistics and the final memory image — is identical. Cycle skipping is
// an implementation detail; it must never be observable in results.
func runBoth(t *testing.T, cores int, cp *CompiledProgram) {
	t.Helper()
	ev := mustRun(t, DefaultConfig(cores), cp)
	refCfg := DefaultConfig(cores)
	refCfg.Reference = true
	rf := mustRun(t, refCfg, cp)
	if !reflect.DeepEqual(ev.RegionCycles, rf.RegionCycles) {
		t.Errorf("RegionCycles: event %v, reference %v", ev.RegionCycles, rf.RegionCycles)
	}
	if !reflect.DeepEqual(ev.Run, rf.Run) {
		t.Errorf("stats diverge:\nevent     %+v\nreference %+v", ev.Run, rf.Run)
	}
	if !reflect.DeepEqual(ev.MemStats, rf.MemStats) {
		t.Errorf("memory stats diverge:\nevent     %+v\nreference %+v", ev.MemStats, rf.MemStats)
	}
	if !ev.Mem.Equal(rf.Mem) {
		addr, a, b, _ := ev.Mem.FirstDiff(rf.Mem)
		t.Errorf("memory images diverge at %#x: event %d, reference %d", addr, a, b)
	}
}

// coupledStallProgram builds a 2-core coupled region with strided stores
// and loads over enough lines to mix L1 hits, misses and lock-step stalls.
func coupledStallProgram() *CompiledProgram {
	p, out := srcProg(256)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: 0})
	c0.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c0.nop()
	c0.label(1)
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2)})
	c0.emit(isa.Inst{Op: isa.LOAD, Dst: isa.GPR(3), Src1: isa.GPR(1)})
	c0.nop()
	c0.nop()
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 64})
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(2), Src1: isa.GPR(2), Imm: 1})
	c0.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(2), Imm: 20})
	c0.emit(isa.Inst{Op: isa.BCAST, Src1: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.nop().nop()
	c1.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c1.nop()
	c1.label(1)
	c1.nop().nop().nop().nop().nop().nop().nop()
	c1.emit(isa.Inst{Op: isa.GETOP, Dst: isa.PR(1), Dir: isa.West})
	c1.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c1.emit(isa.Inst{Op: isa.HALT})
	return &CompiledProgram{
		Name: "coupled-stalls", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
}

func TestReferenceCoupledMemoryStalls(t *testing.T) {
	runBoth(t, 2, coupledStallProgram())
}

// queuePipelineProgram builds a 2-core decoupled producer/consumer over the
// queue network with SPAWN, SLEEP, memory traffic and receive stalls on
// both data and predicate registers.
func queuePipelineProgram() *CompiledProgram {
	p, out := srcProg(256)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0})
	c0.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c0.label(1)
	c0.emit(isa.Inst{Op: isa.MUL, Dst: isa.GPR(2), Src1: isa.GPR(1), Imm: 3})
	c0.nop().nop()
	c0.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(2), Core: 1})
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 1})
	c0.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(1), Imm: 30})
	c0.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0})
	c1.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 11})
	c1.label(11)
	c1.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(2), Core: 0})
	c1.nop()
	c1.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(2)})
	c1.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(9), Src1: isa.GPR(9), Imm: 64})
	c1.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Imm: 1})
	c1.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(1), Imm: 30})
	c1.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	return &CompiledProgram{
		Name: "queue-pipeline", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
}

func TestReferenceDecoupledQueuePipeline(t *testing.T) {
	runBoth(t, 2, queuePipelineProgram())
}

func TestReferenceDOALLCommit(t *testing.T) {
	cp, _ := doallProgram(false)
	runBoth(t, 2, cp)
}

func TestReferenceDOALLFallback(t *testing.T) {
	// The conflicting variant aborts the transactions and re-executes the
	// serial fallback stream — the third execution loop that must skip
	// cycles identically.
	cp, _ := doallProgram(true)
	runBoth(t, 2, cp)
}
