package core

import "testing"

// TestPooledJobAllocCeiling is the allocation guard for the pooled serving
// path: one job on a warm machine (Reset + Run) may allocate only its
// per-run outputs — the RunResult, the stats.Run, the fresh memory image
// and the reset stat slices — never the machine components themselves. The
// ceiling has headroom over the measured count (~12) but catches any
// regression that rebuilds the memory system, networks or scratch state
// per job.
func TestPooledJobAllocCeiling(t *testing.T) {
	cp := tripCountProgram(256)
	cfg := DefaultConfig(cp.Cores)
	m := New(cfg)
	if _, err := m.Run(cp); err != nil { // warm the machine
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		m.Reset(cfg)
		if _, err := m.Run(cp); err != nil {
			t.Fatal(err)
		}
	})
	const ceiling = 24
	if allocs > ceiling {
		t.Errorf("warm pooled job allocates %.0f objects/run, ceiling %d — the pooled path is rebuilding machine state", allocs, ceiling)
	}
}
