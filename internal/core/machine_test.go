package core

import (
	"strings"
	"testing"

	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/stats"
)

// asm builds a hand-written instruction stream for machine tests.
type asm struct {
	code   []isa.Inst
	labels map[int64]int
}

func newAsm() *asm { return &asm{labels: map[int64]int{}} }

func (a *asm) label(id int64) *asm { a.labels[id] = len(a.code); return a }
func (a *asm) emit(in isa.Inst) *asm {
	a.code = append(a.code, in)
	return a
}
func (a *asm) nop() *asm { return a.emit(isa.Nop()) }

// srcProg creates a minimal IR program providing a memory image with one
// array named "out".
func srcProg(words int64) (*ir.Program, *ir.Array) {
	p := ir.NewProgram("test")
	out := p.Array("out", words)
	return p, out
}

func mustRun(t *testing.T, cfg Config, cp *CompiledProgram) *RunResult {
	t.Helper()
	res, err := New(cfg).Run(cp)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestCoupledSingleCoreStraightLine(t *testing.T) {
	p, out := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 5})
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: out.Base})
	a.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(3), Src1: isa.GPR(1), Imm: 2})
	a.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(2), Src2: isa.GPR(3)})
	a.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
	res := mustRun(t, DefaultConfig(1), cp)
	if got := int64(res.Mem.LoadW(out.Base)); got != 7 {
		t.Errorf("out = %d, want 7", got)
	}
	if res.TotalCycles <= 0 {
		t.Error("no cycles counted")
	}
	if res.Run.Cores[0].Cycles[stats.Busy] != 5 {
		t.Errorf("busy cycles = %d, want 5", res.Run.Cores[0].Cycles[stats.Busy])
	}
}

func TestCoupledPutGet(t *testing.T) {
	p, out := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 5})
	c0.emit(isa.Inst{Op: isa.PUT, Src1: isa.GPR(1), Dir: isa.East})
	c0.nop()
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	c1.emit(isa.Inst{Op: isa.GETOP, Dst: isa.GPR(2), Dir: isa.West})
	c1.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(2)})
	c1.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if got := int64(res.Mem.LoadW(out.Base)); got != 5 {
		t.Errorf("out = %d, want 5 (PUT/GET value lost)", got)
	}
}

func TestCoupledLoopWithBroadcastBranch(t *testing.T) {
	p, out := srcProg(4)
	// core 0 computes sum 0..4 and the branch condition, broadcasting it.
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 0}) // sum
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: 0}) // i
	c0.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c0.nop()
	c0.label(1)
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(1), Src1: isa.GPR(1), Src2: isa.GPR(2)})
	c0.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(2), Src1: isa.GPR(2), Imm: 1})
	c0.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(1), Src1: isa.GPR(2), Imm: 5})
	c0.emit(isa.Inst{Op: isa.BCAST, Src1: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(3), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(3), Src2: isa.GPR(1)})
	c0.emit(isa.Inst{Op: isa.HALT})
	// core 1 follows control flow in lock-step.
	c1 := newAsm()
	c1.nop().nop()
	c1.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 1})
	c1.nop()
	c1.label(1)
	c1.nop().nop().nop()
	c1.emit(isa.Inst{Op: isa.GETOP, Dst: isa.PR(1), Dir: isa.West})
	c1.emit(isa.Inst{Op: isa.BR, Src1: isa.BTR(0), Src2: isa.PR(1)})
	c1.nop().nop()
	c1.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if got := int64(res.Mem.LoadW(out.Base)); got != 10 {
		t.Errorf("sum = %d, want 10", got)
	}
}

func TestCoupledScheduleSkewDetected(t *testing.T) {
	// Core 0 halts one cycle before core 1: the machine must reject it.
	p, _ := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.nop()
	c1.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	if _, err := New(DefaultConfig(2)).Run(cp); err == nil || !strings.Contains(err.Error(), "halted") {
		t.Errorf("expected schedule-skew error, got %v", err)
	}
}

func TestScheduleViolationDetected(t *testing.T) {
	// MUL has latency 3; consuming its result on the next cycle is a
	// compiler bug the machine must flag.
	p, _ := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 3})
	a.emit(isa.Inst{Op: isa.MUL, Dst: isa.GPR(2), Src1: isa.GPR(1), Imm: 4})
	a.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(3), Src1: isa.GPR(2), Imm: 1})
	a.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
	if _, err := New(DefaultConfig(1)).Run(cp); err == nil || !strings.Contains(err.Error(), "schedule violation") {
		t.Errorf("expected schedule violation, got %v", err)
	}
}

func TestCoupledLoadMissStallsAllCores(t *testing.T) {
	p, out := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.LOAD, Dst: isa.GPR(2), Src1: isa.GPR(1)})
	c0.nop()
	c0.nop()
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2), Imm: 8})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.nop().nop().nop().nop().nop()
	c1.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, true},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if res.Run.Cores[0].Cycles[stats.DStall] == 0 {
		t.Error("cold load miss produced no D-stall on the loading core")
	}
	if res.Run.Cores[1].Cycles[stats.Lockstep] == 0 {
		t.Error("lock-step partner was not charged lockstep stall")
	}
}

func TestDecoupledSpawnSendRecv(t *testing.T) {
	p, out := srcProg(4)
	c0 := newAsm()
	c0.label(0)
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(9), Imm: out.Base})
	c0.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(5), Core: 1})
	c0.nop()
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(9), Src2: isa.GPR(5)})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 21})
	c1.emit(isa.Inst{Op: isa.ADD, Dst: isa.GPR(2), Src1: isa.GPR(1), Src2: isa.GPR(1)})
	c1.emit(isa.Inst{Op: isa.SEND, Src1: isa.GPR(2), Core: 0})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if got := int64(res.Mem.LoadW(out.Base)); got != 42 {
		t.Errorf("out = %d, want 42", got)
	}
	if res.Run.Spawns != 1 {
		t.Errorf("spawns = %d, want 1", res.Run.Spawns)
	}
	if res.Run.Cores[0].Cycles[stats.RecvData] == 0 {
		t.Error("master never stalled on RECV despite spawn+compute latency")
	}
}

func TestDecoupledPredicateRecvAccounting(t *testing.T) {
	p, _ := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.RECV, Dst: isa.PR(1), Core: 1})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 1})
	c1.emit(isa.Inst{Op: isa.CMPLT, Dst: isa.PR(2), Src1: isa.GPR(1), Imm: 5})
	c1.emit(isa.Inst{Op: isa.SEND, Src1: isa.PR(2), Core: 0})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
	res := mustRun(t, DefaultConfig(2), cp)
	if res.Run.Cores[0].Cycles[stats.RecvPred] == 0 {
		t.Error("predicate receive stall not attributed to RecvPred")
	}
}

func doallProgram(conflict bool) (*CompiledProgram, *ir.Array) {
	p, out := srcProg(8)
	addr0, addr1 := out.Base, out.Base+8
	if conflict {
		addr1 = addr0
	}
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.SPAWN, Core: 1, Imm: 10})
	c0.emit(isa.Inst{Op: isa.TXBEGIN, Imm: 0})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: addr0})
	c0.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: 1})
	c0.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2)})
	c0.emit(isa.Inst{Op: isa.TXCOMMIT})
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.TXBEGIN, Imm: 1})
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: addr1})
	c1.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: 2})
	c1.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2)})
	c1.emit(isa.Inst{Op: isa.TXCOMMIT})
	c1.emit(isa.Inst{Op: isa.SLEEP})
	// Serial fallback: store 1 to addr0 then 2 to addr1, in order.
	fb := newAsm()
	fb.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: addr0})
	fb.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(2), Imm: 1})
	fb.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(1), Src2: isa.GPR(2)})
	fb.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(3), Imm: addr1})
	fb.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(4), Imm: 2})
	fb.emit(isa.Inst{Op: isa.STORE, Src1: isa.GPR(3), Src2: isa.GPR(4)})
	fb.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "doall", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: DOALL,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
			TxCores:        2,
			Fallback:       fb.code,
			FallbackLabels: fb.labels,
		}},
	}
	return cp, out
}

func TestDOALLNoConflictCommits(t *testing.T) {
	cp, out := doallProgram(false)
	res := mustRun(t, DefaultConfig(2), cp)
	if res.Mem.LoadW(out.Base) != 1 || res.Mem.LoadW(out.Base+8) != 2 {
		t.Errorf("chunk results lost: %d %d", res.Mem.LoadW(out.Base), res.Mem.LoadW(out.Base+8))
	}
	if res.Run.TMConflicts != 0 {
		t.Errorf("conflicts = %d, want 0", res.Run.TMConflicts)
	}
}

func TestDOALLConflictRollsBackAndRunsSerial(t *testing.T) {
	cp, out := doallProgram(true)
	res := mustRun(t, DefaultConfig(2), cp)
	// Serial semantics: the second store (value 2) wins.
	if got := res.Mem.LoadW(out.Base); got != 2 {
		t.Errorf("out = %d, want serial result 2", got)
	}
	if res.Run.TMConflicts == 0 {
		t.Error("conflict not detected")
	}
	if res.Run.Cores[1].Cycles[stats.TMRollback] == 0 {
		t.Error("no rollback cycles charged")
	}
}

func TestDeadlockDetected(t *testing.T) {
	p, _ := srcProg(4)
	c0 := newAsm()
	c0.emit(isa.Inst{Op: isa.RECV, Dst: isa.GPR(1), Core: 1}) // never sent
	c0.emit(isa.Inst{Op: isa.HALT})
	c1 := newAsm()
	c1.label(10)
	c1.emit(isa.Inst{Op: isa.SLEEP})
	cp := &CompiledProgram{
		Name: "t", Cores: 2, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Decoupled,
			Code:   [][]isa.Inst{c0.code, c1.code},
			Labels: []map[int64]int{c0.labels, c1.labels},
			Entry:  []int{0, 0}, StartAwake: []bool{true, false},
		}},
	}
	cfg := DefaultConfig(2)
	cfg.Watchdog = 200
	if _, err := New(cfg).Run(cp); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestModeOccupancyAccounting(t *testing.T) {
	p, _ := srcProg(4)
	mk := func(mode Mode) *CompiledRegion {
		a := newAsm()
		a.emit(isa.Inst{Op: isa.MOVI, Dst: isa.GPR(1), Imm: 1})
		a.emit(isa.Inst{Op: isa.HALT})
		return &CompiledRegion{
			Name: "r", Mode: mode,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}
	}
	cp := &CompiledProgram{
		Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{mk(Coupled), mk(Decoupled), mk(Coupled)},
	}
	res := mustRun(t, DefaultConfig(1), cp)
	if res.Run.ModeCycles[stats.ModeCoupled] == 0 || res.Run.ModeCycles[stats.ModeDecoupled] == 0 {
		t.Errorf("mode cycles = %v", res.Run.ModeCycles)
	}
	if len(res.RegionCycles) != 3 {
		t.Errorf("region cycles = %v", res.RegionCycles)
	}
	if res.Run.ModeCycles[stats.ModeCoupled]+res.Run.ModeCycles[stats.ModeDecoupled] != res.TotalCycles {
		t.Error("mode cycles do not sum to total")
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	p, _ := srcProg(4)
	a := newAsm()
	a.emit(isa.Inst{Op: isa.PBR, Dst: isa.BTR(0), Imm: 77}) // unresolved label
	a.emit(isa.Inst{Op: isa.HALT})
	cp := &CompiledProgram{
		Name: "t", Cores: 1, Src: p,
		Regions: []*CompiledRegion{{
			Name: "r", Mode: Coupled,
			Code:   [][]isa.Inst{a.code},
			Labels: []map[int64]int{a.labels},
			Entry:  []int{0}, StartAwake: []bool{true},
		}},
	}
	if _, err := New(DefaultConfig(1)).Run(cp); err == nil {
		t.Error("unresolved label accepted")
	}
}
