package mem

import (
	"testing"
	"testing/quick"
)

func sys4() *System {
	return NewSystem(DefaultConfig(4), NewFlat(1<<16))
}

func TestCacheIndexRoundTrip(t *testing.T) {
	c := newCache(CacheCfg{SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64, HitLat: 2})
	f := func(a uint32) bool {
		addr := int64(a) &^ 7
		set, tag := c.index(addr)
		lineAddr := (tag*c.numSets + set) * c.cfg.LineBytes
		return lineAddr == addr/c.cfg.LineBytes*c.cfg.LineBytes && set < c.numSets
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheLRU(t *testing.T) {
	// 2-way, 2 sets, 8-byte lines: addresses 0,16,32 map to set 0.
	c := newCache(CacheCfg{SizeBytes: 32, Assoc: 2, LineBytes: 8, HitLat: 1})
	if c.numSets != 2 {
		t.Fatalf("numSets = %d, want 2", c.numSets)
	}
	c.fill(0, shared)
	c.fill(16, shared)
	if c.find(0) < 0 || c.find(16) < 0 {
		t.Fatal("fills not resident")
	}
	c.touchIdx(c.find(0)) // 16 is now LRU
	c.fill(32, shared)
	if c.find(16) >= 0 {
		t.Error("LRU victim should have been 16")
	}
	if c.find(0) < 0 || c.find(32) < 0 {
		t.Error("0 and 32 should be resident")
	}
}

func TestReadMissThenHit(t *testing.T) {
	s := sys4()
	_, done := s.Read(0, 0x100, 0)
	if done <= s.Cfg.L1D.HitLat {
		t.Errorf("first read done at %d; expected a miss", done)
	}
	if s.St.L1DMisses[0] != 1 {
		t.Errorf("misses = %d, want 1", s.St.L1DMisses[0])
	}
	_, done2 := s.Read(0, 0x108, 100) // same line
	if done2 != 100+s.Cfg.L1D.HitLat {
		t.Errorf("second read done at %d, want hit at %d", done2, 100+s.Cfg.L1D.HitLat)
	}
	if s.St.L1DHits[0] != 1 {
		t.Errorf("hits = %d, want 1", s.St.L1DHits[0])
	}
}

func TestMOESIStateTransitions(t *testing.T) {
	s := sys4()
	// Core 0 reads: E (no other sharer).
	s.Read(0, 0x200, 0)
	if st := s.L1DState(0, 0x200); st != "E" {
		t.Errorf("after lone read: %s, want E", st)
	}
	// Core 1 reads same line: core 0 supplies (E -> S), core 1 gets S.
	s.Read(1, 0x200, 10)
	if st := s.L1DState(0, 0x200); st != "S" {
		t.Errorf("supplier state: %s, want S", st)
	}
	if st := s.L1DState(1, 0x200); st != "S" {
		t.Errorf("requester state: %s, want S", st)
	}
	// Core 1 writes: upgrade, invalidates core 0.
	s.Write(1, 0x200, 20, 42)
	if st := s.L1DState(1, 0x200); st != "M" {
		t.Errorf("writer state: %s, want M", st)
	}
	if st := s.L1DState(0, 0x200); st != "I" {
		t.Errorf("invalidated state: %s, want I", st)
	}
	if s.St.Invalidations == 0 {
		t.Error("no invalidations counted")
	}
	// Core 2 reads: core 1 supplies dirty line, becomes O.
	v, _ := s.Read(2, 0x200, 30)
	if v != 42 {
		t.Errorf("read value %d, want 42", v)
	}
	if st := s.L1DState(1, 0x200); st != "O" {
		t.Errorf("dirty supplier: %s, want O", st)
	}
	if s.St.C2CTransfers == 0 {
		t.Error("expected a cache-to-cache transfer")
	}
}

func TestWriteMissRFO(t *testing.T) {
	s := sys4()
	s.Read(0, 0x300, 0)
	s.Read(1, 0x300, 5)
	// Core 2 write-misses: both sharers invalidated, core 2 gets M.
	s.Write(2, 0x300, 10, 7)
	if s.L1DState(0, 0x300) != "I" || s.L1DState(1, 0x300) != "I" {
		t.Error("sharers not invalidated on RFO")
	}
	if s.L1DState(2, 0x300) != "M" {
		t.Errorf("writer state %s, want M", s.L1DState(2, 0x300))
	}
	if got := s.Flat.LoadW(0x300); got != 7 {
		t.Errorf("functional store = %d, want 7", got)
	}
}

func TestBusSerialization(t *testing.T) {
	s := sys4()
	// Two misses at the same cycle: the second must complete later because
	// the bus serializes.
	_, d0 := s.Read(0, 0x1000, 0)
	_, d1 := s.Read(1, 0x2000, 0)
	if d1 <= d0 {
		t.Errorf("bus did not serialize: %d then %d", d0, d1)
	}
}

func TestL2HitVsMemMiss(t *testing.T) {
	s := sys4()
	_, d0 := s.Read(0, 0x400, 0) // miss everywhere: L2 + mem latency
	if d0 < s.Cfg.MemLat {
		t.Errorf("cold miss too fast: %d", d0)
	}
	// Evict 0x400 from core 0's tiny L1 by touching many lines in the same
	// set, then re-read: should hit in L2 now (much faster than memory).
	setStride := int64(4<<10) / 2 // sets * lineBytes = 2048 for 4kB 2-way 64B
	for i := int64(1); i <= 4; i++ {
		s.Read(0, 0x400+i*setStride, 100*i)
	}
	if s.L1DState(0, 0x400) != "I" {
		t.Skip("eviction pattern did not evict; config changed")
	}
	_, d1 := s.Read(0, 0x400, 10_000)
	lat := d1 - 10_000
	if lat >= s.Cfg.MemLat {
		t.Errorf("L2 hit took %d, should be < memory latency %d", lat, s.Cfg.MemLat)
	}
	if s.St.L2Hits == 0 {
		t.Error("no L2 hits counted")
	}
}

func TestIFetch(t *testing.T) {
	s := sys4()
	d0 := s.Fetch(0, 1<<20, 0)
	if d0 <= s.Cfg.L1I.HitLat {
		t.Error("first fetch should miss")
	}
	d1 := s.Fetch(0, 1<<20+16, 1000)
	if d1 != 1000+s.Cfg.L1I.HitLat {
		t.Errorf("second fetch latency %d, want hit %d", d1-1000, s.Cfg.L1I.HitLat)
	}
}

func TestTMCommit(t *testing.T) {
	flat := NewFlat(128)
	tm := NewTM(2)
	tm.Begin(0, 0)
	tm.OnWrite(0, 8, flat.LoadW(8))
	flat.StoreW(8, 99)
	if !tm.Commit(0) {
		t.Fatal("commit failed without conflict")
	}
	if flat.LoadW(8) != 99 {
		t.Error("committed write lost")
	}
}

func TestTMConflictAndRollback(t *testing.T) {
	flat := NewFlat(128)
	flat.StoreW(16, 5)
	tm := NewTM(2)
	tm.Begin(0, 0) // earlier chunk
	tm.Begin(1, 1) // later chunk
	// Core 1 writes, core 0 had read the same address: WAR conflict;
	// core 1 (later order) must abort.
	tm.OnRead(0, 16)
	tm.OnWrite(1, 16, flat.LoadW(16))
	flat.StoreW(16, 77)
	if !tm.Aborted(1) {
		t.Fatal("later transaction not aborted on conflict")
	}
	if tm.Aborted(0) {
		t.Fatal("earlier transaction wrongly aborted")
	}
	if tm.Conflicts() != 1 {
		t.Errorf("conflicts = %d, want 1", tm.Conflicts())
	}
	tm.Abort(1, flat)
	if got := flat.LoadW(16); got != 5 {
		t.Errorf("rollback left %d, want 5", got)
	}
	if !tm.Commit(0) {
		t.Error("survivor commit failed")
	}
}

func TestTMRAWConflict(t *testing.T) {
	flat := NewFlat(128)
	tm := NewTM(2)
	tm.Begin(0, 0)
	tm.Begin(1, 1)
	tm.OnWrite(0, 24, flat.LoadW(24))
	tm.OnRead(1, 24) // reads a line written by an active earlier tx
	if !tm.Aborted(1) {
		t.Error("read of transactionally-written address must conflict")
	}
}

func TestTMUndoOrder(t *testing.T) {
	// Multiple writes to the same address roll back to the oldest value.
	flat := NewFlat(128)
	flat.StoreW(32, 1)
	tm := NewTM(1)
	tm.Begin(0, 0)
	tm.OnWrite(0, 32, flat.LoadW(32))
	flat.StoreW(32, 2)
	tm.OnWrite(0, 32, flat.LoadW(32))
	flat.StoreW(32, 3)
	tm.Abort(0, flat)
	if got := flat.LoadW(32); got != 1 {
		t.Errorf("rollback left %d, want 1", got)
	}
}

func TestTMAbortAll(t *testing.T) {
	flat := NewFlat(128)
	flat.StoreW(40, 10)
	flat.StoreW(48, 20)
	tm := NewTM(2)
	tm.Begin(0, 0)
	tm.Begin(1, 1)
	tm.OnWrite(0, 40, flat.LoadW(40))
	flat.StoreW(40, 11)
	tm.OnWrite(1, 48, flat.LoadW(48))
	flat.StoreW(48, 21)
	tm.AbortAll(flat)
	if flat.LoadW(40) != 10 || flat.LoadW(48) != 20 {
		t.Error("AbortAll did not restore both cores' writes")
	}
	if tm.Active(0) || tm.Active(1) {
		t.Error("transactions still active after AbortAll")
	}
}

func TestTMNonTransactionalAccessesIgnored(t *testing.T) {
	tm := NewTM(2)
	// No Begin: accesses must not record or conflict.
	tm.OnRead(0, 8)
	tm.OnWrite(1, 8, 0)
	if tm.Conflicts() != 0 {
		t.Error("non-transactional accesses conflicted")
	}
}

func TestSystemTMIntegration(t *testing.T) {
	s := sys4()
	s.TM.Begin(0, 0)
	s.TM.Begin(1, 1)
	s.Write(0, 0x500, 0, 1)
	s.Read(1, 0x500, 5)
	if !s.TM.Aborted(1) {
		t.Error("system Read did not feed TM conflict detection")
	}
	s.TM.AbortAll(s.Flat)
	if s.Flat.LoadW(0x500) != 0 {
		t.Error("TM rollback through system failed")
	}
}

func TestFlushAll(t *testing.T) {
	s := sys4()
	s.Write(0, 0x600, 0, 5)
	dirty := s.l1d[0].flushAll()
	if dirty != 1 {
		t.Errorf("flushAll dirty = %d, want 1", dirty)
	}
	if s.L1DState(0, 0x600) != "I" {
		t.Error("line still resident after flush")
	}
}

func TestL2BankingOverlapsDifferentBanks(t *testing.T) {
	cfg := DefaultConfig(4)
	// Neutralize bus serialization so the bank effect is observable on
	// same-cycle accesses.
	cfg.BusLat = 0
	// Two same-cycle L2 accesses: different banks overlap, same bank
	// serializes. Line-interleaved: consecutive lines land in consecutive
	// banks.
	s1 := NewSystem(cfg, NewFlat(1<<16))
	_, dA := s1.Read(0, 0x0, 0)  // bank 0
	_, dB := s1.Read(1, 0x40, 0) // bank 1 (next line)
	s2 := NewSystem(cfg, NewFlat(1<<16))
	_, dC := s2.Read(0, 0x0, 0)    // bank 0
	_, dD := s2.Read(1, 0x1000, 0) // 0x1000/64 = 64 -> bank 0 again
	gapDiff := dB - dA
	gapSame := dD - dC
	if gapSame <= gapDiff {
		t.Errorf("same-bank gap %d <= different-bank gap %d (banking has no effect)", gapSame, gapDiff)
	}
}

func TestL2SingleBankConfig(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.L2Banks = 1
	s := NewSystem(cfg, NewFlat(1<<16))
	_, d0 := s.Read(0, 0x0, 0)
	_, d1 := s.Read(1, 0x40, 0)
	if d1 <= d0 {
		t.Error("single-bank L2 did not serialize distinct lines")
	}
}

func TestMOESIRandomizedAgainstFunctionalModel(t *testing.T) {
	// Property: arbitrary interleavings of reads/writes by 4 cores always
	// return the functional store's current value and keep exactly one
	// writable copy (no two cores in M/E for one line).
	rng := func(s *uint64) uint64 { *s = *s*6364136223846793005 + 1; return *s >> 33 }
	seed := uint64(12345)
	sys := NewSystem(DefaultConfig(4), NewFlat(1<<12))
	shadow := map[int64]uint64{}
	now := int64(0)
	for step := 0; step < 3000; step++ {
		core := int(rng(&seed) % 4)
		addr := int64(rng(&seed)%64) * 8
		now += int64(rng(&seed) % 4)
		if rng(&seed)%2 == 0 {
			v, _ := sys.Read(core, addr, now)
			if want := shadow[addr]; v != want {
				t.Fatalf("step %d: read %d at %#x, want %d", step, v, addr, want)
			}
		} else {
			val := rng(&seed)
			sys.Write(core, addr, now, val)
			shadow[addr] = val
		}
		// Invariant: at most one core holds the line in M or E.
		writable := 0
		for c := 0; c < 4; c++ {
			switch sys.L1DState(c, addr) {
			case "M", "E":
				writable++
			}
		}
		if writable > 1 {
			t.Fatalf("step %d: %d writable copies of line %#x", step, writable, addr)
		}
	}
}

func TestBusTransactionsCounted(t *testing.T) {
	s := sys4()
	before := s.St.BusTransactions
	s.Read(0, 0x7000, 0)
	if s.St.BusTransactions != before+1 {
		t.Errorf("bus transactions = %d, want %d", s.St.BusTransactions, before+1)
	}
}
