package mem

import "testing"

// BenchmarkSystemReadWrite drives the coherent memory system with a mix of
// core-local streaming writes and cross-core reads — the access pattern the
// simulator's hot loop generates (tag lookup, MOESI transitions, snoops).
func BenchmarkSystemReadWrite(b *testing.B) {
	const cores = 4
	flat := NewFlat(1 << 16)
	s := NewSystem(DefaultConfig(cores), flat)
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := int64(i%4096) * 8
		c := i % cores
		now = s.Write(c, addr, now, uint64(i))
		_, now = s.Read((c+1)%cores, addr, now)
	}
}

// BenchmarkCacheFind isolates the tag-store lookup that sits on the
// critical path of every simulated access.
func BenchmarkCacheFind(b *testing.B) {
	c := newCache(CacheCfg{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, HitLat: 1})
	for a := int64(0); a < 32<<10; a += 64 {
		c.fill(a, shared)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx := c.find(int64(i%512) * 64); idx >= 0 {
			c.touchIdx(idx)
		}
	}
}

// BenchmarkTMTransaction measures one begin/access/commit transaction
// round trip, the unit of work of every speculative DOALL iteration.
func BenchmarkTMTransaction(b *testing.B) {
	const cores = 2
	flat := NewFlat(1 << 12)
	tm := NewTM(cores)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % cores
		tm.Begin(c, c)
		addr := int64(c*2048 + (i%16)*8)
		tm.OnRead(c, addr)
		tm.OnWrite(c, addr, flat.LoadW(addr))
		flat.StoreW(addr, uint64(i))
		tm.Commit(c)
	}
}
