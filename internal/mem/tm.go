package mem

// Low-cost transactional memory for speculative execution of statistical
// DOALL loops (paper §3, citing Herlihy & Moss). Iteration chunks run as
// transactions, one per core; the hardware watches coherence traffic for
// cross-core memory dependences and rolls back memory state on violation.
// Register rollback is the compiler's job (it re-materializes live-ins when
// re-executing a chunk), exactly as in the paper.
//
// Conflict policy: chunks are ordered by the loop iterations they execute;
// the conflicting transaction with the *later* chunk order aborts, so the
// logically earliest iterations always make progress (forward progress is
// guaranteed — re-execution is serial in the worst case).

// txState tracks one core's active transaction.
type txState struct {
	active   bool
	order    int // chunk order for conflict arbitration
	readSet  map[int64]bool
	writeSet map[int64]bool
	undoAddr []int64
	undoVal  []uint64
	aborted  bool
}

// TM is the machine-wide transactional memory.
type TM struct {
	tx        []txState
	conflicts int64
}

// NewTM creates TM state for n cores.
func NewTM(n int) *TM {
	return &TM{tx: make([]txState, n)}
}

// Reset restores NewTM's initial state while keeping each core's
// read/write-set maps and undo-log backing arrays — the same allocations
// Begin recycles within a run are worth keeping across pooled-machine runs.
func (tm *TM) Reset() {
	tm.conflicts = 0
	for i := range tm.tx {
		t := &tm.tx[i]
		t.active, t.aborted = false, false
		t.order = 0
		if t.readSet != nil {
			clear(t.readSet)
			clear(t.writeSet)
		}
		t.undoAddr, t.undoVal = t.undoAddr[:0], t.undoVal[:0]
	}
}

// Begin starts a transaction on core with the given chunk order. The
// read/write-set maps and undo log are recycled across transactions on the
// same core (chunked DOALL loops begin one transaction per chunk, so fresh
// allocations here dominate the TM cost).
func (tm *TM) Begin(core, order int) {
	t := &tm.tx[core]
	if t.readSet == nil {
		t.readSet = make(map[int64]bool)
		t.writeSet = make(map[int64]bool)
	} else {
		clear(t.readSet)
		clear(t.writeSet)
	}
	t.active, t.aborted = true, false
	t.order = order
	t.undoAddr, t.undoVal = t.undoAddr[:0], t.undoVal[:0]
}

// Active reports whether core has a live transaction.
func (tm *TM) Active(core int) bool { return tm.tx[core].active }

// Aborted reports whether core's transaction has been marked for abort by a
// conflict.
func (tm *TM) Aborted(core int) bool { return tm.tx[core].aborted }

// Conflicts returns the total number of detected violations.
func (tm *TM) Conflicts() int64 { return tm.conflicts }

// OnRead records a transactional read and detects read-after-write
// conflicts with other active transactions.
func (tm *TM) OnRead(core int, addr int64) {
	t := &tm.tx[core]
	if !t.active || t.aborted {
		return
	}
	t.readSet[addr] = true
	for i := range tm.tx {
		o := &tm.tx[i]
		if i == core || !o.active || o.aborted {
			continue
		}
		if o.writeSet[addr] {
			tm.resolve(core, i)
		}
	}
}

// OnWrite records a transactional write (with the old value for rollback)
// and detects write-after-read / write-after-write conflicts.
func (tm *TM) OnWrite(core int, addr int64, old uint64) {
	t := &tm.tx[core]
	if !t.active || t.aborted {
		return
	}
	if !t.writeSet[addr] {
		t.writeSet[addr] = true
		t.undoAddr = append(t.undoAddr, addr)
		t.undoVal = append(t.undoVal, old)
	}
	for i := range tm.tx {
		o := &tm.tx[i]
		if i == core || !o.active || o.aborted {
			continue
		}
		if o.writeSet[addr] || o.readSet[addr] {
			tm.resolve(core, i)
		}
	}
}

// resolve aborts the later-ordered of two conflicting transactions.
func (tm *TM) resolve(a, b int) {
	tm.conflicts++
	if tm.tx[a].order >= tm.tx[b].order {
		tm.tx[a].aborted = true
	} else {
		tm.tx[b].aborted = true
	}
}

// Commit ends core's transaction, making its writes permanent. Returns
// false (and rolls back nothing) if the transaction was marked aborted —
// the caller must then roll back with Abort.
func (tm *TM) Commit(core int) bool {
	t := &tm.tx[core]
	if t.aborted {
		return false
	}
	t.active = false
	return true
}

// Abort rolls back core's transactional writes in reverse order and ends
// the transaction.
func (tm *TM) Abort(core int, flat *Flat) {
	t := &tm.tx[core]
	for i := len(t.undoAddr) - 1; i >= 0; i-- {
		flat.StoreW(t.undoAddr[i], t.undoVal[i])
	}
	t.active, t.aborted = false, false
}

// AbortAll rolls back every active transaction; used when a violation
// forces serial re-execution of a chunked loop.
func (tm *TM) AbortAll(flat *Flat) {
	for i := range tm.tx {
		if tm.tx[i].active {
			tm.Abort(i, flat)
		}
	}
}

// AnyAborted reports whether any active transaction is marked aborted.
func (tm *TM) AnyAborted() bool {
	for i := range tm.tx {
		if tm.tx[i].active && tm.tx[i].aborted {
			return true
		}
	}
	return false
}
