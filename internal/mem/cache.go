package mem

// Set-associative cache with LRU replacement. The caches in this model are
// timing-and-coherence only: data lives in the functional backing store
// (Flat); the caches track tags and MOESI states to produce latencies,
// coherence traffic, and the conflict signals the transactional memory and
// the stall accounting need.

// lineState is a MOESI state.
type lineState uint8

// MOESI states. Plain (non-coherent) caches use only invalid/valid(=shared)
// plus the dirty bit.
const (
	invalid lineState = iota
	shared
	exclusive
	owned
	modified
)

func (s lineState) String() string {
	switch s {
	case invalid:
		return "I"
	case shared:
		return "S"
	case exclusive:
		return "E"
	case owned:
		return "O"
	case modified:
		return "M"
	}
	return "?"
}

type line struct {
	tag   int64
	state lineState
	lru   int64
}

// CacheCfg sizes one cache.
type CacheCfg struct {
	SizeBytes int64
	Assoc     int
	LineBytes int64
	HitLat    int64
}

// cache is the tag store.
type cache struct {
	cfg     CacheCfg
	sets    [][]line
	numSets int64
	tick    int64
}

func newCache(cfg CacheCfg) *cache {
	numSets := cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Assoc))
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]line, numSets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &cache{cfg: cfg, sets: sets, numSets: numSets}
}

func (c *cache) index(addr int64) (set int64, tag int64) {
	lineAddr := addr / c.cfg.LineBytes
	return lineAddr % c.numSets, lineAddr / c.numSets
}

// lookup returns the way holding addr, or -1.
func (c *cache) lookup(addr int64) int {
	set, tag := c.index(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.state != invalid && l.tag == tag {
			return w
		}
	}
	return -1
}

// touch refreshes LRU for a resident line.
func (c *cache) touch(addr int64, way int) {
	set, _ := c.index(addr)
	c.tick++
	c.sets[set][way].lru = c.tick
}

// stateOf returns the MOESI state of the line holding addr.
func (c *cache) stateOf(addr int64) lineState {
	w := c.lookup(addr)
	if w < 0 {
		return invalid
	}
	set, _ := c.index(addr)
	return c.sets[set][w].state
}

// setState changes the state of a resident line (no-op when absent).
func (c *cache) setState(addr int64, s lineState) {
	w := c.lookup(addr)
	if w < 0 {
		return
	}
	set, _ := c.index(addr)
	if s == invalid {
		c.sets[set][w].state = invalid
		return
	}
	c.sets[set][w].state = s
}

// fill inserts addr with the given state, evicting LRU; it returns the
// victim's state and line base address (victim.state == invalid when no
// writeback-relevant eviction happened).
func (c *cache) fill(addr int64, s lineState) (victimState lineState, victimAddr int64) {
	set, tag := c.index(addr)
	// Prefer an invalid way.
	victim := 0
	for w := range c.sets[set] {
		if c.sets[set][w].state == invalid {
			victim = w
			goto place
		}
	}
	for w := range c.sets[set] {
		if c.sets[set][w].lru < c.sets[set][victim].lru {
			victim = w
		}
	}
place:
	v := c.sets[set][victim]
	victimState = v.state
	victimAddr = (v.tag*c.numSets + set) * c.cfg.LineBytes
	c.tick++
	c.sets[set][victim] = line{tag: tag, state: s, lru: c.tick}
	return victimState, victimAddr
}

// flushAll invalidates every line, returning how many were dirty (M or O).
func (c *cache) flushAll() int {
	dirty := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			st := c.sets[s][w].state
			if st == modified || st == owned {
				dirty++
			}
			c.sets[s][w].state = invalid
		}
	}
	return dirty
}
