package mem

// Set-associative cache with LRU replacement. The caches in this model are
// timing-and-coherence only: data lives in the functional backing store
// (Flat); the caches track tags and MOESI states to produce latencies,
// coherence traffic, and the conflict signals the transactional memory and
// the stall accounting need.

// lineState is a MOESI state.
type lineState uint8

// MOESI states. Plain (non-coherent) caches use only invalid/valid(=shared)
// plus the dirty bit.
const (
	invalid lineState = iota
	shared
	exclusive
	owned
	modified
)

func (s lineState) String() string {
	switch s {
	case invalid:
		return "I"
	case shared:
		return "S"
	case exclusive:
		return "E"
	case owned:
		return "O"
	case modified:
		return "M"
	}
	return "?"
}

type line struct {
	tag   int64
	state lineState
	lru   int64
}

// CacheCfg sizes one cache.
type CacheCfg struct {
	SizeBytes int64
	Assoc     int
	LineBytes int64
	HitLat    int64
}

// cache is the tag store: one flat set-major array (numSets × assoc lines)
// so a set scan is a contiguous walk and a hit yields a flat line index the
// caller can reuse for state reads, state writes and LRU touches without
// re-scanning the set.
type cache struct {
	cfg     CacheCfg
	lines   []line
	numSets int64
	tick    int64
	// Shift/mask fast path for the usual power-of-two geometry (index is
	// on the critical path of every simulated memory access).
	pow2      bool
	lineShift uint
	setShift  uint
}

func newCache(cfg CacheCfg) *cache {
	numSets := cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Assoc))
	if numSets < 1 {
		numSets = 1
	}
	c := &cache{cfg: cfg, lines: make([]line, numSets*int64(cfg.Assoc)), numSets: numSets}
	if cfg.LineBytes&(cfg.LineBytes-1) == 0 && numSets&(numSets-1) == 0 {
		c.pow2 = true
		for v := cfg.LineBytes; v > 1; v >>= 1 {
			c.lineShift++
		}
		for v := numSets; v > 1; v >>= 1 {
			c.setShift++
		}
	}
	return c
}

func (c *cache) index(addr int64) (set int64, tag int64) {
	if c.pow2 {
		lineAddr := addr >> c.lineShift
		return lineAddr & (c.numSets - 1), lineAddr >> c.setShift
	}
	lineAddr := addr / c.cfg.LineBytes
	return lineAddr % c.numSets, lineAddr / c.numSets
}

// find returns the flat index of the line holding addr, or -1.
func (c *cache) find(addr int64) int {
	set, tag := c.index(addr)
	base := int(set) * c.cfg.Assoc
	for i := base; i < base+c.cfg.Assoc; i++ {
		l := &c.lines[i]
		if l.state != invalid && l.tag == tag {
			return i
		}
	}
	return -1
}

// touchIdx refreshes LRU for a resident line found by find.
func (c *cache) touchIdx(i int) {
	c.tick++
	c.lines[i].lru = c.tick
}

// stateOf returns the MOESI state of the line holding addr.
func (c *cache) stateOf(addr int64) lineState {
	i := c.find(addr)
	if i < 0 {
		return invalid
	}
	return c.lines[i].state
}

// fill inserts addr with the given state, evicting LRU; it returns the
// victim's state and line base address (victim.state == invalid when no
// writeback-relevant eviction happened).
func (c *cache) fill(addr int64, s lineState) (victimState lineState, victimAddr int64) {
	set, tag := c.index(addr)
	base := int(set) * c.cfg.Assoc
	// Prefer an invalid way.
	victim := base
	for i := base; i < base+c.cfg.Assoc; i++ {
		if c.lines[i].state == invalid {
			victim = i
			goto place
		}
	}
	for i := base; i < base+c.cfg.Assoc; i++ {
		if c.lines[i].lru < c.lines[victim].lru {
			victim = i
		}
	}
place:
	v := c.lines[victim]
	victimState = v.state
	victimAddr = (v.tag*c.numSets + set) * c.cfg.LineBytes
	c.tick++
	c.lines[victim] = line{tag: tag, state: s, lru: c.tick}
	return victimState, victimAddr
}

// reset restores a freshly constructed cache's state — every line invalid
// with zeroed tags and LRU stamps, clock rewound — while keeping the tag
// array allocation. Unlike flushAll it erases tags and LRU order too, so a
// reset cache is indistinguishable from a new one (machine pooling depends
// on that for byte-identical reruns).
func (c *cache) reset() {
	clear(c.lines)
	c.tick = 0
}

// flushAll invalidates every line, returning how many were dirty (M or O).
func (c *cache) flushAll() int {
	dirty := 0
	for i := range c.lines {
		st := c.lines[i].state
		if st == modified || st == owned {
			dirty++
		}
		c.lines[i].state = invalid
	}
	return dirty
}
