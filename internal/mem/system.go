package mem

import "voltron/internal/trace"

// The memory system: per-core private L1 I and D caches kept coherent by a
// bus-based snooping MOESI protocol, over a shared banked L2 and main
// memory — the organization the paper evaluates (§5.1). The model is
// timing-and-coherence: data lives in the functional Flat store; the tag
// pipeline produces access latencies, bus serialization and coherence
// transitions.

// Config holds the memory-system parameters (defaults per the paper).
type Config struct {
	Cores  int
	L1D    CacheCfg
	L1I    CacheCfg
	L2     CacheCfg
	L2Lat  int64 // L2 access latency
	MemLat int64 // main-memory latency
	BusLat int64 // per bus transaction (snoop/transfer) overhead
	// C2CLat is the latency of a cache-to-cache transfer on the bus.
	C2CLat int64
	// L2Banks is the number of independent L2 banks (the paper's L2 is
	// banked): accesses to different banks overlap, same-bank accesses
	// serialize.
	L2Banks int
}

// DefaultConfig returns the paper's memory parameters for n cores: 4 kB
// 2-way L1 I and D, shared 128 kB 4-way L2.
func DefaultConfig(n int) Config {
	return Config{
		Cores:   n,
		L1D:     CacheCfg{SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64, HitLat: 2},
		L1I:     CacheCfg{SizeBytes: 4 << 10, Assoc: 2, LineBytes: 64, HitLat: 1},
		L2:      CacheCfg{SizeBytes: 128 << 10, Assoc: 4, LineBytes: 64, HitLat: 10},
		L2Lat:   10,
		MemLat:  100,
		BusLat:  3,
		C2CLat:  8,
		L2Banks: 4,
	}
}

// Stats counts memory-system events.
type Stats struct {
	L1DHits, L1DMisses   []int64
	L1IHits, L1IMisses   []int64
	L2Hits, L2Misses     int64
	C2CTransfers         int64
	Invalidations        int64
	Writebacks           int64
	BusTransactions      int64
	UpgradeTransactions  int64
	TransactionConflicts int64
}

// System is the shared memory hierarchy of one simulated machine.
type System struct {
	Cfg  Config
	Flat *Flat
	TM   *TM
	// Tracer, when non-nil, receives one typed event per L1 miss (read,
	// write, fetch) with the fill window. Nil tracing costs one branch per
	// miss — never one per access.
	Tracer *trace.Tracer

	l1d []*cache
	l1i []*cache
	l2  *cache

	busFreeAt int64
	// bankFreeAt serializes same-bank L2 accesses.
	bankFreeAt []int64
	St         Stats
}

// NewSystem builds the hierarchy over a functional backing store.
func NewSystem(cfg Config, flat *Flat) *System {
	s := &System{Cfg: cfg, Flat: flat}
	for i := 0; i < cfg.Cores; i++ {
		s.l1d = append(s.l1d, newCache(cfg.L1D))
		s.l1i = append(s.l1i, newCache(cfg.L1I))
	}
	s.l2 = newCache(cfg.L2)
	banks := cfg.L2Banks
	if banks < 1 {
		banks = 1
	}
	s.bankFreeAt = make([]int64, banks)
	s.St.L1DHits = make([]int64, cfg.Cores)
	s.St.L1DMisses = make([]int64, cfg.Cores)
	s.St.L1IHits = make([]int64, cfg.Cores)
	s.St.L1IMisses = make([]int64, cfg.Cores)
	s.TM = NewTM(cfg.Cores)
	return s
}

// Reset reinstates NewSystem's initial state over a new backing store,
// reusing the allocated cache tag arrays, bank table and TM sets — this is
// Machine.Reset's path for pooled machines, so it must leave the hierarchy
// byte-identical to a fresh one. The per-core stat slices are reallocated
// rather than cleared in place: a RunResult holds a by-value copy of Stats
// whose slices alias these, and a prior run's retained copy must stay
// frozen after the machine is reused.
func (s *System) Reset(flat *Flat) {
	s.Flat = flat
	s.Tracer = nil
	for _, c := range s.l1d {
		c.reset()
	}
	for _, c := range s.l1i {
		c.reset()
	}
	s.l2.reset()
	s.busFreeAt = 0
	clear(s.bankFreeAt)
	s.St = Stats{
		L1DHits:   make([]int64, s.Cfg.Cores),
		L1DMisses: make([]int64, s.Cfg.Cores),
		L1IHits:   make([]int64, s.Cfg.Cores),
		L1IMisses: make([]int64, s.Cfg.Cores),
	}
	s.TM.Reset()
}

// acquireBus serializes bus transactions: the transaction starts no earlier
// than now and the bus being free, and holds the bus for dur cycles. It
// returns the completion time.
func (s *System) acquireBus(now, dur int64) int64 {
	start := now
	if s.busFreeAt > start {
		start = s.busFreeAt
	}
	s.busFreeAt = start + dur
	s.St.BusTransactions++
	return start + dur
}

// l2BankBusy is the per-access bank occupancy (pipelined banks).
const l2BankBusy = 2

// l2Access models a banked L2 lookup (and fill on miss); the request
// serializes behind earlier accesses to the same bank (line-interleaved
// banking), then pays the L2 latency and, on a miss, the memory latency.
func (s *System) l2Access(addr, start int64) int64 {
	bank := (addr / s.Cfg.L2.LineBytes) % int64(len(s.bankFreeAt))
	if s.bankFreeAt[bank] > start {
		start = s.bankFreeAt[bank]
	}
	var done int64
	if i := s.l2.find(addr); i >= 0 {
		s.l2.touchIdx(i)
		s.St.L2Hits++
		done = start + s.Cfg.L2Lat
	} else {
		s.St.L2Misses++
		vs, _ := s.l2.fill(addr, modified) // L2 lines: valid/dirty folded into M
		if vs == modified || vs == owned {
			s.St.Writebacks++
		}
		done = start + s.Cfg.L2Lat + s.Cfg.MemLat
	}
	// Banks are pipelined: each access occupies its bank for the array
	// access slot only, not the full latency.
	s.bankFreeAt[bank] = start + l2BankBusy
	return done
}

// Read performs a data read by core at time now; the returned doneAt is the
// cycle the value is available (>= now + L1 hit latency). The word value
// comes from the functional store.
func (s *System) Read(core int, addr, now int64) (val uint64, doneAt int64) {
	val = s.Flat.LoadW(addr)
	s.TM.OnRead(core, addr)
	c := s.l1d[core]
	if i := c.find(addr); i >= 0 {
		c.touchIdx(i)
		s.St.L1DHits[core]++
		return val, now + c.cfg.HitLat
	}
	s.St.L1DMisses[core]++
	// Bus transaction: snoop other L1s (one tag scan per snooped cache).
	t := s.acquireBus(now, s.Cfg.BusLat)
	ownerFound := false
	sharerFound := false
	for i, o := range s.l1d {
		if i == core {
			continue
		}
		li := o.find(addr)
		if li < 0 {
			continue
		}
		switch o.lines[li].state {
		case modified, owned, exclusive:
			ownerFound = true
			// Owner supplies the line and degrades: M/E -> O keeps the
			// dirty data supplier role (MOESI); E -> S would also be legal,
			// we use O uniformly for suppliers of non-clean lines.
			if o.lines[li].state == exclusive {
				o.lines[li].state = shared
			} else {
				o.lines[li].state = owned
			}
		case shared:
			sharerFound = true
		}
	}
	var fillState lineState
	switch {
	case ownerFound:
		s.St.C2CTransfers++
		t += s.Cfg.C2CLat
		fillState = shared
	case sharerFound:
		t = s.l2Access(addr, t)
		fillState = shared
	default:
		t = s.l2Access(addr, t)
		fillState = exclusive
	}
	s.fillL1D(core, addr, fillState)
	if s.Tracer != nil {
		s.Tracer.CacheMiss(now, core, trace.MissL1DRead, addr, t+c.cfg.HitLat-now)
	}
	return val, t + c.cfg.HitLat
}

// Write performs a data write by core at time now, returning the completion
// cycle. The functional store is updated immediately (program order within
// a core; cross-core ordering is the compiler's synchronization problem,
// exactly as on the real machine).
func (s *System) Write(core int, addr, now int64, val uint64) (doneAt int64) {
	s.TM.OnWrite(core, addr, s.Flat.LoadW(addr))
	s.Flat.StoreW(addr, val)
	c := s.l1d[core]
	if li := c.find(addr); li >= 0 {
		switch c.lines[li].state {
		case modified:
			c.touchIdx(li)
			s.St.L1DHits[core]++
			return now + c.cfg.HitLat
		case exclusive:
			c.lines[li].state = modified
			c.touchIdx(li)
			s.St.L1DHits[core]++
			return now + c.cfg.HitLat
		default: // shared, owned
			// Upgrade: invalidate other copies over the bus.
			t := s.acquireBus(now, s.Cfg.BusLat)
			s.St.UpgradeTransactions++
			s.invalidateOthers(core, addr)
			c.lines[li].state = modified
			c.touchIdx(li)
			s.St.L1DHits[core]++
			return t + c.cfg.HitLat
		}
	}
	// Write miss: read-for-ownership. One scan per snooped cache detects the
	// owner and invalidates in the same pass.
	s.St.L1DMisses[core]++
	t := s.acquireBus(now, s.Cfg.BusLat)
	owner := false
	for i, o := range s.l1d {
		if i == core {
			continue
		}
		li := o.find(addr)
		if li < 0 {
			continue
		}
		if st := o.lines[li].state; st == modified || st == owned || st == exclusive {
			owner = true
		}
		o.lines[li].state = invalid
		s.St.Invalidations++
	}
	if owner {
		s.St.C2CTransfers++
		t += s.Cfg.C2CLat
	} else {
		t = s.l2Access(addr, t)
	}
	s.fillL1D(core, addr, modified)
	if s.Tracer != nil {
		s.Tracer.CacheMiss(now, core, trace.MissL1DWrite, addr, t+c.cfg.HitLat-now)
	}
	return t + c.cfg.HitLat
}

func (s *System) invalidateOthers(core int, addr int64) {
	for i, o := range s.l1d {
		if i == core {
			continue
		}
		if li := o.find(addr); li >= 0 {
			o.lines[li].state = invalid
			s.St.Invalidations++
		}
	}
}

func (s *System) fillL1D(core int, addr int64, st lineState) {
	vs, _ := s.l1d[core].fill(addr, st)
	if vs == modified || vs == owned {
		s.St.Writebacks++
		// Writeback occupies the bus briefly; folded into BusLat of the
		// next transaction for simplicity.
	}
}

// Fetch models an instruction fetch by core at time now and returns the
// cycle the instruction is available.
func (s *System) Fetch(core int, addr, now int64) (doneAt int64) {
	c := s.l1i[core]
	if i := c.find(addr); i >= 0 {
		c.touchIdx(i)
		s.St.L1IHits[core]++
		return now + c.cfg.HitLat
	}
	s.St.L1IMisses[core]++
	t := s.l2Access(addr, now)
	c.fill(addr, shared)
	if s.Tracer != nil {
		s.Tracer.CacheMiss(now, core, trace.MissL1I, addr, t+c.cfg.HitLat-now)
	}
	return t + c.cfg.HitLat
}

// L1DState exposes a line's MOESI state for tests.
func (s *System) L1DState(core int, addr int64) string {
	return s.l1d[core].stateOf(addr).String()
}
