// Package mem implements the memory system of the Voltron machine: the flat
// backing store, the private L1 and shared banked L2 caches, the MOESI
// bus-snooping coherence protocol, and the low-cost transactional memory
// used for speculative execution of statistical DOALL loops.
package mem

import (
	"fmt"

	"voltron/internal/ir"
)

// Flat is the word-granular backing store shared by the reference
// interpreter and the simulator. Addresses are byte addresses; all accesses
// are 8-byte aligned words.
type Flat struct {
	words []uint64
}

// NewFlat allocates a zeroed memory image of the given word count.
func NewFlat(words int64) *Flat { return &Flat{words: make([]uint64, words)} }

// NewFlatFor allocates and initializes memory for a program's data layout.
func NewFlatFor(p *ir.Program) *Flat {
	m := NewFlat(p.MemWords())
	for addr, v := range p.Init {
		m.StoreW(addr, v)
	}
	return m
}

// Words returns the size of the image in words.
func (m *Flat) Words() int64 { return int64(len(m.words)) }

// LoadW reads the word at the byte address.
func (m *Flat) LoadW(addr int64) uint64 {
	m.check(addr)
	return m.words[addr>>3]
}

// StoreW writes the word at the byte address.
func (m *Flat) StoreW(addr int64, v uint64) {
	m.check(addr)
	m.words[addr>>3] = v
}

func (m *Flat) check(addr int64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned access at %#x", addr))
	}
	if addr < 0 || addr>>3 >= int64(len(m.words)) {
		panic(fmt.Sprintf("mem: access out of bounds at %#x (size %d words)", addr, len(m.words)))
	}
}

// Clone returns a deep copy (used for TM checkpoints and test oracles).
func (m *Flat) Clone() *Flat {
	w := make([]uint64, len(m.words))
	copy(w, m.words)
	return &Flat{words: w}
}

// Equal reports whether two images hold identical contents.
func (m *Flat) Equal(o *Flat) bool {
	if len(m.words) != len(o.words) {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// FirstDiff returns the byte address of the first differing word and the two
// values, or ok=false when equal. Used by test failure messages.
func (m *Flat) FirstDiff(o *Flat) (addr int64, a, b uint64, ok bool) {
	n := len(m.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if m.words[i] != o.words[i] {
			return int64(i) << 3, m.words[i], o.words[i], true
		}
	}
	if len(m.words) != len(o.words) {
		return int64(n) << 3, 0, 0, true
	}
	return 0, 0, 0, false
}
