package mem

// MissSim is a standalone functional cache used by the profiler to estimate
// per-operation L1 miss rates on a single-core run (the profile input to
// eBUG's likely-missing-load weights and to the strategy selector).
type MissSim struct {
	c *cache
}

// NewMissSim builds a miss simulator with the given cache geometry.
func NewMissSim(cfg CacheCfg) *MissSim { return &MissSim{c: newCache(cfg)} }

// Access touches addr and reports whether it hit.
func (m *MissSim) Access(addr int64) bool {
	if i := m.c.find(addr); i >= 0 {
		m.c.touchIdx(i)
		return true
	}
	m.c.fill(addr, shared)
	return false
}
