// Package spec defines the shared job specification of the API surface:
// what a compile-and-simulate job is (program × strategy × machine), how it
// normalizes to a canonical form, and how that form content-addresses
// results. The HTTP service decodes request bodies into it and the CLIs
// build their flag sets from the same defaults, so "strategy", "cores" and
// friends mean exactly the same thing on every surface.
//
// The v2 surface describes every program through one tagged union,
// {"program": {"kind": "bench"|"kernels"|"source", ...}}; the v1 spellings
// (top-level "bench", kind-less kernel programs) are still accepted,
// normalize onto the union — so both spellings share one cache entry — and
// are flagged for the deprecation response header.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/lang"
	"voltron/internal/trace"
	"voltron/internal/workload"
)

// SchemaVersion is the version stamped into job responses. It increments
// only on breaking changes to the request or response shape; additive
// fields do not bump it. Version 2 introduced the tagged program union and
// typed error bodies; every v1 request form is still accepted.
const SchemaVersion = 2

// Stable error codes of the typed error model. Every non-2xx body carries
// exactly one; clients branch on the code, never on the message text.
const (
	// ErrBadRequest: the body is not valid JSON for the request shape
	// (syntax error, unknown field, wrong type).
	ErrBadRequest = "bad_request"
	// ErrBadSpec: well-formed JSON whose field values are invalid or
	// inconsistent (out-of-range cores, conflicting program forms, bad
	// kernel parameters).
	ErrBadSpec = "bad_spec"
	// ErrUnknownBench: the named benchmark does not exist.
	ErrUnknownBench = "unknown_bench"
	// ErrUnknownStrategy: the strategy or selection-mode name is not one
	// of the documented set.
	ErrUnknownStrategy = "unknown_strategy"
	// ErrBadSource: a source program failed to parse, type-check or
	// lower; the error body carries the structured diagnostics.
	ErrBadSource = "bad_source"
	// ErrQueueFull: the admission layer shed the request (429 bodies).
	ErrQueueFull = "queue_full"
	// ErrTimeout: the job exceeded the server's request budget.
	ErrTimeout = "timeout"
	// ErrCanceled: the client went away before the job finished.
	ErrCanceled = "canceled"
	// ErrNotFound: the addressed resource (trace, figure) is not here.
	ErrNotFound = "not_found"
	// ErrInternal: the job failed for a reason that is not the client's.
	ErrInternal = "internal"
)

// Error is the typed failure of request validation: a stable code, a
// human-readable message, and — for source programs — the frontend's
// structured diagnostics. It is the error model of every API surface;
// the HTTP layer renders it directly into error bodies.
type Error struct {
	Code        string            `json:"code"`
	Message     string            `json:"error"`
	Diagnostics []lang.Diagnostic `json:"diagnostics,omitempty"`
}

func (e *Error) Error() string { return e.Message }

// errf builds a typed error with a formatted message.
func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Shared defaults across the CLIs and the service.
const (
	DefaultStrategy = "hybrid"
	DefaultCores    = 4
	// DefaultSelect is the default strategy-selection mode: full measured
	// selection (paper §4.2), the most faithful and the most expensive.
	DefaultSelect = "measured"
	// MaxCores bounds the machine width of one job. 64 cores is an 8×8
	// near-square mesh; the activity-indexed event scheduler keeps wide
	// mostly-idle machines cheap, so many-core jobs are first-class.
	MaxCores = 64
)

// JobRequest describes one compile-and-simulate job: a program (the tagged
// union), a parallelization strategy, a machine, and optional
// compiler/machine overrides. The zero value of every optional field means
// "the paper's default".
type JobRequest struct {
	// Bench is the deprecated v1 spelling of Program{Kind: "bench"}.
	// Normalize folds it into the union, so both spellings share one
	// canonical form and one cache entry.
	Bench string `json:"bench,omitempty"`
	// Program is what to compile and simulate: a benchmark reference, an
	// inline kernel composition, or a source-language program.
	Program *ProgramSpec `json:"program,omitempty"`
	// Strategy is serial|ilp|ftlp|llp|hybrid. Defaults to hybrid.
	Strategy string `json:"strategy,omitempty"`
	// Cores is the machine width. Defaults to 4.
	Cores int `json:"cores,omitempty"`
	// Baseline additionally simulates the serial single-core baseline and
	// reports the speedup over it.
	Baseline bool `json:"baseline,omitempty"`
	// Trace collects the structured timeline of the run; the response then
	// carries a trace URL and the stall-attribution report. Traced and
	// untraced runs of the same job are distinct cache entries (the flag is
	// part of the content address).
	Trace    bool            `json:"trace,omitempty"`
	Compiler CompilerOptions `json:"compiler,omitempty"`
	Machine  MachineOptions  `json:"machine,omitempty"`
}

// CompilerOptions exposes the compiler's threshold gates and ablation
// switches. Zero thresholds mean the paper defaults; negative disables the
// gate (compiler.NoThreshold).
type CompilerOptions struct {
	DSWPThreshold      float64 `json:"dswp_threshold,omitempty"`
	DOALLTripThreshold float64 `json:"doall_trip_threshold,omitempty"`
	MissStallThreshold float64 `json:"miss_stall_threshold,omitempty"`
	DisableEBUGWeights bool    `json:"disable_ebug_weights,omitempty"`
	ForcePredSend      bool    `json:"force_pred_send,omitempty"`
	// StaticSelection is the deprecated alias of select=static; Normalize
	// folds it into Select so both spellings share one cache entry.
	StaticSelection bool `json:"static_selection,omitempty"`
	// Select is the strategy-selection mode: measured|static|auto.
	// Defaults to measured.
	Select string `json:"select,omitempty"`
	// SelectThreshold is auto mode's classifier-confidence floor in [0, 1].
	// 0 means the compiler default; negative trusts every static pick.
	SelectThreshold float64 `json:"select_threshold,omitempty"`
}

// MachineOptions overrides core.DefaultConfig. Zero means the default.
type MachineOptions struct {
	RegionSyncLat int64 `json:"region_sync_lat,omitempty"`
	ModeSwitchLat int64 `json:"mode_switch_lat,omitempty"`
	QueueBaseLat  int64 `json:"queue_base_lat,omitempty"`
	QueueHopLat   int64 `json:"queue_hop_lat,omitempty"`
	// QueueCap sizes the per-(sender,receiver) CAM receive queue; a full
	// pair back-pressures its sender. -1 means unbounded.
	QueueCap int `json:"queue_cap,omitempty"`
	// MeshCols fixes the mesh column count (the mesh-shape ablation knob,
	// e.g. comparing the near-square default against a 4-column strip).
	// 0 means the near-square default; otherwise it must be in [4, cores]
	// (narrower meshes would break coupled row-group adjacency).
	MeshCols int `json:"mesh_cols,omitempty"`
}

// Program kinds of the tagged union.
const (
	// KindBench references a built-in benchmark by name.
	KindBench = "bench"
	// KindKernels composes the workload package's kernel generators.
	KindKernels = "kernels"
	// KindSource is a program in the source language (see internal/lang),
	// compiled by the frontend before strategy selection.
	KindSource = "source"
)

// ProgramSpec is the tagged program union: exactly the fields of one kind
// may be set. A spec with no kind and kernels present is the deprecated v1
// kernel-program form; Normalize infers KindKernels and flags it.
type ProgramSpec struct {
	// Kind discriminates the union: bench|kernels|source.
	Kind string `json:"kind,omitempty"`
	// Bench names a built-in benchmark (kind "bench"; see GET
	// /v1/benchmarks).
	Bench string `json:"bench,omitempty"`
	// Name names a kernels or source program (regions and arrays are
	// prefixed with it). Defaults to "inline".
	Name string `json:"name,omitempty"`
	// Kernels composes kernel generators (kind "kernels").
	Kernels []KernelSpec `json:"kernels,omitempty"`
	// Source is the program text (kind "source").
	Source string `json:"source,omitempty"`
	// Inputs override source-program parameter defaults by name.
	// Normalize prunes entries equal to the declared default, so spelled
	// and omitted defaults content-address identically.
	Inputs map[string]int64 `json:"inputs,omitempty"`
}

// KernelSpec is one region-generating kernel invocation. Unused parameters
// for a kind must be zero; zero used parameters take that kind's default.
type KernelSpec struct {
	// Kind is one of doall-map, doall-mapf, doall-reduce, strands,
	// multichase, pipeline, ilp-loop, ilp-butterfly, serial-chain, branchy.
	Kind string `json:"kind"`
	// Name prefixes the kernel's regions and arrays.
	Name    string `json:"name"`
	N       int64  `json:"n,omitempty"`       // element / trip count
	Work    int    `json:"work,omitempty"`    // per-element work factor
	Chains  int    `json:"chains,omitempty"`  // multichase / ilp-loop chains
	Depth   int    `json:"depth,omitempty"`   // ilp-loop chain depth
	Table   int64  `json:"table,omitempty"`   // pointer-table words
	Steps   int64  `json:"steps,omitempty"`   // multichase steps
	Lanes   int    `json:"lanes,omitempty"`   // ilp-butterfly lanes
	Levels  int    `json:"levels,omitempty"`  // ilp-butterfly levels
	Diverge int64  `json:"diverge,omitempty"` // strands divergence point
}

// Job size bounds: the service simulates whatever it is asked to, so inline
// specs are capped to keep a single job's cost within the request timeout.
const (
	maxKernels   = 8
	maxElems     = 1 << 16
	maxWorkParam = 64
)

// kernelKinds maps a spec kind to its defaults-filling normalizer and its
// generator. Normalization happens before hashing so that spelled-out
// defaults and omitted defaults are the same cache entry.
var kernelKinds = map[string]struct {
	norm func(*KernelSpec)
	gen  func(*ir.Program, KernelSpec)
}{
	"doall-map": {
		func(k *KernelSpec) { defInt64(&k.N, 256); defInt(&k.Work, 4) },
		func(p *ir.Program, k KernelSpec) { workload.DoallMap(p, k.Name, k.N, k.Work) },
	},
	"doall-mapf": {
		func(k *KernelSpec) { defInt64(&k.N, 256); defInt(&k.Work, 4) },
		func(p *ir.Program, k KernelSpec) { workload.DoallMapF(p, k.Name, k.N, k.Work) },
	},
	"doall-reduce": {
		func(k *KernelSpec) { defInt64(&k.N, 256) },
		func(p *ir.Program, k KernelSpec) { workload.DoallReduce(p, k.Name, k.N) },
	},
	"strands": {
		func(k *KernelSpec) { defInt64(&k.N, 512); defInt64(&k.Diverge, 400) },
		func(p *ir.Program, k KernelSpec) { workload.Strands(p, k.Name, k.N, k.Diverge) },
	},
	"multichase": {
		func(k *KernelSpec) { defInt(&k.Chains, 3); defInt64(&k.Table, 1024); defInt64(&k.Steps, 128) },
		func(p *ir.Program, k KernelSpec) { workload.MultiChase(p, k.Name, k.Chains, k.Table, k.Steps) },
	},
	"pipeline": {
		func(k *KernelSpec) { defInt64(&k.Table, 1024); defInt64(&k.N, 128); defInt(&k.Work, 4) },
		func(p *ir.Program, k KernelSpec) { workload.Pipeline(p, k.Name, k.Table, k.N, k.Work) },
	},
	"ilp-loop": {
		func(k *KernelSpec) { defInt64(&k.N, 64); defInt(&k.Chains, 4); defInt(&k.Depth, 4) },
		func(p *ir.Program, k KernelSpec) { workload.IlpLoop(p, k.Name, k.N, k.Chains, k.Depth) },
	},
	"ilp-butterfly": {
		func(k *KernelSpec) { defInt64(&k.N, 48); defInt(&k.Lanes, 8); defInt(&k.Levels, 4) },
		func(p *ir.Program, k KernelSpec) { workload.IlpButterfly(p, k.Name, k.N, k.Lanes, k.Levels) },
	},
	"serial-chain": {
		func(k *KernelSpec) { defInt64(&k.N, 64) },
		func(p *ir.Program, k KernelSpec) { workload.SerialChain(p, k.Name, k.N) },
	},
	"branchy": {
		func(k *KernelSpec) { defInt64(&k.N, 256) },
		func(p *ir.Program, k KernelSpec) { workload.Branchy(p, k.Name, k.N) },
	},
}

func defInt64(v *int64, def int64) {
	if *v == 0 {
		*v = def
	}
}

func defInt(v *int, def int) {
	if *v == 0 {
		*v = def
	}
}

// Normalize validates the request and fills every defaultable field in
// place, so that two requests meaning the same job marshal to the same
// canonical bytes. The deprecated v1 spellings — a top-level bench name, a
// kind-less kernel program — are folded onto the tagged union here, so
// every downstream stage (keys, caches, the simulate pipeline) sees one
// form. known reports whether a benchmark name exists. Errors are *Error
// with a stable code.
func (r *JobRequest) Normalize(known func(bench string) bool) error {
	if r.Bench != "" {
		// v1 spelling: fold into the union so both content-address alike.
		if r.Program != nil {
			return errf(ErrBadSpec, "bench and program are mutually exclusive (put the benchmark inside the program union)")
		}
		r.Program = &ProgramSpec{Kind: KindBench, Bench: r.Bench}
		r.Bench = ""
	}
	if r.Program == nil {
		return errf(ErrBadSpec, "a program is required")
	}
	if err := r.Program.normalize(known); err != nil {
		return err
	}
	if r.Strategy == "" {
		r.Strategy = DefaultStrategy
	}
	if _, ok := StrategyFor(r.Strategy); !ok {
		return errf(ErrUnknownStrategy, "unknown strategy %q (want %s)", r.Strategy, strategyNames())
	}
	if r.Cores == 0 {
		r.Cores = DefaultCores
	}
	if r.Cores < 1 || r.Cores > MaxCores {
		return errf(ErrBadSpec, "cores = %d out of range [1, %d]", r.Cores, MaxCores)
	}
	if mc := r.Machine.MeshCols; mc != 0 && (mc < 4 || mc > r.Cores) {
		return errf(ErrBadSpec, "mesh_cols = %d out of range (0 for the near-square default, or [4, cores])", mc)
	}
	if r.Compiler.StaticSelection {
		// Deprecated alias: fold into the canonical field so both spellings
		// normalize — and content-address — identically.
		if r.Compiler.Select == "" {
			r.Compiler.Select = "static"
		}
		r.Compiler.StaticSelection = false
	}
	if r.Compiler.Select == "" {
		r.Compiler.Select = DefaultSelect
	}
	if _, ok := SelectionFor(r.Compiler.Select); !ok {
		return errf(ErrUnknownStrategy, "unknown selection mode %q (want %s)", r.Compiler.Select, selectNames())
	}
	if r.Compiler.SelectThreshold > 1 {
		return errf(ErrBadSpec, "select_threshold = %v out of range (confidence is in [0, 1]; negative disables the gate)",
			r.Compiler.SelectThreshold)
	}
	if r.Compiler.SelectThreshold < 0 {
		r.Compiler.SelectThreshold = -1 // canonical "no gate"
	}
	return nil
}

// normalize canonicalizes one program union member and validates it as far
// as the frontend can without simulating (source programs parse, type-check
// and constant-fold here).
func (p *ProgramSpec) normalize(known func(bench string) bool) error {
	if p.Kind == "" {
		// v1 kernel programs had no kind; infer it so the legacy spelling
		// and the tagged spelling share one canonical form. DecodeJob flags
		// the omission for the deprecation header.
		if len(p.Kernels) == 0 && p.Source == "" && p.Bench == "" {
			return errf(ErrBadSpec, `program.kind is required (one of "bench", "kernels", "source")`)
		}
		switch {
		case len(p.Kernels) > 0:
			p.Kind = KindKernels
		case p.Source != "":
			p.Kind = KindSource
		default:
			p.Kind = KindBench
		}
	}
	if len(p.Name) > 64 {
		return errf(ErrBadSpec, "program name must be at most 64 characters")
	}
	switch p.Kind {
	case KindBench:
		if p.Bench == "" {
			return errf(ErrBadSpec, `a "bench" program needs the benchmark name in "bench"`)
		}
		if p.Name != "" || len(p.Kernels) > 0 || p.Source != "" || len(p.Inputs) > 0 {
			return errf(ErrBadSpec, `a "bench" program carries only the benchmark name`)
		}
		if !known(p.Bench) {
			return errf(ErrUnknownBench, "unknown benchmark %q", p.Bench)
		}
		return nil
	case KindKernels:
		if p.Bench != "" || p.Source != "" || len(p.Inputs) > 0 {
			return errf(ErrBadSpec, `a "kernels" program carries only name and kernels`)
		}
		return p.normalizeKernels()
	case KindSource:
		if p.Bench != "" || len(p.Kernels) > 0 {
			return errf(ErrBadSpec, `a "source" program carries only name, source and inputs`)
		}
		if p.Name == "" {
			p.Name = "inline"
		}
		return p.normalizeSource()
	}
	return errf(ErrBadSpec, `unknown program kind %q (want "bench", "kernels" or "source")`, p.Kind)
}

func (p *ProgramSpec) normalizeKernels() error {
	if p.Name == "" {
		p.Name = "inline"
	}
	if len(p.Kernels) == 0 || len(p.Kernels) > maxKernels {
		return errf(ErrBadSpec, "program must have 1..%d kernels", maxKernels)
	}
	names := map[string]bool{}
	for i := range p.Kernels {
		k := &p.Kernels[i]
		kind, ok := kernelKinds[k.Kind]
		if !ok {
			return errf(ErrBadSpec, "kernel %d: unknown kind %q", i, k.Kind)
		}
		if k.Name == "" {
			k.Name = fmt.Sprintf("k%d", i)
		}
		if len(k.Name) > 64 {
			return errf(ErrBadSpec, "kernel %d: name must be at most 64 characters", i)
		}
		if names[k.Name] {
			return errf(ErrBadSpec, "kernel %d: duplicate name %q", i, k.Name)
		}
		names[k.Name] = true
		kind.norm(k)
		for _, v := range []int64{k.N, k.Table, k.Steps, k.Diverge} {
			if v < 0 || v > maxElems {
				return errf(ErrBadSpec, "kernel %q: size parameter %d out of range [0, %d]", k.Name, v, maxElems)
			}
		}
		for _, v := range []int{k.Work, k.Chains, k.Depth, k.Lanes, k.Levels} {
			if v < 0 || v > maxWorkParam {
				return errf(ErrBadSpec, "kernel %q: work parameter %d out of range [0, %d]", k.Name, v, maxWorkParam)
			}
		}
	}
	return nil
}

// normalizeSource runs the language frontend (parse, type-check, bounds)
// over the program text, turning its diagnostics into the typed error, and
// prunes inputs that restate a parameter's declared default so spelled and
// omitted defaults share one canonical form (and one cache entry).
func (p *ProgramSpec) normalizeSource() error {
	lp, err := lang.Frontend(p.Source, p.Inputs)
	if err != nil {
		if le, ok := err.(*lang.Error); ok {
			return &Error{Code: ErrBadSource, Message: le.Error(), Diagnostics: le.Diags}
		}
		return errf(ErrBadSource, "%v", err)
	}
	defaults := lp.Defaults()
	for name, v := range p.Inputs {
		if def, ok := defaults[name]; ok && def == v {
			delete(p.Inputs, name)
		}
	}
	if len(p.Inputs) == 0 {
		p.Inputs = nil
	}
	return nil
}

// Build materializes a normalized kernels or source spec as an IR program.
// Bench programs resolve through the server's suite instead (they are
// pre-built and pre-profiled there), so Build rejects them.
func (p *ProgramSpec) Build() (*ir.Program, error) {
	switch p.Kind {
	case KindSource:
		prog, err := lang.Compile(p.Source, p.Name, p.Inputs)
		if err != nil {
			if le, ok := err.(*lang.Error); ok {
				return nil, &Error{Code: ErrBadSource, Message: le.Error(), Diagnostics: le.Diags}
			}
			return nil, errf(ErrBadSource, "%v", err)
		}
		return prog, nil
	case KindKernels, "":
		prog := ir.NewProgram(p.Name)
		for _, k := range p.Kernels {
			kernelKinds[k.Kind].gen(prog, k)
		}
		if err := prog.Verify(); err != nil {
			return nil, fmt.Errorf("program %q: %w", p.Name, err)
		}
		return prog, nil
	}
	return nil, fmt.Errorf("program kind %q does not build inline", p.Kind)
}

// Key derives the job's content address: the SHA-256 of its canonical JSON
// encoding (normalized spec, so every defaultable field is explicit).
// Fields that cannot change the result (worker counts, timeouts) are not
// part of the request and so never fragment the cache.
func (r *JobRequest) Key() string {
	b, err := json.Marshal(r)
	if err != nil { // canonical structs always marshal
		panic(fmt.Sprintf("canonical job marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// RingKeyOf derives the cluster shard key from a v1 content address
// ("sha256:<hex>"): the bare digest. A multi-replica fleet places content on
// its consistent-hash ring by this key. The job result and its trace blob
// share one address (the trace is served under the job's key), so both land
// on the same owner — a replica that forwarded a job forwards the follow-up
// trace lookup to the same peer.
func RingKeyOf(contentKey string) string {
	return strings.TrimPrefix(contentKey, "sha256:")
}

// RingKey is the shard key a multi-replica fleet uses to place this
// (normalized) job on its consistent-hash ring: RingKeyOf of the run
// content address.
func (r *JobRequest) RingKey() string { return RingKeyOf(r.Key()) }

// compileIdentity is the slice of a job that determines the compiled
// artifact: what to compile (the normalized program union — Normalize has
// already folded the deprecated top-level bench into it), how (strategy
// and compiler gates) and for how many cores. Machine latencies, the trace
// flag and the baseline flag cannot change compiler output, so they are
// deliberately absent — jobs differing only in those share one artifact.
type compileIdentity struct {
	Program  *ProgramSpec    `json:"program,omitempty"`
	Strategy string          `json:"strategy"`
	Cores    int             `json:"cores"`
	Compiler CompilerOptions `json:"compiler"`
}

// CompileKey derives the compile-stage content address of a normalized
// request: the SHA-256 of the compile-relevant fields only. Requests with
// equal CompileKey — trace variants, machine-latency ablations, a job and
// the same program's baseline run at serial/1 — compile to the same
// artifact, so a server can cache and share one *core.CompiledProgram
// across them. Key remains the full per-run address (it additionally hashes
// trace, baseline and machine options).
func (r *JobRequest) CompileKey() string {
	b, err := json.Marshal(compileIdentity{
		Program:  r.Program,
		Strategy: r.Strategy,
		Cores:    r.Cores,
		Compiler: r.Compiler,
	})
	if err != nil { // canonical structs always marshal
		panic(fmt.Sprintf("canonical compile-identity marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// MachineKey identifies the machine configuration a normalized request runs
// on — the pooling key for warm-machine reuse. Jobs with equal MachineKey
// run on interchangeable machines (one pooled core.Machine serves them all
// after a Reset); program, strategy, trace and baseline are not part of it
// because they select what runs, not the machine it runs on.
func (r *JobRequest) MachineKey() string {
	return fmt.Sprintf("cores=%d rs=%d ms=%d qb=%d qh=%d qc=%d mesh=%d",
		r.Cores, r.Machine.RegionSyncLat, r.Machine.ModeSwitchLat,
		r.Machine.QueueBaseLat, r.Machine.QueueHopLat, r.Machine.QueueCap,
		r.Machine.MeshCols)
}

// CompilerOpts lowers the request to compiler.Options (Workers is the
// caller's choice, not the request's: it cannot affect results).
func (r *JobRequest) CompilerOpts() compiler.Options {
	s, _ := StrategyFor(r.Strategy)
	sel, _ := SelectionFor(r.Compiler.Select) // "" maps to measured
	return compiler.Options{
		Cores:              r.Cores,
		Strategy:           s,
		DSWPThreshold:      r.Compiler.DSWPThreshold,
		DOALLTripThreshold: r.Compiler.DOALLTripThreshold,
		MissStallThreshold: r.Compiler.MissStallThreshold,
		DisableEBUGWeights: r.Compiler.DisableEBUGWeights,
		ForcePredSend:      r.Compiler.ForcePredSend,
		StaticSelection:    r.Compiler.StaticSelection,
		Selection:          sel,
		SelectThreshold:    r.Compiler.SelectThreshold,
		Workers:            1,
	}
}

// MachineConfig lowers the request to a core.Config. The tracer, when
// non-nil, is attached to the machine.
func (r *JobRequest) MachineConfig(tr *trace.Tracer) core.Config {
	cfg := core.DefaultConfig(r.Cores)
	if r.Machine.RegionSyncLat > 0 {
		cfg.RegionSyncLat = r.Machine.RegionSyncLat
	}
	if r.Machine.ModeSwitchLat > 0 {
		cfg.ModeSwitchLat = r.Machine.ModeSwitchLat
	}
	cfg.QueueBaseLat = r.Machine.QueueBaseLat
	cfg.QueueHopLat = r.Machine.QueueHopLat
	cfg.QueueCap = r.Machine.QueueCap
	cfg.MeshCols = r.Machine.MeshCols
	cfg.Tracer = tr
	return cfg
}

// jobAliases accepts the v1 wire form plus deprecated field aliases from
// the pre-v1 surface. Alias fields fill their successors only when the
// canonical field is absent.
type jobAliases struct {
	JobRequest
	// Benchmark is the deprecated alias of "bench".
	Benchmark string `json:"benchmark,omitempty"`
	// Mode is the deprecated alias of "strategy".
	Mode string `json:"mode,omitempty"`
}

// DecodeJob decodes one JSON job request, accepting (but flagging) the
// deprecated spellings: the field aliases "benchmark" (for "bench") and
// "mode" (for "strategy"), the v1 top-level "bench" (now the bench-kind
// member of the program union), and a kind-less kernel program (v1 had no
// tag). Unknown fields are rejected. The returned slice names the
// deprecated spellings the request used, for a deprecation response header;
// Normalize canonicalizes them away so every spelling shares one content
// address.
func DecodeJob(r io.Reader) (*JobRequest, []string, error) {
	var in jobAliases
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, nil, err
	}
	var deprecated []string
	if in.Benchmark != "" {
		deprecated = append(deprecated, "benchmark")
		if in.Bench == "" {
			in.Bench = in.Benchmark
		}
	}
	if in.Mode != "" {
		deprecated = append(deprecated, "mode")
		if in.Strategy == "" {
			in.Strategy = in.Mode
		}
	}
	if in.Bench != "" {
		deprecated = append(deprecated, "bench")
	}
	if in.Program != nil && in.Program.Kind == "" {
		deprecated = append(deprecated, "program.kind")
	}
	req := in.JobRequest
	return &req, deprecated, nil
}

// StrategyInfo describes one parallelization strategy of the API surface.
type StrategyInfo struct {
	// Code is the stable machine-readable identifier clients key on; it
	// doubles as the wire value for the job request's "strategy" field.
	Code        string `json:"code"`
	Name        string `json:"name"`
	Description string `json:"description"`
	// Mode is the execution mode the strategy's regions run in: coupled,
	// decoupled, or mixed (per-region selection).
	Mode string `json:"mode"`
}

// strategyTable orders the strategies as documented (serial first, hybrid
// last); lookups go through the derived map.
var strategyTable = []struct {
	info StrategyInfo
	s    compiler.Strategy
}{
	{StrategyInfo{"serial", "serial", "single-core serial schedule (the speedup baseline)", "coupled"}, compiler.Serial},
	{StrategyInfo{"ilp", "ilp", "force coupled ILP: VLIW-style scheduling across cores in lock-step", "coupled"}, compiler.ForceILP},
	{StrategyInfo{"ftlp", "ftlp", "force fine-grain TLP: DSWP pipelines over the decoupled queues", "decoupled"}, compiler.ForceFTLP},
	{StrategyInfo{"llp", "llp", "force loop-level parallelism: DOALL chunks under transactional memory", "decoupled"}, compiler.ForceLLP},
	{StrategyInfo{"hybrid", "hybrid", "per-region measured selection among the above (the paper's result)", "mixed"}, compiler.Hybrid},
}

// Strategies lists the v1 strategies in documentation order.
func Strategies() []StrategyInfo {
	out := make([]StrategyInfo, len(strategyTable))
	for i, e := range strategyTable {
		out[i] = e.info
	}
	return out
}

// StrategyFor resolves a strategy name.
func StrategyFor(name string) (compiler.Strategy, bool) {
	for _, e := range strategyTable {
		if e.info.Name == name {
			return e.s, true
		}
	}
	return 0, false
}

// strategyNames renders the strategy set for usage and error text.
func strategyNames() string {
	names := make([]string, len(strategyTable))
	for i, e := range strategyTable {
		names[i] = e.info.Name
	}
	return strings.Join(names, "|")
}

// selectTable orders the selection modes as documented.
var selectTable = []struct {
	name string
	m    compiler.SelectionMode
}{
	{"measured", compiler.SelectMeasured},
	{"static", compiler.SelectStatic},
	{"auto", compiler.SelectAuto},
}

// SelectionFor resolves a selection-mode name.
func SelectionFor(name string) (compiler.SelectionMode, bool) {
	for _, e := range selectTable {
		if e.name == name {
			return e.m, true
		}
	}
	return 0, false
}

// selectNames renders the selection-mode set for usage and error text.
func selectNames() string {
	names := make([]string, len(selectTable))
	for i, e := range selectTable {
		names[i] = e.name
	}
	return strings.Join(names, "|")
}

// StrategyFlag binds the shared -strategy flag.
func StrategyFlag(fs *flag.FlagSet) *string {
	return fs.String("strategy", DefaultStrategy, strategyNames())
}

// CoresFlag binds the shared -cores flag.
func CoresFlag(fs *flag.FlagSet) *int {
	return fs.Int("cores", DefaultCores,
		fmt.Sprintf("number of cores (1..%d; wide machines use a near-square mesh)", MaxCores))
}

// ValidateCores range-checks a -cores flag value against the same bound
// Normalize enforces for HTTP jobs.
func ValidateCores(n int) error {
	if n < 1 || n > MaxCores {
		return fmt.Errorf("-cores = %d out of range [1, %d]", n, MaxCores)
	}
	return nil
}

// SelectFlag binds the shared -select flag (strategy-selection mode).
func SelectFlag(fs *flag.FlagSet) *string {
	return fs.String("select", DefaultSelect, "strategy selection mode: "+selectNames())
}

// SelectThresholdFlag binds the shared -select-threshold flag.
func SelectThresholdFlag(fs *flag.FlagSet) *float64 {
	return fs.Float64("select-threshold", 0,
		"auto-mode confidence floor in [0, 1] (0 = compiler default, negative = trust every static pick)")
}
