package spec

import (
	"fmt"
	"testing"
)

// normalized builds a normalized job request for key tests.
func normalized(t *testing.T, r *JobRequest) *JobRequest {
	t.Helper()
	if err := r.Normalize(func(string) bool { return true }); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCompileKeySplit pins the two-level content address: every strategy ×
// cores × trace combination keys distinctly at the run level, while the
// compile key collapses exactly the combinations that share a compiled
// artifact (same strategy and cores, any trace flag).
func TestCompileKeySplit(t *testing.T) {
	type variant struct {
		strategy string
		cores    int
		trace    bool
	}
	var variants []variant
	for _, si := range Strategies() {
		for _, cores := range []int{1, 2, 4} {
			for _, tr := range []bool{false, true} {
				variants = append(variants, variant{si.Name, cores, tr})
			}
		}
	}
	runKeys := map[string]variant{}
	compileKeys := map[string]string{} // compile key -> strategy/cores it stands for
	for _, v := range variants {
		r := normalized(t, &JobRequest{Bench: "x", Strategy: v.strategy, Cores: v.cores, Trace: v.trace})
		rk, ck := r.Key(), r.CompileKey()
		if prev, dup := runKeys[rk]; dup {
			t.Errorf("run key collision: %+v and %+v", prev, v)
		}
		runKeys[rk] = v
		ident := fmt.Sprintf("%s/%d", v.strategy, v.cores)
		if prev, ok := compileKeys[ck]; ok {
			if prev != ident {
				t.Errorf("compile key collision: %s and %s share a key", prev, ident)
			}
		} else {
			compileKeys[ck] = ident
		}
	}
	// 5 strategies × 3 core counts compile distinctly; the trace axis folds.
	if want := len(Strategies()) * 3; len(compileKeys) != want {
		t.Errorf("got %d compile keys, want %d (one per strategy × cores)", len(compileKeys), want)
	}
	if want := len(variants); len(runKeys) != want {
		t.Errorf("got %d run keys, want %d (all variants distinct)", len(runKeys), want)
	}
}

// TestCompileKeyIgnoresRunOnlyFields: machine latencies, baseline and trace
// cannot change compiler output, so they must not fragment the artifact
// cache; compiler gates must.
func TestCompileKeyIgnoresRunOnlyFields(t *testing.T) {
	base := normalized(t, &JobRequest{Bench: "x"})
	sameArtifact := []*JobRequest{
		{Bench: "x", Trace: true},
		{Bench: "x", Baseline: true},
		{Bench: "x", Machine: MachineOptions{RegionSyncLat: 9, QueueBaseLat: 7, QueueCap: -1}},
		// The mesh-shape knob changes the machine, not the compiled artifact
		// (the compiler estimates latencies against the default mesh).
		{Bench: "x", Machine: MachineOptions{MeshCols: 4}},
	}
	for _, r := range sameArtifact {
		r = normalized(t, r)
		if r.Key() == base.Key() {
			t.Errorf("run keys must differ: %+v", r)
		}
		if r.CompileKey() != base.CompileKey() {
			t.Errorf("compile key fragments on a run-only field: %+v", r)
		}
	}
	differentArtifact := []*JobRequest{
		{Bench: "y"},
		{Bench: "x", Strategy: "llp"},
		{Bench: "x", Cores: 2},
		{Bench: "x", Compiler: CompilerOptions{DSWPThreshold: 0.5}},
		{Bench: "x", Compiler: CompilerOptions{StaticSelection: true}},
	}
	for _, r := range differentArtifact {
		r = normalized(t, r)
		if r.CompileKey() == base.CompileKey() {
			t.Errorf("compile key misses a compile-relevant field: %+v", r)
		}
	}
}

// TestProgramUnionKeyAlgebra pins which spellings of the program union are
// deliberately the SAME job (one cache entry, byte-identical responses) and
// which are deliberately DISTINCT. Every legacy spelling must land on its
// v2 canonical form's key, or the cache fragments across API versions.
func TestProgramUnionKeyAlgebra(t *testing.T) {
	const src = "param n = 8;\nvar acc int = 0;\narray out[n] int;\nfunc main() {\n\tfor i = 0; i < n; i = i + 1 {\n\t\tout[i] = i * 3;\n\t\tacc = acc + i;\n\t}\n}\n"
	equal := [][2]*JobRequest{
		{ // v1 top-level bench == v2 bench-kind union
			{Bench: "x"},
			{Program: &ProgramSpec{Kind: KindBench, Bench: "x"}},
		},
		{ // kind-less v1 kernels == tagged v2 kernels
			{Program: &ProgramSpec{Kernels: []KernelSpec{{Kind: "doall-map", N: 64}}}},
			{Program: &ProgramSpec{Kind: KindKernels, Kernels: []KernelSpec{{Kind: "doall-map", N: 64}}}},
		},
		{ // an input spelled at its declared default == the input omitted
			{Program: &ProgramSpec{Kind: KindSource, Source: src, Inputs: map[string]int64{"n": 8}}},
			{Program: &ProgramSpec{Kind: KindSource, Source: src}},
		},
	}
	for i, pair := range equal {
		a, b := normalized(t, pair[0]), normalized(t, pair[1])
		if a.Key() != b.Key() {
			t.Errorf("equal[%d]: run keys differ", i)
		}
		if a.CompileKey() != b.CompileKey() {
			t.Errorf("equal[%d]: compile keys differ", i)
		}
	}
	distinct := []*JobRequest{
		{Bench: "x"},
		{Bench: "y"},
		{Program: &ProgramSpec{Kind: KindKernels, Kernels: []KernelSpec{{Kind: "doall-map", N: 64}}}},
		// Program kinds never collide even when their names would.
		{Program: &ProgramSpec{Kind: KindSource, Name: "x", Source: src}},
		// Source text is part of the identity...
		{Program: &ProgramSpec{Kind: KindSource, Source: src + "// v2\n"}},
		// ...and so is a non-default input.
		{Program: &ProgramSpec{Kind: KindSource, Source: src, Inputs: map[string]int64{"n": 16}}},
	}
	seen := map[string]int{}
	for i, r := range distinct {
		k := normalized(t, r).Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct[%d] and distinct[%d] share a run key", prev, i)
		}
		seen[k] = i
	}
}

// TestRingKeyDerivation: the cluster shard key is the bare digest of the
// run content address — stable, prefix-free, and shared between a job and
// its trace blob (both are addressed by the job key), so a fleet places
// them on the same owner.
func TestRingKeyDerivation(t *testing.T) {
	r := normalized(t, &JobRequest{Bench: "x"})
	rk := r.RingKey()
	if rk != RingKeyOf(r.Key()) {
		t.Errorf("RingKey() = %q, RingKeyOf(Key()) = %q; want equal", rk, RingKeyOf(r.Key()))
	}
	if len(rk) != 64 {
		t.Errorf("ring key %q is not a bare sha256 hex digest (len %d, want 64)", rk, len(rk))
	}
	if "sha256:"+rk != r.Key() {
		t.Errorf("ring key does not derive from the run key: %q vs %q", rk, r.Key())
	}
	if rk != r.RingKey() {
		t.Error("ring key is not deterministic across calls")
	}
	// Distinct jobs shard independently: the traced twin is a different run
	// key, hence (in general) a different ring position.
	traced := normalized(t, &JobRequest{Bench: "x", Trace: true})
	if traced.RingKey() == rk {
		t.Error("traced twin shares the untraced job's ring key")
	}
}

// TestMachineKeyGroupsPools: the machine-pool key folds everything but the
// machine shape and latency overrides, so warm machines are shared across
// programs and strategies but never across machine configurations.
func TestMachineKeyGroupsPools(t *testing.T) {
	base := normalized(t, &JobRequest{Bench: "x"})
	samePool := []*JobRequest{
		{Bench: "y"},
		{Bench: "x", Strategy: "ilp"},
		{Bench: "x", Trace: true},
		{Bench: "x", Compiler: CompilerOptions{StaticSelection: true}},
	}
	for _, r := range samePool {
		if normalized(t, r).MachineKey() != base.MachineKey() {
			t.Errorf("machine key fragments on a non-machine field: %+v", r)
		}
	}
	differentPool := []*JobRequest{
		{Bench: "x", Cores: 2},
		{Bench: "x", Machine: MachineOptions{RegionSyncLat: 9}},
		{Bench: "x", Machine: MachineOptions{ModeSwitchLat: 5}},
		{Bench: "x", Machine: MachineOptions{QueueBaseLat: 7}},
		{Bench: "x", Machine: MachineOptions{QueueHopLat: 3}},
		{Bench: "x", Machine: MachineOptions{QueueCap: -1}},
		{Bench: "x", Machine: MachineOptions{MeshCols: 4}},
	}
	seen := map[string]bool{base.MachineKey(): true}
	for _, r := range differentPool {
		k := normalized(t, r).MachineKey()
		if seen[k] {
			t.Errorf("machine key collision: %+v", r)
		}
		seen[k] = true
	}
}
