package spec

import (
	"strings"
	"testing"
)

func TestDecodeJobAliases(t *testing.T) {
	for _, tc := range []struct {
		name, body              string
		wantBench, wantStrategy string
		wantDeprecated          string
	}{
		{"v1 bench", `{"bench": "a", "strategy": "llp"}`, "a", "llp", "bench"},
		{"aliases", `{"benchmark": "a", "mode": "llp"}`, "a", "llp", "benchmark,mode,bench"},
		{"canonical wins", `{"bench": "a", "benchmark": "b", "strategy": "llp", "mode": "ilp"}`, "a", "llp", "benchmark,mode,bench"},
		{"v2 union", `{"program": {"kind": "bench", "bench": "a"}, "strategy": "llp"}`, "", "llp", ""},
		{"kind-less program", `{"program": {"kernels": [{"kind": "doall-map"}]}, "strategy": "llp"}`, "", "llp", "program.kind"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, dep, err := DecodeJob(strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if req.Bench != tc.wantBench || req.Strategy != tc.wantStrategy {
				t.Errorf("decoded bench=%q strategy=%q, want %q/%q", req.Bench, req.Strategy, tc.wantBench, tc.wantStrategy)
			}
			if got := strings.Join(dep, ","); got != tc.wantDeprecated {
				t.Errorf("deprecated = %q, want %q", got, tc.wantDeprecated)
			}
		})
	}
	if _, _, err := DecodeJob(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field was accepted")
	}
}

// TestKeySeparatesTrace: the trace flag is part of the content address, so
// traced and untraced runs of one job never share a cache entry.
func TestKeySeparatesTrace(t *testing.T) {
	known := func(string) bool { return true }
	a := &JobRequest{Bench: "x", Trace: false}
	b := &JobRequest{Bench: "x", Trace: true}
	for _, r := range []*JobRequest{a, b} {
		if err := r.Normalize(known); err != nil {
			t.Fatal(err)
		}
	}
	if a.Key() == b.Key() {
		t.Error("traced and untraced jobs share a key")
	}
}

func TestStrategyTable(t *testing.T) {
	infos := Strategies()
	if len(infos) != 5 {
		t.Fatalf("got %d strategies, want 5", len(infos))
	}
	if infos[0].Name != "serial" || infos[len(infos)-1].Name != "hybrid" {
		t.Errorf("strategy order: %+v", infos)
	}
	for _, si := range infos {
		if _, ok := StrategyFor(si.Name); !ok {
			t.Errorf("StrategyFor(%q) missing", si.Name)
		}
	}
	if _, ok := StrategyFor("nope"); ok {
		t.Error("StrategyFor accepted an unknown name")
	}
}
