package spec

import (
	"flag"
	"io"
	"testing"

	"voltron/internal/compiler"
)

// TestSelectFlagDefaults pins the shared flag builders every binary uses:
// a drift in name or default here would silently desynchronize
// voltron-run, voltron-compile, and voltron-bench.
func TestSelectFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sel := SelectFlag(fs)
	th := SelectThresholdFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *sel != DefaultSelect || DefaultSelect != "measured" {
		t.Errorf("-select default = %q, want %q", *sel, "measured")
	}
	if *th != 0 {
		t.Errorf("-select-threshold default = %v, want 0 (compiler default)", *th)
	}
	for _, name := range []string{"select", "select-threshold"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag %q not registered", name)
		}
	}
}

func TestSelectionFor(t *testing.T) {
	cases := []struct {
		name string
		want compiler.SelectionMode
		ok   bool
	}{
		{"measured", compiler.SelectMeasured, true},
		{"static", compiler.SelectStatic, true},
		{"auto", compiler.SelectAuto, true},
		{"bogus", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := SelectionFor(c.name)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("SelectionFor(%q) = %v, %v; want %v, %v", c.name, got, ok, c.want, c.ok)
		}
	}
}

// TestNormalizeSelect covers canonicalization of the selection fields: the
// deprecated static_selection spelling folds into select, the empty mode
// resolves to the default, and thresholds outside [0, 1] are rejected or
// canonicalized so equivalent requests share one cache key.
func TestNormalizeSelect(t *testing.T) {
	known := func(string) bool { return true }
	norm := func(t *testing.T, mut func(*JobRequest)) *JobRequest {
		t.Helper()
		r := &JobRequest{Bench: "x"}
		mut(r)
		if err := r.Normalize(known); err != nil {
			t.Fatal(err)
		}
		return r
	}
	if r := norm(t, func(*JobRequest) {}); r.Compiler.Select != DefaultSelect {
		t.Errorf("empty select normalized to %q, want %q", r.Compiler.Select, DefaultSelect)
	}
	r := norm(t, func(r *JobRequest) { r.Compiler.StaticSelection = true })
	if r.Compiler.Select != "static" || r.Compiler.StaticSelection {
		t.Errorf("static_selection folded to select=%q static_selection=%v, want static/false",
			r.Compiler.Select, r.Compiler.StaticSelection)
	}
	if r := norm(t, func(r *JobRequest) { r.Compiler.SelectThreshold = -0.5 }); r.Compiler.SelectThreshold != -1 {
		t.Errorf("negative threshold canonicalized to %v, want -1", r.Compiler.SelectThreshold)
	}
	bad := &JobRequest{Bench: "x"}
	bad.Compiler.Select = "bogus"
	if err := bad.Normalize(known); err == nil {
		t.Error("unknown selection mode was accepted")
	}
	over := &JobRequest{Bench: "x"}
	over.Compiler.SelectThreshold = 1.5
	if err := over.Normalize(known); err == nil {
		t.Error("threshold above 1 was accepted")
	}
}

// TestKeySeparatesSelect: selection mode and threshold are part of the
// artifact content address (different modes compile different programs),
// while the deprecated spelling shares the canonical entry.
func TestKeySeparatesSelect(t *testing.T) {
	known := func(string) bool { return true }
	key := func(t *testing.T, mut func(*JobRequest)) string {
		t.Helper()
		r := &JobRequest{Bench: "x"}
		mut(r)
		if err := r.Normalize(known); err != nil {
			t.Fatal(err)
		}
		return r.Key()
	}
	base := key(t, func(*JobRequest) {})
	auto := key(t, func(r *JobRequest) { r.Compiler.Select = "auto" })
	tuned := key(t, func(r *JobRequest) {
		r.Compiler.Select = "auto"
		r.Compiler.SelectThreshold = 0.25
	})
	if base == auto || auto == tuned || base == tuned {
		t.Errorf("selection configs share keys: base=%s auto=%s tuned=%s", base, auto, tuned)
	}
	static := key(t, func(r *JobRequest) { r.Compiler.Select = "static" })
	alias := key(t, func(r *JobRequest) { r.Compiler.StaticSelection = true })
	if static != alias {
		t.Errorf("select=static and static_selection diverge: %s vs %s", static, alias)
	}
}

// TestCompilerOptsThreadsSelection: the resolved compiler options carry the
// selection mode and threshold through to compiler.Compile.
func TestCompilerOptsThreadsSelection(t *testing.T) {
	known := func(string) bool { return true }
	r := &JobRequest{Bench: "x"}
	r.Compiler.Select = "auto"
	r.Compiler.SelectThreshold = 0.25
	if err := r.Normalize(known); err != nil {
		t.Fatal(err)
	}
	opts := r.CompilerOpts()
	if opts.Selection != compiler.SelectAuto || opts.SelectThreshold != 0.25 {
		t.Errorf("CompilerOpts selection = %v/%v, want auto/0.25", opts.Selection, opts.SelectThreshold)
	}
}
