// Package trace implements structured timeline tracing for the simulator:
// a low-overhead event collector threaded through the core's execution
// loops (per-core stall spans, typed events for operand-network and
// queue-network traffic, spawn/sleep transitions, stall-bus releases, cache
// miss fills, transactions, and region/mode boundaries) plus renderers over
// the collected stream — Chrome trace-event JSON (loadable in Perfetto), an
// aggregated stall-attribution report (cycles by cause, per core and per
// region), and the legacy per-instruction text trace.
//
// The collector is a concrete struct, not an interface: emit calls are
// direct appends into a flat event slice, so a traced run's per-event cost
// is a bounds check and a copy, and an untraced run's cost is a single nil
// check at each emit site (enforced by the core package's allocation guard).
package trace

import (
	"voltron/internal/isa"
	"voltron/internal/stats"
)

// Kind classifies one trace event.
type Kind uint8

// Event kinds. Field usage per kind is documented on Event.
const (
	KindRegionBegin Kind = iota
	KindRegionEnd
	KindIssue
	KindStall        // a span of non-busy cycles with a cause
	KindStallRelease // coupled mode: the stall bus released all cores
	KindPut          // direct-mode operand transfer driven
	KindGet          // direct-mode operand transfer consumed
	KindBcast        // direct-mode broadcast driven
	KindSend         // queue-mode message enqueued
	KindRecv         // queue-mode message consumed
	KindSpawn        // thread-start message enqueued
	KindWake         // sleeping core woken by a spawn message
	KindSleep        // core issued SLEEP
	KindCacheMiss    // an L1 miss and its fill window
	KindTxBegin      // transaction opened
	KindTxCommit     // transaction committed at the barrier
	KindTxAbort      // transaction aborted (DOALL violation)
)

// String names the kind as rendered in trace output.
func (k Kind) String() string {
	switch k {
	case KindRegionBegin:
		return "region-begin"
	case KindRegionEnd:
		return "region-end"
	case KindIssue:
		return "issue"
	case KindStall:
		return "stall"
	case KindStallRelease:
		return "stall-release"
	case KindPut:
		return "PUT"
	case KindGet:
		return "GET"
	case KindBcast:
		return "BCAST"
	case KindSend:
		return "SEND"
	case KindRecv:
		return "RECV"
	case KindSpawn:
		return "SPAWN"
	case KindWake:
		return "WAKE"
	case KindSleep:
		return "SLEEP"
	case KindCacheMiss:
		return "miss"
	case KindTxBegin:
		return "TXBEGIN"
	case KindTxCommit:
		return "TXCOMMIT"
	case KindTxAbort:
		return "TXABORT"
	}
	return "kind?"
}

// Miss classifies a KindCacheMiss event (the Aux field).
const (
	MissL1DRead = iota
	MissL1DWrite
	MissL1I
)

// missNames renders the Aux field of a KindCacheMiss event.
var missNames = [...]string{"L1D-read", "L1D-write", "L1I"}

// Event is one timeline record. The overloaded fields hold, per kind:
//
//	RegionBegin   Name (region), Detail (mode)
//	RegionEnd     —
//	Issue         Aux (pc), Inst
//	Stall         Dur (cycles), Aux (stats.Kind cause)
//	StallRelease  Dur (window length; 0 when unknown under the reference stepper)
//	Put/Get/Bcast Aux (isa.Direction; -1 for Bcast)
//	Send/Spawn    Aux (target core), Arg (message seq), Dur (network latency)
//	Recv/Wake     Aux (sender core; -1 when unknown), Arg (message seq)
//	Sleep         —
//	CacheMiss     Aux (Miss*), Arg (address), Dur (total access latency)
//	Tx*           Arg (chunk id for TxBegin, else 0)
type Event struct {
	Cycle  int64
	Dur    int64
	Arg    int64
	Name   string
	Detail string
	Inst   *isa.Inst
	Region int32
	Aux    int32
	Core   int16
	Kind   Kind
}

// MachineCore marks machine-wide events (region boundaries, stall-bus
// releases) that belong to no single core.
const MachineCore = int16(-1)

// regionAgg is one region's stall attribution: cycles by cause, per core.
type regionAgg struct {
	name       string
	mode       string
	start, end int64
	// cycles is indexed core*stats.NumKinds + kind.
	cycles []int64
}

// Tracer collects the structured event stream of one simulation run. It is
// not safe for concurrent use — attach one Tracer per Machine, like the
// Machine itself. Reuse across runs requires Reset.
type Tracer struct {
	Events []Event

	cores   int
	regions []regionAgg
	cur     int32 // index of the open region, -1 outside any region
}

// New creates an empty tracer.
func New() *Tracer { return &Tracer{cur: -1} }

// Reset clears the tracer for reuse, keeping the event backing array.
func (t *Tracer) Reset() {
	t.Events = t.Events[:0]
	t.regions = t.regions[:0]
	t.cur = -1
	t.cores = 0
}

// emit appends one event stamped with the open region.
func (t *Tracer) emit(e Event) {
	e.Region = t.cur
	t.Events = append(t.Events, e)
}

// RegionBegin opens a region: events and charges that follow attribute to
// it until the matching RegionEnd.
func (t *Tracer) RegionBegin(cycle int64, name, mode string, cores int) {
	if cores > t.cores {
		t.cores = cores
	}
	t.regions = append(t.regions, regionAgg{
		name: name, mode: mode, start: cycle, end: cycle,
		cycles: make([]int64, cores*stats.NumKinds),
	})
	t.cur = int32(len(t.regions) - 1)
	t.emit(Event{Cycle: cycle, Kind: KindRegionBegin, Core: MachineCore, Name: name, Detail: mode})
}

// RegionEnd closes the open region.
func (t *Tracer) RegionEnd(cycle int64) {
	if t.cur >= 0 {
		t.regions[t.cur].end = cycle
	}
	t.emit(Event{Cycle: cycle, Kind: KindRegionEnd, Core: MachineCore})
	t.cur = -1
}

// Charge attributes n cycles of kind k to a core, starting at cycle from.
// Busy cycles update the attribution counters only; every other kind also
// records a stall span event.
func (t *Tracer) Charge(from int64, core int, k stats.Kind, n int64) {
	if n <= 0 {
		return
	}
	if t.cur >= 0 {
		t.regions[t.cur].cycles[core*stats.NumKinds+int(k)] += n
	}
	if k != stats.Busy {
		t.emit(Event{Cycle: from, Dur: n, Kind: KindStall, Core: int16(core), Aux: int32(k)})
	}
}

// Issue records one issued instruction.
func (t *Tracer) Issue(cycle int64, core, pc int, in *isa.Inst) {
	t.emit(Event{Cycle: cycle, Kind: KindIssue, Core: int16(core), Aux: int32(pc), Inst: in})
}

// StallRelease records the coupled-mode stall bus releasing all cores at
// cycle, after a window of dur stalled cycles (0 when the window length is
// unknown, as under the per-cycle reference stepper).
func (t *Tracer) StallRelease(cycle, dur int64) {
	t.emit(Event{Cycle: cycle, Dur: dur, Kind: KindStallRelease, Core: MachineCore})
}

// Put records a direct-mode operand transfer driven toward dir.
func (t *Tracer) Put(cycle int64, core int, dir isa.Direction) {
	t.emit(Event{Cycle: cycle, Kind: KindPut, Core: int16(core), Aux: int32(dir)})
}

// Get records a direct-mode operand transfer consumed from dir.
func (t *Tracer) Get(cycle int64, core int, dir isa.Direction) {
	t.emit(Event{Cycle: cycle, Kind: KindGet, Core: int16(core), Aux: int32(dir)})
}

// Bcast records a direct-mode broadcast.
func (t *Tracer) Bcast(cycle int64, core int) {
	t.emit(Event{Cycle: cycle, Kind: KindBcast, Core: int16(core), Aux: -1})
}

// Send records a queue-mode message enqueue toward core `to`, arriving at
// arriveAt, carrying the network sequence number seq.
func (t *Tracer) Send(cycle int64, core, to int, seq, arriveAt int64) {
	t.emit(Event{Cycle: cycle, Dur: arriveAt - cycle, Arg: seq, Kind: KindSend, Core: int16(core), Aux: int32(to)})
}

// Recv records a successful queue-mode receive of message seq from core
// `from`.
func (t *Tracer) Recv(cycle int64, core, from int, seq int64) {
	t.emit(Event{Cycle: cycle, Arg: seq, Kind: KindRecv, Core: int16(core), Aux: int32(from)})
}

// Spawn records a thread-start message enqueue toward core `to`.
func (t *Tracer) Spawn(cycle int64, core, to int, seq, arriveAt int64) {
	t.emit(Event{Cycle: cycle, Dur: arriveAt - cycle, Arg: seq, Kind: KindSpawn, Core: int16(core), Aux: int32(to)})
}

// Wake records a sleeping core woken by spawn message seq.
func (t *Tracer) Wake(cycle int64, core int, seq int64) {
	t.emit(Event{Cycle: cycle, Arg: seq, Kind: KindWake, Core: int16(core), Aux: -1})
}

// Sleep records a core issuing SLEEP.
func (t *Tracer) Sleep(cycle int64, core int) {
	t.emit(Event{Cycle: cycle, Kind: KindSleep, Core: int16(core)})
}

// CacheMiss records an L1 miss (what = Miss*) at addr whose fill completes
// after dur cycles.
func (t *Tracer) CacheMiss(cycle int64, core, what int, addr, dur int64) {
	t.emit(Event{Cycle: cycle, Dur: dur, Arg: addr, Kind: KindCacheMiss, Core: int16(core), Aux: int32(what)})
}

// TxBegin records a transaction opening for chunk id.
func (t *Tracer) TxBegin(cycle int64, core int, chunk int64) {
	t.emit(Event{Cycle: cycle, Arg: chunk, Kind: KindTxBegin, Core: int16(core)})
}

// TxCommit records a transaction committing at the barrier.
func (t *Tracer) TxCommit(cycle int64, core int) {
	t.emit(Event{Cycle: cycle, Kind: KindTxCommit, Core: int16(core)})
}

// TxAbort records a transaction aborting (DOALL dependence violation).
func (t *Tracer) TxAbort(cycle int64, core int) {
	t.emit(Event{Cycle: cycle, Kind: KindTxAbort, Core: int16(core)})
}

// Cores returns the machine width observed by the tracer.
func (t *Tracer) Cores() int { return t.cores }
