package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText renders the stream in the machine's legacy debugging format:
// one line per issued instruction plus region transition headers, exactly
// as the old core.Config.Trace io.Writer produced them. The format is a
// renderer over the structured stream now — the simulator no longer
// formats text on its hot path.
func (t *Tracer) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case KindRegionBegin:
			fmt.Fprintf(bw, "=== region %q mode=%s cycle=%d\n", e.Name, e.Detail, e.Cycle)
		case KindIssue:
			fmt.Fprintf(bw, "%8d c%d %4d  %v\n", e.Cycle, e.Core, e.Aux, e.Inst)
		}
	}
	return bw.Flush()
}
