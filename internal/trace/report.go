package trace

import (
	"fmt"
	"io"

	"voltron/internal/stats"
)

// Report is the aggregated stall-attribution breakdown of one traced run:
// where every accounted cycle went, by cause, per core and per region — the
// paper's Figure-7-style cost decomposition, reproducible per run. Within a
// region the per-kind cycles sum (across cores) to exactly what the stats
// package reports for the same window, because both are charged at the same
// sites in the simulator.
type Report struct {
	Cores   int            `json:"cores"`
	Regions []RegionReport `json:"regions"`
	// Totals sums cycles by cause across all regions and cores. Keys are
	// stats.Kind names; encoding/json renders map keys sorted, so the
	// serialized form is deterministic.
	Totals map[string]int64 `json:"totals"`
}

// RegionReport is one region's attribution.
type RegionReport struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	// Start and End are the region's wall-clock cycle bounds.
	Start int64 `json:"start_cycle"`
	End   int64 `json:"end_cycle"`
	// Cycles sums cycles by cause across the region's cores.
	Cycles map[string]int64 `json:"cycles_by_cause"`
	// PerCore breaks the same cycles down by core.
	PerCore []CoreReport `json:"per_core"`
}

// CoreReport is one core's attribution within a region.
type CoreReport struct {
	Core   int              `json:"core"`
	Cycles map[string]int64 `json:"cycles_by_cause"`
}

// Report aggregates the collected stream into the stall-attribution
// breakdown.
func (t *Tracer) Report() *Report {
	r := &Report{Cores: t.cores, Totals: map[string]int64{}}
	for _, reg := range t.regions {
		rr := RegionReport{
			Name: reg.name, Mode: reg.mode,
			Start: reg.start, End: reg.end,
			Cycles: map[string]int64{},
		}
		cores := len(reg.cycles) / stats.NumKinds
		for c := 0; c < cores; c++ {
			cr := CoreReport{Core: c, Cycles: map[string]int64{}}
			for k := 0; k < stats.NumKinds; k++ {
				n := reg.cycles[c*stats.NumKinds+k]
				if n == 0 {
					continue
				}
				name := stats.Kind(k).String()
				cr.Cycles[name] = n
				rr.Cycles[name] += n
				r.Totals[name] += n
			}
			rr.PerCore = append(rr.PerCore, cr)
		}
		r.Regions = append(r.Regions, rr)
	}
	return r
}

// Total returns the report-wide cycles charged to one cause.
func (r *Report) Total(k stats.Kind) int64 { return r.Totals[k.String()] }

// WriteText renders the report as an aligned table: one row per region, one
// column per cause that appears anywhere in the run, plus per-core rows
// under each region.
func (r *Report) WriteText(w io.Writer) error {
	// Column set: causes present anywhere, in stats display order.
	var cols []stats.Kind
	for _, k := range stats.Kinds() {
		if r.Totals[k.String()] > 0 {
			cols = append(cols, k)
		}
	}
	if _, err := fmt.Fprintf(w, "stall attribution (%d cores, %d regions):\n", r.Cores, len(r.Regions)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-28s %-9s %10s", "region", "mode", "cycles")
	for _, k := range cols {
		fmt.Fprintf(w, " %15s", k)
	}
	fmt.Fprintln(w)
	row := func(label, mode string, span int64, cycles map[string]int64) {
		fmt.Fprintf(w, "%-28s %-9s %10d", label, mode, span)
		for _, k := range cols {
			fmt.Fprintf(w, " %15d", cycles[k.String()])
		}
		fmt.Fprintln(w)
	}
	for _, reg := range r.Regions {
		row(reg.Name, reg.Mode, reg.End-reg.Start, reg.Cycles)
		for _, cr := range reg.PerCore {
			row(fmt.Sprintf("  core %d", cr.Core), "", 0, cr.Cycles)
		}
	}
	total := map[string]int64{}
	var sum int64
	for name, n := range r.Totals {
		total[name] = n
		sum += n
	}
	row("TOTAL", "", sum, total)
	return nil
}
