package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"voltron/internal/isa"
	"voltron/internal/stats"
)

// WriteChrome renders the collected stream as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. One
// simulated cycle maps to one microsecond of trace time.
//
// Track layout: pid 0, one thread per core (tid = core), plus a "machine"
// thread (tid = cores) carrying region spans and stall-bus releases. Stall
// charges become complete ("X") spans named by cause — adjacent spans of
// the same cause are coalesced, so an N-cycle stall renders as one slice no
// matter how the simulator charged it. Network traffic, spawn/sleep
// transitions, cache-miss fills and transaction events render as instant
// ("i") events with their payload under args. Per-instruction issue events
// are deliberately not rendered (they would dwarf everything else); use the
// text renderer for instruction-level debugging.
//
// The output is deterministic: rendering iterates the event stream in
// collection order and never ranges over a map, so two identical runs
// produce byte-identical files.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	item := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	// Thread naming/sorting metadata.
	machineTid := t.cores
	for c := 0; c < t.cores; c++ {
		item(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"core %d"}}`, c, c)
		item(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, c, c)
	}
	item(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"machine"}}`, machineTid)
	item(`{"ph":"M","pid":0,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, machineTid, t.cores)

	// Coalesce adjacent same-cause stall spans per core. The simulator may
	// charge one logical stall window as several back-to-back pieces (a
	// 1-cycle poll charge followed by a skipped window); merging them here
	// keeps the rendering faithful to the machine, not to the event-driven
	// scheduler's stepping pattern.
	type span struct {
		kind     int32
		from, to int64
	}
	open := make([]span, t.cores)
	for i := range open {
		open[i].kind = -1
	}
	flush := func(core int) {
		s := &open[core]
		if s.kind < 0 {
			return
		}
		item(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%s}`,
			core, s.from, s.to-s.from, jstr(stats.Kind(s.kind).String()))
		s.kind = -1
	}

	var openRegion *Event
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case KindStall:
			s := &open[e.Core]
			if s.kind == e.Aux && s.to == e.Cycle {
				s.to += e.Dur
				continue
			}
			flush(int(e.Core))
			*s = span{kind: e.Aux, from: e.Cycle, to: e.Cycle + e.Dur}
		case KindRegionBegin:
			openRegion = e
		case KindRegionEnd:
			if openRegion != nil {
				item(`{"ph":"X","pid":0,"tid":%d,"ts":%d,"dur":%d,"name":%s,"args":{"mode":%s}}`,
					machineTid, openRegion.Cycle, e.Cycle-openRegion.Cycle,
					jstr(openRegion.Name), jstr(openRegion.Detail))
				openRegion = nil
			}
		case KindStallRelease:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"p","name":"stall-bus release","args":{"stalled":%d}}`,
				machineTid, e.Cycle, e.Dur)
		case KindPut, KindGet:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s,"args":{"dir":%s}}`,
				e.Core, e.Cycle, jstr(e.Kind.String()), jstr(isa.Direction(e.Aux).String()))
		case KindBcast, KindSleep, KindTxCommit, KindTxAbort:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s}`,
				e.Core, e.Cycle, jstr(e.Kind.String()))
		case KindSend, KindSpawn:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s,"args":{"to":%d,"seq":%d,"latency":%d}}`,
				e.Core, e.Cycle, jstr(fmt.Sprintf("%s→c%d", e.Kind, e.Aux)), e.Aux, e.Arg, e.Dur)
		case KindRecv, KindWake:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s,"args":{"seq":%d}}`,
				e.Core, e.Cycle, jstr(e.Kind.String()), e.Arg)
		case KindCacheMiss:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":%s,"args":{"addr":%d,"fill":%d}}`,
				e.Core, e.Cycle, jstr("miss "+missNames[e.Aux]), e.Arg, e.Dur)
		case KindTxBegin:
			item(`{"ph":"i","pid":0,"tid":%d,"ts":%d,"s":"t","name":"TXBEGIN","args":{"chunk":%d}}`,
				e.Core, e.Cycle, e.Arg)
		case KindIssue:
			// Skipped: see the function comment.
		}
	}
	for c := 0; c < t.cores; c++ {
		flush(c)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// jstr JSON-quotes a string (json.Marshal of a string is deterministic and
// always emits valid JSON escapes, unlike strconv.Quote's \x form).
func jstr(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // strings always marshal
		panic(err)
	}
	return string(b)
}
