package xnet

import (
	"testing"
	"testing/quick"

	"voltron/internal/isa"
)

func TestTopologyFor(t *testing.T) {
	cases := []struct {
		n, cols, rows int
	}{
		{1, 1, 1}, {2, 2, 1}, {3, 2, 2}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4},
	}
	for _, c := range cases {
		top := TopologyFor(c.n)
		if top.Cols != c.cols || top.Rows != c.rows {
			t.Errorf("TopologyFor(%d) = %dx%d, want %dx%d", c.n, top.Cols, top.Rows, c.cols, c.rows)
		}
		if top.Cores() < c.n {
			t.Errorf("TopologyFor(%d) holds only %d cores", c.n, top.Cores())
		}
	}
}

// TestTopologyNearSquare pins the many-core arrangements and their hop
// distances: wide machines get near-square meshes, not 4-column strips
// (a 4×16 strip would stretch 64-core corner-to-corner traffic to 18 hops).
func TestTopologyNearSquare(t *testing.T) {
	hopStats := func(top Topology, n int) (diam int, total int) {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				h := top.Hops(a, b)
				total += h
				if h > diam {
					diam = h
				}
			}
		}
		return diam, total
	}
	cases := []struct {
		n, cols, rows int
		// corner-to-corner hops (core 0 to core n-1) and network diameter
		// (max hops over populated pairs).
		corner, diameter int
	}{
		{16, 4, 4, 6, 6},
		{32, 6, 6, 6, 10},
		{64, 8, 8, 14, 14},
	}
	for _, c := range cases {
		top := TopologyFor(c.n)
		if top.Cols != c.cols || top.Rows != c.rows || top.N != c.n {
			t.Errorf("TopologyFor(%d) = %dx%d N=%d, want %dx%d N=%d",
				c.n, top.Cols, top.Rows, top.N, c.cols, c.rows, c.n)
			continue
		}
		if got := top.Hops(0, c.n-1); got != c.corner {
			t.Errorf("TopologyFor(%d): Hops(0, %d) = %d, want %d", c.n, c.n-1, got, c.corner)
		}
		diam, total := hopStats(top, c.n)
		if diam != c.diameter {
			t.Errorf("TopologyFor(%d): diameter = %d, want %d", c.n, diam, c.diameter)
		}
		// Strip comparison: beyond 16 cores the near-square mesh must be
		// strictly cheaper than the old 4-column strip on mean hop count
		// and no worse on diameter.
		if c.n > 16 {
			stripDiam, stripTotal := hopStats(TopologyCols(c.n, 4), c.n)
			if total >= stripTotal {
				t.Errorf("TopologyFor(%d): total hops %d not better than 4-column strip's %d", c.n, total, stripTotal)
			}
			if diam > stripDiam {
				t.Errorf("TopologyFor(%d): diameter %d worse than 4-column strip's %d", c.n, diam, stripDiam)
			}
		}
	}
}

// TestTopologyGhostPositions checks that unpopulated mesh positions route
// traffic but are never reported as neighbors.
func TestTopologyGhostPositions(t *testing.T) {
	top := TopologyFor(32) // 6×6, positions 32..35 are ghosts
	if top.Cores() != 36 {
		t.Fatalf("Cores() = %d, want 36 mesh positions", top.Cores())
	}
	// Core 31 sits at (1,5); its east neighbor position 32 holds no core.
	if got := top.Neighbor(31, isa.East); got != -1 {
		t.Errorf("Neighbor(31, East) = %d, want -1 (ghost position)", got)
	}
	if got := top.Neighbor(31, isa.West); got != 30 {
		t.Errorf("Neighbor(31, West) = %d, want 30", got)
	}
	// Routes between populated cores still walk real coordinates: core 5
	// at (5,0) to core 30 at (0,5) crosses the whole populated mesh.
	if got := top.Hops(5, 30); got != 10 {
		t.Errorf("Hops(5, 30) = %d, want 10", got)
	}
}

func TestNeighbor2x2(t *testing.T) {
	top := TopologyFor(4)
	// layout: 0 1 / 2 3
	if top.Neighbor(0, isa.East) != 1 || top.Neighbor(0, isa.South) != 2 {
		t.Error("core 0 neighbors wrong")
	}
	if top.Neighbor(0, isa.West) != -1 || top.Neighbor(0, isa.North) != -1 {
		t.Error("core 0 edge not detected")
	}
	if top.Neighbor(3, isa.West) != 2 || top.Neighbor(3, isa.North) != 1 {
		t.Error("core 3 neighbors wrong")
	}
}

func TestHopsAndRouteAgree(t *testing.T) {
	top := TopologyFor(4)
	f := func(a, b uint8) bool {
		x, y := int(a)%4, int(b)%4
		r := top.Route(x, y)
		if len(r) != top.Hops(x, y) {
			return false
		}
		// Walking the route lands on the destination.
		c := x
		for _, d := range r {
			c = top.Neighbor(c, d)
			if c < 0 {
				return false
			}
		}
		return c == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirectPutGet(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	if err := d.Put(0, isa.East, 42); err != nil {
		t.Fatal(err)
	}
	v, err := d.Get(1, isa.West)
	if err != nil || v != 42 {
		t.Fatalf("Get = %d, %v", v, err)
	}
	if d.Transfers != 1 {
		t.Errorf("transfers = %d, want 1", d.Transfers)
	}
}

func TestDirectGetWithoutPutFails(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	if _, err := d.Get(1, isa.West); err == nil {
		t.Error("unmatched GET must error (compiler contract violation)")
	}
}

func TestDirectWireClearsAcrossCycles(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	d.Put(0, isa.East, 7)
	d.BeginCycle(2)
	if _, err := d.Get(1, isa.West); err == nil {
		t.Error("wire value must not persist to the next cycle")
	}
}

func TestDirectDoubleDriveFails(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	d.Put(0, isa.East, 1)
	if err := d.Put(0, isa.East, 2); err == nil {
		t.Error("double-driven wire must error")
	}
}

func TestDirectPutOffEdgeFails(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	if err := d.Put(0, isa.West, 1); err == nil {
		t.Error("PUT off mesh edge must error")
	}
}

func TestBroadcast(t *testing.T) {
	d := NewDirectNet(TopologyFor(4))
	d.BeginCycle(1)
	if err := d.Broadcast(0, 5); err != nil {
		t.Fatal(err)
	}
	if v, err := d.Get(1, isa.West); err != nil || v != 5 {
		t.Error("east neighbor missed broadcast")
	}
	if v, err := d.Get(2, isa.North); err != nil || v != 5 {
		t.Error("south neighbor missed broadcast")
	}
}

func TestQueueLatency(t *testing.T) {
	q := NewQueueNet(TopologyFor(4))
	q.Send(0, 3, 42, 100) // 2 hops in 2x2
	if _, _, ok := q.Recv(3, 0, 103); ok {
		t.Error("message arrived before 2+hops latency")
	}
	v, _, ok := q.Recv(3, 0, 104)
	if !ok || v != 42 {
		t.Errorf("Recv = %d, %v; want 42 at cycle 104", v, ok)
	}
}

func TestQueueAdjacentLatency(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	q.Send(0, 1, 9, 10)
	if _, _, ok := q.Recv(1, 0, 12); ok {
		t.Error("arrived too early")
	}
	if v, _, ok := q.Recv(1, 0, 13); !ok || v != 9 {
		t.Error("adjacent queue-mode latency should be 3 (2 + 1 hop)")
	}
}

func TestQueueFIFOPerSender(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	q.Send(0, 1, 1, 0)
	q.Send(0, 1, 2, 1)
	v1, _, ok1 := q.Recv(1, 0, 100)
	v2, _, ok2 := q.Recv(1, 0, 100)
	if !ok1 || !ok2 || v1 != 1 || v2 != 2 {
		t.Errorf("FIFO broken: got %d,%d", v1, v2)
	}
}

func TestQueueCAMSelectsBySender(t *testing.T) {
	q := NewQueueNet(TopologyFor(4))
	q.Send(2, 3, 20, 0)
	q.Send(1, 3, 10, 0)
	// Receiver asks for core 1's message even though core 2's arrived too.
	if v, _, ok := q.Recv(3, 1, 100); !ok || v != 10 {
		t.Errorf("CAM lookup by sender failed: %d %v", v, ok)
	}
	if v, _, ok := q.Recv(3, 2, 100); !ok || v != 20 {
		t.Errorf("remaining message lost: %d %v", v, ok)
	}
}

func TestSpawnSeparateFromData(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	q.SendSpawn(0, 1, 7, 0)
	q.Send(0, 1, 99, 0)
	if _, _, ok := q.Recv(1, 0, 100); !ok {
		t.Fatal("data recv failed")
	}
	addr, from, _, ok := q.RecvSpawn(1, 100)
	if !ok || addr != 7 || from != 0 {
		t.Errorf("spawn recv = %d from %d, %v", addr, from, ok)
	}
	if _, _, _, ok := q.RecvSpawn(1, 100); ok {
		t.Error("spawn message delivered twice")
	}
}

func TestPending(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	if q.PendingAny() {
		t.Error("fresh network pending")
	}
	q.Send(0, 1, 1, 0)
	if !q.Pending(1) || q.Pending(0) {
		t.Error("Pending wrong")
	}
	q.Recv(1, 0, 100)
	if q.PendingAny() {
		t.Error("drained network still pending")
	}
}

func TestPairCapacityBackpressure(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	q.Cap = 4
	for i := 0; i < 4; i++ {
		if !q.CanSend(0, 1) {
			t.Fatalf("pair full after %d sends, cap 4", i)
		}
		q.Send(0, 1, uint64(i), 0)
	}
	if q.CanSend(0, 1) {
		t.Error("pair not full after cap sends")
	}
	// A different pair into the same receiver stays open (per-pair, not
	// per-receiver, capacity — the deadlock-freedom property).
	top4 := NewQueueNet(TopologyFor(4))
	top4.Cap = 2
	top4.Send(0, 3, 1, 0)
	top4.Send(0, 3, 2, 0)
	if top4.CanSend(0, 3) {
		t.Error("pair 0->3 should be full")
	}
	if !top4.CanSend(1, 3) {
		t.Error("pair 1->3 wrongly blocked by 0->3 traffic")
	}
	// Draining reopens the pair.
	q.Recv(1, 0, 100)
	if !q.CanSend(0, 1) {
		t.Error("drained pair still blocked")
	}
}

func TestUnboundedCapacity(t *testing.T) {
	q := NewQueueNet(TopologyFor(2))
	q.Cap = 0
	for i := 0; i < 1000; i++ {
		if !q.CanSend(0, 1) {
			t.Fatal("unbounded queue reported full")
		}
		q.Send(0, 1, 1, 0)
	}
}
