// Package xnet implements Voltron's dual-mode scalar operand network: a
// 2-D mesh of register-value links between cores with a direct mode
// (1 cycle/hop, sender and receiver synchronized — used in coupled
// execution) and a queue mode (2 cycles + 1 cycle/hop, send queue, routed
// delivery, CAM receive queue — used in decoupled execution), plus the 1-bit
// stall bus used for lock-step execution (modeled in package core).
package xnet

import (
	"fmt"
	"math"

	"voltron/internal/isa"
)

// NoWake is returned by the Next*At probes when no queued message will ever
// satisfy the poll: only new network activity can unblock the receiver.
const NoWake = int64(math.MaxInt64)

// Topology arranges n cores in a mesh; core id = y*Cols + x. When N is
// nonzero it is the number of populated positions: a near-square mesh over
// n cores may leave ghost positions at the tail of the last row, which
// route traffic (the mesh wiring exists) but hold no core.
type Topology struct {
	Cols, Rows int
	N          int
}

// TopologyFor returns the paper's arrangements: 1 core (1×1), 2 cores
// (2×1 — adjacent), 4 cores (2×2), up to 8 cores a 4-column mesh, and a
// near-square mesh beyond that (never narrower than 4 columns, so the
// coupled compiler's 4-core row groups stay intact): 16 cores is 4×4,
// 32 is 6×6 with four ghost positions, 64 is 8×8.
func TopologyFor(n int) Topology {
	switch {
	case n <= 1:
		return Topology{1, 1, n}
	case n == 2:
		return Topology{2, 1, n}
	case n <= 4:
		return Topology{2, (n + 1) / 2, n}
	case n <= 8:
		return Topology{4, (n + 3) / 4, n}
	default:
		cols := 4
		for cols*cols < n {
			cols++
		}
		return TopologyCols(n, cols)
	}
}

// TopologyCols arranges n cores over a fixed column count (the mesh-shape
// knob): rows = ceil(n/cols), ghost positions in the last row when cols
// does not divide n.
func TopologyCols(n, cols int) Topology {
	if cols < 1 {
		cols = 1
	}
	if cols > n {
		cols = n
	}
	return Topology{cols, (n + cols - 1) / cols, n}
}

// Cores returns the number of mesh positions (including ghost positions).
func (t Topology) Cores() int { return t.Cols * t.Rows }

// cores returns the populated position count (all of them for literal
// topologies that leave N zero).
func (t Topology) cores() int {
	if t.N > 0 {
		return t.N
	}
	return t.Cols * t.Rows
}

// Coord returns the (x, y) mesh position of a core.
func (t Topology) Coord(core int) (x, y int) { return core % t.Cols, core / t.Cols }

// Neighbor returns the core adjacent to c in direction d, or -1 at the mesh
// edge and at ghost positions (mesh wiring with no core behind it).
func (t Topology) Neighbor(c int, d isa.Direction) int {
	x, y := t.Coord(c)
	switch d {
	case isa.East:
		x++
	case isa.West:
		x--
	case isa.North:
		y--
	case isa.South:
		y++
	}
	if x < 0 || x >= t.Cols || y < 0 || y >= t.Rows {
		return -1
	}
	id := y*t.Cols + x
	if id >= t.cores() {
		return -1
	}
	return id
}

// Hops returns the Manhattan distance between two cores.
func (t Topology) Hops(a, b int) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Route returns the dimension-ordered (X then Y) hop sequence from a to b.
func (t Topology) Route(a, b int) []isa.Direction {
	var route []isa.Direction
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	for ax < bx {
		route = append(route, isa.East)
		ax++
	}
	for ax > bx {
		route = append(route, isa.West)
		ax--
	}
	for ay < by {
		route = append(route, isa.South)
		ay++
	}
	for ay > by {
		route = append(route, isa.North)
		ay--
	}
	return route
}

// DirectNet models the direct-mode wires: one register-width link in each
// direction between adjacent cores, valid within a single cycle. The
// coupled-mode compiler guarantees each PUT has a matching same-cycle GET;
// the network checks that contract and reports violations as errors (they
// indicate compiler bugs, not runtime conditions).
type DirectNet struct {
	T Topology
	// wires holds one slot per (from, to) pair, indexed from*Cores()+to. A
	// slot is live only when its generation matches the current cycle's, so
	// BeginCycle invalidates every wire by bumping gen instead of clearing.
	wires []wireSlot
	gen   int64
	cycle int64
	// Transfers counts delivered values (for bandwidth accounting).
	Transfers int64
}

type wireSlot struct {
	gen int64
	val uint64
}

// NewDirectNet creates the direct-mode network for a topology.
func NewDirectNet(t Topology) *DirectNet {
	// gen starts at 1 so zero-valued slots are never live.
	return &DirectNet{T: t, wires: make([]wireSlot, t.Cores()*t.Cores()), gen: 1}
}

// Reset restores NewDirectNet's initial state, keeping the wire array.
func (d *DirectNet) Reset() {
	clear(d.wires)
	d.gen = 1
	d.cycle = 0
	d.Transfers = 0
}

// BeginCycle clears the wires for a new lock-step cycle.
func (d *DirectNet) BeginCycle(cycle int64) {
	d.cycle = cycle
	d.gen++
}

// Put drives the wire from core `from` toward direction dir.
func (d *DirectNet) Put(from int, dir isa.Direction, v uint64) error {
	to := d.T.Neighbor(from, dir)
	if to < 0 {
		return fmt.Errorf("xnet: PUT off mesh edge: core %d dir %v", from, dir)
	}
	slot := &d.wires[from*d.T.Cores()+to]
	if slot.gen == d.gen {
		return fmt.Errorf("xnet: wire %d->%d driven twice in cycle %d", from, to, d.cycle)
	}
	slot.gen, slot.val = d.gen, v
	return nil
}

// Broadcast drives all outgoing wires of a core (the BCAST operation).
func (d *DirectNet) Broadcast(from int, v uint64) error {
	for _, dir := range []isa.Direction{isa.East, isa.West, isa.North, isa.South} {
		if d.T.Neighbor(from, dir) >= 0 {
			if err := d.Put(from, dir, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// Get reads the wire arriving at core `to` from direction dir; the matching
// PUT must have been driven in the same cycle.
func (d *DirectNet) Get(to int, dir isa.Direction) (uint64, error) {
	from := d.T.Neighbor(to, dir)
	if from < 0 {
		return 0, fmt.Errorf("xnet: GET off mesh edge: core %d dir %v", to, dir)
	}
	slot := &d.wires[from*d.T.Cores()+to]
	if slot.gen != d.gen {
		return 0, fmt.Errorf("xnet: GET with no matching PUT on wire %d->%d in cycle %d", from, to, d.cycle)
	}
	d.Transfers++
	return slot.val, nil
}

// message is one queue-mode value in flight or waiting in a receive queue.
type message struct {
	from, to int
	val      uint64
	spawn    bool
	readyAt  int64
	seq      int64
}

// fifo is one in-order message queue with an O(1) head pop. Sequence
// numbers are assigned in send order, so within one fifo they are strictly
// increasing and the head is always the oldest (lowest-seq) message — the
// exact message the CAM's oldest-match pop selects.
type fifo struct {
	buf  []message
	head int
}

func (f *fifo) empty() bool    { return f.head == len(f.buf) }
func (f *fifo) peek() *message { return &f.buf[f.head] }
func (f *fifo) push(m message) { f.buf = append(f.buf, m) }
func (f *fifo) reset()         { f.buf = f.buf[:0]; f.head = 0 }
func (f *fifo) pop() (m message) {
	m = f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		// Drained: rewind so the backing array is reused, not regrown.
		f.buf, f.head = f.buf[:0], 0
	}
	return m
}

// QueueNet models the queue-mode network: SEND enqueues a routed message
// (latency 2 + hops: one cycle into the send queue, one per hop, one out of
// the receive queue), RECV performs a CAM lookup by sender id in the
// receive queue. Spawn messages (start addresses) travel the same network
// but match a separate RECV used by the idle-core loop.
//
// The CAM is modeled as one FIFO per (sender, receiver) pair plus one spawn
// FIFO per receiver: RECV matches by sender id and pops the oldest match,
// which is exactly the head of that pair's FIFO, so Recv, RecvSpawn and the
// NextRecvAt/NextSpawnAt wake probes are all O(1) instead of a linear CAM
// walk — the probes sit on the event scheduler's hot path at every width.
type QueueNet struct {
	T Topology
	// BaseLat is the fixed part of the latency (2 in the paper).
	BaseLat int64
	// HopLat is the per-hop latency (1 in the paper).
	HopLat int64
	// Cap bounds each (sender, receiver) pair's in-flight-plus-waiting
	// messages. A full pair back-pressures the sender, bounding how far a
	// producer thread runs ahead of its consumer. Capacity is per pair —
	// not per receiver — so back-pressure only ever blocks a sender that
	// is AHEAD of its receiver; around any cycle of cores the run-ahead
	// deltas sum to zero, so a cycle of blocked senders is impossible
	// (deadlock freedom). 0 means unbounded.
	Cap int
	// pairs[from*Cores()+to] holds the non-spawn messages from→to;
	// spawns[to] holds the spawn messages bound for core to.
	pairs  []fifo
	spawns []fifo
	// counts caches the per-(sender, receiver) queue occupancy (spawn
	// messages included), indexed from*Cores()+to, so CanSend is O(1).
	counts []int32
	// pending is the total queued message count (PendingAny's O(1) answer).
	pending int
	seq     int64
	// Messages counts total sends; RecvWaits counts RECV polls that found
	// nothing ready (an idle-cycle measure).
	Messages  int64
	RecvWaits int64
}

// Queue-mode defaults (the paper's parameters). NewQueueNet applies them
// and Reset restores them, so a reset network forgets any per-run latency
// or capacity override.
const (
	DefaultBaseLat = 2
	DefaultHopLat  = 1
	DefaultCap     = 16
)

// NewQueueNet creates the queue-mode network with the paper's latencies and
// a 16-entry receive queue per core.
func NewQueueNet(t Topology) *QueueNet {
	q := &QueueNet{T: t, BaseLat: DefaultBaseLat, HopLat: DefaultHopLat, Cap: DefaultCap}
	q.pairs = make([]fifo, t.Cores()*t.Cores())
	q.spawns = make([]fifo, t.Cores())
	q.counts = make([]int32, t.Cores()*t.Cores())
	return q
}

// Reset restores NewQueueNet's initial state — default latencies and
// capacity, empty queues, zeroed sequence and counters — while keeping the
// per-queue backing arrays.
func (q *QueueNet) Reset() {
	q.BaseLat, q.HopLat, q.Cap = DefaultBaseLat, DefaultHopLat, DefaultCap
	for i := range q.pairs {
		q.pairs[i].reset()
	}
	for i := range q.spawns {
		q.spawns[i].reset()
	}
	clear(q.counts)
	q.pending = 0
	q.seq = 0
	q.Messages, q.RecvWaits = 0, 0
}

// CanSend reports whether the (from, to) pair has room for another message.
func (q *QueueNet) CanSend(from, to int) bool {
	if q.Cap <= 0 {
		return true
	}
	return q.counts[from*q.T.Cores()+to] < int32(q.Cap)
}

// Send enqueues a value from core `from` to core `to` at the given cycle.
// It returns the message's sequence number and arrival cycle so callers that
// trace message flow can bind the send to the matching receive; other
// callers ignore the results.
func (q *QueueNet) Send(from, to int, v uint64, cycle int64) (seq, arriveAt int64) {
	q.seq++
	hops := int64(q.T.Hops(from, to))
	arriveAt = cycle + q.BaseLat + hops*q.HopLat
	q.pairs[from*q.T.Cores()+to].push(message{
		from: from, to: to, val: v,
		readyAt: arriveAt,
		seq:     q.seq,
	})
	q.counts[from*q.T.Cores()+to]++
	q.pending++
	q.Messages++
	return q.seq, arriveAt
}

// SendSpawn enqueues a thread-start message carrying a code address. Like
// Send it returns the message's sequence number and arrival cycle.
func (q *QueueNet) SendSpawn(from, to int, addr uint64, cycle int64) (seq, arriveAt int64) {
	q.seq++
	hops := int64(q.T.Hops(from, to))
	arriveAt = cycle + q.BaseLat + hops*q.HopLat
	q.spawns[to].push(message{
		from: from, to: to, val: addr, spawn: true,
		readyAt: arriveAt,
		seq:     q.seq,
	})
	q.counts[from*q.T.Cores()+to]++
	q.pending++
	q.Messages++
	return q.seq, arriveAt
}

// Recv pops the oldest non-spawn message from `from` that has arrived by
// `cycle`. ok=false means the receiver must stall this cycle. On success the
// popped message's sequence number (as returned by Send) identifies the
// matching send for trace flow binding.
func (q *QueueNet) Recv(to, from int, cycle int64) (v uint64, seq int64, ok bool) {
	f := &q.pairs[from*q.T.Cores()+to]
	if f.empty() || f.peek().readyAt > cycle {
		q.RecvWaits++
		return 0, 0, false
	}
	m := f.pop()
	q.counts[from*q.T.Cores()+to]--
	q.pending--
	return m.val, m.seq, true
}

// NextRecvAt returns the cycle at which a RECV on core `to` polling sender
// `from` would first succeed, given no further network activity: the arrival
// time of the oldest matching message, or NoWake when none is queued. Recv
// always pops the oldest (lowest-seq) matching message and succeeds only
// once THAT message has arrived, so the probe reports the pair FIFO head's
// readyAt rather than the minimum over all matches.
func (q *QueueNet) NextRecvAt(to, from int) int64 {
	f := &q.pairs[from*q.T.Cores()+to]
	if f.empty() {
		return NoWake
	}
	return f.peek().readyAt
}

// RecvSpawn pops the oldest spawn message for an idle core. On success the
// popped message's sequence number identifies the matching SendSpawn, and
// `from` is the spawning core (the event scheduler uses it to release a
// sender blocked on that pair's back-pressure).
func (q *QueueNet) RecvSpawn(to int, cycle int64) (addr uint64, from int, seq int64, ok bool) {
	f := &q.spawns[to]
	if f.empty() || f.peek().readyAt > cycle {
		return 0, 0, 0, false
	}
	m := f.pop()
	q.counts[m.from*q.T.Cores()+to]--
	q.pending--
	return m.val, m.from, m.seq, true
}

// NextSpawnAt returns the cycle at which an idle core `to` would first see a
// spawn message, or NoWake when none is queued. Like NextRecvAt it reports
// the oldest spawn message's arrival time (spawns from different senders
// travel different distances, so a newer message can arrive earlier — but
// RecvSpawn still waits for the oldest).
func (q *QueueNet) NextSpawnAt(to int) int64 {
	f := &q.spawns[to]
	if f.empty() {
		return NoWake
	}
	return f.peek().readyAt
}

// Pending reports whether any message (arrived or in flight) is queued for
// core `to` — used to distinguish idle from deadlocked cores.
func (q *QueueNet) Pending(to int) bool {
	if !q.spawns[to].empty() {
		return true
	}
	n := q.T.Cores()
	for from := 0; from < n; from++ {
		if !q.pairs[from*n+to].empty() {
			return true
		}
	}
	return false
}

// PendingAny reports whether any message exists anywhere in the network.
func (q *QueueNet) PendingAny() bool { return q.pending > 0 }
