package isa

import (
	"testing"
	"testing/quick"
)

func TestOpcodeStrings(t *testing.T) {
	for op := NOP; op < numOpcodes; op++ {
		s := op.String()
		if s == "" || s[0] == 'o' && s != "or" {
			t.Errorf("opcode %d has missing/placeholder name %q", op, s)
		}
	}
}

func TestOpcodeClassesDisjoint(t *testing.T) {
	for op := NOP; op < numOpcodes; op++ {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%v is both load and store", op)
		}
		if op.IsLoad() || op.IsStore() {
			if !op.IsMemory() {
				t.Errorf("%v is load/store but not memory", op)
			}
		}
		if op.IsMemory() && op.IsBranch() {
			t.Errorf("%v is both memory and branch", op)
		}
		if op.IsComm() && op.IsMemory() {
			t.Errorf("%v is both comm and memory", op)
		}
	}
}

func TestLatencyPositive(t *testing.T) {
	for op := NOP; op < numOpcodes; op++ {
		if op.Latency() < 1 {
			t.Errorf("%v latency %d < 1", op, op.Latency())
		}
	}
}

func TestLatencyTable(t *testing.T) {
	cases := []struct {
		op   Opcode
		want int
	}{
		{ADD, 1}, {MUL, 3}, {DIV, 12}, {FADD, 4}, {FDIV, 12},
		{LOAD, 2}, {FLOAD, 2}, {STORE, 1}, {BR, 1}, {NOP, 1},
	}
	for _, c := range cases {
		if got := c.op.Latency(); got != c.want {
			t.Errorf("%v latency = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{GPR(3), "r3"}, {FPR(0), "f0"}, {PR(7), "p7"}, {BTR(1), "b1"},
		{Reg{}, "_"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg%v.String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestDirectionOpposite(t *testing.T) {
	// Opposite is an involution and never maps a direction to itself.
	f := func(b uint8) bool {
		d := Direction(b % 4)
		return d.Opposite() != d && d.Opposite().Opposite() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstReadsWrites(t *testing.T) {
	add := Inst{Op: ADD, Dst: GPR(1), Src1: GPR(2), Src2: GPR(3)}
	if r := add.Reads(); len(r) != 2 || r[0] != GPR(2) || r[1] != GPR(3) {
		t.Errorf("add.Reads() = %v", r)
	}
	if w, ok := add.Writes(); !ok || w != GPR(1) {
		t.Errorf("add.Writes() = %v, %v", w, ok)
	}
	st := Inst{Op: STORE, Src1: GPR(4), Src2: GPR(5), Imm: 8}
	if _, ok := st.Writes(); ok {
		t.Error("store should not write a register")
	}
	if _, ok := Nop().Writes(); ok {
		t.Error("nop should not write a register")
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: MOVI, Dst: GPR(1), Imm: 42}, "movi r1 = 42"},
		{Inst{Op: LOAD, Dst: GPR(2), Src1: GPR(3), Imm: 16}, "load r2 = [r3+16]"},
		{Inst{Op: STORE, Src1: GPR(3), Src2: GPR(2), Imm: 8}, "store [r3+8] = r2"},
		{Inst{Op: PBR, Dst: BTR(0), Imm: 5}, "pbr b0 = B5"},
		{Inst{Op: BR, Src1: BTR(0), Src2: PR(1)}, "br b0 if p1"},
		{Inst{Op: BR, Src1: BTR(0)}, "br b0"},
		{Inst{Op: PUT, Src1: GPR(9), Dir: East}, "put r9 -> east"},
		{Inst{Op: GETOP, Dst: GPR(9), Dir: West}, "get r9 <- west"},
		{Inst{Op: SEND, Src1: GPR(1), Core: 2}, "send r1 -> core2"},
		{Inst{Op: RECV, Dst: PR(1), Core: 0}, "recv p1 <- core0"},
		{Inst{Op: SPAWN, Core: 1, Imm: 3}, "spawn core1 @B3"},
		{Inst{Op: MODESWITCH, Imm: 1}, "mode_switch decoupled"},
		{Nop(), "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
