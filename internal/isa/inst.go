package isa

import (
	"fmt"
	"strings"
)

// Inst is one machine operation in a core's instruction stream. Cores are
// single-issue (the paper's evaluation configuration), so a core executes at
// most one Inst per cycle; the per-core instruction stream is therefore a
// flat slice of Inst and the cycle a block's n-th operation issues is
// determined by the compiler's schedule.
//
// Field usage by opcode:
//
//	arithmetic/compare  Dst, Src1, Src2 (or Imm for the *I forms)
//	MOVI/FMOVI          Dst, Imm / F
//	LOAD/FLOAD          Dst, Src1 (base), Imm (byte offset)
//	STORE/FSTORE        Src1 (base), Src2 (value), Imm (byte offset)
//	PBR                 Dst (BTR), Imm (logical block id)
//	BR                  Src1 (BTR), Src2 (PR predicate; invalid = always)
//	PUT                 Src1 (value), Dir
//	GETOP               Dst, Dir
//	SEND                Src1 (value), Core (target)
//	RECV                Dst, Core (sender)
//	BCAST               Src1 (value) — delivered to all other group cores
//	SPAWN               Core (target), Imm (start block id on target)
//	MODESWITCH          Imm (0 = coupled, 1 = decoupled)
//	TXBEGIN/TXCOMMIT    no operands
type Inst struct {
	Op   Opcode
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
	F    float64
	Dir  Direction
	Core int
	// IROp records the id of the IR operation this instruction was lowered
	// from (-1 for compiler-inserted instructions); used for debugging and
	// for attributing profile information.
	IROp int
}

// Nop returns a no-operation filler instruction.
func Nop() Inst { return Inst{Op: NOP, IROp: -1} }

// Reads returns the registers the instruction reads.
func (in Inst) Reads() []Reg {
	var rs []Reg
	if in.Src1.Valid() {
		rs = append(rs, in.Src1)
	}
	if in.Src2.Valid() {
		rs = append(rs, in.Src2)
	}
	return rs
}

// Writes returns the register the instruction writes, if any.
func (in Inst) Writes() (Reg, bool) {
	if in.Dst.Valid() {
		return in.Dst, true
	}
	return Reg{}, false
}

// String renders the instruction in a readable assembler-like form.
func (in Inst) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch in.Op {
	case NOP, HALT, SLEEP, TXBEGIN, TXCOMMIT, TXABORT:
	case MOVI:
		fmt.Fprintf(&b, " %s = %d", in.Dst, in.Imm)
	case FMOVI:
		fmt.Fprintf(&b, " %s = %g", in.Dst, in.F)
	case LOAD, FLOAD:
		fmt.Fprintf(&b, " %s = [%s+%d]", in.Dst, in.Src1, in.Imm)
	case STORE, FSTORE:
		fmt.Fprintf(&b, " [%s+%d] = %s", in.Src1, in.Imm, in.Src2)
	case PBR:
		fmt.Fprintf(&b, " %s = B%d", in.Dst, in.Imm)
	case BR:
		if in.Src2.Valid() {
			fmt.Fprintf(&b, " %s if %s", in.Src1, in.Src2)
		} else {
			fmt.Fprintf(&b, " %s", in.Src1)
		}
	case PUT:
		fmt.Fprintf(&b, " %s -> %s", in.Src1, in.Dir)
	case GETOP:
		fmt.Fprintf(&b, " %s <- %s", in.Dst, in.Dir)
	case SEND:
		fmt.Fprintf(&b, " %s -> core%d", in.Src1, in.Core)
	case RECV:
		fmt.Fprintf(&b, " %s <- core%d", in.Dst, in.Core)
	case BCAST:
		fmt.Fprintf(&b, " %s -> all", in.Src1)
	case SPAWN:
		fmt.Fprintf(&b, " core%d @B%d", in.Core, in.Imm)
	case MODESWITCH:
		if in.Imm == 0 {
			b.WriteString(" coupled")
		} else {
			b.WriteString(" decoupled")
		}
	default:
		if in.Dst.Valid() {
			fmt.Fprintf(&b, " %s =", in.Dst)
		}
		if in.Src1.Valid() {
			fmt.Fprintf(&b, " %s", in.Src1)
		}
		if in.Src2.Valid() {
			fmt.Fprintf(&b, ", %s", in.Src2)
		} else if in.Op == ADD || in.Op == SUB || in.Op == MUL || in.Op == SHL || in.Op == SHR || in.Op == AND || in.Op == OR || in.Op == XOR || in.Op == DIV || in.Op == REM {
			fmt.Fprintf(&b, ", %d", in.Imm)
		}
	}
	return b.String()
}

// InstBytes is the size one instruction occupies in a core's instruction
// memory; used by the L1 I-cache model.
const InstBytes = 16
