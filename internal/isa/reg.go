package isa

import "fmt"

// RegClass identifies one of the four register files of a Voltron core
// (paper Figure 4(b)): general-purpose (GPR, int64), floating point
// (FPR, float64), predicate (PR, bool) and branch target (BTR).
type RegClass uint8

// Register classes.
const (
	RegNone RegClass = iota
	RegGPR
	RegFPR
	RegPR
	RegBTR
)

// String returns the conventional register-file prefix for the class.
func (c RegClass) String() string {
	switch c {
	case RegGPR:
		return "r"
	case RegFPR:
		return "f"
	case RegPR:
		return "p"
	case RegBTR:
		return "b"
	}
	return "?"
}

// Reg names one register: a class plus an index. The simulator provides
// unlimited virtual registers per class (see DESIGN.md §2 on the register
// allocation substitution).
type Reg struct {
	Class RegClass
	Index int
}

// Convenience constructors.
func GPR(i int) Reg { return Reg{RegGPR, i} }
func FPR(i int) Reg { return Reg{RegFPR, i} }
func PR(i int) Reg  { return Reg{RegPR, i} }
func BTR(i int) Reg { return Reg{RegBTR, i} }

// Valid reports whether r names an actual register.
func (r Reg) Valid() bool { return r.Class != RegNone }

// String renders the register in assembler form, e.g. "r12" or "p3".
func (r Reg) String() string {
	if !r.Valid() {
		return "_"
	}
	return fmt.Sprintf("%s%d", r.Class, r.Index)
}

// Direction identifies a mesh neighbor for direct-mode PUT/GET. The paper's
// PUT/GET carry a 2-bit direction specifier (east, west, north, south).
type Direction uint8

// Mesh directions.
const (
	East Direction = iota
	West
	North
	South
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	}
	return "dir?"
}

// Opposite returns the direction a matching GET must name to receive a PUT
// sent toward d.
func (d Direction) Opposite() Direction {
	switch d {
	case East:
		return West
	case West:
		return East
	case North:
		return South
	default:
		return North
	}
}
