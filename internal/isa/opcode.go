// Package isa defines the instruction set of the Voltron machine: an
// HPL-PD-style VLIW core ISA extended with the dual-mode scalar operand
// network operations (PUT/GET for direct mode, SEND/RECV for queue mode),
// branch-condition broadcast (BCAST), fine-grain thread control
// (SPAWN/SLEEP), execution-mode switching (MODE_SWITCH), and transactional
// memory markers for speculative DOALL loops.
//
// The same opcode space is used by the compiler IR (over virtual registers)
// and by the per-core machine code the compiler emits, so the scheduler and
// the simulator share one vocabulary.
package isa

import "fmt"

// Opcode identifies an operation.
type Opcode uint8

// Opcodes. Grouped as in the HPL-PD specification: integer, floating point,
// comparison, memory, unbundled branch (PBR/CMP/BR), and the Voltron
// communication extensions.
const (
	NOP Opcode = iota

	// Integer arithmetic and logic (GPR).
	ADD
	SUB
	MUL
	DIV
	REM
	AND
	OR
	XOR
	SHL
	SHR
	MOVI // load immediate into GPR
	MOV  // GPR to GPR copy

	// Floating point (FPR).
	FADD
	FSUB
	FMUL
	FDIV
	FMOVI // load float immediate
	FMOV
	ITOF // GPR -> FPR convert
	FTOI // FPR -> GPR convert

	// Comparison: writes a predicate register (PR).
	CMPEQ
	CMPNE
	CMPLT
	CMPLE
	CMPGT
	CMPGE
	FCMPLT
	PAND
	POR
	PNOT

	// Memory. Addresses are byte addresses; all accesses are 8-byte words.
	LOAD   // GPR dst <- [GPR base + imm]
	STORE  // [GPR base + imm] <- GPR src
	FLOAD  // FPR dst <- [GPR base + imm]
	FSTORE // [GPR base + imm] <- FPR src

	// Unbundled branch (HPL-PD). PBR writes a branch-target register; BR
	// transfers control if its predicate is true (or unconditionally).
	PBR  // BTR dst <- block target
	BR   // branch to BTR target if PR src (or always if no predicate)
	HALT // end of program (single core / master)

	// Voltron scalar operand network: direct mode (coupled execution).
	PUT   // put GPR/PR value on the wire toward a direction, this cycle
	GETOP // get a value from a direction into a register, this cycle

	// Voltron scalar operand network: queue mode (decoupled execution).
	SEND  // send register value to a target core (enqueued, routed)
	RECV  // receive a value from a sender core (stalls until present)
	BCAST // broadcast a predicate/GPR to all other coupled cores

	// Fine-grain thread control (decoupled mode).
	SPAWN // send a start address to a target core
	SLEEP // finish the current fine-grain thread; wait for next SPAWN

	// Mode switching. Acts as a barrier when entering coupled mode.
	MODESWITCH

	// Transactional memory (statistical DOALL).
	TXBEGIN
	TXCOMMIT
	TXABORT

	numOpcodes
)

var opcodeNames = [numOpcodes]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	AND: "and", OR: "or", XOR: "xor", SHL: "shl", SHR: "shr",
	MOVI: "movi", MOV: "mov",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FMOVI: "fmovi", FMOV: "fmov", ITOF: "itof", FTOI: "ftoi",
	CMPEQ: "cmpeq", CMPNE: "cmpne", CMPLT: "cmplt", CMPLE: "cmple",
	CMPGT: "cmpgt", CMPGE: "cmpge", FCMPLT: "fcmplt",
	PAND: "pand", POR: "por", PNOT: "pnot",
	LOAD: "load", STORE: "store", FLOAD: "fload", FSTORE: "fstore",
	PBR: "pbr", BR: "br", HALT: "halt",
	PUT: "put", GETOP: "get",
	SEND: "send", RECV: "recv", BCAST: "bcast",
	SPAWN: "spawn", SLEEP: "sleep", MODESWITCH: "mode_switch",
	TXBEGIN: "txbegin", TXCOMMIT: "txcommit", TXABORT: "txabort",
}

// String returns the assembler mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsMemory reports whether the opcode accesses data memory.
func (op Opcode) IsMemory() bool {
	switch op {
	case LOAD, STORE, FLOAD, FSTORE:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads data memory.
func (op Opcode) IsLoad() bool { return op == LOAD || op == FLOAD }

// IsStore reports whether the opcode writes data memory.
func (op Opcode) IsStore() bool { return op == STORE || op == FSTORE }

// IsBranch reports whether the opcode can transfer control.
func (op Opcode) IsBranch() bool { return op == BR || op == HALT || op == SLEEP }

// IsComm reports whether the opcode uses the scalar operand network.
func (op Opcode) IsComm() bool {
	switch op {
	case PUT, GETOP, SEND, RECV, BCAST, SPAWN:
		return true
	}
	return false
}

// IsCompare reports whether the opcode writes a predicate register.
func (op Opcode) IsCompare() bool {
	switch op {
	case CMPEQ, CMPNE, CMPLT, CMPLE, CMPGT, CMPGE, FCMPLT, PAND, POR, PNOT:
		return true
	}
	return false
}

// IsFloat reports whether the opcode produces a floating-point result.
func (op Opcode) IsFloat() bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV, FMOVI, FMOV, ITOF, FLOAD:
		return true
	}
	return false
}

// Latency returns the execution latency of the opcode in cycles, following
// the Itanium-like latencies the paper assumes via HPL-PD. Loads report
// their L1-hit latency; cache misses add time in the memory model.
func (op Opcode) Latency() int {
	switch op {
	case MUL:
		return 3
	case DIV, REM, FDIV:
		return 12
	case FADD, FSUB, FMUL, ITOF, FTOI:
		return 4
	case LOAD, FLOAD:
		return 2
	default:
		return 1
	}
}
