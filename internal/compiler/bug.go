package compiler

import (
	"voltron/internal/ir"
	"voltron/internal/xnet"
)

// Bottom-Up Greedy (BUG) operation partitioning for multicluster VLIW
// (Ellis' Bulldog algorithm, as used by the paper for coupled mode), and its
// decoupled-mode extension eBUG (paper §4.1), which adds edge weights for
// likely-missing loads and memory dependences plus a memory-balancing
// penalty so that independent misses spread across cores and dependent
// memory operations stay together.

// bugParams tunes the shared partitioner.
type bugParams struct {
	cores int
	// commLat estimates the cycles to move a value between two cores.
	commLat func(a, b int) int
	// Weights (eBUG); zero for plain BUG.
	missWeight    int
	memDepWeight  int
	memBalPenalty int
	missRate      map[*ir.Op]float64
	missThreshold float64
	// missPenalty scales profiled miss rates into expected stall cycles so
	// completion estimates reflect that an in-order core blocks on a
	// missing load.
	missPenalty float64
	// overlapMisses marks decoupled-mode partitioning, where spreading
	// miss-prone loads across cores overlaps their stalls (MLP); coupled
	// lock-step gains nothing from spreading because every miss stalls
	// every core.
	overlapMisses bool
}

// effLat is the profile-weighted expected latency of an op.
func (p *bugParams) effLat(o *ir.Op) int {
	lat := o.Code.Latency()
	if p.missRate != nil && o.Code.IsLoad() {
		lat += int(p.missRate[o] * p.missPenalty)
	}
	return lat
}

// BUG partitions a region's ops for coupled-mode ILP: the communication
// cost model is the direct-mode network (1 cycle/hop).
func BUG(r *ir.Region, opts Options) Assignment {
	top := xnet.TopologyFor(opts.Cores)
	p := bugParams{
		cores:       opts.Cores,
		commLat:     func(a, b int) int { return top.Hops(a, b) },
		missPenalty: 60,
	}
	if opts.Profile != nil {
		p.missRate = opts.Profile.MissRate
	}
	return bugPartition(r, p)
}

// EBUG partitions a region's ops for decoupled-mode strands: queue-mode
// communication costs (2 + hops), plus the eBUG edge weights unless the
// ablation disables them.
func EBUG(r *ir.Region, opts Options) Assignment {
	top := xnet.TopologyFor(opts.Cores)
	p := bugParams{
		cores:         opts.Cores,
		commLat:       func(a, b int) int { return 2 + top.Hops(a, b) },
		overlapMisses: true,
	}
	if !opts.DisableEBUGWeights {
		p.missWeight = 5
		p.memDepWeight = 30
		p.memBalPenalty = 4
		p.missThreshold = 0.05
		p.missPenalty = 60
		if opts.Profile != nil {
			p.missRate = opts.Profile.MissRate
		}
	}
	return bugPartition(r, p)
}

// lineGroups pairs stores that touch the same cache line in the same
// iteration (same array, same affine stride, offsets within a line):
// splitting them across cores would ping-pong the line through the
// coherence protocol every iteration (false sharing), so the partitioner
// pins each group to one core.
func lineGroups(r *ir.Region) map[*ir.Op]*ir.Op {
	leader := map[*ir.Op]*ir.Op{}
	var loops []*ir.Loop
	loops = r.Loops()
	loopOf := func(b *ir.Block) *ir.Loop {
		var innermost *ir.Loop
		for _, l := range loops {
			if l.Blocks[b.ID] && (innermost == nil || len(l.Blocks) < len(innermost.Blocks)) {
				innermost = l
			}
		}
		return innermost
	}
	var stores []*ir.Op
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if o.Code.IsStore() {
				stores = append(stores, o)
			}
		}
	}
	const lineBytes = 64
	// One derivation context per loop: building a context walks the whole
	// region, and this pairwise scan issues O(stores²) queries.
	ctxs := map[*ir.Loop]*ir.AffineCtx{}
	ctxFor := func(l *ir.Loop) *ir.AffineCtx {
		c, ok := ctxs[l]
		if !ok {
			c = r.NewAffineCtx(l)
			ctxs[l] = c
		}
		return c
	}
	for i, a := range stores {
		for _, b := range stores[i+1:] {
			if a.Obj == ir.UnknownObj || a.Obj != b.Obj {
				continue
			}
			l := loopOf(a.Blk)
			if loopOf(b.Blk) != l {
				continue
			}
			ctx := ctxFor(l)
			ea := r.AddrExprOf(a, l, ctx)
			eb := r.AddrExprOf(b, l, ctx)
			if !ea.Known || !eb.Known || ea.Stride != eb.Stride {
				continue
			}
			d := ea.Offset - eb.Offset
			if d < 0 {
				d = -d
			}
			if d < lineBytes {
				la, lb := findLeader(leader, a), findLeader(leader, b)
				if la != lb {
					leader[lb] = la
				}
			}
		}
	}
	return leader
}

func findLeader(leader map[*ir.Op]*ir.Op, o *ir.Op) *ir.Op {
	for leader[o] != nil && leader[o] != o {
		o = leader[o]
	}
	return o
}

// bugPartition assigns every op of the region to a core by bottom-up greedy
// estimation of completion times, block by block in reverse postorder.
func bugPartition(r *ir.Region, p bugParams) Assignment {
	a := Assignment{}
	if p.cores <= 1 {
		return uniform(r, 0)
	}
	groups := lineGroups(r)
	groupCore := map[*ir.Op]int{}
	// home tracks which core owns each value's latest def.
	home := map[ir.Value]int{}
	// memCount tracks memory ops per core for balancing.
	memCount := make([]int, p.cores)
	totalMem := 0
	likelyMiss := func(o *ir.Op) bool {
		if p.missRate == nil || !o.Code.IsMemory() {
			return false
		}
		return p.missRate[o] > p.missThreshold
	}
	for _, b := range r.ReversePostorder() {
		dfg := r.BuildBlockDFG(b)
		// estimated completion time of each scheduled op, and per-core
		// next-free slot, within this block.
		done := map[*ir.Op]int{}
		free := make([]int, p.cores)
		// Process in a dependence-respecting order: block program order is
		// one (ops only depend on earlier ops within a block).
		for _, o := range b.Ops {
			// Stores pinned by a false-sharing group follow the first
			// member's core.
			if o.Code.IsStore() {
				if c, ok := groupCore[findLeader(groups, o)]; ok {
					a[o] = []int{c}
					done[o] = free[c] + o.Code.Latency()
					free[c]++
					memCount[c]++
					totalMem++
					if o.Dst != ir.NoValue {
						home[o.Dst] = c
					}
					continue
				}
			}
			bestCore, bestEst := 0, 1<<30
			for c := 0; c < p.cores; c++ {
				est := free[c]
				for _, e := range dfg.Preds(o) {
					t := done[e.Src] // completion within this block
					pc := a.Primary(e.Src)
					if pc != c {
						t += p.commLat(pc, c)
						if e.Kind == ir.DepMem && p.memDepWeight > 0 {
							t += p.memDepWeight
						}
						if e.Kind == ir.DepFlow && likelyMiss(e.Src) {
							t += p.missWeight
						}
					}
					if t > est {
						est = t
					}
				}
				// Cross-block operands: pay communication if the value
				// lives elsewhere.
				for _, u := range o.Uses() {
					if hc, ok := home[u]; ok && !definedInBlock(b, u) && hc != c {
						if lat := p.commLat(hc, c); lat > est {
							est = lat
						}
					}
				}
				// Memory balancing: discourage piling memory ops on one
				// core once it holds more than its share.
				if o.Code.IsMemory() && p.memBalPenalty > 0 && totalMem > 0 {
					share := totalMem/p.cores + 1
					if memCount[c] > share {
						est += p.memBalPenalty * (memCount[c] - share)
					}
				}
				if est < bestEst {
					bestEst, bestCore = est, c
				}
			}
			a[o] = []int{bestCore}
			done[o] = bestEst + p.effLat(o)
			// In-order cores block on missing loads: the expected stall
			// occupies the core, not just one issue slot.
			if o.Code.IsLoad() {
				free[bestCore] = bestEst + p.effLat(o) - o.Code.Latency() + 1
			} else {
				free[bestCore] = bestEst + 1
			}
			// Cross-core operands consume transfer slots (PUT on the
			// producer, GET on the consumer); charge both resources so the
			// greedy estimate reflects the real occupancy of splitting.
			for _, e := range dfg.Preds(o) {
				if e.Kind != ir.DepFlow {
					continue
				}
				if pc := a.Primary(e.Src); pc != bestCore {
					free[pc]++
					free[bestCore]++
				}
			}
			if o.Dst != ir.NoValue {
				home[o.Dst] = bestCore
			}
			if o.Code.IsMemory() {
				memCount[bestCore]++
				totalMem++
			}
			if o.Code.IsStore() {
				groupCore[findLeader(groups, o)] = bestCore
			}
		}
	}
	refine(r, a, p, groups)
	return a
}

// refine runs a Kernighan–Lin-style descent over the greedy assignment:
// each op may move to another core when that reduces the number of
// crossing register-flow edges (each costs two issue slots plus latency)
// without unbalancing the per-core op counts. The greedy pass is myopic
// about patterns like butterflies where the first few source assignments
// decide all later traffic; local moves recover lane-coherent partitions.
func refine(r *ir.Region, a Assignment, p bugParams, groups map[*ir.Op]*ir.Op) {
	// Flow neighbors from the per-block DFGs plus cross-block def-use.
	neigh := map[*ir.Op][]*ir.Op{}
	defs := map[ir.Value][]*ir.Op{}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if o.Dst != ir.NoValue {
				defs[o.Dst] = append(defs[o.Dst], o)
			}
		}
	}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			for _, u := range o.Uses() {
				for _, d := range defs[u] {
					if d != o {
						neigh[o] = append(neigh[o], d)
						neigh[d] = append(neigh[d], o)
					}
				}
			}
		}
	}
	cnt := make([]float64, p.cores)
	missLoad := make([]float64, p.cores)
	missOf := func(o *ir.Op) float64 {
		if !p.overlapMisses || p.missRate == nil || !o.Code.IsLoad() {
			return 0
		}
		return p.missRate[o] * p.missPenalty
	}
	for _, o := range r.AllOps() {
		cnt[a.Primary(o)]++
		missLoad[a.Primary(o)] += missOf(o)
	}
	const balWeight = 0.1
	const missBalWeight = 0.1
	movable := func(o *ir.Op) bool {
		// Stores stay where the false-sharing grouping put them.
		return !o.Code.IsStore()
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		for _, o := range r.AllOps() {
			if !movable(o) {
				continue
			}
			cur := a.Primary(o)
			bestCore, bestGain := cur, 0.0
			for c := 0; c < p.cores; c++ {
				if c == cur {
					continue
				}
				var gain float64
				for _, n := range neigh[o] {
					nc := a.Primary(n)
					if nc == cur && nc != c {
						gain -= 2 // edge becomes crossing
					}
					if nc != cur && nc == c {
						gain += 2 // edge becomes local
					}
				}
				gain -= balWeight * ((cnt[c]+1)*(cnt[c]+1) + (cnt[cur]-1)*(cnt[cur]-1) -
					cnt[c]*cnt[c] - cnt[cur]*cnt[cur])
				// Decoupled mode: keep expected miss time spread so cores
				// overlap their stalls (the eBUG memory-balancing factor).
				if m := missOf(o); m > 0 {
					nc, na := missLoad[c]+m, missLoad[cur]-m
					gain -= missBalWeight * (nc*nc + na*na -
						missLoad[c]*missLoad[c] - missLoad[cur]*missLoad[cur])
				}
				if gain > bestGain {
					bestGain, bestCore = gain, c
				}
			}
			if bestCore != cur {
				a[o] = []int{bestCore}
				cnt[cur]--
				cnt[bestCore]++
				missLoad[cur] -= missOf(o)
				missLoad[bestCore] += missOf(o)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// definedInBlock reports whether v has a def among b's ops (before-use
// precision is handled by the DFG edges; this guards the cross-block
// operand cost only).
func definedInBlock(b *ir.Block, v ir.Value) bool {
	for _, o := range b.Ops {
		if o.Dst == v {
			return true
		}
	}
	return false
}
