package compiler

import (
	"sort"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

// Static cycle estimation for compiled regions: schedule slots weighted by
// profiled block execution counts, plus expected cache-miss stall cycles.
// Decoupled cores stall independently, so their miss time is per core and
// the region estimate is the maximum over cores (this is what makes the
// estimator see memory-level parallelism); coupled cores stall together, so
// the union of all cores' miss time is added to the (uniform) slot length.
// The selector (paper §4.2) ranks candidate strategies with this estimate.

// estMissPenalty is the expected stall per missing load (between the L2 and
// memory round trips).
const estMissPenalty = 80

// EstimateCycles predicts a compiled region's execution time from the
// profile. It is a ranking heuristic, not a simulator.
func EstimateCycles(cr *core.CompiledRegion, r *ir.Region, pr *prof.Profile) float64 {
	opByID := map[int]*ir.Op{}
	for _, o := range r.AllOps() {
		opByID[o.ID] = o
	}
	blockByID := map[int64]*ir.Block{}
	for _, b := range r.Blocks {
		blockByID[int64(b.ID)] = b
	}
	count := func(b *ir.Block) float64 {
		if pr == nil {
			return 1
		}
		if c, ok := pr.BlockCount[b]; ok {
			return float64(c)
		}
		return 1
	}
	var slots []float64
	var miss []float64
	for c := range cr.Code {
		code := cr.Code[c]
		if len(code) == 0 {
			slots = append(slots, 0)
			miss = append(miss, 0)
			continue
		}
		// Block extents from the label table.
		type ext struct {
			start int
			blk   *ir.Block
		}
		var exts []ext
		for lbl, idx := range cr.Labels[c] {
			if b, ok := blockByID[lbl]; ok {
				exts = append(exts, ext{idx, b})
			}
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].start < exts[j].start })
		var s float64
		if len(exts) > 0 {
			s += float64(exts[0].start) // prologue runs once
		}
		for i, e := range exts {
			end := len(code)
			if i+1 < len(exts) {
				end = exts[i+1].start
			}
			s += float64(end-e.start) * count(e.blk)
		}
		// Expected miss stalls of this core's loads.
		var m float64
		if pr != nil {
			for _, in := range code {
				if in.Op.IsLoad() && in.IROp >= 0 {
					if o := opByID[in.IROp]; o != nil {
						m += float64(pr.ExecCount[o]) * pr.MissRate[o] * estMissPenalty
					}
				}
			}
		}
		slots = append(slots, s)
		miss = append(miss, m)
	}
	if cr.Mode == core.Coupled {
		// Lock-step: one schedule length, every core's stalls union.
		var total float64
		maxSlots := 0.0
		for i := range slots {
			total += miss[i]
			if slots[i] > maxSlots {
				maxSlots = slots[i]
			}
		}
		return maxSlots + total
	}
	best := 0.0
	for i := range slots {
		if v := slots[i] + miss[i]; v > best {
			best = v
		}
	}
	return best
}
