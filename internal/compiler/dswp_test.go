package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// buildPipelineLoop: a pointer-chase recurrence feeding dependent work —
// the canonical DSWP shape (one cyclic SCC + an acyclic downstream).
func buildPipelineLoop(n int64) *ir.Program {
	p := ir.NewProgram("pipe")
	next := p.Array("next", 64)
	data := p.Array("data", 64)
	out := p.Array("out", n)
	for i := int64(0); i < 64; i++ {
		p.SetInit(next, i, (i+37)%64)
		p.SetInit(data, i, i*3)
	}
	r := p.Region("loop")
	pre := r.NewBlock()
	nb := pre.AddrOf(next)
	db := pre.AddrOf(data)
	ob := pre.AddrOf(out)
	idx := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		nv := b.Load(next, b.Add(nb, b.ShlI(idx, 3)), 0)
		mv := b.Region.NewOp(isa.MOV)
		mv.Args[0] = nv
		mv.Dst = idx
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		v := b.Load(data, b.Add(db, b.ShlI(nv, 3)), 0)
		w := b.AddI(b.MulI(v, 5), 11)
		b.Store(out, b.Add(ob, b.ShlI(i, 3)), 0, w)
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

func TestDSWPFindsPipeline(t *testing.T) {
	p := buildPipelineLoop(64)
	pr := mustProfile(t, p)
	opts := Options{Cores: 2, Strategy: ForceFTLP, Profile: pr}.withDefaults()
	part, est := tryDSWP(p.Regions[0], opts)
	if part == nil {
		t.Fatal("no pipeline found in the canonical DSWP shape")
	}
	if est <= 1 {
		t.Errorf("estimated speedup = %g, want > 1", est)
	}
	// The chase recurrence (MOV idx and its load) must share a stage.
	var chaseLoad, chaseMov *ir.Op
	for _, o := range p.Regions[0].AllOps() {
		if o.Code == isa.MOV {
			chaseMov = o
		}
		if o.Code == isa.LOAD && chaseLoad == nil {
			chaseLoad = o
		}
	}
	if part.Primary(chaseLoad) != part.Primary(chaseMov) {
		t.Error("chase recurrence split across stages (SCC merge failed)")
	}
	// Stages must be assigned in topological order: the store's stage is
	// not earlier than the chase's.
	var store *ir.Op
	for _, o := range p.Regions[0].AllOps() {
		if o.Code == isa.STORE {
			store = o
		}
	}
	if part.Primary(store) < part.Primary(chaseLoad) {
		t.Error("pipeline stages not in topological order")
	}
}

func TestDSWPEndToEnd(t *testing.T) {
	p := buildPipelineLoop(64)
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		cp, err := Compile(p, Options{Cores: cores, Strategy: ForceFTLP})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mem.Equal(golden.Mem) {
			t.Fatalf("%d cores: DSWP execution wrong", cores)
		}
	}
}

func TestDSWPRejectsMonolithicRecurrence(t *testing.T) {
	// A loop that is one big SCC (everything feeds the recurrence) has no
	// pipeline.
	p := ir.NewProgram("mono")
	out := p.Array("out", 1)
	r := p.Region("loop")
	pre := r.NewBlock()
	acc := pre.MovI(1)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 32, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		// acc = (acc*3 + i) — every body op is in the recurrence.
		t1 := b.Mul(acc, acc)
		mv := b.Region.NewOp(isa.ADD)
		mv.Args[0] = t1
		mv.Args[1] = i
		mv.Dst = acc
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		return b
	})
	after.Store(out, after.AddrOf(out), 0, acc)
	after.ExitRegion()
	r.Seal()
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: ForceFTLP, Profile: pr}.withDefaults()
	_, est := tryDSWP(p.Regions[0], opts)
	if est >= opts.DSWPThreshold {
		t.Errorf("monolithic recurrence got pipeline estimate %g", est)
	}
}

func TestDSWPPipelineOverlapsStages(t *testing.T) {
	// The pipeline's gain comes from decoupling: stage 1 (miss-prone
	// chase) runs ahead while stage 2 computes. Check the 2-core decoupled
	// run beats serial on a miss-heavy instance.
	p := ir.NewProgram("pipebig")
	n := int64(256)
	next := p.Array("next", 2048)
	out := p.Array("out", n)
	stride := int64(1031)
	for i := int64(0); i < 2048; i++ {
		p.SetInit(next, i, (i+stride)%2048)
	}
	r := p.Region("loop")
	pre := r.NewBlock()
	nb := pre.AddrOf(next)
	ob := pre.AddrOf(out)
	idx := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		nv := b.Load(next, b.Add(nb, b.ShlI(idx, 3)), 0)
		mv := b.Region.NewOp(isa.MOV)
		mv.Args[0] = nv
		mv.Dst = idx
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		w := nv
		for k := 0; k < 6; k++ {
			w = b.AddI(b.MulI(w, 3), 1)
		}
		b.Store(out, b.Add(ob, b.ShlI(i, 3)), 0, w)
		return b
	})
	after.ExitRegion()
	r.Seal()
	base := runStrategy(t, p, Serial, 1)
	par := runStrategy(t, p, ForceFTLP, 2)
	if par.TotalCycles >= base.TotalCycles {
		t.Errorf("pipeline did not speed up: %d vs serial %d", par.TotalCycles, base.TotalCycles)
	}
}

func runStrategy(t *testing.T, p *ir.Program, s Strategy, cores int) *core.RunResult {
	t.Helper()
	cp, err := Compile(p, Options{Cores: cores, Strategy: s})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
