package compiler

import (
	"sort"

	"voltron/internal/isa"
)

// dagNode is one schedulable machine instruction with its dependence edges;
// the unit the per-core list scheduler operates on.
type dagNode struct {
	inst  isa.Inst
	preds []dagDep
	succs []int
	// height is the longest latency path to any sink (list priority).
	height int
	// cycle is the assigned issue cycle (-1 until scheduled).
	cycle int
}

// dagDep is an incoming edge: the instruction may issue no earlier than
// node's issue cycle + lat.
type dagDep struct {
	node int
	lat  int
}

// dag accumulates nodes for one core within one block.
type dag struct {
	nodes []*dagNode
}

// add appends an instruction with dependences and returns its node index.
func (d *dag) add(in isa.Inst, preds ...dagDep) int {
	n := &dagNode{inst: in, preds: preds, cycle: -1}
	idx := len(d.nodes)
	d.nodes = append(d.nodes, n)
	for _, p := range preds {
		d.nodes[p.node].succs = append(d.nodes[p.node].succs, idx)
	}
	return idx
}

// addEdge inserts an extra dependence after construction.
func (d *dag) addEdge(from, to, lat int) {
	d.nodes[to].preds = append(d.nodes[to].preds, dagDep{node: from, lat: lat})
	d.nodes[from].succs = append(d.nodes[from].succs, to)
}

// computeHeights fills priority heights (longest path to a sink).
func (d *dag) computeHeights() {
	// Process in reverse topological order; nodes were added respecting
	// dependences for ops, but addEdge can create arbitrary shapes, so do a
	// fixed-point (graphs are tiny: one block on one core).
	for changed := true; changed; {
		changed = false
		for i := len(d.nodes) - 1; i >= 0; i-- {
			n := d.nodes[i]
			h := 0
			for _, s := range n.succs {
				lat := 1
				for _, p := range d.nodes[s].preds {
					if p.node == i {
						lat = p.lat
					}
				}
				if v := d.nodes[s].height + lat; v > h {
					h = v
				}
			}
			if h > n.height {
				n.height = h
				changed = true
			}
		}
	}
}

// schedule performs list scheduling onto a single-issue core and returns
// the instruction sequence with NOP fill; slot k issues k cycles after
// block entry. The result always contains at least the scheduled nodes.
//
// The tail is padded so every multi-cycle result is ready by the time the
// sequence ends: successor blocks assume their live-in registers are usable
// at entry, so a block must not expose an in-flight value at its exit.
func (d *dag) schedule() []isa.Inst {
	if len(d.nodes) == 0 {
		return nil
	}
	d.computeHeights()
	remaining := len(d.nodes)
	var out []isa.Inst
	for cycle := 0; remaining > 0; cycle++ {
		// Candidates: unscheduled nodes whose preds are all done and whose
		// latency constraints are satisfied at this cycle.
		best := -1
		for i, n := range d.nodes {
			if n.cycle >= 0 {
				continue
			}
			ok := true
			for _, p := range n.preds {
				pn := d.nodes[p.node]
				if pn.cycle < 0 || pn.cycle+p.lat > cycle {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if best < 0 || n.height > d.nodes[best].height ||
				(n.height == d.nodes[best].height && i < best) {
				best = i
			}
		}
		if best < 0 {
			out = append(out, isa.Nop())
			continue
		}
		d.nodes[best].cycle = cycle
		out = append(out, d.nodes[best].inst)
		remaining--
	}
	for _, n := range d.nodes {
		if n.inst.Dst.Valid() {
			for len(out) < n.cycle+n.inst.Op.Latency() {
				out = append(out, isa.Nop())
			}
		}
	}
	return out
}

// criticalPathLength estimates the schedule length of the dag on a
// single-issue core (used by partitioning heuristics and DSWP's speedup
// estimate) without committing a schedule.
func (d *dag) criticalPathLength() int {
	d.computeHeights()
	max := 0
	for _, n := range d.nodes {
		if n.height+1 > max {
			max = n.height + 1
		}
	}
	if len(d.nodes) > max {
		max = len(d.nodes)
	}
	return max
}

// topoOrder returns node indices in a dependence-respecting order (Kahn),
// breaking ties by insertion order for determinism.
func (d *dag) topoOrder() []int {
	indeg := make([]int, len(d.nodes))
	for _, n := range d.nodes {
		for _, s := range n.succs {
			indeg[s]++
		}
	}
	var ready []int
	for i := range d.nodes {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	var order []int
	for len(ready) > 0 {
		sort.Ints(ready)
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, s := range d.nodes[n].succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}
