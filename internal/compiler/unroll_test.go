package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/mem"
	"voltron/internal/prof"
)

// buildUnrollable: for i in [0,32): dst[i] = src[i]*3 + 1; acc += src[i]
func buildUnrollable(n int64) (*ir.Program, ir.Value) {
	p := ir.NewProgram("unroll")
	src := p.Array("src", n)
	dst := p.Array("dst", n)
	out := p.Array("out", 1)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, i+1)
	}
	r := p.Region("loop")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	acc := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		b.Store(dst, b.Add(db, off), 0, b.AddI(b.MulI(v, 3), 1))
		b.Accum(isa.ADD, acc, v)
		return b
	})
	ob := after.AddrOf(out)
	after.Store(out, ob, 0, acc)
	after.ExitRegion()
	r.Seal()
	return p, acc
}

func TestUnrollPreservesSemantics(t *testing.T) {
	for _, factor := range []int{2, 4} {
		p, _ := buildUnrollable(32)
		golden, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := prof.Collect(p)
		if err != nil {
			t.Fatal(err)
		}
		r := p.Regions[0]
		clone, _, ok := unrollForILP(r, pr, factor)
		if !ok {
			t.Fatalf("factor %d: loop not unrolled", factor)
		}
		if err := clone.Verify(); err != nil {
			t.Fatalf("factor %d: unrolled region invalid: %v", factor, err)
		}
		// Interpret the unrolled region standalone (on a fresh memory image
		// of the same layout) and compare against the original semantics.
		p2 := &ir.Program{Name: "check", Arrays: p.Arrays, Init: p.Init}
		clone.Program = p2
		p2.Regions = append(p2.Regions, clone)
		res2, err := interp.Run(p2, interp.Options{Mem: mem.NewFlatFor(p)})
		if err != nil {
			t.Fatalf("factor %d: interp of unrolled: %v", factor, err)
		}
		if !golden.Mem.Equal(res2.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res2.Mem)
			t.Fatalf("factor %d: unrolled semantics differ at %#x: %d vs %d", factor, addr, a, b)
		}
	}
}

func TestUnrollBodyStructure(t *testing.T) {
	p, _ := buildUnrollable(32)
	pr, _ := prof.Collect(p)
	r := p.Regions[0]
	origBodyLen := len(r.Blocks[2].Ops)
	clone, npr, ok := unrollForILP(r, pr, 4)
	if !ok {
		t.Fatal("not unrolled")
	}
	body := clone.Blocks[2]
	// 4 copies minus the shared iv update, plus 3 per-copy iv adds, plus
	// the final scaled update.
	want := 4*(origBodyLen-1) + 3 + 1
	if len(body.Ops) != want {
		t.Errorf("unrolled body has %d ops, want %d", len(body.Ops), want)
	}
	// Induction update is last and scaled by the factor.
	last := body.Ops[len(body.Ops)-1]
	if last.Code != isa.ADD || last.Imm != 4 {
		t.Errorf("scaled induction update = %v (imm %d), want ADD imm 4", last, last.Imm)
	}
	// The translated profile halves... quarters the body execution counts.
	var origLoad, newLoad *ir.Op
	for _, o := range r.Blocks[2].Ops {
		if o.Code == isa.LOAD {
			origLoad = o
		}
	}
	for _, o := range body.Ops {
		if o.Code == isa.LOAD {
			newLoad = o
			break
		}
	}
	if npr.ExecCount[newLoad] != pr.ExecCount[origLoad]/4 {
		t.Errorf("translated exec count = %d, want %d", npr.ExecCount[newLoad], pr.ExecCount[origLoad]/4)
	}
}

func TestUnrollRejectsNonCanonical(t *testing.T) {
	// Trip count not divisible by the factor.
	p, _ := buildUnrollable(30)
	pr, _ := prof.Collect(p)
	if _, _, ok := unrollForILP(p.Regions[0], pr, 4); ok {
		t.Error("30 iterations unrolled by 4 (no epilogue support)")
	}
	if _, _, ok := unrollForILP(p.Regions[0], pr, 2); !ok {
		t.Error("30 iterations should unroll by 2")
	}
	// A loop with internal control flow must be rejected.
	p2 := ir.NewProgram("diamondloop")
	a := p2.Array("a", 32)
	r := p2.Region("r")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 32, Step: 1}, func(body *ir.Block, i ir.Value) *ir.Block {
		off := body.ShlI(i, 3)
		v := body.Load(a, body.Add(base, off), 0)
		c := body.CmpLTI(v, 5)
		then := r.NewBlock()
		join := r.NewBlock()
		then.Store(a, then.Add(then.AddrOf(a), off), 0, then.MovI(9))
		then.JumpTo(join)
		body.BranchIf(c, then, join)
		return join
	})
	after.ExitRegion()
	r.Seal()
	pr2, _ := prof.Collect(p2)
	if _, _, ok := unrollForILP(p2.Regions[0], pr2, 2); ok {
		t.Error("multi-block loop body unrolled")
	}
}

func TestUnrolledCoupledEndToEnd(t *testing.T) {
	p, _ := buildUnrollable(32)
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4} {
		cp, err := Compile(p, Options{Cores: cores, Strategy: ForceILP})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mem.Equal(golden.Mem) {
			t.Fatalf("%d cores: unrolled coupled execution wrong", cores)
		}
	}
}
