package compiler

import (
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/prof"
)

// Loop unrolling for coupled-mode ILP (the enabling transform the paper's
// Trimaran toolchain applies before multicluster partitioning): a canonical
// counted loop's single-block body is replicated `factor` times with
// iteration-private temporaries renamed, exposing cross-iteration ILP that
// BUG can spread over the lock-step cores. Cross-iteration recurrences
// (accumulators, pointer chases) are left un-renamed, which serializes
// exactly the copies that must serialize. Only exact unrolls are performed
// (the trip count divides the factor), so no epilogue loop is needed.

// unrollForILP returns an unrolled clone of the region plus a profile
// translated to the clone's ops, or ok=false when no loop qualifies.
func unrollForILP(r *ir.Region, pr *prof.Profile, factor int) (*ir.Region, *prof.Profile, bool) {
	if factor < 2 {
		return nil, nil, false
	}
	clone, _ := r.Clone()
	var target *ir.Loop
	for _, l := range clone.Loops() {
		if unrollable(l) {
			total := tripTotal(l.Induction)
			if total%int64(factor) == 0 && total >= 2*int64(factor) {
				target = l
				break
			}
		}
	}
	if target == nil {
		return nil, nil, false
	}
	body := target.Latches[0]
	iv := target.Induction
	renameable := renameableValues(clone, body, iv)
	// srcOf maps every emitted body op to the body op it was copied from
	// (profile translation).
	srcOf := map[*ir.Op]*ir.Op{}
	orig := body.Ops
	body.Ops = nil
	for k := 0; k < factor; k++ {
		ivK := iv.Val
		if k > 0 {
			ivK = clone.NewValue(isa.RegGPR)
			add := clone.NewOp(isa.ADD)
			add.Args[0] = iv.Val
			add.Imm = int64(k) * iv.Step
			add.Dst = ivK
			add.Blk = body
			body.Ops = append(body.Ops, add)
			srcOf[add] = iv.Update // runs as often as the update did
		}
		rename := map[ir.Value]ir.Value{}
		for _, o := range orig {
			if o == iv.Update {
				continue // re-emitted once at the end with the scaled step
			}
			no := clone.NewOp(o.Code)
			no.Imm, no.F, no.Obj = o.Imm, o.F, o.Obj
			for ai, u := range o.Args {
				switch {
				case u == ir.NoValue:
				case u == iv.Val:
					no.Args[ai] = ivK
				default:
					if nv, ok := rename[u]; ok {
						no.Args[ai] = nv
					} else {
						no.Args[ai] = u
					}
				}
			}
			if o.Dst != ir.NoValue {
				if k > 0 && renameable[o.Dst] {
					nv, ok := rename[o.Dst]
					if !ok {
						nv = clone.NewValue(clone.ValueClass(o.Dst))
						rename[o.Dst] = nv
					}
					no.Dst = nv
				} else {
					no.Dst = o.Dst
				}
			}
			no.Blk = body
			body.Ops = append(body.Ops, no)
			srcOf[no] = o
		}
	}
	upd := clone.NewOp(iv.Update.Code)
	upd.Args[0] = iv.Val
	upd.Imm = iv.Update.Imm * int64(factor)
	upd.Dst = iv.Val
	upd.Blk = body
	body.Ops = append(body.Ops, upd)
	srcOf[upd] = iv.Update
	return clone, translateProfile(r, clone, pr, target.Blocks, srcOf, factor), true
}

// tripTotal computes the iteration count of a canonical induction.
func tripTotal(iv *ir.InductionVar) int64 {
	return (iv.LimitImm - iv.InitOp.Imm) / iv.Step
}

// unrollable checks the canonical shape: {header, single-latch body},
// detected induction with immediate bounds, the update in the body, and a
// body small enough that replication will not blow the I-cache.
func unrollable(l *ir.Loop) bool {
	if len(l.Blocks) != 2 || len(l.Latches) != 1 || l.Induction == nil {
		return false
	}
	iv := l.Induction
	if iv.Limit != ir.NoValue || iv.InitOp == nil || iv.Step <= 0 {
		return false
	}
	body := l.Latches[0]
	return iv.Update.Blk == body && body != l.Header && len(body.Ops) <= 32
}

// renameableValues finds iteration-private temporaries: defined in the
// body, never read before their def within an iteration, and never used
// outside the body (including as branch conditions elsewhere).
func renameableValues(r *ir.Region, body *ir.Block, iv *ir.InductionVar) map[ir.Value]bool {
	defPos := map[ir.Value]int{}
	for i, o := range body.Ops {
		if o.Dst != ir.NoValue {
			if _, seen := defPos[o.Dst]; !seen {
				defPos[o.Dst] = i
			}
		}
	}
	out := map[ir.Value]bool{}
	for v, dp := range defPos {
		if v == iv.Val {
			continue
		}
		ok := true
		for _, b := range r.Blocks {
			for i, o := range b.Ops {
				for _, u := range o.Uses() {
					if u != v {
						continue
					}
					if b != body || i < dp {
						ok = false
					}
				}
			}
			if b.Kind == ir.CondBr && b.Cond == v {
				ok = false
			}
		}
		if ok {
			out[v] = true
		}
	}
	return out
}

// translateProfile produces a profile keyed by the clone's ops: body copies
// inherit their source op's miss rate with execution counts divided by the
// factor; untouched blocks map positionally (the clone preserves ids).
func translateProfile(orig, clone *ir.Region, pr *prof.Profile, loopBlocks map[int]bool, srcOf map[*ir.Op]*ir.Op, factor int) *prof.Profile {
	if pr == nil {
		return nil
	}
	npr := &prof.Profile{
		TripCount:  map[*ir.Block]float64{},
		CarriedDep: map[*ir.Block]bool{},
		MissRate:   map[*ir.Op]float64{},
		ExecCount:  map[*ir.Op]int64{},
		BlockCount: map[*ir.Block]int64{},
		RegionOps:  pr.RegionOps,
	}
	origOpsByID := map[int]*ir.Op{}
	for _, o := range orig.AllOps() {
		origOpsByID[o.ID] = o
	}
	origBlockByID := map[int]*ir.Block{}
	for _, b := range orig.Blocks {
		origBlockByID[b.ID] = b
	}
	for _, b := range clone.Blocks {
		ob := origBlockByID[b.ID]
		cnt := pr.BlockCount[ob]
		if loopBlocks[b.ID] {
			cnt /= int64(factor)
		}
		npr.BlockCount[b] = cnt
		if pr.CarriedDep[ob] {
			npr.CarriedDep[b] = true
		}
		if t, ok := pr.TripCount[ob]; ok {
			if loopBlocks[b.ID] {
				t /= float64(factor)
			}
			npr.TripCount[b] = t
		}
		for _, o := range b.Ops {
			if src, ok := srcOf[o]; ok {
				origSrc := origOpsByID[src.ID]
				npr.MissRate[o] = pr.MissRate[origSrc]
				npr.ExecCount[o] = pr.ExecCount[origSrc] / int64(factor)
			} else if oo, ok := origOpsByID[o.ID]; ok {
				npr.MissRate[o] = pr.MissRate[oo]
				npr.ExecCount[o] = pr.ExecCount[oo]
			}
		}
	}
	return npr
}
