package compiler

import (
	"math"
	"reflect"
	"testing"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/trace"
	"voltron/internal/workload"
)

// reweighted returns a copy of pr with every block and op count scaled by
// f (f=0 models a zero-trip-count profile: the region was entered but its
// loop bodies never ran).
func reweighted(pr *prof.Profile, f float64) *prof.Profile {
	out := &prof.Profile{
		MissRate:   map[*ir.Op]float64{},
		ExecCount:  map[*ir.Op]int64{},
		BlockCount: map[*ir.Block]int64{},
	}
	for op, m := range pr.MissRate {
		out.MissRate[op] = m
	}
	for op, c := range pr.ExecCount {
		out.ExecCount[op] = int64(f * float64(c))
	}
	for b, c := range pr.BlockCount {
		out.BlockCount[b] = int64(f * float64(c))
	}
	return out
}

// TestEstimateCyclesTable pins the estimator's profile handling on the
// shapes the classifier depends on: affine loops scale with trip count,
// branchy bodies follow their block weights, and degenerate profiles
// (zero trip count, nil) stay finite and sane.
func TestEstimateCyclesTable(t *testing.T) {
	serialEst := func(t *testing.T, p *ir.Program, pr *prof.Profile) float64 {
		t.Helper()
		r := p.Regions[0]
		cr, err := genSerial(r, 4)
		if err != nil {
			t.Fatal(err)
		}
		return EstimateCycles(cr, r, pr)
	}
	cases := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"affine-loop-scales-with-trip-count", func(t *testing.T) {
			// 4x the iterations must grow the estimate roughly 4x: the body
			// weight dominates, the fixed prologue does not.
			small := progCopyAdd(64)
			big := progCopyAdd(256)
			es := serialEst(t, small, mustProfile(t, small))
			eb := serialEst(t, big, mustProfile(t, big))
			if es <= 0 || eb <= 0 {
				t.Fatalf("estimates non-positive: %g %g", es, eb)
			}
			if ratio := eb / es; ratio < 3 || ratio > 5 {
				t.Errorf("256/64 iteration estimate ratio %.2f, want ~4", ratio)
			}
		}},
		{"branchy-body-follows-block-weights", func(t *testing.T) {
			// Doubling every block count in a branchy body must land the
			// estimate strictly between 1x and 2x: the loop term doubles,
			// the weight-1 prologue does not.
			p := progDiamond(256)
			pr := mustProfile(t, p)
			e1 := serialEst(t, p, pr)
			e2 := serialEst(t, p, reweighted(pr, 2))
			if e1 <= 0 {
				t.Fatalf("estimate non-positive: %g", e1)
			}
			if e2 <= e1 || e2 > 2*e1 {
				t.Errorf("doubled block counts: estimate %g from %g, want in (1x, 2x]", e2, e1)
			}
		}},
		{"zero-trip-count-collapses", func(t *testing.T) {
			// A profile that never entered the loop bodies must collapse the
			// estimate to the prologue's weight — small, non-negative, finite.
			p := progCopyAdd(256)
			pr := mustProfile(t, p)
			full := serialEst(t, p, pr)
			zero := serialEst(t, p, reweighted(pr, 0))
			if math.IsNaN(zero) || math.IsInf(zero, 0) || zero < 0 {
				t.Fatalf("zero-trip estimate not finite: %g", zero)
			}
			if zero >= full/10 {
				t.Errorf("zero-trip estimate %g did not collapse (profiled %g)", zero, full)
			}
		}},
		{"nil-profile-unit-weights", func(t *testing.T) {
			// Without a profile every block weighs 1: the estimate must be
			// positive, finite, and far below the profiled one.
			p := progCopyAdd(256)
			full := serialEst(t, p, mustProfile(t, p))
			unit := serialEst(t, p, nil)
			if unit <= 0 || math.IsInf(unit, 0) {
				t.Fatalf("nil-profile estimate not positive finite: %g", unit)
			}
			if unit >= full {
				t.Errorf("nil-profile estimate %g >= profiled %g", unit, full)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { c.check(t) })
	}
}

// TestQueueCommPenalty: the communication term is zero for coupled
// regions and positive for a decoupled partition that actually sends.
func TestQueueCommPenalty(t *testing.T) {
	p := progStrands(256)
	pr := mustProfile(t, p)
	r := p.Regions[0]
	opts := Options{Cores: 4, Profile: pr}.withDefaults()
	ftlp, err := genFTLP(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateQueueComm(ftlp, r, pr); got <= 0 {
		t.Errorf("decoupled strand region: queue-comm estimate %g, want > 0", got)
	}
	serial, err := genSerial(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateQueueComm(serial, r, pr); got != 0 {
		t.Errorf("coupled region: queue-comm estimate %g, want 0", got)
	}
}

// sameLowering compares the architectural content of two compiled regions:
// everything the machine executes. (Whole-struct DeepEqual would also
// compare the lazily-resolved branch tables, which only exist on regions
// that have already been simulated.)
func sameLowering(a, b *core.CompiledRegion) bool {
	return a.Name == b.Name && a.Mode == b.Mode && a.TxCores == b.TxCores &&
		reflect.DeepEqual(a.Code, b.Code) &&
		reflect.DeepEqual(a.Labels, b.Labels) &&
		reflect.DeepEqual(a.Entry, b.Entry) &&
		reflect.DeepEqual(a.StartAwake, b.StartAwake) &&
		reflect.DeepEqual(a.Fallback, b.Fallback) &&
		reflect.DeepEqual(a.FallbackLabels, b.FallbackLabels)
}

// TestAutoMatchesMeasuredWhereAgreed is the differential guarantee: every
// region the classifier decided statically with the same choice measured
// selection made must carry a byte-identical lowering — auto mode changes
// who decides, never what a decision compiles to. Escalated regions go
// through the unmodified measured pipeline, so when their re-measurement
// lands on the measured pick the lowering must match too.
func TestAutoMatchesMeasuredWhereAgreed(t *testing.T) {
	benches := []string{"gsmdecode", "179.art", "171.swim", "rawcaudio"}
	staticRegions := 0
	for _, bench := range benches {
		t.Run(bench, func(t *testing.T) {
			p, err := workload.Build(bench)
			if err != nil {
				t.Fatal(err)
			}
			pr := mustProfile(t, p)
			measured, err := Compile(p, Options{Cores: 4, Strategy: Hybrid, Profile: pr, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			auto, err := Compile(p, Options{
				Cores: 4, Strategy: Hybrid, Profile: pr, Workers: 1, Selection: SelectAuto,
			})
			if err != nil {
				t.Fatal(err)
			}
			staticRegions += auto.Selection.Static
			for i := range p.Regions {
				asel := auto.Selection.Regions[i]
				msel := measured.Selection.Regions[i]
				if asel.Choice != msel.Choice {
					continue // legitimate disagreement; never-hurts is covered by exp
				}
				if !sameLowering(auto.Regions[i], measured.Regions[i]) {
					t.Errorf("region %d (%s, tier %s): same choice %q, different lowering",
						i, p.Regions[i].Name, asel.Tier, asel.Choice)
				}
			}
		})
	}
	if staticRegions == 0 {
		t.Error("no region anywhere was decided statically; the differential test exercised nothing")
	}
}

// TestStaticSelectionNeverSimulates: static mode must resolve every region
// without escalation, marking them all as statically decided.
func TestStaticSelectionNeverSimulates(t *testing.T) {
	p, err := workload.Build("gsmdecode")
	if err != nil {
		t.Fatal(err)
	}
	pr := mustProfile(t, p)
	cp, err := Compile(p, Options{
		Cores: 4, Strategy: Hybrid, Profile: pr, Workers: 1, Selection: SelectStatic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Selection.Mode != "static" || cp.Selection.Escalated != 0 {
		t.Errorf("static mode summary = %+v, want mode=static escalated=0", cp.Selection)
	}
	if cp.Selection.Static != len(p.Regions) {
		t.Errorf("static count %d, want all %d regions", cp.Selection.Static, len(p.Regions))
	}
	cls, err := ClassifyProgram(p, Options{
		Cores: 4, Strategy: Hybrid, Profile: pr, SelectThreshold: NoThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, cl := range cls {
		if got := cp.Selection.Regions[i].Choice; got != cl.Choice.String() {
			t.Errorf("region %d: installed %q, classifier picked %q", i, got, cl.Choice)
		}
	}
}

// TestContradicted covers the stall-report feedback predicate.
func TestContradicted(t *testing.T) {
	rr := func(cycles map[string]int64) trace.RegionReport {
		return trace.RegionReport{Name: "r", Cycles: cycles}
	}
	busy := stats.Busy.String()
	cases := []struct {
		name   string
		rep    trace.RegionReport
		choice string
		want   bool
	}{
		{"ilp-dominated-by-dstall", rr(map[string]int64{busy: 40, stats.DStall.String(): 60}), ChoseILP.String(), true},
		{"ilp-mostly-busy", rr(map[string]int64{busy: 80, stats.DStall.String(): 20}), ChoseILP.String(), false},
		{"ftlp-dominated-by-queues", rr(map[string]int64{busy: 30, stats.RecvData.String(): 40, stats.SendStall.String(): 40}), ChoseFTLP.String(), true},
		{"ftlp-mostly-busy", rr(map[string]int64{busy: 90, stats.RecvData.String(): 10}), ChoseFTLP.String(), false},
		{"serial-never-contradicted", rr(map[string]int64{stats.DStall.String(): 100}), ChoseSingle.String(), false},
		{"empty-report", rr(map[string]int64{}), ChoseILP.String(), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := contradicted(c.rep, c.choice); got != c.want {
				t.Errorf("contradicted(%v, %q) = %v, want %v", c.rep.Cycles, c.choice, got, c.want)
			}
		})
	}
}

// TestRecheck drives the feedback loop end to end: a fabricated report in
// which one statically-decided region drowns in its pick's characteristic
// overhead must trigger re-measurement of exactly that region, and the
// re-measured pick must land on measured selection's ground truth.
func TestRecheck(t *testing.T) {
	p, err := workload.Build("gsmdecode")
	if err != nil {
		t.Fatal(err)
	}
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: Hybrid, Profile: pr, Workers: 1, Selection: SelectAuto}
	cp, err := Compile(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A clean report contradicts nothing: Recheck is the identity.
	clean := &trace.Report{Regions: make([]trace.RegionReport, len(p.Regions))}
	for i, r := range p.Regions {
		clean.Regions[i] = trace.RegionReport{Name: r.Name, Cycles: map[string]int64{stats.Busy.String(): 100}}
	}
	same, idx, err := Recheck(p, cp, clean, opts)
	if err != nil {
		t.Fatal(err)
	}
	if same != cp || idx != nil {
		t.Errorf("clean report: got new program / suspects %v, want identity", idx)
	}
	// Poison one TierEasy region with a parallel pick.
	target := -1
	for i, sel := range cp.Selection.Regions {
		if sel.Tier == TierEasy.String() &&
			(sel.Choice == ChoseILP.String() || sel.Choice == ChoseFTLP.String()) {
			target = i
			break
		}
	}
	if target < 0 {
		t.Skip("no statically-decided parallel region to poison")
	}
	poisoned := &trace.Report{Regions: append([]trace.RegionReport(nil), clean.Regions...)}
	over := stats.DStall.String()
	if cp.Selection.Regions[target].Choice == ChoseFTLP.String() {
		over = stats.SendStall.String()
	}
	poisoned.Regions[target] = trace.RegionReport{
		Name:   p.Regions[target].Name,
		Cycles: map[string]int64{stats.Busy.String(): 10, over: 90},
	}
	out, idx, err := Recheck(p, cp, poisoned, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 1 || idx[0] != target {
		t.Fatalf("suspects = %v, want [%d]", idx, target)
	}
	if got := out.Selection.Regions[target].Tier; got != TierRechecked.String() {
		t.Errorf("re-selected region tier %q, want %q", got, TierRechecked)
	}
	if out.Selection.Mode != "escalated" {
		t.Errorf("rechecked summary mode %q, want escalated", out.Selection.Mode)
	}
	// The re-measurement is the unmodified measured pipeline; against this
	// program's background it must land on measured selection's pick.
	measured, err := Compile(p, Options{Cores: 4, Strategy: Hybrid, Profile: pr, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := out.Selection.Regions[target].Choice, measured.Selection.Regions[target].Choice; got != want {
		t.Errorf("rechecked choice %q, want measured ground truth %q", got, want)
	}
	// The input program is untouched (the server caches it by key).
	if cp.Selection.Regions[target].Tier != TierEasy.String() {
		t.Error("Recheck mutated its input program's selection metadata")
	}
}

// TestTierAndModeStrings pins the labels that reach JSON and headers.
func TestTierAndModeStrings(t *testing.T) {
	wantTiers := map[Tier]string{
		TierSmall: "small", TierDOALL: "doall", TierEasy: "easy",
		TierHard: "hard", TierMeasured: "measured", TierRechecked: "rechecked",
	}
	for tier, s := range wantTiers {
		if tier.String() != s {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, tier.String(), s)
		}
	}
	wantModes := map[SelectionMode]string{
		SelectMeasured: "measured", SelectStatic: "static", SelectAuto: "auto",
	}
	for m, s := range wantModes {
		if m.String() != s {
			t.Errorf("SelectionMode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
}
