package compiler

import (
	"voltron/internal/core"
	"voltron/internal/ir"
)

// Region-by-region parallelism selection (paper §4.2): statistical DOALL
// loops first (no communication or synchronization — the most efficient
// parallelism), then DSWP if a balanced pipeline is projected, then strands
// in decoupled mode for memory-bound regions, and coupled-mode ILP for
// regions with predictable latencies. Regions too small to amortize any
// parallelization overhead stay serial.

// Choice names the technique selected for a region.
type Choice int

// Selection outcomes (Figure 3's categories).
const (
	ChoseSingle Choice = iota
	ChoseILP
	ChoseFTLP
	ChoseLLP
)

// String names the choice.
func (c Choice) String() string {
	switch c {
	case ChoseSingle:
		return "single core"
	case ChoseILP:
		return "ILP"
	case ChoseFTLP:
		return "fine-grain TLP"
	case ChoseLLP:
		return "LLP"
	}
	return "choice?"
}

// minRegionOps is the dynamic-size floor below which a region is not worth
// parallelizing (thread spawn and communication overheads dominate).
const minRegionOps = 64

// SelectStrategy decides how one region should be parallelized.
func SelectStrategy(r *ir.Region, opts Options) Choice {
	c, _, err := chooseRegion(r, opts.withDefaults())
	if err != nil {
		return ChoseSingle
	}
	return c
}

// genHybrid compiles one region with the selected technique.
func genHybrid(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	_, cr, err := chooseRegion(r, opts)
	return cr, err
}

// chooseRegion implements the paper's selection order: statistical DOALL
// loops first (no communication or synchronization at all), then the best
// of {serial, coupled ILP, decoupled fine-grain TLP} by static cycle
// estimate.
func chooseRegion(r *ir.Region, opts Options) (Choice, *core.CompiledRegion, error) {
	serial, err := genSerial(r, opts.Cores)
	if err != nil {
		return ChoseSingle, nil, err
	}
	if opts.Cores <= 1 {
		return ChoseSingle, serial, nil
	}
	small := opts.Profile != nil && opts.Profile.RegionOps != nil &&
		r.ID < len(opts.Profile.RegionOps) && opts.Profile.RegionOps[r.ID] < minRegionOps
	if small {
		return ChoseSingle, serial, nil
	}
	if cr, ok, err := tryDOALL(r, opts); err != nil {
		return ChoseSingle, nil, err
	} else if ok {
		return ChoseLLP, cr, nil
	}
	bestChoice, best := ChoseSingle, serial
	bestEst := EstimateCycles(serial, r, opts.Profile)
	if coupled, target, upr, err := genCoupledCandidate(r, opts); err != nil {
		return ChoseSingle, nil, err
	} else if est := EstimateCycles(coupled, target, upr); est < bestEst {
		bestChoice, best, bestEst = ChoseILP, coupled, est
	}
	ftlp, err := genFTLP(r, opts)
	if err != nil {
		return ChoseSingle, nil, err
	}
	if est := EstimateCycles(ftlp, r, opts.Profile); est < bestEst {
		bestChoice, best, bestEst = ChoseFTLP, ftlp, est
	}
	return bestChoice, best, nil
}
