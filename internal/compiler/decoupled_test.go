package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// manualSplit assigns alternating ops to two cores (a stress partition).
func manualSplit(r *ir.Region) Assignment {
	a := Assignment{}
	for i, o := range r.AllOps() {
		a[o] = []int{i % 2}
	}
	return a
}

func TestGenDecoupledArbitraryPartitionIsCorrect(t *testing.T) {
	// Any sane partition must produce correct code — communication
	// insertion, not the partition, owns correctness.
	for _, tc := range corpus {
		p := tc.mk()
		if tc.fpReduce {
			continue
		}
		golden, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cp := &core.CompiledProgram{Name: p.Name, Cores: 2, Src: p}
		for _, r := range p.Regions {
			cr, err := GenDecoupled(r, manualSplit(r), 2)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, r.Name, err)
			}
			cp.Regions = append(cp.Regions, cr)
		}
		res, err := core.New(core.DefaultConfig(2)).Run(cp)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Fatalf("%s: alternating partition wrong at %#x: %d vs %d", tc.name, addr, a, b)
		}
	}
}

func TestDecoupledCommPairing(t *testing.T) {
	// Static check: over a whole region, for every (from,to) pair the
	// number of SENDs equals the number of RECVs per block, so the
	// per-sender FIFO always drains.
	p := progStrands(64)
	r := p.Regions[0]
	cr, err := GenDecoupled(r, manualSplit(r), 2)
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ from, to int }
	perBlock := func(c int) map[int64]map[key]int {
		out := map[int64]map[key]int{}
		// Walk code, attributing instructions to the preceding label.
		starts := map[int]int64{}
		for lbl, idx := range cr.Labels[c] {
			if lbl < 1<<20 {
				starts[idx] = lbl
			}
		}
		cur := int64(-1)
		for i, in := range cr.Code[c] {
			if lbl, ok := starts[i]; ok {
				cur = lbl
			}
			if out[cur] == nil {
				out[cur] = map[key]int{}
			}
			switch in.Op {
			case isa.SEND:
				out[cur][key{c, in.Core}]++
			case isa.RECV:
				out[cur][key{in.Core, c}]++
			}
		}
		return out
	}
	b0, b1 := perBlock(0), perBlock(1)
	for blk, sends := range b0 {
		for k, n := range sends {
			if k.from == 0 && k.to == 1 {
				if b1[blk][k] != n {
					t.Errorf("block %d: %d sends 0->1 but %d recvs", blk, n, b1[blk][k])
				}
			}
		}
	}
}

func TestDecoupledRematerializationAvoidsMessages(t *testing.T) {
	// Address arithmetic derived from the replicated induction must be
	// recomputed locally, not sent: the strand loop should have few data
	// messages (the loaded value and the predicate, not i<<3).
	p := progStrands(64)
	r := p.Regions[0]
	pr := mustProfile(t, p)
	a := EBUG(r, Options{Cores: 2, Profile: pr}.withDefaults())
	cr, err := GenDecoupled(r, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Count SENDs in the loop block per iteration.
	sends := 0
	for c := 0; c < 2; c++ {
		for _, in := range cr.Code[c] {
			if in.Op == isa.SEND {
				sends++
			}
		}
	}
	// One data value (the remote stream's load) + one predicate + the
	// loop live-out sends; allow a little slack but far fewer than one
	// per address computation.
	if sends > 6 {
		t.Errorf("decoupled strand loop plans %d sends; rematerialization failed", sends)
	}
}

func TestDecoupledPredSendAblation(t *testing.T) {
	// With ForcePredSend the predicate travels every iteration; code still
	// must be correct.
	p := progDiamond(32)
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	cr, err := GenDecoupledPredSend(r, manualSplit(r), 2)
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.CompiledProgram{Name: p.Name, Cores: 2, Src: p, Regions: []*core.CompiledRegion{cr}}
	res, err := core.New(core.DefaultConfig(2)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("pred-send variant produced wrong memory")
	}
	// And it must actually send predicates.
	predSends := 0
	for c := 0; c < 2; c++ {
		for _, in := range cr.Code[c] {
			if in.Op == isa.SEND && in.Src1.Class == isa.RegPR {
				predSends++
			}
		}
	}
	if predSends == 0 {
		t.Error("ForcePredSend generated no predicate sends")
	}
}

func TestDecoupledLiveOutHoisting(t *testing.T) {
	// A value defined every iteration but consumed only after the loop
	// must be sent once (in the exit block), not per iteration.
	p := progReduction(64)
	r := p.Regions[0]
	// Force the accumulator chain on core 1 and the final store on core 0.
	a := Assignment{}
	for _, o := range r.AllOps() {
		if o.Code.IsStore() {
			a[o] = []int{0}
		} else {
			a[o] = []int{1}
		}
	}
	cr, err := GenDecoupled(r, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The accumulator send must be outside the loop: count SENDs between
	// the loop header label and the exit label on core 1.
	labels := cr.Labels[1]
	header, exit := labels[1], labels[3] // blocks: 0 pre, 1 header, 2 body, 3 exit
	sendsInLoop := 0
	for i := header; i < exit && i < len(cr.Code[1]); i++ {
		if cr.Code[1][i].Op == isa.SEND {
			sendsInLoop++
		}
	}
	if sendsInLoop > 0 {
		t.Errorf("%d per-iteration sends for a loop live-out (hoisting failed)", sendsInLoop)
	}
	// Execution still correct.
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.CompiledProgram{Name: p.Name, Cores: 2, Src: p, Regions: []*core.CompiledRegion{cr}}
	res, err := core.New(core.DefaultConfig(2)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("hoisted live-out execution wrong")
	}
}

func TestDecoupledMemoryTokens(t *testing.T) {
	// A may-alias store->load pair split across cores needs a token sync;
	// force the split and check both correctness and the token's presence.
	p := ir.NewProgram("tok")
	a := p.Array("a", 8)
	out := p.Array("out", 8)
	r := p.Region("r")
	b := r.NewBlock()
	ab := b.AddrOf(a)
	// Unknown-object accesses (Obj stripped) force a may-alias dependence.
	v := b.MovI(7)
	st := b.Store(nil, ab, 0, v)
	ld := b.Load(nil, ab, 0)
	b.Store(out, b.AddrOf(out), 0, ld)
	b.ExitRegion()
	r.Seal()
	asg := Assignment{}
	for _, o := range r.AllOps() {
		asg[o] = []int{0}
	}
	// Split the dependent pair.
	asg[st] = []int{0}
	for _, o := range r.AllOps() {
		if o.Dst == ld {
			asg[o] = []int{1}
		}
	}
	_ = st
	cr, err := GenDecoupled(r, asg, 2)
	if err != nil {
		t.Fatal(err)
	}
	tokens := 0
	for _, in := range cr.Code[0] {
		if in.Op == isa.SEND {
			tokens++
		}
	}
	if tokens == 0 {
		t.Error("no token sent for the cross-core memory dependence")
	}
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.CompiledProgram{Name: p.Name, Cores: 2, Src: p, Regions: []*core.CompiledRegion{cr}}
	res, err := core.New(core.DefaultConfig(2)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("token-synchronized execution wrong")
	}
}

func TestGenDecoupledRejectsOutOfRangeCore(t *testing.T) {
	p := progCopyAdd(8)
	r := p.Regions[0]
	a := uniform(r, 5)
	if _, err := GenDecoupled(r, a, 2); err == nil {
		t.Error("core 5 on a 2-core machine accepted")
	}
}
