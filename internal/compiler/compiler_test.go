package compiler

import (
	"fmt"
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/prof"
)

// ---- test program corpus ----

// progCopyAdd: for i<n: dst[i] = src[i]+7 — a clean statistical DOALL loop.
func progCopyAdd(n int64) *ir.Program {
	p := ir.NewProgram("copyadd")
	src := p.Array("src", n)
	dst := p.Array("dst", n)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, i*i-3)
	}
	r := p.Region("loop")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		b.Store(dst, b.Add(db, off), 0, b.AddI(v, 7))
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// progReduction: out[0] = Σ src[i]; out[1] = 5 (post-loop code using sum).
func progReduction(n int64) *ir.Program {
	p := ir.NewProgram("reduction")
	src := p.Array("src", n)
	out := p.Array("out", 2)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, 2*i+1)
	}
	r := p.Region("sum")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	sum := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		b.Accum(isa.ADD, sum, v)
		return b
	})
	ob := after.AddrOf(out)
	after.Store(out, ob, 0, sum)
	after.Store(out, ob, 8, after.AddI(sum, 5))
	after.ExitRegion()
	r.Seal()
	return p
}

// progCarried: for i in [1,n): a[i] = a[i-1]+1 — a serial recurrence; no
// strategy may parallelize it incorrectly.
func progCarried(n int64) *ir.Program {
	p := ir.NewProgram("carried")
	a := p.Array("a", n)
	p.SetInit(a, 0, 100)
	r := p.Region("chain")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 1, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		ad := b.Add(base, off)
		v := b.Load(a, ad, -8)
		b.Store(a, ad, 0, b.AddI(v, 1))
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// progDiamond: per element, branchy control flow (if a[i] < k then b[i]=1
// else b[i]=a[i]*2).
func progDiamond(n int64) *ir.Program {
	p := ir.NewProgram("diamond")
	a := p.Array("a", n)
	b := p.Array("b", n)
	for i := int64(0); i < n; i++ {
		p.SetInit(a, i, (i*7)%13)
	}
	r := p.Region("branchy")
	pre := r.NewBlock()
	ab := pre.AddrOf(a)
	bb := pre.AddrOf(b)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(body *ir.Block, i ir.Value) *ir.Block {
		off := body.ShlI(i, 3)
		av := body.Load(a, body.Add(ab, off), 0)
		bd := body.Add(bb, off)
		c := body.CmpLTI(av, 6)
		reg := r
		then := reg.NewBlock()
		els := reg.NewBlock()
		join := reg.NewBlock()
		one := then.MovI(1)
		then.Store(b, bd, 0, one)
		then.JumpTo(join)
		dbl := els.MulI(av, 2)
		els.Store(b, bd, 0, dbl)
		els.JumpTo(join)
		body.BranchIf(c, then, els)
		return join
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// progMultiRegion: three regions with different characters (ILP block,
// DOALL loop, reduction).
func progMultiRegion() *ir.Program {
	p := ir.NewProgram("multi")
	x := p.Array("x", 16)
	y := p.Array("y", 16)
	out := p.Array("out", 4)
	for i := int64(0); i < 16; i++ {
		p.SetInit(x, i, i+1)
	}
	// Region 1: straight-line ILP.
	r1 := p.Region("ilp")
	b1 := r1.NewBlock()
	xb := b1.AddrOf(x)
	ob := b1.AddrOf(out)
	v0 := b1.Load(x, xb, 0)
	v1 := b1.Load(x, xb, 8)
	v2 := b1.Load(x, xb, 16)
	v3 := b1.Load(x, xb, 24)
	s1 := b1.Add(v0, v1)
	s2 := b1.Add(v2, v3)
	s3 := b1.Mul(s1, s2)
	b1.Store(out, ob, 0, s3)
	b1.ExitRegion()
	r1.Seal()
	// Region 2: DOALL y[i] = x[i] * 3.
	r2 := p.Region("doall")
	pre2 := r2.NewBlock()
	xb2 := pre2.AddrOf(x)
	yb2 := pre2.AddrOf(y)
	after2 := ir.BuildCountedLoop(pre2, ir.LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(x, b.Add(xb2, off), 0)
		b.Store(y, b.Add(yb2, off), 0, b.MulI(v, 3))
		return b
	})
	after2.ExitRegion()
	r2.Seal()
	// Region 3: reduction over y.
	r3 := p.Region("reduce")
	pre3 := r3.NewBlock()
	yb3 := pre3.AddrOf(y)
	ob3 := pre3.AddrOf(out)
	sum := pre3.MovI(0)
	after3 := ir.BuildCountedLoop(pre3, ir.LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(y, b.Add(yb3, off), 0)
		b.Accum(isa.ADD, sum, v)
		return b
	})
	after3.Store(out, ob3, 8, sum)
	after3.ExitRegion()
	r3.Seal()
	return p
}

// progStrands: gzip-like loop with two independent load streams compared
// per iteration (fine-grain TLP shape, Figure 8).
func progStrands(n int64) *ir.Program {
	p := ir.NewProgram("strands")
	scan := p.Array("scan", n)
	match := p.Array("match", n)
	out := p.Array("out", 1)
	for i := int64(0); i < n; i++ {
		p.SetInit(scan, i, i%17)
		p.SetInit(match, i, i%17)
	}
	p.SetInit(match, n-3, 999) // streams diverge near the end
	r := p.Region("cmp")
	pre := r.NewBlock()
	sb := pre.AddrOf(scan)
	mb := pre.AddrOf(match)
	count := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		sv := b.Load(scan, b.Add(sb, off), 0)
		mv := b.Load(match, b.Add(mb, off), 0)
		d := b.Sub(sv, mv)
		b.Accum(isa.ADD, count, d)
		return b
	})
	ob := after.AddrOf(out)
	after.Store(out, ob, 0, count)
	after.ExitRegion()
	r.Seal()
	return p
}

// progFloat: float DOALL with FP reduction.
func progFloat(n int64) *ir.Program {
	p := ir.NewProgram("float")
	a := p.FloatArray("a", n)
	out := p.FloatArray("out", 1)
	for i := int64(0); i < n; i++ {
		p.SetInitF(a, i, float64(i)*0.5)
	}
	r := p.Region("fsum")
	pre := r.NewBlock()
	ab := pre.AddrOf(a)
	acc := pre.MovF(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.FLoad(a, b.Add(ab, off), 0)
		b.Accum(isa.FADD, acc, b.FMul(v, v))
		return b
	})
	ob := after.AddrOf(out)
	after.FStore(out, ob, 0, acc)
	after.ExitRegion()
	r.Seal()
	return p
}

var corpus = []struct {
	name string
	mk   func() *ir.Program
	// fpReduce marks programs whose FP reduction reassociates under LLP
	// chunking (bitwise equality not guaranteed; compare loosely).
	fpReduce bool
}{
	{"copyadd", func() *ir.Program { return progCopyAdd(64) }, false},
	{"reduction", func() *ir.Program { return progReduction(64) }, false},
	{"carried", func() *ir.Program { return progCarried(48) }, false},
	{"diamond", func() *ir.Program { return progDiamond(32) }, false},
	{"multi", progMultiRegion, false},
	{"strands", func() *ir.Program { return progStrands(64) }, false},
	{"float", func() *ir.Program { return progFloat(64) }, true},
}

// runAll compiles and simulates, failing the test on any error.
func runConfig(t *testing.T, p *ir.Program, strat Strategy, cores int) *core.RunResult {
	t.Helper()
	cp, err := Compile(p, Options{Cores: cores, Strategy: strat})
	if err != nil {
		t.Fatalf("compile %s/%d: %v", strat, cores, err)
	}
	res, err := core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		t.Fatalf("run %s/%d: %v", strat, cores, err)
	}
	return res
}

func TestAllStrategiesMatchInterpreter(t *testing.T) {
	strategies := []Strategy{Serial, ForceILP, ForceFTLP, ForceLLP, Hybrid}
	counts := []int{1, 2, 4}
	for _, tc := range corpus {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.mk()
			golden, err := interp.Run(p, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range strategies {
				for _, n := range counts {
					t.Run(fmt.Sprintf("%s-%dcore", s, n), func(t *testing.T) {
						res := runConfig(t, p, s, n)
						if tc.fpReduce && s == ForceLLP || tc.fpReduce && s == Hybrid {
							checkFloatClose(t, p, golden.Mem, res.Mem)
							return
						}
						if !res.Mem.Equal(golden.Mem) {
							addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
							t.Fatalf("memory mismatch at %#x: interp=%d machine=%d", addr, a, b)
						}
					})
				}
			}
		})
	}
}

// checkFloatClose compares float arrays within a relative tolerance
// (chunked FP reductions reassociate).
func checkFloatClose(t *testing.T, p *ir.Program, want, got interface {
	LoadW(int64) uint64
}) {
	t.Helper()
	for _, arr := range p.Arrays {
		for i := int64(0); i < arr.Words; i++ {
			w := want.LoadW(arr.Base + i*8)
			g := got.LoadW(arr.Base + i*8)
			if arr.Float {
				fw, fg := ir.U2F(w), ir.U2F(g)
				d := fw - fg
				if d < 0 {
					d = -d
				}
				tol := 1e-9 * (1 + abs(fw))
				if d > tol {
					t.Fatalf("%s[%d]: interp=%g machine=%g", arr.Name, i, fw, fg)
				}
			} else if w != g {
				t.Fatalf("%s[%d]: interp=%d machine=%d", arr.Name, i, w, g)
			}
		}
	}
}

func mustProfile(t *testing.T, p *ir.Program) *prof.Profile {
	t.Helper()
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSerialBaselineHasNoCommunication(t *testing.T) {
	p := progCopyAdd(32)
	cp, err := Compile(p, Options{Cores: 1, Strategy: Serial})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cp.Regions {
		for _, in := range r.Code[0] {
			if in.Op.IsComm() {
				t.Fatalf("serial code contains %v", in)
			}
		}
	}
}

func TestDOALLSelectedForCleanLoop(t *testing.T) {
	p := progCopyAdd(64)
	opts := Options{Cores: 4, Strategy: Hybrid}.withDefaults()
	pr := mustProfile(t, p)
	opts.Profile = pr
	if got := SelectStrategy(p.Regions[0], opts); got != ChoseLLP {
		t.Errorf("selection = %v, want LLP", got)
	}
}

func TestDOALLNotSelectedForCarriedLoop(t *testing.T) {
	p := progCarried(48)
	opts := Options{Cores: 4, Strategy: Hybrid}.withDefaults()
	opts.Profile = mustProfile(t, p)
	if got := SelectStrategy(p.Regions[0], opts); got == ChoseLLP {
		t.Error("carried-dependence loop selected as LLP")
	}
}

func TestForceLLPParallelizesAndSpeedsUp(t *testing.T) {
	p := progCopyAdd(256)
	base := runConfig(t, p, Serial, 1)
	par := runConfig(t, p, ForceLLP, 4)
	if par.TotalCycles >= base.TotalCycles {
		t.Errorf("DOALL on 4 cores: %d cycles >= serial %d", par.TotalCycles, base.TotalCycles)
	}
	if par.Run.TMConflicts != 0 {
		t.Errorf("clean DOALL loop hit %d conflicts", par.Run.TMConflicts)
	}
}

func TestCoupledILPSpeedsUpWideBlock(t *testing.T) {
	// A region with abundant straight-line ILP must benefit from coupled
	// execution on 2 cores.
	p := ir.NewProgram("wideilp")
	x := p.Array("x", 64)
	out := p.Array("out", 8)
	for i := int64(0); i < 64; i++ {
		p.SetInit(x, i, i)
	}
	r := p.Region("wide")
	b := r.NewBlock()
	xb := b.AddrOf(x)
	ob := b.AddrOf(out)
	// 8 independent chains.
	for c := int64(0); c < 8; c++ {
		v := b.Load(x, xb, c*64)
		for k := 0; k < 6; k++ {
			v = b.AddI(v, c+int64(k))
		}
		b.Store(out, ob, c*8, v)
	}
	b.ExitRegion()
	r.Seal()
	base := runConfig(t, p, Serial, 1)
	par := runConfig(t, p, ForceILP, 2)
	if par.TotalCycles >= base.TotalCycles {
		t.Errorf("ILP on 2 cores: %d cycles >= serial %d", par.TotalCycles, base.TotalCycles)
	}
}

func TestCarriedLoopFallsBackCorrectly(t *testing.T) {
	// Even under ForceLLP, the carried loop must produce serial semantics.
	p := progCarried(48)
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := runConfig(t, p, ForceLLP, 4)
	if !res.Mem.Equal(golden.Mem) {
		t.Error("ForceLLP corrupted a carried-dependence loop")
	}
}

func TestHybridUsesBothModes(t *testing.T) {
	p := progMultiRegion()
	res := runConfig(t, p, Hybrid, 4)
	if res.TotalCycles == 0 {
		t.Fatal("no cycles")
	}
	// The multi-region program has an ILP region and DOALL/reduction
	// loops: hybrid execution should touch both coupled and decoupled
	// mode (reduction/doall run decoupled, ILP coupled).
	if res.Run.ModeCycles[0] == 0 || res.Run.ModeCycles[1] == 0 {
		t.Logf("mode cycles: %v (acceptable if selection sent all regions one way)", res.Run.ModeCycles)
	}
}
