package compiler

import (
	"fmt"
	"sync"

	"voltron/internal/core"
	"voltron/internal/ir"
)

// Measured strategy selection (paper §4.2): each region's candidate
// lowerings are simulated in the context of the program compiled so far and
// the candidate with the best region time wins (serial always competes, so
// a technique is never applied where it hurts). For Hybrid the candidates
// are every technique with statistical DOALL taken outright as the most
// efficient parallelism; for the Force* strategies the single technique
// competes against serial only — the per-technique bars of Figures 10/11.
//
// This is the compiler's hot path, so it is organized for host parallelism
// while staying bit-identical to the sequential pipeline (Workers=1):
//
//   - the serial baseline is simulated ONCE per selection pass — one
//     full-program run of the all-serial lowering yields every region's
//     serial time at once, where the old pipeline re-simulated the whole
//     program per region just to read RegionCycles[i];
//   - candidate lowerings are generated concurrently per region (pure
//     reads of the IR; every generator clones before mutating);
//   - candidate simulations run on a bounded worker pool, one reusable
//     core.Machine plus one cloned background CompiledProgram per worker,
//     with a barrier per region so later regions are always measured
//     against the committed winners of earlier ones;
//   - the winner is chosen by fixed candidate order, never completion
//     order, so the selected program does not depend on scheduling.

// maxCandidatesPerRegion bounds the simulations one region's barrier can
// overlap (coupled ILP and fine-grain TLP; DOALL is taken without a race).
const maxCandidatesPerRegion = 2

// regionPlan is the precomputed selection work for one region.
type regionPlan struct {
	small bool
	// doall is the statistical-DOALL lowering, taken outright (Hybrid).
	doall *core.CompiledRegion
	// err is a candidate-generation failure that must abort compilation,
	// reported in region order.
	err error
	// candidates in fixed order: coupled ILP first, then fine-grain TLP.
	candidates []*core.CompiledRegion
}

func compileMeasured(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	cp := &core.CompiledProgram{Name: p.Name, Cores: opts.Cores, Src: p}
	for _, r := range p.Regions {
		cr, err := genSerial(r, opts.Cores)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
		cp.Regions = append(cp.Regions, cr)
	}
	// A failed baseline is a hard error: without serial region times no
	// candidate could ever be compared against serial, and silently
	// letting the first non-failing candidate win would ship a lowering
	// that was never measured to help. Selection only reads RegionCycles,
	// so the stall-breakdown accounting is skipped (NoStats).
	baseCfg := core.DefaultConfig(opts.Cores)
	baseCfg.NoStats = true
	baseline, err := core.New(baseCfg).Run(cp)
	if err != nil {
		return nil, fmt.Errorf("%s: serial baseline: %w", p.Name, err)
	}
	plans := planRegions(p, opts)
	pool := newEvalPool(opts, cp)
	defer pool.close()
	for i := range p.Regions {
		pl := plans[i]
		if pl.err != nil {
			return nil, pl.err
		}
		if pl.small {
			continue // not worth parallelizing; stays serial
		}
		if pl.doall != nil {
			cp.Regions[i] = pl.doall
			pool.commit(i, pl.doall)
			continue
		}
		if len(pl.candidates) == 0 {
			continue
		}
		cycles := pool.measure(i, pl.candidates)
		best, bestCycles := cp.Regions[i], baseline.RegionCycles[i]
		for k, cand := range pl.candidates {
			// Fixed candidate order: a candidate must strictly beat the
			// best so far, so ties keep the earlier entry (serial first) —
			// exactly the sequential pipeline's tie-breaking.
			if cycles[k] >= 0 && cycles[k] < bestCycles {
				best, bestCycles = cand, cycles[k]
			}
		}
		cp.Regions[i] = best
		pool.commit(i, best)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// planRegions generates every region's candidate lowerings concurrently
// (bounded by opts.Workers). Generation only reads the shared IR, so the
// fan-out is race-free; results are slotted by region index so the outcome
// is independent of scheduling.
func planRegions(p *ir.Program, opts Options) []*regionPlan {
	plans := make([]*regionPlan, len(p.Regions))
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for i, r := range p.Regions {
		wg.Add(1)
		go func(i int, r *ir.Region) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			plans[i] = planRegion(r, opts)
		}(i, r)
	}
	wg.Wait()
	return plans
}

// planRegion computes one region's selection plan.
func planRegion(r *ir.Region, opts Options) *regionPlan {
	pl := &regionPlan{}
	pl.small = opts.Profile != nil && opts.Profile.RegionOps != nil &&
		r.ID < len(opts.Profile.RegionOps) && opts.Profile.RegionOps[r.ID] < minRegionOps
	if pl.small {
		return pl
	}
	if opts.Strategy == Hybrid {
		if cr, ok, err := tryDOALL(r, opts); err != nil {
			pl.err = err
			return pl
		} else if ok {
			pl.doall = cr
			return pl
		}
	}
	if opts.Strategy == Hybrid || opts.Strategy == ForceILP {
		if coupled, _, _, err := genCoupledCandidate(r, opts); err == nil {
			pl.candidates = append(pl.candidates, coupled)
		}
	}
	if opts.Strategy == Hybrid || opts.Strategy == ForceFTLP {
		if ftlp, err := genFTLP(r, opts); err == nil {
			pl.candidates = append(pl.candidates, ftlp)
		}
	}
	return pl
}

// evalPool simulates candidate lowerings concurrently. Each worker owns one
// reusable Machine and one clone of the background program, kept in sync
// with the winners committed so far.
type evalPool struct {
	jobs    chan evalJob
	wg      sync.WaitGroup
	workers []*evalWorker
}

type evalWorker struct {
	machine *core.Machine
	bg      *core.CompiledProgram
}

type evalJob struct {
	region int
	cand   *core.CompiledRegion
	cycles *int64
	done   *sync.WaitGroup
}

func newEvalPool(opts Options, cp *core.CompiledProgram) *evalPool {
	n := opts.Workers
	if n > maxCandidatesPerRegion {
		n = maxCandidatesPerRegion
	}
	if n < 1 {
		n = 1
	}
	pool := &evalPool{jobs: make(chan evalJob)}
	// Measurement machines are throwaways whose stats nobody reads.
	evalCfg := core.DefaultConfig(cp.Cores)
	evalCfg.NoStats = true
	for w := 0; w < n; w++ {
		ew := &evalWorker{
			machine: core.New(evalCfg),
			bg: &core.CompiledProgram{
				Name: cp.Name, Cores: cp.Cores, Src: cp.Src,
				Regions: append([]*core.CompiledRegion(nil), cp.Regions...),
			},
		}
		pool.workers = append(pool.workers, ew)
		pool.wg.Add(1)
		go func() {
			defer pool.wg.Done()
			for job := range pool.jobs {
				ew.bg.Regions[job.region] = job.cand
				res, err := ew.machine.Run(ew.bg)
				if err != nil {
					*job.cycles = -1 // a misbehaving candidate never wins
				} else {
					*job.cycles = res.RegionCycles[job.region]
				}
				job.done.Done()
			}
		}()
	}
	return pool
}

// measure simulates one region's candidates and returns their region times
// in candidate order (-1 marks a failed simulation). It returns only after
// every candidate finished — the per-region barrier.
func (p *evalPool) measure(region int, cands []*core.CompiledRegion) []int64 {
	cycles := make([]int64, len(cands))
	var done sync.WaitGroup
	done.Add(len(cands))
	for k, cand := range cands {
		p.jobs <- evalJob{region: region, cand: cand, cycles: &cycles[k], done: &done}
	}
	done.Wait()
	return cycles
}

// commit installs a region's winning lowering into every worker's
// background program, so later regions are measured against the winners of
// earlier ones — the same context the sequential pipeline used. Callers
// only commit between barriers, when every worker is idle.
func (p *evalPool) commit(region int, cr *core.CompiledRegion) {
	for _, w := range p.workers {
		w.bg.Regions[region] = cr
	}
}

func (p *evalPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
