package compiler

import (
	"fmt"
	"sync"

	"voltron/internal/core"
	"voltron/internal/ir"
)

// Measured strategy selection (paper §4.2): each region's candidate
// lowerings are simulated in the context of the program compiled so far and
// the candidate with the best region time wins (serial always competes, so
// a technique is never applied where it hurts). For Hybrid the candidates
// are every technique with statistical DOALL taken outright as the most
// efficient parallelism; for the Force* strategies the single technique
// competes against serial only — the per-technique bars of Figures 10/11.
//
// This is the compiler's hot path, so it is organized for host parallelism
// while staying bit-identical to the sequential pipeline (Workers=1):
//
//   - the serial baseline is simulated ONCE per selection pass — one
//     full-program run of the all-serial lowering yields every region's
//     serial time at once, where the old pipeline re-simulated the whole
//     program per region just to read RegionCycles[i];
//   - candidate lowerings are generated concurrently per region (pure
//     reads of the IR; every generator clones before mutating);
//   - candidate simulations run on a bounded worker pool, one reusable
//     core.Machine plus one cloned background CompiledProgram per worker,
//     with a barrier per region so later regions are always measured
//     against the committed winners of earlier ones;
//   - the winner is chosen by fixed candidate order, never completion
//     order, so the selected program does not depend on scheduling.

// maxCandidatesPerRegion bounds the simulations one region's barrier can
// overlap (coupled ILP and fine-grain TLP; DOALL is taken without a race).
const maxCandidatesPerRegion = 2

// regionCandidate is one measurable lowering with the metadata selection
// needs: which technique it embodies and its static cycle estimate (the
// classifier's ranking signal).
type regionCandidate struct {
	cr     *core.CompiledRegion
	choice Choice
	est    float64
}

// regionPlan is the precomputed selection work for one region.
type regionPlan struct {
	small bool
	// serial is the always-competing baseline lowering; serialEst is its
	// static estimate.
	serial    *core.CompiledRegion
	serialEst float64
	// doall is the statistical-DOALL lowering, taken outright (Hybrid).
	doall *core.CompiledRegion
	// err is a generation failure that must abort compilation, reported in
	// region order.
	err error
	// candidates in fixed order: coupled ILP first, then fine-grain TLP.
	candidates []regionCandidate
}

// lowering returns the plan's compiled region for a choice (serial when the
// choice has no candidate, which cannot happen for classifier picks).
func (pl *regionPlan) lowering(c Choice) *core.CompiledRegion {
	if c == ChoseLLP && pl.doall != nil {
		return pl.doall
	}
	for _, cand := range pl.candidates {
		if cand.choice == c {
			return cand.cr
		}
	}
	return pl.serial
}

func compileMeasured(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	plans := planRegions(p, opts)
	cp := &core.CompiledProgram{
		Name: p.Name, Cores: opts.Cores, Src: p,
		Regions: make([]*core.CompiledRegion, len(p.Regions)),
	}
	cp.Selection = core.SelectionSummary{
		Mode:    SelectMeasured.String(),
		Regions: make([]core.RegionSelection, len(p.Regions)),
	}
	for i, pl := range plans {
		if pl.err != nil {
			return nil, pl.err
		}
		cp.Regions[i] = pl.serial
	}
	baseline, err := runSerialBaseline(cp)
	if err != nil {
		return nil, err
	}
	pool := newEvalPool(opts, cp)
	defer pool.close()
	for i := range p.Regions {
		pl := plans[i]
		sel := &cp.Selection.Regions[i]
		*sel = core.RegionSelection{Tier: TierMeasured.String(), Choice: ChoseSingle.String(), Confidence: 1}
		if pl.small {
			sel.Tier = TierSmall.String()
			continue // not worth parallelizing; stays serial
		}
		if pl.doall != nil {
			cp.Regions[i] = pl.doall
			*sel = core.RegionSelection{Tier: TierDOALL.String(), Choice: ChoseLLP.String(), Confidence: 1}
			pool.commit(i, pl.doall)
			continue
		}
		if len(pl.candidates) == 0 {
			continue
		}
		sel.Choice = measureRegion(pool, baseline.RegionCycles[i], cp, i, pl).String()
		cp.Selection.Measured++
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// runSerialBaseline simulates the all-serial lowering once — one
// full-program run yields every region's serial time at once. A failed
// baseline is a hard error: without serial region times no candidate could
// ever be compared against serial, and silently letting the first
// non-failing candidate win would ship a lowering that was never measured
// to help. Selection only reads RegionCycles, so the stall-breakdown
// accounting is skipped (NoStats).
func runSerialBaseline(cp *core.CompiledProgram) (*core.RunResult, error) {
	cfg := core.DefaultConfig(cp.Cores)
	cfg.NoStats = true
	res, err := core.New(cfg).Run(cp)
	if err != nil {
		return nil, fmt.Errorf("%s: serial baseline: %w", cp.Name, err)
	}
	return res, nil
}

// measureRegion simulates one region's candidates against the committed
// background, installs the winner into cp, and returns its choice. A
// candidate must strictly beat the best so far in fixed candidate order, so
// ties keep the earlier entry (serial first) — exactly the sequential
// pipeline's tie-breaking. serialCycles is the region's time in the
// all-serial baseline.
func measureRegion(pool *evalPool, serialCycles int64, cp *core.CompiledProgram, i int, pl *regionPlan) Choice {
	crs := make([]*core.CompiledRegion, len(pl.candidates))
	for k := range pl.candidates {
		crs[k] = pl.candidates[k].cr
	}
	cycles := pool.measure(i, crs)
	best, bestCycles, bestChoice := pl.serial, serialCycles, ChoseSingle
	for k, cand := range pl.candidates {
		if cycles[k] >= 0 && cycles[k] < bestCycles {
			best, bestCycles, bestChoice = cand.cr, cycles[k], cand.choice
		}
	}
	cp.Regions[i] = best
	pool.commit(i, best)
	return bestChoice
}

// planRegions generates every region's candidate lowerings concurrently
// (bounded by opts.Workers). Generation only reads the shared IR, so the
// fan-out is race-free; results are slotted by region index so the outcome
// is independent of scheduling.
func planRegions(p *ir.Program, opts Options) []*regionPlan {
	plans := make([]*regionPlan, len(p.Regions))
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for i, r := range p.Regions {
		wg.Add(1)
		go func(i int, r *ir.Region) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			plans[i] = planRegion(r, opts)
		}(i, r)
	}
	wg.Wait()
	return plans
}

// planRegion computes one region's selection plan: the serial baseline
// lowering, the outright DOALL take (Hybrid), and the measurable candidates
// with their static estimates.
func planRegion(r *ir.Region, opts Options) *regionPlan {
	pl := &regionPlan{}
	serial, err := genSerial(r, opts.Cores)
	if err != nil {
		pl.err = fmt.Errorf("region %q: %w", r.Name, err)
		return pl
	}
	pl.serial = serial
	pl.serialEst = EstimateCycles(serial, r, opts.Profile)
	pl.small = opts.Profile != nil && opts.Profile.RegionOps != nil &&
		r.ID < len(opts.Profile.RegionOps) && opts.Profile.RegionOps[r.ID] < minRegionOps
	if pl.small {
		return pl
	}
	if opts.Strategy == Hybrid {
		if cr, ok, err := tryDOALL(r, opts); err != nil {
			pl.err = err
			return pl
		} else if ok {
			pl.doall = cr
			return pl
		}
	}
	if opts.Strategy == Hybrid || opts.Strategy == ForceILP {
		if coupled, target, upr, err := genCoupledCandidate(r, opts); err == nil {
			pl.candidates = append(pl.candidates,
				regionCandidate{cr: coupled, choice: ChoseILP, est: EstimateCycles(coupled, target, upr)})
		}
	}
	if opts.Strategy == Hybrid || opts.Strategy == ForceFTLP {
		if ftlp, err := genFTLP(r, opts); err == nil {
			est := EstimateCycles(ftlp, r, opts.Profile) + EstimateQueueComm(ftlp, r, opts.Profile)
			pl.candidates = append(pl.candidates,
				regionCandidate{cr: ftlp, choice: ChoseFTLP, est: est})
		}
	}
	return pl
}

// evalPool simulates candidate lowerings concurrently. Each worker owns one
// reusable Machine and one clone of the background program, kept in sync
// with the winners committed so far.
type evalPool struct {
	jobs    chan evalJob
	wg      sync.WaitGroup
	workers []*evalWorker
}

type evalWorker struct {
	machine *core.Machine
	bg      *core.CompiledProgram
}

type evalJob struct {
	region int
	cand   *core.CompiledRegion
	cycles *int64
	done   *sync.WaitGroup
}

func newEvalPool(opts Options, cp *core.CompiledProgram) *evalPool {
	n := opts.Workers
	if n > maxCandidatesPerRegion {
		n = maxCandidatesPerRegion
	}
	if n < 1 {
		n = 1
	}
	pool := &evalPool{jobs: make(chan evalJob)}
	// Measurement machines are throwaways whose stats nobody reads.
	evalCfg := core.DefaultConfig(cp.Cores)
	evalCfg.NoStats = true
	for w := 0; w < n; w++ {
		ew := &evalWorker{
			machine: core.New(evalCfg),
			bg: &core.CompiledProgram{
				Name: cp.Name, Cores: cp.Cores, Src: cp.Src,
				Regions: append([]*core.CompiledRegion(nil), cp.Regions...),
			},
		}
		pool.workers = append(pool.workers, ew)
		pool.wg.Add(1)
		go func() {
			defer pool.wg.Done()
			for job := range pool.jobs {
				ew.bg.Regions[job.region] = job.cand
				res, err := ew.machine.Run(ew.bg)
				if err != nil {
					*job.cycles = -1 // a misbehaving candidate never wins
				} else {
					*job.cycles = res.RegionCycles[job.region]
				}
				job.done.Done()
			}
		}()
	}
	return pool
}

// measure simulates one region's candidates and returns their region times
// in candidate order (-1 marks a failed simulation). It returns only after
// every candidate finished — the per-region barrier.
func (p *evalPool) measure(region int, cands []*core.CompiledRegion) []int64 {
	cycles := make([]int64, len(cands))
	var done sync.WaitGroup
	done.Add(len(cands))
	for k, cand := range cands {
		p.jobs <- evalJob{region: region, cand: cand, cycles: &cycles[k], done: &done}
	}
	done.Wait()
	return cycles
}

// commit installs a region's winning lowering into every worker's
// background program, so later regions are measured against the winners of
// earlier ones — the same context the sequential pipeline used. Callers
// only commit between barriers, when every worker is idle.
func (p *evalPool) commit(region int, cr *core.CompiledRegion) {
	for _, w := range p.workers {
		w.bg.Regions[region] = cr
	}
}

func (p *evalPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
