package compiler

import (
	"voltron/internal/ir"
)

// Decoupled software pipelining (Ottoni et al., as adopted by the paper):
// the loop-body dependence graph's strongly connected components — which
// contain all recurrences — are merged into single nodes; the resulting
// acyclic graph is greedily partitioned into pipeline stages, one per core,
// assigned in topological order so all cross-stage dependences flow
// forward. Decoupled execution then overlaps the stages across iterations.

// tryDSWP attempts a pipeline partition of the region's hottest loop.
// It returns the assignment and the estimated speedup (serial cost divided
// by the longest stage), or (nil, 0) when no profitable pipeline exists.
func tryDSWP(r *ir.Region, opts Options) (Assignment, float64) {
	loop := hottestLoop(r, opts)
	if loop == nil {
		return nil, 0
	}
	pdg := r.BuildPDG(loop)
	if len(pdg.Nodes) < 2 {
		return nil, 0
	}
	sccs := pdg.SCCs()
	if len(sccs) < 2 {
		return nil, 0 // one big recurrence: no pipeline
	}
	// The control slice (induction, bounds compare) replicates to every
	// core in decoupled codegen — it is not pipeline work, so it carries
	// no cost and cannot form a stage by itself.
	inSlice := map[*ir.Op]bool{}
	for _, o := range controlSliceOps(r, 1<<20) {
		inSlice[o] = true
	}
	cost := func(ops []*ir.Op) float64 {
		var t float64
		for _, o := range ops {
			if inSlice[o] {
				continue
			}
			t += float64(o.Code.Latency())
			if o.Code.IsMemory() && opts.Profile != nil {
				t += opts.Profile.MissRate[o] * 50 // expected miss stall
			}
		}
		return t
	}
	workSCCs := 0
	for _, s := range sccs {
		if cost(s) > 0 {
			workSCCs++
		}
	}
	if workSCCs < 2 {
		return nil, 0 // the loop is one recurrence plus control: no pipeline
	}
	var total float64
	sccCost := make([]float64, len(sccs))
	for i, s := range sccs {
		sccCost[i] = cost(s)
		total += sccCost[i]
	}
	if total == 0 {
		return nil, 0
	}
	// Greedy stage formation in topological order: cut when the running
	// stage reaches its fair share.
	stages := opts.Cores
	target := total / float64(stages)
	a := Assignment{}
	stage, acc := 0, 0.0
	maxStage := 0.0
	stageCost := make([]float64, stages)
	for i, s := range sccs {
		if acc >= target && stage < stages-1 {
			stage++
			acc = 0
		}
		acc += sccCost[i]
		stageCost[stage] += sccCost[i]
		for _, o := range s {
			a[o] = []int{stage}
		}
	}
	for _, c := range stageCost {
		if c > maxStage {
			maxStage = c
		}
	}
	if maxStage == 0 {
		return nil, 0
	}
	used := 0
	for _, c := range stageCost {
		if c > 0 {
			used++
		}
	}
	if used < 2 {
		return nil, 0
	}
	// Everything outside the loop stays on the master.
	for _, b := range r.Blocks {
		if loop.Blocks[b.ID] {
			continue
		}
		for _, o := range b.Ops {
			a[o] = []int{0}
		}
	}
	return a, total / maxStage
}

// hottestLoop picks the outermost loop covering the most dynamic work.
func hottestLoop(r *ir.Region, opts Options) *ir.Loop {
	var best *ir.Loop
	var bestWeight float64
	for _, l := range r.Loops() {
		if l.Parent != nil {
			continue
		}
		var w float64
		for id := range l.Blocks {
			b := r.Blocks[id]
			n := float64(len(b.Ops))
			if opts.Profile != nil {
				n *= float64(opts.Profile.BlockCount[b])
			}
			w += n
		}
		if w > bestWeight {
			bestWeight, best = w, l
		}
	}
	return best
}
