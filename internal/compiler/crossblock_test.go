package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

// TestCrossBlockLoadLatency pins the block-exit latency rule: a block whose
// last useful instruction is a multi-cycle op (here a LOAD) must pad its
// schedule so the result is ready when the successor block's first
// instruction issues. Before the fix, the loop header's compare read the
// loaded bound one cycle early and the machine rejected the schedule.
func TestCrossBlockLoadLatency(t *testing.T) {
	p := ir.NewProgram("crossblock")
	v := p.Array("v", 8)
	p.SetInit(v, 0, 5)
	out := p.Array("out", 1)
	r := p.Region("r0")
	pre := r.NewBlock()
	base := pre.AddrOf(v)
	ob := pre.AddrOf(out)
	// The loop bound arrives from memory at the very end of the entry
	// block; the header compare is its first consumer.
	bound := pre.Load(v, base, 0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, LimitVal: bound, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		b.Store(out, ob, 0, i)
		return b
	})
	after.ExitRegion()
	r.Seal()

	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 4} {
		cp, err := Compile(p, Options{Cores: cores, Strategy: Serial, Profile: pr, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatalf("serial/%d: %v", cores, err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Errorf("serial/%d diverges at %#x: interp=%d machine=%d", cores, addr, a, b)
		}
	}
}

// Prefix-sum recurrence: v[i] = v[i-1] + v[i] — load of the running sum,
// load of the current element (same address as the store), store back.
func TestScanRecurrenceFTLP(t *testing.T) {
	p := ir.NewProgram("scanrepro")
	v := p.Array("v", 64)
	for i, w := range []int64{5, -2, 9, 4, 1, 7, -3, 8} {
		p.SetInit(v, int64(i), w)
	}
	r0 := p.Region("fill")
	pre0 := r0.NewBlock()
	base0 := pre0.AddrOf(v)
	after0 := ir.BuildCountedLoop(pre0, ir.LoopSpec{Start: 0, Limit: 64, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		st := b.Add(base0, b.ShlI(i, 3))
		g := b.AndI(i, 7)
		addr := b.Add(base0, b.ShlI(g, 3))
		x := b.Load(v, addr, 0)
		sum := b.Add(x, i)
		b.Store(v, st, 0, sum)
		return b
	})
	after0.ExitRegion()
	r0.Seal()

	r := p.Region("scan")
	pre := r.NewBlock()
	base := pre.AddrOf(v)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 1, Limit: 64, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		st := b.Add(base, b.ShlI(i, 3))
		im1 := b.SubI(i, 1)
		addr1 := b.Add(base, b.ShlI(im1, 3))
		prev := b.Load(v, addr1, 0)
		addr2 := b.Add(base, b.ShlI(i, 3))
		cur := b.Load(v, addr2, 0)
		sum := b.Add(prev, cur)
		b.Store(v, st, 0, sum)
		return b
	})
	after.ExitRegion()
	r.Seal()

	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{4, 16} {
		cp, err := Compile(p, Options{Cores: cores, Strategy: ForceFTLP, Profile: pr, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Errorf("ftlp/%d diverges at %#x: interp=%d machine=%d", cores, addr, a, b)
		}
	}
}
