package compiler

import (
	"fmt"
	"runtime"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

// Strategy selects how regions are parallelized.
type Strategy int

// Strategies. The Force* strategies compile every region with one
// parallelization technique (falling back to serial where it does not
// apply) — used for the paper's per-technique evaluations (Figures 10/11).
// Hybrid selects per region (paper §4.2, Figures 13/14). Serial compiles
// everything for the master core only (the single-core baseline).
const (
	Serial Strategy = iota
	ForceILP
	ForceFTLP
	ForceLLP
	Hybrid
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Serial:
		return "serial"
	case ForceILP:
		return "ilp"
	case ForceFTLP:
		return "fine-grain-tlp"
	case ForceLLP:
		return "llp"
	case Hybrid:
		return "hybrid"
	}
	return "strategy?"
}

// NoThreshold disables a threshold gate explicitly. The threshold fields
// of Options use 0 as "unset, apply the paper's default", which makes a
// literal zero threshold unrepresentable; pass NoThreshold (any negative
// value) to request "no gate at all".
const NoThreshold = -1.0

// SelectionMode picks how the multicore strategies (Hybrid and the Force*
// techniques) decide each region's lowering.
type SelectionMode int

const (
	// SelectMeasured simulates every candidate lowering in the context of
	// the program compiled so far (paper §4.2). The most faithful and the
	// most expensive mode; the default.
	SelectMeasured SelectionMode = iota
	// SelectStatic trusts the static cycle estimator for every region —
	// zero selection simulations (the ablation mode).
	SelectStatic
	// SelectAuto runs the tiered classifier: confident regions are decided
	// statically, low-confidence regions escalate to measured selection.
	SelectAuto
)

// String names the selection mode.
func (m SelectionMode) String() string {
	switch m {
	case SelectStatic:
		return "static"
	case SelectAuto:
		return "auto"
	}
	return "measured"
}

// DefaultSelectThreshold is the classifier-confidence floor below which
// SelectAuto escalates a region to measured selection. Confidence is the
// relative margin between the best and runner-up static estimates, so 0.08
// escalates regions whose ranking is decided by less than an 8% margin.
// Tuned on the 25-workload suite: wrong static picks cluster below 0.077
// (single-vs-parallel calls the estimator cannot settle) while correct
// picks start at 0.089, so 0.08 splits the gap.
const DefaultSelectThreshold = 0.08

// Options configures compilation.
type Options struct {
	Cores    int
	Strategy Strategy
	// Profile supplies trip counts, carried-dep observations and miss
	// rates. When nil, a profile is collected automatically.
	Profile *prof.Profile
	// Workers bounds the goroutines used by measured strategy selection
	// (candidate lowerings are simulated concurrently). 0 means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. The selected
	// program is identical for every worker count.
	Workers int
	// DSWPThreshold is the estimated-speedup gate for pipeline extraction
	// (paper: 1.25). 0 means the default; NoThreshold disables the gate.
	DSWPThreshold float64
	// DOALLTripThreshold is the minimum profiled trip count for
	// speculative loop parallelization. 0 means the default (8);
	// NoThreshold admits every trip count.
	DOALLTripThreshold float64
	// MissStallThreshold is the memory-boundedness gate that sends regions
	// to decoupled strand execution (fraction of estimated time in misses).
	// 0 means the default; NoThreshold disables the gate.
	MissStallThreshold float64
	// DisableEBUGWeights turns eBUG into plain BUG for strand extraction
	// (ablation).
	DisableEBUGWeights bool
	// ForcePredSend disables control-slice replication so branch
	// conditions always travel over the network (ablation).
	ForcePredSend bool
	// StaticSelection makes Hybrid pick strategies from the static cycle
	// estimator instead of by measurement (ablation; cheaper compiles).
	// Deprecated: set Selection to SelectStatic instead; this flag is kept
	// for spec compatibility and maps onto it.
	StaticSelection bool
	// Selection picks how per-region strategy selection runs: measured
	// (default), static, or the tiered auto mode that decides confident
	// regions statically and escalates only the rest.
	Selection SelectionMode
	// SelectThreshold is the classifier-confidence floor for SelectAuto.
	// 0 means DefaultSelectThreshold; NoThreshold trusts every static pick.
	SelectThreshold float64
}

// withDefaults fills unset thresholds (0 = default) and resolves the
// NoThreshold sentinel (negative = no gate, normalized to 0 so every
// comparison site passes trivially).
func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.DSWPThreshold = resolveThreshold(o.DSWPThreshold, 1.25)
	o.DOALLTripThreshold = resolveThreshold(o.DOALLTripThreshold, 8)
	o.MissStallThreshold = resolveThreshold(o.MissStallThreshold, 0.15)
	o.SelectThreshold = resolveThreshold(o.SelectThreshold, DefaultSelectThreshold)
	if o.StaticSelection && o.Selection == SelectMeasured {
		o.Selection = SelectStatic
	}
	return o
}

// resolveThreshold maps the Options threshold encoding to an effective
// value: 0 is "unset" (use the paper's default). A negative sentinel
// (NoThreshold) is preserved as-is — comparison sites treat any negative
// threshold as a disabled gate — so applying withDefaults twice is safe.
func resolveThreshold(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Compile lowers a program for an n-core Voltron machine.
//
// Compile is safe to call concurrently on a shared *ir.Program: the only
// in-place IR mutation (the classical cleanup passes) runs exactly once per
// program under PrepareOnce, and everything after it only reads the IR.
func Compile(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	opts = opts.withDefaults()
	// Classical cleanup (in place; idempotent and semantics-preserving, so
	// op-keyed profiles stay valid). Guarded so concurrent compiles of one
	// cached program never race; it runs before Verify so no reader
	// overlaps the mutation.
	p.PrepareOnce(func() { Optimize(p) })
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("compile %q: %w", p.Name, err)
	}
	if opts.Profile == nil && opts.Strategy != Serial {
		pr, err := prof.Collect(p)
		if err != nil {
			return nil, fmt.Errorf("profiling %q: %w", p.Name, err)
		}
		opts.Profile = pr
	}
	if opts.Cores > 1 &&
		(opts.Strategy == Hybrid || opts.Strategy == ForceILP || opts.Strategy == ForceFTLP) {
		switch opts.Selection {
		case SelectStatic:
			// Static mode is auto with the confidence gate disabled: every
			// classifier pick is trusted, nothing escalates, zero selection
			// simulations.
			opts.SelectThreshold = NoThreshold
			return compileAuto(p, opts)
		case SelectAuto:
			return compileAuto(p, opts)
		default:
			return compileMeasured(p, opts)
		}
	}
	cp := &core.CompiledProgram{Name: p.Name, Cores: opts.Cores, Src: p}
	for _, r := range p.Regions {
		cr, err := compileRegion(r, opts)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
		cp.Regions = append(cp.Regions, cr)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// compileRegion picks and applies a strategy for one region.
func compileRegion(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	if opts.Cores == 1 || opts.Strategy == Serial {
		return genSerial(r, opts.Cores)
	}
	switch opts.Strategy {
	case ForceILP:
		return genILP(r, opts)
	case ForceFTLP:
		return genFTLP(r, opts)
	case ForceLLP:
		if cr, ok, err := tryDOALL(r, opts); err != nil {
			return nil, err
		} else if ok {
			return cr, nil
		}
		return genSerial(r, opts.Cores)
	case Hybrid:
		return genHybrid(r, opts)
	}
	return nil, fmt.Errorf("unknown strategy %v", opts.Strategy)
}

// genSerial emits the region as a master-only decoupled thread — the
// single-core baseline codegen, also used for regions a forced strategy
// cannot parallelize and for DOALL serial fallbacks.
func genSerial(r *ir.Region, width int) (*core.CompiledRegion, error) {
	return GenDecoupled(r, uniform(r, 0), width)
}

// genFTLP extracts fine-grain TLP: DSWP when a loop pipelines profitably,
// otherwise eBUG strands (paper §4.2's fine-grain path).
func genFTLP(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	gen := GenDecoupled
	if opts.ForcePredSend {
		gen = GenDecoupledPredSend
	}
	if part, est := tryDSWP(r, opts); part != nil && est >= opts.DSWPThreshold {
		return gen(r, part, opts.Cores)
	}
	part := EBUG(r, opts)
	return gen(r, part, opts.Cores)
}
