package compiler

import (
	"fmt"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

// Strategy selects how regions are parallelized.
type Strategy int

// Strategies. The Force* strategies compile every region with one
// parallelization technique (falling back to serial where it does not
// apply) — used for the paper's per-technique evaluations (Figures 10/11).
// Hybrid selects per region (paper §4.2, Figures 13/14). Serial compiles
// everything for the master core only (the single-core baseline).
const (
	Serial Strategy = iota
	ForceILP
	ForceFTLP
	ForceLLP
	Hybrid
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Serial:
		return "serial"
	case ForceILP:
		return "ilp"
	case ForceFTLP:
		return "fine-grain-tlp"
	case ForceLLP:
		return "llp"
	case Hybrid:
		return "hybrid"
	}
	return "strategy?"
}

// Options configures compilation.
type Options struct {
	Cores    int
	Strategy Strategy
	// Profile supplies trip counts, carried-dep observations and miss
	// rates. When nil, a profile is collected automatically.
	Profile *prof.Profile
	// DSWPThreshold is the estimated-speedup gate for pipeline extraction
	// (paper: 1.25).
	DSWPThreshold float64
	// DOALLTripThreshold is the minimum profiled trip count for
	// speculative loop parallelization.
	DOALLTripThreshold float64
	// MissStallThreshold is the memory-boundedness gate that sends regions
	// to decoupled strand execution (fraction of estimated time in misses).
	MissStallThreshold float64
	// DisableEBUGWeights turns eBUG into plain BUG for strand extraction
	// (ablation).
	DisableEBUGWeights bool
	// ForcePredSend disables control-slice replication so branch
	// conditions always travel over the network (ablation).
	ForcePredSend bool
	// StaticSelection makes Hybrid pick strategies from the static cycle
	// estimator instead of by measurement (ablation; cheaper compiles).
	StaticSelection bool
}

// withDefaults fills unset thresholds.
func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 1
	}
	if o.DSWPThreshold == 0 {
		o.DSWPThreshold = 1.25
	}
	if o.DOALLTripThreshold == 0 {
		o.DOALLTripThreshold = 8
	}
	if o.MissStallThreshold == 0 {
		o.MissStallThreshold = 0.15
	}
	return o
}

// Compile lowers a program for an n-core Voltron machine.
func Compile(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	opts = opts.withDefaults()
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("compile %q: %w", p.Name, err)
	}
	// Classical cleanup (in place; idempotent and semantics-preserving, so
	// repeated compiles of one program are fine and op-keyed profiles stay
	// valid).
	Optimize(p)
	if opts.Profile == nil && opts.Strategy != Serial {
		pr, err := prof.Collect(p)
		if err != nil {
			return nil, fmt.Errorf("profiling %q: %w", p.Name, err)
		}
		opts.Profile = pr
	}
	if opts.Cores > 1 && !opts.StaticSelection &&
		(opts.Strategy == Hybrid || opts.Strategy == ForceILP || opts.Strategy == ForceFTLP) {
		return compileMeasured(p, opts)
	}
	cp := &core.CompiledProgram{Name: p.Name, Cores: opts.Cores, Src: p}
	for _, r := range p.Regions {
		cr, err := compileRegion(r, opts)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
		cp.Regions = append(cp.Regions, cr)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// compileMeasured performs region-by-region selection by measurement: each
// region's candidate lowerings are simulated in an otherwise-serial program
// and the candidate with the best region time wins (serial always
// competes, so a technique is never applied where it hurts). For Hybrid the
// candidates are every technique with statistical DOALL taken outright as
// the most efficient parallelism (paper §4.2); for the Force* strategies
// the single technique competes against serial only — the per-technique
// bars of Figures 10/11.
func compileMeasured(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	cp := &core.CompiledProgram{Name: p.Name, Cores: opts.Cores, Src: p}
	for _, r := range p.Regions {
		cr, err := genSerial(r, opts.Cores)
		if err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
		cp.Regions = append(cp.Regions, cr)
	}
	machine := core.New(core.DefaultConfig(opts.Cores))
	for i, r := range p.Regions {
		small := opts.Profile != nil && opts.Profile.RegionOps != nil &&
			r.ID < len(opts.Profile.RegionOps) && opts.Profile.RegionOps[r.ID] < minRegionOps
		if small {
			continue
		}
		if opts.Strategy == Hybrid {
			if cr, ok, err := tryDOALL(r, opts); err != nil {
				return nil, err
			} else if ok {
				cp.Regions[i] = cr
				continue
			}
		}
		var candidates []*core.CompiledRegion
		if opts.Strategy == Hybrid || opts.Strategy == ForceILP {
			if coupled, _, _, err := genCoupledCandidate(r, opts); err == nil {
				candidates = append(candidates, coupled)
			}
		}
		if opts.Strategy == Hybrid || opts.Strategy == ForceFTLP {
			if ftlp, err := genFTLP(r, opts); err == nil {
				candidates = append(candidates, ftlp)
			}
		}
		bestCycles := int64(-1)
		serial := cp.Regions[i]
		if res, err := machine.Run(cp); err == nil {
			bestCycles = res.RegionCycles[i]
		}
		best := serial
		for _, cand := range candidates {
			cp.Regions[i] = cand
			res, err := machine.Run(cp)
			if err != nil {
				continue // a misbehaving candidate never wins
			}
			if bestCycles < 0 || res.RegionCycles[i] < bestCycles {
				bestCycles = res.RegionCycles[i]
				best = cand
			}
		}
		cp.Regions[i] = best
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// compileRegion picks and applies a strategy for one region.
func compileRegion(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	if opts.Cores == 1 || opts.Strategy == Serial {
		return genSerial(r, opts.Cores)
	}
	switch opts.Strategy {
	case ForceILP:
		return genILP(r, opts)
	case ForceFTLP:
		return genFTLP(r, opts)
	case ForceLLP:
		if cr, ok, err := tryDOALL(r, opts); err != nil {
			return nil, err
		} else if ok {
			return cr, nil
		}
		return genSerial(r, opts.Cores)
	case Hybrid:
		return genHybrid(r, opts)
	}
	return nil, fmt.Errorf("unknown strategy %v", opts.Strategy)
}

// genSerial emits the region as a master-only decoupled thread — the
// single-core baseline codegen, also used for regions a forced strategy
// cannot parallelize and for DOALL serial fallbacks.
func genSerial(r *ir.Region, width int) (*core.CompiledRegion, error) {
	return GenDecoupled(r, uniform(r, 0), width)
}

// genFTLP extracts fine-grain TLP: DSWP when a loop pipelines profitably,
// otherwise eBUG strands (paper §4.2's fine-grain path).
func genFTLP(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	gen := GenDecoupled
	if opts.ForcePredSend {
		gen = GenDecoupledPredSend
	}
	if part, est := tryDSWP(r, opts); part != nil && est >= opts.DSWPThreshold {
		return gen(r, part, opts.Cores)
	}
	part := EBUG(r, opts)
	return gen(r, part, opts.Cores)
}
