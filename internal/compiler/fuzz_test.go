package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/isa"
	"voltron/internal/workload"
)

// Randomized differential testing: generate random (but well-formed,
// terminating) programs with workload.Random and require every strategy on
// every machine width to reproduce the interpreter's memory image exactly.
// This exercises the partitioners, both code generators, communication
// insertion, unrolling and the DOALL transform against inputs nobody
// hand-picked.

func TestFuzzAllStrategiesMatchInterpreter(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	strategies := []Strategy{Serial, ForceILP, ForceFTLP, ForceLLP, Hybrid}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			p, err := workload.Random(int64(seed), 1+seed%3)
			if err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}
			golden, err := interp.Run(p, interp.Options{})
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			pr := mustProfile(t, p)
			for _, s := range strategies {
				for _, cores := range []int{2, 4} {
					cp, err := Compile(p, Options{Cores: cores, Strategy: s, Profile: pr})
					if err != nil {
						t.Fatalf("%v/%d: compile: %v", s, cores, err)
					}
					res, err := core.New(core.DefaultConfig(cores)).Run(cp)
					if err != nil {
						t.Fatalf("%v/%d: run: %v", s, cores, err)
					}
					if !res.Mem.Equal(golden.Mem) {
						addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
						t.Fatalf("%v/%d: memory diverges at %#x: interp=%d machine=%d",
							s, cores, addr, int64(a), int64(b))
					}
				}
			}
		})
	}
}

// FuzzCompileMatchesInterpreter is the native fuzz entry point (run in CI
// as `go test -fuzz=Fuzz -fuzztime=30s`): the fuzzer explores (seed,
// regions, strategy, cores) tuples, each of which deterministically names
// a generated program, and any divergence from the interpreter's memory
// image crashes with a reproducer in testdata/fuzz.
func FuzzCompileMatchesInterpreter(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(1+seed%3), uint8(seed%5), uint8(seed%2))
	}
	strategies := []Strategy{Serial, ForceILP, ForceFTLP, ForceLLP, Hybrid}
	f.Fuzz(func(t *testing.T, seed int64, regions, stratSel, coreSel uint8) {
		p, err := workload.Random(seed, 1+int(regions)%3)
		if err != nil {
			t.Fatalf("generated program invalid: %v", err)
		}
		golden, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatalf("interp: %v", err)
		}
		s := strategies[int(stratSel)%len(strategies)]
		cores := 2 + 2*(int(coreSel)%2)
		cp, err := Compile(p, Options{Cores: cores, Strategy: s, Profile: mustProfile(t, p), Workers: 1})
		if err != nil {
			t.Fatalf("%v/%d: compile: %v", s, cores, err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatalf("%v/%d: run: %v", s, cores, err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Fatalf("seed %d %v/%d: memory diverges at %#x: interp=%d machine=%d",
				seed, s, cores, addr, int64(a), int64(b))
		}
	})
}

func TestFuzzGeneratorDeterministic(t *testing.T) {
	p1, err := workload.Random(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := workload.Random(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := interp.Run(p1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(p2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Mem.Equal(r2.Mem) || r1.DynOps != r2.DynOps {
		t.Error("same seed produced different programs")
	}
}

// TestListScheduleRespectsDependences: random DAGs scheduled on a single
// issue slot must satisfy every latency edge.
func TestListScheduleRespectsDependences(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		d := &dag{}
		n := 3 + rng.Intn(15)
		for i := 0; i < n; i++ {
			var preds []dagDep
			for j := 0; j < i; j++ {
				if rng.Intn(4) == 0 {
					preds = append(preds, dagDep{node: j, lat: 1 + rng.Intn(4)})
				}
			}
			d.add(isa.Inst{Op: isa.NOP, Imm: int64(i)}, preds...)
		}
		sched := d.schedule()
		// Recover issue cycles by the Imm tags.
		cycleOf := map[int64]int{}
		for cyc, in := range sched {
			if in.Op == isa.NOP && in.Imm != 0 || cyc == 0 {
				cycleOf[in.Imm] = cyc
			}
		}
		// Node 0's tag collides with filler NOPs (Imm 0); recheck via the
		// dag's own cycle assignments instead.
		for i, node := range d.nodes {
			for _, pd := range node.preds {
				if d.nodes[pd.node].cycle+pd.lat > node.cycle {
					t.Fatalf("trial %d: node %d at %d violates edge from %d(+%d)",
						trial, i, node.cycle, pd.node, pd.lat)
				}
			}
		}
		if len(sched) < n {
			t.Fatalf("trial %d: schedule dropped nodes", trial)
		}
	}
}
