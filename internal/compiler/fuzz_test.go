package compiler

import (
	"fmt"
	"math/rand"
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// Randomized differential testing: generate random (but well-formed,
// terminating) programs and require every strategy on every machine width
// to reproduce the interpreter's memory image exactly. This exercises the
// partitioners, both code generators, communication insertion, unrolling
// and the DOALL transform against inputs nobody hand-picked.

type progGen struct {
	rng    *rand.Rand
	p      *ir.Program
	arrays []*ir.Array
}

func newProgGen(seed int64) *progGen {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.p = ir.NewProgram(fmt.Sprintf("fuzz%d", seed))
	na := 2 + g.rng.Intn(3)
	for i := 0; i < na; i++ {
		words := int64(16 << g.rng.Intn(3)) // 16..64
		arr := g.p.Array(fmt.Sprintf("a%d", i), words)
		for w := int64(0); w < words; w++ {
			g.p.SetInit(arr, w, g.rng.Int63n(1000)-500)
		}
		g.arrays = append(g.arrays, arr)
	}
	return g
}

// pool tracks defined GPR values during generation.
type valPool struct {
	vals []ir.Value
	rng  *rand.Rand
}

func (vp *valPool) pick() ir.Value { return vp.vals[vp.rng.Intn(len(vp.vals))] }
func (vp *valPool) add(v ir.Value) { vp.vals = append(vp.vals, v) }

// emitRandomOps appends n random ops to the block, keeping addresses in
// bounds via masking (array sizes are powers of two).
func (g *progGen) emitRandomOps(b *ir.Block, vp *valPool, bases map[*ir.Array]ir.Value, n int) {
	for k := 0; k < n; k++ {
		switch g.rng.Intn(8) {
		case 0, 1, 2: // ALU
			x, y := vp.pick(), vp.pick()
			switch g.rng.Intn(5) {
			case 0:
				vp.add(b.Add(x, y))
			case 1:
				vp.add(b.Sub(x, y))
			case 2:
				vp.add(b.MulI(x, g.rng.Int63n(7)+1))
			case 3:
				vp.add(b.Xor(x, y))
			case 4:
				vp.add(b.AndI(x, 0xFFFF))
			}
		case 3, 4: // load
			arr := g.arrays[g.rng.Intn(len(g.arrays))]
			idx := b.AndI(vp.pick(), arr.Words-1)
			addr := b.Add(bases[arr], b.ShlI(idx, 3))
			vp.add(b.Load(arr, addr, 0))
		case 5, 6: // store
			arr := g.arrays[g.rng.Intn(len(g.arrays))]
			idx := b.AndI(vp.pick(), arr.Words-1)
			addr := b.Add(bases[arr], b.ShlI(idx, 3))
			b.Store(arr, addr, 0, vp.pick())
		default: // constant
			vp.add(b.MovI(g.rng.Int63n(100)))
		}
	}
}

// genRegion appends one random region: straight-line, counted loop, or a
// loop with a diamond inside.
func (g *progGen) genRegion(i int) {
	r := g.p.Region(fmt.Sprintf("r%d", i))
	pre := r.NewBlock()
	bases := map[*ir.Array]ir.Value{}
	for _, arr := range g.arrays {
		bases[arr] = pre.AddrOf(arr)
	}
	vp := &valPool{rng: g.rng}
	vp.add(pre.MovI(g.rng.Int63n(50)))
	vp.add(pre.MovI(g.rng.Int63n(50) + 3))
	shape := g.rng.Intn(3)
	switch shape {
	case 0: // straight line
		g.emitRandomOps(pre, vp, bases, 6+g.rng.Intn(10))
		pre.ExitRegion()
	case 1: // counted loop
		trips := int64(8 << g.rng.Intn(2))
		nops := 4 + g.rng.Intn(8)
		after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(b *ir.Block, iv ir.Value) *ir.Block {
			inner := &valPool{rng: g.rng, vals: append([]ir.Value{iv}, vp.vals...)}
			g.emitRandomOps(b, inner, bases, nops)
			return b
		})
		g.emitRandomOps(after, vp, bases, 2)
		after.ExitRegion()
	default: // loop with a diamond
		trips := int64(8)
		after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(body *ir.Block, iv ir.Value) *ir.Block {
			inner := &valPool{rng: g.rng, vals: append([]ir.Value{iv}, vp.vals...)}
			g.emitRandomOps(body, inner, bases, 3)
			c := body.CmpLTI(inner.pick(), g.rng.Int63n(40))
			then := r.NewBlock()
			els := r.NewBlock()
			join := r.NewBlock()
			tp := &valPool{rng: g.rng, vals: append([]ir.Value(nil), inner.vals...)}
			g.emitRandomOps(then, tp, bases, 2+g.rng.Intn(3))
			then.JumpTo(join)
			ep := &valPool{rng: g.rng, vals: append([]ir.Value(nil), inner.vals...)}
			g.emitRandomOps(els, ep, bases, 2+g.rng.Intn(3))
			els.JumpTo(join)
			body.BranchIf(c, then, els)
			return join
		})
		after.ExitRegion()
	}
	r.Seal()
}

func (g *progGen) build(regions int) (*ir.Program, error) {
	for i := 0; i < regions; i++ {
		g.genRegion(i)
	}
	return g.p, g.p.Verify()
}

func TestFuzzAllStrategiesMatchInterpreter(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	strategies := []Strategy{Serial, ForceILP, ForceFTLP, ForceLLP, Hybrid}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			g := newProgGen(int64(seed))
			p, err := g.build(1 + seed%3)
			if err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}
			golden, err := interp.Run(p, interp.Options{})
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			pr := mustProfile(t, p)
			for _, s := range strategies {
				for _, cores := range []int{2, 4} {
					cp, err := Compile(p, Options{Cores: cores, Strategy: s, Profile: pr})
					if err != nil {
						t.Fatalf("%v/%d: compile: %v", s, cores, err)
					}
					res, err := core.New(core.DefaultConfig(cores)).Run(cp)
					if err != nil {
						t.Fatalf("%v/%d: run: %v", s, cores, err)
					}
					if !res.Mem.Equal(golden.Mem) {
						addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
						t.Fatalf("%v/%d: memory diverges at %#x: interp=%d machine=%d",
							s, cores, addr, int64(a), int64(b))
					}
				}
			}
		})
	}
}

func TestFuzzGeneratorDeterministic(t *testing.T) {
	g1 := newProgGen(7)
	p1, err := g1.build(2)
	if err != nil {
		t.Fatal(err)
	}
	g2 := newProgGen(7)
	p2, err := g2.build(2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := interp.Run(p1, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(p2, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Mem.Equal(r2.Mem) || r1.DynOps != r2.DynOps {
		t.Error("same seed produced different programs")
	}
}

// TestListScheduleRespectsDependences: random DAGs scheduled on a single
// issue slot must satisfy every latency edge.
func TestListScheduleRespectsDependences(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		d := &dag{}
		n := 3 + rng.Intn(15)
		for i := 0; i < n; i++ {
			var preds []dagDep
			for j := 0; j < i; j++ {
				if rng.Intn(4) == 0 {
					preds = append(preds, dagDep{node: j, lat: 1 + rng.Intn(4)})
				}
			}
			d.add(isa.Inst{Op: isa.NOP, Imm: int64(i)}, preds...)
		}
		sched := d.schedule()
		// Recover issue cycles by the Imm tags.
		cycleOf := map[int64]int{}
		for cyc, in := range sched {
			if in.Op == isa.NOP && in.Imm != 0 || cyc == 0 {
				cycleOf[in.Imm] = cyc
			}
		}
		// Node 0's tag collides with filler NOPs (Imm 0); recheck via the
		// dag's own cycle assignments instead.
		for i, node := range d.nodes {
			for _, pd := range node.preds {
				if d.nodes[pd.node].cycle+pd.lat > node.cycle {
					t.Fatalf("trial %d: node %d at %d violates edge from %d(+%d)",
						trial, i, node.cycle, pd.node, pd.lat)
				}
			}
		}
		if len(sched) < n {
			t.Fatalf("trial %d: schedule dropped nodes", trial)
		}
	}
}
