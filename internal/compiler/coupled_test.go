package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/isa"
)

// blockLengths extracts per-core block extents of a compiled region.
func blockLengths(cr *core.CompiledRegion, c int) map[int64]int {
	type ext struct {
		lbl int64
		at  int
	}
	var exts []ext
	for lbl, idx := range cr.Labels[c] {
		exts = append(exts, ext{lbl, idx})
	}
	// insertion order irrelevant; sort by position.
	for i := range exts {
		for j := i + 1; j < len(exts); j++ {
			if exts[j].at < exts[i].at {
				exts[i], exts[j] = exts[j], exts[i]
			}
		}
	}
	out := map[int64]int{}
	for i, e := range exts {
		end := len(cr.Code[c])
		if i+1 < len(exts) {
			end = exts[i+1].at
		}
		out[e.lbl] = end - e.at
	}
	return out
}

func TestCoupledBlocksUniformAcrossCores(t *testing.T) {
	// The DVLIW invariant: every block's schedule has identical length on
	// every core (paper §3.2: "the schedule lengths of any given block are
	// the same across all the cores").
	for _, tc := range corpus {
		p := tc.mk()
		pr := mustProfile(t, p)
		for _, cores := range []int{2, 4} {
			for _, r := range p.Regions {
				cr, _, _, err := genCoupledCandidate(r, Options{Cores: cores, Profile: pr}.withDefaults())
				if err != nil {
					t.Fatalf("%s/%s: %v", tc.name, r.Name, err)
				}
				ref := blockLengths(cr, 0)
				for c := 1; c < cores; c++ {
					got := blockLengths(cr, c)
					for lbl, n := range ref {
						if got[lbl] != n {
							t.Fatalf("%s/%s: block %d length %d on core 0 vs %d on core %d",
								tc.name, r.Name, lbl, n, got[lbl], c)
						}
					}
				}
			}
		}
	}
}

func TestCoupledPutGetStaticallyBalanced(t *testing.T) {
	// Every PUT must have a matching same-cycle GET on the wire's other
	// end. Statically: per block, per cycle offset, the PUT on core a
	// toward direction d pairs with a GET on neighbor(a,d) from the
	// opposite direction. The machine enforces this dynamically; here we
	// check the emitted schedule directly.
	p := progMultiRegion()
	pr := mustProfile(t, p)
	for _, r := range p.Regions {
		cr, _, _, err := genCoupledCandidate(r, Options{Cores: 4, Profile: pr}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		n := len(cr.Code[0])
		for c := 1; c < 4; c++ {
			if len(cr.Code[c]) != n {
				t.Fatalf("core %d stream length %d != %d", c, len(cr.Code[c]), n)
			}
		}
		top := topologyFor4()
		for i := 0; i < n; i++ {
			for c := 0; c < 4; c++ {
				in := cr.Code[c][i]
				if in.Op != isa.PUT {
					continue
				}
				nb := top.Neighbor(c, in.Dir)
				if nb < 0 {
					t.Fatalf("PUT off mesh at core %d slot %d", c, i)
				}
				other := cr.Code[nb][i]
				if other.Op != isa.GETOP || other.Dir != in.Dir.Opposite() {
					t.Fatalf("slot %d: PUT on core %d unmatched (neighbor %d has %v)", i, c, nb, other)
				}
			}
		}
	}
}

func TestCoupledBranchesSimultaneous(t *testing.T) {
	// BRs and HALTs appear at identical slots on every core.
	p := progDiamond(16)
	pr := mustProfile(t, p)
	cr, _, _, err := genCoupledCandidate(p.Regions[0], Options{Cores: 2, Profile: pr}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cr.Code[0] {
		a, b := cr.Code[0][i].Op, cr.Code[1][i].Op
		if (a == isa.BR) != (b == isa.BR) {
			t.Fatalf("slot %d: BR on one core only (%v vs %v)", i, a, b)
		}
		if (a == isa.HALT) != (b == isa.HALT) {
			t.Fatalf("slot %d: HALT on one core only", i)
		}
	}
}

func TestCoupledRejectsWideGroups(t *testing.T) {
	p := progCopyAdd(16)
	if _, err := GenCoupled(p.Regions[0], uniform(p.Regions[0], 0), 8); err == nil {
		t.Error("coupled group of 8 accepted (paper limits groups to 4)")
	}
}

func TestCoupledManualPartitionCorrect(t *testing.T) {
	// Stress: alternating partition through the coupled backend.
	for _, tc := range corpus {
		if tc.fpReduce {
			continue
		}
		p := tc.mk()
		golden, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cp := &core.CompiledProgram{Name: p.Name, Cores: 2, Src: p}
		for _, r := range p.Regions {
			cr, err := GenCoupled(r, manualSplit(r), 2)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, r.Name, err)
			}
			cp.Regions = append(cp.Regions, cr)
		}
		res, err := core.New(core.DefaultConfig(2)).Run(cp)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Fatalf("%s: coupled alternating partition wrong at %#x: %d vs %d", tc.name, addr, a, b)
		}
	}
}

// topologyFor4 avoids importing xnet in tests twice; mirrors the 2x2 mesh.
type mesh4 struct{}

func topologyFor4() mesh4 { return mesh4{} }

func (mesh4) Neighbor(c int, d isa.Direction) int {
	x, y := c%2, c/2
	switch d {
	case isa.East:
		x++
	case isa.West:
		x--
	case isa.North:
		y--
	case isa.South:
		y++
	}
	if x < 0 || x > 1 || y < 0 || y > 1 {
		return -1
	}
	return y*2 + x
}
