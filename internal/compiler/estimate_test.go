package compiler

import (
	"testing"

	"voltron/internal/core"
)

func TestEstimateOrdersConfigurations(t *testing.T) {
	// The estimator must rank a 4-core DOALL-style split below serial for
	// a parallel loop, and rank serial best for a serial recurrence.
	p := progStrands(256)
	pr := mustProfile(t, p)
	r := p.Regions[0]
	serial, err := genSerial(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	ftlp, err := genFTLP(r, Options{Cores: 4, Profile: pr}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	es := EstimateCycles(serial, r, pr)
	ef := EstimateCycles(ftlp, r, pr)
	if es <= 0 || ef <= 0 {
		t.Fatalf("estimates non-positive: %g %g", es, ef)
	}
	if ef >= es {
		t.Errorf("strand loop: decoupled estimate %g >= serial %g (MLP invisible)", ef, es)
	}
}

func TestEstimateTracksMeasurement(t *testing.T) {
	// Across the corpus, serial estimates should correlate with measured
	// serial cycles within a generous factor (it is a ranking heuristic).
	for _, tc := range corpus {
		p := tc.mk()
		pr := mustProfile(t, p)
		cp, err := Compile(p, Options{Cores: 1, Strategy: Serial, Profile: pr})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.New(core.DefaultConfig(1)).Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		var est float64
		for i, r := range p.Regions {
			est += EstimateCycles(cp.Regions[i], r, pr)
		}
		if res.TotalCycles < 5000 {
			continue // cold-cache effects dominate tiny programs
		}
		ratio := est / float64(res.TotalCycles)
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: estimate %g vs measured %d (ratio %.2f)", tc.name, est, res.TotalCycles, ratio)
		}
	}
}

func TestSelectStrategyShapes(t *testing.T) {
	// DOALL loop -> LLP.
	{
		p := progCopyAdd(64)
		opts := Options{Cores: 4, Profile: mustProfile(t, p)}.withDefaults()
		if got := SelectStrategy(p.Regions[0], opts); got != ChoseLLP {
			t.Errorf("copyadd selection = %v, want LLP", got)
		}
	}
	// Serial recurrence -> never LLP; single or a technique that measured
	// better.
	{
		p := progCarried(48)
		opts := Options{Cores: 4, Profile: mustProfile(t, p)}.withDefaults()
		if got := SelectStrategy(p.Regions[0], opts); got == ChoseLLP {
			t.Errorf("carried loop selected as LLP")
		}
	}
	// Single core -> single.
	{
		p := progCopyAdd(64)
		opts := Options{Cores: 1, Profile: mustProfile(t, p)}.withDefaults()
		if got := SelectStrategy(p.Regions[0], opts); got != ChoseSingle {
			t.Errorf("1-core selection = %v, want single", got)
		}
	}
	// Tiny region -> single (overhead floor).
	{
		p := progCopyAdd(2)
		opts := Options{Cores: 4, Profile: mustProfile(t, p)}.withDefaults()
		if got := SelectStrategy(p.Regions[0], opts); got != ChoseSingle {
			t.Errorf("tiny region selection = %v, want single", got)
		}
	}
}

func TestChoiceStrings(t *testing.T) {
	want := map[Choice]string{
		ChoseSingle: "single core", ChoseILP: "ILP",
		ChoseFTLP: "fine-grain TLP", ChoseLLP: "LLP",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{
		Serial: "serial", ForceILP: "ilp", ForceFTLP: "fine-grain-tlp",
		ForceLLP: "llp", Hybrid: "hybrid",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%v.String() = %q, want %q", int(s), s.String(), str)
		}
	}
}
