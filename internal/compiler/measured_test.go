package compiler

import (
	"reflect"
	"testing"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// compileWorkers compiles p with an explicit measured-selection worker
// count, failing the test on error.
func compileWorkers(t *testing.T, p *ir.Program, strat Strategy, cores, workers int) *core.CompiledProgram {
	t.Helper()
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(p, Options{Cores: cores, Strategy: strat, Profile: pr, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// TestMeasuredSelectionDeterministic asserts the tentpole guarantee of the
// parallel measured-selection pipeline: for any worker count, the selected
// program is identical to the sequential (Workers=1) pipeline's — same
// per-region strategies, same instruction streams, byte for byte.
func TestMeasuredSelectionDeterministic(t *testing.T) {
	cases := []struct {
		name  string
		mk    func() *ir.Program
		strat Strategy
	}{
		{"multi-region-hybrid", progMultiRegion, Hybrid},
		{"diamond-hybrid", func() *ir.Program { return progDiamond(256) }, Hybrid},
		{"strands-ftlp", func() *ir.Program { return progStrands(512) }, ForceFTLP},
		{"copyadd-ilp", func() *ir.Program { return progCopyAdd(128) }, ForceILP},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := c.mk()
			seq := compileWorkers(t, p, c.strat, 4, 1)
			for _, workers := range []int{2, 8} {
				par := compileWorkers(t, p, c.strat, 4, workers)
				if !reflect.DeepEqual(seq.Regions, par.Regions) {
					for i := range seq.Regions {
						if !reflect.DeepEqual(seq.Regions[i], par.Regions[i]) {
							t.Errorf("workers=%d: region %q diverges from sequential selection (mode %v vs %v)",
								workers, seq.Regions[i].Name, seq.Regions[i].Mode, par.Regions[i].Mode)
						}
					}
				}
			}
		})
	}
}

// TestMeasuredSelectionDeterministicOnBenchmarks repeats the determinism
// check on real suite benchmarks covering the three parallelism classes.
func TestMeasuredSelectionDeterministicOnBenchmarks(t *testing.T) {
	for _, bench := range []string{"gsmdecode", "179.art", "171.swim"} {
		t.Run(bench, func(t *testing.T) {
			p, err := workload.Build(bench)
			if err != nil {
				t.Fatal(err)
			}
			seq := compileWorkers(t, p, Hybrid, 4, 1)
			par := compileWorkers(t, p, Hybrid, 4, 8)
			if !reflect.DeepEqual(seq.Regions, par.Regions) {
				t.Errorf("%s: parallel selection diverges from sequential", bench)
			}
		})
	}
}

// TestNoThresholdSentinel covers the threshold encoding: 0 means "apply the
// paper's default", NoThreshold (negative) disables the gate entirely.
func TestNoThresholdSentinel(t *testing.T) {
	// withDefaults semantics, including double application (the sentinel
	// must survive a second pass rather than resurrecting the default).
	o := Options{DOALLTripThreshold: NoThreshold}.withDefaults()
	if o.DOALLTripThreshold >= 0 {
		t.Errorf("NoThreshold resolved to %v, want a preserved negative sentinel", o.DOALLTripThreshold)
	}
	if o2 := o.withDefaults(); o2.DOALLTripThreshold >= 0 {
		t.Errorf("double withDefaults resurrected the gate: %v", o2.DOALLTripThreshold)
	}
	if d := (Options{}).withDefaults(); d.DOALLTripThreshold != 8 || d.DSWPThreshold != 1.25 {
		t.Errorf("unset thresholds = %v/%v, want defaults 8/1.25", d.DOALLTripThreshold, d.DSWPThreshold)
	}

	// Behavior: a 4-trip DOALL loop is below the default trip threshold
	// (8), so ForceLLP falls back to serial — but with NoThreshold the
	// gate is off and the loop is chunked.
	p := progCopyAdd(4)
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := Compile(p, Options{Cores: 2, Strategy: ForceLLP, Profile: pr})
	if err != nil {
		t.Fatal(err)
	}
	if gated.Regions[0].Mode == core.DOALL {
		t.Error("trip count 4 passed the default threshold of 8")
	}
	open, err := Compile(p, Options{Cores: 2, Strategy: ForceLLP, Profile: pr, DOALLTripThreshold: NoThreshold})
	if err != nil {
		t.Fatal(err)
	}
	if open.Regions[0].Mode != core.DOALL {
		t.Errorf("NoThreshold: region mode %v, want DOALL", open.Regions[0].Mode)
	}
}

// BenchmarkMeasuredSelection isolates measured strategy selection on one
// mid-size workload, so the baseline-hoisting and worker-pool wins are
// individually visible in go test -bench.
func BenchmarkMeasuredSelection(b *testing.B) {
	p, err := workload.Build("gsmdecode")
	if err != nil {
		b.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compile(p, Options{Cores: 4, Strategy: Hybrid, Profile: pr, Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
