package compiler

import (
	"testing"

	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

func TestFindDOALLEligibility(t *testing.T) {
	p := progCopyAdd(64)
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: ForceLLP, Profile: pr}.withDefaults()
	info, err := findDOALL(p.Regions[0], opts)
	if err != nil {
		t.Fatalf("clean loop rejected: %v", err)
	}
	if info.total != 64 {
		t.Errorf("total iterations = %d, want 64", info.total)
	}
	if info.exitBlock == nil || len(info.pre) == 0 {
		t.Error("region shape not decomposed")
	}
}

func TestFindDOALLRejectsCarried(t *testing.T) {
	p := progCarried(48)
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: ForceLLP, Profile: pr}.withDefaults()
	if _, err := findDOALL(p.Regions[0], opts); err == nil {
		t.Error("loop with carried memory dependence accepted")
	}
}

func TestFindDOALLRejectsLowTrip(t *testing.T) {
	p := progCopyAdd(4)
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: ForceLLP, Profile: pr, DOALLTripThreshold: 8}.withDefaults()
	if _, err := findDOALL(p.Regions[0], opts); err == nil {
		t.Error("4-iteration loop accepted with threshold 8")
	}
}

func TestFindDOALLStaticWithoutProfile(t *testing.T) {
	// Without a profile, the static affine test decides.
	p := progCopyAdd(64)
	opts := Options{Cores: 4, Strategy: ForceLLP}.withDefaults()
	if _, err := findDOALL(p.Regions[0], opts); err != nil {
		t.Errorf("affine-provable loop rejected statically: %v", err)
	}
	pc := progCarried(48)
	if _, err := findDOALL(pc.Regions[0], opts); err == nil {
		t.Error("statically-carried loop accepted without profile")
	}
}

func TestDOALLChunkBounds(t *testing.T) {
	// 10 iterations on 4 cores: chunks of 3 — the last core gets 1.
	p := progCopyAdd(10)
	pr := mustProfile(t, p)
	opts := Options{Cores: 4, Strategy: ForceLLP, Profile: pr, DOALLTripThreshold: 2}.withDefaults()
	cr, ok, err := tryDOALL(p.Regions[0], opts)
	if err != nil || !ok {
		t.Fatalf("tryDOALL: ok=%v err=%v", ok, err)
	}
	if cr.TxCores != 4 || cr.Mode != core.DOALL {
		t.Errorf("TxCores=%d Mode=%v", cr.TxCores, cr.Mode)
	}
	// Run and verify: uneven chunks must still cover every element.
	cp := &core.CompiledProgram{Name: "t", Cores: 4, Src: p, Regions: []*core.CompiledRegion{cr}}
	res, err := core.New(core.DefaultConfig(4)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Error("uneven chunking produced wrong memory")
	}
}

func TestDOALLReductionExpansion(t *testing.T) {
	p := progReduction(64)
	pr := mustProfile(t, p)
	for _, cores := range []int{2, 4} {
		cp, err := Compile(p, Options{Cores: cores, Strategy: ForceLLP, Profile: pr})
		if err != nil {
			t.Fatal(err)
		}
		if cp.Regions[0].Mode != core.DOALL {
			t.Fatalf("%d cores: reduction loop not parallelized (mode %v)", cores, cp.Regions[0].Mode)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mem.Equal(golden.Mem) {
			addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
			t.Fatalf("%d cores: reduction wrong at %#x: %d vs %d", cores, addr, a, b)
		}
		if res.TMConflicts != 0 {
			t.Errorf("%d cores: reduction loop conflicted %d times", cores, res.TMConflicts)
		}
	}
}

func TestDOALLMulReduction(t *testing.T) {
	// A product reduction: workers must start at identity 1.
	p := ir.NewProgram("prod")
	src := p.Array("src", 16)
	out := p.Array("out", 1)
	for i := int64(0); i < 16; i++ {
		p.SetInit(src, i, (i%3)+1)
	}
	r := p.Region("prod")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	acc := pre.MovI(1)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		b.Accum(isa.MUL, acc, b.Load(src, b.Add(sb, off), 0))
		return b
	})
	after.Store(out, after.AddrOf(out), 0, acc)
	after.ExitRegion()
	r.Seal()
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(p, Options{Cores: 4, Strategy: ForceLLP, DOALLTripThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cp.Regions[0].Mode != core.DOALL {
		t.Skip("product reduction not recognized")
	}
	res, err := core.New(core.DefaultConfig(4)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.LoadW(out.Base) != golden.Mem.LoadW(out.Base) {
		t.Errorf("product = %d, want %d", res.Mem.LoadW(out.Base), golden.Mem.LoadW(out.Base))
	}
}

func TestDOALLFallbackOnMisspeculation(t *testing.T) {
	// A loop that LOOKS independent under a partial profile but conflicts
	// at runtime: craft it by profiling a version whose observed iterations
	// were clean, then running with a dependence. Simplest path: lie in
	// the profile (CarriedDep empty) for the carried loop — the TM must
	// catch the violation and the fallback must produce serial semantics.
	p := progCarried(48)
	pr := mustProfile(t, p)
	header := p.Regions[0].Blocks[1]
	delete(pr.CarriedDep, header) // simulate unlucky profiling inputs
	opts := Options{Cores: 4, Strategy: ForceLLP, Profile: pr}.withDefaults()
	cr, ok, err := tryDOALL(p.Regions[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Skip("register-recurrence check rejected the loop before speculation")
	}
	cp := &core.CompiledProgram{Name: "t", Cores: 4, Src: p, Regions: []*core.CompiledRegion{cr}}
	res, err := core.New(core.DefaultConfig(4)).Run(cp)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("misspeculated DOALL did not roll back to serial semantics")
	}
	if res.TMConflicts == 0 {
		t.Error("no conflict recorded despite carried dependence")
	}
}

func TestInsertKeepVsInsertAt(t *testing.T) {
	code := []isa.Inst{{Op: isa.NOP}, {Op: isa.HALT}}
	labels := map[int64]int{0: 0, 1: 1}
	seq := []isa.Inst{{Op: isa.TXCOMMIT}}
	c2, l2 := insertAt(code, labels, 1, seq)
	if l2[1] != 2 || c2[1].Op != isa.TXCOMMIT {
		t.Errorf("insertAt: labels=%v", l2)
	}
	c3, l3 := insertKeep(code, labels, 1, seq)
	if l3[1] != 1 || c3[1].Op != isa.TXCOMMIT || c3[2].Op != isa.HALT {
		t.Errorf("insertKeep: labels=%v", l3)
	}
}
