package compiler

import (
	"fmt"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/prof"
	"voltron/internal/xnet"
)

// Coupled-mode code generation: the region is scheduled as a distributed
// VLIW (paper §3.2). All cores execute in lock-step; every block's schedule
// has identical length on every core (NOP padded); register values move
// over the direct-mode network as same-cycle PUT/GET pairs routed by the
// compiler (multi-hop transfers become PUT/GET chains through intermediate
// cores); branches are unbundled and replicated: PBR targets are prepared
// per core in the entry prologue, the branch condition is computed on its
// owner core and BCAST to the rest, and the BR issues in the same cycle
// everywhere.

// genCoupledCandidate builds the best coupled lowering of a region: the
// hot loop is unrolled (by the core count when the trip count divides it,
// else by 2) to expose cross-iteration ILP, then BUG partitions and the
// lock-step scheduler emits code.
func genCoupledCandidate(r *ir.Region, opts Options) (*core.CompiledRegion, *ir.Region, *prof.Profile, error) {
	target, pr := r, opts.Profile
	for _, factor := range []int{opts.Cores, 2} {
		if u, upr, ok := unrollForILP(r, opts.Profile, factor); ok {
			target, pr = u, upr
			break
		}
	}
	uopts := opts
	uopts.Profile = pr
	a := BUG(target, uopts)
	cr, err := GenCoupled(target, a, opts.Cores)
	if err != nil {
		return nil, nil, nil, err
	}
	return cr, target, pr, nil
}

// genILP emits the coupled candidate — unless the static estimate says the
// region gains nothing from lock-step distribution (no exploitable ILP, or
// misses dominate), in which case it stays serial: coupled tails and
// unioned lock-step stalls would only slow it down.
func genILP(r *ir.Region, opts Options) (*core.CompiledRegion, error) {
	coupled, target, upr, err := genCoupledCandidate(r, opts)
	if err != nil {
		return nil, err
	}
	serial, err := genSerial(r, opts.Cores)
	if err != nil {
		return nil, err
	}
	if EstimateCycles(coupled, target, upr) < EstimateCycles(serial, r, opts.Profile) {
		return coupled, nil
	}
	return serial, nil
}

// slotGrid is the per-core reservation table of one block's schedule.
type slotGrid struct {
	width int
	insts [][]isa.Inst
	busy  [][]bool
}

func newSlotGrid(width int) *slotGrid {
	return &slotGrid{
		width: width,
		insts: make([][]isa.Inst, width),
		busy:  make([][]bool, width),
	}
}

func (g *slotGrid) ensure(core, cycle int) {
	for len(g.insts[core]) <= cycle {
		g.insts[core] = append(g.insts[core], isa.Nop())
		g.busy[core] = append(g.busy[core], false)
	}
}

func (g *slotGrid) free(core, cycle int) bool {
	g.ensure(core, cycle)
	return !g.busy[core][cycle]
}

func (g *slotGrid) place(core, cycle int, in isa.Inst) {
	g.ensure(core, cycle)
	if g.busy[core][cycle] {
		panic(fmt.Sprintf("slot core=%d cycle=%d double-booked", core, cycle))
	}
	g.insts[core][cycle] = in
	g.busy[core][cycle] = true
}

// findFree returns the first free cycle on core at or after from.
func (g *slotGrid) findFree(core, from int) int {
	for c := from; ; c++ {
		if g.free(core, c) {
			return c
		}
	}
}

// end returns the first cycle after all booked slots.
func (g *slotGrid) end() int {
	e := 0
	for c := 0; c < g.width; c++ {
		for i := len(g.busy[c]) - 1; i >= 0; i-- {
			if g.busy[c][i] {
				if i+1 > e {
					e = i + 1
				}
				break
			}
		}
	}
	return e
}

// pad extends every core's row to length n.
func (g *slotGrid) pad(n int) {
	for c := 0; c < g.width; c++ {
		g.ensure(c, n-1)
		g.insts[c] = g.insts[c][:n]
	}
}

// coupledGen carries one region's coupled lowering.
type coupledGen struct {
	r     *ir.Region
	a     Assignment
	width int
	top   xnet.Topology
	defs  map[ir.Value][]*ir.Op
	rpo   []*ir.Block
	// needOn[v][c]: core c consumes v as a regular operand.
	needOn map[ir.Value]map[int]bool
}

// fallsTo reports whether block b's edge to target falls through in layout.
func (g *coupledGen) fallsTo(b, target *ir.Block) bool {
	for i, x := range g.rpo {
		if x == b {
			return nextBlock(g.rpo, i) == target
		}
	}
	return false
}

// GenCoupled lowers a region for coupled (lock-step DVLIW) execution.
func GenCoupled(r *ir.Region, a Assignment, width int) (*core.CompiledRegion, error) {
	if width > 4 {
		return nil, fmt.Errorf("coupled groups are limited to 4 cores (paper §3.2), got %d", width)
	}
	a = sanitize(r, a)
	// Collapse any inherited replicas to primaries, then replicate the
	// control slice to every core when it is cheap and load-free: each
	// core then computes branch conditions locally (Figure 5(c)) instead
	// of receiving them over the BCAST/GET distribution.
	for o, cs := range a {
		if len(cs) > 1 {
			a[o] = cs[:1]
		}
	}
	if width > 1 {
		if slice := controlSliceOps(r, 24); slice != nil {
			for _, o := range slice {
				for c := 0; c < width; c++ {
					a.Replicate(o, c)
				}
			}
		}
	}
	g := &coupledGen{
		r: r, a: a, width: width,
		top:    xnet.TopologyFor(width),
		defs:   map[ir.Value][]*ir.Op{},
		needOn: map[ir.Value]map[int]bool{},
	}
	for _, o := range r.AllOps() {
		if o.Dst != ir.NoValue {
			g.defs[o.Dst] = append(g.defs[o.Dst], o)
		}
	}
	for _, o := range r.AllOps() {
		for _, c := range a[o] {
			for _, u := range o.Uses() {
				if g.needOn[u] == nil {
					g.needOn[u] = map[int]bool{}
				}
				g.needOn[u][c] = true
			}
		}
	}
	cr := &core.CompiledRegion{
		Name:       r.Name,
		Mode:       core.Coupled,
		Code:       make([][]isa.Inst, width),
		Labels:     make([]map[int64]int, width),
		Entry:      make([]int, width),
		StartAwake: make([]bool, width),
	}
	for c := 0; c < width; c++ {
		cr.Labels[c] = map[int64]int{}
		cr.StartAwake[c] = true
	}
	rpo := r.ReversePostorder()
	g.rpo = rpo
	for i, b := range rpo {
		grid, err := g.scheduleBlock(b, nextBlock(rpo, i))
		if err != nil {
			return nil, err
		}
		for c := 0; c < width; c++ {
			cr.Labels[c][int64(b.ID)] = len(cr.Code[c])
			cr.Code[c] = append(cr.Code[c], grid.insts[c]...)
		}
	}
	return cr, nil
}

// scheduleBlock jointly schedules one block across all cores.
func (g *coupledGen) scheduleBlock(b, next *ir.Block) (*slotGrid, error) {
	grid := newSlotGrid(g.width)
	start := 0
	// The entry block leads with the branch-target prologue on every core.
	if b == g.r.Entry {
		cycle := 0
		for _, blk := range g.r.Blocks {
			switch blk.Kind {
			case ir.Jump:
				if g.fallsTo(blk, blk.Succ[0]) {
					continue
				}
				for c := 0; c < g.width; c++ {
					grid.place(c, cycle, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2 * blk.ID), Imm: int64(blk.Succ[0].ID), IROp: -1})
				}
				cycle++
			case ir.CondBr:
				for c := 0; c < g.width; c++ {
					grid.place(c, cycle, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2 * blk.ID), Imm: int64(blk.Succ[0].ID), IROp: -1})
				}
				cycle++
				if !g.fallsTo(blk, blk.Succ[1]) {
					for c := 0; c < g.width; c++ {
						grid.place(c, cycle, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2*blk.ID + 1), Imm: int64(blk.Succ[1].ID), IROp: -1})
					}
					cycle++
				}
			}
		}
		start = cycle
	}
	dfg := g.r.BuildBlockDFG(b)
	// sched holds each placed op copy's issue cycle per executing core.
	sched := map[*ir.Op]map[int]int{}
	readyOn := map[ir.Value]map[int]int{} // cycle v becomes usable per core
	ready := func(v ir.Value, c int) int {
		if m := readyOn[v]; m != nil {
			if t, ok := m[c]; ok {
				return t
			}
		}
		return start // values from earlier blocks are in the file
	}
	setReady := func(v ir.Value, c, t int) {
		if readyOn[v] == nil {
			readyOn[v] = map[int]int{}
		}
		readyOn[v][c] = t
	}
	schedMax := func(o *ir.Op) int {
		m := 0
		for _, t := range sched[o] {
			if t > m {
				m = t
			}
		}
		return m
	}
	for _, o := range b.Ops {
		execCores := g.a[o]
		if len(execCores) == 0 {
			execCores = []int{0}
		}
		sched[o] = map[int]int{}
		for _, c := range execCores {
			earliest := start
			for _, e := range dfg.Preds(o) {
				var t int
				switch {
				case e.Kind == ir.DepFlow:
					if sc, local := sched[e.Src][c]; local {
						t = sc + e.Latency
					} else {
						// Arrives via the routed transfer pushed at the def.
						t = ready(e.Src.Dst, c)
					}
				default:
					// anti/output/mem ordering: a cycle after the latest
					// copy anywhere (lock-step makes cross-core cycle
					// numbers comparable).
					t = schedMax(e.Src) + 1
				}
				if t > earliest {
					earliest = t
				}
			}
			for _, u := range o.Uses() {
				if t := ready(u, c); t > earliest {
					earliest = t
				}
			}
			cycle := grid.findFree(c, earliest)
			grid.place(c, cycle, instFor(g.r, o))
			sched[o][c] = cycle
			if o.Dst != ir.NoValue {
				setReady(o.Dst, c, cycle+o.Code.Latency())
			}
		}
		if o.Dst != ir.NoValue {
			// Push the fresh value from the primary to consuming cores
			// that neither execute this op nor will recompute it.
			c := g.a.Primary(o)
			// Iterate consumers in core order: transfer routing books
			// network slots first-come-first-served, so the emitted code
			// must not depend on map iteration order.
			for t := 0; t < g.width; t++ {
				if !g.needOn[o.Dst][t] || g.a.On(o, t) {
					continue
				}
				arr, err := g.routeTransfer(grid, c, t, regOf(g.r, o.Dst), sched[o][c]+o.Code.Latency())
				if err != nil {
					return nil, err
				}
				setReady(o.Dst, t, arr)
			}
		}
	}
	return grid, g.appendTail(grid, b, next, readyOn)
}

// routeTransfer schedules a PUT/GET chain moving reg from core a to core b,
// starting no earlier than cycle `from`; returns the cycle the value is
// usable on b.
func (g *coupledGen) routeTransfer(grid *slotGrid, a, b int, reg isa.Reg, from int) (int, error) {
	route := g.top.Route(a, b)
	if len(route) == 0 {
		return from, nil
	}
	// Find t0 such that every hop's sender and receiver slot is free:
	// hop j uses (sender slot t0+j, receiver slot t0+j).
	cores := make([]int, len(route)+1)
	cores[0] = a
	for j, dir := range route {
		cores[j+1] = g.top.Neighbor(cores[j], dir)
		if cores[j+1] < 0 {
			return 0, fmt.Errorf("route off mesh from core %d", a)
		}
	}
	t0 := from
search:
	for {
		for j := range route {
			if !grid.free(cores[j], t0+j) || !grid.free(cores[j+1], t0+j) {
				t0++
				continue search
			}
		}
		break
	}
	for j, dir := range route {
		grid.place(cores[j], t0+j, isa.Inst{Op: isa.PUT, Src1: reg, Dir: dir, IROp: -1})
		grid.place(cores[j+1], t0+j, isa.Inst{Op: isa.GETOP, Dst: reg, Dir: dir.Opposite(), IROp: -1})
	}
	return t0 + len(route), nil
}

// appendTail emits the uniform block ending: condition distribution (BCAST
// plus GETs, with one forward hop for the diagonal core on a 2×2 mesh),
// then the replicated BR pair, or HALT for region exits.
func (g *coupledGen) appendTail(grid *slotGrid, b, next *ir.Block, readyOn map[ir.Value]map[int]int) error {
	L := grid.end()
	switch b.Kind {
	case ir.Exit:
		for c := 0; c < g.width; c++ {
			grid.place(c, L, isa.Inst{Op: isa.HALT, IROp: -1})
		}
		grid.pad(L + 1)
		return nil
	case ir.Jump:
		if b.Succ[0] == next {
			grid.pad(L) // fall through
			return nil
		}
		for c := 0; c < g.width; c++ {
			grid.place(c, L, isa.Inst{Op: isa.BR, Src1: isa.BTR(2 * b.ID), IROp: -1})
		}
		grid.pad(L + 1)
		return nil
	}
	// CondBr: find the condition's owner and its readiness there.
	cond := b.Cond
	owner := 0
	replicatedEverywhere := g.width > 1
	for _, d := range g.defs[cond] {
		owner = g.a.Primary(d)
		for c := 0; c < g.width; c++ {
			if !g.a.On(d, c) {
				replicatedEverywhere = false
			}
		}
	}
	if m := readyOn[cond]; m != nil {
		for _, t := range m {
			if t > L {
				L = t
			}
		}
	}
	dist := 0
	reg := regOf(g.r, cond)
	if g.width > 1 && !replicatedEverywhere {
		// Cycle L: owner broadcasts; all 1-hop cores GET.
		grid.ensure(owner, L)
		if !grid.free(owner, L) {
			L = grid.findFree(owner, L)
		}
		grid.place(owner, L, isa.Inst{Op: isa.BCAST, Src1: reg, IROp: -1})
		dist = 1
		var far []int
		for c := 0; c < g.width; c++ {
			if c == owner {
				continue
			}
			switch g.top.Hops(owner, c) {
			case 1:
				grid.place(c, L, isa.Inst{Op: isa.GETOP, Dst: reg, Dir: dirTo(g.top, c, owner), IROp: -1})
			default:
				far = append(far, c)
			}
		}
		// Forward to 2-hop cores (the diagonal on a 2×2 mesh).
		for _, c := range far {
			route := g.top.Route(owner, c)
			if len(route) != 2 {
				return fmt.Errorf("coupled tail: core %d is %d hops from owner", c, len(route))
			}
			fwd := g.top.Neighbor(owner, route[0])
			grid.place(fwd, L+1, isa.Inst{Op: isa.PUT, Src1: reg, Dir: route[1], IROp: -1})
			grid.place(c, L+1, isa.Inst{Op: isa.GETOP, Dst: reg, Dir: route[1].Opposite(), IROp: -1})
			dist = 2
		}
	}
	for c := 0; c < g.width; c++ {
		grid.place(c, L+dist, isa.Inst{Op: isa.BR, Src1: isa.BTR(2 * b.ID), Src2: reg, IROp: -1})
	}
	if b.Succ[1] == next {
		grid.pad(L + dist + 1) // not-taken falls through
		return nil
	}
	for c := 0; c < g.width; c++ {
		grid.place(c, L+dist+1, isa.Inst{Op: isa.BR, Src1: isa.BTR(2*b.ID + 1), IROp: -1})
	}
	grid.pad(L + dist + 2)
	return nil
}

// dirTo returns the direction from core a toward adjacent core b.
func dirTo(t xnet.Topology, a, b int) isa.Direction {
	for _, d := range []isa.Direction{isa.East, isa.West, isa.North, isa.South} {
		if t.Neighbor(a, d) == b {
			return d
		}
	}
	panic("dirTo: cores not adjacent")
}
