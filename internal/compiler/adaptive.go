package compiler

import (
	"fmt"
	"math"
	"sort"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/prof"
	"voltron/internal/stats"
	"voltron/internal/trace"
	"voltron/internal/xnet"
)

// Tiered strategy selection (the adaptive flow director): a static
// classifier over the dependence-analyzed IR and the profile labels each
// region by how confidently the cycle estimator can rank its candidate
// lowerings. Confident regions take the estimator's pick directly — zero
// selection simulations — and only low-confidence regions escalate to the
// measured pipeline (paper §4.2), each against the background of the
// already-committed picks. The classifier mirrors measured selection's
// structure exactly (same small-region floor, same outright DOALL take,
// same serial-always-competes tie-breaking), so wherever its ranking
// agrees with measurement the compiled output is identical.

// Tier labels the classifier's verdict for one region.
type Tier int

const (
	// TierSmall: below the minRegionOps floor; serial by construction
	// (measured selection skips these too, so the outcome always agrees).
	TierSmall Tier = iota
	// TierDOALL: statistical DOALL applies and is taken outright, exactly
	// as measured selection would.
	TierDOALL
	// TierEasy: the estimate ranking has a winner above the confidence
	// threshold; auto mode installs it without measuring.
	TierEasy
	// TierHard: the ranking margin is below the threshold; auto mode
	// escalates the region to measured selection.
	TierHard
	// TierMeasured marks a region decided by simulation in measured mode.
	TierMeasured
	// TierRechecked marks a region re-selected by the stall-report
	// feedback check (Recheck).
	TierRechecked
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierSmall:
		return "small"
	case TierDOALL:
		return "doall"
	case TierEasy:
		return "easy"
	case TierHard:
		return "hard"
	case TierMeasured:
		return "measured"
	case TierRechecked:
		return "rechecked"
	}
	return "tier?"
}

// Classification is the static classifier's verdict for one region.
type Classification struct {
	Tier   Tier
	Choice Choice
	// Confidence is the relative margin of the winning estimate over the
	// runner-up, in [0, 1]; tiers decided without ranking score 1.
	Confidence float64
}

// estReliableSerialCycles is the serial-estimate floor below which a ranked
// region is escalated outright: in regions this small, per-invocation
// overheads the estimator does not model (region entry/exit sync,
// cold-start instruction fetch) dominate realized time, so estimate margins
// — however wide — are noise. Measured selection is cheapest exactly there,
// so auto mode never trusts a static parallel ranking on them.
const estReliableSerialCycles = 2000

// classifyPlan classifies one planned region. The choice replays measured
// selection's candidate order and strict-beat tie-breaking over static
// estimates instead of measured cycles, so agreement with measurement is
// limited only by the estimator, never by ordering artifacts. A negative
// opts.SelectThreshold (static mode) disables both escalation gates.
func classifyPlan(pl *regionPlan, opts Options) Classification {
	if pl.small {
		return Classification{Tier: TierSmall, Choice: ChoseSingle, Confidence: 1}
	}
	if pl.doall != nil {
		return Classification{Tier: TierDOALL, Choice: ChoseLLP, Confidence: 1}
	}
	if len(pl.candidates) == 0 {
		// Nothing to rank: measured mode keeps serial here too.
		return Classification{Tier: TierEasy, Choice: ChoseSingle, Confidence: 1}
	}
	best, bestEst := ChoseSingle, pl.serialEst
	second := math.Inf(1)
	for _, c := range pl.candidates {
		switch {
		case c.est < bestEst:
			second = bestEst
			best, bestEst = c.choice, c.est
		case c.est < second:
			second = c.est
		}
	}
	cl := Classification{Tier: TierEasy, Choice: best, Confidence: confidence(bestEst, second)}
	if opts.SelectThreshold >= 0 &&
		(cl.Confidence < opts.SelectThreshold || pl.serialEst < estReliableSerialCycles) {
		cl.Tier = TierHard
	}
	return cl
}

// estQueueLatency is the unloaded scalar-operand-network cost per queued
// message (xnet base latency plus one hop), charged per dynamic SEND/SPAWN
// by the classifier's communication term.
const estQueueLatency = float64(xnet.DefaultBaseLat + xnet.DefaultHopLat)

// EstimateQueueComm predicts the cycles a decoupled region spends feeding
// the scalar operand network: every SEND and SPAWN, weighted by its block's
// profiled execution count, at the queue's unloaded latency. EstimateCycles
// models decoupled cores as fully independent — that is what lets it see
// memory-level parallelism — so it is blind to cross-core traffic and
// systematically flatters communication-dense partitions (eBUG strand webs
// especially). The classifier adds this term to decoupled candidates before
// ranking them; the generators' gates keep using EstimateCycles alone.
func EstimateQueueComm(cr *core.CompiledRegion, r *ir.Region, pr *prof.Profile) float64 {
	if cr.Mode == core.Coupled {
		// Coupled mode moves operands over direct wires; the PUT/GET slots
		// are already in the schedule length.
		return 0
	}
	blockByID := map[int64]*ir.Block{}
	for _, b := range r.Blocks {
		blockByID[int64(b.ID)] = b
	}
	count := func(b *ir.Block) float64 {
		if pr == nil {
			return 1
		}
		if c, ok := pr.BlockCount[b]; ok {
			return float64(c)
		}
		return 1
	}
	var msgs float64
	for c := range cr.Code {
		code := cr.Code[c]
		// Block extents from the label table, as in EstimateCycles: an
		// instruction's weight is the count of the last block starting at or
		// before it (prologue instructions weigh 1).
		type ext struct {
			start int
			blk   *ir.Block
		}
		var exts []ext
		for lbl, idx := range cr.Labels[c] {
			if b, ok := blockByID[lbl]; ok {
				exts = append(exts, ext{idx, b})
			}
		}
		sort.Slice(exts, func(i, j int) bool { return exts[i].start < exts[j].start })
		for i, in := range code {
			if in.Op != isa.SEND && in.Op != isa.SPAWN {
				continue
			}
			w := 1.0
			for k := len(exts) - 1; k >= 0; k-- {
				if exts[k].start <= i {
					w = count(exts[k].blk)
					break
				}
			}
			msgs += w
		}
	}
	return msgs * estQueueLatency
}

// confidence scores how decisively the best estimate beats the runner-up:
// the relative margin 1 - best/second, in [0, 1]. Two zero estimates give
// no basis to separate and score 0.
func confidence(best, second float64) float64 {
	if second <= 0 {
		return 0
	}
	if math.IsInf(second, 1) {
		return 1
	}
	return 1 - best/second
}

// compileAuto is the tiered selector: confident regions take the
// classifier's pick directly, and only TierHard regions run through the
// measured pipeline — per region, so one hard region no longer forces
// whole-program measurement. When nothing escalates the compile performs
// zero simulations.
func compileAuto(p *ir.Program, opts Options) (*core.CompiledProgram, error) {
	plans := planRegions(p, opts)
	cp := &core.CompiledProgram{
		Name: p.Name, Cores: opts.Cores, Src: p,
		Regions: make([]*core.CompiledRegion, len(p.Regions)),
	}
	cp.Selection = core.SelectionSummary{
		Mode:    SelectStatic.String(),
		Regions: make([]core.RegionSelection, len(p.Regions)),
	}
	var hard []int
	for i := range plans {
		pl := plans[i]
		if pl.err != nil {
			return nil, pl.err
		}
		cl := classifyPlan(pl, opts)
		cp.Selection.Regions[i] = core.RegionSelection{
			Tier: cl.Tier.String(), Choice: cl.Choice.String(), Confidence: cl.Confidence,
		}
		if cl.Tier == TierHard {
			cp.Regions[i] = pl.serial // provisional; measured below
			hard = append(hard, i)
			continue
		}
		cp.Regions[i] = pl.lowering(cl.Choice)
		cp.Selection.Static++
	}
	if len(hard) > 0 {
		cp.Selection.Mode = "escalated"
		cp.Selection.Escalated = len(hard)
		if err := measureEscalated(p, opts, cp, plans, hard); err != nil {
			return nil, err
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// measureEscalated runs the unmodified measured pipeline over the escalated
// regions: one all-serial baseline simulation supplies every region's
// serial time, then each escalated region's candidates are simulated in
// ascending region order against the background of the committed picks
// (static winners everywhere, earlier escalated winners, serial for the
// escalated regions not yet measured — the same
// later-regions-see-earlier-winners context as full measured selection).
func measureEscalated(p *ir.Program, opts Options, cp *core.CompiledProgram, plans []*regionPlan, hard []int) error {
	base := &core.CompiledProgram{
		Name: p.Name, Cores: opts.Cores, Src: p,
		Regions: make([]*core.CompiledRegion, len(plans)),
	}
	for i, pl := range plans {
		base.Regions[i] = pl.serial
	}
	baseline, err := runSerialBaseline(base)
	if err != nil {
		return err
	}
	pool := newEvalPool(opts, cp)
	defer pool.close()
	for _, i := range hard {
		cp.Selection.Regions[i].Choice = measureRegion(pool, baseline.RegionCycles[i], cp, i, plans[i]).String()
	}
	return nil
}

// ClassifyProgram runs the static classifier over every region of a
// multicore compile and returns the per-region classifications without
// simulating anything. It mirrors compileAuto's static tier exactly: a
// region classified TierEasy/TierSmall/TierDOALL here is what auto mode
// installs.
func ClassifyProgram(p *ir.Program, opts Options) ([]Classification, error) {
	opts = opts.withDefaults()
	p.PrepareOnce(func() { Optimize(p) })
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("classify %q: %w", p.Name, err)
	}
	if opts.Profile == nil {
		pr, err := prof.Collect(p)
		if err != nil {
			return nil, fmt.Errorf("profiling %q: %w", p.Name, err)
		}
		opts.Profile = pr
	}
	plans := planRegions(p, opts)
	out := make([]Classification, len(plans))
	for i, pl := range plans {
		if pl.err != nil {
			return nil, pl.err
		}
		out[i] = classifyPlan(pl, opts)
	}
	return out, nil
}

// recheckStallFraction is the realized-overhead fraction above which a
// static pick is contradicted: when the picked mode's characteristic
// overhead ate more than this share of a region's accounted cycles, the
// estimate that promised a win was wrong enough to re-measure.
const recheckStallFraction = 0.5

// Recheck feeds a traced run's stall-attribution report back into
// selection: every region the classifier decided statically (TierEasy)
// whose realized stall profile contradicts the pick — a coupled region
// dominated by lock-step and data stalls, a decoupled pipeline dominated
// by queue traffic — is re-run through measured selection against the
// committed program. It returns the corrected program and the indices of
// the re-selected regions; when nothing is contradicted the input program
// is returned unchanged with a nil index list. cp must be a program
// compiled from p with selection metadata (auto or static mode).
func Recheck(p *ir.Program, cp *core.CompiledProgram, rep *trace.Report, opts Options) (*core.CompiledProgram, []int, error) {
	opts = opts.withDefaults()
	if opts.Profile == nil {
		pr, err := prof.Collect(p)
		if err != nil {
			return nil, nil, fmt.Errorf("profiling %q: %w", p.Name, err)
		}
		opts.Profile = pr
	}
	var suspect []int
	for i, sel := range cp.Selection.Regions {
		if sel.Tier != TierEasy.String() || i >= len(rep.Regions) {
			continue
		}
		if rep.Regions[i].Name != cp.Regions[i].Name {
			continue // report and program disagree on layout; don't guess
		}
		if contradicted(rep.Regions[i], sel.Choice) {
			suspect = append(suspect, i)
		}
	}
	if len(suspect) == 0 {
		return cp, nil, nil
	}
	plans := planRegions(p, opts)
	for _, pl := range plans {
		if pl.err != nil {
			return nil, nil, pl.err
		}
	}
	out := &core.CompiledProgram{
		Name: cp.Name, Cores: cp.Cores, Src: cp.Src,
		Regions: append([]*core.CompiledRegion(nil), cp.Regions...),
	}
	out.Selection = cp.Selection
	out.Selection.Mode = "escalated"
	out.Selection.Static -= len(suspect)
	out.Selection.Escalated += len(suspect)
	out.Selection.Regions = append([]core.RegionSelection(nil), cp.Selection.Regions...)
	base := &core.CompiledProgram{
		Name: p.Name, Cores: opts.Cores, Src: p,
		Regions: make([]*core.CompiledRegion, len(plans)),
	}
	for i, pl := range plans {
		base.Regions[i] = pl.serial
	}
	baseline, err := runSerialBaseline(base)
	if err != nil {
		return nil, nil, err
	}
	pool := newEvalPool(opts, out)
	defer pool.close()
	for _, i := range suspect {
		choice := measureRegion(pool, baseline.RegionCycles[i], out, i, plans[i])
		out.Selection.Regions[i].Tier = TierRechecked.String()
		out.Selection.Regions[i].Choice = choice.String()
	}
	if err := out.Validate(); err != nil {
		return nil, nil, err
	}
	return out, suspect, nil
}

// contradicted reports whether a region's realized stall profile
// undermines its static pick.
func contradicted(rr trace.RegionReport, choice string) bool {
	var total int64
	for _, n := range rr.Cycles {
		total += n
	}
	if total == 0 {
		return false
	}
	var overhead int64
	switch choice {
	case ChoseILP.String():
		overhead = rr.Cycles[stats.DStall.String()] + rr.Cycles[stats.Lockstep.String()]
	case ChoseFTLP.String():
		overhead = rr.Cycles[stats.RecvData.String()] +
			rr.Cycles[stats.RecvPred.String()] + rr.Cycles[stats.SendStall.String()]
	default:
		// Serial picks have no parallel overhead to contradict; DOALL is
		// taken outright in measured mode too.
		return false
	}
	return float64(overhead) > recheckStallFraction*float64(total)
}
