// Package compiler lowers IR programs to per-core Voltron machine code. It
// implements the paper's four parallelization strategies — BUG multicluster
// partitioning for coupled-mode ILP, eBUG strand extraction and DSWP
// pipeline extraction for decoupled-mode fine-grain TLP, and statistical
// DOALL chunking with transactional speculation for LLP — plus the
// region-by-region strategy selection that drives hybrid execution.
package compiler

import (
	"fmt"
	"sort"

	"voltron/internal/ir"
)

// Assignment maps each IR op to the cores that execute it. The first core
// is the primary (it owns the op's side effects and outgoing messages);
// additional cores hold replicas (only register-only ops are replicated —
// the control slice). Ops absent from the map run on the master core 0.
type Assignment map[*ir.Op][]int

// Primary returns the op's owning core.
func (a Assignment) Primary(o *ir.Op) int {
	if cs, ok := a[o]; ok && len(cs) > 0 {
		return cs[0]
	}
	return 0
}

// On reports whether core c executes o (as owner or replica).
func (a Assignment) On(o *ir.Op, c int) bool {
	cs, ok := a[o]
	if !ok {
		return c == 0
	}
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// Replicate adds core c as a replica site of o.
func (a Assignment) Replicate(o *ir.Op, c int) {
	if a.On(o, c) {
		return
	}
	if _, ok := a[o]; !ok {
		a[o] = []int{0}
	}
	a[o] = append(a[o], c)
}

// Cores returns the sorted set of cores that own at least one op, always
// including the master core 0.
func (a Assignment) Cores() []int {
	set := map[int]bool{0: true}
	for _, cs := range a {
		for _, c := range cs {
			set[c] = true
		}
	}
	var out []int
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// uniform makes an assignment placing every op of the region on one core.
func uniform(r *ir.Region, core int) Assignment {
	a := Assignment{}
	for _, o := range r.AllOps() {
		a[o] = []int{core}
	}
	return a
}

// sanitize enforces the invariants decoupled code generation relies on:
//
//  1. Every def of a multiply-defined value lives on the same primary core
//     with the same replica set (so consumers have one coherent copy
//     stream).
//  2. Memory operations joined by a loop-carried (or unanalyzable) memory
//     dependence share a primary core — a cross-core carried dependence
//     cannot be synchronized with a single intra-iteration token.
//
// It mutates the assignment and returns it.
func sanitize(r *ir.Region, a Assignment) Assignment {
	// Rule 1: unify defs per value.
	defs := map[ir.Value][]*ir.Op{}
	for _, o := range r.AllOps() {
		if o.Dst != ir.NoValue {
			defs[o.Dst] = append(defs[o.Dst], o)
		}
	}
	for _, ds := range defs {
		if len(ds) < 2 {
			continue
		}
		home := append([]int(nil), a[ds[0]]...)
		if len(home) == 0 {
			home = []int{a.Primary(ds[0])}
		}
		for _, d := range ds[1:] {
			a[d] = append([]int(nil), home...)
		}
	}
	// Rule 2: union-find over carried memory dependences.
	loops := r.Loops()
	parent := map[*ir.Op]*ir.Op{}
	var find func(o *ir.Op) *ir.Op
	find = func(o *ir.Op) *ir.Op {
		if parent[o] == nil || parent[o] == o {
			parent[o] = o
			return o
		}
		parent[o] = find(parent[o])
		return parent[o]
	}
	union := func(x, y *ir.Op) { parent[find(x)] = find(y) }
	for _, l := range loops {
		var memOps []*ir.Op
		for id := range l.Blocks {
			for _, o := range r.Blocks[id].Ops {
				if o.Code.IsMemory() {
					memOps = append(memOps, o)
				}
			}
		}
		for i, x := range memOps {
			for _, y := range memOps[i+1:] {
				switch r.MemDep(x, y, l, nil) {
				case ir.MemCarriedDep, ir.MemBothDep:
					union(x, y)
				}
			}
		}
	}
	groups := map[*ir.Op][]*ir.Op{}
	for _, o := range r.AllOps() {
		if o.Code.IsMemory() {
			groups[find(o)] = append(groups[find(o)], o)
		}
	}
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		home := a.Primary(g[0])
		for _, o := range g {
			// Memory ops are never replicated; pin the whole group.
			a[o] = []int{home}
		}
	}
	return a
}

// controlSliceOps returns the replicable portion of the control slice: the
// transitive computation feeding the region's block conditions, restricted
// to operations whose whole input chain is register-only. Both execution
// modes replicate it so cores resolve branches locally where possible
// (paper §3.2 / Figure 5(c)); load-dependent predicate parts stay owned and
// travel over the network (the gzip Figure 8 pattern). Returns nil when the
// replicable subset exceeds maxSize (replication would bloat every core).
func controlSliceOps(r *ir.Region, maxSize int) []*ir.Op {
	defs := map[ir.Value][]*ir.Op{}
	for _, o := range r.AllOps() {
		if o.Dst != ir.NoValue {
			defs[o.Dst] = append(defs[o.Dst], o)
		}
	}
	// Slice closure over the conditions' transitive defs (not expanding
	// through memory ops: their inputs stay un-replicated).
	seen := map[*ir.Op]bool{}
	var work, slice []*ir.Op
	for _, b := range r.Blocks {
		if b.Kind == ir.CondBr {
			for _, d := range defs[b.Cond] {
				if !seen[d] {
					seen[d] = true
					work = append(work, d)
				}
			}
		}
	}
	for len(work) > 0 {
		o := work[len(work)-1]
		work = work[:len(work)-1]
		slice = append(slice, o)
		if o.Code.IsMemory() {
			continue
		}
		for _, u := range o.Uses() {
			for _, d := range defs[u] {
				if !seen[d] {
					seen[d] = true
					work = append(work, d)
				}
			}
		}
	}
	// Greatest fixed point: an op is replicable when it is register-only
	// and every def of every operand is replicable.
	ok := map[*ir.Op]bool{}
	for _, o := range slice {
		ok[o] = !o.Code.IsMemory()
	}
	for changed := true; changed; {
		changed = false
		for _, o := range slice {
			if !ok[o] {
				continue
			}
			for _, u := range o.Uses() {
				for _, d := range defs[u] {
					if !ok[d] {
						ok[o] = false
						changed = true
					}
				}
			}
		}
	}
	var out []*ir.Op
	for _, o := range slice {
		if ok[o] {
			out = append(out, o)
		}
	}
	if len(out) > maxSize {
		return nil
	}
	return out
}

// checkAssignment validates that every op has at least one core and memory
// ops are not replicated.
func checkAssignment(r *ir.Region, a Assignment) error {
	for _, o := range r.AllOps() {
		cs := a[o]
		if len(cs) == 0 {
			return fmt.Errorf("op %v unassigned", o)
		}
		if len(cs) > 1 && (o.Code.IsMemory() || o.Code.IsComm()) {
			return fmt.Errorf("op %v replicated to %v but has side effects", o, cs)
		}
	}
	return nil
}
