package compiler

import (
	"testing"

	"voltron/internal/ir"
	"voltron/internal/isa"
)

func TestBUGAssignsEverythingInRange(t *testing.T) {
	for _, tc := range corpus {
		p := tc.mk()
		pr := mustProfile(t, p)
		for _, cores := range []int{2, 4} {
			opts := Options{Cores: cores, Profile: pr}.withDefaults()
			for _, r := range p.Regions {
				a := BUG(r, opts)
				for _, o := range r.AllOps() {
					c := a.Primary(o)
					if c < 0 || c >= cores {
						t.Fatalf("%s/%s: op %v assigned to core %d", tc.name, r.Name, o, c)
					}
				}
			}
		}
	}
}

func TestBUGSingleCoreIsUniform(t *testing.T) {
	p := progCopyAdd(16)
	a := BUG(p.Regions[0], Options{Cores: 1}.withDefaults())
	for _, o := range p.Regions[0].AllOps() {
		if a.Primary(o) != 0 {
			t.Fatal("single-core BUG strayed from core 0")
		}
	}
}

func TestBUGBalancesIndependentChains(t *testing.T) {
	// Eight independent chains over 2 cores: neither core should hold
	// more than 6 of the 8 chain heads after refinement.
	p := ir.NewProgram("chains")
	x := p.Array("x", 64)
	y := p.Array("y", 64)
	r := p.Region("r")
	b := r.NewBlock()
	xb := b.AddrOf(x)
	yb := b.AddrOf(y)
	var heads []*ir.Op
	for c := int64(0); c < 8; c++ {
		v := b.Load(x, xb, c*64)
		heads = append(heads, b.Ops[len(b.Ops)-1])
		for k := 0; k < 4; k++ {
			v = b.AddI(v, c+int64(k))
		}
		b.Store(y, yb, c*64, v)
	}
	b.ExitRegion()
	r.Seal()
	a := BUG(r, Options{Cores: 2}.withDefaults())
	count := map[int]int{}
	for _, h := range heads {
		count[a.Primary(h)]++
	}
	if count[0] > 6 || count[1] > 6 {
		t.Errorf("chain heads unbalanced: %v", count)
	}
}

func TestLineGroupsPinSameLineStores(t *testing.T) {
	// Two stores 8 bytes apart in the same array and iteration share a
	// cache line: the partitioner must keep them on one core.
	p := ir.NewProgram("fs")
	a := p.Array("a", 64)
	out := p.Array("out", 8)
	r := p.Region("r")
	pre := r.NewBlock()
	ab := pre.AddrOf(a)
	ob := pre.AddrOf(out)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		v1 := b.Load(a, b.Add(ab, b.ShlI(i, 3)), 0)
		v2 := b.MulI(v1, 2)
		b.Store(out, ob, 0, v1)
		b.Store(out, ob, 8, v2)
		return b
	})
	after.ExitRegion()
	r.Seal()
	var stores []*ir.Op
	for _, o := range r.AllOps() {
		if o.Code.IsStore() {
			stores = append(stores, o)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("found %d stores", len(stores))
	}
	for _, cores := range []int{2, 4} {
		a := BUG(r, Options{Cores: cores}.withDefaults())
		if a.Primary(stores[0]) != a.Primary(stores[1]) {
			t.Errorf("%d cores: same-line stores split: %d vs %d",
				cores, a.Primary(stores[0]), a.Primary(stores[1]))
		}
		e := EBUG(r, Options{Cores: cores}.withDefaults())
		if e.Primary(stores[0]) != e.Primary(stores[1]) {
			t.Errorf("%d cores: eBUG split same-line stores", cores)
		}
	}
}

func TestEBUGSplitsMissProneStreams(t *testing.T) {
	// The Figure 8 shape: two miss-prone streams must land on different
	// cores under eBUG with a profile.
	p := ir.NewProgram("streams")
	s1 := p.Array("s1", 2048)
	s2 := p.Array("s2", 2048)
	out := p.Array("out", 1)
	r := p.Region("r")
	pre := r.NewBlock()
	b1 := pre.AddrOf(s1)
	b2 := pre.AddrOf(s2)
	acc := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 2048, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v1 := b.Load(s1, b.Add(b1, off), 0)
		v2 := b.Load(s2, b.Add(b2, off), 0)
		b.Accum(isa.ADD, acc, b.Sub(v1, v2))
		return b
	})
	after.Store(out, after.AddrOf(out), 0, acc)
	after.ExitRegion()
	r.Seal()
	pr := mustProfile(t, p)
	a := EBUG(r, Options{Cores: 2, Profile: pr}.withDefaults())
	var loads []*ir.Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			loads = append(loads, o)
		}
	}
	if len(loads) != 2 {
		t.Fatalf("found %d loads", len(loads))
	}
	if a.Primary(loads[0]) == a.Primary(loads[1]) {
		t.Error("eBUG kept both miss-prone streams on one core (no MLP)")
	}
}

func TestEffLatUsesProfile(t *testing.T) {
	p := ir.NewProgram("el")
	a := p.Array("a", 4)
	r := p.Region("r")
	b := r.NewBlock()
	ab := b.AddrOf(a)
	b.Load(a, ab, 0)
	b.ExitRegion()
	r.Seal()
	var load *ir.Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			load = o
		}
	}
	params := bugParams{missRate: map[*ir.Op]float64{load: 0.5}, missPenalty: 60}
	if got := params.effLat(load); got != 32 {
		t.Errorf("effLat = %d, want 2 + 30", got)
	}
	none := bugParams{}
	if got := none.effLat(load); got != 2 {
		t.Errorf("effLat without profile = %d, want 2", got)
	}
}

func TestSanitizeUnifiesMultiDefValues(t *testing.T) {
	p := progCopyAdd(16) // the induction i has two defs (init + update)
	r := p.Regions[0]
	a := Assignment{}
	ops := r.AllOps()
	// Adversarial assignment: alternate cores op by op.
	for i, o := range ops {
		a[o] = []int{i % 2}
	}
	a = sanitize(r, a)
	defs := map[ir.Value][]*ir.Op{}
	for _, o := range ops {
		if o.Dst != ir.NoValue {
			defs[o.Dst] = append(defs[o.Dst], o)
		}
	}
	for v, ds := range defs {
		if len(ds) < 2 {
			continue
		}
		home := a.Primary(ds[0])
		for _, d := range ds[1:] {
			if a.Primary(d) != home {
				t.Errorf("value v%d defs on cores %d and %d after sanitize", v, home, a.Primary(d))
			}
		}
	}
}

func TestSanitizeGroupsCarriedMemDeps(t *testing.T) {
	p := progCarried(16) // a[i] = a[i-1]+1: load and store carried-dependent
	r := p.Regions[0]
	var load, store *ir.Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			load = o
		}
		if o.Code == isa.STORE {
			store = o
		}
	}
	a := Assignment{load: {0}, store: {1}}
	for _, o := range r.AllOps() {
		if _, ok := a[o]; !ok {
			a[o] = []int{0}
		}
	}
	a = sanitize(r, a)
	if a.Primary(load) != a.Primary(store) {
		t.Error("carried memory dependence left split across cores")
	}
}

func TestControlSliceOpsLoadFree(t *testing.T) {
	p := progCopyAdd(16)
	slice := controlSliceOps(p.Regions[0], 24)
	if len(slice) == 0 {
		t.Fatal("counted loop has no replicable control slice")
	}
	for _, o := range slice {
		if o.Code.IsMemory() {
			t.Errorf("memory op %v in replicable slice", o)
		}
	}
	// The strand shape (predicate depends on loads): the loads and the
	// compares feeding through them must NOT be replicable; the induction
	// part must be.
	ps := progStrands(32)
	slice2 := controlSliceOps(ps.Regions[0], 64)
	for _, o := range slice2 {
		if o.Code.IsMemory() {
			t.Errorf("load in strand slice: %v", o)
		}
		if o.Code == isa.CMPEQ || o.Code == isa.PAND {
			t.Errorf("load-dependent predicate op %v marked replicable", o)
		}
	}
	foundInduction := false
	for _, o := range slice2 {
		if o.Code == isa.CMPLT {
			foundInduction = true
		}
	}
	if !foundInduction {
		t.Error("induction compare missing from partial slice")
	}
}
