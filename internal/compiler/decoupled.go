package compiler

import (
	"fmt"
	"sort"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// Decoupled-mode code generation: given an operation-to-core assignment
// (from eBUG strand extraction, DSWP, or the trivial serial assignment),
// emit one fine-grain thread per participating core. Every participating
// core replicates the region's control-flow skeleton (branches are
// replicated; conditions are computed locally when the control slice was
// replicated, otherwise received over the queue network), the master core 0
// SPAWNs the workers, cross-core register flow becomes SEND/RECV pairs
// placed in the defining op's block, and ambiguous cross-core memory
// dependences are synchronized with dummy token messages (paper §3.3).

// entryLabel is the logical label of core c's thread entry.
func entryLabel(c int) int64 { return 1<<20 + int64(c) }

// regOf maps an IR value to its per-core machine register (the register
// index namespace is shared across cores; each core has its own file).
func regOf(r *ir.Region, v ir.Value) isa.Reg {
	return isa.Reg{Class: r.ValueClass(v), Index: int(v)}
}

// instFor lowers one IR op to a machine instruction.
func instFor(r *ir.Region, o *ir.Op) isa.Inst {
	in := isa.Inst{Op: o.Code, Imm: o.Imm, F: o.F, IROp: o.ID}
	if o.Dst != ir.NoValue {
		in.Dst = regOf(r, o.Dst)
	}
	if o.Args[0] != ir.NoValue {
		in.Src1 = regOf(r, o.Args[0])
	}
	if o.Args[1] != ir.NoValue {
		in.Src2 = regOf(r, o.Args[1])
	}
	return in
}

// message is one planned queue-network transfer.
type message struct {
	from, to int
	reg      isa.Reg // value register (data) or token register
	def      *ir.Op  // producing op (data) or dependence source (token)
	consumer *ir.Op  // dependence sink (token only)
	token    bool
	seq      int
}

// decoupledGen carries the state of one region's decoupled lowering.
type decoupledGen struct {
	r     *ir.Region
	a     Assignment
	width int   // machine cores
	parts []int // participating cores (sorted, includes 0)
	rpo   []*ir.Block
	// msgs per block, in planning order.
	msgs map[*ir.Block][]*message
	// msgOrder per block: global topological transfer order.
	msgOrder map[*ir.Block]map[*message]int
	// defsOf per value.
	defs map[ir.Value][]*ir.Op
	// scratch register indices.
	zeroReg  isa.Reg
	tokenReg isa.Reg
	seq      int
}

// GenDecoupled lowers a region for decoupled execution under the given
// assignment. The assignment is sanitized (multi-def unification, carried
// memory-dependence grouping) and the control slice is replicated to all
// participating cores when it is cheap and load-free; otherwise branch
// conditions travel over the network.
func GenDecoupled(r *ir.Region, a Assignment, width int) (*core.CompiledRegion, error) {
	return genDecoupled(r, a, width, false)
}

// GenDecoupledPredSend is the ablation variant that never replicates the
// control slice: branch conditions always travel over the queue network.
func GenDecoupledPredSend(r *ir.Region, a Assignment, width int) (*core.CompiledRegion, error) {
	return genDecoupled(r, a, width, true)
}

func genDecoupled(r *ir.Region, a Assignment, width int, forcePredSend bool) (*core.CompiledRegion, error) {
	a = sanitize(r, a)
	g := &decoupledGen{
		r: r, a: a, width: width,
		rpo:  r.ReversePostorder(),
		msgs: map[*ir.Block][]*message{},
		defs: map[ir.Value][]*ir.Op{},
	}
	for _, o := range r.AllOps() {
		if o.Dst != ir.NoValue {
			g.defs[o.Dst] = append(g.defs[o.Dst], o)
		}
	}
	g.parts = a.Cores()
	for _, c := range g.parts {
		if c >= width {
			return nil, fmt.Errorf("assignment uses core %d on a %d-core machine", c, width)
		}
	}
	base := r.NumValues()
	g.zeroReg = isa.GPR(base + 1)
	g.tokenReg = isa.GPR(base + 2)
	// Replicate the control slice when cheap; recompute participant set
	// afterwards (replication never adds new cores).
	if !forcePredSend {
		g.replicateControlSlice()
	}
	g.rematerialize()
	if err := checkAssignment(r, g.a); err != nil {
		return nil, err
	}
	g.planMessages()
	g.msgOrder = map[*ir.Block]map[*message]int{}
	for _, b := range g.rpo {
		g.msgOrder[b] = g.orderMessages(b)
	}
	if err := g.checkAvailability(); err != nil {
		return nil, err
	}
	cr := &core.CompiledRegion{
		Name:       r.Name,
		Mode:       core.Decoupled,
		Code:       make([][]isa.Inst, width),
		Labels:     make([]map[int64]int, width),
		Entry:      make([]int, width),
		StartAwake: make([]bool, width),
	}
	isPart := map[int]bool{}
	for _, c := range g.parts {
		isPart[c] = true
	}
	for c := 0; c < width; c++ {
		cr.Labels[c] = map[int64]int{}
		if !isPart[c] {
			continue
		}
		code, labels := g.emitCore(c)
		cr.Code[c] = code
		cr.Labels[c] = labels
	}
	cr.StartAwake[0] = true
	return cr, nil
}

// replicateControlSlice replicates the transitive computation of every
// block condition onto all participating cores when the slice is load-free
// and small; each core then resolves branches locally (the paper's
// "computation of the branch conditions can be replicated to other cores to
// save communication and reduce receive stalls").
func (g *decoupledGen) replicateControlSlice() {
	if len(g.parts) == 1 {
		return
	}
	slice := controlSliceOps(g.r, 24)
	if slice == nil {
		return // not replicable; conditions will be sent instead
	}
	for _, o := range slice {
		for _, c := range g.parts {
			g.a.Replicate(o, c)
		}
	}
}

// rematerialize replicates cheap register-only computations (constants,
// address arithmetic) onto cores that would otherwise receive their value
// over the network: a 1-cycle local recompute beats a 3-cycle queue
// message. Works value-at-a-time so multi-def values stay coherent (every
// def is replicated or none), and iterates so chains like
// i -> i<<3 -> base+off replicate bottom-up.
func (g *decoupledGen) rematerialize() {
	if len(g.parts) == 1 {
		return
	}
	for pass := 0; pass < 8; pass++ {
		changed := false
		for v, ds := range g.defs {
			cheap := len(ds) > 0
			for _, d := range ds {
				if d.Code.IsMemory() || d.Code.IsComm() || d.Code.Latency() != 1 {
					cheap = false
				}
			}
			if !cheap {
				continue
			}
			for _, c := range g.parts {
				if !g.needsValue(v, c) {
					continue
				}
				avail := true
				for _, d := range ds {
					for _, u := range d.Uses() {
						for _, ud := range g.defs[u] {
							if !g.a.On(ud, c) {
								avail = false
							}
						}
					}
				}
				if !avail {
					continue
				}
				for _, d := range ds {
					g.a.Replicate(d, c)
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// needsValue reports whether core c consumes value v somewhere (as an op
// operand or a branch condition) without having a local def.
func (g *decoupledGen) needsValue(v ir.Value, c int) bool {
	for _, d := range g.defs[v] {
		if g.a.On(d, c) {
			return false // local copy maintained by own defs
		}
	}
	for _, b := range g.r.Blocks {
		if b.Kind == ir.CondBr && b.Cond == v {
			return true // every participant branches on it
		}
		for _, o := range b.Ops {
			if !g.a.On(o, c) {
				continue
			}
			for _, u := range o.Uses() {
				if u == v {
					return true
				}
			}
		}
	}
	return false
}

// planMessages computes the data and token messages of every block.
func (g *decoupledGen) planMessages() {
	loops := g.r.Loops()
	// Data: push at def to every consuming core lacking the value. A def
	// whose consumers on the target core all lie outside the enclosing
	// loop is a loop live-out: its message hoists to the loop exit so it
	// is sent once instead of every iteration.
	for _, b := range g.rpo {
		for _, d := range b.Ops {
			if d.Dst == ir.NoValue {
				continue
			}
			from := g.a.Primary(d)
			for _, c := range g.parts {
				if g.a.On(d, c) || !g.needsValue(d.Dst, c) {
					continue
				}
				g.seq++
				at := g.hoistBlock(loops, d, c)
				g.msgs[at] = append(g.msgs[at], &message{
					from: from, to: c, reg: regOf(g.r, d.Dst), def: d, seq: g.seq,
				})
			}
		}
	}
	// Tokens: intra-iteration memory dependences crossing cores.
	pdg := g.r.BuildPDG(nil)
	done := map[[2]*ir.Op]bool{}
	for _, e := range pdg.Edges {
		if e.Kind != ir.DepMem || e.Carried {
			continue
		}
		from, to := g.a.Primary(e.Src), g.a.Primary(e.Dst)
		if from == to || done[[2]*ir.Op{e.Src, e.Dst}] {
			continue
		}
		done[[2]*ir.Op{e.Src, e.Dst}] = true
		g.seq++
		g.msgs[e.Src.Blk] = append(g.msgs[e.Src.Blk], &message{
			from: from, to: to, reg: g.tokenReg, def: e.Src, consumer: e.Dst,
			token: true, seq: g.seq,
		})
	}
}

// hoistBlock returns the block where the message for def d toward core c
// should be placed: d's own block, or — when every consumer of the value on
// c lies outside an enclosing single-exit loop — that loop's exit block.
func (g *decoupledGen) hoistBlock(loops []*ir.Loop, d *ir.Op, c int) *ir.Block {
	blk := d.Blk
	for hoisted := true; hoisted; {
		hoisted = false
		for _, l := range loops {
			if !l.Blocks[blk.ID] || len(l.Exits) != 1 {
				continue
			}
			if g.consumerInLoop(l, d.Dst, c) {
				continue
			}
			blk = l.Exits[0]
			hoisted = true
			break
		}
	}
	return blk
}

// consumerInLoop reports whether core c consumes v inside loop l (as an
// operand of one of its ops or as a branch condition, which every
// participant evaluates).
func (g *decoupledGen) consumerInLoop(l *ir.Loop, v ir.Value, c int) bool {
	for id := range l.Blocks {
		b := g.r.Blocks[id]
		if b.Kind == ir.CondBr && b.Cond == v {
			return true
		}
		for _, o := range b.Ops {
			if !g.a.On(o, c) {
				continue
			}
			for _, u := range o.Uses() {
				if u == v {
					return true
				}
			}
		}
	}
	return false
}

// orderMessages assigns every message of a block a position in a global
// topological order of the block's joint (all-cores) dependence graph.
// Chaining each core's communication operations in this order makes the
// cross-core schedules deadlock-free: a blocking RECV can never be placed
// before a local SEND that (transitively, through other cores) feeds it.
func (g *decoupledGen) orderMessages(b *ir.Block) map[*message]int {
	msgs := g.msgs[b]
	if len(msgs) == 0 {
		return nil
	}
	// Joint nodes: block ops then messages.
	n := len(b.Ops) + len(msgs)
	adj := make([][]int, n)
	indeg := make([]int, n)
	opIdx := map[*ir.Op]int{}
	for i, o := range b.Ops {
		opIdx[o] = i
	}
	addEdge := func(a, c int) {
		adj[a] = append(adj[a], c)
		indeg[c]++
	}
	dfg := g.r.BuildBlockDFG(b)
	for _, e := range dfg.Edges {
		addEdge(opIdx[e.Src], opIdx[e.Dst])
	}
	for mi, m := range msgs {
		mn := len(b.Ops) + mi
		if di, ok := opIdx[m.def]; ok {
			addEdge(di, mn)
		}
		if m.token {
			if m.consumer.Blk == b {
				addEdge(mn, opIdx[m.consumer])
			}
			continue
		}
		// Data: readers after the def consume the fresh copy (msg -> use);
		// readers before it must finish with the old copy first
		// (use -> msg), mirroring blockBody's anti ordering. Hoisted
		// messages precede every local reader.
		defPos := -1
		if m.def.Blk == b {
			defPos = opPos(b, m.def)
		}
		for _, o := range b.Ops {
			if !g.a.On(o, m.to) {
				continue
			}
			for _, u := range o.Uses() {
				if u == m.def.Dst {
					if opPos(b, o) > defPos {
						addEdge(mn, opIdx[o])
					} else {
						addEdge(opIdx[o], mn)
					}
				}
			}
		}
	}
	// Kahn with stable tie-breaking by node index.
	order := map[*message]int{}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	pos := 0
	for len(ready) > 0 {
		sort.Ints(ready)
		x := ready[0]
		ready = ready[1:]
		if x >= len(b.Ops) {
			order[msgs[x-len(b.Ops)]] = pos
		}
		pos++
		for _, y := range adj[x] {
			indeg[y]--
			if indeg[y] == 0 {
				ready = append(ready, y)
			}
		}
	}
	return order
}

// checkAvailability verifies flow-insensitively that every consumed value
// has a local def or an incoming message on each consuming core.
func (g *decoupledGen) checkAvailability() error {
	avail := map[[2]int64]bool{} // (value, core)
	for v, ds := range g.defs {
		for _, d := range ds {
			for _, c := range g.parts {
				if g.a.On(d, c) {
					avail[[2]int64{int64(v), int64(c)}] = true
				}
			}
		}
	}
	for _, ms := range g.msgs {
		for _, m := range ms {
			if !m.token {
				avail[[2]int64{int64(m.def.Dst), int64(m.to)}] = true
			}
		}
	}
	for _, b := range g.r.Blocks {
		for _, o := range b.Ops {
			for _, c := range g.parts {
				if !g.a.On(o, c) {
					continue
				}
				for _, u := range o.Uses() {
					if !avail[[2]int64{int64(u), int64(c)}] {
						return fmt.Errorf("core %d: op %v uses v%d with no local copy or message", c, o, u)
					}
				}
			}
		}
		if b.Kind == ir.CondBr {
			for _, c := range g.parts {
				if !avail[[2]int64{int64(b.Cond), int64(c)}] {
					return fmt.Errorf("core %d: %v condition v%d unavailable", c, b, b.Cond)
				}
			}
		}
	}
	return nil
}

// emitCore produces one core's instruction stream and label table.
func (g *decoupledGen) emitCore(c int) ([]isa.Inst, map[int64]int) {
	var out []isa.Inst
	labels := map[int64]int{entryLabel(c): 0}
	// Prologue: master spawns workers; every participant zeroes the token
	// source register and prepares branch-target registers.
	if c == 0 {
		for _, w := range g.parts {
			if w != 0 {
				out = append(out, isa.Inst{Op: isa.SPAWN, Core: w, Imm: entryLabel(w), IROp: -1})
			}
		}
	}
	out = append(out, isa.Inst{Op: isa.MOVI, Dst: g.zeroReg, Imm: 0, IROp: -1})
	for i, b := range g.rpo {
		next := nextBlock(g.rpo, i)
		switch b.Kind {
		case ir.Jump:
			if b.Succ[0] != next {
				out = append(out, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2 * b.ID), Imm: int64(b.Succ[0].ID), IROp: -1})
			}
		case ir.CondBr:
			out = append(out, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2 * b.ID), Imm: int64(b.Succ[0].ID), IROp: -1})
			if b.Succ[1] != next {
				out = append(out, isa.Inst{Op: isa.PBR, Dst: isa.BTR(2*b.ID + 1), Imm: int64(b.Succ[1].ID), IROp: -1})
			}
		}
	}
	for i, b := range g.rpo {
		labels[int64(b.ID)] = len(out)
		out = append(out, g.blockBody(c, b)...)
		out = append(out, g.blockTail(c, b, nextBlock(g.rpo, i))...)
	}
	return out, labels
}

// nextBlock returns the block physically following index i in layout order.
func nextBlock(rpo []*ir.Block, i int) *ir.Block {
	if i+1 < len(rpo) {
		return rpo[i+1]
	}
	return nil
}

// blockBody builds and schedules one core's portion of a block.
func (g *decoupledGen) blockBody(c int, b *ir.Block) []isa.Inst {
	d := &dag{}
	nodeOf := map[*ir.Op]int{}
	var localOps []*ir.Op
	for _, o := range b.Ops {
		if g.a.On(o, c) {
			localOps = append(localOps, o)
		}
	}
	// Local dependence edges from the precise block DFG.
	dfg := g.r.BuildBlockDFG(b)
	for _, o := range localOps {
		var preds []dagDep
		for _, e := range dfg.Preds(o) {
			if pn, ok := nodeOf[e.Src]; ok {
				preds = append(preds, dagDep{node: pn, lat: e.Latency})
			}
		}
		nodeOf[o] = d.add(instFor(g.r, o), preds...)
	}
	// Messages of this block involving c.
	type commNode struct {
		m   *message
		idx int
	}
	var sends, recvs []commNode
	for _, m := range g.msgs[b] {
		if m.from == c {
			var preds []dagDep
			if pn, ok := nodeOf[m.def]; ok {
				lat := 1
				if !m.token {
					lat = m.def.Code.Latency()
				}
				preds = append(preds, dagDep{node: pn, lat: lat})
			}
			src := m.reg
			if m.token {
				src = g.zeroReg
			}
			idx := d.add(isa.Inst{Op: isa.SEND, Src1: src, Core: m.to, IROp: -1}, preds...)
			sends = append(sends, commNode{m, idx})
		}
		if m.to == c {
			idx := d.add(isa.Inst{Op: isa.RECV, Dst: m.reg, Core: m.from, IROp: -1})
			recvs = append(recvs, commNode{m, idx})
			if m.token {
				if sn, ok := nodeOf[m.consumer]; ok && m.consumer.Blk == b {
					d.addEdge(idx, sn, 1)
				}
			} else {
				// Order the copy update against local readers of the value:
				// uses before the def read the old copy; uses after read the
				// new one. A hoisted message (def in an earlier block)
				// precedes every local reader.
				defPos := -1
				if m.def.Blk == b {
					defPos = opPos(b, m.def)
				}
				for _, o := range localOps {
					uses := false
					for _, u := range o.Uses() {
						if u == m.def.Dst {
							uses = true
						}
					}
					if !uses {
						continue
					}
					if opPos(b, o) < defPos {
						d.addEdge(nodeOf[o], idx, 1)
					} else {
						d.addEdge(idx, nodeOf[o], 1)
					}
				}
			}
		}
	}
	// Chain every communication op on this core in the block's global
	// transfer order. This both keeps per-sender FIFOs consistent on the
	// two ends and — because the order is one global topological order of
	// the joint dependence graph — guarantees a blocking RECV never
	// precedes a SEND it transitively depends on (deadlock freedom).
	order := g.msgOrder[b]
	all := append(append([]commNode(nil), sends...), recvs...)
	sort.Slice(all, func(i, j int) bool {
		oi, oj := order[all[i].m], order[all[j].m]
		if oi != oj {
			return oi < oj
		}
		return all[i].m.seq < all[j].m.seq
	})
	for i := 1; i < len(all); i++ {
		d.addEdge(all[i-1].idx, all[i].idx, 1)
	}
	return d.schedule()
}

// opPos returns the index of o within its block.
func opPos(b *ir.Block, o *ir.Op) int {
	for i, x := range b.Ops {
		if x == o {
			return i
		}
	}
	return len(b.Ops)
}

// blockTail emits the replicated branch sequence (or thread end). Branches
// to the physically next block fall through (no instruction at all for an
// unconditional jump; only the taken BR for a conditional whose
// fall-through target is next in layout).
func (g *decoupledGen) blockTail(c int, b, next *ir.Block) []isa.Inst {
	switch b.Kind {
	case ir.Jump:
		if b.Succ[0] == next {
			return nil
		}
		return []isa.Inst{{Op: isa.BR, Src1: isa.BTR(2 * b.ID), IROp: -1}}
	case ir.CondBr:
		taken := isa.Inst{Op: isa.BR, Src1: isa.BTR(2 * b.ID), Src2: regOf(g.r, b.Cond), IROp: -1}
		if b.Succ[1] == next {
			return []isa.Inst{taken}
		}
		return []isa.Inst{taken, {Op: isa.BR, Src1: isa.BTR(2*b.ID + 1), IROp: -1}}
	default: // Exit
		if c == 0 {
			return []isa.Inst{{Op: isa.HALT, IROp: -1}}
		}
		return []isa.Inst{{Op: isa.SLEEP, IROp: -1}}
	}
}
