package compiler

import (
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// Machine-independent cleanup run before strategy selection (the paper's
// toolchain inherits these from Trimaran's classical optimizer):
//
//   - address-mode folding: a memory op whose base is `ADD x, #c` (or an
//     `ADD x, movi-const`) absorbs the constant into its displacement,
//     shortening every address chain by an op;
//   - dead-code elimination: side-effect-free ops whose value is never
//     consumed disappear (mostly folding residue).
//
// Both passes are semantics-preserving and idempotent; Compile applies them
// in place (op identities survive, so profiles keyed by op remain valid —
// DCE only deletes ops that, being dead, carry no profile anyway).

// Optimize runs the cleanup passes over every region of the program.
func Optimize(p *ir.Program) {
	for _, r := range p.Regions {
		optimizeRegion(r)
	}
}

func optimizeRegion(r *ir.Region) {
	foldAddressing(r)
	eliminateDeadCode(r)
}

// foldAddressing rewrites mem[ADD(x, #c) + imm] into mem[x + imm+c], and
// mem[ADD(x, y) + imm] with y a single-def MOVI into mem[x + imm+MOVI].
// Only single-def bases whose definition dominates the memory op are
// touched (multi-def values have no stable decomposition).
func foldAddressing(r *ir.Region) {
	defs := map[ir.Value][]*ir.Op{}
	for _, o := range r.AllOps() {
		if o.Dst != ir.NoValue {
			defs[o.Dst] = append(defs[o.Dst], o)
		}
	}
	dom := r.Dominators()
	singleDef := func(v ir.Value) *ir.Op {
		if ds := defs[v]; len(ds) == 1 {
			return ds[0]
		}
		return nil
	}
	dominates := func(d, use *ir.Op) bool {
		if d.Blk == use.Blk {
			return opPos(d.Blk, d) < opPos(use.Blk, use)
		}
		return dom.Dominates(d.Blk, use.Blk)
	}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if !o.Code.IsMemory() {
				continue
			}
			for depth := 0; depth < 8; depth++ {
				d := singleDef(o.Args[0])
				if d == nil || d.Code != isa.ADD || !dominates(d, o) {
					break
				}
				switch {
				case d.Args[1] == ir.NoValue:
					// base = x + #c
					o.Args[0] = d.Args[0]
					o.Imm += d.Imm
				default:
					// base = x + y: fold whichever side is a constant.
					if m := singleDef(d.Args[1]); m != nil && m.Code == isa.MOVI && dominates(m, o) {
						o.Args[0] = d.Args[0]
						o.Imm += m.Imm
					} else if m := singleDef(d.Args[0]); m != nil && m.Code == isa.MOVI && dominates(m, o) {
						o.Args[0] = d.Args[1]
						o.Imm += m.Imm
					} else {
						depth = 8
					}
				}
			}
		}
	}
}

// eliminateDeadCode removes pure ops whose results are never consumed,
// iterating until stable (removing one op can orphan its inputs).
func eliminateDeadCode(r *ir.Region) {
	for {
		used := map[ir.Value]bool{}
		for _, b := range r.Blocks {
			if b.Kind == ir.CondBr {
				used[b.Cond] = true
			}
			for _, o := range b.Ops {
				for _, u := range o.Uses() {
					used[u] = true
				}
			}
		}
		removed := false
		for _, b := range r.Blocks {
			kept := b.Ops[:0]
			for _, o := range b.Ops {
				dead := o.Dst != ir.NoValue && !used[o.Dst] &&
					!o.Code.IsMemory() && !o.Code.IsComm() && !o.Code.IsBranch()
				if dead {
					removed = true
					continue
				}
				kept = append(kept, o)
			}
			b.Ops = kept
		}
		if !removed {
			return
		}
	}
}
