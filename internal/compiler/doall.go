package compiler

import (
	"fmt"

	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

// Statistical DOALL parallelization (paper §3, §4.1): a loop whose
// profiling showed no cross-iteration memory dependence is chunked across
// cores and executed speculatively under the transactional memory.
// Induction variables are replicated per core (each chunk clone carries its
// own patched counter bounds), accumulator recurrences are expanded into
// per-core partial accumulators combined by the master after the commit
// barrier, and a serial fallback stream re-executes the region if the
// speculation was wrong.

// doallInfo captures an eligible loop.
type doallInfo struct {
	loop  *ir.Loop
	iv    *ir.InductionVar
	total int64 // iteration count
	// pre are the blocks before the loop (they dominate the header);
	// exits are the blocks after it. Both exclude loop blocks.
	pre, exits map[int]bool
	exitBlock  *ir.Block // the single loop exit target
}

// findDOALL checks region shape and dependence eligibility.
func findDOALL(r *ir.Region, opts Options) (*doallInfo, error) {
	var outer []*ir.Loop
	loops := r.Loops()
	for _, l := range loops {
		if l.Parent == nil {
			outer = append(outer, l)
		}
	}
	if len(outer) != 1 {
		return nil, fmt.Errorf("region has %d outermost loops", len(outer))
	}
	l := outer[0]
	if len(loops) != 1 {
		return nil, fmt.Errorf("nested loops not chunked (outermost-first policy applies per region)")
	}
	iv := l.Induction
	if iv == nil {
		return nil, fmt.Errorf("no canonical induction variable")
	}
	if iv.Limit != ir.NoValue || iv.InitOp == nil || iv.Step <= 0 || !iv.ExitOnFalse {
		return nil, fmt.Errorf("induction shape not chunkable (needs immediate limit, init, positive step)")
	}
	if iv.CmpOp.Code != isa.CMPLT || iv.CmpOp.Args[0] != iv.Val {
		return nil, fmt.Errorf("loop bound comparison not canonical")
	}
	total := (iv.LimitImm - iv.InitOp.Imm + iv.Step - 1) / iv.Step
	if total < 1 {
		return nil, fmt.Errorf("empty loop")
	}
	// Trip-count threshold (profiled when available, else static).
	trip := float64(total)
	if opts.Profile != nil {
		if t, ok := opts.Profile.TripCount[l.Header]; ok {
			trip = t
		}
	}
	if trip < opts.DOALLTripThreshold {
		return nil, fmt.Errorf("trip count %.0f below threshold %.0f", trip, opts.DOALLTripThreshold)
	}
	// Memory: no observed cross-iteration dependence (statistical DOALL);
	// without a profile fall back to the static affine test.
	if opts.Profile != nil {
		if opts.Profile.CarriedDep[l.Header] {
			return nil, fmt.Errorf("profiled cross-iteration memory dependence")
		}
	} else if staticCarried(r, l) {
		return nil, fmt.Errorf("static cross-iteration memory dependence")
	}
	// Registers: cross-iteration recurrences must be the induction variable
	// or a recognized reduction.
	okVals := map[ir.Value]bool{iv.Val: true}
	for _, red := range l.Reductions {
		okVals[red.Acc] = true
	}
	dom := r.Dominators()
	for id := range l.Blocks {
		for _, o := range r.Blocks[id].Ops {
			if o.Dst == ir.NoValue || okVals[o.Dst] {
				continue
			}
			// A use not dominated by this def may read the previous
			// iteration's value: a disqualifying recurrence.
			for uid := range l.Blocks {
				ub := r.Blocks[uid]
				for pos, u := range ub.Ops {
					reads := false
					for _, x := range u.Uses() {
						if x == o.Dst {
							reads = true
						}
					}
					if !reads {
						continue
					}
					if !defDominatesUse(dom, o, u, pos) {
						return nil, fmt.Errorf("register recurrence on v%d", o.Dst)
					}
				}
				if ub.Kind == ir.CondBr && ub.Cond == o.Dst && !dom.Dominates(o.Blk, ub) {
					return nil, fmt.Errorf("register recurrence on branch condition v%d", o.Dst)
				}
			}
		}
	}
	info := &doallInfo{loop: l, iv: iv, total: total, pre: map[int]bool{}, exits: map[int]bool{}}
	if len(l.Exits) != 1 {
		return nil, fmt.Errorf("loop has %d exits", len(l.Exits))
	}
	info.exitBlock = l.Exits[0]
	for _, b := range r.Blocks {
		if l.Blocks[b.ID] {
			continue
		}
		if dom.Dominates(b, l.Header) {
			info.pre[b.ID] = true
		} else {
			info.exits[b.ID] = true
		}
	}
	// The pre part must flow straight into the loop (no branching around).
	for id := range info.pre {
		b := r.Blocks[id]
		if b.Kind != ir.Jump {
			return nil, fmt.Errorf("preheader block %v does not jump straight to the loop", b)
		}
	}
	return info, nil
}

func defDominatesUse(dom *ir.DomTree, def, use *ir.Op, usePos int) bool {
	if def.Blk == use.Blk {
		return opPos(def.Blk, def) < usePos
	}
	return dom.Dominates(def.Blk, use.Blk)
}

// staticCarried reports whether the affine analysis finds any possible
// cross-iteration memory dependence in the loop.
func staticCarried(r *ir.Region, l *ir.Loop) bool {
	var memOps []*ir.Op
	for id := range l.Blocks {
		for _, o := range r.Blocks[id].Ops {
			if o.Code.IsMemory() {
				memOps = append(memOps, o)
			}
		}
	}
	for i, a := range memOps {
		for _, b := range memOps[i+1:] {
			switch r.MemDep(a, b, l, nil) {
			case ir.MemCarriedDep, ir.MemBothDep:
				return true
			}
		}
	}
	return false
}

// tryDOALL compiles the region as a chunked speculative DOALL if eligible.
func tryDOALL(r *ir.Region, opts Options) (*core.CompiledRegion, bool, error) {
	info, err := findDOALL(r, opts)
	if err != nil {
		return nil, false, nil // not eligible; caller picks another strategy
	}
	n := int64(opts.Cores)
	chunk := (info.total + n - 1) / n
	width := opts.Cores
	cr := &core.CompiledRegion{
		Name:       r.Name,
		Mode:       core.DOALL,
		Code:       make([][]isa.Inst, width),
		Labels:     make([]map[int64]int, width),
		Entry:      make([]int, width),
		StartAwake: make([]bool, width),
		TxCores:    width,
	}
	cr.StartAwake[0] = true
	scratchBase := r.NumValues() + 8
	for c := 0; c < width; c++ {
		lo := info.iv.InitOp.Imm + int64(c)*chunk*info.iv.Step
		hi := info.iv.InitOp.Imm + int64(c+1)*chunk*info.iv.Step
		if hi > info.iv.LimitImm {
			hi = info.iv.LimitImm
		}
		if lo > hi {
			lo = hi
		}
		code, labels, err := genChunk(r, info, c, lo, hi, width, scratchBase)
		if err != nil {
			return nil, false, err
		}
		cr.Code[c] = code
		cr.Labels[c] = labels
	}
	// Serial fallback: the untouched region on one core.
	fb, err := genSerial(r, 1)
	if err != nil {
		return nil, false, err
	}
	cr.Fallback = fb.Code[0]
	cr.FallbackLabels = fb.Labels[0]
	return cr, true, nil
}

// genChunk produces one core's chunk code: patched clone of the region,
// compiled single-core, with transactional framing and reduction
// send/combine sequences spliced in.
func genChunk(r *ir.Region, info *doallInfo, c int, lo, hi int64, width int, scratchBase int) ([]isa.Inst, map[int64]int, error) {
	clone, opMap := r.Clone()
	iv := info.iv
	opMap[iv.InitOp].Imm = lo
	opMap[iv.CmpOp].Imm = hi
	isMaster := c == 0
	if !isMaster {
		// Workers: drop prologue stores, blank the exit blocks, and start
		// accumulators at the reduction identity.
		for id := range info.pre {
			b := clone.Blocks[id]
			var drop []*ir.Op
			for _, o := range b.Ops {
				if o.Code.IsStore() {
					drop = append(drop, o)
				}
			}
			for _, o := range drop {
				b.RemoveOp(o)
			}
		}
		// Workers do not run the post-loop code: every exit-side block
		// becomes an empty region exit (the thread just goes to sleep).
		for id := range info.exits {
			eb := clone.Blocks[id]
			eb.Ops = nil
			eb.ExitRegion()
			eb.Cond = ir.NoValue
		}
		clone.Seal()
		for _, red := range info.loop.Reductions {
			init := findInit(r, info, red.Acc)
			if init == nil {
				return nil, nil, fmt.Errorf("reduction v%d has no prologue init", red.Acc)
			}
			no := opMap[init]
			switch red.Kind {
			case isa.ADD:
				no.Code, no.Imm, no.Args = isa.MOVI, 0, [2]ir.Value{}
			case isa.FADD:
				no.Code, no.F, no.Args = isa.FMOVI, 0, [2]ir.Value{}
			case isa.MUL:
				no.Code, no.Imm, no.Args = isa.MOVI, 1, [2]ir.Value{}
			case isa.FMUL:
				no.Code, no.F, no.Args = isa.FMOVI, 1, [2]ir.Value{}
			}
		}
	}
	crc, err := GenDecoupled(clone, uniform(clone, 0), 1)
	if err != nil {
		return nil, nil, err
	}
	code, labels := crc.Code[0], crc.Labels[0]
	// Splice TXBEGIN into the preheader just before its jump into the loop
	// (the header itself is a branch target re-entered every iteration, so
	// the transaction start cannot live there), and TXCOMMIT (plus
	// reduction traffic) at the loop exit target.
	var preheader *ir.Block
	for id := range info.pre {
		b := r.Blocks[id]
		if b.Succ[0] == info.loop.Header {
			preheader = b
		}
	}
	if preheader == nil {
		return nil, nil, fmt.Errorf("no preheader jumping to the loop header")
	}
	// Place TXBEGIN at the very end of the preheader's emission: before
	// its trailing BR when it has one, or (fall-through layout) right at
	// the header label, shifting the label past it so back edges skip it.
	hdrIdx := labels[int64(info.loop.Header.ID)]
	if hdrIdx > 0 && code[hdrIdx-1].Op == isa.BR {
		code, labels = insertAt(code, labels, hdrIdx-1,
			[]isa.Inst{{Op: isa.TXBEGIN, Imm: int64(c), IROp: -1}})
	} else {
		code, labels = insertAt(code, labels, hdrIdx,
			[]isa.Inst{{Op: isa.TXBEGIN, Imm: int64(c), IROp: -1}})
	}
	var post []isa.Inst
	post = append(post, isa.Inst{Op: isa.TXCOMMIT, IROp: -1})
	for ri, red := range info.loop.Reductions {
		acc := regOf(r, red.Acc)
		if isMaster {
			for w := 1; w < width; w++ {
				scratch := isa.Reg{Class: acc.Class, Index: scratchBase + ri}
				post = append(post, isa.Inst{Op: isa.RECV, Dst: scratch, Core: w, IROp: -1})
				post = append(post, isa.Inst{Op: red.Kind, Dst: acc, Src1: acc, Src2: scratch, IROp: -1})
				for k := 1; k < red.Kind.Latency(); k++ {
					post = append(post, isa.Nop())
				}
			}
		} else {
			post = append(post, isa.Inst{Op: isa.SEND, Src1: acc, Core: 0, IROp: -1})
		}
	}
	// Keep the exit block's label pointing at the spliced TXCOMMIT so the
	// loop-exit branch lands on it and falls through into the combine code.
	code, labels = insertKeep(code, labels, labels[int64(info.exitBlock.ID)], post)
	if isMaster {
		// Prepend worker spawns.
		var pre []isa.Inst
		for w := 1; w < width; w++ {
			pre = append(pre, isa.Inst{Op: isa.SPAWN, Core: w, Imm: entryLabel(w), IROp: -1})
		}
		code, labels = insertAt(code, labels, 0, pre)
	} else {
		// Workers end asleep instead of halting, and are entered by SPAWN.
		for i := range code {
			if code[i].Op == isa.HALT {
				code[i] = isa.Inst{Op: isa.SLEEP, IROp: -1}
			}
		}
		labels[entryLabel(c)] = 0
	}
	return code, labels, nil
}

// findInit locates the out-of-loop def initializing a reduction value.
func findInit(r *ir.Region, info *doallInfo, v ir.Value) *ir.Op {
	for id := range info.pre {
		for _, o := range r.Blocks[id].Ops {
			if o.Dst == v {
				return o
			}
		}
	}
	return nil
}

// insertAt splices seq into code before index idx; labels at or after idx
// shift past the insertion.
func insertAt(code []isa.Inst, labels map[int64]int, idx int, seq []isa.Inst) ([]isa.Inst, map[int64]int) {
	return splice(code, labels, idx, seq, true)
}

// insertKeep splices seq before idx but keeps labels pointing exactly at
// idx anchored to the start of the inserted sequence.
func insertKeep(code []isa.Inst, labels map[int64]int, idx int, seq []isa.Inst) ([]isa.Inst, map[int64]int) {
	return splice(code, labels, idx, seq, false)
}

func splice(code []isa.Inst, labels map[int64]int, idx int, seq []isa.Inst, shiftEqual bool) ([]isa.Inst, map[int64]int) {
	if len(seq) == 0 {
		return code, labels
	}
	out := make([]isa.Inst, 0, len(code)+len(seq))
	out = append(out, code[:idx]...)
	out = append(out, seq...)
	out = append(out, code[idx:]...)
	nl := map[int64]int{}
	for k, v := range labels {
		switch {
		case v > idx, v == idx && shiftEqual:
			nl[k] = v + len(seq)
		default:
			nl[k] = v
		}
	}
	return out, nl
}
