package compiler

import (
	"testing"

	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/isa"
)

func countOps(r *ir.Region) int { return len(r.AllOps()) }

func TestFoldAddressingAbsorbsConstants(t *testing.T) {
	p := ir.NewProgram("fold")
	a := p.Array("a", 16)
	out := p.Array("out", 4)
	r := p.Region("r")
	b := r.NewBlock()
	base := b.AddrOf(a) // MOVI base
	// load a[3] via base + (1+2)*8 computed in stages.
	t1 := b.AddI(base, 8)
	t2 := b.AddI(t1, 16)
	v := b.Load(a, t2, 0)
	b.Store(out, b.AddrOf(out), 0, v)
	b.ExitRegion()
	r.Seal()
	golden, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := countOps(r)
	optimizeRegion(r)
	if err := p.Verify(); err != nil {
		t.Fatalf("optimized region invalid: %v", err)
	}
	after := countOps(r)
	if after >= before {
		t.Errorf("optimization removed nothing: %d -> %d ops", before, after)
	}
	// The load's displacement absorbed the adds.
	var load *ir.Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			load = o
		}
	}
	if load.Imm != 24 {
		t.Errorf("load displacement = %d, want 24", load.Imm)
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("folding changed semantics")
	}
}

func TestDCERemovesUnusedChains(t *testing.T) {
	p := ir.NewProgram("dce")
	out := p.Array("out", 1)
	r := p.Region("r")
	b := r.NewBlock()
	keep := b.MovI(5)
	dead1 := b.MovI(9)
	dead2 := b.MulI(dead1, 3) // consumes dead1, itself unused
	_ = dead2
	b.Store(out, b.AddrOf(out), 0, keep)
	b.ExitRegion()
	r.Seal()
	optimizeRegion(r)
	for _, o := range r.AllOps() {
		if o.Dst == dead1 || o.Dst == dead2 {
			t.Errorf("dead op %v survived", o)
		}
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.LoadW(out.Base) != 5 {
		t.Error("DCE broke the live computation")
	}
}

func TestDCEKeepsConditionsAndStores(t *testing.T) {
	p := progDiamond(8)
	r := p.Regions[0]
	before, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	optimizeRegion(r)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	after, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !before.Mem.Equal(after.Mem) {
		t.Fatal("optimization changed branchy semantics")
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	for _, tc := range corpus {
		p := tc.mk()
		Optimize(p)
		count1 := 0
		for _, r := range p.Regions {
			count1 += countOps(r)
		}
		Optimize(p)
		count2 := 0
		for _, r := range p.Regions {
			count2 += countOps(r)
		}
		if count1 != count2 {
			t.Errorf("%s: second Optimize changed op count %d -> %d", tc.name, count1, count2)
		}
		if err := p.Verify(); err != nil {
			t.Errorf("%s: optimized program invalid: %v", tc.name, err)
		}
	}
}

func TestOptimizePreservesWholeCorpus(t *testing.T) {
	for _, tc := range corpus {
		ref := tc.mk()
		golden, err := interp.Run(ref, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		opt := tc.mk()
		Optimize(opt)
		res, err := interp.Run(opt, interp.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.Mem.Equal(golden.Mem) {
			t.Errorf("%s: optimization changed semantics", tc.name)
		}
	}
}

func TestFoldAddressingMultiDefBaseUntouched(t *testing.T) {
	// A base with two defs (loop-varying address) must not fold.
	p := progCarried(16)
	r := p.Regions[0]
	var loadBefore int64
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			loadBefore = o.Imm
		}
	}
	optimizeRegion(r)
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			// The base chain is add(base, shl(i,3)) — the MOVI base is
			// single-def so one fold is legal; beyond that the iv-varying
			// part must stay symbolic. Semantics check:
			_ = o
		}
	}
	_ = loadBefore
	golden, err := interp.Run(progCarried(16), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mem.Equal(golden.Mem) {
		t.Fatal("folding broke the loop-varying address")
	}
}

func TestFallthroughEliminatesJumpBranches(t *testing.T) {
	// A diamond's then-arm jumps to the join, which is next in layout for
	// one arm: the serial stream must contain fewer BRs than a naive
	// two-per-conditional + one-per-jump emission.
	p := progDiamond(8)
	cp, err := Compile(p, Options{Cores: 1, Strategy: Serial})
	if err != nil {
		t.Fatal(err)
	}
	brs := 0
	jumps := 0
	for _, r := range p.Regions[0].Blocks {
		switch r.Kind {
		case ir.Jump:
			jumps++
		case ir.CondBr:
			brs++
		}
	}
	emitted := 0
	for _, in := range cp.Regions[0].Code[0] {
		if in.Op == isa.BR {
			emitted++
		}
	}
	naive := jumps + 2*brs
	if emitted >= naive {
		t.Errorf("emitted %d BRs, naive would be %d — no fall-through elimination", emitted, naive)
	}
}
