// Package prof collects the execution profiles the Voltron compiler
// consumes: loop trip counts, observed cross-iteration memory dependences
// (the basis of statistical DOALL detection), and per-load L1 miss rates
// (the basis of eBUG's likely-missing-load weights and of the strategy
// selector's memory-boundedness estimate).
package prof

import (
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/mem"
)

// Profile is the collected information, keyed by IR entities.
type Profile struct {
	// TripCount is the average iterations per loop entry, keyed by header.
	TripCount map[*ir.Block]float64
	// CarriedDep marks loop headers whose loops showed a cross-iteration
	// memory dependence during profiling. Loops absent from this set are
	// statistical DOALL candidates.
	CarriedDep map[*ir.Block]bool
	// MissRate is the fraction of profiled accesses that missed a
	// single-core L1, per memory op.
	MissRate map[*ir.Op]float64
	// ExecCount is per-op dynamic execution count.
	ExecCount map[*ir.Op]int64
	// BlockCount is per-block execution count.
	BlockCount map[*ir.Block]int64
	// RegionOps is the dynamic op count per region (serial-work proxy).
	RegionOps []int64
}

// Collect profiles a program by interpreting it with tracing enabled.
func Collect(p *ir.Program) (*Profile, error) {
	pr := &Profile{
		TripCount:  map[*ir.Block]float64{},
		CarriedDep: map[*ir.Block]bool{},
		MissRate:   map[*ir.Op]float64{},
		ExecCount:  map[*ir.Op]int64{},
		BlockCount: map[*ir.Block]int64{},
	}
	tr := &tracer{
		p:      pr,
		sim:    mem.NewMissSim(mem.DefaultConfig(1).L1D),
		hits:   map[*ir.Op]int64{},
		misses: map[*ir.Op]int64{},
	}
	res, err := interp.Run(p, interp.Options{Tracer: tr})
	if err != nil {
		return nil, err
	}
	pr.ExecCount = res.OpCounts
	pr.BlockCount = res.BlockCounts
	pr.RegionOps = res.RegionOps
	for op, m := range tr.misses {
		if t := m + tr.hits[op]; t > 0 {
			pr.MissRate[op] = float64(m) / float64(t)
		}
	}
	for _, ls := range tr.allLoops {
		if ls.entries > 0 {
			// The header runs trips+1 times per activation (the final run
			// is the exit test), so subtract one activation's worth.
			pr.TripCount[ls.loop.Header] = float64(ls.iters-ls.entries) / float64(ls.entries)
		}
		if ls.carried {
			pr.CarriedDep[ls.loop.Header] = true
		}
	}
	return pr, nil
}

// loopState tracks one loop's dynamic behaviour.
type loopState struct {
	loop    *ir.Loop
	active  bool
	curIter int64
	iters   int64
	entries int64
	carried bool
	// lastWrite/lastRead map addresses to the iteration that last touched
	// them within the current loop activation.
	lastWrite map[int64]int64
	lastRead  map[int64]int64
}

type tracer struct {
	p   *Profile
	sim *mem.MissSim

	hits, misses map[*ir.Op]int64

	region   *ir.Region
	loops    []*loopState
	allLoops []*loopState
	// blockLoops caches, per block, the loop states whose loop contains it.
	blockLoops map[*ir.Block][]*loopState
	// headerOf maps header blocks to their state.
	headerOf map[*ir.Block]*loopState
}

func (t *tracer) EnterRegion(r *ir.Region) {
	t.region = r
	t.loops = nil
	t.blockLoops = map[*ir.Block][]*loopState{}
	t.headerOf = map[*ir.Block]*loopState{}
	for _, l := range r.Loops() {
		ls := &loopState{loop: l}
		t.loops = append(t.loops, ls)
		t.allLoops = append(t.allLoops, ls)
		t.headerOf[l.Header] = ls
	}
	for _, b := range r.Blocks {
		for _, ls := range t.loops {
			if ls.loop.Blocks[b.ID] {
				t.blockLoops[b] = append(t.blockLoops[b], ls)
			}
		}
	}
}

func (t *tracer) EnterBlock(b *ir.Block) {
	// Leaving a loop: any active loop that does not contain b deactivates.
	for _, ls := range t.loops {
		if ls.active && !ls.loop.Blocks[b.ID] {
			ls.active = false
			ls.lastWrite, ls.lastRead = nil, nil
		}
	}
	if ls := t.headerOf[b]; ls != nil {
		if !ls.active {
			ls.active = true
			ls.entries++
			ls.curIter = 0
			ls.lastWrite = map[int64]int64{}
			ls.lastRead = map[int64]int64{}
		} else {
			ls.curIter++
		}
		ls.iters++
	}
}

func (t *tracer) Mem(o *ir.Op, addr int64, isStore bool) {
	if t.sim.Access(addr) {
		t.hits[o]++
	} else {
		t.misses[o]++
	}
	for _, ls := range t.blockLoops[o.Blk] {
		if !ls.active {
			continue
		}
		if isStore {
			if it, ok := ls.lastWrite[addr]; ok && it != ls.curIter {
				ls.carried = true // WAW across iterations
			}
			if it, ok := ls.lastRead[addr]; ok && it != ls.curIter {
				ls.carried = true // WAR across iterations
			}
			ls.lastWrite[addr] = ls.curIter
		} else {
			if it, ok := ls.lastWrite[addr]; ok && it != ls.curIter {
				ls.carried = true // RAW across iterations
			}
			ls.lastRead[addr] = ls.curIter
		}
	}
}

func (t *tracer) Op(*ir.Op) {}

// StallFraction estimates, for a set of ops (a region), the fraction of
// serial execution time lost to cache-miss stalls — the selector's
// memory-boundedness signal (paper §4.2).
func (p *Profile) StallFraction(r *ir.Region, missPenalty float64) float64 {
	var work, stall float64
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			n := float64(p.ExecCount[o])
			work += n
			if o.Code.IsMemory() {
				stall += n * p.MissRate[o] * missPenalty
			}
		}
	}
	if work == 0 {
		return 0
	}
	return stall / (work + stall)
}
