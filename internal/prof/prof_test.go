package prof

import (
	"testing"

	"voltron/internal/ir"
)

// doallLoop builds: for i in [0,n): dst[i] = src[i] * 2 (no carried deps).
func doallLoop(n int64) *ir.Program {
	p := ir.NewProgram("doall")
	src := p.Array("src", n)
	dst := p.Array("dst", n)
	r := p.Region("loop")
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		b.Store(dst, b.Add(db, off), 0, b.MulI(v, 2))
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// carriedLoop builds: for i in [1,n): a[i] = a[i-1] + 1 (carried RAW).
func carriedLoop(n int64) *ir.Program {
	p := ir.NewProgram("carried")
	a := p.Array("a", n)
	r := p.Region("loop")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 1, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		ad := b.Add(base, off)
		v := b.Load(a, ad, -8)
		b.Store(a, ad, 0, b.AddI(v, 1))
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

func TestTripCount(t *testing.T) {
	p := doallLoop(20)
	pr, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	header := p.Regions[0].Blocks[1]
	if got := pr.TripCount[header]; got != 20 {
		t.Errorf("trip count = %g, want 20", got)
	}
}

func TestCarriedDepDetection(t *testing.T) {
	pd, err := Collect(doallLoop(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.CarriedDep) != 0 {
		t.Errorf("doall loop flagged with carried deps: %v", pd.CarriedDep)
	}
	pc, err := Collect(carriedLoop(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(pc.CarriedDep) != 1 {
		t.Errorf("carried loop not flagged: %v", pc.CarriedDep)
	}
}

func TestMissRates(t *testing.T) {
	// A 4 kB L1 with 64 B lines: streaming 512 words (4 kB) of new data
	// misses once per 8 words.
	p := doallLoop(512)
	pr, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	var loadRate float64
	found := false
	for op, rate := range pr.MissRate {
		if op.Code.IsLoad() {
			loadRate = rate
			found = true
		}
	}
	if !found {
		t.Fatal("no load miss rate recorded")
	}
	if loadRate < 0.10 || loadRate > 0.15 {
		t.Errorf("streaming load miss rate = %g, want ~0.125", loadRate)
	}
}

func TestExecCounts(t *testing.T) {
	p := doallLoop(10)
	pr, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	for op := range pr.ExecCount {
		if op.Code.IsLoad() && pr.ExecCount[op] != 10 {
			t.Errorf("load exec count = %d, want 10", pr.ExecCount[op])
		}
	}
	if len(pr.RegionOps) != 1 || pr.RegionOps[0] == 0 {
		t.Errorf("region ops = %v", pr.RegionOps)
	}
}

func TestStallFractionSameProgram(t *testing.T) {
	p := doallLoop(2048)
	pr, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	f := pr.StallFraction(p.Regions[0], 100)
	if f <= 0.1 {
		t.Errorf("streaming loop stall fraction = %g, want substantial", f)
	}
	// A loop that re-traverses a cache-resident 64-word array 32 times has
	// almost no misses after warmup.
	p2 := ir.NewProgram("cached")
	a := p2.Array("a", 64)
	r := p2.Region("r")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 32, Step: 1}, func(outer *ir.Block, _ ir.Value) *ir.Block {
		return ir.BuildCountedLoop(outer, ir.LoopSpec{Start: 0, Limit: 64, Step: 1}, func(inner *ir.Block, j ir.Value) *ir.Block {
			ad := inner.Add(base, inner.ShlI(j, 3))
			v := inner.Load(a, ad, 0)
			inner.Store(a, ad, 0, inner.AddI(v, 1))
			return inner
		})
	})
	after.ExitRegion()
	r.Seal()
	pr2, err := Collect(p2)
	if err != nil {
		t.Fatal(err)
	}
	f2 := pr2.StallFraction(p2.Regions[0], 100)
	if f2 >= f {
		t.Errorf("cache-resident loop stall fraction %g >= streaming %g", f2, f)
	}
}

func TestNestedLoopProfiling(t *testing.T) {
	// outer 4 iterations, inner 8: inner trip count 8, outer 4.
	p := ir.NewProgram("nested")
	a := p.Array("a", 64)
	r := p.Region("r")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: 4, Step: 1}, func(outer *ir.Block, i ir.Value) *ir.Block {
		return ir.BuildCountedLoop(outer, ir.LoopSpec{Start: 0, Limit: 8, Step: 1}, func(inner *ir.Block, j ir.Value) *ir.Block {
			row := inner.ShlI(i, 6) // i*8 words * 8 bytes
			col := inner.ShlI(j, 3)
			ad := inner.Add(base, inner.Add(row, col))
			inner.Store(a, ad, 0, j)
			return inner
		})
	})
	after.ExitRegion()
	r.Seal()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	pr, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	loops := p.Regions[0].Loops()
	var innerH, outerH *ir.Block
	for _, l := range loops {
		if l.Parent != nil {
			innerH = l.Header
		} else {
			outerH = l.Header
		}
	}
	if innerH == nil || outerH == nil {
		t.Fatal("nested loops not both detected")
	}
	if got := pr.TripCount[outerH]; got != 4 {
		t.Errorf("outer trip = %g, want 4", got)
	}
	if got := pr.TripCount[innerH]; got != 8 {
		t.Errorf("inner trip = %g, want 8", got)
	}
	if pr.CarriedDep[innerH] {
		t.Error("disjoint stores flagged as carried dep in inner loop")
	}
}
