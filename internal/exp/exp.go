// Package exp regenerates every figure of the paper's evaluation (§5):
// the parallelism breakdown (Figure 3), per-technique speedups on 2 and 4
// cores (Figures 10 and 11), the stall breakdown under coupled vs decoupled
// execution (Figure 12), hybrid speedups (Figure 13), and execution-mode
// occupancy (Figure 14), plus the kernel speedups of Figures 7–9.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// Table is a printable experiment result: one row per benchmark plus an
// average row, one column per measured series.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one benchmark's measurements.
type Row struct {
	Name   string
	Values []float64
}

// Average computes the arithmetic mean per column over the rows.
func (t *Table) Average() Row {
	avg := Row{Name: "average", Values: make([]float64, len(t.Columns))}
	if len(t.Rows) == 0 {
		return avg
	}
	for _, r := range t.Rows {
		for i, v := range r.Values {
			avg.Values[i] += v
		}
	}
	for i := range avg.Values {
		avg.Values[i] /= float64(len(t.Rows))
	}
	return avg
}

// Print renders the table with an average footer.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-14s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 15+15*len(t.Columns)))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %14.3f", v)
		}
		fmt.Fprintln(w)
	}
	avg := t.Average()
	fmt.Fprintf(w, "%-14s", avg.Name)
	for _, v := range avg.Values {
		fmt.Fprintf(w, " %14.3f", v)
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the table (rows plus the average) as JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		Benchmark string             `json:"benchmark"`
		Values    map[string]float64 `json:"values"`
	}
	out := struct {
		Title string    `json:"title"`
		Rows  []jsonRow `json:"rows"`
	}{Title: t.Title}
	emit := func(r Row) {
		jr := jsonRow{Benchmark: r.Name, Values: map[string]float64{}}
		for i, c := range t.Columns {
			if i < len(r.Values) {
				jr.Values[c] = r.Values[i]
			}
		}
		out.Rows = append(out.Rows, jr)
	}
	for _, r := range t.Rows {
		emit(r)
	}
	emit(t.Average())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Suite caches compiled runs so figures sharing configurations do not
// re-simulate.
type Suite struct {
	mu    sync.Mutex
	runs  map[runKey]*core.RunResult
	profs map[string]*prof.Profile
	progs map[string]*ir.Program
	// Benchmarks restricts the suite (defaults to all 25).
	Benchmarks []string
}

type runKey struct {
	bench string
	strat compiler.Strategy
	cores int
}

// NewSuite creates an empty result cache over the full benchmark list.
func NewSuite() *Suite {
	return &Suite{
		runs:       map[runKey]*core.RunResult{},
		profs:      map[string]*prof.Profile{},
		progs:      map[string]*ir.Program{},
		Benchmarks: workload.Names(),
	}
}

// programFor builds (and caches) one benchmark. The same IR instance must
// serve profiling and every compile: profiles are keyed by op identity.
func (s *Suite) programFor(bench string) (*ir.Program, error) {
	s.mu.Lock()
	p, ok := s.progs[bench]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	p, err := workload.Build(bench)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.progs[bench] = p
	s.mu.Unlock()
	return p, nil
}

// profileFor collects (and caches) the profile of one benchmark.
func (s *Suite) profileFor(bench string) (*prof.Profile, error) {
	s.mu.Lock()
	pr, ok := s.profs[bench]
	s.mu.Unlock()
	if ok {
		return pr, nil
	}
	p, err := s.programFor(bench)
	if err != nil {
		return nil, err
	}
	pr, err = prof.Collect(p)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.profs[bench] = pr
	s.mu.Unlock()
	return pr, nil
}

// Run returns the (cached) simulation of one configuration.
func (s *Suite) Run(bench string, strat compiler.Strategy, cores int) (*core.RunResult, error) {
	key := runKey{bench, strat, cores}
	s.mu.Lock()
	res, ok := s.runs[key]
	s.mu.Unlock()
	if ok {
		return res, nil
	}
	p, err := s.programFor(bench)
	if err != nil {
		return nil, err
	}
	pr, err := s.profileFor(bench)
	if err != nil {
		return nil, err
	}
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: strat, Profile: pr})
	if err != nil {
		return nil, fmt.Errorf("%s/%v/%d: %w", bench, strat, cores, err)
	}
	res, err = core.New(core.DefaultConfig(cores)).Run(cp)
	if err != nil {
		return nil, fmt.Errorf("%s/%v/%d: %w", bench, strat, cores, err)
	}
	s.mu.Lock()
	s.runs[key] = res
	s.mu.Unlock()
	return res, nil
}

// Speedup returns serial cycles divided by the configuration's cycles.
func (s *Suite) Speedup(bench string, strat compiler.Strategy, cores int) (float64, error) {
	base, err := s.Run(bench, compiler.Serial, 1)
	if err != nil {
		return 0, err
	}
	r, err := s.Run(bench, strat, cores)
	if err != nil {
		return 0, err
	}
	if r.TotalCycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", bench)
	}
	return float64(base.TotalCycles) / float64(r.TotalCycles), nil
}

// sortedBenchmarks returns the suite's benchmark list in the paper's order.
func (s *Suite) sortedBenchmarks() []string {
	out := append([]string(nil), s.Benchmarks...)
	pos := map[string]int{}
	for i, n := range workload.Names() {
		pos[n] = i
	}
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}
