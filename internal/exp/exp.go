// Package exp regenerates every figure of the paper's evaluation (§5):
// the parallelism breakdown (Figure 3), per-technique speedups on 2 and 4
// cores (Figures 10 and 11), the stall breakdown under coupled vs decoupled
// execution (Figure 12), hybrid speedups (Figure 13), and execution-mode
// occupancy (Figure 14), plus the kernel speedups of Figures 7–9.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// Table is a printable experiment result: one row per benchmark plus an
// average row, one column per measured series.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one benchmark's measurements.
type Row struct {
	Name   string
	Values []float64
}

// Average computes the arithmetic mean per column over the rows.
func (t *Table) Average() Row {
	avg := Row{Name: "average", Values: make([]float64, len(t.Columns))}
	if len(t.Rows) == 0 {
		return avg
	}
	for _, r := range t.Rows {
		for i, v := range r.Values {
			avg.Values[i] += v
		}
	}
	for i := range avg.Values {
		avg.Values[i] /= float64(len(t.Rows))
	}
	return avg
}

// Print renders the table with an average footer.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-14s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(w, " %14s", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", 15+15*len(t.Columns)))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(w, " %14.3f", v)
		}
		fmt.Fprintln(w)
	}
	avg := t.Average()
	fmt.Fprintf(w, "%-14s", avg.Name)
	for _, v := range avg.Values {
		fmt.Fprintf(w, " %14.3f", v)
	}
	fmt.Fprintln(w)
}

// WriteJSON renders the table (rows plus the average) as JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	type jsonRow struct {
		Benchmark string             `json:"benchmark"`
		Values    map[string]float64 `json:"values"`
	}
	out := struct {
		Title string    `json:"title"`
		Rows  []jsonRow `json:"rows"`
	}{Title: t.Title}
	emit := func(r Row) {
		jr := jsonRow{Benchmark: r.Name, Values: map[string]float64{}}
		for i, c := range t.Columns {
			if i < len(r.Values) {
				jr.Values[c] = r.Values[i]
			}
		}
		out.Rows = append(out.Rows, jr)
	}
	for _, r := range t.Rows {
		emit(r)
	}
	emit(t.Average())
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Suite caches compiled runs so figures sharing configurations do not
// re-simulate. A Suite is safe for concurrent use: several figure
// harnesses may share one Suite, each (bench, strategy, cores)
// configuration is simulated exactly once (per-key singleflight), and the
// number of concurrent simulations is bounded by Workers.
type Suite struct {
	mu    sync.Mutex
	runs  map[runKey]*flight[*core.RunResult]
	profs map[string]*flight[*prof.Profile]
	progs map[string]*flight[*ir.Program]
	// Benchmarks restricts the suite (defaults to all 25).
	Benchmarks []string
	// Workers bounds concurrent simulations (and is forwarded to the
	// compiler's measured-selection pool). Defaults to
	// runtime.GOMAXPROCS(0); set it before the first Run. 1 gives fully
	// sequential evaluation. Results are identical for every value.
	Workers int
	// Select picks the compiler's strategy-selection mode for every compile
	// (measured, the default; static; or the tiered auto mode) and
	// SelectThreshold auto mode's confidence floor (0 = compiler default).
	// Set before the first Run: runs are cached by (bench, strategy, cores)
	// only, so one Suite evaluates one selection configuration.
	Select          compiler.SelectionMode
	SelectThreshold float64
	semOnce         sync.Once
	sem             chan struct{}
}

type runKey struct {
	bench string
	strat compiler.Strategy
	cores int
}

// flight is one singleflight slot: the first claimant computes the value
// and closes done; everyone else blocks on done. Simulations are
// deterministic, so errors are cached alongside values.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// once returns the flight for key in m, claiming it (claimed=true) when the
// caller is the first and must compute the value.
func once[K comparable, T any](s *Suite, m map[K]*flight[T], key K) (f *flight[T], claimed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := m[key]; ok {
		return f, false
	}
	f = &flight[T]{done: make(chan struct{})}
	m[key] = f
	return f, true
}

// do resolves key in m via singleflight, invoking fn at most once.
func do[K comparable, T any](s *Suite, m map[K]*flight[T], key K, fn func() (T, error)) (T, error) {
	f, claimed := once(s, m, key)
	if claimed {
		f.val, f.err = fn()
		close(f.done)
	} else {
		<-f.done
	}
	return f.val, f.err
}

// NewSuite creates an empty result cache over the full benchmark list.
func NewSuite() *Suite {
	return &Suite{
		runs:       map[runKey]*flight[*core.RunResult]{},
		profs:      map[string]*flight[*prof.Profile]{},
		progs:      map[string]*flight[*ir.Program]{},
		Benchmarks: workload.Names(),
		Workers:    runtime.GOMAXPROCS(0),
	}
}

// workers returns the effective simulation bound.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// acquire takes one slot of the shared simulation pool.
func (s *Suite) acquire() {
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.workers()) })
	s.sem <- struct{}{}
}

func (s *Suite) release() { <-s.sem }

// programFor builds (and caches) one benchmark. The same IR instance must
// serve profiling and every compile: profiles are keyed by op identity.
// (Concurrent compiles of that shared instance are race-free: the
// compiler's only in-place pass is guarded by ir.Program.PrepareOnce.)
func (s *Suite) programFor(bench string) (*ir.Program, error) {
	return do(s, s.progs, bench, func() (*ir.Program, error) {
		return workload.Build(bench)
	})
}

// profileFor collects (and caches) the profile of one benchmark. Profiling
// always completes before the benchmark's first compile (Run collects the
// profile first), so the profiling interpreter never overlaps the
// compiler's one-shot IR cleanup.
func (s *Suite) profileFor(bench string) (*prof.Profile, error) {
	return do(s, s.profs, bench, func() (*prof.Profile, error) {
		p, err := s.programFor(bench)
		if err != nil {
			return nil, err
		}
		return prof.Collect(p)
	})
}

// Program returns the (cached) IR of one benchmark. The returned program
// is shared — callers must treat it as read-only (compiling it is fine:
// the compiler's only in-place pass is PrepareOnce-guarded).
func (s *Suite) Program(bench string) (*ir.Program, error) { return s.programFor(bench) }

// Profile returns the (cached) profile of one benchmark.
func (s *Suite) Profile(bench string) (*prof.Profile, error) { return s.profileFor(bench) }

// Run returns the (cached) simulation of one configuration. Concurrent
// calls with the same key share one simulation.
func (s *Suite) Run(bench string, strat compiler.Strategy, cores int) (*core.RunResult, error) {
	return do(s, s.runs, runKey{bench, strat, cores}, func() (*core.RunResult, error) {
		p, err := s.programFor(bench)
		if err != nil {
			return nil, err
		}
		pr, err := s.profileFor(bench)
		if err != nil {
			return nil, err
		}
		// Compile and simulate under the bounded pool. The slot is taken
		// only here — never while waiting on another flight — so nested
		// cache fills cannot deadlock the pool.
		s.acquire()
		defer s.release()
		cp, err := compiler.Compile(p, compiler.Options{
			Cores: cores, Strategy: strat, Profile: pr, Workers: s.workers(),
			Selection: s.Select, SelectThreshold: s.SelectThreshold,
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%v/%d: %w", bench, strat, cores, err)
		}
		res, err := core.New(core.DefaultConfig(cores)).Run(cp)
		if err != nil {
			return nil, fmt.Errorf("%s/%v/%d: %w", bench, strat, cores, err)
		}
		return res, nil
	})
}

// Speedup returns serial cycles divided by the configuration's cycles.
func (s *Suite) Speedup(bench string, strat compiler.Strategy, cores int) (float64, error) {
	base, err := s.Run(bench, compiler.Serial, 1)
	if err != nil {
		return 0, err
	}
	r, err := s.Run(bench, strat, cores)
	if err != nil {
		return 0, err
	}
	if r.TotalCycles == 0 {
		return 0, fmt.Errorf("%s: zero cycles", bench)
	}
	return float64(base.TotalCycles) / float64(r.TotalCycles), nil
}

// sortedBenchmarks returns the suite's benchmark list in the paper's order.
func (s *Suite) sortedBenchmarks() []string {
	out := append([]string(nil), s.Benchmarks...)
	pos := map[string]int{}
	for i, n := range workload.Names() {
		pos[n] = i
	}
	sort.Slice(out, func(i, j int) bool { return pos[out[i]] < pos[out[j]] })
	return out
}

// tableRows fans fn out over the suite's benchmarks — one goroutine per
// benchmark, with the simulation load bounded by the suite's shared worker
// pool — and assembles the rows in the paper's order regardless of
// completion order. The first error in row order wins, so failures are
// reported deterministically.
func (s *Suite) tableRows(fn func(bench string) ([]float64, error)) ([]Row, error) {
	benches := s.sortedBenchmarks()
	rows := make([]Row, len(benches))
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			var vals []float64
			if vals, errs[i] = fn(b); errs[i] == nil {
				rows[i] = Row{Name: b, Values: vals}
			}
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
