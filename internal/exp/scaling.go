package exp

import (
	"fmt"

	"voltron/internal/compiler"
	"voltron/internal/stats"
)

// ScalingCores is the many-core sweep the scalability figure covers. The
// paper evaluates 2 and 4 cores; everything beyond is the extension enabled
// by the activity-indexed event scheduler (simulation cost tracks activity,
// not machine width, so 64-core sweeps are routine). Coupled groups stay
// limited to 4 cores (paper §3.2: "coupling more than 4 cores is rare"), so
// the wide configurations draw on decoupled fine-grain TLP and chunked
// DOALL loops only — the selection machinery handles the restriction by
// construction (the coupled candidate is simply unavailable).
var ScalingCores = []int{1, 2, 4, 8, 16, 32, 64}

// Scaling measures hybrid speedup over the serial baseline across the
// many-core sweep: one column per core count, one row per benchmark.
func (s *Suite) Scaling() (*Table, error) {
	t := &Table{
		Title:   "Extension: hybrid speedup scaling (coupled groups capped at 4 cores)",
		Columns: coreColumns(),
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		var vals []float64
		for _, n := range ScalingCores {
			sp, err := s.Speedup(b, compiler.Hybrid, n)
			if err != nil {
				return nil, err
			}
			vals = append(vals, sp)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// scalingKinds is the stall-attribution split of the scalability figure:
// the paper's Figure 12 categories that matter as machines widen. Idle and
// lock-step cycles fold into the sync column implicitly (wide machines run
// decoupled, where waiting cores charge call/return sync).
var scalingKinds = []stats.Kind{
	stats.Busy, stats.IStall, stats.DStall,
	stats.RecvData, stats.RecvPred, stats.SendStall,
	stats.SyncCallRet, stats.TMRollback,
}

// ScalingStalls attributes where the cycles go as the machine widens: one
// row per core count, one column per stall category, each value the
// average-across-benchmarks fraction of total core-cycles (every row sums
// to ~1 with the categories not listed contributing the remainder). Wider
// machines shift time from busy toward sync/receive stalls — the figure
// shows which communication cost caps the speedup curve.
func (s *Suite) ScalingStalls() (*Table, error) {
	t := &Table{
		Title:   "Extension: cycle attribution vs core count (hybrid, fraction of core-cycles)",
		Columns: make([]string, len(scalingKinds)),
	}
	for i, k := range scalingKinds {
		t.Columns[i] = k.String()
	}
	for _, n := range ScalingCores {
		row := Row{Name: fmt.Sprintf("%d core", n), Values: make([]float64, len(scalingKinds))}
		// Average each benchmark's per-kind share of its own accounted
		// cycles, so long benchmarks do not dominate short ones.
		var ok int
		for _, b := range s.Benchmarks {
			res, err := s.Run(b, compiler.Hybrid, n)
			if err != nil {
				return nil, err
			}
			var total int64
			for i := range res.Cores {
				total += res.Cores[i].Total()
			}
			if total == 0 {
				continue
			}
			ok++
			for i, k := range scalingKinds {
				row.Values[i] += float64(res.Stall(k)) / float64(total)
			}
		}
		if ok > 0 {
			for i := range row.Values {
				row.Values[i] /= float64(ok)
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// coreColumns renders the sweep as table column headers.
func coreColumns() []string {
	cols := make([]string, len(ScalingCores))
	for i, n := range ScalingCores {
		cols[i] = fmt.Sprintf("%d core", n)
	}
	return cols
}
