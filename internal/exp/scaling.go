package exp

import "voltron/internal/compiler"

// Scaling is an extension experiment beyond the paper's 2- and 4-core
// configurations: hybrid speedup at 8 cores. Coupled groups stay limited
// to 4 cores (paper §3.2: "coupling more than 4 cores is rare"), so at 8
// cores hybrid execution draws on decoupled fine-grain TLP and chunked
// DOALL loops only — the selection machinery handles the restriction by
// construction (the coupled candidate is simply unavailable).
func (s *Suite) Scaling() (*Table, error) {
	t := &Table{
		Title:   "Extension: hybrid speedup scaling (coupled groups capped at 4 cores)",
		Columns: []string{"2 core", "4 core", "8 core"},
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		var vals []float64
		for _, n := range []int{2, 4, 8} {
			sp, err := s.Speedup(b, compiler.Hybrid, n)
			if err != nil {
				return nil, err
			}
			vals = append(vals, sp)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}
