package exp

import (
	"fmt"

	"voltron/internal/compiler"
	"voltron/internal/stats"
)

// Every figure harness fans out over the benchmarks (Suite.tableRows): rows
// are computed concurrently, bounded by the suite's worker pool, and
// assembled in the paper's order. The per-run singleflight cache means
// several harnesses can run concurrently over one Suite without duplicating
// a single simulation, and the tables are identical to sequential
// generation.

// Fig3 reproduces Figure 3: the fraction of dynamic execution best
// accelerated by each parallelism class on a 4-core system. Following the
// paper's methodology, each benchmark is compiled to exploit each form of
// parallelism by itself; region by region the technique with the best
// region time wins, and the region's share of serial execution is
// attributed to it.
func (s *Suite) Fig3() (*Table, error) {
	t := &Table{
		Title:   "Figure 3: breakdown of exploitable parallelism, 4-core system (fractions)",
		Columns: []string{"ILP", "fine-grain TLP", "LLP", "single core"},
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		base, err := s.Run(b, compiler.Serial, 1)
		if err != nil {
			return nil, err
		}
		type cand struct {
			idx int
			res []int64
		}
		var cands []cand
		for i, strat := range []compiler.Strategy{compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP} {
			r, err := s.Run(b, strat, 4)
			if err != nil {
				return nil, err
			}
			cands = append(cands, cand{i, r.RegionCycles})
		}
		var total float64
		frac := make([]float64, 4)
		for reg, serialCycles := range base.RegionCycles {
			w := float64(serialCycles)
			total += w
			best, bestCycles := 3, serialCycles // index 3 = single core
			for _, c := range cands {
				if reg < len(c.res) && c.res[reg] < bestCycles {
					best, bestCycles = c.idx, c.res[reg]
				}
			}
			frac[best] += w
		}
		for i := range frac {
			frac[i] /= total
		}
		return frac, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// figSpeedups builds a per-technique speedup table (Figures 10 and 11).
func (s *Suite) figSpeedups(cores int, title string) (*Table, error) {
	t := &Table{
		Title:   title,
		Columns: []string{"ILP", "fine-grain TLP", "LLP"},
	}
	strategies := []compiler.Strategy{compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		var vals []float64
		for _, strat := range strategies {
			sp, err := s.Speedup(b, strat, cores)
			if err != nil {
				return nil, err
			}
			vals = append(vals, sp)
		}
		return vals, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig10 reproduces Figure 10: per-technique speedups on 2 cores.
func (s *Suite) Fig10() (*Table, error) {
	return s.figSpeedups(2, "Figure 10: speedup on 2-core Voltron exploiting ILP, fine-grain TLP and LLP separately")
}

// Fig11 reproduces Figure 11: per-technique speedups on 4 cores.
func (s *Suite) Fig11() (*Table, error) {
	return s.figSpeedups(4, "Figure 11: speedup on 4-core Voltron exploiting ILP, fine-grain TLP and LLP separately")
}

// Fig12 reproduces Figure 12: stall-cycle breakdown on a 4-core system,
// coupled (ILP) vs decoupled (fine-grain TLP), normalized to serial
// execution time. Columns are interleaved: first the coupled bar's
// components, then the decoupled bar's.
func (s *Suite) Fig12() (*Table, error) {
	t := &Table{
		Title: "Figure 12: stall breakdown on 4 cores (fractions of serial time; c=coupled ILP bar, d=decoupled fine-grain TLP bar)",
		Columns: []string{
			"c I-stalls", "c D-stalls", "c lockstep",
			"d I-stalls", "d D-stalls", "d recv", "d pred recv", "d sync",
		},
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		base, err := s.Run(b, compiler.Serial, 1)
		if err != nil {
			return nil, err
		}
		ref := base.TotalCycles
		cp, err := s.Run(b, compiler.ForceILP, 4)
		if err != nil {
			return nil, err
		}
		dc, err := s.Run(b, compiler.ForceFTLP, 4)
		if err != nil {
			return nil, err
		}
		return []float64{
			cp.AvgStallFraction(stats.IStall, ref),
			cp.AvgStallFraction(stats.DStall, ref),
			cp.AvgStallFraction(stats.Lockstep, ref),
			dc.AvgStallFraction(stats.IStall, ref),
			dc.AvgStallFraction(stats.DStall, ref),
			dc.AvgStallFraction(stats.RecvData, ref) + dc.AvgStallFraction(stats.SendStall, ref),
			dc.AvgStallFraction(stats.RecvPred, ref),
			dc.AvgStallFraction(stats.SyncCallRet, ref),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig13 reproduces Figure 13: hybrid-parallelism speedups on 2 and 4 cores.
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		Title:   "Figure 13: speedup on 2-core and 4-core Voltron exploiting hybrid parallelism",
		Columns: []string{"2 core", "4 core"},
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		s2, err := s.Speedup(b, compiler.Hybrid, 2)
		if err != nil {
			return nil, err
		}
		s4, err := s.Speedup(b, compiler.Hybrid, 4)
		if err != nil {
			return nil, err
		}
		return []float64{s2, s4}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Fig14 reproduces Figure 14: fraction of hybrid execution time spent in
// each mode on 4 cores.
func (s *Suite) Fig14() (*Table, error) {
	t := &Table{
		Title:   "Figure 14: breakdown of time spent in each execution mode (hybrid, 4 cores)",
		Columns: []string{"coupled", "decoupled"},
	}
	rows, err := s.tableRows(func(b string) ([]float64, error) {
		r, err := s.Run(b, compiler.Hybrid, 4)
		if err != nil {
			return nil, err
		}
		return []float64{
			r.ModeFraction(stats.ModeCoupled),
			r.ModeFraction(stats.ModeDecoupled),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// Figure returns the named figure's table.
func (s *Suite) Figure(n int) (*Table, error) {
	switch n {
	case 3:
		return s.Fig3()
	case 10:
		return s.Fig10()
	case 11:
		return s.Fig11()
	case 12:
		return s.Fig12()
	case 13:
		return s.Fig13()
	case 14:
		return s.Fig14()
	}
	return nil, fmt.Errorf("no harness for figure %d (7-9 are kernel examples: see Fig7to9)", n)
}
