package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/stats"
)

// smallSuite restricts to three benchmarks covering the three parallelism
// classes, so figure tests stay fast.
func smallSuite() *Suite {
	s := NewSuite()
	s.Benchmarks = []string{"gsmdecode", "179.art", "171.swim"}
	return s
}

func TestTableAverageAndPrint(t *testing.T) {
	tab := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Name: "x", Values: []float64{1, 2}},
			{Name: "y", Values: []float64{3, 4}},
		},
	}
	avg := tab.Average()
	if avg.Values[0] != 2 || avg.Values[1] != 3 {
		t.Errorf("average = %v", avg.Values)
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"benchmark", "x", "y", "average", "2.000", "3.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed table missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := smallSuite()
	r1, err := s.Run("gsmdecode", compiler.Serial, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("gsmdecode", compiler.Serial, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical configurations re-simulated")
	}
}

func TestSpeedupAtLeastHalf(t *testing.T) {
	// Sanity bound: no strategy should be catastrophically slower than
	// serial (measured selection guards this).
	s := smallSuite()
	for _, b := range s.Benchmarks {
		for _, st := range []compiler.Strategy{compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP, compiler.Hybrid} {
			sp, err := s.Speedup(b, st, 4)
			if err != nil {
				t.Fatal(err)
			}
			if sp < 0.5 {
				t.Errorf("%s/%v: speedup %.2f", b, st, sp)
			}
		}
	}
}

func TestFigureTablesWellFormed(t *testing.T) {
	s := smallSuite()
	for _, fig := range []int{3, 10, 11, 12, 13, 14} {
		tab, err := s.Figure(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if len(tab.Rows) != len(s.Benchmarks) {
			t.Errorf("figure %d: %d rows, want %d", fig, len(tab.Rows), len(s.Benchmarks))
		}
		for _, r := range tab.Rows {
			if len(r.Values) != len(tab.Columns) {
				t.Errorf("figure %d row %s: %d values for %d columns", fig, r.Name, len(r.Values), len(tab.Columns))
			}
			for _, v := range r.Values {
				if v < 0 {
					t.Errorf("figure %d row %s: negative value %g", fig, r.Name, v)
				}
			}
		}
	}
	if _, err := s.Figure(99); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestFig3FractionsSumToOne(t *testing.T) {
	s := smallSuite()
	tab, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		var sum float64
		for _, v := range r.Values {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %g", r.Name, sum)
		}
	}
}

func TestFig14ModesSumToOne(t *testing.T) {
	s := smallSuite()
	tab, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if sum := r.Values[0] + r.Values[1]; sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: mode fractions sum to %g", r.Name, sum)
		}
	}
}

func TestFig13HybridAtLeastBestSingle(t *testing.T) {
	// The paper's headline: hybrid meets or beats each individual
	// technique (small tolerance for measurement-vs-context noise).
	s := smallSuite()
	for _, b := range s.Benchmarks {
		hybrid, err := s.Speedup(b, compiler.Hybrid, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range []compiler.Strategy{compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP} {
			single, err := s.Speedup(b, st, 4)
			if err != nil {
				t.Fatal(err)
			}
			if hybrid < single*0.95 {
				t.Errorf("%s: hybrid %.3f < %v %.3f", b, hybrid, st, single)
			}
		}
	}
}

func TestFig7to9Kernels(t *testing.T) {
	res, err := Fig7to9()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d kernel results", len(res))
	}
	// Shape checks against the paper's numbers.
	if res[0].Measured2Core < 1.5 {
		t.Errorf("Fig7 DOALL kernel only %.2fx (paper 1.9x)", res[0].Measured2Core)
	}
	if res[1].Measured2Core < 1.05 {
		t.Errorf("Fig8 strand kernel only %.2fx (paper 1.2x)", res[1].Measured2Core)
	}
	if res[2].Measured2Core < 1.3 {
		t.Errorf("Fig9 ILP kernel only %.2fx (paper 1.78x)", res[2].Measured2Core)
	}
}

func TestKernelProgramsVerify(t *testing.T) {
	for _, p := range []interface{ Verify() error }{
		GsmLLPKernel(16), GzipStrandKernel(256), GsmILPKernel(32),
	} {
		if err := p.Verify(); err != nil {
			t.Errorf("kernel invalid: %v", err)
		}
	}
}

func TestDecoupledStallAdvantage(t *testing.T) {
	// Paper Figure 12's claim: decoupled mode spends less time on cache
	// stalls than coupled because cores stall independently. Check on the
	// memory-bound 179.art.
	s := smallSuite()
	base, err := s.Run("179.art", compiler.Serial, 1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Run("179.art", compiler.ForceILP, 4)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := s.Run("179.art", compiler.ForceFTLP, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := base.TotalCycles
	coupledStall := cp.AvgStallFraction(stats.DStall, ref) + cp.AvgStallFraction(stats.Lockstep, ref)
	decoupledStall := dc.AvgStallFraction(stats.DStall, ref)
	if decoupledStall >= coupledStall {
		t.Errorf("decoupled D-stall %.3f >= coupled D+lockstep %.3f", decoupledStall, coupledStall)
	}
}

func TestScalingExtension(t *testing.T) {
	s := smallSuite()
	tab, err := s.Scaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		// The DOALL-heavy benchmark must keep scaling to 8 cores.
		if r.Name == "171.swim" && r.Values[2] <= r.Values[1] {
			t.Errorf("swim does not scale past 4 cores: %v", r.Values)
		}
		for i, v := range r.Values {
			if v < 0.5 {
				t.Errorf("%s at %d cores: speedup %.2f", r.Name, []int{2, 4, 8}[i], v)
			}
		}
	}
}

func TestTableWriteJSON(t *testing.T) {
	tab := &Table{
		Title:   "jt",
		Columns: []string{"x"},
		Rows:    []Row{{Name: "b1", Values: []float64{1.5}}},
	}
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title string `json:"title"`
		Rows  []struct {
			Benchmark string             `json:"benchmark"`
			Values    map[string]float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "jt" || len(decoded.Rows) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded.Rows[0].Values["x"] != 1.5 || decoded.Rows[1].Benchmark != "average" {
		t.Errorf("rows = %+v", decoded.Rows)
	}
}
