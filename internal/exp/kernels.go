package exp

import (
	"sync"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
)

// The paper's worked kernel examples (Figures 7-9): the gsmdecode DOALL
// loop (1.9x on 2 cores in the paper), the 164.gzip strand loop (1.2x), and
// the gsmdecode ILP loop (1.78x).

// GsmLLPKernel builds Figure 7's loop:
//
//	for (i = 0; i < 8; ++i) { uf[i] = u[i]; rpf[i] = rp[i] * scalef; }
func GsmLLPKernel(reps int64) *ir.Program {
	p := ir.NewProgram("gsm-llp")
	n := int64(8) * reps // scaled up so timing is not all region overhead
	u := p.Array("u", n)
	uf := p.Array("uf", n)
	rp := p.Array("rp", n)
	rpf := p.Array("rpf", n)
	for i := int64(0); i < n; i++ {
		p.SetInit(u, i, i*3+1)
		p.SetInit(rp, i, i*5+2)
	}
	r := p.Region("uf_rpf")
	pre := r.NewBlock()
	ub := pre.AddrOf(u)
	ufb := pre.AddrOf(uf)
	rpb := pre.AddrOf(rp)
	rpfb := pre.AddrOf(rpf)
	scalef := pre.MovI(3)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		b.Store(uf, b.Add(ufb, off), 0, b.Load(u, b.Add(ub, off), 0))
		rv := b.Load(rp, b.Add(rpb, off), 0)
		b.Store(rpf, b.Add(rpfb, off), 0, b.Mul(rv, scalef))
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// GzipStrandKernel builds Figure 8's loop: two miss-prone streams compared
// until they diverge, with the predicate fed by loads on both cores.
func GzipStrandKernel(n int64) *ir.Program {
	p := ir.NewProgram("gzip-strands")
	scan := p.Array("scan", n)
	match := p.Array("match", n)
	out := p.Array("out", 1)
	for i := int64(0); i < n; i++ {
		p.SetInit(scan, i, i%61)
		p.SetInit(match, i, i%61)
	}
	p.SetInit(match, n-n/8, 424242)
	r := p.Region("longest_match")
	pre := r.NewBlock()
	sb := pre.AddrOf(scan)
	mb := pre.AddrOf(match)
	i := pre.MovI(0)
	body := r.NewBlock()
	exit := r.NewBlock()
	pre.JumpTo(body)
	off := body.ShlI(i, 3)
	sv := body.Load(scan, body.Add(sb, off), 0)
	mv := body.Load(match, body.Add(mb, off), 0)
	eq := body.CmpEQ(sv, mv)
	body.AddTo(i, 1)
	cont := body.PAnd(eq, body.CmpLTI(i, n))
	body.BranchIf(cont, body, exit)
	exit.Store(out, exit.AddrOf(out), 0, i)
	exit.ExitRegion()
	r.Seal()
	return p
}

// GsmILPKernel builds Figure 9's loop shape: a short counted loop whose
// body holds several independent multiply/accumulate chains over
// cache-resident data (the rrp/v filter).
func GsmILPKernel(trips int64) *ir.Program {
	p := ir.NewProgram("gsm-ilp")
	rrp := p.Array("rrp", 8)
	v := p.Array("v", 16)
	out := p.Array("out", 32)
	for i := int64(0); i < 8; i++ {
		p.SetInit(rrp, i, i*7+1)
	}
	for i := int64(0); i < 16; i++ {
		p.SetInit(v, i, i*11+3)
	}
	r := p.Region("ltp_filter")
	pre := r.NewBlock()
	rb := pre.AddrOf(rrp)
	vb := pre.AddrOf(v)
	ob := pre.AddrOf(out)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		for c := int64(0); c < 4; c++ {
			t1 := b.Load(rrp, rb, c*8)
			t2 := b.Load(v, vb, c*8)
			m := b.Mul(t1, t2)
			s := b.AddI(m, 16384)
			sh := b.ShrI(s, 15)
			x := b.AndI(sh, 0xFFFF)
			b.Store(out, ob, c*64, x)
		}
		return b
	})
	after.ExitRegion()
	r.Seal()
	return p
}

// KernelResult is a Figures 7-9 measurement.
type KernelResult struct {
	Name          string
	PaperSpeedup  float64
	Measured2Core float64
}

// Fig7to9 measures the three kernels on a 2-core system. The kernels are
// evaluated concurrently (each goroutine owns its kernel's program, so the
// serial and parallel compiles of one kernel never race); results are
// reported in figure order.
func Fig7to9() ([]KernelResult, error) {
	cases := []struct {
		name  string
		p     *ir.Program
		strat compiler.Strategy
		paper float64
	}{
		{"Fig7 gsmdecode LLP", GsmLLPKernel(64), compiler.ForceLLP, 1.9},
		{"Fig8 gzip strands", GzipStrandKernel(2048), compiler.ForceFTLP, 1.2},
		{"Fig9 gsmdecode ILP", GsmILPKernel(512), compiler.ForceILP, 1.78},
	}
	out := make([]KernelResult, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base, err := runProgram(c.p, compiler.Serial, 1)
			if err != nil {
				errs[i] = err
				return
			}
			par, err := runProgram(c.p, c.strat, 2)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = KernelResult{
				Name:          c.name,
				PaperSpeedup:  c.paper,
				Measured2Core: float64(base.TotalCycles) / float64(par.TotalCycles),
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runProgram compiles and simulates an ad-hoc program.
func runProgram(p *ir.Program, strat compiler.Strategy, cores int) (*core.RunResult, error) {
	cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: strat})
	if err != nil {
		return nil, err
	}
	return core.New(core.DefaultConfig(cores)).Run(cp)
}

// runProgramC simulates an already compiled program (test helper).
func runProgramC(cp *core.CompiledProgram, cores int) (*core.RunResult, error) {
	return core.New(core.DefaultConfig(cores)).Run(cp)
}
