package exp

import (
	"reflect"
	"sync"
	"testing"

	"voltron/internal/compiler"
)

// raceSuite narrows the benchmark list so the -race runs stay fast while
// still covering all three parallelism classes.
func raceSuite(workers int) *Suite {
	s := NewSuite()
	s.Benchmarks = []string{"gsmdecode", "179.art", "171.swim"}
	s.Workers = workers
	return s
}

// TestSuiteConcurrentFiguresMatchSequential runs two figure harnesses
// concurrently over one shared Suite and checks both tables are identical
// to those produced by a fully sequential (Workers=1) suite. Fig13 and
// Fig14 share the hybrid runs, so the concurrent pass also exercises the
// per-key singleflight under contention.
func TestSuiteConcurrentFiguresMatchSequential(t *testing.T) {
	seq := raceSuite(1)
	want13, err := seq.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	want14, err := seq.Fig14()
	if err != nil {
		t.Fatal(err)
	}

	par := raceSuite(0)
	var got13, got14 *Table
	var err13, err14 error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); got13, err13 = par.Fig13() }()
	go func() { defer wg.Done(); got14, err14 = par.Fig14() }()
	wg.Wait()
	if err13 != nil || err14 != nil {
		t.Fatal(err13, err14)
	}
	if !reflect.DeepEqual(want13, got13) {
		t.Errorf("Fig13 differs between sequential and concurrent suites:\nseq: %+v\npar: %+v", want13, got13)
	}
	if !reflect.DeepEqual(want14, got14) {
		t.Errorf("Fig14 differs between sequential and concurrent suites:\nseq: %+v\npar: %+v", want14, got14)
	}
}

// TestSuiteSingleflightSharesRuns asserts concurrent Run calls with the
// same key resolve to one simulation: every caller gets the same
// *core.RunResult pointer.
func TestSuiteSingleflightSharesRuns(t *testing.T) {
	s := raceSuite(0)
	const callers = 8
	results := make([]interface{}, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := s.Run("gsmdecode", compiler.Hybrid, 4)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a distinct RunResult: singleflight did not coalesce", i)
		}
	}
}
