package exp

import (
	"fmt"
	"reflect"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// referenceCores is the set of machine widths the differential covers: the
// paper's 4-core configuration plus the many-core extension widths, where
// the activity-indexed scheduler skips over mostly-idle meshes and must
// still be cycle-exact against the naive stepper.
var referenceCores = []int{4, 16, 32, 64}

// TestEventDrivenMatchesReference compiles every workload with the hybrid
// strategy and runs it on both the event-driven machine and the retained
// naive reference stepper, at every width in referenceCores. Cycle skipping
// must be invisible: per-region cycles, the full stall/mode breakdown,
// memory statistics and the final memory image all have to match exactly,
// benchmark by benchmark.
func TestEventDrivenMatchesReference(t *testing.T) {
	for _, cores := range referenceCores {
		cores := cores
		for _, name := range workload.Names() {
			name := name
			t.Run(fmt.Sprintf("%dcore/%s", cores, name), func(t *testing.T) {
				t.Parallel()
				p, err := workload.Build(name)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				pr, err := prof.Collect(p)
				if err != nil {
					t.Fatalf("profile: %v", err)
				}
				cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: compiler.Hybrid, Profile: pr, Workers: 1})
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				ev, err := core.New(core.DefaultConfig(cores)).Run(cp)
				if err != nil {
					t.Fatalf("event run: %v", err)
				}
				refCfg := core.DefaultConfig(cores)
				refCfg.Reference = true
				rf, err := core.New(refCfg).Run(cp)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				if !reflect.DeepEqual(ev.RegionCycles, rf.RegionCycles) {
					t.Errorf("RegionCycles: event %v, reference %v", ev.RegionCycles, rf.RegionCycles)
				}
				if !reflect.DeepEqual(ev.Run, rf.Run) {
					t.Errorf("stats diverge:\nevent     %+v\nreference %+v", ev.Run, rf.Run)
				}
				if !reflect.DeepEqual(ev.MemStats, rf.MemStats) {
					t.Errorf("memory stats diverge:\nevent     %+v\nreference %+v", ev.MemStats, rf.MemStats)
				}
				if !ev.Mem.Equal(rf.Mem) {
					t.Error("final memory images diverge")
				}
			})
		}
	}
}
