package exp

import (
	"fmt"
	"reflect"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// TestRandomProgramsEventDrivenMatchesReference feeds ~100 generated
// programs through both simulator cores. The hand-written workloads in
// TestEventDrivenMatchesReference pin the figures; this test hunts for
// cycle-skipping bugs on shapes nobody curated, rotating the strategy and
// machine width with the seed so every code generator meets both cores.
func TestRandomProgramsEventDrivenMatchesReference(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	strategies := []compiler.Strategy{
		compiler.Serial, compiler.ForceILP, compiler.ForceFTLP,
		compiler.ForceLLP, compiler.Hybrid,
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		strat := strategies[seed%len(strategies)]
		// Rotate through the paper widths and the many-core extension widths
		// so every strategy's code generator meets wide, mostly-idle meshes.
		widths := []int{2, 4, 16, 32, 64}
		cores := widths[seed/len(strategies)%len(widths)]
		t.Run(fmt.Sprintf("seed%d_%v_%dcores", seed, strat, cores), func(t *testing.T) {
			t.Parallel()
			p, err := workload.Random(int64(seed), 1+seed%3)
			if err != nil {
				t.Fatalf("generated program invalid: %v", err)
			}
			pr, err := prof.Collect(p)
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			cp, err := compiler.Compile(p, compiler.Options{Cores: cores, Strategy: strat, Profile: pr, Workers: 1})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ev, err := core.New(core.DefaultConfig(cores)).Run(cp)
			if err != nil {
				t.Fatalf("event run: %v", err)
			}
			refCfg := core.DefaultConfig(cores)
			refCfg.Reference = true
			rf, err := core.New(refCfg).Run(cp)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if !reflect.DeepEqual(ev.RegionCycles, rf.RegionCycles) {
				t.Errorf("RegionCycles: event %v, reference %v", ev.RegionCycles, rf.RegionCycles)
			}
			if !reflect.DeepEqual(ev.Run, rf.Run) {
				t.Errorf("stats diverge:\nevent     %+v\nreference %+v", ev.Run, rf.Run)
			}
			if !reflect.DeepEqual(ev.MemStats, rf.MemStats) {
				t.Errorf("memory stats diverge:\nevent     %+v\nreference %+v", ev.MemStats, rf.MemStats)
			}
			if !ev.Mem.Equal(rf.Mem) {
				t.Error("final memory images diverge")
			}
		})
	}
}
