package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/ir"
	"voltron/internal/prof"
	"voltron/internal/workload"
)

// Selection-agreement evaluation for the tiered strategy selector: how
// often the static classifier's pick matches measured selection's ground
// truth, how often auto mode (classifier + escalation) lands on it, and
// whether auto mode ever installs a lowering that is slower than serial
// (the paper's "never hurts" invariant).

// AgreementRow compares one region's classifier verdict against measured
// ground truth.
type AgreementRow struct {
	Bench  string `json:"bench"`
	Region int    `json:"region"`
	Name   string `json:"name"`
	// Tier and Confidence are the classifier's verdict (Tier as recorded by
	// auto mode, so escalated regions show "hard").
	Tier       string  `json:"tier"`
	Confidence float64 `json:"confidence"`
	// Static is the classifier's unthresholded pick, Auto what auto mode
	// installed (equal to Static unless the region escalated), Measured the
	// ground truth from full measured selection.
	Static   string `json:"static_choice"`
	Auto     string `json:"auto_choice"`
	Measured string `json:"measured_choice"`
	// StaticAgree: classifier pick == ground truth. AutoAgree: installed
	// pick == ground truth. Escalated: auto sent the region to measurement.
	StaticAgree bool `json:"static_agree"`
	AutoAgree   bool `json:"auto_agree"`
	Escalated   bool `json:"escalated,omitempty"`
	// Hurt: auto deviated from measured ground truth AND the installed
	// parallel lowering ran slower than the serial lowering of the same
	// region — a never-hurts violation introduced by static selection.
	// (Where auto agrees with measured, its output IS the baseline
	// system's, whose never-hurts property measured selection enforces;
	// statistical DOALL is taken outright by both modes per the paper.)
	Hurt bool `json:"hurt,omitempty"`
}

// AgreementReport aggregates the per-region comparison.
type AgreementReport struct {
	// Cores and Threshold record the evaluated configuration (threshold -1 =
	// gate disabled; 0 never appears, the compiler default is resolved).
	Cores     int     `json:"cores"`
	Threshold float64 `json:"threshold"`
	// Regions counts every compared region; Ranked those the classifier had
	// to rank (not small / not DOALL-by-construction).
	Regions int `json:"regions"`
	Ranked  int `json:"ranked"`
	// StaticAgreement is the fraction of regions where the raw classifier
	// pick matches measured ground truth; AutoAgreement the fraction where
	// auto mode's installed pick does (its escalated regions re-measure).
	StaticAgreement float64 `json:"static_agreement"`
	AutoAgreement   float64 `json:"auto_agreement"`
	Escalated       int     `json:"escalated"`
	// Hurts counts never-hurts violations in auto mode's output. The
	// invariant demands zero.
	Hurts int            `json:"hurts"`
	Rows  []AgreementRow `json:"rows"`
}

// agreementCores is the machine width the agreement evaluation compiles
// for — the paper's 4-core configuration, where all three techniques
// compete.
const agreementCores = 4

// SelectionAgreement evaluates the classifier against measured ground truth
// across the suite's benchmarks plus nrand workload.Random programs (seeds
// 1..nrand, reproducible by construction). Each program is compiled three
// ways — measured, unthresholded static classification, and auto with the
// suite's SelectThreshold — and auto's output is additionally simulated
// against the all-serial lowering to verify never-hurts.
func (s *Suite) SelectionAgreement(nrand int) (*AgreementReport, error) {
	type job struct {
		name  string
		build func() (*ir.Program, *prof.Profile, error)
	}
	var jobs []job
	for _, b := range s.sortedBenchmarks() {
		jobs = append(jobs, job{b, func() (*ir.Program, *prof.Profile, error) {
			p, err := s.programFor(b)
			if err != nil {
				return nil, nil, err
			}
			pr, err := s.profileFor(b)
			return p, pr, err
		}})
	}
	for seed := 1; seed <= nrand; seed++ {
		jobs = append(jobs, job{fmt.Sprintf("random%d", seed), func() (*ir.Program, *prof.Profile, error) {
			p, err := workload.Random(int64(seed), 3)
			if err != nil {
				return nil, nil, err
			}
			pr, err := prof.Collect(p)
			return p, pr, err
		}})
	}
	rep := &AgreementReport{Cores: agreementCores, Threshold: s.SelectThreshold}
	rowsPer := make([][]AgreementRow, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			s.acquire()
			defer s.release()
			rowsPer[i], errs[i] = s.agreeProgram(j.name, j.build)
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	staticAgree, autoAgree := 0, 0
	for _, rows := range rowsPer {
		for _, r := range rows {
			rep.Regions++
			if r.Tier != compiler.TierSmall.String() && r.Tier != compiler.TierDOALL.String() {
				rep.Ranked++
			}
			if r.StaticAgree {
				staticAgree++
			}
			if r.AutoAgree {
				autoAgree++
			}
			if r.Escalated {
				rep.Escalated++
			}
			if r.Hurt {
				rep.Hurts++
			}
			rep.Rows = append(rep.Rows, r)
		}
	}
	if rep.Regions > 0 {
		rep.StaticAgreement = float64(staticAgree) / float64(rep.Regions)
		rep.AutoAgreement = float64(autoAgree) / float64(rep.Regions)
	}
	return rep, nil
}

// agreeProgram compares the three selection modes on one program.
func (s *Suite) agreeProgram(name string, build func() (*ir.Program, *prof.Profile, error)) ([]AgreementRow, error) {
	p, pr, err := build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	opts := compiler.Options{
		Cores: agreementCores, Strategy: compiler.Hybrid, Profile: pr, Workers: s.workers(),
	}
	mcp, err := compiler.Compile(p, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: measured: %w", name, err)
	}
	sopts := opts
	sopts.SelectThreshold = compiler.NoThreshold
	cls, err := compiler.ClassifyProgram(p, sopts)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	aopts := opts
	aopts.Selection = compiler.SelectAuto
	aopts.SelectThreshold = s.SelectThreshold
	acp, err := compiler.Compile(p, aopts)
	if err != nil {
		return nil, fmt.Errorf("%s: auto: %w", name, err)
	}
	serialOpts := opts
	serialOpts.Strategy = compiler.Serial
	scp, err := compiler.Compile(p, serialOpts)
	if err != nil {
		return nil, fmt.Errorf("%s: serial: %w", name, err)
	}
	ares, err := runQuiet(acp)
	if err != nil {
		return nil, fmt.Errorf("%s: auto run: %w", name, err)
	}
	sres, err := runQuiet(scp)
	if err != nil {
		return nil, fmt.Errorf("%s: serial run: %w", name, err)
	}
	rows := make([]AgreementRow, len(p.Regions))
	for i := range p.Regions {
		asel := acp.Selection.Regions[i]
		row := AgreementRow{
			Bench: name, Region: i, Name: p.Regions[i].Name,
			Tier: asel.Tier, Confidence: asel.Confidence,
			Static:   cls[i].Choice.String(),
			Auto:     asel.Choice,
			Measured: mcp.Selection.Regions[i].Choice,
		}
		row.StaticAgree = row.Static == row.Measured
		row.AutoAgree = row.Auto == row.Measured
		row.Escalated = asel.Tier == compiler.TierHard.String()
		if !row.AutoAgree && row.Auto != compiler.ChoseSingle.String() &&
			ares.RegionCycles[i] > sres.RegionCycles[i] {
			row.Hurt = true
		}
		rows[i] = row
	}
	return rows, nil
}

// runQuiet simulates a compiled program without stall accounting (the
// agreement check only reads region cycle counts).
func runQuiet(cp *core.CompiledProgram) (*core.RunResult, error) {
	cfg := core.DefaultConfig(cp.Cores)
	cfg.NoStats = true
	return core.New(cfg).Run(cp)
}

// Print renders the report: aggregates first, then only the interesting
// rows (disagreements, escalations, never-hurts violations).
func (r *AgreementReport) Print(w io.Writer) {
	fmt.Fprintf(w, "selection agreement on %d cores (threshold %v): %d regions, %d ranked\n",
		r.Cores, r.Threshold, r.Regions, r.Ranked)
	fmt.Fprintf(w, "  static  (classifier only)      %.1f%%\n", 100*r.StaticAgreement)
	fmt.Fprintf(w, "  auto    (with escalation)      %.1f%%   escalated %d, hurts %d\n",
		100*r.AutoAgreement, r.Escalated, r.Hurts)
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, row := range r.Rows {
		if row.AutoAgree && !row.Escalated && !row.Hurt {
			continue
		}
		status := "ESCALATED"
		if !row.AutoAgree {
			status = "DISAGREE"
		}
		if row.Hurt {
			status = "HURT"
		}
		fmt.Fprintf(w, "  %-9s %-14s r%d conf=%.3f static=%q auto=%q measured=%q\n",
			status, row.Bench, row.Region, row.Confidence, row.Static, row.Auto, row.Measured)
	}
}

// WriteJSON renders the full report (the CI artifact).
func (r *AgreementReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
