package ir

import (
	"testing"

	"voltron/internal/isa"
)

// buildSimpleLoop constructs: for (i=0; i<8; i++) dst[i] = src[i] + 1
func buildSimpleLoop(t *testing.T) (*Program, *Region) {
	t.Helper()
	p := NewProgram("simple")
	src := p.Array("src", 8)
	dst := p.Array("dst", 8)
	r := p.Region("loop")
	pre := r.NewBlock()
	srcBase := pre.AddrOf(src)
	dstBase := pre.AddrOf(dst)
	after := BuildCountedLoop(pre, LoopSpec{Start: 0, Limit: 8, Step: 1}, func(b *Block, i Value) *Block {
		off := b.ShlI(i, 3)
		sa := b.Add(srcBase, off)
		da := b.Add(dstBase, off)
		v := b.Load(src, sa, 0)
		v2 := b.AddI(v, 1)
		b.Store(dst, da, 0, v2)
		return b
	})
	after.ExitRegion()
	r.Seal()
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return p, r
}

func TestVerifySimpleLoop(t *testing.T) {
	buildSimpleLoop(t)
}

func TestVerifyCatchesUndefinedUse(t *testing.T) {
	p := NewProgram("bad")
	r := p.Region("r")
	b := r.NewBlock()
	o := r.NewOp(isa.ADD)
	o.Args[0] = 99 // never defined
	o.Dst = r.NewValue(isa.RegGPR)
	o.Blk = b
	b.Ops = append(b.Ops, o)
	b.ExitRegion()
	r.Seal()
	if err := p.Verify(); err == nil {
		t.Fatal("Verify accepted use of undefined value")
	}
}

func TestVerifyCatchesBadTerminator(t *testing.T) {
	p := NewProgram("bad")
	r := p.Region("r")
	b := r.NewBlock()
	b.Kind = Jump // nil successor
	r.Seal()
	if err := p.Verify(); err == nil {
		t.Fatal("Verify accepted jump to nil")
	}
}

func TestDominators(t *testing.T) {
	_, r := buildSimpleLoop(t)
	dom := r.Dominators()
	// Blocks: 0=pre, 1=header, 2=body, 3=after
	pre, header, body, after := r.Blocks[0], r.Blocks[1], r.Blocks[2], r.Blocks[3]
	if dom.IDom(pre) != nil {
		t.Errorf("entry idom = %v, want nil", dom.IDom(pre))
	}
	if dom.IDom(header) != pre {
		t.Errorf("header idom = %v, want pre", dom.IDom(header))
	}
	if dom.IDom(body) != header || dom.IDom(after) != header {
		t.Errorf("body/after idom = %v/%v, want header", dom.IDom(body), dom.IDom(after))
	}
	if !dom.Dominates(pre, after) || dom.Dominates(body, after) {
		t.Error("Dominates relation wrong")
	}
}

func TestPostDominators(t *testing.T) {
	_, r := buildSimpleLoop(t)
	pdom := r.PostDominators()
	pre, header, body, after := r.Blocks[0], r.Blocks[1], r.Blocks[2], r.Blocks[3]
	if pdom.IDom(after) != nil {
		t.Errorf("exit ipostdom = %v, want nil", pdom.IDom(after))
	}
	if pdom.IDom(header) != after {
		t.Errorf("header ipostdom = %v, want after", pdom.IDom(header))
	}
	if pdom.IDom(body) != header {
		t.Errorf("body ipostdom = %v, want header", pdom.IDom(body))
	}
	if pdom.IDom(pre) != header {
		t.Errorf("pre ipostdom = %v, want header", pdom.IDom(pre))
	}
}

func TestLoopDetection(t *testing.T) {
	_, r := buildSimpleLoop(t)
	loops := r.Loops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != r.Blocks[1] {
		t.Errorf("loop header = %v, want B1", l.Header)
	}
	if len(l.Latches) != 1 || l.Latches[0] != r.Blocks[2] {
		t.Errorf("latches = %v, want [B2]", l.Latches)
	}
	if !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Errorf("loop blocks = %v", l.Blocks)
	}
	if len(l.Exits) != 1 || l.Exits[0] != r.Blocks[3] {
		t.Errorf("exits = %v", l.Exits)
	}
}

func TestInductionDetection(t *testing.T) {
	_, r := buildSimpleLoop(t)
	l := r.Loops()[0]
	iv := l.Induction
	if iv == nil {
		t.Fatal("induction variable not detected")
	}
	if iv.Step != 1 {
		t.Errorf("step = %d, want 1", iv.Step)
	}
	if iv.LimitImm != 8 || iv.Limit != NoValue {
		t.Errorf("limit = v%d imm=%d, want imm 8", iv.Limit, iv.LimitImm)
	}
	if !iv.ExitOnFalse {
		t.Error("ExitOnFalse = false, want true")
	}
	if iv.InitOp == nil || iv.InitOp.Imm != 0 {
		t.Errorf("init op = %v", iv.InitOp)
	}
}

func TestReductionDetection(t *testing.T) {
	p := NewProgram("red")
	src := p.Array("src", 16)
	out := p.Array("out", 1)
	r := p.Region("sum")
	pre := r.NewBlock()
	base := pre.AddrOf(src)
	sum := pre.MovI(0)
	after := BuildCountedLoop(pre, LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *Block, i Value) *Block {
		off := b.ShlI(i, 3)
		a := b.Add(base, off)
		v := b.Load(src, a, 0)
		b.Accum(isa.ADD, sum, v)
		return b
	})
	outBase := after.AddrOf(out)
	after.Store(out, outBase, 0, sum)
	after.ExitRegion()
	r.Seal()
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	l := r.Loops()[0]
	if len(l.Reductions) != 1 {
		t.Fatalf("found %d reductions, want 1", len(l.Reductions))
	}
	if l.Reductions[0].Acc != sum {
		t.Errorf("reduction acc = v%d, want v%d", l.Reductions[0].Acc, sum)
	}
	if l.Reductions[0].Kind != isa.ADD {
		t.Errorf("reduction kind = %v", l.Reductions[0].Kind)
	}
}

func TestAffineAddrAndMemDep(t *testing.T) {
	_, r := buildSimpleLoop(t)
	l := r.Loops()[0]
	var load, store *Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			load = o
		}
		if o.Code == isa.STORE {
			store = o
		}
	}
	le := r.AddrExprOf(load, l, nil)
	if !le.Known || le.Stride != 8 || le.Offset != 0 {
		t.Errorf("load addr expr = %+v, want stride 8 offset 0", le)
	}
	se := r.AddrExprOf(store, l, nil)
	if !se.Known || se.Stride != 8 {
		t.Errorf("store addr expr = %+v", se)
	}
	// Load from src, store to dst: distinct arrays, no dependence.
	if d := r.MemDep(load, store, l, nil); d != MemNoDep {
		t.Errorf("MemDep(load src, store dst) = %v, want none", d)
	}
}

func TestMemDepSameArray(t *testing.T) {
	// for i: a[i+1] = a[i]  → carried dependence, distance 1.
	p := NewProgram("carried")
	a := p.Array("a", 16)
	r := p.Region("loop")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := BuildCountedLoop(pre, LoopSpec{Start: 0, Limit: 15, Step: 1}, func(b *Block, i Value) *Block {
		off := b.ShlI(i, 3)
		ad := b.Add(base, off)
		v := b.Load(a, ad, 0)
		b.Store(a, ad, 8, v)
		return b
	})
	after.ExitRegion()
	r.Seal()
	l := r.Loops()[0]
	var load, store *Op
	for _, o := range r.AllOps() {
		if o.Code == isa.LOAD {
			load = o
		}
		if o.Code == isa.STORE {
			store = o
		}
	}
	if d := r.MemDep(load, store, l, nil); d != MemCarriedDep {
		t.Errorf("MemDep = %v, want carried", d)
	}
	// Same offset: a[i] = a[i] + ... is intra-iteration.
	store.Imm = 0
	if d := r.MemDep(load, store, l, nil); d != MemIntraDep {
		t.Errorf("MemDep same offset = %v, want intra", d)
	}
}

func TestBlockDFG(t *testing.T) {
	p := NewProgram("dfg")
	a := p.Array("a", 4)
	r := p.Region("r")
	b := r.NewBlock()
	base := b.AddrOf(a)
	x := b.Load(a, base, 0)
	y := b.AddI(x, 1)
	b.Store(a, base, 0, y)
	z := b.Load(a, base, 0) // must depend on the store (same address)
	_ = z
	b.ExitRegion()
	r.Seal()
	g := r.BuildBlockDFG(b)
	// Find the store and the second load.
	var store, load2 *Op
	for _, o := range b.Ops {
		if o.Code == isa.STORE {
			store = o
		}
	}
	for _, o := range b.Ops {
		if o.Code == isa.LOAD && o.Dst == z {
			load2 = o
		}
	}
	found := false
	for _, e := range g.Preds(load2) {
		if e.Src == store && e.Kind == DepMem {
			found = true
		}
	}
	if !found {
		t.Error("missing mem dependence store -> load at same address")
	}
	// Flow dep: load1 -> add with latency = load latency.
	var add *Op
	for _, o := range b.Ops {
		if o.Code == isa.ADD && o.Dst == y {
			add = o
		}
	}
	foundFlow := false
	for _, e := range g.Preds(add) {
		if e.Kind == DepFlow && e.Src.Dst == x {
			foundFlow = true
			if e.Latency != isa.LOAD.Latency() {
				t.Errorf("flow latency = %d, want %d", e.Latency, isa.LOAD.Latency())
			}
		}
	}
	if !foundFlow {
		t.Error("missing flow dependence load -> add")
	}
}

func TestPDGAndSCCs(t *testing.T) {
	_, r := buildSimpleLoop(t)
	l := r.Loops()[0]
	g := r.BuildPDG(l)
	if len(g.Nodes) == 0 {
		t.Fatal("empty PDG")
	}
	sccs := g.SCCs()
	// The induction update (i = i+1) must be in its own cyclic SCC; the
	// load/store chain is acyclic.
	ivOp := l.Induction.Update
	var ivSCC []*Op
	for _, s := range sccs {
		for _, o := range s {
			if o == ivOp {
				ivSCC = s
			}
		}
	}
	if ivSCC == nil {
		t.Fatal("induction op missing from SCCs")
	}
	// Topological ordering: the SCC containing the iv update must come
	// before the SCC containing the store (store depends on iv via flow).
	pos := map[*Op]int{}
	for i, s := range sccs {
		for _, o := range s {
			pos[o] = i
		}
	}
	var store *Op
	for _, o := range g.Nodes {
		if o.Code == isa.STORE {
			store = o
		}
	}
	if pos[ivOp] > pos[store] {
		t.Errorf("SCC order wrong: iv at %d, store at %d", pos[ivOp], pos[store])
	}
	total := 0
	for _, s := range sccs {
		total += len(s)
	}
	if total != len(g.Nodes) {
		t.Errorf("SCCs cover %d ops, want %d", total, len(g.Nodes))
	}
}

func TestControlDeps(t *testing.T) {
	// diamond: entry condbr -> then / else -> join
	p := NewProgram("diamond")
	a := p.Array("a", 4)
	r := p.Region("r")
	entry := r.NewBlock()
	base := entry.AddrOf(a)
	x := entry.Load(a, base, 0)
	c := entry.CmpLTI(x, 5)
	then := r.NewBlock()
	els := r.NewBlock()
	join := r.NewBlock()
	v1 := then.MovI(1)
	then.Store(a, base, 8, v1)
	then.JumpTo(join)
	v2 := els.MovI(2)
	els.Store(a, base, 8, v2)
	els.JumpTo(join)
	join.ExitRegion()
	entry.BranchIf(c, then, els)
	r.Seal()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	cd := r.controlDeps()
	if len(cd[then.ID]) != 1 || cd[then.ID][0] != entry {
		t.Errorf("then control deps = %v, want [entry]", cd[then.ID])
	}
	if len(cd[els.ID]) != 1 || cd[els.ID][0] != entry {
		t.Errorf("else control deps = %v, want [entry]", cd[els.ID])
	}
	if len(cd[join.ID]) != 0 {
		t.Errorf("join control deps = %v, want none", cd[join.ID])
	}
	// PDG: ops in then must have control edges from the cmp.
	g := r.BuildPDG(nil)
	var cmp *Op
	for _, o := range entry.Ops {
		if o.Code == isa.CMPLT {
			cmp = o
		}
	}
	found := false
	for _, e := range g.Succs(cmp) {
		if e.Kind == DepControl && e.Dst.Blk == then {
			found = true
		}
	}
	if !found {
		t.Error("missing control dependence cmp -> then ops")
	}
}

func TestReversePostorder(t *testing.T) {
	_, r := buildSimpleLoop(t)
	rpo := r.ReversePostorder()
	if len(rpo) != 4 {
		t.Fatalf("rpo has %d blocks, want 4", len(rpo))
	}
	if rpo[0] != r.Entry {
		t.Errorf("rpo[0] = %v, want entry", rpo[0])
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b.ID] = i
	}
	if pos[1] > pos[2] { // header before body
		t.Error("header should precede body in RPO")
	}
}

func TestProgramLayout(t *testing.T) {
	p := NewProgram("layout")
	a := p.Array("a", 3)
	b := p.Array("b", 5)
	if a.Base%64 != 0 && a.Base%8 != 0 {
		t.Errorf("array a base %d misaligned", a.Base)
	}
	if b.Base < a.End() {
		t.Errorf("arrays overlap: a ends %d, b starts %d", a.End(), b.Base)
	}
	if b.Base%64 != 0 {
		t.Errorf("array b not line-aligned: %d", b.Base)
	}
	p.SetInit(a, 2, -7)
	if got := p.Init[a.Base+16]; int64(got) != -7 {
		t.Errorf("init = %d, want -7", int64(got))
	}
	if p.ObjectAt(a.Base+8) != a || p.ObjectAt(b.Base) != b || p.ObjectAt(0) != nil {
		t.Error("ObjectAt wrong")
	}
}
