package ir

import (
	"fmt"

	"voltron/internal/isa"
)

// Verify checks structural invariants of the program's IR and returns the
// first violation found, or nil. Workload constructors and compiler
// transforms both run under it in tests.
func (p *Program) Verify() error {
	for _, r := range p.Regions {
		if err := r.Verify(); err != nil {
			return fmt.Errorf("region %q: %w", r.Name, err)
		}
	}
	for i, a := range p.Arrays {
		if a.ID != i {
			return fmt.Errorf("array %q: id %d != index %d", a.Name, a.ID, i)
		}
		if a.Base%8 != 0 || a.Words <= 0 {
			return fmt.Errorf("array %q: bad layout base=%d words=%d", a.Name, a.Base, a.Words)
		}
		for j, b := range p.Arrays {
			if j != i && a.Base < b.End() && b.Base < a.End() {
				return fmt.Errorf("arrays %q and %q overlap", a.Name, b.Name)
			}
		}
	}
	return nil
}

// Verify checks one region.
func (r *Region) Verify() error {
	if r.Entry == nil {
		return fmt.Errorf("no entry block")
	}
	inRegion := map[*Block]bool{}
	for i, b := range r.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d has id %d", i, b.ID)
		}
		inRegion[b] = true
	}
	hasExit := false
	for _, b := range r.Blocks {
		switch b.Kind {
		case Jump:
			if b.Succ[0] == nil || !inRegion[b.Succ[0]] {
				return fmt.Errorf("%v: jump to foreign/nil block", b)
			}
		case CondBr:
			if b.Succ[0] == nil || b.Succ[1] == nil || !inRegion[b.Succ[0]] || !inRegion[b.Succ[1]] {
				return fmt.Errorf("%v: condbr to foreign/nil block", b)
			}
			if b.Cond == NoValue || r.ValueClass(b.Cond) != isa.RegPR {
				return fmt.Errorf("%v: condbr condition must be a predicate value", b)
			}
		case Exit:
			hasExit = true
		}
		for _, o := range b.Ops {
			if err := r.verifyOp(o, b); err != nil {
				return fmt.Errorf("%v: %v: %w", b, o, err)
			}
		}
	}
	if !hasExit {
		return fmt.Errorf("region has no exit block")
	}
	// Every used value must have at least one def.
	defined := map[Value]bool{}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if o.Dst != NoValue {
				defined[o.Dst] = true
			}
		}
	}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			for _, u := range o.Uses() {
				if !defined[u] {
					return fmt.Errorf("%v: %v uses undefined value v%d", b, o, u)
				}
			}
		}
		if b.Kind == CondBr && !defined[b.Cond] {
			return fmt.Errorf("%v: condbr uses undefined value v%d", b, b.Cond)
		}
	}
	return nil
}

func (r *Region) verifyOp(o *Op, b *Block) error {
	if o.Blk != b {
		return fmt.Errorf("op block link broken")
	}
	class := func(v Value) isa.RegClass { return r.ValueClass(v) }
	wantDst := func(c isa.RegClass) error {
		if o.Dst == NoValue || class(o.Dst) != c {
			return fmt.Errorf("dst must be %v", c)
		}
		return nil
	}
	switch o.Code {
	case isa.MOVI:
		return wantDst(isa.RegGPR)
	case isa.FMOVI:
		return wantDst(isa.RegFPR)
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.MOV, isa.FTOI:
		return wantDst(isa.RegGPR)
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMOV, isa.ITOF:
		return wantDst(isa.RegFPR)
	case isa.CMPEQ, isa.CMPNE, isa.CMPLT, isa.CMPLE, isa.CMPGT, isa.CMPGE,
		isa.FCMPLT, isa.PAND, isa.POR, isa.PNOT:
		return wantDst(isa.RegPR)
	case isa.LOAD:
		if err := wantDst(isa.RegGPR); err != nil {
			return err
		}
		return r.verifyAddr(o)
	case isa.FLOAD:
		if err := wantDst(isa.RegFPR); err != nil {
			return err
		}
		return r.verifyAddr(o)
	case isa.STORE, isa.FSTORE:
		if o.Dst != NoValue {
			return fmt.Errorf("store has a destination")
		}
		if o.Args[1] == NoValue {
			return fmt.Errorf("store missing value operand")
		}
		return r.verifyAddr(o)
	case isa.NOP:
		return nil
	}
	return fmt.Errorf("opcode %v not allowed in IR", o.Code)
}

func (r *Region) verifyAddr(o *Op) error {
	if o.Args[0] == NoValue || r.ValueClass(o.Args[0]) != isa.RegGPR {
		return fmt.Errorf("memory base must be a GPR value")
	}
	if o.Obj != UnknownObj && (o.Obj < 0 || o.Obj >= len(r.Program.Arrays)) {
		return fmt.Errorf("bad memory object id %d", o.Obj)
	}
	return nil
}
