package ir

import "voltron/internal/isa"

// Affine address analysis: for a memory operation inside a loop, derive the
// access pattern base + stride*i + offset in terms of the loop's canonical
// induction variable. This is the compiler's stand-in for the
// pointer/dependence analysis of Nystrom et al. that the paper relies on:
// it lets the dependence graph prove independence of same-array references
// and compute loop-carried dependence distances for affine accesses, while
// anything non-affine stays conservatively "may alias".

// AddrExpr is a symbolic address: Arr.Base + Stride*iv + Offset (bytes).
// Known reports whether the derivation succeeded. An expression with
// Stride == 0 is a loop-invariant address.
type AddrExpr struct {
	Known  bool
	Arr    *Array
	Stride int64 // bytes per induction step
	Offset int64 // bytes from array base at iv = 0 (symbolic origin)
	// IVBased reports whether the expression references the induction
	// variable at all (false for pure loop invariants).
	IVBased bool
}

// AffineCtx caches single-def lookups during derivation. Building one walks
// every op in the region, so callers issuing many AddrExprOf/MemDep queries
// against the same (region, loop) should build the context once with
// NewAffineCtx and pass it in rather than passing nil per query.
type AffineCtx struct {
	r    *Region
	l    *Loop // may be nil for straight-line analysis
	iv   Value
	defs map[Value][]*Op
}

// NewAffineCtx builds a reusable derivation context for a loop (which may be
// nil for straight-line analysis).
func (r *Region) NewAffineCtx(l *Loop) *AffineCtx { return r.newAffineCtx(l) }

func (r *Region) newAffineCtx(l *Loop) *AffineCtx {
	c := &AffineCtx{r: r, l: l, defs: map[Value][]*Op{}}
	if l != nil && l.Induction != nil {
		c.iv = l.Induction.Val
	}
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if o.Dst != NoValue {
				c.defs[o.Dst] = append(c.defs[o.Dst], o)
			}
		}
	}
	return c
}

// term is an intermediate linear form a*iv + b.
type term struct {
	ok   bool
	a, b int64
	ivb  bool
}

func (c *AffineCtx) eval(v Value, depth int) term {
	if depth > 16 {
		return term{}
	}
	if v == c.iv && c.iv != NoValue {
		return term{ok: true, a: 1, ivb: true}
	}
	ds := c.defs[v]
	// The value must have a single reaching definition for the linear form
	// to be well-defined; the induction variable itself is handled above.
	var d *Op
	for _, o := range ds {
		if c.l != nil && !c.l.Blocks[o.Blk.ID] {
			// defs outside the loop are fine if they are the only ones
			continue
		}
		if d != nil {
			return term{}
		}
		d = o
	}
	if d == nil {
		if len(ds) == 1 {
			d = ds[0]
		} else {
			return term{}
		}
	} else if len(ds) > 1 {
		// One in-loop def plus out-of-loop init: not a stable linear form
		// unless it is the iv (handled above).
		return term{}
	}
	switch d.Code {
	case isa.MOVI:
		return term{ok: true, b: d.Imm}
	case isa.ADD:
		x := c.eval(d.Args[0], depth+1)
		if !x.ok {
			return term{}
		}
		if d.Args[1] == NoValue {
			return term{ok: true, a: x.a, b: x.b + d.Imm, ivb: x.ivb}
		}
		y := c.eval(d.Args[1], depth+1)
		if !y.ok {
			return term{}
		}
		return term{ok: true, a: x.a + y.a, b: x.b + y.b, ivb: x.ivb || y.ivb}
	case isa.SUB:
		x := c.eval(d.Args[0], depth+1)
		if !x.ok {
			return term{}
		}
		if d.Args[1] == NoValue {
			return term{ok: true, a: x.a, b: x.b - d.Imm, ivb: x.ivb}
		}
		y := c.eval(d.Args[1], depth+1)
		if !y.ok {
			return term{}
		}
		return term{ok: true, a: x.a - y.a, b: x.b - y.b, ivb: x.ivb || y.ivb}
	case isa.SHL:
		x := c.eval(d.Args[0], depth+1)
		if !x.ok || d.Args[1] != NoValue {
			return term{}
		}
		return term{ok: true, a: x.a << uint(d.Imm), b: x.b << uint(d.Imm), ivb: x.ivb}
	case isa.MUL:
		x := c.eval(d.Args[0], depth+1)
		if !x.ok || d.Args[1] != NoValue {
			return term{}
		}
		return term{ok: true, a: x.a * d.Imm, b: x.b * d.Imm, ivb: x.ivb}
	}
	return term{}
}

// AddrExprOf derives the affine address expression of a memory op relative
// to loop l (may be nil: then only loop-invariant constant addresses
// resolve). The result's Offset is absolute when Arr is nil.
func (r *Region) AddrExprOf(o *Op, l *Loop, ctx *AffineCtx) AddrExpr {
	if !o.Code.IsMemory() {
		return AddrExpr{}
	}
	if ctx == nil {
		ctx = r.newAffineCtx(l)
	}
	t := ctx.eval(o.Args[0], 0)
	if !t.ok {
		return AddrExpr{}
	}
	addr0 := t.b + o.Imm
	var arr *Array
	if o.Obj != UnknownObj && o.Obj >= 0 && o.Obj < len(r.Program.Arrays) {
		arr = r.Program.Arrays[o.Obj]
		addr0 -= arr.Base
	}
	// Scale stride by the induction step (iv advances Step per iteration).
	stride := t.a
	if l != nil && l.Induction != nil {
		stride *= l.Induction.Step
	}
	return AddrExpr{Known: true, Arr: arr, Stride: stride, Offset: addr0, IVBased: t.ivb}
}

// MemDepKind classifies the relation between two memory references.
type MemDepKind uint8

// Memory dependence classifications.
const (
	// MemNoDep: proven independent.
	MemNoDep MemDepKind = iota
	// MemIntraDep: may touch the same address within one iteration (or in
	// straight-line code).
	MemIntraDep
	// MemCarriedDep: may touch the same address across iterations.
	MemCarriedDep
	// MemBothDep: may conflict both within and across iterations (the
	// conservative answer for unanalyzable references).
	MemBothDep
)

// MemDep classifies the dependence between memory ops a and b with respect
// to loop l (nil = straight-line: only intra matters). At least one of the
// two must be a store for a dependence to exist.
func (r *Region) MemDep(a, b *Op, l *Loop, ctx *AffineCtx) MemDepKind {
	if !a.Code.IsStore() && !b.Code.IsStore() {
		return MemNoDep
	}
	// Distinct known objects never alias.
	if a.Obj != UnknownObj && b.Obj != UnknownObj && a.Obj != b.Obj {
		return MemNoDep
	}
	if a.Obj == UnknownObj || b.Obj == UnknownObj {
		return MemBothDep
	}
	ea := r.AddrExprOf(a, l, ctx)
	eb := r.AddrExprOf(b, l, ctx)
	if !ea.Known || !eb.Known {
		return MemBothDep
	}
	if ea.Stride == eb.Stride {
		d := eb.Offset - ea.Offset
		if ea.Stride == 0 {
			if d == 0 {
				return MemIntraDep // same invariant address every iteration
			}
			return MemNoDep
		}
		if d == 0 {
			return MemIntraDep
		}
		if d%ea.Stride == 0 {
			return MemCarriedDep
		}
		return MemNoDep
	}
	// Different strides: give the conservative answer unless one is
	// invariant and provably outside the other's footprint — skipped for
	// simplicity; the profiler refines this for statistical DOALL.
	return MemBothDep
}
