package ir

import "voltron/internal/isa"

// Dependence graphs. Two granularities are used by the compiler:
//
//   - Block DFG: precise flow/anti/output/memory dependences among the ops
//     of a single basic block, in program order — the scheduler's input.
//   - Region PDG: a flow-insensitive program dependence graph over all ops
//     of a region (or one loop), with register flow, output, memory and
//     control dependences — the input to DSWP's SCC partitioning and to
//     BUG/eBUG's region-wide operation-to-core assignment.

// DepKind labels a dependence edge.
type DepKind uint8

// Dependence kinds.
const (
	DepFlow DepKind = iota
	DepAnti
	DepOutput
	DepMem
	DepControl
)

func (k DepKind) String() string {
	switch k {
	case DepFlow:
		return "flow"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	case DepMem:
		return "mem"
	case DepControl:
		return "control"
	}
	return "dep?"
}

// DepEdge is one dependence from Src to Dst (Dst depends on Src).
type DepEdge struct {
	Src, Dst *Op
	Kind     DepKind
	// Carried marks loop-carried dependences in a PDG built for a loop.
	Carried bool
	// Latency is the minimum issue distance the edge imposes (producer
	// latency for flow edges; 1 otherwise).
	Latency int
}

// BlockDFG holds the dependence edges among one block's ops.
type BlockDFG struct {
	Block *Block
	Edges []DepEdge
	// Succ/Pred adjacency by op ID for fast scheduling.
	succ map[*Op][]DepEdge
	pred map[*Op][]DepEdge
}

// Succs returns edges leaving o.
func (g *BlockDFG) Succs(o *Op) []DepEdge { return g.succ[o] }

// Preds returns edges entering o.
func (g *BlockDFG) Preds(o *Op) []DepEdge { return g.pred[o] }

// BuildBlockDFG computes the precise dependence graph of one block.
// Memory dependences use the affine analysis (straight-line: intra only).
func (r *Region) BuildBlockDFG(b *Block) *BlockDFG {
	g := &BlockDFG{Block: b, succ: map[*Op][]DepEdge{}, pred: map[*Op][]DepEdge{}}
	add := func(src, dst *Op, k DepKind) {
		lat := 1
		if k == DepFlow {
			lat = src.Code.Latency()
		}
		e := DepEdge{Src: src, Dst: dst, Kind: k, Latency: lat}
		g.Edges = append(g.Edges, e)
		g.succ[src] = append(g.succ[src], e)
		g.pred[dst] = append(g.pred[dst], e)
	}
	lastDef := map[Value]*Op{}
	lastUses := map[Value][]*Op{}
	var mem []*Op
	ctx := r.newAffineCtx(nil)
	for _, o := range b.Ops {
		for _, u := range o.Uses() {
			if d := lastDef[u]; d != nil {
				add(d, o, DepFlow)
			}
			lastUses[u] = append(lastUses[u], o)
		}
		if o.Dst != NoValue {
			if d := lastDef[o.Dst]; d != nil {
				add(d, o, DepOutput)
			}
			for _, u := range lastUses[o.Dst] {
				if u != o {
					add(u, o, DepAnti)
				}
			}
			lastDef[o.Dst] = o
			lastUses[o.Dst] = nil
		}
		if o.Code.IsMemory() {
			for _, m := range mem {
				if r.MemDep(m, o, nil, ctx) != MemNoDep {
					add(m, o, DepMem)
				}
			}
			mem = append(mem, o)
		}
	}
	return g
}

// PDG is the region- or loop-level program dependence graph.
type PDG struct {
	Region *Region
	// Loop is non-nil when the graph covers one loop body.
	Loop  *Loop
	Nodes []*Op
	Edges []DepEdge
	succ  map[*Op][]DepEdge
	pred  map[*Op][]DepEdge
}

// Succs returns edges leaving o.
func (g *PDG) Succs(o *Op) []DepEdge { return g.succ[o] }

// Preds returns edges entering o.
func (g *PDG) Preds(o *Op) []DepEdge { return g.pred[o] }

func (g *PDG) add(src, dst *Op, k DepKind, carried bool) {
	lat := 1
	if k == DepFlow {
		lat = src.Code.Latency()
	}
	e := DepEdge{Src: src, Dst: dst, Kind: k, Carried: carried, Latency: lat}
	g.Edges = append(g.Edges, e)
	g.succ[src] = append(g.succ[src], e)
	g.pred[dst] = append(g.pred[dst], e)
}

// controlDeps computes, for every block, the set of blocks it is
// control-dependent on (Ferrante et al. via postdominators).
func (r *Region) controlDeps() map[int][]*Block {
	pdom := r.PostDominators()
	cd := map[int][]*Block{}
	for _, a := range r.Blocks {
		if a.Kind != CondBr {
			continue
		}
		for _, s := range a.Succs() {
			// Walk the postdominator tree from s up to (exclusive) a's
			// immediate postdominator; every block on the way is
			// control-dependent on a.
			stop := pdom.idom[a.ID]
			for b := s; b != nil && b.ID != stop; {
				cd[b.ID] = append(cd[b.ID], a)
				id := pdom.idom[b.ID]
				if id < 0 {
					break
				}
				b = pdom.blocks[id]
			}
		}
	}
	return cd
}

// BuildPDG computes the program dependence graph over the ops of loop l
// (or the whole region when l is nil).
//
// Register dependences are flow-insensitive: every def reaches every use of
// the same value, and multiple defs of one value are tied together with
// output edges in both directions so they land in one SCC / one core.
// Anti-dependences are intentionally omitted: cross-thread register values
// travel through the operand network's queues, which rename per message —
// the property DSWP relies on. Memory dependences come from the affine
// analysis; control dependences from postdominance frontiers, expressed as
// edges from the op defining the controlling branch condition.
func (r *Region) BuildPDG(l *Loop) *PDG {
	g := &PDG{Region: r, Loop: l, succ: map[*Op][]DepEdge{}, pred: map[*Op][]DepEdge{}}
	inScope := func(b *Block) bool { return l == nil || l.Blocks[b.ID] }
	defs := map[Value][]*Op{}
	for _, b := range r.Blocks {
		if !inScope(b) {
			continue
		}
		for _, o := range b.Ops {
			g.Nodes = append(g.Nodes, o)
			if o.Dst != NoValue {
				defs[o.Dst] = append(defs[o.Dst], o)
			}
		}
	}
	opInScope := map[*Op]bool{}
	for _, o := range g.Nodes {
		opInScope[o] = true
	}
	// Register flow and output dependences.
	for _, b := range r.Blocks {
		if !inScope(b) {
			continue
		}
		for _, o := range b.Ops {
			for _, u := range o.Uses() {
				for _, d := range defs[u] {
					if d != o {
						g.add(d, o, DepFlow, l != nil)
					} else {
						// Self recurrence (i = i+1): a carried self edge.
						g.add(d, o, DepFlow, true)
					}
				}
			}
		}
	}
	for _, ds := range defs {
		for i := 0; i < len(ds); i++ {
			for j := i + 1; j < len(ds); j++ {
				g.add(ds[i], ds[j], DepOutput, l != nil)
				g.add(ds[j], ds[i], DepOutput, l != nil)
			}
		}
	}
	// Memory dependences.
	ctx := r.newAffineCtx(l)
	var mem []*Op
	for _, o := range g.Nodes {
		if o.Code.IsMemory() {
			mem = append(mem, o)
		}
	}
	for i, a := range mem {
		for _, bop := range mem[i+1:] {
			switch r.MemDep(a, bop, l, ctx) {
			case MemNoDep:
			case MemIntraDep:
				g.add(a, bop, DepMem, false)
			case MemCarriedDep:
				g.add(a, bop, DepMem, true)
				g.add(bop, a, DepMem, true)
			case MemBothDep:
				g.add(a, bop, DepMem, false)
				if l != nil {
					g.add(bop, a, DepMem, true)
				}
			}
		}
	}
	// Control dependences: each op depends on the condition definition of
	// every block its own block is control-dependent on.
	cd := r.controlDeps()
	for _, b := range r.Blocks {
		if !inScope(b) {
			continue
		}
		for _, ctrl := range cd[b.ID] {
			if !inScope(ctrl) || ctrl.Cond == NoValue {
				continue
			}
			for _, d := range defs[ctrl.Cond] {
				for _, o := range b.Ops {
					if d != o {
						g.add(d, o, DepControl, false)
					}
				}
			}
		}
	}
	return g
}

// SCCs computes strongly connected components of the PDG (Tarjan),
// considering carried edges — recurrences collapse into single components.
// Components are returned in a topological order of the condensed DAG
// (sources first).
func (g *PDG) SCCs() [][]*Op {
	index := map[*Op]int{}
	low := map[*Op]int{}
	onStack := map[*Op]bool{}
	var stack []*Op
	var sccs [][]*Op
	next := 0
	var strong func(v *Op)
	strong = func(v *Op) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range g.succ[v] {
			w := e.Dst
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*Op
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range g.Nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	// Tarjan emits SCCs in reverse topological order; reverse for sources
	// first.
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	return sccs
}

// ValueClassOfOp returns the register class an op's destination uses,
// falling back to the region's value table.
func (r *Region) ValueClassOfOp(o *Op) isa.RegClass {
	if o.Dst == NoValue {
		return isa.RegNone
	}
	return r.ValueClass(o.Dst)
}
