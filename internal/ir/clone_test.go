package ir

import (
	"testing"

	"voltron/internal/isa"
)

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	_, r := buildSimpleLoop(t)
	clone, opMap := r.Clone()
	if err := clone.Verify(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if len(clone.Blocks) != len(r.Blocks) {
		t.Fatalf("clone has %d blocks, want %d", len(clone.Blocks), len(r.Blocks))
	}
	for i, b := range r.Blocks {
		cb := clone.Blocks[i]
		if cb == b {
			t.Fatal("block not copied")
		}
		if cb.Kind != b.Kind || cb.Cond != b.Cond || len(cb.Ops) != len(b.Ops) {
			t.Fatalf("block %d shape differs", i)
		}
		for j, o := range b.Ops {
			co := cb.Ops[j]
			if co == o {
				t.Fatal("op not copied")
			}
			if opMap[o] != co {
				t.Fatal("op map inconsistent with order")
			}
			if co.Code != o.Code || co.Dst != o.Dst || co.Args != o.Args ||
				co.Imm != o.Imm || co.Obj != o.Obj {
				t.Fatalf("op %v cloned as %v", o, co)
			}
			if co.Blk != cb {
				t.Fatal("cloned op block link wrong")
			}
		}
	}
	// Successor edges point at clone blocks, not originals.
	for _, cb := range clone.Blocks {
		for _, s := range cb.Succs() {
			if s.Region != clone {
				t.Fatal("clone successor points into the original region")
			}
		}
	}
	// Mutating the clone leaves the original intact.
	clone.Blocks[0].Ops[0].Imm = 999
	if r.Blocks[0].Ops[0].Imm == 999 {
		t.Fatal("clone shares op storage with the original")
	}
}

func TestCloneValueTableIndependent(t *testing.T) {
	_, r := buildSimpleLoop(t)
	clone, _ := r.Clone()
	before := r.NumValues()
	clone.NewValue(isa.RegGPR)
	if r.NumValues() != before {
		t.Error("allocating a value in the clone grew the original's table")
	}
	if clone.ValueClass(1) != r.ValueClass(1) {
		t.Error("value classes not copied")
	}
}

func TestRemoveOp(t *testing.T) {
	p := NewProgram("rm")
	a := p.Array("a", 4)
	r := p.Region("r")
	b := r.NewBlock()
	base := b.AddrOf(a)
	v := b.MovI(5)
	st := b.Store(a, base, 0, v)
	b.ExitRegion()
	r.Seal()
	n := len(b.Ops)
	b.RemoveOp(st)
	if len(b.Ops) != n-1 {
		t.Fatalf("ops = %d, want %d", len(b.Ops), n-1)
	}
	for _, o := range b.Ops {
		if o == st {
			t.Fatal("op still present")
		}
	}
	// Removing a missing op is a no-op.
	b.RemoveOp(st)
	if len(b.Ops) != n-1 {
		t.Fatal("double remove changed the block")
	}
}
