package ir

// LoopSpec configures BuildCountedLoop.
type LoopSpec struct {
	Start int64
	Limit int64 // iteration bound: i runs Start, Start+Step, ... while i < Limit
	Step  int64 // must be > 0
	// LimitVal, when non-zero, overrides Limit with a runtime value.
	LimitVal Value
}

// BuildCountedLoop appends the canonical counted-loop shape to the region:
//
//	pre:    i = Start; jump header
//	header: p = i < Limit; condbr p -> body, after
//	body:   bodyFn(body, i); i += Step; jump header
//	after:  (returned)
//
// The shape matches what the induction-variable detector recognizes, like
// the canonical loops a C frontend would emit. bodyFn may create additional
// blocks, returning the block that should receive the increment and
// back-edge (return its argument for a single-block body).
func BuildCountedLoop(pre *Block, spec LoopSpec, bodyFn func(body *Block, i Value) *Block) (after *Block) {
	r := pre.Region
	i := pre.MovI(spec.Start)
	header := r.NewBlock()
	body := r.NewBlock()
	pre.JumpTo(header)
	var p Value
	if spec.LimitVal != NoValue {
		p = header.CmpLT(i, spec.LimitVal)
	} else {
		p = header.CmpLTI(i, spec.Limit)
	}
	last := bodyFn(body, i)
	last.AddTo(i, spec.Step)
	last.JumpTo(header)
	after = r.NewBlock()
	header.BranchIf(p, body, after)
	return after
}
