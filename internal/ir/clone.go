package ir

// Clone deep-copies a region: blocks, ops and the value table. The clone
// shares the program's data layout but is not appended to the program's
// region list (it is a compiler-internal artifact, e.g. a per-core chunk of
// a DOALL loop). The returned map relates original ops to their copies so
// transforms can patch the clone.
func (r *Region) Clone() (*Region, map[*Op]*Op) {
	c := &Region{
		ID:      r.ID,
		Name:    r.Name,
		Program: r.Program,
		vals:    append([]valInfo(nil), r.vals...),
		nextOp:  r.nextOp,
	}
	opMap := map[*Op]*Op{}
	blkMap := map[*Block]*Block{}
	for _, b := range r.Blocks {
		nb := c.NewBlock()
		blkMap[b] = nb
	}
	for _, b := range r.Blocks {
		nb := blkMap[b]
		nb.Kind = b.Kind
		nb.Cond = b.Cond
		for i, s := range b.Succ {
			if s != nil {
				nb.Succ[i] = blkMap[s]
			}
		}
		for _, o := range b.Ops {
			no := &Op{
				ID:   o.ID,
				Code: o.Code,
				Dst:  o.Dst,
				Args: o.Args,
				Imm:  o.Imm,
				F:    o.F,
				Obj:  o.Obj,
				Blk:  nb,
			}
			nb.Ops = append(nb.Ops, no)
			opMap[o] = no
		}
	}
	if r.Entry != nil {
		c.Entry = blkMap[r.Entry]
	}
	c.Seal()
	return c, opMap
}

// RemoveOp deletes an op from its block (used by transforms like dropping
// worker-side stores when chunking a DOALL loop's prologue).
func (b *Block) RemoveOp(o *Op) {
	for i, x := range b.Ops {
		if x == o {
			b.Ops = append(b.Ops[:i], b.Ops[i+1:]...)
			return
		}
	}
}
