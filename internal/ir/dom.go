package ir

// Dominator analysis using the Cooper–Harvey–Kennedy iterative algorithm
// over a reverse-postorder numbering. Postdominators are computed by running
// the same algorithm on the reversed CFG with a virtual exit joining all
// Exit blocks.

// DomTree holds immediate (post)dominator information for a region.
type DomTree struct {
	// idom[b.ID] is the immediate dominator block id, or -1 for the root.
	idom []int
	// rpoNum[b.ID] is the block's reverse-postorder number.
	rpoNum []int
	blocks []*Block
	post   bool
}

// ReversePostorder returns the region's blocks in reverse postorder from the
// entry. Unreachable blocks are excluded.
func (r *Region) ReversePostorder() []*Block {
	seen := make([]bool, len(r.Blocks))
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if r.Entry != nil {
		dfs(r.Entry)
	}
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dominators computes the dominator tree of the region.
func (r *Region) Dominators() *DomTree {
	rpo := r.ReversePostorder()
	return buildDomTree(r, rpo, func(b *Block) []*Block { return b.Preds }, false)
}

// PostDominators computes the postdominator tree. Blocks from which no exit
// is reachable (infinite loops; not produced by our builders) postdominate
// nothing and report -1.
func (r *Region) PostDominators() *DomTree {
	// Build postorder of the reversed graph: DFS from each Exit block over
	// predecessor edges.
	seen := make([]bool, len(r.Blocks))
	var order []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, p := range b.Preds {
			if !seen[p.ID] {
				dfs(p)
			}
		}
		order = append(order, b)
	}
	for _, b := range r.Blocks {
		if b.Kind == Exit && !seen[b.ID] {
			dfs(b)
		}
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return buildDomTree(r, order, func(b *Block) []*Block { return b.Succs() }, true)
}

// buildDomTree runs CHK over the supplied order, where preds() yields the
// incoming edges in the (possibly reversed) graph. Multiple roots (for
// postdominators with several exits) are all treated as tree roots.
func buildDomTree(r *Region, order []*Block, preds func(*Block) []*Block, post bool) *DomTree {
	t := &DomTree{
		idom:   make([]int, len(r.Blocks)),
		rpoNum: make([]int, len(r.Blocks)),
		blocks: make([]*Block, len(r.Blocks)),
		post:   post,
	}
	for i := range t.idom {
		t.idom[i] = -2 // unreachable
		t.rpoNum[i] = -1
	}
	for i, b := range order {
		t.rpoNum[b.ID] = i
		t.blocks[b.ID] = b
	}
	isRoot := func(b *Block) bool {
		if post {
			return b.Kind == Exit
		}
		return b == r.Entry
	}
	for _, b := range order {
		if isRoot(b) {
			t.idom[b.ID] = -1
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if isRoot(b) {
				continue
			}
			newIdom := -2
			for _, p := range preds(b) {
				if t.rpoNum[p.ID] < 0 || t.idom[p.ID] == -2 {
					continue // not yet processed / unreachable
				}
				if newIdom == -2 {
					newIdom = p.ID
				} else {
					newIdom = t.intersect(newIdom, p.ID)
				}
			}
			if newIdom != -2 && t.idom[b.ID] != newIdom {
				t.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *DomTree) intersect(a, b int) int {
	for a != b {
		for t.rpoNum[a] > t.rpoNum[b] {
			a = t.idom[a]
			if a < 0 {
				return b
			}
		}
		for t.rpoNum[b] > t.rpoNum[a] {
			b = t.idom[b]
			if b < 0 {
				return a
			}
		}
	}
	return a
}

// IDom returns the immediate dominator of b, or nil for the root or
// unreachable blocks.
func (t *DomTree) IDom(b *Block) *Block {
	id := t.idom[b.ID]
	if id < 0 {
		return nil
	}
	return t.blocks[id]
}

// Dominates reports whether a dominates b (reflexive).
func (t *DomTree) Dominates(a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		id := t.idom[b.ID]
		if id < 0 {
			return false
		}
		b = t.blocks[id]
	}
}
