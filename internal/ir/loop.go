package ir

import "voltron/internal/isa"

// Loop describes one natural loop found in a region.
type Loop struct {
	Header *Block
	// Latches are the blocks with a back edge to the header.
	Latches []*Block
	// Blocks is the loop body (including the header), keyed by block id.
	Blocks map[int]bool
	// Exits are the blocks outside the loop that loop blocks branch to.
	Exits []*Block
	// Parent is the innermost enclosing loop, if any.
	Parent *Loop
	// Induction describes the canonical counter when detected.
	Induction *InductionVar
	// Reductions lists detected accumulator recurrences.
	Reductions []*Reduction
}

// InductionVar describes a canonical counter: a value updated exactly once
// per iteration as v = v + Step (constant step) and tested in the header
// against a loop-invariant bound.
type InductionVar struct {
	Val  Value
	Step int64
	// Update is the op performing the increment.
	Update *Op
	// InitOp is the op initializing the counter before the loop (a MOVI in
	// a block dominating the header outside the loop), if found.
	InitOp *Op
	// CmpOp is the header comparison controlling loop exit.
	CmpOp *Op
	// Limit is the loop-invariant bound value (NoValue if the bound is the
	// comparison's immediate).
	Limit Value
	// LimitImm holds the bound when it is an immediate.
	LimitImm int64
	// ExitOnFalse reports whether the loop continues while CmpOp is true
	// (the canonical while (i < n) shape).
	ExitOnFalse bool
}

// Reduction describes an accumulator recurrence acc = acc OP x where acc is
// not otherwise redefined in the loop; such recurrences are eliminated by
// accumulator expansion when parallelizing DOALL loops.
type Reduction struct {
	Acc    Value
	Op     *Op
	Kind   isa.Opcode // ADD or FADD
	IsFMul bool
}

// Loops finds all natural loops in the region, with nesting. Loops sharing
// a header are merged (multiple latches).
func (r *Region) Loops() []*Loop {
	dom := r.Dominators()
	byHeader := map[int]*Loop{}
	var loops []*Loop
	for _, b := range r.Blocks {
		for _, s := range b.Succs() {
			if dom.rpoNum[s.ID] >= 0 && dom.rpoNum[b.ID] >= 0 && dom.Dominates(s, b) {
				// back edge b -> s
				l := byHeader[s.ID]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s.ID: true}}
					byHeader[s.ID] = l
					loops = append(loops, l)
				}
				l.Latches = append(l.Latches, b)
				// Natural loop: all blocks that reach the latch without
				// passing through the header.
				stack := []*Block{b}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[n.ID] {
						continue
					}
					l.Blocks[n.ID] = true
					for _, p := range n.Preds {
						if !l.Blocks[p.ID] {
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Exits and nesting.
	for _, l := range loops {
		seen := map[int]bool{}
		for id := range l.Blocks {
			for _, s := range r.Blocks[id].Succs() {
				if !l.Blocks[s.ID] && !seen[s.ID] {
					seen[s.ID] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
	}
	for _, l := range loops {
		// Parent: the smallest other loop strictly containing this header.
		for _, m := range loops {
			if m == l || !m.Blocks[l.Header.ID] || len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range loops {
		r.detectInduction(l, dom)
		r.detectReductions(l)
	}
	return loops
}

// defsOf returns all ops in the region defining v.
func (r *Region) defsOf(v Value) []*Op {
	var ds []*Op
	for _, b := range r.Blocks {
		for _, o := range b.Ops {
			if o.Dst == v {
				ds = append(ds, o)
			}
		}
	}
	return ds
}

// loopInvariant reports whether v has no defs inside the loop.
func (r *Region) loopInvariant(l *Loop, v Value) bool {
	for _, d := range r.defsOf(v) {
		if l.Blocks[d.Blk.ID] {
			return false
		}
	}
	return true
}

// detectInduction looks for the canonical counter pattern: exactly one def
// of v inside the loop, of the form v = ADD v, #step, in a block that
// dominates all latches; the header terminator is a CondBr on a comparison
// of v against a loop-invariant bound.
func (r *Region) detectInduction(l *Loop, dom *DomTree) {
	h := l.Header
	if h.Kind != CondBr || h.Cond == NoValue {
		return
	}
	// Find the comparison defining the header condition, inside the loop.
	var cmp *Op
	for _, d := range r.defsOf(h.Cond) {
		if l.Blocks[d.Blk.ID] {
			if cmp != nil {
				return // multiple defs; not canonical
			}
			cmp = d
		}
	}
	if cmp == nil || !cmp.Code.IsCompare() {
		return
	}
	// The counter is the compared value with an in-loop increment.
	tryCounter := func(v Value) *InductionVar {
		if v == NoValue {
			return nil
		}
		var upd *Op
		for _, d := range r.defsOf(v) {
			if !l.Blocks[d.Blk.ID] {
				continue
			}
			if d == cmp {
				continue
			}
			if upd != nil {
				return nil
			}
			upd = d
		}
		if upd == nil || upd.Code != isa.ADD && upd.Code != isa.SUB {
			return nil
		}
		if upd.Args[0] != v || upd.Args[1] != NoValue {
			return nil
		}
		// The update must run exactly once per iteration: its block must
		// dominate every latch.
		for _, latch := range l.Latches {
			if !dom.Dominates(upd.Blk, latch) {
				return nil
			}
		}
		step := upd.Imm
		if upd.Code == isa.SUB {
			step = -step
		}
		iv := &InductionVar{Val: v, Step: step, Update: upd, CmpOp: cmp}
		// Bound: the other comparison operand, loop-invariant, or immediate.
		if cmp.Args[0] == v {
			if cmp.Args[1] == NoValue {
				iv.LimitImm = cmp.Imm
			} else if r.loopInvariant(l, cmp.Args[1]) {
				iv.Limit = cmp.Args[1]
			} else {
				return nil
			}
		} else if cmp.Args[1] == v && r.loopInvariant(l, cmp.Args[0]) {
			iv.Limit = cmp.Args[0]
		} else {
			return nil
		}
		// Taken successor inside the loop means "continue while true".
		iv.ExitOnFalse = l.Blocks[h.Succ[0].ID]
		// Initial value: a MOVI def outside the loop.
		for _, d := range r.defsOf(v) {
			if !l.Blocks[d.Blk.ID] && d.Code == isa.MOVI {
				iv.InitOp = d
			}
		}
		return iv
	}
	if iv := tryCounter(cmp.Args[0]); iv != nil {
		l.Induction = iv
		return
	}
	if iv := tryCounter(cmp.Args[1]); iv != nil {
		l.Induction = iv
	}
}

// detectReductions finds accumulator recurrences acc = acc OP x (OP in
// {ADD, FADD, FMUL, MUL}) where acc has exactly one in-loop def and x is not
// acc itself.
func (r *Region) detectReductions(l *Loop) {
	for id := range l.Blocks {
		for _, o := range r.Blocks[id].Ops {
			switch o.Code {
			case isa.ADD, isa.FADD, isa.MUL, isa.FMUL:
			default:
				continue
			}
			if o.Dst == NoValue || o.Args[0] != o.Dst || o.Args[1] == o.Dst {
				continue
			}
			if l.Induction != nil && o == l.Induction.Update {
				continue
			}
			// Exactly one def inside the loop, and acc is not read by any
			// other in-loop op (a true reduction: only the recurrence).
			single := true
			for _, d := range r.defsOf(o.Dst) {
				if d != o && l.Blocks[d.Blk.ID] {
					single = false
				}
			}
			if !single {
				continue
			}
			usedElsewhere := false
			for bid := range l.Blocks {
				for _, u := range r.Blocks[bid].Ops {
					if u == o {
						continue
					}
					for _, a := range u.Uses() {
						if a == o.Dst {
							usedElsewhere = true
						}
					}
				}
				if r.Blocks[bid].Kind == CondBr && r.Blocks[bid].Cond == o.Dst {
					usedElsewhere = true
				}
			}
			if usedElsewhere {
				continue
			}
			l.Reductions = append(l.Reductions, &Reduction{
				Acc: o.Dst, Op: o, Kind: o.Code, IsFMul: o.Code == isa.FMUL,
			})
		}
	}
}
