package ir

import (
	"math"

	"voltron/internal/isa"
)

func f2u(f float64) uint64 { return math.Float64bits(f) }

// U2F converts a memory word to float64 (exported for interpreters/dumps).
func U2F(u uint64) float64 { return math.Float64frombits(u) }

// F2U converts a float64 to its memory word representation.
func F2U(f float64) uint64 { return math.Float64bits(f) }

// emit appends a finished op to the block.
func (b *Block) emit(o *Op) *Op {
	o.Blk = b
	b.Ops = append(b.Ops, o)
	return o
}

func (b *Block) binop(code isa.Opcode, class isa.RegClass, x, y Value) Value {
	o := b.Region.NewOp(code)
	o.Args[0], o.Args[1] = x, y
	o.Dst = b.Region.NewValue(class)
	b.emit(o)
	return o.Dst
}

func (b *Block) binopImm(code isa.Opcode, class isa.RegClass, x Value, imm int64) Value {
	o := b.Region.NewOp(code)
	o.Args[0] = x
	o.Imm = imm
	o.Dst = b.Region.NewValue(class)
	b.emit(o)
	return o.Dst
}

// BinOp emits dst = code(x, y) into a fresh value of the given class; the
// generic form for frontends that pick opcodes from a table.
func (b *Block) BinOp(code isa.Opcode, class isa.RegClass, x, y Value) Value {
	return b.binop(code, class, x, y)
}

// BinOpImm emits dst = code(x, #imm) into a fresh value of the given class.
func (b *Block) BinOpImm(code isa.Opcode, class isa.RegClass, x Value, imm int64) Value {
	return b.binopImm(code, class, x, imm)
}

// MovI materializes an integer constant.
func (b *Block) MovI(c int64) Value {
	o := b.Region.NewOp(isa.MOVI)
	o.Imm = c
	o.Dst = b.Region.NewValue(isa.RegGPR)
	b.emit(o)
	return o.Dst
}

// MovF materializes a float constant.
func (b *Block) MovF(c float64) Value {
	o := b.Region.NewOp(isa.FMOVI)
	o.F = c
	o.Dst = b.Region.NewValue(isa.RegFPR)
	b.emit(o)
	return o.Dst
}

// Integer arithmetic over two values.
func (b *Block) Add(x, y Value) Value { return b.binop(isa.ADD, isa.RegGPR, x, y) }
func (b *Block) Sub(x, y Value) Value { return b.binop(isa.SUB, isa.RegGPR, x, y) }
func (b *Block) Mul(x, y Value) Value { return b.binop(isa.MUL, isa.RegGPR, x, y) }
func (b *Block) Div(x, y Value) Value { return b.binop(isa.DIV, isa.RegGPR, x, y) }
func (b *Block) Rem(x, y Value) Value { return b.binop(isa.REM, isa.RegGPR, x, y) }
func (b *Block) And(x, y Value) Value { return b.binop(isa.AND, isa.RegGPR, x, y) }
func (b *Block) Or(x, y Value) Value  { return b.binop(isa.OR, isa.RegGPR, x, y) }
func (b *Block) Xor(x, y Value) Value { return b.binop(isa.XOR, isa.RegGPR, x, y) }
func (b *Block) Shl(x, y Value) Value { return b.binop(isa.SHL, isa.RegGPR, x, y) }
func (b *Block) Shr(x, y Value) Value { return b.binop(isa.SHR, isa.RegGPR, x, y) }

// Immediate forms (second operand is a constant).
func (b *Block) AddI(x Value, c int64) Value { return b.binopImm(isa.ADD, isa.RegGPR, x, c) }
func (b *Block) SubI(x Value, c int64) Value { return b.binopImm(isa.SUB, isa.RegGPR, x, c) }
func (b *Block) MulI(x Value, c int64) Value { return b.binopImm(isa.MUL, isa.RegGPR, x, c) }
func (b *Block) ShlI(x Value, c int64) Value { return b.binopImm(isa.SHL, isa.RegGPR, x, c) }
func (b *Block) AndI(x Value, c int64) Value { return b.binopImm(isa.AND, isa.RegGPR, x, c) }
func (b *Block) ShrI(x Value, c int64) Value { return b.binopImm(isa.SHR, isa.RegGPR, x, c) }
func (b *Block) OrI(x Value, c int64) Value  { return b.binopImm(isa.OR, isa.RegGPR, x, c) }
func (b *Block) XorI(x Value, c int64) Value { return b.binopImm(isa.XOR, isa.RegGPR, x, c) }

// AddTo re-assigns dst = dst + c; used for induction variables. It emits an
// ADD whose destination is the existing value dst rather than a fresh one.
func (b *Block) AddTo(dst Value, c int64) {
	o := b.Region.NewOp(isa.ADD)
	o.Args[0] = dst
	o.Imm = c
	o.Dst = dst
	b.emit(o)
}

// Accum re-assigns acc = acc OP x (for reductions).
func (b *Block) Accum(code isa.Opcode, acc, x Value) {
	o := b.Region.NewOp(code)
	o.Args[0], o.Args[1] = acc, x
	o.Dst = acc
	b.emit(o)
}

// Floating point arithmetic.
func (b *Block) FAdd(x, y Value) Value { return b.binop(isa.FADD, isa.RegFPR, x, y) }
func (b *Block) FSub(x, y Value) Value { return b.binop(isa.FSUB, isa.RegFPR, x, y) }
func (b *Block) FMul(x, y Value) Value { return b.binop(isa.FMUL, isa.RegFPR, x, y) }
func (b *Block) FDiv(x, y Value) Value { return b.binop(isa.FDIV, isa.RegFPR, x, y) }

// IToF converts an integer value to float.
func (b *Block) IToF(x Value) Value { return b.binopImm(isa.ITOF, isa.RegFPR, x, 0) }

// FToI converts a float value to integer (truncating).
func (b *Block) FToI(x Value) Value { return b.binopImm(isa.FTOI, isa.RegGPR, x, 0) }

// Comparisons produce predicate values.
func (b *Block) CmpEQ(x, y Value) Value  { return b.binop(isa.CMPEQ, isa.RegPR, x, y) }
func (b *Block) CmpNE(x, y Value) Value  { return b.binop(isa.CMPNE, isa.RegPR, x, y) }
func (b *Block) CmpLT(x, y Value) Value  { return b.binop(isa.CMPLT, isa.RegPR, x, y) }
func (b *Block) CmpLE(x, y Value) Value  { return b.binop(isa.CMPLE, isa.RegPR, x, y) }
func (b *Block) CmpGT(x, y Value) Value  { return b.binop(isa.CMPGT, isa.RegPR, x, y) }
func (b *Block) CmpGE(x, y Value) Value  { return b.binop(isa.CMPGE, isa.RegPR, x, y) }
func (b *Block) FCmpLT(x, y Value) Value { return b.binop(isa.FCMPLT, isa.RegPR, x, y) }

// CmpLTI compares against an integer constant.
func (b *Block) CmpLTI(x Value, c int64) Value { return b.binopImm(isa.CMPLT, isa.RegPR, x, c) }

// CmpI compares against an integer constant with any compare opcode.
func (b *Block) CmpI(code isa.Opcode, x Value, c int64) Value {
	return b.binopImm(code, isa.RegPR, x, c)
}

// DivI and RemI divide by an integer constant (the machine's division by
// zero yields zero, so a zero constant is legal).
func (b *Block) DivI(x Value, c int64) Value { return b.binopImm(isa.DIV, isa.RegGPR, x, c) }
func (b *Block) RemI(x Value, c int64) Value { return b.binopImm(isa.REM, isa.RegGPR, x, c) }

// Predicate logic.
func (b *Block) PAnd(x, y Value) Value { return b.binop(isa.PAND, isa.RegPR, x, y) }
func (b *Block) POr(x, y Value) Value  { return b.binop(isa.POR, isa.RegPR, x, y) }
func (b *Block) PNot(x Value) Value    { return b.binopImm(isa.PNOT, isa.RegPR, x, 0) }

// Load reads the word at [base+off] from a known array.
func (b *Block) Load(arr *Array, base Value, off int64) Value {
	o := b.Region.NewOp(isa.LOAD)
	o.Args[0] = base
	o.Imm = off
	o.Dst = b.Region.NewValue(isa.RegGPR)
	if arr != nil {
		o.Obj = arr.ID
	}
	b.emit(o)
	return o.Dst
}

// FLoad reads a float word at [base+off].
func (b *Block) FLoad(arr *Array, base Value, off int64) Value {
	o := b.Region.NewOp(isa.FLOAD)
	o.Args[0] = base
	o.Imm = off
	o.Dst = b.Region.NewValue(isa.RegFPR)
	if arr != nil {
		o.Obj = arr.ID
	}
	b.emit(o)
	return o.Dst
}

// Store writes val to [base+off].
func (b *Block) Store(arr *Array, base Value, off int64, val Value) *Op {
	o := b.Region.NewOp(isa.STORE)
	o.Args[0] = base
	o.Args[1] = val
	o.Imm = off
	if arr != nil {
		o.Obj = arr.ID
	}
	return b.emit(o)
}

// FStore writes a float val to [base+off].
func (b *Block) FStore(arr *Array, base Value, off int64, val Value) *Op {
	o := b.Region.NewOp(isa.FSTORE)
	o.Args[0] = base
	o.Args[1] = val
	o.Imm = off
	if arr != nil {
		o.Obj = arr.ID
	}
	return b.emit(o)
}

// AddrOf materializes the base address of an array.
func (b *Block) AddrOf(arr *Array) Value {
	v := b.MovI(arr.Base)
	return v
}

// Terminator helpers.

// JumpTo sets the block terminator to an unconditional jump.
func (b *Block) JumpTo(t *Block) {
	b.Kind = Jump
	b.Succ[0] = t
}

// BranchIf sets the terminator to a conditional branch: taken if cond.
func (b *Block) BranchIf(cond Value, taken, fall *Block) {
	b.Kind = CondBr
	b.Cond = cond
	b.Succ[0], b.Succ[1] = taken, fall
}

// ExitRegion marks the block as a region exit.
func (b *Block) ExitRegion() {
	b.Kind = Exit
	b.Succ[0], b.Succ[1] = nil, nil
}

// Non-SSA reassignment forms. Frontends model mutable variables as one
// value per variable and re-target it on every assignment (the same shape
// AddTo and Accum emit for counters and accumulators); these helpers are
// the general version for dst = code(x, y).

// Reassign emits dst = code(x, y) into an existing destination value.
func (b *Block) Reassign(code isa.Opcode, dst, x, y Value) *Op {
	o := b.Region.NewOp(code)
	o.Args[0], o.Args[1] = x, y
	o.Dst = dst
	b.emit(o)
	return o
}

// ReassignImm emits dst = code(x, #imm) into an existing destination.
func (b *Block) ReassignImm(code isa.Opcode, dst, x Value, imm int64) *Op {
	o := b.Region.NewOp(code)
	o.Args[0] = x
	o.Imm = imm
	o.Dst = dst
	b.emit(o)
	return o
}

// SetI emits dst = c (a MOVI re-targeting an existing value).
func (b *Block) SetI(dst Value, c int64) {
	o := b.Region.NewOp(isa.MOVI)
	o.Imm = c
	o.Dst = dst
	b.emit(o)
}

// SetF emits dst = c (an FMOVI re-targeting an existing value).
func (b *Block) SetF(dst Value, c float64) {
	o := b.Region.NewOp(isa.FMOVI)
	o.F = c
	o.Dst = dst
	b.emit(o)
}

// LoadInto re-targets a load at [base+off] to an existing destination.
func (b *Block) LoadInto(code isa.Opcode, dst Value, arr *Array, base Value, off int64) *Op {
	o := b.Region.NewOp(code)
	o.Args[0] = base
	o.Imm = off
	o.Dst = dst
	if arr != nil {
		o.Obj = arr.ID
	}
	b.emit(o)
	return o
}
