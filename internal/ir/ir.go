// Package ir defines the compiler intermediate representation that Voltron
// workloads are authored in and that every compiler pass operates on: a
// program is a data layout (arrays in a flat word-addressed memory) plus a
// sequence of regions, each region a control-flow graph of basic blocks over
// typed virtual registers.
//
// The IR deliberately mirrors the HPL-PD operation set (package isa) so that
// lowering to per-core VLIW code is a partitioning/scheduling problem, not a
// translation problem — exactly the part of the toolchain the paper's
// contribution lives in.
package ir

import (
	"fmt"
	"sync"

	"voltron/internal/isa"
)

// Value names a virtual register within a region. The zero Value is "no
// value". Values are typed by register class (GPR/FPR/PR), recorded in the
// owning region. Values are not SSA: a value may be assigned by several
// operations (e.g. a loop induction variable).
type Value int

// NoValue is the absent operand.
const NoValue Value = 0

// UnknownObj marks a memory operation whose target object static analysis
// cannot identify (a pointer access); it may alias with every object.
const UnknownObj = -1

// Op is one IR operation. Operand conventions follow isa.Inst: memory ops
// address [Args[0] + Imm]; stores pass the stored value in Args[1]; compares
// write a PR-class value.
type Op struct {
	ID   int
	Code isa.Opcode
	Dst  Value
	Args [2]Value
	Imm  int64
	F    float64
	// Obj identifies the memory object (array) a LOAD/STORE accesses when
	// the compiler's pointer analysis can resolve it, or UnknownObj.
	Obj int
	// Blk is the basic block containing the op.
	Blk *Block
}

// Uses returns the values the op reads.
func (o *Op) Uses() []Value {
	var vs []Value
	for _, a := range o.Args {
		if a != NoValue {
			vs = append(vs, a)
		}
	}
	return vs
}

// String renders the op for dumps and error messages.
func (o *Op) String() string {
	s := fmt.Sprintf("#%d %s", o.ID, o.Code)
	if o.Dst != NoValue {
		s += fmt.Sprintf(" v%d =", o.Dst)
	}
	for _, a := range o.Args {
		if a != NoValue {
			s += fmt.Sprintf(" v%d", a)
		}
	}
	if o.Code == isa.MOVI || o.Code.IsMemory() {
		s += fmt.Sprintf(" imm=%d", o.Imm)
	}
	return s
}

// TermKind classifies a block terminator.
type TermKind uint8

// Terminator kinds.
const (
	// Jump transfers unconditionally to Succ[0].
	Jump TermKind = iota
	// CondBr transfers to Succ[0] if Cond is true, else to Succ[1].
	CondBr
	// Exit leaves the region.
	Exit
)

// Block is a basic block: straight-line ops plus one terminator.
type Block struct {
	ID     int
	Ops    []*Op
	Kind   TermKind
	Cond   Value // PR value tested by CondBr
	Succ   [2]*Block
	Preds  []*Block
	Region *Region
}

// Succs returns the successor blocks. Nil successors (malformed IR caught
// by Verify) are skipped so analyses do not crash before verification runs.
func (b *Block) Succs() []*Block {
	var ss []*Block
	switch b.Kind {
	case Jump:
		ss = []*Block{b.Succ[0]}
	case CondBr:
		ss = []*Block{b.Succ[0], b.Succ[1]}
	}
	out := ss[:0]
	for _, s := range ss {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

// String identifies the block.
func (b *Block) String() string { return fmt.Sprintf("B%d", b.ID) }

// valInfo records per-value metadata.
type valInfo struct {
	class isa.RegClass
}

// Region is one schedulable unit: a CFG executed from Entry until a block
// with an Exit terminator. Regions of a program run sequentially; in
// decoupled execution, region boundaries are the synchronization points the
// paper attributes to call/return sync.
type Region struct {
	ID      int
	Name    string
	Entry   *Block
	Blocks  []*Block
	Program *Program

	vals   []valInfo // index 1..; vals[0] unused
	nextOp int
}

// NewValue allocates a fresh virtual register of the given class.
func (r *Region) NewValue(c isa.RegClass) Value {
	if len(r.vals) == 0 {
		r.vals = append(r.vals, valInfo{})
	}
	r.vals = append(r.vals, valInfo{class: c})
	return Value(len(r.vals) - 1)
}

// ValueClass returns the register class of v.
func (r *Region) ValueClass(v Value) isa.RegClass {
	if v <= 0 || int(v) >= len(r.vals) {
		return isa.RegNone
	}
	return r.vals[v].class
}

// NumValues returns the number of allocated values plus one (values are
// numbered 1..NumValues-1).
func (r *Region) NumValues() int {
	if len(r.vals) == 0 {
		return 1
	}
	return len(r.vals)
}

// NewBlock appends an empty block to the region. The first block created
// becomes the entry.
func (r *Region) NewBlock() *Block {
	b := &Block{ID: len(r.Blocks), Kind: Exit, Region: r}
	r.Blocks = append(r.Blocks, b)
	if r.Entry == nil {
		r.Entry = b
	}
	return b
}

// AllOps returns every op in the region in block order.
func (r *Region) AllOps() []*Op {
	var ops []*Op
	for _, b := range r.Blocks {
		ops = append(ops, b.Ops...)
	}
	return ops
}

// recomputePreds rebuilds predecessor lists from successor edges.
func (r *Region) recomputePreds() {
	for _, b := range r.Blocks {
		b.Preds = nil
	}
	for _, b := range r.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Seal finalizes the region's CFG after construction: predecessor lists are
// rebuilt. Analyses (dominators, loops) compute lazily afterwards.
func (r *Region) Seal() { r.recomputePreds() }

// Array describes one statically allocated memory object.
type Array struct {
	Name  string
	ID    int
	Base  int64 // byte address, 8-aligned
	Words int64 // size in 8-byte words
	// Float marks arrays whose words are float64 bit patterns (for
	// initialization and dump purposes only; memory itself is untyped).
	Float bool
}

// End returns the first byte address past the array.
func (a *Array) End() int64 { return a.Base + a.Words*8 }

// Program is a complete workload: data layout plus regions.
type Program struct {
	Name    string
	Arrays  []*Array
	Regions []*Region

	nextBase int64
	// Init holds initial word values keyed by byte address.
	Init map[int64]uint64

	// prepOnce serializes the compiler's one-shot in-place preparation
	// (see PrepareOnce).
	prepOnce sync.Once
}

// PrepareOnce runs f exactly once over the program's lifetime, blocking
// concurrent callers until the first call returns. The compiler uses it to
// guard its in-place cleanup passes so that concurrent compiles of a shared
// program (the experiment suite hands one cached IR instance to every
// strategy) never mutate the IR while another goroutine reads it.
func (p *Program) PrepareOnce(f func()) { p.prepOnce.Do(f) }

// NewProgram creates an empty program. The data segment starts at address
// 4096 (address 0 is kept unmapped to catch null-pointer style bugs in
// workload construction).
func NewProgram(name string) *Program {
	return &Program{Name: name, nextBase: 4096, Init: map[int64]uint64{}}
}

// Array allocates a new array of the given number of 8-byte words.
func (p *Program) Array(name string, words int64) *Array {
	a := &Array{Name: name, ID: len(p.Arrays), Base: p.nextBase, Words: words}
	p.Arrays = append(p.Arrays, a)
	p.nextBase += words * 8
	// Pad to a cache line so arrays do not falsely share lines; false
	// sharing behaviour is exercised explicitly where tests want it.
	if rem := p.nextBase % 64; rem != 0 {
		p.nextBase += 64 - rem
	}
	return a
}

// FloatArray allocates an array flagged as holding float64 values.
func (p *Program) FloatArray(name string, words int64) *Array {
	a := p.Array(name, words)
	a.Float = true
	return a
}

// SetInit records an initial integer value for a word of an array.
func (p *Program) SetInit(a *Array, idx int64, v int64) {
	p.Init[a.Base+idx*8] = uint64(v)
}

// SetInitF records an initial float value for a word of an array.
func (p *Program) SetInitF(a *Array, idx int64, v float64) {
	p.Init[a.Base+idx*8] = f2u(v)
}

// MemWords returns the size of the program's memory image in words.
func (p *Program) MemWords() int64 {
	end := p.nextBase
	if end < 8192 {
		end = 8192
	}
	return (end + 7) / 8
}

// Region appends a new region.
func (p *Program) Region(name string) *Region {
	r := &Region{ID: len(p.Regions), Name: name, Program: p}
	p.Regions = append(p.Regions, r)
	return r
}

// NewOp allocates an op with a region-unique id. It does not insert it into
// a block; use the Block emit helpers for that.
func (r *Region) NewOp(code isa.Opcode) *Op {
	o := &Op{ID: r.nextOp, Code: code, Obj: UnknownObj}
	r.nextOp++
	return o
}

// ObjectAt returns the array containing the byte address, or nil.
func (p *Program) ObjectAt(addr int64) *Array {
	for _, a := range p.Arrays {
		if addr >= a.Base && addr < a.End() {
			return a
		}
	}
	return nil
}
