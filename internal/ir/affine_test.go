package ir

import (
	"testing"
	"testing/quick"
)

// TestAffineDetectsRandomStrides: for i in [0,n): touch a[s*i + o] — the
// analysis must recover stride 8s and offset 8o (byte units).
func TestAffineDetectsRandomStrides(t *testing.T) {
	f := func(s8, o8 uint8) bool {
		s := int64(s8%7) + 1
		o := int64(o8 % 8)
		p := NewProgram("aff")
		a := p.Array("a", 256)
		r := p.Region("r")
		pre := r.NewBlock()
		base := pre.AddrOf(a)
		after := BuildCountedLoop(pre, LoopSpec{Start: 0, Limit: 8, Step: 1}, func(b *Block, i Value) *Block {
			idx := b.MulI(i, s)
			idx2 := b.AddI(idx, o)
			addr := b.Add(base, b.ShlI(idx2, 3))
			v := b.Load(a, addr, 0)
			_ = v
			return b
		})
		after.ExitRegion()
		r.Seal()
		l := r.Loops()[0]
		var load *Op
		for _, op := range r.AllOps() {
			if op.Code.IsLoad() {
				load = op
			}
		}
		e := r.AddrExprOf(load, l, nil)
		return e.Known && e.Stride == 8*s && e.Offset == 8*o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMemDepSymmetric: MemDep classification is order-insensitive for the
// NoDep/Carried cases (the analysis looks at address sets, not direction).
func TestMemDepConsistency(t *testing.T) {
	p := NewProgram("sym")
	a := p.Array("a", 64)
	r := p.Region("r")
	pre := r.NewBlock()
	base := pre.AddrOf(a)
	after := BuildCountedLoop(pre, LoopSpec{Start: 0, Limit: 16, Step: 1}, func(b *Block, i Value) *Block {
		off := b.ShlI(i, 3)
		ad := b.Add(base, off)
		v := b.Load(a, ad, 0)
		b.Store(a, ad, 128, v) // a[i+16] = a[i]
		return b
	})
	after.ExitRegion()
	r.Seal()
	l := r.Loops()[0]
	var load, store *Op
	for _, o := range r.AllOps() {
		if o.Code.IsLoad() {
			load = o
		}
		if o.Code.IsStore() {
			store = o
		}
	}
	d1 := r.MemDep(load, store, l, nil)
	d2 := r.MemDep(store, load, l, nil)
	if d1 != d2 {
		t.Errorf("MemDep asymmetric: %v vs %v", d1, d2)
	}
	if d1 != MemCarriedDep {
		t.Errorf("distance-16 dependence classified %v", d1)
	}
}

// TestCountedLoopShapeProperty: BuildCountedLoop always yields a detectable
// canonical induction for positive parameters.
func TestCountedLoopShapeProperty(t *testing.T) {
	f := func(start8, trips8, step8 uint8) bool {
		start := int64(start8 % 16)
		trips := int64(trips8%30) + 1
		step := int64(step8%3) + 1
		limit := start + trips*step
		p := NewProgram("shape")
		a := p.Array("a", 4)
		r := p.Region("r")
		pre := r.NewBlock()
		base := pre.AddrOf(a)
		after := BuildCountedLoop(pre, LoopSpec{Start: start, Limit: limit, Step: step}, func(b *Block, i Value) *Block {
			b.Store(a, base, 0, i)
			return b
		})
		after.ExitRegion()
		r.Seal()
		if p.Verify() != nil {
			return false
		}
		loops := r.Loops()
		if len(loops) != 1 || loops[0].Induction == nil {
			return false
		}
		iv := loops[0].Induction
		return iv.Step == step && iv.LimitImm == limit && iv.InitOp.Imm == start && iv.ExitOnFalse
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDominatorsProperty: on random two-way CFGs, the entry dominates every
// reachable block and idom chains terminate at the entry.
func TestDominatorsProperty(t *testing.T) {
	f := func(seed uint16) bool {
		p := NewProgram("dom")
		r := p.Region("r")
		n := 6
		blocks := make([]*Block, n)
		for i := range blocks {
			blocks[i] = r.NewBlock()
		}
		s := uint32(seed)
		next := func(m int) int { s = s*1664525 + 1013904223; return int(s>>16) % m }
		for i, b := range blocks {
			if i == n-1 {
				b.ExitRegion()
				continue
			}
			// forward edges only (acyclic, always terminating)
			t1 := i + 1 + next(n-i-1)
			if next(2) == 0 {
				b.JumpTo(blocks[t1])
			} else {
				t2 := i + 1 + next(n-i-1)
				c := b.CmpLTI(b.MovI(int64(next(10))), 5)
				b.BranchIf(c, blocks[t1], blocks[t2])
			}
		}
		r.Seal()
		dom := r.Dominators()
		for _, b := range r.ReversePostorder() {
			if !dom.Dominates(r.Entry, b) {
				return false
			}
			// idom chain reaches the entry.
			steps := 0
			for x := b; x != r.Entry; steps++ {
				x = dom.IDom(x)
				if x == nil || steps > n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
