package workload

import (
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

func TestAllBenchmarksVerifyAndInterpret(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := interp.Run(p, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.DynOps < 1000 {
				t.Errorf("benchmark too small: %d dynamic ops", res.DynOps)
			}
			if res.DynOps > 2_000_000 {
				t.Errorf("benchmark too large for the harness: %d dynamic ops", res.DynOps)
			}
		})
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nonesuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNamesStable(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != 25 {
		t.Fatalf("suite has %d benchmarks, want 25", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names() not deterministic")
		}
	}
	a[0] = "mutated"
	if Names()[0] == "mutated" {
		t.Error("Names() exposes internal slice")
	}
}

// TestSuiteCorrectUnderAllStrategies is the heavyweight oracle: every
// benchmark, compiled every way, must reproduce the interpreter's memory.
func TestSuiteCorrectUnderAllStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	strategies := []compiler.Strategy{compiler.Serial, compiler.ForceILP, compiler.ForceFTLP, compiler.ForceLLP, compiler.Hybrid}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := interp.Run(p, interp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			pr, err := prof.Collect(p)
			if err != nil {
				t.Fatal(err)
			}
			hasFP := false
			for _, arr := range p.Arrays {
				if arr.Float {
					hasFP = true
				}
			}
			for _, s := range strategies {
				for _, n := range []int{2, 4} {
					cp, err := compiler.Compile(p, compiler.Options{Cores: n, Strategy: s, Profile: pr})
					if err != nil {
						t.Fatalf("%v/%d: compile: %v", s, n, err)
					}
					res, err := core.New(core.DefaultConfig(n)).Run(cp)
					if err != nil {
						t.Fatalf("%v/%d: run: %v", s, n, err)
					}
					if hasFP && (s == compiler.ForceLLP || s == compiler.Hybrid) {
						checkClose(t, p, golden.Mem, res.Mem, s, n)
						continue
					}
					if !res.Mem.Equal(golden.Mem) {
						addr, a, b, _ := golden.Mem.FirstDiff(res.Mem)
						t.Fatalf("%v/%d: memory mismatch at %#x: interp=%d machine=%d", s, n, addr, a, b)
					}
				}
			}
		})
	}
}

func checkClose(t *testing.T, p *ir.Program, want, got interface{ LoadW(int64) uint64 }, s compiler.Strategy, n int) {
	t.Helper()
	for _, arr := range p.Arrays {
		for i := int64(0); i < arr.Words; i++ {
			w, g := want.LoadW(arr.Base+i*8), got.LoadW(arr.Base+i*8)
			if arr.Float {
				fw, fg := ir.U2F(w), ir.U2F(g)
				d := fw - fg
				if d < 0 {
					d = -d
				}
				if d > 1e-6*(1+absf(fw)) {
					t.Fatalf("%v/%d: %s[%d]: interp=%g machine=%g", s, n, arr.Name, i, fw, fg)
				}
			} else if w != g {
				t.Fatalf("%v/%d: %s[%d]: interp=%d machine=%d", s, n, arr.Name, i, w, g)
			}
		}
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
