package workload

import (
	"fmt"
	"math/rand"

	"voltron/internal/ir"
)

// Random returns a pseudo-random but well-formed, terminating program:
// 1-3 initialized arrays and `regions` regions that are straight-line
// code, counted loops, or loops with a control-flow diamond inside, all
// mixing ALU ops with in-bounds loads and stores. The same (seed,
// regions) pair always yields the same program, so callers can use seeds
// as reproducible test-case names. Differential testers (compiler fuzz,
// event-driven vs reference) share this one generator so a bug shakes
// out everywhere at once.
func Random(seed int64, regions int) (*ir.Program, error) {
	g := newRandGen(seed)
	for i := 0; i < regions; i++ {
		g.genRegion(i)
	}
	return g.p, g.p.Verify()
}

type randGen struct {
	rng    *rand.Rand
	p      *ir.Program
	arrays []*ir.Array
}

func newRandGen(seed int64) *randGen {
	g := &randGen{rng: rand.New(rand.NewSource(seed))}
	g.p = ir.NewProgram(fmt.Sprintf("fuzz%d", seed))
	na := 2 + g.rng.Intn(3)
	for i := 0; i < na; i++ {
		words := int64(16 << g.rng.Intn(3)) // 16..64
		arr := g.p.Array(fmt.Sprintf("a%d", i), words)
		for w := int64(0); w < words; w++ {
			g.p.SetInit(arr, w, g.rng.Int63n(1000)-500)
		}
		g.arrays = append(g.arrays, arr)
	}
	return g
}

// randPool tracks defined GPR values during generation.
type randPool struct {
	vals []ir.Value
	rng  *rand.Rand
}

func (vp *randPool) pick() ir.Value { return vp.vals[vp.rng.Intn(len(vp.vals))] }
func (vp *randPool) add(v ir.Value) { vp.vals = append(vp.vals, v) }

// emitRandomOps appends n random ops to the block, keeping addresses in
// bounds via masking (array sizes are powers of two).
func (g *randGen) emitRandomOps(b *ir.Block, vp *randPool, bases map[*ir.Array]ir.Value, n int) {
	for k := 0; k < n; k++ {
		switch g.rng.Intn(8) {
		case 0, 1, 2: // ALU
			x, y := vp.pick(), vp.pick()
			switch g.rng.Intn(5) {
			case 0:
				vp.add(b.Add(x, y))
			case 1:
				vp.add(b.Sub(x, y))
			case 2:
				vp.add(b.MulI(x, g.rng.Int63n(7)+1))
			case 3:
				vp.add(b.Xor(x, y))
			case 4:
				vp.add(b.AndI(x, 0xFFFF))
			}
		case 3, 4: // load
			arr := g.arrays[g.rng.Intn(len(g.arrays))]
			idx := b.AndI(vp.pick(), arr.Words-1)
			addr := b.Add(bases[arr], b.ShlI(idx, 3))
			vp.add(b.Load(arr, addr, 0))
		case 5, 6: // store
			arr := g.arrays[g.rng.Intn(len(g.arrays))]
			idx := b.AndI(vp.pick(), arr.Words-1)
			addr := b.Add(bases[arr], b.ShlI(idx, 3))
			b.Store(arr, addr, 0, vp.pick())
		default: // constant
			vp.add(b.MovI(g.rng.Int63n(100)))
		}
	}
}

// genRegion appends one random region: straight-line, counted loop, or a
// loop with a diamond inside.
func (g *randGen) genRegion(i int) {
	r := g.p.Region(fmt.Sprintf("r%d", i))
	pre := r.NewBlock()
	bases := map[*ir.Array]ir.Value{}
	for _, arr := range g.arrays {
		bases[arr] = pre.AddrOf(arr)
	}
	vp := &randPool{rng: g.rng}
	vp.add(pre.MovI(g.rng.Int63n(50)))
	vp.add(pre.MovI(g.rng.Int63n(50) + 3))
	shape := g.rng.Intn(3)
	switch shape {
	case 0: // straight line
		g.emitRandomOps(pre, vp, bases, 6+g.rng.Intn(10))
		pre.ExitRegion()
	case 1: // counted loop
		trips := int64(8 << g.rng.Intn(2))
		nops := 4 + g.rng.Intn(8)
		after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(b *ir.Block, iv ir.Value) *ir.Block {
			inner := &randPool{rng: g.rng, vals: append([]ir.Value{iv}, vp.vals...)}
			g.emitRandomOps(b, inner, bases, nops)
			return b
		})
		g.emitRandomOps(after, vp, bases, 2)
		after.ExitRegion()
	default: // loop with a diamond
		trips := int64(8)
		after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(body *ir.Block, iv ir.Value) *ir.Block {
			inner := &randPool{rng: g.rng, vals: append([]ir.Value{iv}, vp.vals...)}
			g.emitRandomOps(body, inner, bases, 3)
			c := body.CmpLTI(inner.pick(), g.rng.Int63n(40))
			then := r.NewBlock()
			els := r.NewBlock()
			join := r.NewBlock()
			tp := &randPool{rng: g.rng, vals: append([]ir.Value(nil), inner.vals...)}
			g.emitRandomOps(then, tp, bases, 2+g.rng.Intn(3))
			then.JumpTo(join)
			ep := &randPool{rng: g.rng, vals: append([]ir.Value(nil), inner.vals...)}
			g.emitRandomOps(els, ep, bases, 2+g.rng.Intn(3))
			els.JumpTo(join)
			body.BranchIf(c, then, els)
			return join
		})
		after.ExitRegion()
	}
	r.Seal()
}
