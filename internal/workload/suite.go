package workload

import (
	"fmt"
	"sort"

	"voltron/internal/ir"
)

// The benchmark suite. Each entry composes kernels into a multi-region
// program whose mix of parallelism classes follows the per-benchmark
// breakdown the paper reports in Figure 3 (e.g. swim/mgrid are dominated by
// DOALL loops, 179.art by miss-bound fine-grain TLP, gsmdecode by a mix of
// LLP and ILP, gzip by strands, g721 by serial recurrences). Absolute sizes
// are scaled for simulation speed; relative proportions are what matter.

// Build constructs the named benchmark program.
func Build(name string) (*ir.Program, error) {
	mk, ok := suite[name]
	if !ok {
		return nil, fmt.Errorf("unknown benchmark %q", name)
	}
	p := ir.NewProgram(name)
	mk(p)
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("benchmark %q: %w", name, err)
	}
	return p, nil
}

// Names lists all benchmarks in the paper's order.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

var order = []string{
	"052.alvinn", "056.ear", "132.ijpeg", "164.gzip", "171.swim",
	"172.mgrid", "175.vpr", "177.mesa", "179.art", "183.equake",
	"197.parser", "255.vortex", "256.bzip2", "cjpeg", "djpeg", "epic",
	"g721decode", "g721encode", "gsmdecode", "gsmencode", "mpeg2dec",
	"mpeg2enc", "rawcaudio", "rawdaudio", "unepic",
}

var suite = map[string]func(*ir.Program){
	// SPEC FP / scientific: DOALL-dominated.
	"052.alvinn": func(p *ir.Program) {
		DoallMapF(p, "fprop", 256, 6)
		DoallReduce(p, "werr", 256)
		IlpButterfly(p, "update", 48, 8, 4)
	},
	"056.ear": func(p *ir.Program) {
		DoallMapF(p, "filter", 192, 8)
		Pipeline(p, "cochlea", 1024, 160, 4)
		DoallReduce(p, "energy", 128)
	},
	"171.swim": func(p *ir.Program) {
		DoallMapF(p, "calc1", 320, 8)
		DoallMapF(p, "calc2", 320, 8)
		DoallReduce(p, "check", 256)
	},
	"172.mgrid": func(p *ir.Program) {
		DoallMapF(p, "resid", 384, 10)
		DoallMap(p, "interp", 256, 6)
		SerialChain(p, "norm", 24)
	},
	"179.art": func(p *ir.Program) {
		MultiChase(p, "f1scan", 4, 1024, 220)
		DoallReduce(p, "trainmatch", 192)
		MultiChase(p, "y2", 3, 1024, 160)
	},
	"183.equake": func(p *ir.Program) {
		Pipeline(p, "smvp", 1024, 200, 5)
		DoallMapF(p, "timeint", 224, 6)
		MultiChase(p, "disp", 3, 1024, 140)
	},
	// SPEC INT: pointer/branch heavy.
	"164.gzip": func(p *ir.Program) {
		Strands(p, "longest_match", 512, 420)
		Branchy(p, "deflate", 160)
		DoallMap(p, "fillwin", 128, 2)
	},
	"175.vpr": func(p *ir.Program) {
		Branchy(p, "tryswap", 192)
		IlpButterfly(p, "timing", 64, 8, 4)
		MultiChase(p, "route", 2, 1024, 150)
	},
	"177.mesa": func(p *ir.Program) {
		IlpButterfly(p, "shade", 96, 8, 5)
		DoallMapF(p, "xform", 192, 6)
		Branchy(p, "clip", 96)
	},
	"197.parser": func(p *ir.Program) {
		Branchy(p, "match", 224)
		SerialChain(p, "hash", 96)
		MultiChase(p, "dict", 2, 1024, 120)
	},
	"255.vortex": func(p *ir.Program) {
		Branchy(p, "validate", 192)
		IlpButterfly(p, "mem", 64, 8, 3)
		SerialChain(p, "chain", 64)
	},
	"256.bzip2": func(p *ir.Program) {
		Strands(p, "sort", 448, 390)
		DoallMap(p, "mtf", 160, 3)
		SerialChain(p, "rle", 80)
	},
	// MediaBench.
	"132.ijpeg": func(p *ir.Program) {
		DoallMap(p, "dct", 192, 8)
		IlpButterfly(p, "quant", 80, 8, 4)
		Branchy(p, "huff", 96)
	},
	"cjpeg": func(p *ir.Program) {
		DoallMap(p, "rgb2ycc", 224, 6)
		IlpButterfly(p, "fdct", 96, 8, 5)
		Branchy(p, "encode", 96)
	},
	"djpeg": func(p *ir.Program) {
		DoallMap(p, "idct", 224, 6)
		IlpButterfly(p, "upsample", 80, 8, 4)
		SerialChain(p, "marker", 32)
	},
	"epic": func(p *ir.Program) {
		Pipeline(p, "pyr", 1024, 220, 5)
		MultiChase(p, "quantize", 3, 1024, 150)
		DoallMap(p, "pack", 128, 3)
	},
	"unepic": func(p *ir.Program) {
		Pipeline(p, "unpyr", 1024, 180, 4)
		DoallMap(p, "unpack", 160, 4)
		Branchy(p, "parse", 64)
	},
	"g721decode": func(p *ir.Program) {
		SerialChain(p, "predictor", 128)
		IlpButterfly(p, "recon", 96, 8, 4)
		Branchy(p, "step", 96)
	},
	"g721encode": func(p *ir.Program) {
		SerialChain(p, "adapt", 128)
		IlpButterfly(p, "quan", 96, 8, 4)
		Branchy(p, "span", 80)
	},
	"gsmdecode": func(p *ir.Program) {
		DoallMap(p, "uf_rpf", 160, 4)
		IlpButterfly(p, "ltp", 112, 8, 5)
		DoallReduce(p, "postproc", 128)
	},
	"gsmencode": func(p *ir.Program) {
		DoallReduce(p, "autocorr", 192)
		IlpButterfly(p, "lpc", 96, 8, 5)
		Strands(p, "ltpsearch", 320, 300)
	},
	"mpeg2dec": func(p *ir.Program) {
		DoallMap(p, "idct", 224, 6)
		MultiChase(p, "mc", 2, 1024, 130)
		IlpButterfly(p, "saturate", 64, 8, 3)
	},
	"mpeg2enc": func(p *ir.Program) {
		DoallReduce(p, "sad", 256)
		DoallMap(p, "fdct", 192, 6)
		Branchy(p, "mode", 96)
	},
	"rawcaudio": func(p *ir.Program) {
		SerialChain(p, "adpcm", 192)
		IlpButterfly(p, "clamp", 64, 8, 3)
	},
	"rawdaudio": func(p *ir.Program) {
		SerialChain(p, "decode", 192)
		IlpButterfly(p, "expand", 64, 8, 3)
	},
}

// sanity check at init: the order list matches the suite map.
func init() {
	if len(order) != len(suite) {
		panic(fmt.Sprintf("workload: order lists %d names, suite has %d", len(order), len(suite)))
	}
	var missing []string
	for _, n := range order {
		if _, ok := suite[n]; !ok {
			missing = append(missing, n)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		panic(fmt.Sprintf("workload: order names missing from suite: %v", missing))
	}
}
