// Package workload provides the synthetic benchmark suite standing in for
// the paper's MediaBench and SPEC programs (see DESIGN.md §2). Each
// benchmark is an IR program composed from a library of kernels whose
// dependence structure, cache behaviour and trip counts reproduce the
// parallelism classes the paper measures: statistical DOALL loops (LLP),
// miss-prone strand and pipeline loops (fine-grain TLP), wide independent
// dependence chains (ILP), and serial recurrences (single-core regions).
package workload

import (
	"fmt"

	"voltron/internal/ir"
	"voltron/internal/isa"
)

// lcg is a tiny deterministic generator for reproducible data.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

// DoallMap appends a statistical DOALL region: dst[i] = f(src[i]) with a
// chain of `work` ALU operations per element. No cross-iteration
// dependences: the LLP kernel (gsmdecode Figure 7 shape).
func DoallMap(p *ir.Program, name string, n int64, work int) {
	rng := &lcg{s: uint64(n)*31 + uint64(work)}
	src := p.Array(name+".src", n)
	dst := p.Array(name+".dst", n)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, int64(rng.next()%1000))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		for k := 0; k < work; k++ {
			switch k % 3 {
			case 0:
				v = b.MulI(v, 3)
			case 1:
				v = b.AddI(v, 17)
			default:
				v = b.Xor(v, b.ShlI(v, 1))
			}
		}
		b.Store(dst, b.Add(db, off), 0, v)
		return b
	})
	after.ExitRegion()
	r.Seal()
}

// DoallMapF is the floating-point DOALL kernel (swim/mgrid shape).
func DoallMapF(p *ir.Program, name string, n int64, work int) {
	rng := &lcg{s: uint64(n) * 97}
	src := p.FloatArray(name+".fsrc", n)
	dst := p.FloatArray(name+".fdst", n)
	for i := int64(0); i < n; i++ {
		p.SetInitF(src, i, float64(rng.next()%997)/7.0)
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	half := pre.MovF(0.5)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.FLoad(src, b.Add(sb, off), 0)
		for k := 0; k < work; k++ {
			if k%2 == 0 {
				v = b.FMul(v, half)
			} else {
				v = b.FAdd(v, half)
			}
		}
		b.FStore(dst, b.Add(db, off), 0, v)
		return b
	})
	after.ExitRegion()
	r.Seal()
}

// DoallReduce appends a DOALL reduction: out[0] = Σ src[i]*k — LLP with
// accumulator expansion.
func DoallReduce(p *ir.Program, name string, n int64) {
	rng := &lcg{s: uint64(n) * 13}
	src := p.Array(name+".rsrc", n)
	out := p.Array(name+".rout", 1)
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, int64(rng.next()%256))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	acc := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		b.Accum(isa.ADD, acc, b.MulI(v, 5))
		return b
	})
	ob := after.AddrOf(out)
	after.Store(out, ob, 0, acc)
	after.ExitRegion()
	r.Seal()
}

// Strands appends the gzip Figure 8 shape: two miss-prone load streams
// compared per iteration with a data-dependent exit, so the branch
// predicate itself depends on loads (forcing predicate communication in
// decoupled mode) and the loop is not a DOALL candidate.
func Strands(p *ir.Program, name string, n int64, diverge int64) {
	scan := p.Array(name+".scan", n)
	match := p.Array(name+".match", n)
	out := p.Array(name+".out", 1)
	for i := int64(0); i < n; i++ {
		p.SetInit(scan, i, i%251)
		p.SetInit(match, i, i%251)
	}
	if diverge > 0 && diverge < n {
		p.SetInit(match, diverge, 7777)
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(scan)
	mb := pre.AddrOf(match)
	i := pre.MovI(0)
	body := r.NewBlock()
	exit := r.NewBlock()
	pre.JumpTo(body)
	off := body.ShlI(i, 3)
	sv := body.Load(scan, body.Add(sb, off), 0)
	mv := body.Load(match, body.Add(mb, off), 0)
	eq := body.CmpEQ(sv, mv)
	body.AddTo(i, 1)
	inRange := body.CmpLTI(i, n)
	cont := body.PAnd(eq, inRange)
	body.BranchIf(cont, body, exit)
	ob := exit.AddrOf(out)
	exit.Store(out, ob, 0, i)
	exit.ExitRegion()
	r.Seal()
}

// MultiChase appends k independent pointer chases through permutation
// tables larger than the L1 — the memory-level-parallelism kernel
// (179.art shape): serial per chain, but chains overlap their misses when
// spread across cores in decoupled mode.
func MultiChase(p *ir.Program, name string, chains int, tableWords int64, steps int64) {
	r := p.Region(name)
	pre := r.NewBlock()
	outs := p.Array(name+".sums", int64(chains))
	type chainState struct {
		base ir.Value
		idx  ir.Value
		sum  ir.Value
		arr  *ir.Array
	}
	var cs []chainState
	for c := 0; c < chains; c++ {
		arr := p.Array(fmt.Sprintf("%s.next%d", name, c), tableWords)
		// A full-cycle permutation: next[i] = (i + stride) mod size with
		// stride coprime to size, scaled to byte offsets of line-sized
		// jumps so successive steps miss.
		stride := tableWords/2 + 2*int64(c) + 9
		for gcd(stride, tableWords) != 1 {
			stride++
		}
		for i := int64(0); i < tableWords; i++ {
			p.SetInit(arr, i, (i+stride)%tableWords)
		}
		cs = append(cs, chainState{
			base: pre.AddrOf(arr),
			idx:  pre.MovI(int64(c)),
			sum:  pre.MovI(0),
			arr:  arr,
		})
	}
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: steps, Step: 1}, func(b *ir.Block, _ ir.Value) *ir.Block {
		for c := range cs {
			addr := b.Add(cs[c].base, b.ShlI(cs[c].idx, 3))
			next := b.Load(cs[c].arr, addr, 0)
			b.Accum(isa.ADD, cs[c].sum, next)
			// idx = next: re-assign via a MOV onto the existing value.
			mv := b.Region.NewOp(isa.MOV)
			mv.Args[0] = next
			mv.Dst = cs[c].idx
			mv.Blk = b
			b.Ops = append(b.Ops, mv)
		}
		return b
	})
	ob := after.AddrOf(outs)
	for c := range cs {
		after.Store(outs, ob, int64(c)*8, cs[c].sum)
	}
	after.ExitRegion()
	r.Seal()
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Pipeline appends the DSWP kernel: a pointer-chase recurrence (stage 1,
// miss-prone) feeding a dependent computation and store (stage 2). The
// chase recurrence disqualifies DOALL; the acyclic downstream makes a
// pipeline.
func Pipeline(p *ir.Program, name string, tableWords, n int64, work int) {
	next := p.Array(name+".next", tableWords)
	data := p.Array(name+".data", tableWords)
	out := p.Array(name+".out", n)
	stride := tableWords/2 + 3
	for gcd(stride, tableWords) != 1 {
		stride++
	}
	rng := &lcg{s: uint64(tableWords)}
	for i := int64(0); i < tableWords; i++ {
		p.SetInit(next, i, (i+stride)%tableWords)
		p.SetInit(data, i, int64(rng.next()%5000))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	nb := pre.AddrOf(next)
	db := pre.AddrOf(data)
	ob := pre.AddrOf(out)
	idx := pre.MovI(0)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		// Stage 1: chase.
		naddr := b.Add(nb, b.ShlI(idx, 3))
		nv := b.Load(next, naddr, 0)
		mv := b.Region.NewOp(isa.MOV)
		mv.Args[0] = nv
		mv.Dst = idx
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		// Stage 2: dependent work on the visited element.
		v := b.Load(data, b.Add(db, b.ShlI(nv, 3)), 0)
		for k := 0; k < work; k++ {
			v = b.AddI(b.MulI(v, 3), 7)
		}
		b.Store(out, b.Add(ob, b.ShlI(i, 3)), 0, v)
		return b
	})
	after.ExitRegion()
	r.Seal()
}

// IlpLoop appends a loop whose body holds `chains` independent dependence
// chains of `depth` ALU ops over cache-resident data — the coupled-mode ILP
// kernel (gsmdecode Figure 9 shape).
func IlpLoop(p *ir.Program, name string, trips int64, chains, depth int) {
	words := int64(chains) * 8
	if words > 512 {
		words = 512
	}
	x := p.Array(name+".x", words)
	y := p.Array(name+".y", int64(chains)*8)
	rng := &lcg{s: uint64(trips) + uint64(chains)}
	for i := int64(0); i < words; i++ {
		p.SetInit(x, i, int64(rng.next()%9999))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	xb := pre.AddrOf(x)
	yb := pre.AddrOf(y)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		mask := b.AndI(i, words/8-1)
		base := b.ShlI(mask, 6)
		for c := 0; c < chains; c++ {
			v := b.Load(x, b.Add(xb, base), int64(c%8)*8)
			for k := 0; k < depth; k++ {
				switch k % 3 {
				case 0:
					v = b.AddI(v, int64(c+k))
				case 1:
					v = b.Xor(v, mask)
				default:
					v = b.ShlI(v, 1)
				}
			}
			b.Store(y, yb, int64(c)*64, v)
		}
		return b
	})
	after.ExitRegion()
	r.Seal()
}

// IlpButterfly appends the coupled-mode ILP kernel: each iteration loads a
// vector of lanes, then runs several butterfly mixing levels where every
// lane combines with a partner lane (dataflow crosses the whole vector, so
// a spatial partition needs frequent inter-core register traffic — the
// access pattern that rewards the 1-cycle direct-mode network over the
// 3-cycle queue, per paper §3.2's "complicated data dependences" criterion).
func IlpButterfly(p *ir.Program, name string, trips int64, lanes, levels int) {
	words := int64(lanes)
	x := p.Array(name+".bx", words*8)
	y := p.Array(name+".by", words*8)
	rng := &lcg{s: uint64(trips)*11 + uint64(lanes)}
	for i := int64(0); i < words*8; i++ {
		p.SetInit(x, i, int64(rng.next()%4096))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	xb := pre.AddrOf(x)
	yb := pre.AddrOf(y)
	// The lane vector lives in registers across iterations: the butterfly
	// recurrence spans every lane, so no iteration can start before the
	// previous one finishes — decoupled run-ahead cannot hide the queue
	// latency of the cross-core mixing edges, but coupled mode's 1-cycle
	// PUT/GET can feed them cheaply (the paper's case for coupled ILP).
	w := make([]ir.Value, lanes)
	for l := 0; l < lanes; l++ {
		w[l] = pre.Load(x, xb, int64(l)*64)
	}
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: trips, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		fresh := b.Load(x, b.Add(xb, b.ShlI(b.AndI(i, 7), 3)), 0)
		for lvl := 0; lvl < levels; lvl++ {
			dist := 1 << uint(lvl%3)
			vals := make([]ir.Value, lanes)
			for l := 0; l < lanes; l++ {
				partner := l ^ dist
				if partner >= lanes {
					partner = l
				}
				vals[l] = b.Add(b.MulI(w[l], 3), w[partner])
			}
			for l := 0; l < lanes; l++ {
				// Re-assign the persistent lane register.
				mv := b.Region.NewOp(isa.MOV)
				mv.Args[0] = vals[l]
				mv.Dst = w[l]
				mv.Blk = b
				b.Ops = append(b.Ops, mv)
			}
		}
		// Mix in fresh data so values stay live and bounded.
		mv := b.Region.NewOp(isa.XOR)
		mv.Args[0] = w[0]
		mv.Args[1] = fresh
		mv.Dst = w[0]
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		return b
	})
	for l := 0; l < lanes; l++ {
		after.Store(y, yb, int64(l)*64, w[l])
	}
	after.ExitRegion()
	r.Seal()
}

// SerialChain appends a serial recurrence with long-latency operations
// (ADPCM/g721 shape): acc = (acc*p + x[i]) / q. Best on a single core.
func SerialChain(p *ir.Program, name string, n int64) {
	src := p.Array(name+".ssrc", n)
	out := p.Array(name+".sout", 1)
	rng := &lcg{s: uint64(n) * 7}
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, int64(rng.next()%128)+1)
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	acc := pre.MovI(1)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(b *ir.Block, i ir.Value) *ir.Block {
		off := b.ShlI(i, 3)
		v := b.Load(src, b.Add(sb, off), 0)
		t := b.Mul(acc, v)
		t2 := b.Div(t, v) // long-latency serial chain
		mv := b.Region.NewOp(isa.ADD)
		mv.Args[0] = t2
		mv.Imm = 1
		mv.Dst = acc
		mv.Blk = b
		b.Ops = append(b.Ops, mv)
		return b
	})
	ob := after.AddrOf(out)
	after.Store(out, ob, 0, acc)
	after.ExitRegion()
	r.Seal()
}

// Branchy appends a loop with a data-dependent diamond per iteration
// (parser/vortex shape): modest ILP, unpredictable control.
func Branchy(p *ir.Program, name string, n int64) {
	src := p.Array(name+".bsrc", n)
	dst := p.Array(name+".bdst", n)
	rng := &lcg{s: uint64(n) * 3}
	for i := int64(0); i < n; i++ {
		p.SetInit(src, i, int64(rng.next()%100))
	}
	r := p.Region(name)
	pre := r.NewBlock()
	sb := pre.AddrOf(src)
	db := pre.AddrOf(dst)
	after := ir.BuildCountedLoop(pre, ir.LoopSpec{Start: 0, Limit: n, Step: 1}, func(body *ir.Block, i ir.Value) *ir.Block {
		off := body.ShlI(i, 3)
		v := body.Load(src, body.Add(sb, off), 0)
		da := body.Add(db, off)
		c := body.CmpLTI(v, 50)
		then := r.NewBlock()
		els := r.NewBlock()
		join := r.NewBlock()
		t1 := then.MulI(v, 2)
		then.Store(dst, da, 0, then.AddI(t1, 1))
		then.JumpTo(join)
		e1 := els.SubI(v, 49)
		els.Store(dst, da, 0, els.MulI(e1, 3))
		els.JumpTo(join)
		body.BranchIf(c, then, els)
		return join
	})
	after.ExitRegion()
	r.Seal()
}
