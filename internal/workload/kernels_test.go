package workload

import (
	"testing"

	"voltron/internal/interp"
	"voltron/internal/ir"
	"voltron/internal/prof"
)

func kernelProgram(t *testing.T, build func(p *ir.Program)) (*ir.Program, *prof.Profile) {
	t.Helper()
	p := ir.NewProgram("k")
	build(p)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	pr, err := prof.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, pr
}

func TestDoallKernelsHaveNoCarriedDeps(t *testing.T) {
	cases := []func(p *ir.Program){
		func(p *ir.Program) { DoallMap(p, "m", 64, 4) },
		func(p *ir.Program) { DoallMapF(p, "f", 64, 4) },
		func(p *ir.Program) { DoallReduce(p, "r", 64) },
	}
	for i, mk := range cases {
		_, pr := kernelProgram(t, mk)
		if len(pr.CarriedDep) != 0 {
			t.Errorf("case %d: DOALL kernel shows carried deps: %v", i, pr.CarriedDep)
		}
	}
}

func TestChaseKernelsHaveRecurrences(t *testing.T) {
	// The chase index is a cross-iteration register recurrence: the loop
	// must not look like DOALL to the register check (induction detection
	// finds the counter, but idx is multiply-...-defined in-loop).
	p, _ := kernelProgram(t, func(p *ir.Program) { MultiChase(p, "c", 2, 256, 32) })
	r := p.Regions[0]
	loops := r.Loops()
	if len(loops) != 1 {
		t.Fatalf("%d loops", len(loops))
	}
	if loops[0].Induction == nil {
		t.Fatal("counter not detected")
	}
	// The per-chain sums are legitimate reductions; the chase indices
	// (re-assigned by MOV each iteration) must never be claimed as one.
	idxVals := map[ir.Value]bool{}
	for _, o := range r.AllOps() {
		if o.Code.String() == "mov" && o.Dst != ir.NoValue {
			idxVals[o.Dst] = true
		}
	}
	if len(loops[0].Reductions) != 2 {
		t.Errorf("chase kernel with 2 chains claims %d reductions", len(loops[0].Reductions))
	}
	for _, red := range loops[0].Reductions {
		if idxVals[red.Acc] {
			t.Errorf("chase index v%d claimed as a reduction", red.Acc)
		}
	}
}

func TestStrandsDataDependentExit(t *testing.T) {
	p, pr := kernelProgram(t, func(p *ir.Program) { Strands(p, "s", 128, 100) })
	// The loop exits at the divergence point: trip count ≈ 101.
	r := p.Regions[0]
	l := r.Loops()[0]
	trips := pr.TripCount[l.Header]
	if trips < 90 || trips > 110 {
		t.Errorf("strand loop trips = %g, want ~101", trips)
	}
	if l.Induction != nil {
		t.Error("data-dependent loop classified as canonical counted loop")
	}
}

func TestStrandsStopsAtDivergence(t *testing.T) {
	p := ir.NewProgram("k")
	Strands(p, "s", 128, 100)
	res, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// out[0] holds the iteration count at exit: diverges at index 100, so
	// i ends at 101.
	var out *ir.Array
	for _, a := range p.Arrays {
		if a.Name == "s.out" {
			out = a
		}
	}
	if got := int64(res.Mem.LoadW(out.Base)); got != 101 {
		t.Errorf("exit index = %d, want 101", got)
	}
}

func TestButterflyCarriesLaneVector(t *testing.T) {
	p, _ := kernelProgram(t, func(p *ir.Program) { IlpButterfly(p, "b", 16, 8, 4) })
	r := p.Regions[0]
	l := r.Loops()[0]
	// The lane registers are live across iterations: many in-loop defs of
	// values also used before their defs — the DOALL register check must
	// reject the loop.
	if l.Induction == nil {
		t.Fatal("butterfly counter not detected")
	}
	// No reductions should be claimed for the lane mixing.
	if len(l.Reductions) != 0 {
		t.Errorf("butterfly claims %d reductions", len(l.Reductions))
	}
}

func TestPipelineShape(t *testing.T) {
	p, pr := kernelProgram(t, func(p *ir.Program) { Pipeline(p, "p", 256, 64, 3) })
	// Chase loads should miss noticeably (table 2 kB exceeds nothing...
	// 256 words = 2 kB fits L1; use the profile to confirm determinism
	// rather than a specific rate).
	if pr.RegionOps[0] == 0 {
		t.Fatal("pipeline kernel ran no ops")
	}
	r := p.Regions[0]
	if r.Loops()[0].Induction == nil {
		t.Error("pipeline loop counter missing")
	}
}

func TestKernelDeterminism(t *testing.T) {
	build := func() *ir.Program {
		p := ir.NewProgram("d")
		DoallMap(p, "m", 32, 3)
		SerialChain(p, "s", 16)
		return p
	}
	r1, err := interp.Run(build(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(build(), interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Mem.Equal(r2.Mem) {
		t.Error("kernel construction not deterministic")
	}
	if r1.DynOps != r2.DynOps {
		t.Error("dynamic op counts differ between identical builds")
	}
}

func TestPermutationTablesAreFullCycle(t *testing.T) {
	// MultiChase tables must be full-cycle permutations so chases never
	// get stuck in short loops.
	p := ir.NewProgram("k")
	MultiChase(p, "c", 2, 64, 8)
	for _, arr := range p.Arrays {
		if arr.Words != 64 {
			continue
		}
		seen := map[int64]bool{}
		idx := int64(0)
		for i := 0; i < 64; i++ {
			if seen[idx] {
				t.Fatalf("%s: cycle shorter than table (%d steps)", arr.Name, i)
			}
			seen[idx] = true
			idx = int64(p.Init[arr.Base+idx*8])
		}
		if idx != 0 {
			t.Errorf("%s: walk of 64 steps did not return to start", arr.Name)
		}
	}
}

func TestGcd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 8, 4}, {7, 13, 1}, {0, 5, 5}, {9, 0, 9}, {64, 48, 16},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCGDeterministic(t *testing.T) {
	a := &lcg{s: 42}
	b := &lcg{s: 42}
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
}
