package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServeJob measures the per-job cost of the serving hot path:
// CacheEntries is 1 and two jobs alternate, so every request misses the
// result cache and simulates, while the compile-artifact cache and (in the
// pooled variant) the machine pool stay warm — exactly the steady state the
// two-level split optimizes. The fresh variant is the before-state: same
// requests with warm-machine reuse disabled.
func BenchmarkServeJob(b *testing.B) {
	jobs := [2]string{
		`{"program": {"name": "benchA", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 16}
		]}, "strategy": "llp", "cores": 2}`,
		`{"program": {"name": "benchB", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 96, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 24}
		]}, "strategy": "llp", "cores": 2}`,
	}
	run := func(b *testing.B, disablePool bool) {
		s := New(Config{Workers: 1, CacheEntries: 1, DisableMachinePool: disablePool})
		h := s.Handler()
		post := func(i int) {
			req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(jobs[i&1]))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d: %s", w.Code, w.Body.String())
			}
		}
		post(0) // warm the compile cache and (when enabled) the pool
		post(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(i)
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, false) })
	b.Run("fresh", func(b *testing.B) { run(b, true) })
}
