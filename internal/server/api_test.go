package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"voltron/internal/spec"
)

// The v1 surface contract: schema version, strategy metadata, deprecated
// field aliases, and the traced-job flow (trace URL + stall report).

func TestJobResponseSchemaVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJob(t, ts, tinyJob())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if jr := decodeJob(t, b); jr.SchemaVersion != spec.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", jr.SchemaVersion, spec.SchemaVersion)
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Strategies []spec.StrategyInfo `json:"strategies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Strategies) != 5 {
		t.Fatalf("got %d strategies, want 5: %+v", len(out.Strategies), out.Strategies)
	}
	byName := map[string]spec.StrategyInfo{}
	for _, si := range out.Strategies {
		if si.Description == "" || si.Mode == "" {
			t.Errorf("strategy %q missing metadata: %+v", si.Name, si)
		}
		byName[si.Name] = si
	}
	if byName["ilp"].Mode != "coupled" || byName["ftlp"].Mode != "decoupled" || byName["hybrid"].Mode != "mixed" {
		t.Errorf("unexpected strategy modes: %+v", byName)
	}
}

// TestDeprecatedFieldAliases: the pre-v1 names "benchmark" and "mode" still
// decode (into bench/strategy), are flagged in X-Voltron-Deprecated along
// with the v1 top-level "bench" spelling itself, and land on the same cache
// entry as the v2 program-union spelling.
func TestDeprecatedFieldAliases(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJob(t, ts, `{"benchmark": "rawcaudio", "mode": "llp", "cores": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if dep := resp.Header.Get("X-Voltron-Deprecated"); dep != "benchmark, mode, bench" {
		t.Errorf("X-Voltron-Deprecated = %q, want %q", dep, "benchmark, mode, bench")
	}
	jr := decodeJob(t, b)
	if jr.Bench != "rawcaudio" || jr.Strategy != "llp" {
		t.Errorf("aliases decoded to bench=%q strategy=%q", jr.Bench, jr.Strategy)
	}

	// The v1 top-level bench spelling still works, is flagged, and hits the
	// alias's cache entry (all spellings normalize away before hashing).
	resp1, b1 := postJob(t, ts, `{"bench": "rawcaudio", "strategy": "llp", "cores": 2}`)
	if resp1.Header.Get("X-Voltron-Cache") != "hit" {
		t.Errorf("v1 respelling missed the cache (status %q)", resp1.Header.Get("X-Voltron-Cache"))
	}
	if dep := resp1.Header.Get("X-Voltron-Deprecated"); dep != "bench" {
		t.Errorf("X-Voltron-Deprecated = %q, want %q", dep, "bench")
	}
	if string(b) != string(b1) {
		t.Errorf("alias and v1 bodies differ:\n%s\n%s", b, b1)
	}

	// The canonical v2 spelling of the same job also hits that entry and is
	// not flagged.
	resp2, b2 := postJob(t, ts, `{"program": {"kind": "bench", "bench": "rawcaudio"}, "strategy": "llp", "cores": 2}`)
	if resp2.Header.Get("X-Voltron-Cache") != "hit" {
		t.Errorf("canonical respelling missed the cache (status %q)", resp2.Header.Get("X-Voltron-Cache"))
	}
	if resp2.Header.Get("X-Voltron-Deprecated") != "" {
		t.Errorf("canonical request flagged deprecated fields: %q", resp2.Header.Get("X-Voltron-Deprecated"))
	}
	if string(b) != string(b2) {
		t.Errorf("v1 and v2 bodies differ:\n%s\n%s", b, b2)
	}
}

// TestTracedJob exercises the traced-job flow end to end: the response
// carries a trace URL and a stall report whose totals are consistent with
// the response's own stall counters, the URL serves valid Chrome trace
// JSON, and the traced job is a distinct cache entry from its untraced
// twin.
func TestTracedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"program": {"name": "t", "kernels": [{"kind": "pipeline", "name": "p", "table": 512, "n": 64, "work": 2}]},
		"strategy": "ftlp", "cores": 2, "trace": true
	}`
	resp, b := postJob(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	jr := decodeJob(t, b)
	if jr.TraceURL == "" || jr.StallReport == nil {
		t.Fatalf("traced job missing trace_url/stall_report: %s", b)
	}
	if !strings.HasPrefix(jr.TraceURL, "/v1/traces/") {
		t.Fatalf("trace_url = %q", jr.TraceURL)
	}

	// The report's stall totals must agree with the response's stall map
	// (both aggregate the same run).
	for name, n := range jr.Stalls {
		if got := jr.StallReport.Totals[name]; got != n {
			t.Errorf("stall_report total %s = %d, response stalls say %d", name, got, n)
		}
	}

	tresp, err := http.Get(ts.URL + jr.TraceURL)
	if err != nil {
		t.Fatal(err)
	}
	tb, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", jr.TraceURL, tresp.StatusCode, tb)
	}
	if !json.Valid(tb) {
		t.Fatalf("trace is not valid JSON: %.200s", tb)
	}
	if !strings.Contains(string(tb), "traceEvents") {
		t.Fatalf("trace has no traceEvents array: %.200s", tb)
	}

	// The untraced twin is a different job (different content address) and
	// must not inherit the traced response body.
	untraced := strings.Replace(body, `"trace": true`, `"trace": false`, 1)
	resp2, b2 := postJob(t, ts, untraced)
	if resp2.Header.Get("X-Voltron-Cache") == "hit" {
		t.Errorf("untraced twin hit the traced job's cache entry")
	}
	jr2 := decodeJob(t, b2)
	if jr2.TraceURL != "" || jr2.StallReport != nil {
		t.Errorf("untraced job carries trace fields: %s", b2)
	}
	if jr2.TotalCycles != jr.TotalCycles {
		t.Errorf("tracing changed the result: %d cycles traced, %d untraced", jr.TotalCycles, jr2.TotalCycles)
	}

	// Re-POSTing the traced job is a cache hit and the trace stays
	// fetchable.
	resp3, _ := postJob(t, ts, body)
	if resp3.Header.Get("X-Voltron-Cache") != "hit" {
		t.Errorf("traced repeat status = %q, want hit", resp3.Header.Get("X-Voltron-Cache"))
	}
	if tresp2, err := http.Get(ts.URL + jr.TraceURL); err != nil || tresp2.StatusCode != http.StatusOK {
		t.Errorf("trace re-fetch failed: %v / %v", err, tresp2.Status)
	} else {
		tresp2.Body.Close()
	}
}

// TestTraceEviction: the trace blob store is bounded; once evicted, the
// trace URL 404s (the job response itself stays cached).
func TestTraceEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceEntries: 1})
	job := func(n int64) string {
		return `{"program": {"name": "e", "kernels": [{"kind": "serial-chain", "name": "c", "n": ` +
			strconv.FormatInt(n, 10) + `}]}, "strategy": "serial", "cores": 1, "trace": true}`
	}
	_, b1 := postJob(t, ts, job(16))
	jr1 := decodeJob(t, b1)
	_, b2 := postJob(t, ts, job(24))
	jr2 := decodeJob(t, b2)
	if jr1.TraceURL == jr2.TraceURL {
		t.Fatalf("distinct jobs share a trace URL %q", jr1.TraceURL)
	}
	if resp, err := http.Get(ts.URL + jr1.TraceURL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("evicted trace: status %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + jr2.TraceURL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("resident trace: status %d, want 200", resp.StatusCode)
		}
	}
}
