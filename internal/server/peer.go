package server

// The peer layer: peer-to-peer cache fill across a voltron-serve fleet.
// Every replica ranks the same consistent-hash ring over the job content
// address (spec.RingKey), so each key has one owner. A request landing on a
// non-owner first consults the local cache (previous fills serve locally),
// then forwards to the owner — the owner simulates at most once for the
// whole fleet (its singleflight collapses concurrent forwards from every
// replica) and the forwarding replica stores the returned body in its own
// cache, so one replica's simulation warms the fleet. The owner's response
// bytes are relayed verbatim: bodies are byte-identical across replicas.
//
// Failure policy: the fleet is an optimization, not a dependency. A forward
// is capped below the inbound request's remaining budget (half the
// remainder, at most PeerTimeout) so that an unreachable or overloaded
// owner degrades to a local simulation with budget to spare — never to a
// 504 caused by waiting out the whole inbound deadline on a dead peer and
// then having nothing left for the fallback (the double-deadline bug; a
// regression test pins this).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"voltron/internal/spec"
)

// Replica names one member of a voltron-serve fleet.
type Replica struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// forwardHeader marks a request as peer-forwarded (its value is the sending
// replica's name). A forwarded request is always computed locally — even if
// a membership disagreement makes the receiver believe a third replica owns
// the key — so forwards can never loop.
const forwardHeader = "X-Voltron-Forwarded"

// ParsePeers parses a -peers argument: either an inline comma-separated
// list of name=url entries, or "@path" naming a file with one name=url
// entry per line (blank lines and #-comments allowed). The list may include
// the local replica's own entry; the server skips it.
func ParsePeers(arg string) ([]Replica, error) {
	var entries []string
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, fmt.Errorf("reading peers file: %w", err)
		}
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			entries = append(entries, line)
		}
	} else {
		for _, e := range strings.Split(arg, ",") {
			if e = strings.TrimSpace(e); e != "" {
				entries = append(entries, e)
			}
		}
	}
	var peers []Replica
	seen := map[string]bool{}
	for _, e := range entries {
		name, url, ok := strings.Cut(e, "=")
		name, url = strings.TrimSpace(name), strings.TrimSpace(url)
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad peer entry %q (want name=url)", e)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate peer name %q", name)
		}
		seen[name] = true
		peers = append(peers, Replica{Name: name, URL: strings.TrimSuffix(url, "/")})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("empty peer list")
	}
	return peers, nil
}

// ownerOf returns the name of the remote replica owning key, or "" when
// this replica owns it (or no cluster is configured).
func (s *Server) ownerOf(key string) string {
	if s.ring == nil {
		return ""
	}
	owner := s.ring.owner(spec.RingKeyOf(key))
	if owner == s.cfg.Self {
		return ""
	}
	return owner
}

// forwardBudget caps one peer call below the inbound request's remaining
// budget: half the remainder, never more than PeerTimeout. The unreserved
// half keeps the local-simulation fallback viable when the owner is dead —
// the fix for inheriting the client's deadline twice (once here, once as
// the owner's own request timeout).
func (s *Server) forwardBudget(ctx context.Context) time.Duration {
	budget := s.cfg.PeerTimeout
	if dl, ok := ctx.Deadline(); ok {
		if half := time.Until(dl) / 2; half < budget {
			budget = half
		}
	}
	if budget < time.Millisecond {
		budget = time.Millisecond
	}
	return budget
}

// forwardJob POSTs the normalized job to its owner and returns the owner's
// response body verbatim plus the owner's X-Voltron-Cache status. Any
// failure (unreachable owner, non-200 — including an owner shedding with
// 429 — or the forward budget expiring) is returned as an error; the caller
// falls back to local simulation.
func (s *Server) forwardJob(ctx context.Context, owner string, req *spec.JobRequest) ([]byte, string, error) {
	url, ok := s.peerURL[owner]
	if !ok {
		return nil, "", fmt.Errorf("no URL for replica %q", owner)
	}
	fctx, cancel := context.WithTimeout(ctx, s.forwardBudget(ctx))
	defer cancel()
	b, err := json.Marshal(req)
	if err != nil { // canonical structs always marshal
		return nil, "", err
	}
	hreq, err := http.NewRequestWithContext(fctx, http.MethodPost, url+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		return nil, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(forwardHeader, s.cfg.Self)
	resp, err := s.peerHTTP.Do(hreq)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("replica %s: status %d: %.200s", owner, resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Voltron-Cache"), nil
}

// forwardTrace fetches a trace blob from its owner. Same budget policy as
// forwardJob; a peer 404 is reported as notFound (the trace genuinely does
// not exist anywhere), any other failure as an error (the local 404 text
// stands in).
func (s *Server) forwardTrace(ctx context.Context, owner, key string) (b []byte, notFound bool, err error) {
	url, ok := s.peerURL[owner]
	if !ok {
		return nil, false, fmt.Errorf("no URL for replica %q", owner)
	}
	fctx, cancel := context.WithTimeout(ctx, s.forwardBudget(ctx))
	defer cancel()
	hreq, err := http.NewRequestWithContext(fctx, http.MethodGet, url+"/v1/traces/"+key, nil)
	if err != nil {
		return nil, false, err
	}
	hreq.Header.Set(forwardHeader, s.cfg.Self)
	resp, err := s.peerHTTP.Do(hreq)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, false, nil
	case http.StatusNotFound:
		return nil, true, nil
	default:
		return nil, false, fmt.Errorf("replica %s: status %d: %.200s", owner, resp.StatusCode, body)
	}
}
