package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// ringKeys generates a deterministic key set shaped like real ring keys
// (hex digests are what spec.RingKey yields; any string works).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

func ringWith(members ...string) *ring {
	r := newRing(0)
	for _, m := range members {
		r.add(m)
	}
	return r
}

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	return names
}

// TestRingBalance: with vnodes, every member's share of a large key set
// stays near fair. The ring is fully deterministic (SHA-256 over fixed
// names and keys), so the bounds pin realized behaviour, not a
// distributional hope.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(8000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			members := replicaNames(n)
			r := ringWith(members...)
			counts := map[string]int{}
			for _, k := range keys {
				counts[r.owner(k)]++
			}
			fair := float64(len(keys)) / float64(n)
			for _, m := range members {
				share := float64(counts[m]) / fair
				if share < 0.5 || share > 1.6 {
					t.Errorf("member %s owns %d keys (%.2fx fair share %v); want within [0.5, 1.6]",
						m, counts[m], share, fair)
				}
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			if total != len(keys) {
				t.Errorf("owners outside membership: %d keys accounted, want %d", total, len(keys))
			}
		})
	}
}

// TestRingMinimalRemapping pins the property that makes consistent hashing
// worth having: growing N→N+1 moves only keys that land on the new member
// (an expected 1/(N+1) of the space), every other key keeps its owner, and
// removing the member restores the original assignment exactly.
func TestRingMinimalRemapping(t *testing.T) {
	keys := ringKeys(8000)
	for _, n := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			r := ringWith(replicaNames(n)...)
			before := make([]string, len(keys))
			for i, k := range keys {
				before[i] = r.owner(k)
			}
			r.add("new")
			moved := 0
			for i, k := range keys {
				after := r.owner(k)
				if after == before[i] {
					continue
				}
				moved++
				if after != "new" {
					t.Fatalf("key %s moved %s -> %s, not to the added member", k, before[i], after)
				}
			}
			frac := float64(moved) / float64(len(keys))
			if bound := 2.0 / float64(n+1); frac > bound {
				t.Errorf("add remapped %.3f of keys, want <= %.3f (~1/N with slack)", frac, bound)
			}
			if moved == 0 {
				t.Error("adding a member moved no keys: the new member owns nothing")
			}
			r.remove("new")
			for i, k := range keys {
				if got := r.owner(k); got != before[i] {
					t.Fatalf("key %s not restored after remove: %s, want %s", k, got, before[i])
				}
			}
		})
	}
}

// TestRingGoldenOwners pins the deterministic owner of a fixed key set so
// any change to the hash, vnode count, or search is caught: replicas in a
// real fleet only agree on placement because this function is stable.
func TestRingGoldenOwners(t *testing.T) {
	r := ringWith("a", "b", "c")
	golden := map[string]string{
		"k0": "c",
		"k1": "c",
		"k2": "b",
		"k3": "b",
		"k4": "c",
		"k5": "c",
		"k6": "a",
		"k7": "c",
		"k8": "a",
		"k9": "b",
	}
	for k, want := range golden {
		if got := r.owner(k); got != want {
			t.Errorf("owner(%s) = %s, want %s", k, got, want)
		}
	}
}

// TestRingIdempotentMembership: double add and unknown remove are no-ops.
func TestRingIdempotentMembership(t *testing.T) {
	r := ringWith("a", "b")
	points := len(r.points)
	r.add("a")
	if len(r.points) != points {
		t.Errorf("double add grew the ring: %d -> %d points", points, len(r.points))
	}
	r.remove("nonesuch")
	if len(r.points) != points || r.size() != 2 {
		t.Errorf("unknown remove changed the ring: %d points, %d members", len(r.points), r.size())
	}
	if r.owner("x") == "" {
		t.Error("non-empty ring returned no owner")
	}
	if got := newRing(0).owner("x"); got != "" {
		t.Errorf("empty ring owner = %q, want \"\"", got)
	}
}

// TestRingConcurrentMembershipAndLookups hammers owner() while membership
// churns — the -race proof that lookups and add/remove are safe together,
// and that a lookup always lands on some live member.
func TestRingConcurrentMembershipAndLookups(t *testing.T) {
	r := ringWith("a", "b", "c")
	// Every owner a lookup can ever observe: the stable members plus the two
	// members the churn goroutine cycles in and out. (The strong minimality
	// property is pinned deterministically in TestRingMinimalRemapping; under
	// concurrency we require validity, not a specific assignment.)
	valid := map[string]bool{"a": true, "b": true, "c": true, "d": true, "e": true}
	stop := make(chan struct{})
	churned := make(chan struct{})
	go func() {
		defer close(churned)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := []string{"d", "e"}[i%2]
			if i%4 < 2 {
				r.add(m)
			} else {
				r.remove(m)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				owner := r.owner(fmt.Sprintf("key-%d", rng.Intn(1<<20)))
				if !valid[owner] {
					t.Errorf("owner %q is not a member that ever existed", owner)
					return
				}
				_ = r.size()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-churned
}
