package server

import (
	"container/list"
	"context"
	"sync"
)

// cacheStatus classifies how a lookup was satisfied.
type cacheStatus int

const (
	// cacheMiss: this request computed the value.
	cacheMiss cacheStatus = iota
	// cacheHit: the value was already cached.
	cacheHit
	// cacheDeduped: an identical request was in flight; this one waited for
	// its result instead of computing (singleflight).
	cacheDeduped
)

func (s cacheStatus) String() string {
	switch s {
	case cacheHit:
		return "hit"
	case cacheDeduped:
		return "dedup"
	}
	return "miss"
}

// sfCache is a content-addressed cache: bounded LRU over completed entries
// plus singleflight deduplication of in-flight computations. Values must be
// immutable once computed — rendered response bodies, compiled artifacts —
// so concurrent callers may share them. The server instantiates it twice:
// as the per-run result cache (V = []byte, the rendered response) and as
// the compile-artifact cache (V = *core.CompiledProgram, shared across
// every run keyed to the same compile identity).
type sfCache[V any] struct {
	mu      sync.Mutex
	max     int
	entries map[string]*sfEntry[V]
	lru     list.List // completed entries, front = most recently used
}

type sfEntry[V any] struct {
	key  string
	elem *list.Element // nil while in flight
	done chan struct{}
	val  V
	err  error
}

func newSFCache[V any](max int) *sfCache[V] {
	return &sfCache[V]{max: max, entries: map[string]*sfEntry[V]{}}
}

// cache is the rendered-response instantiation, the original result cache.
type cache = sfCache[[]byte]

func newCache(max int) *cache { return newSFCache[[]byte](max) }

// get returns the value for key, computing it via fn at most once across
// concurrent callers. Errors are not cached: the failed entry is removed so
// a later request retries (this also covers cancellation — a canceled
// claimant aborts its waiters with the same error, and the next identical
// request starts fresh). A waiter whose own ctx is canceled stops waiting
// and returns its ctx error; the in-flight computation continues for the
// other waiters.
func (c *sfCache[V]) get(ctx context.Context, key string, fn func() (V, error)) (V, cacheStatus, error) {
	var zero V
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil { // completed
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.val, cacheHit, nil
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				return zero, cacheDeduped, e.err
			}
			return e.val, cacheDeduped, nil
		case <-ctx.Done():
			return zero, cacheDeduped, ctx.Err()
		}
	}
	e := &sfEntry[V]{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.val, e.err = fn()
	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, key)
	} else {
		e.elem = c.lru.PushFront(e)
		for c.lru.Len() > c.max {
			old := c.lru.Remove(c.lru.Back()).(*sfEntry[V])
			delete(c.entries, old.key)
		}
	}
	c.mu.Unlock()
	close(e.done)
	if e.err != nil {
		return zero, cacheMiss, e.err
	}
	return e.val, cacheMiss, nil
}

// replace swaps the completed value cached under key for a new one (the
// stall-report feedback loop re-selects compiled artifacts after they were
// cached). The old entry is removed and a fresh completed entry inserted —
// dedup waiters may still be reading the old entry's fields after its done
// channel closed, so a cached entry is never mutated in place. An in-flight
// entry is left alone: its claimant will install its own result.
func (c *sfCache[V]) replace(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		if old.elem == nil {
			return // in flight; never race the claimant
		}
		c.lru.Remove(old.elem)
		delete(c.entries, key)
	}
	e := &sfEntry[V]{key: key, done: make(chan struct{}), val: val}
	close(e.done)
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.max {
		old := c.lru.Remove(c.lru.Back()).(*sfEntry[V])
		delete(c.entries, old.key)
	}
}

// peek reports whether a completed value is cached under key, without
// claiming, waiting, or touching LRU order. Admission control uses it to
// classify a request as a cached read before deciding whether to admit it.
func (c *sfCache[V]) peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return ok && e.elem != nil
}

// len reports the number of completed cached entries.
func (c *sfCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// blobStore is a bounded LRU of immutable rendered blobs (trace JSON),
// keyed by job content address. Unlike cache it has no singleflight: blobs
// are stored as a side effect of a job computing, never computed on read.
type blobStore struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     list.List // of blobEntry, front = most recently used
}

type blobEntry struct {
	key string
	val []byte
}

func newBlobStore(max int) *blobStore {
	return &blobStore{max: max, entries: map[string]*list.Element{}}
}

// put stores a blob (overwriting any previous value for key).
func (b *blobStore) put(key string, val []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.entries[key]; ok {
		el.Value.(*blobEntry).val = val
		b.lru.MoveToFront(el)
		return
	}
	b.entries[key] = b.lru.PushFront(&blobEntry{key: key, val: val})
	for b.lru.Len() > b.max {
		old := b.lru.Remove(b.lru.Back()).(*blobEntry)
		delete(b.entries, old.key)
	}
}

// get returns the blob for key, if still resident.
func (b *blobStore) get(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.entries[key]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(el)
	return el.Value.(*blobEntry).val, true
}
