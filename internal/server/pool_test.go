package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/spec"
)

// testCompiled compiles the tinyJob program the way the server would.
func testCompiled(t testing.TB) (*core.CompiledProgram, core.Config, string) {
	t.Helper()
	req, _, err := spec.DecodeJob(strings.NewReader(tinyJob()))
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	p, err := req.Program.Build()
	if err != nil {
		t.Fatal(err)
	}
	cp, err := compiler.Compile(p, req.CompilerOpts())
	if err != nil {
		t.Fatal(err)
	}
	return cp, req.MachineConfig(nil), req.MachineKey()
}

// TestMachinePoolExclusiveOwnership hammers one pool from 16 goroutines
// under -race: a machine handed out by get must never be owned by two
// workers at once (Machine state is not goroutine-safe, so an aliased
// machine is both a logic bug and a data race the detector would flag via
// the concurrent RunContext calls).
func TestMachinePoolExclusiveOwnership(t *testing.T) {
	cp, cfg, key := testCompiled(t)
	pool := newMachinePool(2)
	var inUse sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m := pool.get(key, cfg)
				if _, loaded := inUse.LoadOrStore(m, true); loaded {
					t.Error("pool handed one machine to two concurrent owners")
				}
				if _, err := m.RunContext(context.Background(), cp); err != nil {
					t.Error(err)
				}
				inUse.Delete(m)
				pool.put(key, m)
			}
		}()
	}
	wg.Wait()
	if got := pool.size(); got > 2 {
		t.Errorf("pool holds %d idle machines for one key, bound is 2", got)
	}
}

// TestMachinePoolWideShapeReset cycles warm machines through many-core
// shape changes under -race: 8 goroutines run a hybrid job at 16, 32 and
// 64 cores (one 64-core variant on a non-default 16×4 mesh) against one
// small pool, deliberately sharing a single pool key so every get may hand
// back a machine of a different width and Reset must take the rebuild path
// (cores, memory and mesh columns are rebuild keys). Every run has to
// reproduce the result a fresh machine computes for that shape.
func TestMachinePoolWideShapeReset(t *testing.T) {
	type shape struct {
		cp   *core.CompiledProgram
		cfg  core.Config
		want string
	}
	fingerprint := func(res *core.RunResult) string {
		return fmt.Sprintf("%v %+v %+v", res.RegionCycles, res.Run, res.MemStats)
	}
	var shapes []shape
	for _, v := range []struct{ cores, mesh int }{{16, 0}, {32, 0}, {64, 0}, {64, 16}} {
		machine := ""
		if v.mesh != 0 {
			machine = fmt.Sprintf(`, "machine": {"mesh_cols": %d}`, v.mesh)
		}
		job := fmt.Sprintf(`{"program": {"name": "wide", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 96, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 16}
		]}, "strategy": "hybrid", "cores": %d%s}`, v.cores, machine)
		req, _, err := spec.DecodeJob(strings.NewReader(job))
		if err != nil {
			t.Fatal(err)
		}
		if err := req.Normalize(func(string) bool { return false }); err != nil {
			t.Fatal(err)
		}
		p, err := req.Program.Build()
		if err != nil {
			t.Fatal(err)
		}
		cp, err := compiler.Compile(p, req.CompilerOpts())
		if err != nil {
			t.Fatal(err)
		}
		cfg := req.MachineConfig(nil)
		res, err := core.New(cfg).RunContext(context.Background(), cp)
		if err != nil {
			t.Fatal(err)
		}
		shapes = append(shapes, shape{cp: cp, cfg: cfg, want: fingerprint(res)})
	}
	pool := newMachinePool(1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				s := shapes[(g+i)%len(shapes)]
				m := pool.get("shared", s.cfg)
				res, err := m.RunContext(context.Background(), s.cp)
				if err != nil {
					t.Error(err)
				} else if got := fingerprint(res); got != s.want {
					t.Errorf("reset machine diverged at %d cores:\ngot  %s\nwant %s",
						s.cfg.Cores, got, s.want)
				}
				pool.put("shared", m)
			}
		}(g)
	}
	wg.Wait()
}

// TestPooledMatchesFreshServer runs the same job mix against a pooled
// server and one with pooling disabled; every response body must be
// byte-identical (the response is rendered from the RunResult, so equal
// bodies mean equal simulations).
func TestPooledMatchesFreshServer(t *testing.T) {
	jobs := []string{
		tinyJob(),
		`{"program": {"name": "tiny", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 16}
		]}, "strategy": "hybrid", "cores": 4, "baseline": true}`,
		`{"program": {"name": "pipe", "kernels": [
			{"kind": "pipeline", "name": "p", "n": 48}
		]}, "strategy": "ftlp", "cores": 4, "trace": true}`,
		`{"program": {"name": "ilp", "kernels": [
			{"kind": "ilp-loop", "name": "i", "n": 32}
		]}, "strategy": "ilp", "cores": 2}`,
		tinyJob(), // repeat: served from cache, must match the first answer
	}
	_, pooled := newTestServer(t, Config{Workers: 2})
	_, fresh := newTestServer(t, Config{Workers: 2, DisableMachinePool: true})
	for i, job := range jobs {
		respP, bodyP := postJob(t, pooled, job)
		respF, bodyF := postJob(t, fresh, job)
		if respP.StatusCode != http.StatusOK || respF.StatusCode != http.StatusOK {
			t.Fatalf("job %d: status pooled=%d fresh=%d, body %s", i, respP.StatusCode, respF.StatusCode, bodyP)
		}
		if string(bodyP) != string(bodyF) {
			t.Errorf("job %d: pooled body differs from fresh\npooled: %s\nfresh:  %s", i, bodyP, bodyF)
		}
	}
}

// TestCompileCacheSharedAcrossVariants: trace variants and machine-latency
// ablations of one program × strategy must share a single compile, reported
// per request by the X-Voltron-Compile-Cache header and in aggregate by
// /metrics.
func TestCompileCacheSharedAcrossVariants(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	post := func(body, wantRun, wantCompile string) {
		t.Helper()
		resp, b := postJob(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		if got := resp.Header.Get("X-Voltron-Cache"); got != wantRun {
			t.Errorf("X-Voltron-Cache = %q, want %q", got, wantRun)
		}
		if got := resp.Header.Get("X-Voltron-Compile-Cache"); got != wantCompile {
			t.Errorf("X-Voltron-Compile-Cache = %q, want %q", got, wantCompile)
		}
	}
	job := func(extra string) string {
		return `{"program": {"name": "ccache", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2}
		]}, "strategy": "llp", "cores": 2` + extra + `}`
	}
	// Distinct run keys, one compiled artifact.
	post(job(``), "miss", "miss")
	post(job(`, "trace": true`), "miss", "hit")
	post(job(`, "machine": {"queue_base_lat": 7}`), "miss", "hit")
	// A result-cache hit never consults the compile stage: no header.
	post(job(``), "hit", "")
	// A different strategy is a different artifact.
	post(`{"program": {"name": "ccache", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2}
		]}, "strategy": "hybrid", "cores": 2}`, "miss", "miss")

	m := s.Metrics()
	if m.CompileCacheMisses != 2 || m.CompileCacheHits != 2 {
		t.Errorf("compile cache hits=%d misses=%d, want 2/2", m.CompileCacheHits, m.CompileCacheMisses)
	}
	if m.CompileCacheEntries != 2 {
		t.Errorf("compile cache entries = %d, want 2", m.CompileCacheEntries)
	}
	if want := 0.5; m.CompileCacheHitRatio != want {
		t.Errorf("compile cache hit ratio = %v, want %v", m.CompileCacheHitRatio, want)
	}
}

// TestPoolMetricsAccount: across a burst of distinct jobs, every simulation
// got its machine from the pool (hits + news == simulations), the pool
// retains warm machines afterwards, and repeated bursts reuse them.
func TestPoolMetricsAccount(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 1})
	job := func(n int) string {
		return fmt.Sprintf(`{"program": {"name": "burst", "kernels": [
			{"kind": "doall-map", "name": "m", "n": %d, "work": 2}
		]}, "strategy": "llp", "cores": 2}`, 64+16*n)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJob(t, ts, job(i))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status %d: %s", i, resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	waitForIdle(t, s)
	m := s.Metrics()
	if m.MachinePoolHits+m.MachinePoolNews != m.Simulations {
		t.Errorf("pool accounting: hits %d + news %d != simulations %d",
			m.MachinePoolHits, m.MachinePoolNews, m.Simulations)
	}
	if m.MachinePoolIdle == 0 {
		t.Error("no warm machines retained after the burst")
	}
	if m.MachinePoolResets != m.MachinePoolHits {
		t.Errorf("resets %d != hits %d", m.MachinePoolResets, m.MachinePoolHits)
	}
	// A second identical burst runs entirely on warm machines.
	news := m.MachinePoolNews
	for i := 0; i < 6; i++ {
		// CacheEntries: 1 evicts all but the last body, so these re-simulate.
		if resp, b := postJob(t, ts, job(i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("rerun %d: status %d: %s", i, resp.StatusCode, b)
		}
	}
	waitForIdle(t, s)
	if m = s.Metrics(); m.MachinePoolNews != news {
		t.Errorf("serial rerun built %d fresh machines, want 0", m.MachinePoolNews-news)
	}
}
