package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"voltron/internal/exp"
)

// newTestServer returns a Server and an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tinyJob is a fast inline job used throughout the tests.
func tinyJob() string {
	return `{
		"program": {"name": "tiny", "kernels": [
			{"kind": "doall-map", "name": "m", "n": 64, "work": 2},
			{"kind": "serial-chain", "name": "c", "n": 16}
		]},
		"strategy": "llp", "cores": 2
	}`
}

// postJob posts a job body and returns the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

func decodeJob(t *testing.T, b []byte) JobResponse {
	t.Helper()
	var jr JobResponse
	if err := json.Unmarshal(b, &jr); err != nil {
		t.Fatalf("decoding job response %s: %v", b, err)
	}
	return jr
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
}

func TestBenchmarksList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 25 {
		t.Errorf("got %d benchmarks, want 25", len(out.Benchmarks))
	}
}

func TestInlineJobWithBaseline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJob(t, ts, `{
		"program": {"name": "p", "kernels": [{"kind": "doall-map", "name": "m", "n": 128, "work": 3}]},
		"strategy": "llp", "cores": 2, "baseline": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	jr := decodeJob(t, b)
	if jr.TotalCycles <= 0 {
		t.Error("no cycles reported")
	}
	if jr.BaselineCycles <= 0 || jr.Speedup <= 0 {
		t.Errorf("baseline missing: cycles=%d speedup=%f", jr.BaselineCycles, jr.Speedup)
	}
	if jr.Speedup < 1 {
		t.Errorf("2-core DOALL slower than serial: %f", jr.Speedup)
	}
	if jr.Program != "p" || jr.Strategy != "llp" || jr.Cores != 2 {
		t.Errorf("echo fields wrong: %+v", jr)
	}
}

func TestBenchJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJob(t, ts, `{"bench": "rawcaudio", "strategy": "serial", "cores": 1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	jr := decodeJob(t, b)
	if jr.Bench != "rawcaudio" || jr.TotalCycles <= 0 {
		t.Errorf("bad response: %+v", jr)
	}
}

func TestCacheHitAndByteIdenticalBody(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp1, b1 := postJob(t, ts, tinyJob())
	resp2, b2 := postJob(t, ts, tinyJob())
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d/%d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp1.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("first request cache status = %q, want miss", got)
	}
	if got := resp2.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("second request cache status = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("bodies differ:\n%s\n%s", b1, b2)
	}
	m := s.Metrics()
	if m.Simulations != 1 {
		t.Errorf("simulations = %d, want 1", m.Simulations)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
}

func TestCanonicalizationDefaultsShareEntry(t *testing.T) {
	// Spelling out the defaults must hash to the same cache entry as
	// omitting them.
	_, ts := newTestServer(t, Config{})
	resp1, b1 := postJob(t, ts, `{"bench": "rawcaudio"}`)
	resp2, b2 := postJob(t, ts, `{"bench": "rawcaudio", "strategy": "hybrid", "cores": 4}`)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d/%d: %s %s", resp1.StatusCode, resp2.StatusCode, b1, b2)
	}
	if got := resp2.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("explicit-defaults request cache status = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("bodies differ between default spellings")
	}
}

func TestInlineNamesDefaultAndCanonicalize(t *testing.T) {
	// Program and kernel names are defaultable like every other field:
	// omitting them must work (this is the README quickstart shape) and
	// must share a cache entry with the spelled-out defaults.
	_, ts := newTestServer(t, Config{})
	resp1, b1 := postJob(t, ts, `{
		"program": {"kernels": [{"kind": "doall-map", "n": 128, "work": 3}]},
		"strategy": "llp", "cores": 2
	}`)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("nameless program rejected: status %d, body %s", resp1.StatusCode, b1)
	}
	if jr := decodeJob(t, b1); jr.Program != "inline" {
		t.Errorf("program name = %q, want the default \"inline\"", jr.Program)
	}
	resp2, b2 := postJob(t, ts, `{
		"program": {"name": "inline", "kernels": [{"kind": "doall-map", "name": "k0", "n": 128, "work": 3}]},
		"strategy": "llp", "cores": 2
	}`)
	if got := resp2.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("spelled-out default names: cache status = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("bodies differ between default-name spellings")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"malformed", `{`},
		{"unknown field", `{"bench": "rawcaudio", "bogus": 1}`},
		{"no program", `{}`},
		{"both", `{"bench": "rawcaudio", "program": {"name": "p", "kernels": [{"kind": "branchy", "name": "b"}]}}`},
		{"unknown bench", `{"bench": "nonesuch"}`},
		{"unknown strategy", `{"bench": "rawcaudio", "strategy": "magic"}`},
		{"cores out of range", `{"bench": "rawcaudio", "cores": 99}`},
		{"unknown kernel kind", `{"program": {"name": "p", "kernels": [{"kind": "quantum", "name": "q"}]}}`},
		{"oversized kernel", `{"program": {"name": "p", "kernels": [{"kind": "doall-map", "name": "m", "n": 1048576}]}}`},
		{"duplicate kernel name", `{"program": {"name": "p", "kernels": [{"kind": "branchy", "name": "b"}, {"kind": "branchy", "name": "b"}]}}`},
	}
	for _, c := range cases {
		resp, body := postJob(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (body %s)", c.name, resp.StatusCode, body)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	resp, body := postJob(t, ts, slowJob())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if m := s.Metrics(); m.Canceled != 1 || m.Errors != 1 {
		t.Errorf("canceled/errors = %d/%d, want 1/1", m.Canceled, m.Errors)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	postJob(t, ts, tinyJob())
	postJob(t, ts, tinyJob())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs != 2 || m.Simulations != 1 || m.Workers != 3 || m.CacheEntries != 1 {
		t.Errorf("metrics: %+v", m)
	}
	if m.Latency["llp"].Count != 2 {
		t.Errorf("llp latency count = %d, want 2", m.Latency["llp"].Count)
	}
	if m.QueueDepth != 0 || m.InFlight != 0 {
		t.Errorf("idle server has queue_depth=%d in_flight=%d", m.QueueDepth, m.InFlight)
	}
}

func TestFigureEndpoint(t *testing.T) {
	suite := exp.NewSuite()
	suite.Benchmarks = []string{"rawcaudio"}
	_, ts := newTestServer(t, Config{Suite: suite})
	resp, err := http.Get(ts.URL + "/v1/figures/12")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var out struct {
		Title string `json:"title"`
		Rows  []struct {
			Benchmark string             `json:"benchmark"`
			Values    map[string]float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2 { // rawcaudio + average
		t.Errorf("rows = %d, want 2 (%s)", len(out.Rows), b)
	}
	if resp, _ := http.Get(ts.URL + "/v1/figures/99"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("figure 99 status = %d, want 400", resp.StatusCode)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{
			"program": {"name": "p%d", "kernels": [{"kind": "serial-chain", "name": "c", "n": %d}]},
			"strategy": "serial", "cores": 1
		}`, i, 8+i)
		if resp, b := postJob(t, ts, body); resp.StatusCode != 200 {
			t.Fatalf("job %d: status %d, body %s", i, resp.StatusCode, b)
		}
	}
	if got := s.cache.len(); got != 2 {
		t.Errorf("cache entries = %d, want 2 (LRU bound)", got)
	}
	// The oldest entry was evicted: re-requesting it is a miss again.
	resp, _ := postJob(t, ts, `{
		"program": {"name": "p0", "kernels": [{"kind": "serial-chain", "name": "c", "n": 8}]},
		"strategy": "serial", "cores": 1
	}`)
	if got := resp.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("evicted entry cache status = %q, want miss", got)
	}
}
