package server

// Consistent-hash ring: the placement function of a voltron-serve fleet.
// Every replica hashes the same membership to the same ring, so any replica
// can compute a key's owner locally — no coordinator, no ownership RPC. Keys
// are spread over vnodes (virtual points per member) so that a small fleet
// still gets a balanced share, and adding or removing one member remaps only
// the keys whose nearest point changed: an expected 1/N of the space, with
// every remapped key moving to (or from) the changed member and no other
// key moving at all. The ring unit tests pin both properties.

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// ringVnodes is the number of virtual points one member contributes. 128
// keeps the worst member within a few ten percent of its fair share (the
// balance test pins the realized spread) at ~3KB per member.
const ringVnodes = 128

// ringPoint is one virtual point: a position on the hash circle owned by a
// member.
type ringPoint struct {
	h      uint64
	member string
}

// ring is a thread-safe consistent-hash ring. The zero value is not usable;
// create with newRing.
type ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted ascending by h
	members map[string]bool
}

func newRing(vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = ringVnodes
	}
	return &ring{vnodes: vnodes, members: map[string]bool{}}
}

// ringHash maps a string to a position on the circle: the first 8 bytes of
// its SHA-256. Cryptographic dispersion is what makes vnode balance work;
// speed is irrelevant here (one hash per lookup).
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// add inserts a member's vnodes. Adding an existing member is a no-op.
func (r *ring) add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if member == "" || r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{ringHash(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].h < r.points[j].h })
}

// remove deletes a member and all its vnodes. Removing an unknown member is
// a no-op.
func (r *ring) remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the member owning key: the member of the first vnode at or
// after the key's position, wrapping at the top of the circle. Returns ""
// on an empty ring.
func (r *ring) owner(key string) string {
	h := ringHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// size reports the member count.
func (r *ring) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}
