package server

// The warm-worker layer: a pool of reusable core.Machines keyed by machine
// configuration, and a batcher that drains queued runs of one compiled
// artifact through whichever request first wins a worker slot. Together
// they make the hot serving path "one event loop per job": the compile
// stage is satisfied by the artifact cache, the machine by a Reset instead
// of a rebuild, and consecutive homogeneous jobs keep one warm machine's
// caches of allocation hot.

import (
	"context"
	"fmt"
	"sync"

	"voltron/internal/core"
	"voltron/internal/stats"
)

// machinePool keeps warm core.Machines per machine configuration so a
// worker slot grabs a reset machine instead of rebuilding the cache tag
// arrays, network queues and TM sets per job. A machine handed out by get
// is exclusively owned by the caller until put back — the pool never
// aliases a machine to two owners (asserted by a -race test). Only idle
// machines are bounded (perKey per configuration, maxIdle overall); in-use
// machines are already bounded by the worker semaphore.
type machinePool struct {
	mu      sync.Mutex
	perKey  int
	maxIdle int
	idle    map[string][]*core.Machine
	total   int

	hits   stats.Counter // get satisfied by a warm pooled machine
	resets stats.Counter // Machine.Reset calls performed on reuse
	news   stats.Counter // get built a fresh machine
}

// newMachinePool creates a pool bounded to perKey idle machines per
// configuration. perKey = 0 disables pooling: every get builds fresh and
// every put drops — the before/after comparison path.
func newMachinePool(perKey int) *machinePool {
	return &machinePool{perKey: perKey, maxIdle: 4 * perKey, idle: map[string][]*core.Machine{}}
}

// get returns a machine configured per cfg, reusing (and resetting) a
// pooled one under the same key when available.
func (p *machinePool) get(key string, cfg core.Config) *core.Machine {
	p.mu.Lock()
	if q := p.idle[key]; len(q) > 0 {
		m := q[len(q)-1]
		q[len(q)-1] = nil
		p.idle[key] = q[:len(q)-1]
		p.total--
		p.mu.Unlock()
		p.hits.Inc()
		p.resets.Inc()
		m.Reset(cfg)
		return m
	}
	p.mu.Unlock()
	p.news.Inc()
	return core.New(cfg)
}

// put returns a machine to the pool; machines over the idle bounds are
// dropped for the GC.
func (p *machinePool) put(key string, m *core.Machine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[key]) >= p.perKey || p.total >= p.maxIdle {
		return
	}
	p.idle[key] = append(p.idle[key], m)
	p.total++
}

// size reports the number of idle pooled machines.
func (p *machinePool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// runReq is one queued simulation: a compiled artifact plus the machine
// configuration to run it on. batch groups runs by artifact so one
// slot-holder drains them back to back on one warm machine; pool selects
// which warm pool serves the run.
type runReq struct {
	batch string // compile-artifact key: the batching group
	pool  string // machine-configuration key: which warm pool serves it
	cfg   core.Config
	cp    *core.CompiledProgram
	ctx   context.Context
	done  chan struct{} // closed once res/err are set
	res   *core.RunResult
	err   error
}

// batcher executes runs on a bounded number of worker slots. A request
// enqueues its run into its artifact's group, then either wins a slot — in
// which case it drains the whole group, running queued homogeneous jobs
// consecutively on one warm machine — or observes its run completed by
// another request's drain. There are no standing worker goroutines: every
// run executes on some request handler's own goroutine, so draining HTTP
// handlers drains the batcher for free and nothing can leak.
type batcher struct {
	sem  chan struct{}
	pool *machinePool

	mu     sync.Mutex
	groups map[string][]*runReq

	queued  stats.Counter // runs waiting for a slot (gauge)
	running stats.Counter // runs executing (gauge)
	runs    stats.Counter // simulations executed
	batched stats.Counter // runs drained on another request's slot
}

func newBatcher(workers int, pool *machinePool) *batcher {
	return &batcher{
		sem:    make(chan struct{}, workers),
		pool:   pool,
		groups: map[string][]*runReq{},
	}
}

// run executes req, batching it with queued runs that share its artifact.
// It blocks until the run completed (on this or another goroutine) or ctx
// was canceled while the run was still queued; a run already claimed by a
// drainer is waited out (the canceled ctx is threaded into the simulator,
// so it fails fast).
func (b *batcher) run(ctx context.Context, req *runReq) (*core.RunResult, error) {
	req.ctx = ctx
	req.done = make(chan struct{})
	b.mu.Lock()
	b.groups[req.batch] = append(b.groups[req.batch], req)
	b.mu.Unlock()
	b.queued.Add(1)

	select {
	case b.sem <- struct{}{}:
		b.drain(req)
		<-b.sem
		// drain emptied this group's queue, so our run was claimed — by us
		// or by an earlier drainer that may still be executing it.
		<-req.done
	case <-req.done:
	case <-ctx.Done():
		if b.unqueue(req) {
			b.queued.Add(-1)
			return nil, fmt.Errorf("waiting for a worker slot: %w", ctx.Err())
		}
		<-req.done
	}
	return req.res, req.err
}

// drain claims and executes queued runs of owner's group until the group is
// empty, reusing one warm machine per machine configuration via the pool.
// Runs whose request was canceled while queued are answered without
// simulating.
func (b *batcher) drain(owner *runReq) {
	for {
		b.mu.Lock()
		q := b.groups[owner.batch]
		var req *runReq
		for req == nil && len(q) > 0 {
			r := q[0]
			q[0] = nil
			q = q[1:]
			if r.ctx.Err() != nil {
				r.err = fmt.Errorf("waiting for a worker slot: %w", r.ctx.Err())
				b.queued.Add(-1)
				close(r.done)
				continue
			}
			req = r
		}
		if req == nil {
			delete(b.groups, owner.batch)
			b.mu.Unlock()
			return
		}
		b.groups[owner.batch] = q
		b.mu.Unlock()

		b.queued.Add(-1)
		b.running.Add(1)
		m := b.pool.get(req.pool, req.cfg)
		req.res, req.err = m.RunContext(req.ctx, req.cp)
		b.pool.put(req.pool, m)
		b.running.Add(-1)
		b.runs.Inc()
		if req != owner {
			b.batched.Inc()
		}
		close(req.done)
	}
}

// unqueue removes a still-queued run; false means a drainer already claimed
// it (and will close its done channel).
func (b *batcher) unqueue(req *runReq) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.groups[req.batch]
	for i, r := range q {
		if r == req {
			b.groups[req.batch] = append(q[:i], q[i+1:]...)
			return true
		}
	}
	return false
}
