package server

// Peer-layer tests: ParsePeers parsing, the forward budget arithmetic, and
// the double-deadline regression — a dead owner must degrade to a local
// simulation inside the inbound budget, never to a 504 spent waiting on the
// peer.

import (
	"context"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"voltron/internal/spec"
)

// jobOwnedByName finds a clusterJob whose ring owner (per s's ring) is the
// named replica.
func jobOwnedByName(t *testing.T, s *Server, owner string) ([]byte, string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		body, key := clusterJob(t, i, false)
		if s.ring.owner(spec.RingKeyOf(key)) == owner {
			return body, key
		}
	}
	t.Fatalf("no clusterJob owned by %s in 1000 candidates", owner)
	return nil, ""
}

func TestParsePeers(t *testing.T) {
	dir := t.TempDir()
	peersFile := filepath.Join(dir, "peers.txt")
	if err := os.WriteFile(peersFile, []byte(
		"# fleet membership\n\na=http://h1:8080\n  b = http://h2:8080/  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		arg  string
		want []Replica
		err  string
	}{
		{
			name: "inline list",
			arg:  "a=http://h1:8080,b=http://h2:8080",
			want: []Replica{{"a", "http://h1:8080"}, {"b", "http://h2:8080"}},
		},
		{
			name: "whitespace and trailing slash normalized",
			arg:  " a = http://h1:8080/ , b=http://h2:8080 ",
			want: []Replica{{"a", "http://h1:8080"}, {"b", "http://h2:8080"}},
		},
		{
			name: "single entry",
			arg:  "solo=http://h:1",
			want: []Replica{{"solo", "http://h:1"}},
		},
		{
			name: "file with comments and blanks",
			arg:  "@" + peersFile,
			want: []Replica{{"a", "http://h1:8080"}, {"b", "http://h2:8080"}},
		},
		{name: "missing file", arg: "@" + filepath.Join(dir, "nope"), err: "reading peers file"},
		{name: "bad entry", arg: "a=http://h1,borked", err: "bad peer entry"},
		{name: "missing name", arg: "=http://h1", err: "bad peer entry"},
		{name: "missing url", arg: "a=", err: "bad peer entry"},
		{name: "duplicate name", arg: "a=http://h1,a=http://h2", err: "duplicate peer name"},
		{name: "empty", arg: "", err: "empty peer list"},
		{name: "only separators", arg: " , , ", err: "empty peer list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ParsePeers(tc.arg)
			if tc.err != "" {
				if err == nil || !strings.Contains(err.Error(), tc.err) {
					t.Fatalf("ParsePeers(%q) err = %v, want containing %q", tc.arg, err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParsePeers(%q): %v", tc.arg, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("ParsePeers(%q) = %+v, want %+v", tc.arg, got, tc.want)
			}
		})
	}
}

// TestForwardBudget pins the budget arithmetic: capped at PeerTimeout with
// no inbound deadline, at half the remaining inbound budget otherwise, and
// floored at 1ms so an exhausted context cannot produce a zero timeout.
func TestForwardBudget(t *testing.T) {
	s := New(Config{PeerTimeout: 10 * time.Second})
	if got := s.forwardBudget(context.Background()); got != 10*time.Second {
		t.Errorf("no deadline: budget %v, want PeerTimeout", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	if got := s.forwardBudget(ctx); got < time.Second || got > 2*time.Second {
		t.Errorf("4s remaining: budget %v, want ~2s (half the remainder)", got)
	}
	spent, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if got := s.forwardBudget(spent); got != time.Millisecond {
		t.Errorf("expired context: budget %v, want the 1ms floor", got)
	}
}

// blackholePeer returns the URL of a listener that accepts connections and
// then never responds — the worst kind of dead owner, because a forward
// with a generous timeout will wait it out in full.
func blackholePeer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			t.Cleanup(func() { conn.Close() })
		}
	}()
	return "http://" + ln.Addr().String()
}

// TestPeerTimeoutFallsBackLocally is the double-deadline regression. The
// owner is a black hole and PeerTimeout is far above the request budget; if
// the forward inherited the client's deadline (the bug), it would wait the
// inbound budget out on the dead peer and 504 with nothing left for the
// fallback. The fix caps the forward at half the remaining budget, so the
// request must come back 200 from a local simulation within the inbound
// timeout.
func TestPeerTimeoutFallsBackLocally(t *testing.T) {
	cfg := Config{
		Workers:        2,
		RequestTimeout: 3 * time.Second,
		PeerTimeout:    time.Hour, // deliberately absurd: the ctx cap must win
		Self:           "a",
		Peers:          []Replica{{Name: "a", URL: "http://unused"}, {Name: "b", URL: blackholePeer(t)}},
	}
	s, ts := newTestServer(t, cfg)
	job, _ := jobOwnedByName(t, s, "b")

	start := time.Now()
	resp, body := postJob(t, ts, string(job))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %.200s); want 200 via local fallback", resp.StatusCode, body)
	}
	if elapsed >= cfg.RequestTimeout {
		t.Errorf("request took %v, at or above the %v inbound budget", elapsed, cfg.RequestTimeout)
	}
	if got := resp.Header.Get("X-Voltron-Peer"); got != "" {
		t.Errorf("X-Voltron-Peer = %q on a fallback response, want unset", got)
	}
	if got := resp.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("X-Voltron-Cache = %q, want miss (simulated locally)", got)
	}
	m := s.Metrics()
	if m.Simulations != 1 || m.PeerForwards != 1 || m.PeerFallbacks != 1 || m.PeerFills != 0 {
		t.Errorf("sims/forwards/fallbacks/fills = %d/%d/%d/%d, want 1/1/1/0",
			m.Simulations, m.PeerForwards, m.PeerFallbacks, m.PeerFills)
	}

	// The fallback result is cached: a repeat serves locally, instantly,
	// without trying the dead owner again.
	resp2, _ := postJob(t, ts, string(job))
	if resp2.Header.Get("X-Voltron-Cache") != "hit" {
		t.Errorf("repeat after fallback: cache %q, want hit", resp2.Header.Get("X-Voltron-Cache"))
	}
	if m2 := s.Metrics(); m2.PeerForwards != 1 {
		t.Errorf("repeat re-forwarded to the dead owner (%d forwards)", m2.PeerForwards)
	}
}

// TestForwardedRequestsComputeLocally: a request carrying the forwarded
// marker never forwards again, even when the ring says another replica owns
// the key — the loop-prevention invariant.
func TestForwardedRequestsComputeLocally(t *testing.T) {
	cfg := Config{
		Workers: 2,
		Self:    "a",
		Peers:   []Replica{{Name: "a", URL: "http://unused"}, {Name: "b", URL: blackholePeer(t)}},
	}
	s, ts := newTestServer(t, cfg)
	job, _ := jobOwnedByName(t, s, "b")

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(string(job)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request: status %d", resp.StatusCode)
	}
	if m := s.Metrics(); m.PeerForwards != 0 || m.Simulations != 1 {
		t.Errorf("forwarded request forwarded again: forwards/sims = %d/%d, want 0/1",
			m.PeerForwards, m.Simulations)
	}
}
