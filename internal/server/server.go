// Package server implements voltron-serve: an HTTP JSON API in front of
// the compile-and-simulate pipeline. Jobs (benchmark or inline program ×
// strategy × machine) run on a bounded worker pool; results are
// content-addressed — the cache key is the SHA-256 of the canonicalized
// request — so repeated and concurrent identical requests collapse onto
// one simulation (singleflight) and an LRU-bounded cache. Requests carry
// per-request timeouts whose cancellation is threaded into the simulator's
// event loop (core.Machine.RunContext).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"voltron/internal/compiler"
	"voltron/internal/core"
	"voltron/internal/exp"
	"voltron/internal/ir"
	"voltron/internal/lang"
	"voltron/internal/prof"
	"voltron/internal/spec"
	"voltron/internal/stats"
	"voltron/internal/trace"
	"voltron/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Workers bounds concurrently running simulations. Defaults to
	// runtime.GOMAXPROCS(0). Requests beyond the bound queue (their wait
	// shows up as the queue_depth metric).
	Workers int
	// CacheEntries bounds the completed-result LRU. Defaults to 256.
	CacheEntries int
	// RequestTimeout bounds one job (queue wait + compile + simulate).
	// Defaults to 2 minutes.
	RequestTimeout time.Duration
	// TraceEntries bounds the rendered-trace LRU (traces are much larger
	// than job responses, so they get their own, smaller bound). Defaults
	// to 32.
	TraceEntries int
	// ArtifactEntries bounds the compile-artifact LRU: compiled programs
	// cached by spec.CompileKey and shared across trace variants, machine
	// ablations and baseline runs of the same program. Defaults to 64.
	ArtifactEntries int
	// DisableMachinePool turns off warm-machine reuse: every run builds a
	// fresh core.Machine. The pooled path is byte-identical to this one
	// (the differential tests assert it); the switch exists for the
	// before/after comparison in the serve smoke and benchmarks.
	DisableMachinePool bool
	// Self names this replica on the cluster's consistent-hash ring. Empty
	// with no Peers means single-replica operation.
	Self string
	// Peers lists the fleet membership (it may include this replica's own
	// entry, which is skipped). Every replica must be configured with the
	// same list: ring agreement is what lets any replica compute a key's
	// owner locally.
	Peers []Replica
	// PeerTimeout caps one peer forward. The realized forward timeout is
	// additionally capped at half the inbound request's remaining budget,
	// so a dead owner always leaves time for the local-simulation fallback.
	// Defaults to 10 seconds.
	PeerTimeout time.Duration
	// AdmitSimulate bounds concurrently admitted simulate-class requests
	// (jobs with no completed local cache entry). Requests beyond the bound
	// are shed with a typed 429 and Retry-After. Defaults to 32× Workers.
	AdmitSimulate int
	// AdmitCachedRead bounds concurrently admitted cached-read requests.
	// Defaults to 8× AdmitSimulate.
	AdmitCachedRead int
	// Suite optionally shares an experiment suite (benchmark programs,
	// profiles, and figure results). Defaults to a fresh one.
	Suite *exp.Suite
}

// Server serves compile-and-simulate jobs. Create with New, expose with
// Handler, stop by shutting down the enclosing http.Server (jobs run
// synchronously inside handlers, so draining handlers drains jobs).
type Server struct {
	cfg       Config
	suite     *exp.Suite
	cache     *cache
	artifacts *sfCache[*core.CompiledProgram]
	traces    *blobStore
	pool      *machinePool
	batch     *batcher
	// compileSem bounds concurrent compilations separately from the run
	// slots (a compile must not starve runs of the warm machines it feeds).
	compileSem chan struct{}
	start      time.Time
	// Cluster state: the consistent-hash ring over the fleet (nil when
	// single-replica), the peer base URLs by replica name, and the shared
	// client for peer forwards.
	ring     *ring
	peerURL  map[string]string
	peerHTTP *http.Client
	// adm is the admission layer: per-class bounds in front of the batcher.
	adm *admission

	jobs           stats.Counter
	hits           stats.Counter
	misses         stats.Counter
	deduped        stats.Counter
	compileHits    stats.Counter
	compileMisses  stats.Counter
	compileDeduped stats.Counter
	// Tiered strategy selection: regions decided statically by the
	// classifier, regions escalated to measured selection, and regions
	// re-selected by the stall-report agreement check (Recheck).
	selectStatic    stats.Counter
	selectEscalated stats.Counter
	selectRechecks  stats.Counter
	// Peer-to-peer cache fill: forwards attempted, bodies actually served
	// by a peer, and local-simulation fallbacks after a peer failure.
	peerForwards  stats.Counter
	peerFills     stats.Counter
	peerFallbacks stats.Counter
	errorsN       stats.Counter
	canceled      stats.Counter
	latency       map[string]*stats.Histogram
}

// New creates a Server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 256
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.TraceEntries <= 0 {
		cfg.TraceEntries = 32
	}
	if cfg.ArtifactEntries <= 0 {
		cfg.ArtifactEntries = 64
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 10 * time.Second
	}
	if cfg.AdmitSimulate <= 0 {
		cfg.AdmitSimulate = 32 * cfg.Workers
	}
	if cfg.AdmitCachedRead <= 0 {
		cfg.AdmitCachedRead = 8 * cfg.AdmitSimulate
	}
	if len(cfg.Peers) > 0 && cfg.Self == "" {
		cfg.Self = "self"
	}
	if cfg.Suite == nil {
		cfg.Suite = exp.NewSuite()
		cfg.Suite.Workers = cfg.Workers
	}
	poolPerKey := cfg.Workers
	if cfg.DisableMachinePool {
		poolPerKey = 0
	}
	s := &Server{
		cfg:        cfg,
		suite:      cfg.Suite,
		cache:      newCache(cfg.CacheEntries),
		artifacts:  newSFCache[*core.CompiledProgram](cfg.ArtifactEntries),
		traces:     newBlobStore(cfg.TraceEntries),
		pool:       newMachinePool(poolPerKey),
		compileSem: make(chan struct{}, cfg.Workers),
		start:      time.Now(),
		latency:    map[string]*stats.Histogram{},
	}
	s.batch = newBatcher(cfg.Workers, s.pool)
	s.adm = newAdmission(cfg.AdmitSimulate, cfg.AdmitCachedRead)
	if len(cfg.Peers) > 0 {
		s.ring = newRing(ringVnodes)
		s.ring.add(cfg.Self)
		s.peerURL = map[string]string{}
		for _, p := range cfg.Peers {
			if p.Name == "" || p.Name == cfg.Self {
				continue
			}
			s.ring.add(p.Name)
			if p.URL != "" {
				s.peerURL[p.Name] = strings.TrimSuffix(p.URL, "/")
			}
		}
		s.peerHTTP = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	for _, si := range spec.Strategies() {
		s.latency[si.Name] = &stats.Histogram{}
	}
	return s
}

// Handler returns the server's HTTP API:
//
//	GET  /healthz          — liveness
//	GET  /metrics          — service counters and latency histograms (JSON)
//	GET  /v1/benchmarks    — built-in benchmark names
//	GET  /v1/strategies    — parallelization strategies with metadata
//	POST /v1/jobs          — run one compile-and-simulate job
//	GET  /v1/traces/{key}  — Chrome trace JSON of a traced job
//	GET  /v1/figures/{n}   — regenerate one paper figure (3, 10-14)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/validate", s.handleValidate)
	mux.HandleFunc("GET /v1/traces/{key}", s.handleTrace)
	mux.HandleFunc("GET /v1/figures/{n}", s.handleFigure)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"benchmarks": workload.Names()})
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"strategies": spec.Strategies()})
}

// handleTrace serves the Chrome trace JSON of a previously traced job.
// Traces live in a bounded LRU sharded like job results: a local miss on a
// non-owner replica forwards to the key's ring owner (which rendered and
// stored the blob when it ran the traced job) and fills the local store, so
// a trace is fetchable from any replica of the fleet. A trace evicted
// everywhere returns 404 with a hint to re-run the job.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok := s.traces.get(key)
	if !ok {
		if owner := s.ownerOf(key); owner != "" && r.Header.Get(forwardHeader) == "" {
			s.peerForwards.Inc()
			if pb, notFound, err := s.forwardTrace(r.Context(), owner, key); err == nil && !notFound {
				s.peerFills.Inc()
				s.traces.put(key, pb)
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("X-Voltron-Peer", owner)
				w.WriteHeader(http.StatusOK)
				w.Write(pb)
				return
			}
		}
		s.writeError(w, http.StatusNotFound, fmt.Errorf("no trace for %q (evicted or never produced; re-POST the job with \"trace\": true)", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// MetricsSnapshot is the /metrics response.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Jobs          int64   `json:"jobs"`
	Simulations   int64   `json:"simulations"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheDeduped  int64   `json:"cache_deduped"`
	CacheEntries  int     `json:"cache_entries"`
	// Compile-artifact cache effectiveness: how often the compile stage was
	// satisfied without compiling. The hit ratio counts hits and dedups over
	// all compile-stage lookups (0 when none happened yet).
	CompileCacheHits     int64   `json:"compile_cache_hits"`
	CompileCacheMisses   int64   `json:"compile_cache_misses"`
	CompileCacheDeduped  int64   `json:"compile_cache_deduped"`
	CompileCacheEntries  int     `json:"compile_cache_entries"`
	CompileCacheHitRatio float64 `json:"compile_cache_hit_ratio"`
	// Machine-pool effectiveness: a hit reused (and reset) a warm machine,
	// a "new" built one from scratch. BatchedRuns counts simulations drained
	// on another request's worker slot (homogeneous-job batching).
	MachinePoolHits   int64 `json:"machine_pool_hits"`
	MachinePoolResets int64 `json:"machine_pool_resets"`
	MachinePoolNews   int64 `json:"machine_pool_news"`
	MachinePoolIdle   int   `json:"machine_pool_idle"`
	BatchedRuns       int64 `json:"batched_runs"`
	// Tiered strategy selection over all compiles this process ran: regions
	// the classifier decided without simulation, regions it escalated to
	// measured selection, and regions re-selected because a traced run's
	// stall profile contradicted the static pick.
	SelectStatic     int64 `json:"select_static_total"`
	SelectEscalated  int64 `json:"select_escalated_total"`
	SelectReselected int64 `json:"select_reselected_total"`
	// Cluster: this replica's ring identity and the peer-to-peer cache-fill
	// traffic. Forwards count attempts (jobs and traces), fills count bodies
	// actually served by a peer, fallbacks count local simulations run
	// because the owning peer failed or timed out.
	Replica       string `json:"replica,omitempty"`
	Peers         int    `json:"peers,omitempty"`
	PeerForwards  int64  `json:"peer_forwards_total"`
	PeerFills     int64  `json:"peer_fills_total"`
	PeerFallbacks int64  `json:"peer_fallbacks_total"`
	// Admission control: per-class admitted depth (a gauge: requests between
	// admit and response), the class bound, and the total shed with 429.
	AdmitQueueSimulate   int64                              `json:"admit_queue_simulate"`
	AdmitQueueCachedRead int64                              `json:"admit_queue_cached_read"`
	AdmitLimitSimulate   int                                `json:"admit_limit_simulate"`
	AdmitLimitCachedRead int                                `json:"admit_limit_cached_read"`
	ShedSimulate         int64                              `json:"shed_simulate_total"`
	ShedCachedRead       int64                              `json:"shed_cached_read_total"`
	Errors               int64                              `json:"errors"`
	Canceled             int64                              `json:"canceled"`
	QueueDepth           int64                              `json:"queue_depth"`
	InFlight             int64                              `json:"in_flight"`
	Latency              map[string]stats.HistogramSnapshot `json:"latency_by_strategy"`
}

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		UptimeSeconds:        time.Since(s.start).Seconds(),
		Workers:              s.cfg.Workers,
		Jobs:                 s.jobs.Value(),
		Simulations:          s.batch.runs.Value(),
		CacheHits:            s.hits.Value(),
		CacheMisses:          s.misses.Value(),
		CacheDeduped:         s.deduped.Value(),
		CacheEntries:         s.cache.len(),
		CompileCacheHits:     s.compileHits.Value(),
		CompileCacheMisses:   s.compileMisses.Value(),
		CompileCacheDeduped:  s.compileDeduped.Value(),
		CompileCacheEntries:  s.artifacts.len(),
		MachinePoolHits:      s.pool.hits.Value(),
		MachinePoolResets:    s.pool.resets.Value(),
		MachinePoolNews:      s.pool.news.Value(),
		MachinePoolIdle:      s.pool.size(),
		BatchedRuns:          s.batch.batched.Value(),
		SelectStatic:         s.selectStatic.Value(),
		SelectEscalated:      s.selectEscalated.Value(),
		SelectReselected:     s.selectRechecks.Value(),
		Replica:              s.cfg.Self,
		Peers:                len(s.peerURL),
		PeerForwards:         s.peerForwards.Value(),
		PeerFills:            s.peerFills.Value(),
		PeerFallbacks:        s.peerFallbacks.Value(),
		AdmitQueueSimulate:   int64(s.adm.depthOf(admSimulate)),
		AdmitQueueCachedRead: int64(s.adm.depthOf(admCachedRead)),
		AdmitLimitSimulate:   s.cfg.AdmitSimulate,
		AdmitLimitCachedRead: s.cfg.AdmitCachedRead,
		ShedSimulate:         s.adm.shed[admSimulate].Value(),
		ShedCachedRead:       s.adm.shed[admCachedRead].Value(),
		Errors:               s.errorsN.Value(),
		Canceled:             s.canceled.Value(),
		QueueDepth:           s.batch.queued.Value(),
		InFlight:             s.batch.running.Value(),
		Latency:              map[string]stats.HistogramSnapshot{},
	}
	if total := m.CompileCacheHits + m.CompileCacheMisses + m.CompileCacheDeduped; total > 0 {
		m.CompileCacheHitRatio = float64(m.CompileCacheHits+m.CompileCacheDeduped) / float64(total)
	}
	for name, h := range s.latency {
		m.Latency[name] = h.Snapshot()
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

// JobResponse is the /v1/jobs response body. It is rendered once per cache
// key, so identical requests receive byte-identical bodies.
type JobResponse struct {
	// SchemaVersion identifies the response shape (spec.SchemaVersion).
	SchemaVersion int              `json:"schema_version"`
	Key           string           `json:"key"`
	Bench         string           `json:"bench,omitempty"`
	Program       string           `json:"program,omitempty"`
	Strategy      string           `json:"strategy"`
	Cores         int              `json:"cores"`
	TotalCycles   int64            `json:"total_cycles"`
	RegionCycles  []int64          `json:"region_cycles"`
	ModeCoupled   float64          `json:"mode_coupled"`
	ModeDecoupl   float64          `json:"mode_decoupled"`
	Spawns        int64            `json:"spawns"`
	TMConflicts   int64            `json:"tm_conflicts"`
	Stalls        map[string]int64 `json:"stalls"`
	Mem           MemStats         `json:"mem"`
	// BaselineCycles and Speedup are present when the request asked for a
	// baseline comparison.
	BaselineCycles int64   `json:"baseline_cycles,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	// TraceURL and StallReport are present when the request asked for a
	// trace: the URL serves the run's Chrome trace JSON (Perfetto-loadable),
	// the report is the stall-attribution breakdown of the same run.
	TraceURL    string        `json:"trace_url,omitempty"`
	StallReport *trace.Report `json:"stall_report,omitempty"`
}

// MemStats is the memory-system slice of the response.
type MemStats struct {
	L2Hits        int64 `json:"l2_hits"`
	L2Misses      int64 `json:"l2_misses"`
	C2CTransfers  int64 `json:"c2c_transfers"`
	Invalidations int64 `json:"invalidations"`
	Writebacks    int64 `json:"writebacks"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	req, deprecated, err := spec.DecodeJob(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(deprecated) > 0 {
		w.Header().Set("X-Voltron-Deprecated", strings.Join(deprecated, ", "))
	}
	if err := req.Normalize(func(b string) bool {
		_, err := s.suite.Program(b)
		return err == nil
	}); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.jobs.Inc()
	// Admission: classify by expected cost — a completed local cache entry
	// makes this a cached read (microseconds), anything else may compile and
	// simulate — and shed with a typed 429 when the class is at its bound.
	key := req.Key()
	class := admSimulate
	if s.cache.peek(key) {
		class = admCachedRead
	}
	release, depth, ok := s.adm.admit(class)
	if !ok {
		s.writeShed(w, class, depth)
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	startedAt := time.Now()
	out, err := s.jobBody(ctx, req, key, r.Header.Get(forwardHeader) != "")
	switch out.status {
	case cacheHit:
		s.hits.Inc()
	case cacheMiss:
		s.misses.Inc()
	case cacheDeduped:
		s.deduped.Inc()
	}
	if err != nil {
		s.errorsN.Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.canceled.Inc()
			s.writeError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			s.canceled.Inc()
			// 499 Client Closed Request (nginx convention): the client is
			// usually gone, but write a status anyway for proxies and tests.
			s.writeError(w, 499, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.latency[req.Strategy].Observe(time.Since(startedAt))
	w.Header().Set("Content-Type", "application/json")
	cacheHdr := out.status.String()
	if out.peer != "" {
		// The body was filled from the owning replica: report the owner's
		// cache status — the fleet-level answer, "hit" when any replica had
		// already simulated this job — and name the peer that served it.
		if out.peerCache != "" {
			cacheHdr = out.peerCache
		}
		w.Header().Set("X-Voltron-Peer", out.peer)
	}
	w.Header().Set("X-Voltron-Cache", cacheHdr)
	if out.compiled {
		// Only a request that actually reached the compile stage (a result
		// cache miss computed locally) reports how that stage was satisfied;
		// a result hit, dedup or peer fill never consulted the artifact cache.
		w.Header().Set("X-Voltron-Compile-Cache", out.compile.String())
		if out.selMode != "" {
			// How per-region strategy selection decided this job's artifact:
			// "measured", "static" (every region decided by the classifier) or
			// "escalated" (classifier plus measured fallback for low-confidence
			// or stall-contradicted regions). Absent for compiles that run no
			// selection (serial, single-core).
			w.Header().Set("X-Voltron-Select", out.selMode)
		}
	}
	w.WriteHeader(http.StatusOK)
	w.Write(out.body)
}

// ValidateRegion is one region's entry in the validate response: the
// static classifier's verdict for the region under the requested strategy
// and core count.
type ValidateRegion struct {
	Name string `json:"name"`
	// Tier is the classifier's verdict: small, doall, easy or hard.
	Tier string `json:"tier"`
	// Choice is the strategy the classifier would install for the region:
	// "single core", "ILP", "fine-grain TLP" or "LLP".
	Choice string `json:"choice"`
	// Confidence is the relative margin of the winning estimate over the
	// runner-up, in [0, 1].
	Confidence float64 `json:"confidence"`
}

// ValidateResponse is the POST /v1/validate body: the program parsed,
// type-checked, lowered and classified — nothing simulated.
type ValidateResponse struct {
	SchemaVersion int              `json:"schema_version"`
	Program       string           `json:"program"`
	Kind          string           `json:"kind"`
	Strategy      string           `json:"strategy"`
	Cores         int              `json:"cores"`
	Regions       []ValidateRegion `json:"regions"`
}

// handleValidate checks a job without running it: the request decodes and
// normalizes exactly like POST /v1/jobs (source programs parse and
// type-check here, returning the frontend's positioned diagnostics on
// failure), the program is lowered to IR, and the static classifier
// reports the per-region plan the compiler would install. Nothing is
// simulated and nothing enters the caches.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	req, deprecated, err := spec.DecodeJob(r.Body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(deprecated) > 0 {
		w.Header().Set("X-Voltron-Deprecated", strings.Join(deprecated, ", "))
	}
	if err := req.Normalize(func(b string) bool {
		_, err := s.suite.Program(b)
		return err == nil
	}); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var (
		p  *ir.Program
		pr *prof.Profile
	)
	if req.Program.Kind == spec.KindBench {
		if p, err = s.suite.Program(req.Program.Bench); err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		if pr, err = s.suite.Profile(req.Program.Bench); err != nil {
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else if p, err = req.Program.Build(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := req.CompilerOpts()
	opts.Profile = pr
	cls, err := compiler.ClassifyProgram(p, opts)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := ValidateResponse{
		SchemaVersion: spec.SchemaVersion,
		Program:       p.Name,
		Kind:          req.Program.Kind,
		Strategy:      req.Strategy,
		Cores:         req.Cores,
	}
	for i, c := range cls {
		resp.Regions = append(resp.Regions, ValidateRegion{
			Name:       p.Regions[i].Name,
			Tier:       c.Tier.String(),
			Choice:     c.Choice.String(),
			Confidence: c.Confidence,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// writeShed answers a request the admission layer rejected: 429, a
// Retry-After header, and the same estimate in a typed body.
func (s *Server) writeShed(w http.ResponseWriter, class admClass, depth int) {
	secs := s.retryAfterSeconds(class, depth)
	limit := s.cfg.AdmitSimulate
	if class == admCachedRead {
		limit = s.cfg.AdmitCachedRead
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusTooManyRequests, ShedResponse{
		SchemaVersion:     spec.SchemaVersion,
		Code:              spec.ErrQueueFull,
		Error:             fmt.Sprintf("%s queue full (%d admitted, limit %d); retry in %ds", class, depth, limit, secs),
		Class:             class.String(),
		QueueDepth:        depth,
		QueueLimit:        limit,
		RetryAfterSeconds: secs,
	})
}

// retryAfterSeconds estimates when a shed client should retry: the time for
// the admitted simulate queue to drain through the worker pool at the
// observed mean job latency (100ms before any observation exists), clamped
// to [1, 30] seconds. Cached reads drain in microseconds, so their estimate
// is the floor.
func (s *Server) retryAfterSeconds(class admClass, depth int) int {
	if class == admCachedRead {
		return 1
	}
	var sumUS float64
	var n int64
	for _, h := range s.latency {
		snap := h.Snapshot()
		sumUS += snap.MeanUS * float64(snap.Count)
		n += snap.Count
	}
	meanUS := 100_000.0
	if n > 0 {
		meanUS = sumUS / float64(n)
	}
	secs := int(math.Ceil(float64(depth) * meanUS / float64(s.cfg.Workers) / 1e6))
	return min(max(secs, 1), 30)
}

// jobOutcome describes how one job body was produced.
type jobOutcome struct {
	body     []byte
	status   cacheStatus // how the local result cache was satisfied
	compile  cacheStatus // how the compile stage was satisfied (when compiled)
	compiled bool        // this request ran the compile stage locally
	selMode  string      // how strategy selection decided the artifact
	// peer names the owning replica whose response filled the local cache
	// ("" when the body was computed or already cached locally); peerCache
	// is that owner's X-Voltron-Cache status.
	peer      string
	peerCache string
}

// jobBody resolves one normalized job to its rendered response body via the
// content-addressed cache. On a local miss for a key owned by another
// replica, the singleflight computation forwards to the owner — the peer's
// bytes are stored locally verbatim (peer cache fill), so every replica
// serves byte-identical bodies — and falls back to simulating locally when
// the owner is unreachable, sheds, or runs out of the forward budget.
// forwarded suppresses re-forwarding: requests that arrived from a peer and
// nested jobs (a baseline comparison inside a running job) always compute
// locally, which both prevents forwarding loops and keeps one job's latency
// bounded by a single forward hop.
func (s *Server) jobBody(ctx context.Context, req *JobRequest, key string, forwarded bool) (jobOutcome, error) {
	var out jobOutcome
	body, status, err := s.cache.get(ctx, key, func() ([]byte, error) {
		if owner := s.ownerOf(key); owner != "" && !forwarded {
			s.peerForwards.Inc()
			if b, pcache, ferr := s.forwardJob(ctx, owner, req); ferr == nil {
				out.peer, out.peerCache = owner, pcache
				s.peerFills.Inc()
				return b, nil
			} else if ctx.Err() != nil {
				return nil, ctx.Err() // our own budget expired, not the peer's
			}
			s.peerFallbacks.Inc()
		}
		resp, cstat, mode, err := s.runJob(ctx, req, key)
		if err != nil {
			return nil, err
		}
		out.compile, out.compiled, out.selMode = cstat, true, mode
		return json.Marshal(resp)
	})
	out.body, out.status = body, status
	return out, err
}

// runJob executes one normalized job (and, when asked, its serial
// baseline) and assembles the response.
func (s *Server) runJob(ctx context.Context, req *JobRequest, key string) (*JobResponse, cacheStatus, string, error) {
	res, tr, cstat, selMode, err := s.simulate(ctx, req)
	if err != nil {
		return nil, cstat, selMode, err
	}
	resp := &JobResponse{
		SchemaVersion: spec.SchemaVersion,
		Key:           key,
		Bench:         req.Program.Bench,
		Strategy:      req.Strategy,
		Cores:         req.Cores,
		TotalCycles:   res.TotalCycles,
		RegionCycles:  res.RegionCycles,
		ModeCoupled:   res.ModeFraction(stats.ModeCoupled),
		ModeDecoupl:   res.ModeFraction(stats.ModeDecoupled),
		Spawns:        res.Spawns,
		TMConflicts:   res.TMConflicts,
		Stalls:        map[string]int64{},
		Mem: MemStats{
			L2Hits:        res.MemStats.L2Hits,
			L2Misses:      res.MemStats.L2Misses,
			C2CTransfers:  res.MemStats.C2CTransfers,
			Invalidations: res.MemStats.Invalidations,
			Writebacks:    res.MemStats.Writebacks,
		},
	}
	if req.Program.Kind != spec.KindBench {
		resp.Program = req.Program.Name
	}
	for _, k := range stats.Kinds() {
		if n := res.Stall(k); n > 0 {
			resp.Stalls[k.String()] = n
		}
	}
	if tr != nil {
		// The rendered trace is stored out of band (it dwarfs the response)
		// and served by its job key; the response carries the URL and the
		// aggregated stall report. Rendering happens inside the singleflight
		// computation, so concurrent identical traced jobs render once.
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			return nil, cstat, selMode, fmt.Errorf("rendering trace: %w", err)
		}
		s.traces.put(key, buf.Bytes())
		resp.TraceURL = "/v1/traces/" + key
		resp.StallReport = tr.Report()
	}
	if req.Baseline && !(req.Strategy == "serial" && req.Cores == 1) {
		// The baseline is itself a first-class job routed through the
		// content cache, so it is simulated once no matter how many jobs
		// compare against it (and a later direct serial request hits it).
		// It never inherits the trace flag: the caller asked to see this
		// job's timeline, not the baseline's.
		base := *req
		base.Strategy, base.Cores, base.Baseline, base.Trace = "serial", 1, false, false
		bout, err := s.jobBody(ctx, &base, base.Key(), true)
		if err != nil {
			return nil, cstat, selMode, fmt.Errorf("baseline: %w", err)
		}
		var bresp JobResponse
		if err := json.Unmarshal(bout.body, &bresp); err != nil {
			return nil, cstat, selMode, fmt.Errorf("baseline: %w", err)
		}
		resp.BaselineCycles = bresp.TotalCycles
		if res.TotalCycles > 0 {
			resp.Speedup = float64(bresp.TotalCycles) / float64(res.TotalCycles)
		}
	}
	return resp, cstat, selMode, nil
}

// simulate runs one normalized job through the two-stage pipeline. Stage
// one resolves the compiled artifact by spec.CompileKey — trace variants,
// machine-latency ablations and baseline comparisons of the same program ×
// strategy share one compiler.Compile, deduplicated in flight and cached
// across jobs. Stage two executes the artifact on a pooled warm machine
// under a bounded worker slot (the batcher); waiting for either stage
// respects ctx, so a canceled request never occupies (or leaks) a slot.
// When the request asks for a trace, the returned tracer holds the run's
// event stream. The returned cacheStatus says how stage one was satisfied
// and the string how strategy selection decided the artifact
// (core.SelectionSummary.Mode; "" when no selection ran).
func (s *Server) simulate(ctx context.Context, req *JobRequest) (*core.RunResult, *trace.Tracer, cacheStatus, string, error) {
	var (
		p   *ir.Program
		pr  *prof.Profile
		err error
	)
	if req.Program.Kind == spec.KindBench {
		// Benchmarks are pre-built and pre-profiled by the suite; kernel and
		// source programs materialize here (the compiler profiles them).
		if p, err = s.suite.Program(req.Program.Bench); err != nil {
			return nil, nil, cacheMiss, "", err
		}
		if pr, err = s.suite.Profile(req.Program.Bench); err != nil {
			return nil, nil, cacheMiss, "", err
		}
	} else if p, err = req.Program.Build(); err != nil {
		return nil, nil, cacheMiss, "", err
	}

	ckey := req.CompileKey()
	cp, cstat, err := s.artifacts.get(ctx, ckey, func() (*core.CompiledProgram, error) {
		select {
		case s.compileSem <- struct{}{}:
		case <-ctx.Done():
			return nil, fmt.Errorf("waiting for a compile slot: %w", ctx.Err())
		}
		defer func() { <-s.compileSem }()
		opts := req.CompilerOpts()
		opts.Profile = pr // nil for inline programs: the compiler profiles them
		return compiler.Compile(p, opts)
	})
	switch cstat {
	case cacheHit:
		s.compileHits.Inc()
	case cacheMiss:
		s.compileMisses.Inc()
	case cacheDeduped:
		s.compileDeduped.Inc()
	}
	if err != nil {
		return nil, nil, cstat, "", err
	}
	if cstat == cacheMiss {
		s.selectStatic.Add(int64(cp.Selection.Static))
		s.selectEscalated.Add(int64(cp.Selection.Escalated))
	}
	if err := ctx.Err(); err != nil { // compile finished after cancellation
		return nil, nil, cstat, cp.Selection.Mode, err
	}
	var tr *trace.Tracer
	if req.Trace {
		tr = trace.New()
	}
	res, err := s.batch.run(ctx, &runReq{
		batch: ckey,
		pool:  req.MachineKey(),
		cfg:   req.MachineConfig(tr),
		cp:    cp,
	})
	if err != nil {
		return nil, nil, cstat, cp.Selection.Mode, err
	}
	if tr != nil && cstat == cacheMiss && req.Compiler.Select == "auto" && cp.Selection.Static > 0 {
		// Stall-report feedback (the online agreement check): the request
		// that compiled an auto-selected artifact and traced its run re-runs
		// measured selection for every statically decided region whose
		// realized stall profile contradicts the classifier. A corrected
		// artifact replaces the cached one, so every later job — traced or
		// not — runs the re-selected program; the traced result itself is
		// re-simulated so the response reflects what the cache now holds.
		cp2, res2, tr2, err := s.recheck(ctx, req, p, pr, ckey, cp, tr.Report())
		if err != nil {
			return nil, nil, cstat, cp.Selection.Mode, err
		}
		if cp2 != nil {
			cp, res, tr = cp2, res2, tr2
		}
	}
	return res, tr, cstat, cp.Selection.Mode, nil
}

// recheck runs compiler.Recheck under a compile slot (re-selection
// simulates candidates — compile-stage work) and, when any region was
// re-selected, replaces the cached artifact and re-simulates the job with a
// fresh tracer. Returns nils when the report confirmed every static pick.
func (s *Server) recheck(ctx context.Context, req *JobRequest, p *ir.Program, pr *prof.Profile,
	ckey string, cp *core.CompiledProgram, rep *trace.Report) (*core.CompiledProgram, *core.RunResult, *trace.Tracer, error) {
	select {
	case s.compileSem <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, nil, fmt.Errorf("waiting for a compile slot: %w", ctx.Err())
	}
	opts := req.CompilerOpts()
	opts.Profile = pr
	cp2, reselected, err := compiler.Recheck(p, cp, rep, opts)
	<-s.compileSem
	if err != nil {
		return nil, nil, nil, fmt.Errorf("selection recheck: %w", err)
	}
	if len(reselected) == 0 {
		return nil, nil, nil, nil
	}
	s.selectRechecks.Add(int64(len(reselected)))
	s.artifacts.replace(ckey, cp2)
	tr := trace.New()
	res, err := s.batch.run(ctx, &runReq{
		batch: ckey,
		pool:  req.MachineKey(),
		cfg:   req.MachineConfig(tr),
		cp:    cp2,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return cp2, res, tr, nil
}

// handleFigure regenerates one paper figure through the shared suite. The
// suite memoizes each (bench, strategy, cores) run, so repeated figure
// requests re-simulate nothing.
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad figure number %q", r.PathValue("n")))
		return
	}
	tab, err := s.suite.Figure(n)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := tab.WriteJSON(w); err != nil {
		s.errorsN.Inc()
	}
}

// writeJSON writes v as the response body. An Encode failure after the
// status line went out cannot be reported to the client, but it is not
// silent either: it counts toward the errors metric, same as handleFigure's
// streamed writes.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.errorsN.Inc()
	}
}

// ErrorResponse is the typed error body every failing endpoint returns:
// a stable machine-readable code, the human-readable message, and — for
// source-program rejections — the frontend's positioned diagnostics.
type ErrorResponse struct {
	SchemaVersion int               `json:"schema_version"`
	Code          string            `json:"code"`
	Error         string            `json:"error"`
	Diagnostics   []lang.Diagnostic `json:"diagnostics,omitempty"`
}

// writeError renders err as a typed ErrorResponse. A *spec.Error carries
// its own stable code (and, for source programs, diagnostics); everything
// else gets a code derived from the HTTP status so clients can always
// switch on "code".
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{SchemaVersion: spec.SchemaVersion, Error: err.Error()}
	var se *spec.Error
	if errors.As(err, &se) {
		resp.Code = se.Code
		resp.Diagnostics = se.Diagnostics
	} else {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			resp.Code = spec.ErrTimeout
		case errors.Is(err, context.Canceled):
			resp.Code = spec.ErrCanceled
		case status == http.StatusBadRequest:
			resp.Code = spec.ErrBadRequest
		case status == http.StatusNotFound:
			resp.Code = spec.ErrNotFound
		default:
			resp.Code = spec.ErrInternal
		}
	}
	s.writeJSON(w, status, resp)
}
