package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"voltron/internal/spec"
)

// The source-program surface: user programs POSTed as language text flow
// through the same job pipeline (normalize → key → compile cache → warm
// machine), fail with positioned diagnostics, and validate without
// simulating.

// sourceJob is a small user program with a DOALL map and a reduction.
func sourceJob(extra string) string {
	src := `param n = 256;\narray xs[n] int = {3, 1, 4, 1, 5, 9, 2, 6};\narray ys[n] int;\nvar acc int = 0;\nfunc main() {\n\tfor i = 0; i < n; i = i + 1 {\n\t\tys[i] = xs[i] * 2 + i;\n\t}\n\tfor i = 0; i < n; i = i + 1 {\n\t\tacc = acc + ys[i];\n\t}\n}\n`
	return `{
		"program": {"kind": "source", "name": "user", "source": "` + src + `"},
		"strategy": "hybrid", "cores": 4` + extra + `
	}`
}

// TestSourceJob drives a language program end to end through POST /v1/jobs:
// the first run compiles (compile-cache miss), the traced twin — a distinct
// run key that shares the compile key — reuses the artifact (compile-cache
// hit) and returns a trace URL plus a stall report.
func TestSourceJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postJob(t, ts, sourceJob(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Voltron-Compile-Cache"); got != "miss" {
		t.Errorf("first run X-Voltron-Compile-Cache = %q, want miss", got)
	}
	jr := decodeJob(t, b)
	if jr.Program != "user" || jr.Bench != "" {
		t.Errorf("response program=%q bench=%q, want user/", jr.Program, jr.Bench)
	}
	if jr.TotalCycles <= 0 {
		t.Errorf("total_cycles = %d, want > 0", jr.TotalCycles)
	}

	// The traced twin is a new job (trace is in the run key) but the same
	// artifact (trace is not in the compile key): the second request must
	// hit the compile cache and carry the trace.
	resp2, b2 := postJob(t, ts, sourceJob(`, "trace": true`))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("traced status = %d, body %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("traced twin X-Voltron-Cache = %q, want miss (distinct run key)", got)
	}
	if got := resp2.Header.Get("X-Voltron-Compile-Cache"); got != "hit" {
		t.Errorf("traced twin X-Voltron-Compile-Cache = %q, want hit", got)
	}
	jr2 := decodeJob(t, b2)
	if jr2.TraceURL == "" || jr2.StallReport == nil {
		t.Fatalf("traced source job missing trace_url/stall_report: %s", b2)
	}
	if !strings.HasPrefix(jr2.TraceURL, "/v1/traces/") {
		t.Fatalf("trace_url = %q", jr2.TraceURL)
	}
	if tresp, err := http.Get(ts.URL + jr2.TraceURL); err != nil || tresp.StatusCode != http.StatusOK {
		t.Errorf("trace fetch failed: %v / %v", err, tresp.Status)
	} else {
		tresp.Body.Close()
	}
	if jr2.TotalCycles != jr.TotalCycles {
		t.Errorf("tracing changed the result: %d vs %d cycles", jr2.TotalCycles, jr.TotalCycles)
	}

	// Re-POSTing the original body is a pure result-cache hit.
	resp3, _ := postJob(t, ts, sourceJob(""))
	if got := resp3.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("repeat X-Voltron-Cache = %q, want hit", got)
	}
}

// TestSourceJobDiagnostics: a source program that fails the frontend is a
// 400 with the stable bad_source code and positioned diagnostics.
func TestSourceJobDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"program": {"kind": "source", "source": "param n = 4;\nfunc main() {\n\tundeclared = 1;\n}\n"}}`
	resp, b := postJob(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("decoding error body %s: %v", b, err)
	}
	if er.Code != spec.ErrBadSource {
		t.Errorf("code = %q, want %q", er.Code, spec.ErrBadSource)
	}
	if er.SchemaVersion != spec.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", er.SchemaVersion, spec.SchemaVersion)
	}
	if len(er.Diagnostics) == 0 {
		t.Fatalf("no diagnostics in %s", b)
	}
	d := er.Diagnostics[0]
	if d.Code == "" || d.Message == "" || d.Line != 3 || d.Col == 0 {
		t.Errorf("diagnostic not positioned: %+v", d)
	}
}

func postValidate(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/validate", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /v1/validate: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// TestValidateSource: /v1/validate parses, type-checks and classifies a
// source program without simulating; the response names every region with
// its tier and chosen strategy.
func TestValidateSource(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, b := postValidate(t, ts, sourceJob(""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var vr ValidateResponse
	if err := json.Unmarshal(b, &vr); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	if vr.SchemaVersion != spec.SchemaVersion || vr.Program != "user" || vr.Kind != spec.KindSource {
		t.Errorf("header fields wrong: %+v", vr)
	}
	if len(vr.Regions) == 0 {
		t.Fatalf("no regions in %s", b)
	}
	for _, r := range vr.Regions {
		if r.Name == "" || r.Tier == "" || r.Choice == "" {
			t.Errorf("incomplete region entry: %+v", r)
		}
	}
	// Nothing simulated, nothing cached: the identical job still misses.
	if s.cache.peek(mustKey(t, sourceJob(""))) {
		t.Error("validate populated the result cache")
	}
}

// TestValidateDiagnostics: validation failures return the same typed error
// model as the job path.
func TestValidateDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"program": {"kind": "source", "source": "func main() { x = }"}}`
	resp, b := postValidate(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var er ErrorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("decoding error body %s: %v", b, err)
	}
	if er.Code != spec.ErrBadSource || len(er.Diagnostics) == 0 {
		t.Errorf("code = %q with %d diagnostics, want %q with >= 1", er.Code, len(er.Diagnostics), spec.ErrBadSource)
	}
}

// TestValidateBench: benchmarks validate through the suite's pre-built
// programs and profiles.
func TestValidateBench(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, b := postValidate(t, ts, `{"bench": "rawcaudio", "cores": 4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if dep := resp.Header.Get("X-Voltron-Deprecated"); dep != "bench" {
		t.Errorf("X-Voltron-Deprecated = %q, want %q", dep, "bench")
	}
	var vr ValidateResponse
	if err := json.Unmarshal(b, &vr); err != nil {
		t.Fatalf("decoding %s: %v", b, err)
	}
	if vr.Kind != spec.KindBench || len(vr.Regions) == 0 {
		t.Errorf("bench validate: %+v", vr)
	}
}

// mustKey normalizes a raw job body into its content address.
func mustKey(t *testing.T, body string) string {
	t.Helper()
	req, _, err := spec.DecodeJob(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := req.Normalize(func(string) bool { return true }); err != nil {
		t.Fatal(err)
	}
	return req.Key()
}
