package server

// Multi-replica e2e: the in-process cluster harness (NewCluster) backing
// the fleet guarantees — peer cache fill, byte-identical bodies on every
// replica, fleet-wide singleflight, and trace lookups that follow the ring.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"voltron/internal/spec"
)

// clusterJob builds the i-th normalized inline job of a deterministic
// family, returning its POST body and run key. The trace flag is part of
// the key, so traced and untraced variants shard independently.
func clusterJob(t *testing.T, i int, traced bool) ([]byte, string) {
	t.Helper()
	req := &spec.JobRequest{
		Program: &spec.ProgramSpec{
			Name: fmt.Sprintf("cl%03d", i),
			Kernels: []spec.KernelSpec{
				{Kind: "doall-map", Name: "m", N: 64, Work: 2},
				{Kind: "serial-chain", Name: "c", N: 16},
			},
		},
		Strategy: "llp",
		Cores:    2,
		Trace:    traced,
	}
	if err := req.Normalize(func(string) bool { return false }); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b, req.Key()
}

// jobOwnedBy finds a job in the clusterJob family whose ring owner is
// replica `owner`, so tests can choose where a job's home is.
func jobOwnedBy(t *testing.T, c *Cluster, owner string, traced bool) ([]byte, string) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		body, key := clusterJob(t, i, traced)
		if c.Server(0).ring.owner(spec.RingKeyOf(key)) == owner {
			return body, key
		}
	}
	t.Fatalf("no clusterJob owned by %s in 1000 candidates", owner)
	return nil, ""
}

// postRaw posts a prebuilt body to a URL and returns response + body.
func postRaw(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s/v1/jobs: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, buf.Bytes()
}

// TestClusterPeerCacheFill is the acceptance scenario: a job simulated once
// on its owning replica is served by another replica as a cache hit via
// peer, with a byte-identical body, and afterwards serves locally on the
// non-owner (the fill warmed it).
func TestClusterPeerCacheFill(t *testing.T) {
	c := NewCluster(3, Config{Workers: 2})
	defer c.Close()
	job, key := jobOwnedBy(t, c, "r0", false)

	// Simulate on the owner: a plain local miss, no peer involved.
	resp0, b0 := postRaw(t, c.URL(0), job)
	if resp0.StatusCode != http.StatusOK {
		t.Fatalf("owner job: status %d, body %s", resp0.StatusCode, b0)
	}
	if got := resp0.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("owner first touch cache status = %q, want miss", got)
	}
	if got := resp0.Header.Get("X-Voltron-Peer"); got != "" {
		t.Errorf("owner served its own key via peer %q", got)
	}

	// The same job on a non-owner: filled from the owner, reported as the
	// fleet-level hit, body byte-identical to the owner's.
	resp1, b1 := postRaw(t, c.URL(1), job)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("non-owner job: status %d, body %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("non-owner cache status = %q, want hit (via peer)", got)
	}
	if got := resp1.Header.Get("X-Voltron-Peer"); got != "r0" {
		t.Errorf("X-Voltron-Peer = %q, want r0", got)
	}
	if !bytes.Equal(b0, b1) {
		t.Errorf("bodies differ across replicas:\n%s\n%s", b0, b1)
	}

	// The fill warmed replica 1: a repeat serves locally (no peer header).
	resp2, b2 := postRaw(t, c.URL(1), job)
	if got := resp2.Header.Get("X-Voltron-Cache"); got != "hit" {
		t.Errorf("warmed non-owner cache status = %q, want hit", got)
	}
	if got := resp2.Header.Get("X-Voltron-Peer"); got != "" {
		t.Errorf("warmed non-owner still forwarding (peer %q)", got)
	}
	if !bytes.Equal(b0, b2) {
		t.Error("warmed body differs from the owner's")
	}

	// One simulation total, on the owner; replica 1 recorded the fill.
	var sims int64
	for i := 0; i < c.Size(); i++ {
		sims += c.Server(i).Metrics().Simulations
	}
	if sims != 1 {
		t.Errorf("fleet ran %d simulations of one job, want 1", sims)
	}
	m1 := c.Server(1).Metrics()
	if m1.PeerFills != 1 || m1.PeerFallbacks != 0 {
		t.Errorf("replica 1 peer fills/fallbacks = %d/%d, want 1/0", m1.PeerFills, m1.PeerFallbacks)
	}
	_ = key
}

// TestClusterNonOwnerFirstTouch: a job that first lands on a non-owner is
// forwarded, simulated exactly once on the owner, and the forwarding
// replica reports the owner's miss plus the peer that served it.
func TestClusterNonOwnerFirstTouch(t *testing.T) {
	c := NewCluster(2, Config{Workers: 2})
	defer c.Close()
	job, _ := jobOwnedBy(t, c, "r1", false)

	resp, b := postRaw(t, c.URL(0), job)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Voltron-Cache"); got != "miss" {
		t.Errorf("cache status = %q, want miss (owner simulated on demand)", got)
	}
	if got := resp.Header.Get("X-Voltron-Peer"); got != "r1" {
		t.Errorf("X-Voltron-Peer = %q, want r1", got)
	}
	if m0, m1 := c.Server(0).Metrics(), c.Server(1).Metrics(); m0.Simulations != 0 || m1.Simulations != 1 {
		t.Errorf("simulations r0/r1 = %d/%d, want 0/1 (only the owner simulates)", m0.Simulations, m1.Simulations)
	}
}

// TestClusterSingleflightAcrossReplicas hammers one identical job at every
// replica concurrently: the owner's singleflight must collapse local
// clients and peer forwards alike onto a single simulation, and every
// caller gets byte-identical bytes. Run with -race, this is also the
// concurrency proof for the ring + peer-fill path.
func TestClusterSingleflightAcrossReplicas(t *testing.T) {
	c := NewCluster(3, Config{Workers: 4})
	defer c.Close()

	const perReplica = 4
	n := c.Size() * perReplica
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postRaw(t, c.URL(i%c.Size()), []byte(mediumJob()))
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	var sims, fills int64
	for i := 0; i < c.Size(); i++ {
		m := c.Server(i).Metrics()
		sims += m.Simulations
		fills += m.PeerFills
	}
	if sims != 1 {
		t.Errorf("fleet ran %d simulations, want 1 (cross-replica singleflight broken)", sims)
	}
	if fills != 2 {
		t.Errorf("peer fills = %d, want 2 (one per non-owner replica)", fills)
	}
}

// TestClusterTraceFollowsRing: a traced job forwarded to its owner leaves
// the trace blob on the owner; any replica can serve the trace URL by
// forwarding the lookup the same way, and the fetch fills its local store.
func TestClusterTraceFollowsRing(t *testing.T) {
	c := NewCluster(3, Config{Workers: 2})
	defer c.Close()
	traced, _ := jobOwnedBy(t, c, "r0", true)

	// POST the traced job at a non-owner: the owner runs it and keeps the
	// trace blob; the response (with the trace URL) fills replica 1.
	resp, b := postRaw(t, c.URL(1), traced)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced job: status %d, body %s", resp.StatusCode, b)
	}
	var jr JobResponse
	if err := json.Unmarshal(b, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.TraceURL == "" {
		t.Fatalf("traced job response has no trace_url: %s", b)
	}

	// Fetch the trace from a replica that neither ran nor forwarded the job:
	// it must follow the ring to the owner and relay the blob.
	get := func(i int) (*http.Response, []byte) {
		resp, err := http.Get(c.URL(i) + jr.TraceURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	tresp, tb := get(2)
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace via replica 2: status %d: %.200s", tresp.StatusCode, tb)
	}
	if got := tresp.Header.Get("X-Voltron-Peer"); got != "r0" {
		t.Errorf("trace X-Voltron-Peer = %q, want r0", got)
	}
	if !json.Valid(tb) || !bytes.Contains(tb, []byte("traceEvents")) {
		t.Errorf("forwarded trace is not Chrome trace JSON: %.200s", tb)
	}

	// The fill warmed replica 2: the repeat serves locally, byte-identical.
	tresp2, tb2 := get(2)
	if tresp2.StatusCode != http.StatusOK || tresp2.Header.Get("X-Voltron-Peer") != "" {
		t.Errorf("warmed trace fetch: status %d, peer %q; want local 200",
			tresp2.StatusCode, tresp2.Header.Get("X-Voltron-Peer"))
	}
	if !bytes.Equal(tb, tb2) {
		t.Error("trace bytes differ between peer fill and local re-read")
	}
}
