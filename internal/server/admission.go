package server

// Admission control: bounded per-class queues in front of the batcher. A
// request is classified before it is admitted — "cached-read" if its content
// address already has a completed local cache entry (microseconds of work),
// "simulate" otherwise (it may compile and run an event loop) — and each
// class has its own bound on concurrently admitted requests. A class at its
// bound sheds with a typed 429 body and a Retry-After estimate instead of
// queueing without limit: under open-loop overload an unbounded queue only
// converts every request into a timeout, while shedding keeps the admitted
// ones fast and tells clients when to come back. Admitted requests run
// synchronously inside their handlers, so http.Server draining also drains
// the admission queues — shutdown completes every admitted request (a test
// pins this) and sheds nothing.

import (
	"sync"

	"voltron/internal/stats"
)

// admClass classifies one request's expected cost.
type admClass int

const (
	// admSimulate: the request may compile and simulate (no completed cache
	// entry for its key).
	admSimulate admClass = iota
	// admCachedRead: the request's key has a completed cache entry; serving
	// it is a lookup plus a write.
	admCachedRead
	admClasses
)

func (c admClass) String() string {
	if c == admCachedRead {
		return "cached-read"
	}
	return "simulate"
}

// admission holds the per-class bounds and current depths. Depth counts
// requests between admit and release — queued in the batcher or running —
// so the bound covers the whole residence of a request, not just its queue
// wait.
type admission struct {
	mu    sync.Mutex
	limit [admClasses]int
	depth [admClasses]int
	shed  [admClasses]stats.Counter
}

func newAdmission(simulate, cachedRead int) *admission {
	a := &admission{}
	a.limit[admSimulate] = simulate
	a.limit[admCachedRead] = cachedRead
	return a
}

// admit reserves one slot in class c. ok=false means the class is at its
// bound and the request must be shed; the returned snapshot of depth backs
// the 429 body. On success the caller must call release exactly once
// (calling it more than once is harmless).
func (a *admission) admit(c admClass) (release func(), depth int, ok bool) {
	a.mu.Lock()
	if a.depth[c] >= a.limit[c] {
		depth = a.depth[c]
		a.mu.Unlock()
		a.shed[c].Inc()
		return nil, depth, false
	}
	a.depth[c]++
	depth = a.depth[c]
	a.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.depth[c]--
			a.mu.Unlock()
		})
	}, depth, true
}

// depthOf reports the current admitted depth of class c.
func (a *admission) depthOf(c admClass) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.depth[c]
}

// ShedResponse is the typed 429 body: which queue was full, how full, and
// when to retry (the same value as the Retry-After header). Code is the
// stable machine-readable identifier (always spec.ErrQueueFull), matching
// the error model of every other failing endpoint.
type ShedResponse struct {
	SchemaVersion     int    `json:"schema_version"`
	Code              string `json:"code"`
	Error             string `json:"error"`
	Class             string `json:"class"`
	QueueDepth        int    `json:"queue_depth"`
	QueueLimit        int    `json:"queue_limit"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}
