package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// The tiered-selection surface: the X-Voltron-Select header, the /metrics
// per-tier counters, the traced-auto recheck path, and the artifact-cache
// replace primitive the feedback loop depends on.

// autoJob is tinyJob compiled under tiered selection.
func autoJob() string {
	return strings.Replace(tinyJob(), `"strategy": "llp", "cores": 2`,
		`"strategy": "hybrid", "cores": 2, "compiler": {"select": "auto"}`, 1)
}

func metricsOf(t *testing.T, url string) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSelectHeaderAndCounters: a fresh compile reports how selection
// decided its artifact, and the per-tier counters advance with it.
func TestSelectHeaderAndCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	before := metricsOf(t, ts.URL)

	// Default mode: measured selection, reported as such.
	resp, b := postJob(t, ts, strings.Replace(tinyJob(), `"strategy": "llp"`, `"strategy": "hybrid"`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Voltron-Select"); got != "measured" {
		t.Errorf("measured job X-Voltron-Select = %q, want %q", got, "measured")
	}

	// Auto mode: the classifier decides (possibly escalating), the counters
	// record each region's tier.
	resp, b = postJob(t, ts, autoJob())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Voltron-Select"); got != "static" && got != "escalated" {
		t.Errorf("auto job X-Voltron-Select = %q, want static or escalated", got)
	}
	after := metricsOf(t, ts.URL)
	decided := (after.SelectStatic - before.SelectStatic) + (after.SelectEscalated - before.SelectEscalated)
	if decided <= 0 {
		t.Errorf("select counters did not advance: static %d->%d escalated %d->%d",
			before.SelectStatic, after.SelectStatic, before.SelectEscalated, after.SelectEscalated)
	}

	// A repeat of the same job is a result-cache hit: it never reaches the
	// compile stage, so it reports no selection mode.
	resp, _ = postJob(t, ts, autoJob())
	if resp.Header.Get("X-Voltron-Cache") != "hit" {
		t.Fatalf("repeat was not a cache hit")
	}
	if got := resp.Header.Get("X-Voltron-Select"); got != "" {
		t.Errorf("cache hit carries X-Voltron-Select = %q, want absent", got)
	}
}

// TestTracedAutoJobRecheck drives the stall-report feedback trigger: a
// traced auto job runs the recheck after its fresh compile. The tiny
// program's picks are not contradicted, so nothing is re-selected — the
// point is that the trigger path completes and the counter stays exact.
func TestTracedAutoJobRecheck(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	traced := strings.Replace(autoJob(), `"compiler": {"select": "auto"}`,
		`"compiler": {"select": "auto"}, "trace": true`, 1)
	resp, b := postJob(t, ts, traced)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	jr := decodeJob(t, b)
	if jr.TotalCycles == 0 {
		t.Error("traced auto job reported zero cycles")
	}
	m := metricsOf(t, ts.URL)
	if m.SelectReselected != 0 {
		t.Errorf("select_reselected_total = %d, want 0 (nothing contradicted)", m.SelectReselected)
	}
	// The artifact stayed cached under its key: a repeat is a hit and the
	// recheck does not run again.
	resp, _ = postJob(t, ts, traced)
	if resp.Header.Get("X-Voltron-Cache") != "hit" {
		t.Error("repeat of traced auto job missed the result cache")
	}
}

// TestCacheReplace covers the primitive the feedback loop uses to swap a
// re-selected artifact into the compile cache.
func TestCacheReplace(t *testing.T) {
	ctx := context.Background()
	c := newSFCache[string](2)

	// Replace of a completed entry: later reads see the new value as a hit.
	if _, _, err := c.get(ctx, "k", func() (string, error) { return "old", nil }); err != nil {
		t.Fatal(err)
	}
	c.replace("k", "new")
	v, st, err := c.get(ctx, "k", func() (string, error) { return "recomputed", nil })
	if err != nil || st != cacheHit || v != "new" {
		t.Errorf("after replace: got %q/%v/%v, want new/hit/nil", v, st, err)
	}

	// Replace of an absent key inserts it.
	c.replace("fresh", "v")
	if v, st, _ := c.get(ctx, "fresh", func() (string, error) { return "x", nil }); st != cacheHit || v != "v" {
		t.Errorf("replace on absent key: got %q/%v, want v/hit", v, st)
	}

	// Replace of an in-flight entry is a no-op: the claimant's result wins.
	claim := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.get(ctx, "flight", func() (string, error) {
			close(claim)
			<-release
			return "claimant", nil
		})
	}()
	<-claim
	c.replace("flight", "intruder")
	close(release)
	<-done
	if v, st, _ := c.get(ctx, "flight", func() (string, error) { return "x", nil }); st != cacheHit || v != "claimant" {
		t.Errorf("in-flight replace: got %q/%v, want claimant/hit", v, st)
	}

	// The LRU bound still holds through replaces.
	c.replace("a", "1")
	c.replace("b", "2")
	c.replace("c", "3")
	if n := c.len(); n > 2 {
		t.Errorf("cache grew past its bound: %d entries, max 2", n)
	}
}
