package server

import "voltron/internal/spec"

// The job specification lives in internal/spec — the CLIs build their flag
// sets from the same definitions, so every surface agrees on what a job is.
// The aliases keep the server API stable for existing users of this package.
type (
	JobRequest      = spec.JobRequest
	CompilerOptions = spec.CompilerOptions
	MachineOptions  = spec.MachineOptions
	ProgramSpec     = spec.ProgramSpec
	KernelSpec      = spec.KernelSpec
)
