package server

// Cluster is the in-process multi-replica harness: N replicas, each a full
// Server behind its own listener, wired into one consistent-hash ring. The
// e2e tests boot one to assert fleet behaviour (peer cache fill,
// byte-identical bodies, fleet-wide singleflight) and voltron-load's -spawn
// mode boots one to measure it — same code path as a real fleet, because it
// IS the real fleet: replicas talk to each other over TCP loopback exactly
// as they would across hosts.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
)

// Cluster is a set of in-process replicas sharing a ring. Create with
// NewCluster, stop with Close (which drains every replica).
type Cluster struct {
	servers  []*Server
	frontend []*httptest.Server
	replicas []Replica
}

// NewCluster boots n replicas named r0..r(n-1), each configured with base
// plus the cluster membership. Listeners bind first so every replica knows
// the full peer URL set before any of them serves.
func NewCluster(n int, base Config) *Cluster {
	c := &Cluster{
		frontend: make([]*httptest.Server, n),
		replicas: make([]Replica, n),
	}
	for i := range c.frontend {
		c.frontend[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		c.replicas[i] = Replica{
			Name: fmt.Sprintf("r%d", i),
			URL:  "http://" + c.frontend[i].Listener.Addr().String(),
		}
	}
	for i := range c.frontend {
		cfg := base
		cfg.Self = c.replicas[i].Name
		cfg.Peers = c.replicas
		srv := New(cfg)
		c.servers = append(c.servers, srv)
		c.frontend[i].Config.Handler = srv.Handler()
		c.frontend[i].Start()
	}
	return c
}

// Size is the replica count.
func (c *Cluster) Size() int { return len(c.servers) }

// Server returns replica i's Server (metrics, internals).
func (c *Cluster) Server(i int) *Server { return c.servers[i] }

// URL returns replica i's base URL.
func (c *Cluster) URL(i int) string { return c.replicas[i].URL }

// URLs returns every replica's base URL in replica order.
func (c *Cluster) URLs() []string {
	urls := make([]string, len(c.replicas))
	for i, r := range c.replicas {
		urls[i] = r.URL
	}
	return urls
}

// IndexOf maps a replica name (e.g. an X-Voltron-Peer header) back to its
// index, -1 when unknown.
func (c *Cluster) IndexOf(name string) int {
	for i, r := range c.replicas {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Close shuts every replica down concurrently, draining in-flight requests
// (httptest.Server.Close blocks until outstanding requests finish).
// Concurrency matters beyond speed: replica A's drain may be blocked on a
// forward to replica B, so a sequential shutdown starting at B could wait on
// A's half-open request.
func (c *Cluster) Close() {
	var wg sync.WaitGroup
	for _, f := range c.frontend {
		wg.Add(1)
		go func(f *httptest.Server) {
			defer wg.Done()
			f.Close()
		}(f)
	}
	wg.Wait()
}
