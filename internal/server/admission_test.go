package server

// Admission tests: per-class bounds shed with a pinned 429 contract
// (Retry-After header mirrored in a typed body), cached reads keep serving
// while the simulate queue sheds, and graceful shutdown drains admitted
// requests instead of dropping them.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"
)

// namedMediumJob is mediumJob with a distinct program name, so tests can
// make several simulate-class jobs that do not collapse in the cache.
func namedMediumJob(name string) string {
	return fmt.Sprintf(`{
		"program": {"name": %q, "kernels": [
			{"kind": "pipeline", "name": "p", "table": 16384, "n": 16384, "work": 16}
		]},
		"strategy": "serial", "cores": 1
	}`, name)
}

// waitForDepth polls until the admitted simulate depth reaches want.
func waitForDepth(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.adm.depthOf(admSimulate) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("simulate depth never reached %d (now %d)", want, s.adm.depthOf(admSimulate))
}

// TestAdmissionUnit pins admit/release bookkeeping: slots are reserved up
// to the limit, a shed snapshots the depth, release frees exactly one slot
// no matter how often it is called, and sheds are counted.
func TestAdmissionUnit(t *testing.T) {
	a := newAdmission(2, 1)
	rel1, depth, ok := a.admit(admSimulate)
	if !ok || depth != 1 {
		t.Fatalf("first admit: ok=%v depth=%d, want true/1", ok, depth)
	}
	rel2, depth, ok := a.admit(admSimulate)
	if !ok || depth != 2 {
		t.Fatalf("second admit: ok=%v depth=%d, want true/2", ok, depth)
	}
	if _, depth, ok := a.admit(admSimulate); ok || depth != 2 {
		t.Fatalf("over-limit admit: ok=%v depth=%d, want false/2", ok, depth)
	}
	if got := a.shed[admSimulate].Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// Classes are independent: cached-read still has its own slot.
	if _, _, ok := a.admit(admCachedRead); !ok {
		t.Error("cached-read admit failed while only simulate is full")
	}
	rel1()
	rel1() // double release must not free a second slot
	if got := a.depthOf(admSimulate); got != 1 {
		t.Errorf("depth after release = %d, want 1", got)
	}
	if _, _, ok := a.admit(admSimulate); !ok {
		t.Error("admit failed after a slot was released")
	}
	rel2()
}

// TestAdmissionSheds429 fills the simulate class and pins the shed
// contract: status 429, a Retry-After header whose value reappears in the
// typed JSON body along with class, depth and limit — and, per-class
// isolation: cached reads keep serving with the simulate queue full.
func TestAdmissionSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, AdmitSimulate: 1, AdmitCachedRead: 4})

	// Warm one tiny job so a cached-read exists to probe with later.
	if resp, b := postJob(t, ts, tinyJob()); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm job: status %d: %s", resp.StatusCode, b)
	}

	// Occupy the single simulate slot with a job long enough to outlive the
	// shed assertions below (a beefed-up medium, not slowJob — this test
	// only needs hundreds of milliseconds of occupancy, not tens of seconds).
	occupier := `{
		"program": {"name": "occupy", "kernels": [
			{"kind": "pipeline", "name": "p", "table": 16384, "n": 16384, "work": 64}
		]},
		"strategy": "serial", "cores": 1
	}`
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if resp, b := postJob(t, ts, occupier); resp.StatusCode != http.StatusOK {
			t.Errorf("occupying job: status %d: %s", resp.StatusCode, b)
		}
	}()
	waitForDepth(t, s, 1)

	// A second, distinct simulate-class job must shed.
	resp, body := postJob(t, ts, namedMediumJob("shed-me"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (body %.200s), want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 30]", ra)
	}
	var shed ShedResponse
	if err := json.Unmarshal(body, &shed); err != nil {
		t.Fatalf("shed body is not a ShedResponse: %v: %s", err, body)
	}
	if shed.Class != "simulate" || shed.QueueDepth != 1 || shed.QueueLimit != 1 {
		t.Errorf("shed body class/depth/limit = %s/%d/%d, want simulate/1/1",
			shed.Class, shed.QueueDepth, shed.QueueLimit)
	}
	if shed.RetryAfterSeconds != secs {
		t.Errorf("body retry_after_seconds = %d, header = %d; want equal", shed.RetryAfterSeconds, secs)
	}
	if shed.Error == "" || shed.SchemaVersion == 0 {
		t.Errorf("shed body missing error/schema_version: %+v", shed)
	}

	// Per-class isolation: the warmed job still serves as a cached read.
	cresp, _ := postJob(t, ts, tinyJob())
	if cresp.StatusCode != http.StatusOK || cresp.Header.Get("X-Voltron-Cache") != "hit" {
		t.Errorf("cached read during simulate shed: status %d cache %q, want 200/hit",
			cresp.StatusCode, cresp.Header.Get("X-Voltron-Cache"))
	}

	wg.Wait()

	// Shedding is not sticky: with the slot free, the shed job now runs.
	if resp, b := postJob(t, ts, namedMediumJob("shed-me")); resp.StatusCode != http.StatusOK {
		t.Errorf("post-drain retry: status %d: %.200s", resp.StatusCode, b)
	}

	m := s.Metrics()
	if m.ShedSimulate != 1 || m.ShedCachedRead != 0 {
		t.Errorf("shed counters sim/cached = %d/%d, want 1/0", m.ShedSimulate, m.ShedCachedRead)
	}
	if m.AdmitLimitSimulate != 1 || m.AdmitLimitCachedRead != 4 {
		t.Errorf("admit limits = %d/%d, want 1/4", m.AdmitLimitSimulate, m.AdmitLimitCachedRead)
	}
	if m.AdmitQueueSimulate != 0 || m.AdmitQueueCachedRead != 0 {
		t.Errorf("queues not empty at idle: %d/%d", m.AdmitQueueSimulate, m.AdmitQueueCachedRead)
	}
}

// TestAdmissionDrainCompletesQueued: graceful shutdown with non-empty
// queues. Three admitted jobs serialize through one worker; closing the
// front end while two are still queued must complete all three — admitted
// requests run inside their handlers, so the HTTP drain IS the queue drain.
func TestAdmissionDrainCompletesQueued(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, AdmitSimulate: 8})

	const jobs = 3
	statuses := make([]int, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJob(t, ts, namedMediumJob(fmt.Sprintf("drain-%d", i)))
			statuses[i] = resp.StatusCode
			if resp.StatusCode != http.StatusOK {
				t.Errorf("job %d: status %d: %.200s", i, resp.StatusCode, b)
			}
		}(i)
	}
	waitForDepth(t, s, jobs) // one running, the rest admitted and queued

	ts.Close() // blocks until every in-flight handler returns
	wg.Wait()

	for i, code := range statuses {
		if code != http.StatusOK {
			t.Errorf("job %d finished with %d after drain, want 200", i, code)
		}
	}
	m := s.Metrics()
	if m.Simulations != jobs {
		t.Errorf("simulations = %d, want %d (drain must finish queued work)", m.Simulations, jobs)
	}
	if m.ShedSimulate != 0 {
		t.Errorf("drain shed %d requests, want 0", m.ShedSimulate)
	}
	if m.AdmitQueueSimulate != 0 {
		t.Errorf("admitted depth %d after drain, want 0", m.AdmitQueueSimulate)
	}
}
