package server

import (
	"bytes"
	"context"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// slowJob simulates for several seconds on one core — long enough that a
// test can reliably cancel it mid-flight.
func slowJob() string {
	return `{
		"program": {"name": "slow", "kernels": [
			{"kind": "pipeline", "name": "p0", "table": 65536, "n": 65536, "work": 64},
			{"kind": "pipeline", "name": "p1", "table": 65536, "n": 65536, "work": 64},
			{"kind": "pipeline", "name": "p2", "table": 65536, "n": 65536, "work": 64},
			{"kind": "pipeline", "name": "p3", "table": 65536, "n": 65536, "work": 64}
		]},
		"strategy": "serial", "cores": 1
	}`
}

// mediumJob takes a few hundred milliseconds: long enough for concurrent
// requests to overlap, short enough to run many times.
func mediumJob() string {
	return `{
		"program": {"name": "medium", "kernels": [
			{"kind": "pipeline", "name": "p", "table": 16384, "n": 16384, "work": 16}
		]},
		"strategy": "serial", "cores": 1
	}`
}

// TestSingleflightConcurrentIdenticalRequests is the core serving
// guarantee: N identical requests in flight at once produce exactly one
// underlying simulation, and every caller receives a byte-identical body.
func TestSingleflightConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	const n = 8
	bodies := make([][]byte, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postJob(t, ts, mediumJob())
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	m := s.Metrics()
	if m.Simulations != 1 {
		t.Errorf("simulations = %d, want 1 (singleflight broken)", m.Simulations)
	}
	if m.CacheMisses != 1 {
		t.Errorf("misses = %d, want 1", m.CacheMisses)
	}
	if m.CacheHits+m.CacheDeduped != n-1 {
		t.Errorf("hits+deduped = %d, want %d", m.CacheHits+m.CacheDeduped, n-1)
	}
}

// TestCanceledRequestFreesWorkerSlot: with a single worker, a request
// canceled mid-simulation must release its slot so the next job runs.
func TestCanceledRequestFreesWorkerSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs", bytes.NewReader([]byte(slowJob())))
		if err != nil {
			errc <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	time.Sleep(200 * time.Millisecond) // let the job reach the simulator
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("canceled request did not fail")
	}
	// The slot must come free: a small job on the single worker completes.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, b := postJob(t, ts, tinyJob())
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follow-up job: status %d, body %s", resp.StatusCode, b)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("follow-up job never completed: canceled request still owns the worker slot")
	}
	waitForIdle(t, s)
	// The canceled handler may still be on its way to the accounting (e.g.
	// the cancel landed while it was building the program, before it ever
	// touched the queue gauges), so poll rather than assert once.
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Canceled < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("canceled = %d, want >= 1", s.Metrics().Canceled)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitForIdle polls until no job is queued or in flight.
func waitForIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics()
		if m.QueueDepth == 0 && m.InFlight == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never idled: queue_depth=%d in_flight=%d", m.QueueDepth, m.InFlight)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdownDrainsAndLeaksNothing: closing the HTTP server while
// a job is in flight waits for the job's response, and afterwards no
// goroutine sticks around.
func TestGracefulShutdownDrainsAndLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	s, ts := newTestServer(t, Config{Workers: 2})

	// One request canceled mid-flight, several completed, one in flight at
	// shutdown time.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs", bytes.NewReader([]byte(slowJob())))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	postJob(t, ts, tinyJob())

	type result struct {
		status int
		body   []byte
	}
	inflight := make(chan result, 1)
	go func() {
		resp, b := postJob(t, ts, mediumJob())
		inflight <- result{resp.StatusCode, b}
	}()
	time.Sleep(150 * time.Millisecond) // let the medium job start
	ts.Close()                         // blocks until outstanding requests finish
	select {
	case r := <-inflight:
		if r.status != http.StatusOK {
			t.Errorf("in-flight job during shutdown: status %d, body %s", r.status, r.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown did not drain the in-flight job")
	}
	waitForIdle(t, s)

	// No goroutine leak: the count returns to (near) the baseline. Allow
	// slack for runtime/netpoll goroutines that linger briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after shutdown: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
