// Package interp executes IR programs directly. It provides the golden
// semantics every compiled/simulated configuration is validated against, and
// the observation hooks the profiler (package prof) builds its statistical
// memory-dependence, trip-count and miss-rate profiles on.
package interp

import (
	"fmt"
	"math"

	"voltron/internal/ir"
	"voltron/internal/isa"
	"voltron/internal/mem"
)

// Tracer observes execution. All methods may be nil-safe no-ops; the
// interpreter checks for a nil Tracer once per run.
type Tracer interface {
	// EnterRegion fires when a region starts executing.
	EnterRegion(r *ir.Region)
	// EnterBlock fires when control enters a block.
	EnterBlock(b *ir.Block)
	// Mem fires on every memory access with the effective byte address.
	Mem(o *ir.Op, addr int64, isStore bool)
	// Op fires after every executed op.
	Op(o *ir.Op)
}

// Result summarizes an interpreted run.
type Result struct {
	Mem *mem.Flat
	// DynOps is the total number of executed IR operations.
	DynOps int64
	// RegionOps counts executed ops per region id (terminator evaluations
	// included as one op — the BR the machine would execute).
	RegionOps []int64
	// BlockCounts is the execution count of every block.
	BlockCounts map[*ir.Block]int64
	// OpCounts is the execution count of every op.
	OpCounts map[*ir.Op]int64
}

// Options configures a run.
type Options struct {
	// MaxOps aborts runaway programs (default 500M).
	MaxOps int64
	Tracer Tracer
	// Mem supplies a pre-built memory image; nil allocates from the
	// program's layout.
	Mem *mem.Flat
}

// Run interprets the whole program region by region.
func Run(p *ir.Program, opt Options) (*Result, error) {
	if opt.MaxOps == 0 {
		opt.MaxOps = 500_000_000
	}
	m := opt.Mem
	if m == nil {
		m = mem.NewFlatFor(p)
	}
	res := &Result{
		Mem:         m,
		RegionOps:   make([]int64, len(p.Regions)),
		BlockCounts: map[*ir.Block]int64{},
		OpCounts:    map[*ir.Op]int64{},
	}
	for _, r := range p.Regions {
		if err := runRegion(r, m, opt, res); err != nil {
			return nil, fmt.Errorf("region %q: %w", r.Name, err)
		}
	}
	return res, nil
}

func runRegion(r *ir.Region, m *mem.Flat, opt Options, res *Result) error {
	vals := make([]uint64, r.NumValues())
	if opt.Tracer != nil {
		opt.Tracer.EnterRegion(r)
	}
	b := r.Entry
	for b != nil {
		if opt.Tracer != nil {
			opt.Tracer.EnterBlock(b)
		}
		res.BlockCounts[b]++
		for _, o := range b.Ops {
			if err := EvalOp(o, vals, m, opt.Tracer); err != nil {
				return err
			}
			res.DynOps++
			res.RegionOps[r.ID]++
			res.OpCounts[o]++
			if res.DynOps > opt.MaxOps {
				return fmt.Errorf("op budget exceeded (%d)", opt.MaxOps)
			}
		}
		res.DynOps++ // the terminator
		res.RegionOps[r.ID]++
		switch b.Kind {
		case ir.Jump:
			b = b.Succ[0]
		case ir.CondBr:
			if vals[b.Cond] != 0 {
				b = b.Succ[0]
			} else {
				b = b.Succ[1]
			}
		case ir.Exit:
			b = nil
		}
	}
	return nil
}

// EvalOp executes one IR op against the value and memory state. It is
// exported so the transactional-memory tests and the simulator's functional
// checks can reuse the exact golden semantics.
func EvalOp(o *ir.Op, vals []uint64, m *mem.Flat, tr Tracer) error {
	argI := func(i int) int64 { return int64(vals[o.Args[i]]) }
	argF := func(i int) float64 { return math.Float64frombits(vals[o.Args[i]]) }
	// rhs returns the second integer operand: a value or the immediate.
	rhs := func() int64 {
		if o.Args[1] == ir.NoValue {
			return o.Imm
		}
		return argI(1)
	}
	setI := func(v int64) { vals[o.Dst] = uint64(v) }
	setF := func(v float64) { vals[o.Dst] = math.Float64bits(v) }
	setP := func(v bool) {
		if v {
			vals[o.Dst] = 1
		} else {
			vals[o.Dst] = 0
		}
	}
	switch o.Code {
	case isa.NOP:
	case isa.MOVI:
		setI(o.Imm)
	case isa.MOV:
		setI(argI(0))
	case isa.FMOVI:
		setF(o.F)
	case isa.FMOV:
		setF(argF(0))
	case isa.ADD:
		setI(argI(0) + rhs())
	case isa.SUB:
		setI(argI(0) - rhs())
	case isa.MUL:
		setI(argI(0) * rhs())
	case isa.DIV:
		if d := rhs(); d != 0 {
			setI(argI(0) / d)
		} else {
			setI(0)
		}
	case isa.REM:
		if d := rhs(); d != 0 {
			setI(argI(0) % d)
		} else {
			setI(0)
		}
	case isa.AND:
		setI(argI(0) & rhs())
	case isa.OR:
		setI(argI(0) | rhs())
	case isa.XOR:
		setI(argI(0) ^ rhs())
	case isa.SHL:
		setI(argI(0) << (uint64(rhs()) & 63))
	case isa.SHR:
		setI(argI(0) >> (uint64(rhs()) & 63))
	case isa.FADD:
		setF(argF(0) + argF(1))
	case isa.FSUB:
		setF(argF(0) - argF(1))
	case isa.FMUL:
		setF(argF(0) * argF(1))
	case isa.FDIV:
		setF(argF(0) / argF(1))
	case isa.ITOF:
		setF(float64(argI(0)))
	case isa.FTOI:
		setI(int64(argF(0)))
	case isa.CMPEQ:
		setP(argI(0) == rhs())
	case isa.CMPNE:
		setP(argI(0) != rhs())
	case isa.CMPLT:
		setP(argI(0) < rhs())
	case isa.CMPLE:
		setP(argI(0) <= rhs())
	case isa.CMPGT:
		setP(argI(0) > rhs())
	case isa.CMPGE:
		setP(argI(0) >= rhs())
	case isa.FCMPLT:
		setP(argF(0) < argF(1))
	case isa.PAND:
		setP(vals[o.Args[0]] != 0 && vals[o.Args[1]] != 0)
	case isa.POR:
		setP(vals[o.Args[0]] != 0 || vals[o.Args[1]] != 0)
	case isa.PNOT:
		setP(vals[o.Args[0]] == 0)
	case isa.LOAD:
		addr := argI(0) + o.Imm
		if tr != nil {
			tr.Mem(o, addr, false)
		}
		vals[o.Dst] = m.LoadW(addr)
	case isa.FLOAD:
		addr := argI(0) + o.Imm
		if tr != nil {
			tr.Mem(o, addr, false)
		}
		vals[o.Dst] = m.LoadW(addr)
	case isa.STORE, isa.FSTORE:
		addr := argI(0) + o.Imm
		if tr != nil {
			tr.Mem(o, addr, true)
		}
		m.StoreW(addr, vals[o.Args[1]])
	default:
		return fmt.Errorf("interp: opcode %v not executable in IR", o.Code)
	}
	if tr != nil {
		tr.Op(o)
	}
	return nil
}
